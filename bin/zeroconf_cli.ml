(* Command-line interface to the zeroconf cost model: evaluate, optimize,
   calibrate, and simulate.  `zeroconf_cli --help` lists the commands. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Scenario construction from flags                                    *)

(* Worker-domain count for the parallel sweeps lives in [Cli_common]
   (shared with bin/figures.ml) and is folded into [scenario_term] so
   every subcommand accepts it. *)

let scenario_term =
  let preset =
    let doc =
      "Named scenario: figure2, wireless-worst-case, wired-worst-case, or \
       realistic-ethernet.  Individual flags below override its fields."
    in
    Arg.(value & opt string "figure2"
         & info [ "scenario"; "preset" ] ~docv:"NAME" ~doc)
  in
  let loss =
    Arg.(value & opt (some float) None
         & info [ "loss" ] ~docv:"P" ~doc:"Permanent packet-loss probability 1-l.")
  in
  (* long names deliberately avoid the 'r' prefix so that --r stays an
     unambiguous abbreviation of --r-period in every subcommand *)
  let rate =
    Arg.(value & opt (some float) None
         & info [ "lambda" ] ~docv:"LAMBDA" ~doc:"Reply rate lambda (mean reply d + 1/lambda).")
  in
  let rtt =
    Arg.(value & opt (some float) None
         & info [ "delay" ] ~docv:"D" ~doc:"Round-trip delay d in seconds.")
  in
  let hosts =
    Arg.(value & opt (some int) None
         & info [ "hosts" ] ~docv:"M" ~doc:"Number of occupied addresses (sets q = m/65024).")
  in
  let probe_cost =
    Arg.(value & opt (some float) None
         & info [ "probe-cost"; "c" ] ~docv:"C" ~doc:"Postage per ARP probe.")
  in
  let error_cost =
    Arg.(value & opt (some float) None
         & info [ "error-cost"; "E" ] ~docv:"E" ~doc:"Cost of an accepted address collision.")
  in
  let build jobs preset loss rate rtt hosts probe_cost error_cost =
    Cli_common.with_jobs jobs @@ fun () ->
    match List.assoc_opt preset Zeroconf.Params.presets with
    | None ->
        `Error
          (false,
           Printf.sprintf "unknown scenario %s (try %s)" preset
             (String.concat ", " (List.map fst Zeroconf.Params.presets)))
    | Some base ->
        let p = base in
        let p =
          match hosts with
          | Some m -> Zeroconf.Params.with_q p (Zeroconf.Params.q_of_hosts m)
          | None -> p
        in
        let p = Zeroconf.Params.with_costs ?probe_cost ?error_cost p in
        let p =
          match (loss, rate, rtt) with
          | None, None, None -> p
          | _ ->
              (* rebuild the shifted-exponential F_X around overrides,
                 defaulting unspecified pieces to the figure2 values *)
              let loss = Option.value ~default:(Zeroconf.Params.loss_probability p) loss in
              let rate = Option.value ~default:10. rate in
              let rtt = Option.value ~default:1. rtt in
              Zeroconf.Params.with_delay p
                (Dist.Families.shifted_exponential ~mass:(1. -. loss) ~rate
                   ~delay:rtt ())
        in
        `Ok p
  in
  Term.(ret (const build $ Cli_common.jobs_term $ preset $ loss $ rate $ rtt
             $ hosts $ probe_cost $ error_cost))

let n_term =
  Arg.(value & opt int 4
       & info [ "n"; "n-probes" ] ~docv:"N" ~doc:"Number of ARP probes.")

let r_term =
  Arg.(value & opt float 2.
       & info [ "r"; "r-period" ] ~docv:"R" ~doc:"Listening period in seconds.")

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)

let cost_cmd =
  let run p n r =
    Format.printf "%a@." Zeroconf.Params.pp p;
    let analytic = Zeroconf.Cost.mean p ~n ~r in
    let drm = Zeroconf.Drm.build p ~n ~r in
    Format.printf "C(%d, %g)      = %.6g   (Eq. 3)@." n r analytic;
    Format.printf "matrix solve  = %.6g   (Sec. 4.1 DRM)@." (Zeroconf.Drm.mean_cost drm);
    Format.printf "cost std dev  = %.6g@." (sqrt (Zeroconf.Drm.cost_variance drm));
    Format.printf "E(%d, %g)      = %.6g   (Eq. 4)@." n r
      (Zeroconf.Reliability.error_probability p ~n ~r);
    Format.printf "log10 E       = %.3f@."
      (Zeroconf.Reliability.log10_error_probability p ~n ~r);
    Format.printf "expected steps in DRM = %.4g@." (Zeroconf.Drm.expected_steps drm)
  in
  Cmd.v (Cmd.info "cost" ~doc:"Evaluate mean cost and error probability at (n, r).")
    Term.(const run $ scenario_term $ n_term $ r_term)

let optimal_r_cmd =
  let run p n =
    let res = Zeroconf.Optimize.optimal_r p ~n in
    Format.printf "r_opt(%d) = %.6g  with C = %.6g, error prob = %.3g@." n
      res.Numerics.Minimize.x res.Numerics.Minimize.fx
      (Zeroconf.Reliability.error_probability p ~n ~r:res.Numerics.Minimize.x)
  in
  Cmd.v (Cmd.info "optimal-r" ~doc:"Best listening period for a fixed probe count.")
    Term.(const run $ scenario_term $ n_term)

let optimal_n_cmd =
  let run p r =
    let n, cost = Zeroconf.Optimize.optimal_n p ~r in
    Format.printf "N(%g) = %d  with C = %.6g, error prob = %.3g@." r n cost
      (Zeroconf.Reliability.error_probability p ~n ~r)
  in
  Cmd.v (Cmd.info "optimal-n" ~doc:"Best probe count for a fixed listening period.")
    Term.(const run $ scenario_term $ r_term)

let assess_cmd =
  let draft_n =
    Arg.(value & opt int 4 & info [ "draft-n" ] ~doc:"Draft probe count to compare against.")
  in
  let draft_r =
    Arg.(value & opt float 2. & info [ "draft-r" ] ~doc:"Draft listening period to compare against.")
  in
  let run p draft_n draft_r =
    Format.printf "%a@." Zeroconf.Assessment.pp
      (Zeroconf.Assessment.run ~draft_n ~draft_r p)
  in
  Cmd.v
    (Cmd.info "assess"
       ~doc:"Global optimum vs the Internet-draft parameters (Sec. 6).")
    Term.(const run $ scenario_term $ draft_n $ draft_r)

let nu_cmd =
  let run p =
    Format.printf "nu = %d  (minimal useful probe count, Sec. 4.4)@."
      (Zeroconf.Optimize.min_useful_probes p)
  in
  Cmd.v (Cmd.info "nu" ~doc:"Minimal useful probe count.")
    Term.(const run $ scenario_term)

let calibrate_cmd =
  let run p n r =
    let res = Zeroconf.Calibrate.run p ~n ~r in
    Format.printf
      "calibrated for (n = %d, r = %g):@.  E = %.4g@.  c = %.4g@.  global \
       optimum under these costs: n = %d, r = %.4g@.  |r_opt - r| = %.2g@."
      n r res.Zeroconf.Calibrate.error_cost res.Zeroconf.Calibrate.probe_cost
      res.Zeroconf.Calibrate.optimum.Zeroconf.Optimize.n
      res.Zeroconf.Calibrate.optimum.Zeroconf.Optimize.r
      res.Zeroconf.Calibrate.r_residual
  in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:"Solve the Sec. 4.5 inverse problem: costs making (n, r) optimal.")
    Term.(const run $ scenario_term $ n_term $ r_term)

let simulate_cmd =
  let trials =
    Arg.(value & opt int 10_000 & info [ "trials" ] ~doc:"Number of configuration runs.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.") in
  let detailed =
    Arg.(value & flag
         & info [ "detailed" ]
             ~doc:"Packet-level simulation instead of the aggregate F_X sampler.")
  in
  let hosts_small =
    Arg.(value & opt int 100
         & info [ "sim-hosts" ]
             ~doc:"Configured hosts in the simulated network (detailed mode cost grows with this).")
  in
  let pool =
    Arg.(value & opt int 1024
         & info [ "pool" ] ~doc:"Address-pool size for the simulation.")
  in
  let run p n r trials seed detailed hosts pool =
    let rng = Numerics.Rng.create seed in
    let config =
      Netsim.Newcomer.drm_config ~n ~r ~probe_cost:p.Zeroconf.Params.probe_cost
        ~error_cost:p.Zeroconf.Params.error_cost
    in
    let outcomes =
      if detailed then
        Netsim.Scenario.run_detailed
          ~loss:(Zeroconf.Params.loss_probability p)
          ~one_way:(Dist.Families.exponential ~rate:20. ())
          ~occupied:hosts ~pool_size:pool ~config ~trials ~rng ()
      else
        Netsim.Scenario.run_aggregate ~delay:p.Zeroconf.Params.delay
          ~occupied:hosts ~pool_size:pool ~config ~trials ~rng ()
    in
    let agg = Netsim.Metrics.aggregate outcomes in
    Format.printf "%a@." Netsim.Metrics.pp_aggregate agg;
    (* reference values at the simulated occupancy *)
    let q_sim = float_of_int hosts /. float_of_int pool in
    let p_ref = Zeroconf.Params.with_q p q_sim in
    Format.printf "model: C(%d, %g) = %.6g, E = %.4g (at q = %g)@." n r
      (Zeroconf.Cost.mean p_ref ~n ~r)
      (Zeroconf.Reliability.error_probability p_ref ~n ~r)
      q_sim
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Monte-Carlo the protocol and compare to the model.")
    Term.(const run $ scenario_term $ n_term $ r_term $ trials $ seed $ detailed
          $ hosts_small $ pool)

let curve_cmd =
  let points =
    Arg.(value & opt int 60 & info [ "points" ] ~doc:"Grid resolution.")
  in
  let r_max = Arg.(value & opt float 4. & info [ "r-max" ] ~doc:"Upper r bound.") in
  let run p n points r_max =
    let grid = Numerics.Grid.linspace 0.01 r_max points in
    let table =
      Output.Table.create
        ~columns:
          [ ("r", Output.Table.Right); ("C(n,r)", Output.Table.Right);
            ("log10 E(n,r)", Output.Table.Right) ]
    in
    Array.iter
      (fun r ->
        Output.Table.add_row table
          [ Printf.sprintf "%.4g" r;
            Printf.sprintf "%.6g" (Zeroconf.Cost.mean p ~n ~r);
            Printf.sprintf "%.3f" (Zeroconf.Reliability.log10_error_probability p ~n ~r) ])
      grid;
    print_string (Output.Table.to_text table)
  in
  Cmd.v (Cmd.info "curve" ~doc:"Tabulate C_n(r) and E(n, r) over an r grid.")
    Term.(const run $ scenario_term $ n_term $ points $ r_max)

let latency_cmd =
  let run p n r =
    let dist = Zeroconf.Latency.periods p ~n ~r in
    Format.printf "configuration-time distribution at n = %d, r = %g:@." n r;
    Format.printf "  mean           = %.4f s@." (Zeroconf.Latency.mean dist);
    List.iter
      (fun q ->
        Format.printf "  %2.0f%% finish by  %.4g s@." (100. *. q)
          (Zeroconf.Latency.quantile dist q))
      [ 0.5; 0.9; 0.99; 0.999 ];
    List.iter
      (fun t ->
        Format.printf "  P(wait > %4.3gs) = %.3e@." t (Zeroconf.Latency.exceeds dist t))
      [ float_of_int n *. r; 2. *. float_of_int n *. r; 30. ]
  in
  Cmd.v
    (Cmd.info "latency"
       ~doc:"Exact distribution of the configuration time (beyond the paper's mean).")
    Term.(const run $ scenario_term $ n_term $ r_term)

let refine_cmd =
  let hosts =
    Arg.(value & opt int 1000 & info [ "occupied" ] ~doc:"Configured hosts m.")
  in
  let pool =
    Arg.(value & opt int 65024 & info [ "pool" ] ~doc:"Address-space size M.")
  in
  let run p n r occupied pool =
    let table =
      Output.Table.create
        ~columns:
          [ ("refinement", Output.Table.Left); ("mean cost", Output.Table.Right);
            ("error prob", Output.Table.Right); ("mean time (s)", Output.Table.Right);
            ("mean attempts", Output.Table.Right) ]
    in
    List.iter
      (fun (label, (a : Zeroconf.Attempts.analysis)) ->
        Output.Table.add_row table
          [ label;
            Printf.sprintf "%.4f" a.Zeroconf.Attempts.mean_cost;
            Printf.sprintf "%.3e" a.Zeroconf.Attempts.error_probability;
            Printf.sprintf "%.4f" a.Zeroconf.Attempts.mean_time;
            Printf.sprintf "%.4f" a.Zeroconf.Attempts.mean_attempts ])
      (Zeroconf.Attempts.compare_refinements p ~occupied ~pool ~n ~r ());
    print_string (Output.Table.to_text table)
  in
  Cmd.v
    (Cmd.info "refine"
       ~doc:"The Sec. 3.1 refinements the paper abstracts away: blacklisting and rate limiting.")
    Term.(const run $ scenario_term $ n_term $ r_term $ hosts $ pool)

let pareto_cmd =
  let run p =
    let front = Engine.Tradeoff.front p in
    Format.printf "Pareto front over (mean cost, error probability): %d designs@.@."
      (List.length front);
    let table =
      Output.Table.create
        ~columns:
          [ ("n", Output.Table.Right); ("r", Output.Table.Right);
            ("cost", Output.Table.Right); ("log10 error", Output.Table.Right) ]
    in
    let step = max 1 (List.length front / 20) in
    List.iteri
      (fun i (d : Engine.Tradeoff.design) ->
        if i mod step = 0 then
          Output.Table.add_row table
            [ string_of_int d.Engine.Tradeoff.n;
              Printf.sprintf "%.3f" d.Engine.Tradeoff.r;
              Printf.sprintf "%.3f" d.Engine.Tradeoff.cost;
              Printf.sprintf "%.1f" d.Engine.Tradeoff.log10_error ])
      front;
    print_string (Output.Table.to_text table);
    match Engine.Tradeoff.knee front with
    | Some k ->
        Format.printf "@.knee (best compromise): n = %d, r = %.3f (cost %.3f, log10 error %.1f)@."
          k.Engine.Tradeoff.n k.Engine.Tradeoff.r k.Engine.Tradeoff.cost
          k.Engine.Tradeoff.log10_error
    | None -> ()
  in
  Cmd.v
    (Cmd.info "pareto"
       ~doc:"Cost/reliability trade-off front: the paper's central tension, quantified.")
    Term.(const run $ scenario_term)

let maintenance_cmd =
  let trials =
    Arg.(value & opt int 100 & info [ "trials" ] ~doc:"Simulated collisions.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.") in
  let run p n r trials seed =
    let rng = Numerics.Rng.create seed in
    let est =
      Netsim.Maintenance.estimate_error_cost
        ~loss:(Zeroconf.Params.loss_probability p)
        ~one_way:(Dist.Families.exponential ~rate:20. ())
        ~occupied:100 ~pool_size:1024
        ~config:(Netsim.Newcomer.drm_config ~n ~r ~probe_cost:p.Zeroconf.Params.probe_cost ~error_cost:0.)
        ~trials ~rng ()
    in
    Format.printf "simulated %d address collisions:@." est.Netsim.Maintenance.trials;
    Format.printf "  mean disruption: %.2f s (max %.2f s)@."
      est.Netsim.Maintenance.disruption.Numerics.Stats.mean
      est.Netsim.Maintenance.disruption.Numerics.Stats.max;
    Format.printf "  mean broken connections: %.2f@." est.Netsim.Maintenance.mean_broken;
    Format.printf "  suggested error cost E ~ %.1f (on the waiting-seconds scale)@."
      est.Netsim.Maintenance.suggested_error_cost
  in
  Cmd.v
    (Cmd.info "maintenance"
       ~doc:"Simulate the post-collision defense protocol: an operational reading of E.")
    Term.(const run $ scenario_term $ n_term $ r_term $ trials $ seed)

let export_cmd =
  let format =
    Arg.(value & opt (enum [ ("prism", `Prism); ("props", `Props); ("dot", `Dot); ("tra", `Tra) ]) `Prism
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: prism (model), props (properties), dot (Graphviz), tra (explicit transitions).")
  in
  let run p n r format =
    match format with
    | `Prism -> print_string (Zeroconf.Export.to_prism p ~n ~r)
    | `Props -> print_string (Zeroconf.Export.prism_properties ~n)
    | `Dot -> print_string (Zeroconf.Export.to_dot p ~n ~r)
    | `Tra ->
        let drm = Zeroconf.Drm.build p ~n ~r in
        print_string (Dtmc.Export.to_tra drm.Zeroconf.Drm.chain)
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Emit the DRM for PRISM/Storm or Graphviz cross-validation.")
    Term.(const run $ scenario_term $ n_term $ r_term $ format)

let workload_cmd =
  let pattern =
    Arg.(value & opt (enum [ ("flash", `Flash); ("poisson", `Poisson); ("periodic", `Periodic) ]) `Flash
         & info [ "pattern" ] ~doc:"Arrival pattern: flash, poisson, or periodic.")
  in
  let count = Arg.(value & opt int 40 & info [ "count" ] ~doc:"Hosts in a flash crowd.") in
  let rate = Arg.(value & opt float 0.1 & info [ "arrival-rate" ] ~doc:"Arrivals per second (poisson/periodic).") in
  let horizon = Arg.(value & opt float 600. & info [ "horizon" ] ~doc:"Arrival window in seconds.") in
  let initial = Arg.(value & opt int 24 & info [ "initial" ] ~doc:"Hosts already configured.") in
  let pool = Arg.(value & opt int 1024 & info [ "pool" ] ~doc:"Address-pool size.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.") in
  let run _p n r pattern count rate horizon initial pool seed =
    let rng = Numerics.Rng.create seed in
    let pattern =
      match pattern with
      | `Flash -> Netsim.Workload.Flash { count; within = Float.min horizon 5. }
      | `Poisson -> Netsim.Workload.Poisson rate
      | `Periodic -> Netsim.Workload.Periodic (1. /. rate)
    in
    let config =
      { (Netsim.Newcomer.drm_config ~n ~r ~probe_cost:0. ~error_cost:0.) with
        Netsim.Newcomer.immediate_abort = true;
        Netsim.Newcomer.avoid_failed = true }
    in
    let result =
      Netsim.Workload.run ~pattern ~horizon ~loss:0.02
        ~one_way:(Dist.Families.uniform ~lo:0.005 ~hi:0.05 ())
        ~initial ~pool_size:pool ~config ~rng ()
    in
    Format.printf
      "%d arrivals: %d collisions, unique = %b@.mean config time %.2f s; \
       last completion at %.2f s@."
      result.Netsim.Workload.arrivals result.Netsim.Workload.collisions
      result.Netsim.Workload.all_unique result.Netsim.Workload.mean_config_time
      result.Netsim.Workload.last_completion
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:"Long-horizon network life: arrival patterns through the simulator.")
    Term.(const run $ scenario_term $ n_term $ r_term $ pattern $ count $ rate
          $ horizon $ initial $ pool $ seed)

let adaptive_cmd =
  let hosts =
    Arg.(value & opt int 200 & info [ "occupied" ] ~doc:"Configured hosts m.")
  in
  let pool =
    Arg.(value & opt int 256 & info [ "pool" ] ~doc:"Address-space size M.")
  in
  let blacklist =
    Arg.(value & flag & info [ "blacklist" ] ~doc:"Never retry failed addresses.")
  in
  let rate_limit =
    Arg.(value & opt (some (pair int float)) None
         & info [ "rate-limit" ] ~docv:"K,DELAY"
             ~doc:"Delay (seconds) before every attempt after K conflicts.")
  in
  let run p occupied pool blacklist rate_limit =
    let refinement =
      { Zeroconf.Attempts.blacklist; rate_limit; occupied; pool }
    in
    let s = Zeroconf.Adaptive.solve p ~refinement () in
    Format.printf "best fixed choice:  n = %d, r = %.3f  (cost %.4f)@."
      s.Zeroconf.Adaptive.fixed_best.Zeroconf.Adaptive.n
      s.Zeroconf.Adaptive.fixed_best.Zeroconf.Adaptive.r
      s.Zeroconf.Adaptive.fixed_cost;
    Format.printf "adaptive schedule:  cost %.4f  (improvement %.4f)@."
      s.Zeroconf.Adaptive.expected_cost s.Zeroconf.Adaptive.improvement;
    Array.iteri
      (fun i (c : Zeroconf.Adaptive.choice) ->
        if
          i < 8
          || i = Array.length s.Zeroconf.Adaptive.per_attempt - 1
          || (i > 0 && c <> s.Zeroconf.Adaptive.per_attempt.(i - 1))
        then
          Format.printf "  attempt %-3d -> n = %d, r = %.3f@." (i + 1)
            c.Zeroconf.Adaptive.n c.Zeroconf.Adaptive.r)
      s.Zeroconf.Adaptive.per_attempt
  in
  Cmd.v
    (Cmd.info "adaptive"
       ~doc:"Optimal per-attempt (n, r) schedule via the MDP solver (beyond the paper).")
    Term.(const run $ scenario_term $ hosts $ pool $ blacklist $ rate_limit)

let fit_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"DELAYS" ~doc:"File with one measured reply delay (seconds) per line.")
  in
  let losses =
    Arg.(value & opt int 0 & info [ "losses" ] ~doc:"Probes that never got a reply.")
  in
  let hosts =
    Arg.(value & opt int 1000 & info [ "fit-hosts" ] ~doc:"Expected occupied addresses.")
  in
  let run p file losses hosts =
    let delays = ref [] in
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            let line = String.trim (input_line ic) in
            if line <> "" then delays := float_of_string line :: !delays
          done
        with End_of_file -> ());
    let samples = Array.of_list (List.rev !delays) in
    if Array.length samples = 0 then failwith "no delays in the file";
    let fit = Dist.Fit.shifted_exponential_mle ~losses samples in
    Format.printf
      "fitted F_X: shifted exponential with d = %.4g s, lambda = %.4g, loss = %.3g@."
      fit.Dist.Fit.delay fit.Dist.Fit.rate fit.Dist.Fit.loss;
    let fitted = Dist.Fit.to_distribution fit in
    let q = Dist.Fit.assess ~losses fitted samples in
    Format.printf "fit quality: KS distance %.4f over %d samples@.@."
      q.Dist.Fit.ks_statistic (Array.length samples);
    let scenario =
      Zeroconf.Params.v ~name:"fitted" ~delay:fitted
        ~q:(Zeroconf.Params.q_of_hosts hosts)
        ~probe_cost:p.Zeroconf.Params.probe_cost
        ~error_cost:p.Zeroconf.Params.error_cost
    in
    let o = Zeroconf.Optimize.global_optimum scenario in
    Format.printf
      "recommended parameters for the measured network:@.\
      \  n = %d, r = %.4f  (cost %.4g, error probability %.3g)@.@."
      o.Zeroconf.Optimize.n o.Zeroconf.Optimize.r o.Zeroconf.Optimize.cost
      o.Zeroconf.Optimize.error_prob;
    (* how stable is that advice under measurement noise? *)
    let boot =
      Zeroconf.Uncertainty.bootstrap ~rounds:100 ~losses
        ~rng:(Numerics.Rng.create 1) ~delays:samples
        ~q:(Zeroconf.Params.q_of_hosts hosts)
        ~probe_cost:p.Zeroconf.Params.probe_cost
        ~error_cost:p.Zeroconf.Params.error_cost ()
    in
    Format.printf "%a@." Zeroconf.Uncertainty.pp boot
  in
  Cmd.v
    (Cmd.info "fit"
       ~doc:"Fit F_X to measured reply delays and recommend (n, r) — the Sec. 3.2 workflow.")
    Term.(const run $ scenario_term $ file $ losses $ hosts)

let check_cmd =
  let formula_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FORMULA"
             ~doc:"PCTL formula over the DRM's state labels (start, 1st..nth, \
                   error, ok), e.g. 'P<1e-40 [ F error ]'.")
  in
  let run p n r text =
    let drm = Zeroconf.Drm.build p ~n ~r in
    let chain = drm.Zeroconf.Drm.chain in
    let labels = Dtmc.Pctl.label_of_state chain in
    (match Dtmc.Pctl_parser.formula text with
    | formula ->
        let verdict =
          Dtmc.Pctl.holds chain labels ~from:drm.Zeroconf.Drm.start formula
        in
        Format.printf "%s@.  |= %s@." (if verdict then "TRUE" else "FALSE") text
    | exception Dtmc.Pctl_parser.Parse_error msg -> (
        (* maybe it is a bare path formula: answer the P=? query *)
        match Dtmc.Pctl_parser.path text with
        | path ->
            Format.printf "P=? [ %s ] = %.6g@." text
              (Dtmc.Pctl.path_probability chain labels
                 ~from:drm.Zeroconf.Drm.start path)
        | exception Dtmc.Pctl_parser.Parse_error _ ->
            Format.printf "parse error: %s@." msg;
            exit 1))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Model-check a PCTL formula on the DRM (or compute P=? for a bare path).")
    Term.(const run $ scenario_term $ n_term $ r_term $ formula_arg)

let report_cmd =
  let draft_n =
    Arg.(value & opt int 4 & info [ "draft-n" ] ~doc:"Draft probe count.")
  in
  let draft_r =
    Arg.(value & opt float 2. & info [ "draft-r" ] ~doc:"Draft listening period.")
  in
  let run p draft_n draft_r = Engine.Report.print ~draft_n ~draft_r p in
  Cmd.v
    (Cmd.info "report"
       ~doc:"One-page Markdown design report for a scenario (optimum, frontier, sensitivities).")
    Term.(const run $ scenario_term $ draft_n $ draft_r)

(* ------------------------------------------------------------------ *)
(* Query-engine commands                                               *)

let quantity_conv name =
  match Engine.Query.quantity_of_name name with
  | Some q -> `Ok q
  | None ->
      `Error
        (false,
         Printf.sprintf
           "unknown quantity %s (try cost, error, log10-error, variance, \
            latency)"
           name)

let pp_answer_value ppf (v : Engine.Answer.value) =
  match v with
  | Engine.Answer.Scalar x -> Format.fprintf ppf "%.10g" x
  | Engine.Answer.Interval { mean; ci_lo; ci_hi } ->
      Format.fprintf ppf "%.6g [%.6g, %.6g]" mean ci_lo ci_hi

let print_provenance (a : Engine.Answer.t) =
  Format.printf "backend = %s, evals = %d, wall = %.3f ms%s@."
    a.Engine.Answer.backend a.Engine.Answer.evals
    (Int64.to_float a.Engine.Answer.wall_ns /. 1e6)
    (if a.Engine.Answer.cached then " (cached)" else "")

let no_cache_term =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"Disable the answer cache (values are identical either way; \
                 only provenance and repeat-query cost change).")

let query_cmd =
  let quantity =
    Arg.(value & opt string "cost"
         & info [ "quantity" ] ~docv:"Q"
             ~doc:"Quantity to evaluate: cost, error, log10-error, variance, \
                   or latency.")
  in
  let backend =
    Arg.(value & opt (some string) None
         & info [ "backend" ] ~docv:"B"
             ~doc:"Force a backend (analytic, kernel, dtmc, mc) instead of \
                   letting the planner choose.")
  in
  let trials =
    Arg.(value & opt int Engine.Crosscheck.default_trials
         & info [ "trials" ] ~doc:"Monte-Carlo trials (mc backend).")
  in
  let seed =
    Arg.(value & opt int Engine.Crosscheck.default_seed
         & info [ "seed" ] ~doc:"Monte-Carlo RNG seed (mc backend).")
  in
  (* long names avoid the 'n'/'r' prefixes so that --n / --r stay
     unambiguous abbreviations of --n-probes / --r-period here *)
  let r_sweep =
    Arg.(value & opt (some (t3 float float int)) None
         & info [ "sweep-r" ] ~docv:"LO,HI,POINTS"
             ~doc:"Sweep r over a linear grid instead of the single point.")
  in
  let n_max =
    Arg.(value & opt (some int) None
         & info [ "sweep-n" ] ~docv:"N"
             ~doc:"Sweep n over 1..N instead of the single point.")
  in
  let run p n r quantity backend trials seed r_sweep n_max no_cache =
    if no_cache then Engine.Cache.set_enabled false;
    match quantity_conv quantity with
    | `Error _ as e -> e
    | `Ok qty -> (
        let accuracy =
          if backend = Some "mc" then
            Engine.Query.Sampled { trials; seed }
          else Engine.Query.Exact
        in
        match
          let q =
            match (r_sweep, n_max) with
            | Some (lo, hi, points), _ ->
                Engine.Query.r_sweep ~accuracy qty p ~n
                  ~rs:(Numerics.Grid.linspace lo hi points)
            | None, Some n_max ->
                Engine.Query.n_sweep ~accuracy qty p
                  ~ns:(Array.init n_max (fun i -> i + 1))
                  ~r
            | None, None -> Engine.Query.point ~accuracy qty p ~n ~r
          in
          Engine.Executor.eval ?backend q
        with
        | a ->
            Format.printf "%s of %s@."
              (Engine.Query.quantity_name qty)
              p.Zeroconf.Params.name;
            Array.iter
              (fun (pt : Engine.Answer.point) ->
                Format.printf "  n = %-4d r = %-8g %a@." pt.Engine.Answer.n
                  pt.Engine.Answer.r pp_answer_value pt.Engine.Answer.value)
              a.Engine.Answer.points;
            print_provenance a;
            `Ok ()
        | exception Engine.Planner.Unsupported msg -> `Error (false, msg)
        | exception Invalid_argument msg -> `Error (false, msg))
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Evaluate any model quantity through the backend-agnostic query \
             engine (with provenance).")
    Term.(ret (const run $ scenario_term $ n_term $ r_term $ quantity $ backend
               $ trials $ seed $ r_sweep $ n_max $ no_cache_term))

let crosscheck_cmd =
  let quantity =
    Arg.(value & opt (some string) None
         & info [ "quantity" ] ~docv:"Q"
             ~doc:"Single quantity to cross-check (default: cost and error).")
  in
  let trials =
    Arg.(value & opt int Engine.Crosscheck.default_trials
         & info [ "trials" ] ~doc:"Monte-Carlo trials.")
  in
  let seed =
    Arg.(value & opt int Engine.Crosscheck.default_seed
         & info [ "seed" ] ~doc:"Monte-Carlo RNG seed.")
  in
  let run p n r quantity trials seed no_cache =
    if no_cache then Engine.Cache.set_enabled false;
    let quantities =
      match quantity with
      | None -> `Ok [ Engine.Query.Mean_cost; Engine.Query.Error_probability ]
      | Some name -> (
          match quantity_conv name with
          | `Ok q -> `Ok [ q ]
          | `Error _ as e -> e)
    in
    match quantities with
    | `Error _ as e -> e
    | `Ok quantities ->
        List.iter
          (fun qty ->
            let q = Engine.Query.point qty p ~n ~r in
            let rep = Engine.Crosscheck.run ~trials ~seed q in
            Format.printf "crosscheck: %a@." Engine.Query.pp q;
            let table =
              Output.Table.create
                ~columns:
                  [ ("backend", Output.Table.Left);
                    ("value", Output.Table.Right);
                    ("evals", Output.Table.Right);
                    ("wall (ms)", Output.Table.Right) ]
            in
            List.iter
              (fun (a : Engine.Answer.t) ->
                Output.Table.add_row table
                  [ a.Engine.Answer.backend;
                    Format.asprintf "%a" pp_answer_value
                      a.Engine.Answer.points.(0).Engine.Answer.value;
                    string_of_int a.Engine.Answer.evals;
                    Printf.sprintf "%.3f"
                      (Int64.to_float a.Engine.Answer.wall_ns /. 1e6) ])
              rep.Engine.Crosscheck.answers;
            print_string (Output.Table.to_text table);
            Format.printf
              "max relative divergence (analytic/kernel/dtmc) = %.3g@."
              rep.Engine.Crosscheck.max_rel_divergence;
            (match rep.Engine.Crosscheck.mc_covered with
            | Some covered ->
                Format.printf "monte carlo inside its 95%% CI: %b@." covered
            | None ->
                Format.printf "monte carlo: not applicable to this quantity@.");
            Format.printf "@.")
          quantities;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "crosscheck"
       ~doc:"Run one query on every capable backend and report the maximum \
             relative divergence.")
    Term.(ret (const run $ scenario_term $ n_term $ r_term $ quantity $ trials
               $ seed $ no_cache_term))

(* One query per line: QUANTITY [key=value ...].  Keys: scenario=NAME,
   n=INT, r=FLOAT, ns=LO:HI (inclusive int range), rs=LO:HI:POINTS
   (linear grid), backend=NAME, trials=INT, seed=INT.  '#' starts a
   comment; blank lines are skipped. *)
let parse_batch_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let fail msg = failwith (Printf.sprintf "line %d: %s" lineno msg) in
  let tokens =
    String.split_on_char ' ' (String.trim line)
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  in
  match tokens with
  | [] -> None
  | qname :: rest ->
      let qty =
        match Engine.Query.quantity_of_name qname with
        | Some q -> q
        | None -> fail (Printf.sprintf "unknown quantity %s" qname)
      in
      let scenario = ref Zeroconf.Params.figure2 in
      let n = ref 4 and r = ref 2. in
      let ns = ref None and rs = ref None in
      let backend = ref None in
      let trials = ref Engine.Crosscheck.default_trials in
      let seed = ref Engine.Crosscheck.default_seed in
      let int_of key v =
        match int_of_string_opt v with
        | Some i -> i
        | None -> fail (Printf.sprintf "%s=%s is not an integer" key v)
      in
      let float_of key v =
        match float_of_string_opt v with
        | Some x -> x
        | None -> fail (Printf.sprintf "%s=%s is not a number" key v)
      in
      List.iter
        (fun tok ->
          let key, value =
            match String.index_opt tok '=' with
            | Some i ->
                ( String.sub tok 0 i,
                  String.sub tok (i + 1) (String.length tok - i - 1) )
            | None -> fail (Printf.sprintf "expected key=value, got %s" tok)
          in
          match key with
          | "scenario" -> (
              match List.assoc_opt value Zeroconf.Params.presets with
              | Some p -> scenario := p
              | None -> fail (Printf.sprintf "unknown scenario %s" value))
          | "n" -> n := int_of key value
          | "r" -> r := float_of key value
          | "ns" -> (
              match String.split_on_char ':' value with
              | [ lo; hi ] ->
                  let lo = int_of key lo and hi = int_of key hi in
                  if hi < lo then fail "ns range is empty";
                  ns := Some (Array.init (hi - lo + 1) (fun i -> lo + i))
              | _ -> fail "ns expects LO:HI")
          | "rs" -> (
              match String.split_on_char ':' value with
              | [ lo; hi; points ] ->
                  rs :=
                    Some
                      (Numerics.Grid.linspace (float_of key lo)
                         (float_of key hi) (int_of key points))
              | _ -> fail "rs expects LO:HI:POINTS")
          | "backend" -> backend := Some value
          | "trials" -> trials := int_of key value
          | "seed" -> seed := int_of key value
          | _ -> fail (Printf.sprintf "unknown key %s" key))
        rest;
      let accuracy =
        if !backend = Some "mc" then
          Engine.Query.Sampled { trials = !trials; seed = !seed }
        else Engine.Query.Exact
      in
      let query =
        match (!ns, !rs) with
        | Some _, Some _ -> fail "ns and rs are mutually exclusive"
        | Some ns, None ->
            Engine.Query.n_sweep ~accuracy qty !scenario ~ns ~r:!r
        | None, Some rs ->
            Engine.Query.r_sweep ~accuracy qty !scenario ~n:!n ~rs
        | None, None -> Engine.Query.point ~accuracy qty !scenario ~n:!n ~r:!r
      in
      Some (query, !backend)

let batch_cmd =
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"QUERIES"
             ~doc:"File with one query per line ('-' reads standard input). \
                   Grammar: QUANTITY [scenario=NAME] [n=INT] [r=FLOAT] \
                   [ns=LO:HI] [rs=LO:HI:POINTS] [backend=B] [trials=T] \
                   [seed=S].  '#' starts a comment.")
  in
  let stats =
    Arg.(value & flag
         & info [ "cache-stats" ]
             ~doc:"Append the answer-cache hit/miss statistics as a trailing \
                   comment line.")
  in
  let run jobs file no_cache stats =
    Cli_common.with_jobs jobs @@ fun () ->
    if no_cache then Engine.Cache.set_enabled false;
    let read_lines ic =
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      List.rev !lines
    in
    let lines =
      if file = "-" then read_lines stdin
      else begin
        let ic = open_in file in
        Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_lines ic)
      end
    in
    match
      List.concat
        (List.mapi
           (fun i line ->
             Option.to_list (parse_batch_line (i + 1) line))
           lines)
    with
    | exception Failure msg -> `Error (false, msg)
    | [] -> `Error (false, "no queries in the input")
    | requests -> (
        match
          Array.of_list
            (List.map
               (fun (q, backend) -> Engine.Planner.plan ?backend q)
               requests)
        with
        | exception Engine.Planner.Unsupported msg -> `Error (false, msg)
        | exception Invalid_argument msg -> `Error (false, msg)
        | plans ->
            let answers = Engine.Executor.run_batch plans in
            Array.iteri
              (fun i (pl : Engine.Plan.t) ->
                let a = answers.(i) in
                let q = pl.Engine.Plan.query in
                Array.iter
                  (fun (pt : Engine.Answer.point) ->
                    Output.Emit.print_line
                      (Format.asprintf "%s %s n=%d r=%g %a"
                         (Engine.Query.quantity_name q.Engine.Query.quantity)
                         q.Engine.Query.scenario.Zeroconf.Params.name
                         pt.Engine.Answer.n pt.Engine.Answer.r pp_answer_value
                         pt.Engine.Answer.value))
                  a.Engine.Answer.points;
                Output.Emit.print_line
                  (Printf.sprintf "# backend=%s evals=%d cached=%b"
                     a.Engine.Answer.backend a.Engine.Answer.evals
                     a.Engine.Answer.cached))
              plans;
            if stats then
              Output.Emit.print_line
                (Format.asprintf "# cache: %a" Engine.Cache.pp_stats
                   (Engine.Cache.stats Engine.Cache.default));
            `Ok ())
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Evaluate a list of queries as one batch: cache hits first, the \
             rest grouped per backend so shared work amortizes.")
    Term.(ret (const run $ Cli_common.jobs_term $ file $ no_cache_term $ stats))

let () =
  let info =
    Cmd.info "zeroconf_cli" ~version:"1.0.0"
      ~doc:"Cost-optimization of the IPv4 zeroconf protocol (DSN 2003 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ cost_cmd; optimal_r_cmd; optimal_n_cmd; assess_cmd; nu_cmd;
            calibrate_cmd; simulate_cmd; curve_cmd; latency_cmd; refine_cmd;
            pareto_cmd; maintenance_cmd; export_cmd; workload_cmd; adaptive_cmd;
            report_cmd; fit_cmd; check_cmd; query_cmd; crosscheck_cmd;
            batch_cmd ]))
