(* Shared --jobs/-j/ZEROCONF_JOBS plumbing for the zeroconf executables.

   Folded into every subcommand's term; the default pins jobs = 1
   (serial) unless ZEROCONF_JOBS is set, keeping the golden CLI and
   figure outputs byte-identical — parallel results are bit-identical
   anyway, this just avoids spawning domains nobody asked for. *)

let jobs_term =
  Cmdliner.Arg.(
    value & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains for parallel sweeps (default: \
              $(b,ZEROCONF_JOBS) if set, else 1).")

let check_jobs = function
  | Some jobs when jobs < 1 ->
      Some (Printf.sprintf "option '--jobs': %d is not a positive integer" jobs)
  | _ -> None

let apply_jobs = function
  | Some jobs -> Exec.Pool.set_jobs jobs
  | None -> if Sys.getenv_opt "ZEROCONF_JOBS" = None then Exec.Pool.set_jobs 1

(* [with_jobs jobs k] validates and applies the worker count, then runs
   [k]; returns a [`Error] for cmdliner's [Term.ret] on a bad count. *)
let with_jobs jobs k =
  match check_jobs jobs with
  | Some msg -> `Error (false, msg)
  | None ->
      apply_jobs jobs;
      k ()
