(* Regenerate every figure of the paper into out/: SVG + CSV per
   figure, plus an ASCII preview on stdout. *)

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let axis_of_figure (fig : Engine.Experiments.figure) =
  let xs =
    Array.concat
      (List.map
         (fun (s : Engine.Experiments.series) -> Array.map fst s.points)
         fig.series)
  in
  let ys =
    Array.concat
      (List.map
         (fun (s : Engine.Experiments.series) -> Array.map snd s.points)
         fig.series)
  in
  let x_axis = Output.Axis.of_data ~pad:0. xs in
  let y_axis =
    match (fig.y_min, fig.y_max) with
    | Some lo, Some hi -> Output.Axis.create ~lo ~hi ()
    | _ ->
        let finite = Array.of_list (List.filter Float.is_finite (Array.to_list ys)) in
        let data_axis = Output.Axis.of_data finite in
        let lo = Option.value ~default:(Output.Axis.lo data_axis) fig.y_min in
        let hi = Option.value ~default:(Output.Axis.hi data_axis) fig.y_max in
        Output.Axis.create ~lo ~hi ()
  in
  (x_axis, y_axis)

let render_figure ~out_dir (fig : Engine.Experiments.figure) =
  let x_axis, y_axis = axis_of_figure fig in
  let chart =
    { Output.Chart.title = fig.title;
      x_label = fig.x_label;
      y_label = fig.y_label;
      x_axis;
      y_axis;
      series =
        List.map
          (fun (s : Engine.Experiments.series) ->
            Output.Chart.series ~label:s.label s.points)
          fig.series }
  in
  let svg_path = Filename.concat out_dir (fig.id ^ ".svg") in
  let csv_path = Filename.concat out_dir (fig.id ^ ".csv") in
  Output.Chart.save chart svg_path;
  Output.Csv.write_series ~path:csv_path ~x_label:fig.x_label
    (List.map
       (fun (s : Engine.Experiments.series) -> (s.label, s.points))
       fig.series);
  print_string
    (Output.Ascii_chart.plot ~x_axis ~y_axis ~title:fig.title
       (List.map
          (fun (s : Engine.Experiments.series) -> (s.label, s.points))
          fig.series));
  Printf.printf "wrote %s and %s\n\n" svg_path csv_path

(* bonus: the (n, r) cost landscape as a heatmap (log10 of Eq. 3) *)
let render_landscape ~out_dir =
  let surface = Engine.Experiments.cost_landscape () in
  let heatmap =
    { Output.Heatmap.title = "log10 C(n, r) landscape (figure2 scenario)";
      x_label = "r (s)";
      y_label = "n";
      x_ticks = Array.map (Printf.sprintf "%.2g") surface.Engine.Experiments.rs;
      y_ticks = Array.map string_of_int surface.Engine.Experiments.ns;
      values = surface.Engine.Experiments.log10_cost }
  in
  let path = Filename.concat out_dir "cost_landscape.svg" in
  Output.Heatmap.save heatmap path;
  Printf.printf "wrote %s\n" path

let generate out_dir jobs =
  Cli_common.with_jobs jobs @@ fun () ->
  ensure_dir out_dir;
  List.iter (render_figure ~out_dir) (Engine.Experiments.all_figures ());
  List.iter (render_figure ~out_dir) (Engine.Experiments.extension_figures ());
  render_landscape ~out_dir;
  `Ok ()

let () =
  let open Cmdliner in
  let out_dir =
    Arg.(value & pos 0 string "out"
         & info [] ~docv:"OUT_DIR" ~doc:"Directory to write SVG/CSV into.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "figures" ~doc:"Regenerate every figure of the paper into OUT_DIR.")
      Term.(ret (const generate $ out_dir $ Cli_common.jobs_term))
  in
  exit (Cmd.eval cmd)
