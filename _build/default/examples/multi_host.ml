(* Beyond the paper's single-host model: several appliances powering on
   at once (the setting of the companion Uppaal analysis, ref [7]).
   The draft's rule that a rival's probe for one's own candidate also
   signals a conflict is what keeps simultaneous newcomers apart.

     dune exec examples/multi_host.exe
*)

let () =
  let rng = Numerics.Rng.create 11 in
  let one_way = Dist.Families.uniform ~lo:0.01 ~hi:0.1 () in
  let config =
    { (Netsim.Newcomer.drm_config ~n:3 ~r:0.5 ~probe_cost:1. ~error_cost:100.)
      with Netsim.Newcomer.immediate_abort = true }
  in

  (* A tiny 64-address pool with 32 occupied: deliberately brutal, so
     collisions are observable. *)
  Format.printf
    "8 newcomers, 32/64 addresses taken, loss 5%%, immediate abort:@.@.";
  let result =
    Netsim.Multi.run ~loss:0.05 ~one_way ~occupied:32 ~pool_size:64
      ~newcomers:8 ~spacing:0.2 ~config ~rng ()
  in
  Format.printf "  all addresses unique: %b@." result.Netsim.Multi.all_unique;
  Format.printf "  collisions with existing hosts: %d@." result.Netsim.Multi.collisions;
  Format.printf "  makespan: %.2f s@.@." result.Netsim.Multi.makespan;
  Array.iteri
    (fun i (o : Netsim.Metrics.outcome) ->
      Format.printf "  newcomer %d -> %s  (%d probes, %d restarts, %.2f s)%s@."
        i
        (Netsim.Address_pool.to_string o.Netsim.Metrics.address)
        o.Netsim.Metrics.probes_sent o.Netsim.Metrics.restarts
        o.Netsim.Metrics.config_time
        (if o.Netsim.Metrics.collided then "  COLLISION" else ""))
    result.Netsim.Multi.outcomes;

  (* Sweep the number of simultaneous newcomers. *)
  Format.printf "@.Collision rate vs simultaneous newcomers (200 trials each):@.";
  let rates =
    Netsim.Multi.collision_rate_vs_newcomers ~loss:0.05 ~one_way ~occupied:32
      ~pool_size:64 ~config ~trials:200 ~counts:[ 1; 2; 4; 8; 16 ] ~rng ()
  in
  List.iter
    (fun (count, rate) ->
      Format.printf "  %2d newcomers: per-newcomer collision rate %.4f@." count rate)
    rates
