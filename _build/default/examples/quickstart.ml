(* Quickstart: evaluate the zeroconf cost model on the paper's demo
   scenario and find the optimal protocol parameters.

     dune exec examples/quickstart.exe
*)

let () =
  (* The Sec. 4.3 scenario: 1000 hosts on the link, round-trip delay
     d = 1 s, reply rate lambda = 10, loss probability 1e-15, postage
     c = 2, error cost E = 1e35. *)
  let scenario = Zeroconf.Params.figure2 in
  Format.printf "%a@.@." Zeroconf.Params.pp scenario;

  (* Mean cost and reliability of the Internet-draft's choice n = 4,
     r = 2 (Eqs. 3 and 4). *)
  let n = 4 and r = 2. in
  Format.printf "Draft parameters (n = %d, r = %g):@." n r;
  Format.printf "  mean total cost  C(n, r) = %.4f@."
    (Zeroconf.Cost.mean scenario ~n ~r);
  Format.printf "  error probability E(n, r) = %.3g@.@."
    (Zeroconf.Reliability.error_probability scenario ~n ~r);

  (* How few probes can work at all? (Sec. 4.4) *)
  Format.printf "Minimal useful probe count nu = %d@.@."
    (Zeroconf.Optimize.min_useful_probes scenario);

  (* Optimal listening period for each probe count (Fig. 2's minima). *)
  Format.printf "Optimal r per n:@.";
  List.iter
    (fun n ->
      let res = Zeroconf.Optimize.optimal_r scenario ~n in
      Format.printf "  n = %d: r_opt = %.4f, C = %.4f@." n
        res.Numerics.Minimize.x res.Numerics.Minimize.fx)
    [ 3; 4; 5; 6; 7; 8 ];
  Format.printf "@.";

  (* The global optimum over both parameters. *)
  let best = Zeroconf.Optimize.global_optimum scenario in
  Format.printf
    "Global optimum: n = %d, r = %.4f  (cost %.4f, error prob %.3g)@."
    best.Zeroconf.Optimize.n best.Zeroconf.Optimize.r
    best.Zeroconf.Optimize.cost best.Zeroconf.Optimize.error_prob
