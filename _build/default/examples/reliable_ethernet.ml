(* The paper's Sec. 6 assessment: on a realistic modern ethernet
   (loss 1e-12, millisecond round trips) the draft's n = 4, r = 2 is
   far from optimal — two probes and ~3.5 s of total listening give
   lower cost at astronomically good reliability.

     dune exec examples/reliable_ethernet.exe
*)

let () =
  let scenario = Zeroconf.Params.realistic_ethernet in
  Format.printf "%a@.@." Zeroconf.Params.pp scenario;
  let a = Zeroconf.Assessment.run scenario in
  Format.printf "%a@.@." Zeroconf.Assessment.pp a;

  (* Paper's headline numbers to compare against. *)
  Format.printf "Paper reports: optimum n = 2, r ~= 1.75, error ~= 4e-22@.";
  Format.printf "We compute:    optimum n = %d, r = %.4f, error = %.3g@.@."
    a.optimum.Zeroconf.Optimize.n a.optimum.Zeroconf.Optimize.r
    a.optimum.Zeroconf.Optimize.error_prob;

  (* "Assuming less than m = 1000 hosts will also allow one to drop the
     waiting time and thus the total costs further."  Quantify that. *)
  Format.printf "Effect of the expected network size (occupied addresses):@.";
  let table =
    Output.Table.create
      ~columns:
        [ ("hosts", Output.Table.Right); ("opt n", Output.Table.Right);
          ("opt r", Output.Table.Right); ("cost", Output.Table.Right);
          ("error prob", Output.Table.Right) ]
  in
  List.iter
    (fun m ->
      let p = Zeroconf.Params.with_q scenario (Zeroconf.Params.q_of_hosts m) in
      let o = Zeroconf.Optimize.global_optimum p in
      Output.Table.add_row table
        [ string_of_int m;
          string_of_int o.Zeroconf.Optimize.n;
          Printf.sprintf "%.3f" o.Zeroconf.Optimize.r;
          Printf.sprintf "%.3f" o.Zeroconf.Optimize.cost;
          Printf.sprintf "%.2e" o.Zeroconf.Optimize.error_prob ])
    [ 10; 100; 500; 1000; 5000; 20000 ];
  print_string (Output.Table.to_text table)
