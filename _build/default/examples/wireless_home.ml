(* A consumer-electronics maker is shipping devices for unreliable
   wireless home networks (the paper's r = 2 worst case: loss 1e-5,
   round trip up to a second).  How should the zeroconf parameters be
   chosen, and what does the draft's recommendation cost?

     dune exec examples/wireless_home.exe
*)

let scenario = Zeroconf.Params.wireless_worst_case

let () =
  Format.printf "%a@.@." Zeroconf.Params.pp scenario;

  (* Tabulate the per-n optima: the designer's menu. *)
  let table =
    Output.Table.create
      ~columns:
        [ ("n", Output.Table.Right); ("r_opt", Output.Table.Right);
          ("cost", Output.Table.Right); ("error prob", Output.Table.Right);
          ("config time (s)", Output.Table.Right) ]
  in
  List.iter
    (fun n ->
      let res = Zeroconf.Optimize.optimal_r scenario ~n in
      let r = res.Numerics.Minimize.x in
      Output.Table.add_row table
        [ string_of_int n;
          Printf.sprintf "%.3f" r;
          Printf.sprintf "%.3f" res.Numerics.Minimize.fx;
          Printf.sprintf "%.2e"
            (Zeroconf.Reliability.error_probability scenario ~n ~r);
          Printf.sprintf "%.2f" (float_of_int n *. r) ])
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  print_string (Output.Table.to_text table);
  print_newline ();

  (* The draft's recommendation for unreliable links: n = 4, r = 2. *)
  Format.printf "%a@.@." Zeroconf.Assessment.pp
    (Zeroconf.Assessment.run ~draft_n:4 ~draft_r:2. scenario);

  (* What if the user is impatient?  Cap the configuration time n*r. *)
  Format.printf "Cost of impatience (best (n, r) with n*r <= budget):@.";
  List.iter
    (fun budget ->
      let best = Zeroconf.Optimize.constrained_optimum ~budget scenario in
      Format.printf "  budget %5.1f s -> n = %d, r = %.3f, cost %.3f@." budget
        best.Zeroconf.Optimize.n best.Zeroconf.Optimize.r
        best.Zeroconf.Optimize.cost)
    [ 2.; 4.; 8.; 16. ];
  Format.printf "@.Probes needed for an error target (at r = 2):@.";
  List.iter
    (fun target ->
      match
        Zeroconf.Optimize.probes_for_error_target scenario ~r:2. ~target
      with
      | Some n -> Format.printf "  E(n, 2) <= %.0e needs n = %d@." target n
      | None -> Format.printf "  E(n, 2) <= %.0e is unreachable@." target)
    [ 1e-6; 1e-12; 1e-21; 1e-40 ]
