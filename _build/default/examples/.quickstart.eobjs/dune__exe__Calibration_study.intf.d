examples/calibration_study.mli:
