examples/measured_workflow.mli:
