examples/model_vs_simulation.mli:
