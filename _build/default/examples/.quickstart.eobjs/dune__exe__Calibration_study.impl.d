examples/calibration_study.ml: Format List Output Printf Zeroconf
