examples/maintenance_study.mli:
