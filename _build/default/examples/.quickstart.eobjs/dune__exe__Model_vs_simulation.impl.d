examples/model_vs_simulation.ml: Dist Dtmc Format List Netsim Numerics String Zeroconf
