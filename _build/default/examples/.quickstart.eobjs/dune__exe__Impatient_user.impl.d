examples/impatient_user.ml: Format List Output Printf Zeroconf
