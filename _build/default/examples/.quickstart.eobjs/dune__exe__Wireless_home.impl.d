examples/wireless_home.ml: Format List Numerics Output Printf Zeroconf
