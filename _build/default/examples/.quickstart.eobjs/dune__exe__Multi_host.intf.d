examples/multi_host.mli:
