examples/quickstart.mli:
