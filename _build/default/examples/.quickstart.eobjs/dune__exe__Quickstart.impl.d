examples/quickstart.ml: Format List Numerics Zeroconf
