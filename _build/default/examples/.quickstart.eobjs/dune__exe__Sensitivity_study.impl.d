examples/sensitivity_study.ml: Float Format List Output Printf Zeroconf
