examples/model_checking.ml: Dtmc Float Format Printf Zeroconf
