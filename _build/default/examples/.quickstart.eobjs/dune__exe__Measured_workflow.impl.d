examples/measured_workflow.ml: Array Dist Format Numerics Zeroconf
