examples/maintenance_study.ml: Dist Format List Netsim Numerics Output Printf
