examples/reliable_ethernet.mli:
