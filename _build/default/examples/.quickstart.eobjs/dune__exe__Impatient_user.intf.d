examples/impatient_user.mli:
