examples/reliable_ethernet.ml: Format List Output Printf Zeroconf
