examples/wireless_home.mli:
