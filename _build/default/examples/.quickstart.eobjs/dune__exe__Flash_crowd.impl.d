examples/flash_crowd.ml: Dist Format Netsim Numerics
