examples/multi_host.ml: Array Dist Format List Netsim Numerics
