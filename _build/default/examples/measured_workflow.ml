(* The full measurement-driven workflow the paper calls for (Sec. 3.2:
   "Preferably, F_X should be based on measurements"):

   1. run a measurement campaign on the (simulated) network: send echo
      probes to a configured host and record reply delays and losses;
   2. fit the paper's defective shifted-exponential F_X to the data
      (plus a moment-matched Erlang alternative);
   3. feed the fitted distribution to the optimizer and compare the
      recommended (n, r) against the one computed from the network's
      true parameters.

     dune exec examples/measured_workflow.exe
*)

let () =
  let rng = Numerics.Rng.create 2026 in

  (* ----- ground truth: the hidden network parameters ----- *)
  let true_loss = 0.02 and true_rate = 8. and true_delay = 0.12 in
  let truth =
    Dist.Families.shifted_exponential ~mass:(1. -. true_loss) ~rate:true_rate
      ~delay:true_delay ()
  in
  Format.printf "hidden truth: d = %.3f, lambda = %.1f, loss = %.3f@.@."
    true_delay true_rate true_loss;

  (* ----- 1. measurement campaign: 2000 echo probes ----- *)
  let probes = 2000 in
  let delays = ref [] and losses = ref 0 in
  for _ = 1 to probes do
    match truth.Dist.Distribution.sample rng with
    | Some d -> delays := d :: !delays
    | None -> incr losses
  done;
  let samples = Array.of_list !delays in
  Format.printf "measured %d replies, %d losses@.@." (Array.length samples) !losses;

  (* ----- 2. fit ----- *)
  let mle = Dist.Fit.shifted_exponential_mle ~losses:!losses samples in
  Format.printf "fitted shifted-exp (MLE): d = %.4f, lambda = %.2f, loss = %.4f@."
    mle.Dist.Fit.delay mle.Dist.Fit.rate mle.Dist.Fit.loss;
  let nm = Dist.Fit.shifted_exponential_nm ~losses:!losses samples in
  Format.printf "fitted shifted-exp (NM):  d = %.4f, lambda = %.2f@."
    nm.Dist.Fit.delay nm.Dist.Fit.rate;
  let erlang = Dist.Fit.erlang_moment_match ~losses:!losses samples in
  Format.printf "fitted alternative:       %s@.@." erlang.Dist.Distribution.name;
  let q_fit = Dist.Fit.assess ~losses:!losses (Dist.Fit.to_distribution mle) samples in
  let q_erl = Dist.Fit.assess ~losses:!losses erlang samples in
  Format.printf "fit quality (KS distance): shifted-exp %.4f, erlang %.4f@.@."
    q_fit.Dist.Fit.ks_statistic q_erl.Dist.Fit.ks_statistic;

  (* ----- 3. optimize on fitted vs true parameters ----- *)
  let scenario delay_dist name =
    Zeroconf.Params.v ~name ~delay:delay_dist
      ~q:(Zeroconf.Params.q_of_hosts 1000) ~probe_cost:1. ~error_cost:1e10
  in
  let report name p =
    let o = Zeroconf.Optimize.global_optimum p in
    Format.printf "%-18s n = %d, r = %.4f, cost %.4f, error %.3g@." name
      o.Zeroconf.Optimize.n o.Zeroconf.Optimize.r o.Zeroconf.Optimize.cost
      o.Zeroconf.Optimize.error_prob;
    o
  in
  let o_true = report "true parameters:" (scenario truth "true") in
  let o_fit =
    report "fitted (MLE):" (scenario (Dist.Fit.to_distribution mle) "fitted")
  in
  let o_erl = report "fitted (erlang):" (scenario erlang "erlang") in

  (* how much does the fitted recommendation cost on the TRUE network? *)
  let regret (o : Zeroconf.Optimize.point) =
    Zeroconf.Cost.mean (scenario truth "eval") ~n:o.Zeroconf.Optimize.n
      ~r:o.Zeroconf.Optimize.r
    -. o_true.Zeroconf.Optimize.cost
  in
  Format.printf
    "@.regret of deploying the fitted design on the true network:@.\
    \  shifted-exp fit: %+.4f cost units@.\
    \  erlang fit:      %+.4f cost units@."
    (regret o_fit) (regret o_erl)
