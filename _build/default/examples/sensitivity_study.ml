(* The paper's conclusion stresses that the optimized parameters depend
   on application-specific inputs (loss rate, network size, cost
   estimates) that designers can only guess.  This study quantifies how
   much each input matters, at the draft's operating point.

     dune exec examples/sensitivity_study.exe
*)

let () =
  let scenario = Zeroconf.Params.wireless_worst_case in
  let n = 4 and r = 2. in
  Format.printf "%a@.operating point: n = %d, r = %g@.@." Zeroconf.Params.pp
    scenario n r;

  let knobs =
    Zeroconf.Sensitivity.standard_knobs scenario
    @ Zeroconf.Sensitivity.shifted_exp_knobs ~loss:1e-5 ~rate:10. ~delay:1.
  in

  (* Local elasticities: % change in output per % change in input. *)
  Format.printf "Elasticities at the operating point:@.";
  let table =
    Output.Table.create
      ~columns:
        [ ("parameter", Output.Table.Left); ("value", Output.Table.Right);
          ("d ln C / d ln x", Output.Table.Right);
          ("d ln E / d ln x", Output.Table.Right) ]
  in
  List.iter
    (fun (k : Zeroconf.Sensitivity.knob) ->
      Output.Table.add_row table
        [ k.name;
          Printf.sprintf "%.3g" k.value;
          Printf.sprintf "%+.4f" (Zeroconf.Sensitivity.cost_elasticity scenario k ~n ~r);
          Printf.sprintf "%+.4f" (Zeroconf.Sensitivity.error_elasticity scenario k ~n ~r) ])
    knobs;
  print_string (Output.Table.to_text table);
  print_newline ();

  (* Tornado: swing each input by 4x and watch the optimal cost. *)
  Format.printf "Tornado on the *optimal* cost (inputs swung 4x down/up):@.";
  let output p = (Zeroconf.Optimize.global_optimum p).Zeroconf.Optimize.cost in
  let entries = Zeroconf.Sensitivity.tornado ~swing:4. ~output scenario knobs in
  let table =
    Output.Table.create
      ~columns:
        [ ("parameter", Output.Table.Left); ("low", Output.Table.Right);
          ("base", Output.Table.Right); ("high", Output.Table.Right);
          ("range", Output.Table.Right) ]
  in
  List.iter
    (fun (e : Zeroconf.Sensitivity.tornado_entry) ->
      Output.Table.add_row table
        [ e.knob_name;
          Printf.sprintf "%.3f" e.low;
          Printf.sprintf "%.3f" e.base;
          Printf.sprintf "%.3f" e.high;
          Printf.sprintf "%.3f" (Float.abs (e.high -. e.low)) ])
    entries;
  print_string (Output.Table.to_text table);
  Format.printf
    "@.Reading: postage and round-trip delay dominate the achievable \
     cost;@.the error cost E matters surprisingly little once n clears \
     nu — exactly@.the paper's point that reliability is cheap but not \
     free.@."
