(* The zeroconf model is a standard benchmark for probabilistic model
   checkers (PRISM ships one).  This repository carries its own PCTL
   checker, so the paper's claims can be stated -- and verified -- as
   logical judgements over the DRM.

     dune exec examples/model_checking.exe
*)

let verdict chain labels start text =
  let formula = Dtmc.Pctl_parser.formula text in
  Printf.printf "  %-52s %s\n" text
    (if Dtmc.Pctl.holds chain labels ~from:start formula then "TRUE" else "FALSE")

let query chain labels start text =
  let path = Dtmc.Pctl_parser.path text in
  Printf.printf "  P=? [ %-40s ] = %.6g\n" text
    (Dtmc.Pctl.path_probability chain labels ~from:start path)

let () =
  let scenario = Zeroconf.Params.figure2 in
  let n = 4 and r = 2. in
  let drm = Zeroconf.Drm.build scenario ~n ~r in
  let chain = drm.Zeroconf.Drm.chain in
  let labels = Dtmc.Pctl.label_of_state chain in
  let start = drm.Zeroconf.Drm.start in

  Format.printf "DRM of the draft's (n = 4, r = 2) on the figure2 scenario@.@.";

  Printf.printf "quantitative queries:\n";
  query chain labels start "F error";
  query chain labels start "F ok";
  query chain labels start "X ok";
  query chain labels start "!error U ok";
  query chain labels start "F<=1 ok";
  query chain labels start "F<=20 ok";
  print_newline ();

  Printf.printf "the paper's claims as PCTL judgements:\n";
  (* reliability: collisions are vanishingly unlikely *)
  verdict chain labels start "P<1e-40 [ F error ]";
  (* liveness: the protocol terminates successfully a.s. (up to error) *)
  verdict chain labels start "P>0.99 [ F ok ]";
  (* most users finish on the first try *)
  verdict chain labels start "P>=0.98 [ X ok ]";
  (* nesting: with high probability we reach a state from which error
     is impossible *)
  verdict chain labels start "P>0.98 [ F P<=0 [ F error ] ]";
  (* and a deliberately false claim, to show the checker can say no *)
  verdict chain labels start "P>=0.5 [ F error ]";
  print_newline ();

  (* the same battery across probe counts: where does the safety claim
     P < 1e-40 [F error] start holding? *)
  Printf.printf "safety threshold vs probe count (r = 2):\n";
  for n = 1 to 6 do
    let drm = Zeroconf.Drm.build scenario ~n ~r:2. in
    let chain = drm.Zeroconf.Drm.chain in
    let labels = Dtmc.Pctl.label_of_state chain in
    let holds =
      Dtmc.Pctl.holds chain labels ~from:drm.Zeroconf.Drm.start
        (Dtmc.Pctl_parser.formula "P<1e-40 [ F error ]")
    in
    Printf.printf "  n = %d: %s\n" n (if holds then "safe" else "NOT safe")
  done;
  print_newline ();

  (* cross-check: the checker's F-error equals Eq. 4 *)
  let eq4 = Zeroconf.Reliability.error_probability scenario ~n ~r in
  let pctl =
    Dtmc.Pctl.path_probability chain labels ~from:start
      (Dtmc.Pctl_parser.path "F error")
  in
  Printf.printf "Eq. 4 = %.6e, PCTL F-error = %.6e (difference %.2e)\n" eq4 pctl
    (Float.abs (eq4 -. pctl))
