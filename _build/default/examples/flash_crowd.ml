(* Power returns to a hotel floor and forty appliances reboot at once —
   the ad-hoc formation scenario from the paper's introduction, pushed
   through the packet-level simulator.  Compare the draft's parameters
   against the optimized ones from the cost model.

     dune exec examples/flash_crowd.exe
*)

let () =
  let rng = Numerics.Rng.create 31 in
  let one_way = Dist.Families.uniform ~lo:0.005 ~hi:0.05 () in
  let run label config =
    let r =
      Netsim.Workload.run
        ~pattern:(Netsim.Workload.Flash { count = 40; within = 2. })
        ~horizon:10. ~loss:0.02 ~one_way ~initial:24 ~pool_size:256 ~config
        ~rng ()
    in
    Format.printf
      "%-28s %d joined: %d collisions, unique = %b,@.%-28s mean config %.2f s, \
       all done by %.2f s@."
      label r.Netsim.Workload.arrivals r.Netsim.Workload.collisions
      r.Netsim.Workload.all_unique ""
      r.Netsim.Workload.mean_config_time r.Netsim.Workload.last_completion
  in
  Format.printf "Flash crowd: 40 devices within 2 s on a 256-address link@.@.";
  (* the draft, verbatim: n = 4, r = 2, immediate abort, rate limiting *)
  run "draft (n=4, r=2):"
    { Netsim.Newcomer.default_config with Netsim.Newcomer.probes = 4 };
  (* the model's optimum for a reliable low-latency link (cf. Sec. 6) *)
  run "optimized (n=2, r=0.5):"
    { (Netsim.Newcomer.drm_config ~n:2 ~r:0.5 ~probe_cost:0. ~error_cost:0.) with
      Netsim.Newcomer.immediate_abort = true;
      Netsim.Newcomer.avoid_failed = true };
  Format.printf
    "@.Then a steady trickle (Poisson, one device per 10 s for an hour):@.@.";
  let r =
    Netsim.Workload.run ~pattern:(Netsim.Workload.Poisson 0.1) ~horizon:3600.
      ~loss:0.02 ~one_way ~initial:24 ~pool_size:4096
      ~config:
        { (Netsim.Newcomer.drm_config ~n:2 ~r:0.5 ~probe_cost:0. ~error_cost:0.) with
          Netsim.Newcomer.immediate_abort = true }
      ~rng ()
  in
  Format.printf
    "%d arrivals over the hour: %d collisions, mean config %.2f s@."
    r.Netsim.Workload.arrivals r.Netsim.Workload.collisions
    r.Netsim.Workload.mean_config_time
