(* What does an address collision actually cost?

   The paper treats E as an abstract quantity and (Sec. 4.5) infers the
   values that would justify the draft's parameters.  Here we ground it
   operationally: simulate the maintenance protocol after an accepted
   collision -- latent conflict, eventual detection through background
   ARP traffic, defense by the incumbent, forced reconfiguration of the
   newcomer -- and price the disruption on the paper's waiting-seconds
   scale.

     dune exec examples/maintenance_study.exe
*)

let () =
  let rng = Numerics.Rng.create 2026 in
  let one_way = Dist.Families.exponential ~rate:40. () in
  let config =
    Netsim.Newcomer.drm_config ~n:4 ~r:2. ~probe_cost:0. ~error_cost:0.
  in
  Format.printf
    "Simulating the post-collision maintenance protocol (100 collisions@.\
     per row).  Disruption = detection latency + reconfiguration time.@.@.";
  let table =
    Output.Table.create
      ~columns:
        [ ("bg ARP rate (/s)", Output.Table.Right); ("loss", Output.Table.Right);
          ("mean disruption (s)", Output.Table.Right);
          ("worst (s)", Output.Table.Right);
          ("broken conns", Output.Table.Right);
          ("suggested E", Output.Table.Right) ]
  in
  List.iter
    (fun (bg, loss) ->
      let est =
        Netsim.Maintenance.estimate_error_cost ~background_rate:bg ~loss
          ~one_way ~occupied:100 ~pool_size:1024 ~config ~trials:100 ~rng ()
      in
      Output.Table.add_row table
        [ Printf.sprintf "%.2f" bg;
          Printf.sprintf "%.2f" loss;
          Printf.sprintf "%.1f" est.Netsim.Maintenance.disruption.Numerics.Stats.mean;
          Printf.sprintf "%.1f" est.Netsim.Maintenance.disruption.Numerics.Stats.max;
          Printf.sprintf "%.2f" est.Netsim.Maintenance.mean_broken;
          Printf.sprintf "%.1f" est.Netsim.Maintenance.suggested_error_cost ])
    [ (1., 0.01); (0.1, 0.01); (0.01, 0.01); (0.1, 0.3) ];
  print_string (Output.Table.to_text table);
  Format.printf
    "@.Reading: on a chatty, reliable LAN a collision resolves in seconds and@.\
     E ~ tens; on a quiet or lossy network the conflict stays latent far@.\
     longer.  The astronomical E values of Sec. 4.5 (1e20..1e35) encode not@.\
     this direct disruption but the manufacturer's aversion to it -- one@.\
     broken TCP session per million devices is already a support call.@."
