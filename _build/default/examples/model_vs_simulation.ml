(* Three independent routes to the paper's quantities must agree:

   1. the closed forms, Eqs. 3 and 4;
   2. a linear-algebra solve of the Sec. 4.1 DRM matrices;
   3. Monte-Carlo simulation — both of the DRM chain and of the actual
      packet-level protocol on a lossy broadcast link.

     dune exec examples/model_vs_simulation.exe
*)

let () =
  (* A collision-heavy scenario so simulation converges quickly: a
     crowded 1024-address pool with 300 occupied, lossy probes. *)
  let pool_size = 1024 and occupied = 300 in
  let q = float_of_int occupied /. float_of_int pool_size in
  let delay = Dist.Families.shifted_exponential ~mass:0.9 ~rate:2. ~delay:0.5 () in
  let p =
    Zeroconf.Params.v ~name:"crowded-lan" ~delay ~q ~probe_cost:1.
      ~error_cost:100.
  in
  let n = 3 and r = 1. in
  Format.printf "%a@.n = %d, r = %g@.@." Zeroconf.Params.pp p n r;

  (* Routes 1 and 2. *)
  let drm = Zeroconf.Drm.build p ~n ~r in
  Format.printf "analytic (Eq. 3) cost  = %.5f@." (Zeroconf.Cost.mean p ~n ~r);
  Format.printf "matrix DRM cost        = %.5f@." (Zeroconf.Drm.mean_cost drm);
  Format.printf "analytic (Eq. 4) error = %.5f@."
    (Zeroconf.Reliability.error_probability p ~n ~r);
  Format.printf "matrix DRM error       = %.5f@.@." (Zeroconf.Drm.error_probability drm);

  (* Route 3a: Monte-Carlo on the chain itself. *)
  let rng = Numerics.Rng.create 7 in
  let trials = 40_000 in
  let cost_est = Zeroconf.Drm.simulate_cost ~trials ~rng drm in
  let err_est = Zeroconf.Drm.simulate_error ~trials ~rng drm in
  Format.printf "chain simulation (%d trials):@." trials;
  Format.printf "  cost  = %.5f  [%.5f, %.5f]@." cost_est.Dtmc.Simulate.mean
    cost_est.Dtmc.Simulate.ci_lo cost_est.Dtmc.Simulate.ci_hi;
  Format.printf "  error = %.5f  [%.5f, %.5f]@.@." err_est.Dtmc.Simulate.mean
    err_est.Dtmc.Simulate.ci_lo err_est.Dtmc.Simulate.ci_hi;

  (* Route 3b: sample actual reply delays from F_X (aggregate mode). *)
  let config =
    Netsim.Newcomer.drm_config ~n ~r ~probe_cost:p.Zeroconf.Params.probe_cost
      ~error_cost:p.Zeroconf.Params.error_cost
  in
  let outcomes =
    Netsim.Scenario.run_aggregate ~delay ~occupied ~pool_size ~config
      ~trials:20_000 ~rng ()
  in
  Format.printf "F_X-sampling simulation:@.%a@.@." Netsim.Metrics.pp_aggregate
    (Netsim.Metrics.aggregate outcomes);

  (* Route 3c: the full packet-level network.  The combined probe-trip,
     processing and reply-trip stochastics are configured so the
     end-to-end reply behaviour matches F_X: one-way delays of d/2 each
     leg, exponential processing, and per-leg loss 1 - sqrt 0.9. *)
  let leg_loss = 1. -. sqrt 0.9 in
  let outcomes =
    Netsim.Scenario.run_detailed ~loss:leg_loss
      ~one_way:(Dist.Families.deterministic ~delay:0.25 ())
      ~processing:(Dist.Families.exponential ~rate:2. ())
      ~occupied ~pool_size ~config ~trials:4_000 ~rng ()
  in
  Format.printf "packet-level simulation:@.%a@." Netsim.Metrics.pp_aggregate
    (Netsim.Metrics.aggregate outcomes);

  (* And one fully traced run, to see the protocol at work. *)
  let outcome, log =
    Netsim.Scenario.trace_one ~loss:0.4
      ~one_way:(Dist.Families.deterministic ~delay:0.25 ())
      ~processing:(Dist.Families.exponential ~rate:2. ())
      ~occupied:200 ~pool_size:256
      ~config:(Netsim.Newcomer.drm_config ~n:2 ~r:1. ~probe_cost:1. ~error_cost:100.)
      ~rng ()
  in
  Format.printf "@.One traced run (crowded 256-address pool):@.";
  let is_loss_chatter line =
    (* per-receiver delivery/loss lines start with two spaces *)
    String.length line > 0 && line.[0] = ' '
  in
  List.iter
    (fun (t, line) ->
      if not (is_loss_chatter line) then Format.printf "  %7.3f  %s@." t line)
    log;
  Format.printf "  -> %s after %d probes, %d restarts, %.2f s%s@."
    (Netsim.Address_pool.to_string outcome.Netsim.Metrics.address)
    outcome.Netsim.Metrics.probes_sent outcome.Netsim.Metrics.restarts
    outcome.Netsim.Metrics.config_time
    (if outcome.Netsim.Metrics.collided then " (COLLISION!)" else "")
