module Rng = Numerics.Rng

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.uint64 a) (Rng.uint64 b)
  done

let test_different_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.uint64 a = Rng.uint64 b then incr same
  done;
  Alcotest.(check int) "streams disagree" 0 !same

let test_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.uint64 parent = Rng.uint64 child then incr same
  done;
  Alcotest.(check int) "split streams disagree" 0 !same

let test_copy_replays () =
  let a = Rng.create 9 in
  ignore (Rng.uint64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.uint64 a) (Rng.uint64 b)

let test_int_bounds () =
  let rng = Rng.create 3 in
  let ok = ref true in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    if not (v >= 0 && v < 7) then ok := false
  done;
  Alcotest.(check bool) "all in [0, 7)" true !ok;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound <= 0")
    (fun () -> ignore (Rng.int rng 0))

let test_int_covers_support () =
  let rng = Rng.create 4 in
  let seen = Array.make 10 false in
  for _ = 1 to 2_000 do
    seen.(Rng.int rng 10) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_float_range () =
  let rng = Rng.create 5 in
  let ok = ref true in
  for _ = 1 to 10_000 do
    let v = Rng.float rng in
    if not (v >= 0. && v < 1.) then ok := false
  done;
  Alcotest.(check bool) "all in [0, 1)" true !ok

let test_uniform_mean () =
  let rng = Rng.create 6 in
  let n = 50_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.uniform rng ~lo:2. ~hi:4.
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "mean %.4f near 3" mean) true
    (Float.abs (mean -. 3.) < 0.02)

let test_exponential_mean () =
  let rng = Rng.create 8 in
  let n = 100_000 and rate = 4. in
  let acc = ref 0. and non_negative = ref true in
  for _ = 1 to n do
    let v = Rng.exponential rng ~rate in
    if v < 0. then non_negative := false;
    acc := !acc +. v
  done;
  Alcotest.(check bool) "non-negative" true !non_negative;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "mean %.4f near 1/4" mean) true
    (Float.abs (mean -. 0.25) < 0.01)

let test_normal_moments () =
  let rng = Rng.create 10 in
  let n = 100_000 in
  let samples = Array.init n (fun _ -> Rng.normal rng ~mu:5. ~sigma:2.) in
  let s = Numerics.Stats.summarize samples in
  Alcotest.(check bool) "mean near 5" true
    (Float.abs (s.Numerics.Stats.mean -. 5.) < 0.05);
  Alcotest.(check bool) "std near 2" true
    (Float.abs (s.Numerics.Stats.std -. 2.) < 0.05)

let test_bool_bias () =
  let rng = Rng.create 11 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bool rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "rate %.4f near 0.3" rate) true
    (Float.abs (rate -. 0.3) < 0.02);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Rng.bool: p not in [0,1]") (fun () ->
      ignore (Rng.bool rng 1.5))

let test_choose_weighted () =
  let rng = Rng.create 12 in
  let counts = Array.make 3 0 in
  let weights = [| 1.; 2.; 7. |] in
  let n = 50_000 in
  for _ = 1 to n do
    let i = Rng.choose_weighted rng weights in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = weights.(i) /. 10. in
      let rate = float_of_int c /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "weight %d rate %.3f near %.3f" i rate expected)
        true
        (Float.abs (rate -. expected) < 0.02))
    counts;
  Alcotest.check_raises "all zero"
    (Invalid_argument "Rng.choose_weighted: zero total weight") (fun () ->
      ignore (Rng.choose_weighted rng [| 0.; 0. |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Rng.choose_weighted: negative weight") (fun () ->
      ignore (Rng.choose_weighted rng [| 1.; -1. |]))

let test_shuffle_is_permutation () =
  let rng = Rng.create 13 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted;
  Alcotest.(check bool) "actually shuffled" true (arr <> Array.init 50 Fun.id)

let () =
  Alcotest.run "rng"
    [ ( "streams",
        [ Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seeds differ" `Quick test_different_seeds_differ;
          Alcotest.test_case "split" `Quick test_split_independent;
          Alcotest.test_case "copy" `Quick test_copy_replays ] );
      ( "int/float",
        [ Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int coverage" `Quick test_int_covers_support;
          Alcotest.test_case "float range" `Quick test_float_range ] );
      ( "distributions",
        [ Alcotest.test_case "uniform mean" `Quick test_uniform_mean;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "normal moments" `Quick test_normal_moments;
          Alcotest.test_case "bernoulli" `Quick test_bool_bias;
          Alcotest.test_case "weighted choice" `Quick test_choose_weighted;
          Alcotest.test_case "shuffle" `Quick test_shuffle_is_permutation ] ) ]
