let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let fig2 = Zeroconf.Params.figure2

(* ---------------- PRISM ---------------- *)

let prism = Zeroconf.Export.to_prism fig2 ~n:3 ~r:2.

let test_prism_structure () =
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains prism needle))
    [ "dtmc"; "module zeroconf"; "endmodule"; "rewards \"cost\""; "endrewards";
      "s : [0..5] init 0;"; "const double q ="; "const double p1 =";
      "const double p3 =" ]

let test_prism_probabilities_are_the_models () =
  (* the emitted constants are exactly Probes.no_answer *)
  let expected = Printf.sprintf "const double q = %.17g;" fig2.Zeroconf.Params.q in
  Alcotest.(check bool) "q emitted verbatim" true (contains prism expected);
  let p1 = Zeroconf.Probes.no_answer fig2 ~i:1 ~r:2. in
  Alcotest.(check bool) "p1 emitted verbatim" true
    (contains prism (Printf.sprintf "const double p1 = %.17g;" p1))

let test_prism_reward_reproduces_eq3 () =
  (* the emitted state rewards are the one-step expected costs, so their
     absorbing-chain solve must be Eq. 3.  Recompute from the DRM to
     confirm the generator and the model agree. *)
  let drm = Zeroconf.Drm.build fig2 ~n:3 ~r:2. in
  let w = Dtmc.Reward.one_step_expected drm.Zeroconf.Drm.reward in
  (* each emitted `s=i : value;` matches w at the same state index *)
  Array.iteri
    (fun i wi ->
      if wi <> 0. then
        Alcotest.(check bool)
          (Printf.sprintf "reward for state %d emitted" i)
          true
          (contains prism (Printf.sprintf "s=%d : %.17g;" i wi)))
    w

let test_prism_properties () =
  let props = Zeroconf.Export.prism_properties ~n:3 in
  Alcotest.(check bool) "error query" true (contains props "P=? [ F s=4 ]");
  Alcotest.(check bool) "ok query" true (contains props "P=? [ F s=5 ]");
  Alcotest.(check bool) "cost query" true
    (contains props "R{\"cost\"}=? [ F s>=4 ]")

let test_prism_guards () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Export.to_prism: n < 1")
    (fun () -> ignore (Zeroconf.Export.to_prism fig2 ~n:0 ~r:1.))

(* ---------------- DOT ---------------- *)

let dot = Zeroconf.Export.to_dot fig2 ~n:3 ~r:2.

let test_dot_structure () =
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains dot needle))
    [ "digraph chain"; "label=\"start\""; "label=\"1st\""; "label=\"error\"";
      "label=\"ok\""; "peripheries=2"; "->" ]

let test_dot_no_absorbing_self_loops () =
  (* self-loops on error/ok are suppressed for readability *)
  Alcotest.(check bool) "no error self-loop" false (contains dot "s4 -> s4");
  Alcotest.(check bool) "no ok self-loop" false (contains dot "s5 -> s5")

let test_dot_edge_costs () =
  (* the E-cost on the 3rd -> error hop appears *)
  Alcotest.(check bool) "error cost labelled" true (contains dot "/ 1e+35")

(* ---------------- .tra ---------------- *)

let test_tra_format () =
  let drm = Zeroconf.Drm.build fig2 ~n:2 ~r:2. in
  let tra = Dtmc.Export.to_tra drm.Zeroconf.Drm.chain in
  let lines = String.split_on_char '\n' (String.trim tra) in
  (match lines with
  | header :: rows ->
      (match String.split_on_char ' ' header with
      | [ states; transitions ] ->
          Alcotest.(check int) "state count" 5 (int_of_string states);
          Alcotest.(check int) "transition rows" (int_of_string transitions)
            (List.length rows)
      | _ -> Alcotest.fail "malformed header");
      (* each row parses and its probability is in (0, 1] *)
      List.iter
        (fun row ->
          match String.split_on_char ' ' row with
          | [ src; dst; p ] ->
              let p = float_of_string p in
              Alcotest.(check bool) "indices in range" true
                (int_of_string src >= 0 && int_of_string dst < 5);
              Alcotest.(check bool) "probability sane" true (p > 0. && p <= 1.)
          | _ -> Alcotest.fail ("malformed row: " ^ row))
        rows
  | [] -> Alcotest.fail "empty tra")

let test_tra_rows_sum_to_one () =
  let drm = Zeroconf.Drm.build fig2 ~n:2 ~r:2. in
  let tra = Dtmc.Export.to_tra drm.Zeroconf.Drm.chain in
  let sums = Hashtbl.create 8 in
  List.iteri
    (fun i line ->
      if i > 0 && String.trim line <> "" then
        match String.split_on_char ' ' line with
        | [ src; _; p ] ->
            let s = int_of_string src in
            Hashtbl.replace sums s
              (float_of_string p
              +. Option.value ~default:0. (Hashtbl.find_opt sums s))
        | _ -> ())
    (String.split_on_char '\n' tra);
  Hashtbl.iter
    (fun s total ->
      Alcotest.(check bool)
        (Printf.sprintf "state %d outflow 1" s)
        true
        (Numerics.Safe_float.approx_eq ~rtol:1e-12 total 1.))
    sums

let () =
  Alcotest.run "export"
    [ ( "prism",
        [ Alcotest.test_case "structure" `Quick test_prism_structure;
          Alcotest.test_case "verbatim probabilities" `Quick
            test_prism_probabilities_are_the_models;
          Alcotest.test_case "reward = Eq. 3 inputs" `Quick
            test_prism_reward_reproduces_eq3;
          Alcotest.test_case "properties" `Quick test_prism_properties;
          Alcotest.test_case "guards" `Quick test_prism_guards ] );
      ( "dot",
        [ Alcotest.test_case "structure" `Quick test_dot_structure;
          Alcotest.test_case "no absorbing self-loops" `Quick
            test_dot_no_absorbing_self_loops;
          Alcotest.test_case "edge costs" `Quick test_dot_edge_costs ] );
      ( "tra",
        [ Alcotest.test_case "format" `Quick test_tra_format;
          Alcotest.test_case "stochastic rows" `Quick test_tra_rows_sum_to_one ] ) ]
