module S = Zeroconf.Sensitivity
module Params = Zeroconf.Params

let scenario = Params.wireless_worst_case
let knob name knobs = List.find (fun (k : S.knob) -> k.S.name = name) knobs
let standard = S.standard_knobs scenario
let delay_knobs = S.shifted_exp_knobs ~loss:1e-5 ~rate:10. ~delay:1.

let test_standard_knobs_roundtrip () =
  (* applying the current value must reproduce the scenario's outputs *)
  List.iter
    (fun (k : S.knob) ->
      let rebuilt = k.S.apply scenario k.S.value in
      Alcotest.(check bool)
        (Printf.sprintf "%s roundtrip" k.S.name)
        true
        (Numerics.Safe_float.approx_eq ~rtol:1e-12
           (Zeroconf.Cost.mean scenario ~n:4 ~r:2.)
           (Zeroconf.Cost.mean rebuilt ~n:4 ~r:2.)))
    (standard @ delay_knobs)

let test_postage_elasticity_exact () =
  (* C is affine in c: d ln C / d ln c = c * G / ((r + c) G + small) --
     with the error term negligible this is c/(r+c) scaled by the share
     of (r+c) in the cost.  Sanity: within (0, 1). *)
  let e = S.cost_elasticity scenario (knob "c" standard) ~n:4 ~r:2. in
  Alcotest.(check bool) (Printf.sprintf "c elasticity %.4f in (0,1)" e) true
    (e > 0. && e < 1.)

let test_error_cost_elasticity_small () =
  (* at the draft point the qE pi term is tiny, so E barely moves C *)
  let e = S.cost_elasticity scenario (knob "E" standard) ~n:4 ~r:2. in
  Alcotest.(check bool) (Printf.sprintf "E elasticity %.4f < 0.05" e) true
    (e >= 0. && e < 0.05)

let test_q_error_elasticity_is_one () =
  (* E(n, r) ~ q pi_n for small q: elasticity of error w.r.t. q ~ 1 *)
  let e = S.error_elasticity scenario (knob "q" standard) ~n:4 ~r:2. in
  Alcotest.(check bool) (Printf.sprintf "q error-elasticity %.4f ~ 1" e) true
    (Float.abs (e -. 1.) < 0.05)

let test_c_error_elasticity_is_zero () =
  (* Eq. 4 does not mention c at all *)
  let e = S.error_elasticity scenario (knob "c" standard) ~n:4 ~r:2. in
  Alcotest.(check (float 1e-9)) "exactly zero" 0. e

let test_rtt_lambda_antisymmetric () =
  (* for the shifted exponential, survival at the draft point depends on
     lambda (t - d); at t - d = 1 = d the two elasticities mirror *)
  let e_rtt = S.error_elasticity scenario (knob "rtt" delay_knobs) ~n:4 ~r:2. in
  let e_lam = S.error_elasticity scenario (knob "lambda" delay_knobs) ~n:4 ~r:2. in
  Alcotest.(check bool) "rtt raises error" true (e_rtt > 0.);
  Alcotest.(check bool) "lambda lowers error" true (e_lam < 0.);
  Alcotest.(check bool)
    (Printf.sprintf "mirrored: %.3f vs %.3f" e_rtt e_lam)
    true
    (Float.abs (e_rtt +. e_lam) < 0.05 *. Float.abs e_rtt)

let test_loss_error_elasticity_positive () =
  let e = S.error_elasticity scenario (knob "loss" delay_knobs) ~n:4 ~r:2. in
  Alcotest.(check bool) "more loss, more error" true (e > 0.)

let test_tornado_sorted_and_consistent () =
  let output p = Zeroconf.Cost.mean p ~n:4 ~r:2. in
  let entries = S.tornado ~swing:2. ~output scenario (standard @ delay_knobs) in
  Alcotest.(check int) "all knobs present" 6 (List.length entries);
  (* sorted by descending range *)
  let ranges =
    List.map (fun (e : S.tornado_entry) -> Float.abs (e.S.high -. e.S.low)) entries
  in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a >= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "descending" true (sorted ranges);
  (* every base equals the unperturbed output *)
  List.iter
    (fun (e : S.tornado_entry) ->
      Alcotest.(check bool) (e.S.knob_name ^ " base") true
        (Numerics.Safe_float.approx_eq ~rtol:1e-12 e.S.base (output scenario)))
    entries

let test_tornado_rtt_dominates_at_fixed_point () =
  (* at a FIXED (4, 2), doubling the round trip to d = 2 s pushes every
     reply past the first listening period and the cost explodes: the
     delay knobs must dominate the pure cost knobs *)
  let output p = Zeroconf.Cost.mean p ~n:4 ~r:2. in
  match S.tornado ~swing:2. ~output scenario (standard @ delay_knobs) with
  | top :: _ -> Alcotest.(check string) "round trip first" "rtt" top.S.knob_name
  | [] -> Alcotest.fail "empty tornado"

let test_tornado_guard () =
  Alcotest.check_raises "swing must exceed 1"
    (Invalid_argument "Sensitivity.tornado: swing must exceed 1") (fun () ->
      ignore (S.tornado ~swing:1. ~output:(fun _ -> 0.) scenario standard))

let () =
  Alcotest.run "sensitivity"
    [ ( "knobs",
        [ Alcotest.test_case "roundtrip" `Quick test_standard_knobs_roundtrip ] );
      ( "cost elasticities",
        [ Alcotest.test_case "postage" `Quick test_postage_elasticity_exact;
          Alcotest.test_case "error cost" `Quick test_error_cost_elasticity_small ] );
      ( "error elasticities",
        [ Alcotest.test_case "q ~ 1" `Quick test_q_error_elasticity_is_one;
          Alcotest.test_case "c = 0" `Quick test_c_error_elasticity_is_zero;
          Alcotest.test_case "rtt vs lambda" `Quick test_rtt_lambda_antisymmetric;
          Alcotest.test_case "loss positive" `Quick test_loss_error_elasticity_positive ] );
      ( "tornado",
        [ Alcotest.test_case "sorted/consistent" `Quick test_tornado_sorted_and_consistent;
          Alcotest.test_case "rtt dominates" `Quick
            test_tornado_rtt_dominates_at_fixed_point;
          Alcotest.test_case "guard" `Quick test_tornado_guard ] ) ]
