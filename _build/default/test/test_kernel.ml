(* The kernel's contract is bit-identity with the direct evaluation
   paths: a streamed cost/error must be the same float the point-wise
   [Cost.mean] / [Reliability] calls produce, at every job count, and a
   full optimal-n scan must spend O(n_max) survival evaluations. *)

module K = Zeroconf.Kernel
module O = Zeroconf.Optimize
module Params = Zeroconf.Params

let fig2 = Params.figure2

(* ------------------------------------------------------------------ *)
(* unit: cursor state mirrors the Probes prefix quantities             *)

let test_cursor_matches_probes () =
  let r = 1.3 in
  let k = K.create fig2 ~r in
  Alcotest.(check int) "starts at n = 0" 0 (K.n k);
  Alcotest.(check (float 0.)) "pi_0" 1. (K.pi k);
  for n = 1 to 12 do
    K.advance k;
    Alcotest.(check int) "n" n (K.n k);
    Alcotest.(check (float 0.)) "ratio = no_answer"
      (Zeroconf.Probes.no_answer fig2 ~i:n ~r)
      (K.ratio k);
    Alcotest.(check (float 0.)) "pi = Probes.pi"
      (Zeroconf.Probes.pi fig2 ~n ~r) (K.pi k);
    Alcotest.(check (float 0.)) "log_pi = Probes.log_pi"
      (Zeroconf.Probes.log_pi fig2 ~n ~r)
      (K.log_pi k);
    let pis = Zeroconf.Probes.pi_all fig2 ~n ~r in
    Alcotest.(check (float 0.)) "sum_pi = compensated prefix sum"
      (Numerics.Safe_float.sum_prefix pis n)
      (K.sum_pi k)
  done

let test_readers_match_direct () =
  List.iter
    (fun r ->
      let k = K.create fig2 ~r in
      for n = 1 to 16 do
        K.advance k;
        Alcotest.(check (float 0.)) "cost" (Zeroconf.Cost.mean fig2 ~n ~r) (K.cost k);
        Alcotest.(check (float 0.)) "error"
          (Zeroconf.Reliability.error_probability fig2 ~n ~r)
          (K.error_probability k);
        Alcotest.(check (float 0.)) "log10 error"
          (Zeroconf.Reliability.log10_error_probability fig2 ~n ~r)
          (K.log10_error k)
      done)
    [ 0.; 0.05; 0.5; 1.; 2.; 6. ]

let test_guards () =
  Alcotest.check_raises "negative r"
    (Invalid_argument "Kernel.create: negative listening period") (fun () ->
      ignore (K.create fig2 ~r:(-1.)));
  Alcotest.check_raises "cost at n = 0"
    (Invalid_argument "Kernel.cost: n must be >= 1 (advance first)") (fun () ->
      ignore (K.cost (K.create fig2 ~r:1.)));
  Alcotest.check_raises "cursor only moves forward"
    (Invalid_argument "Kernel.advance_to: cursor already past n") (fun () ->
      let k = K.create fig2 ~r:1. in
      K.advance_to k ~n:3;
      K.advance_to k ~n:2);
  Alcotest.check_raises "one-shot n = 0"
    (Invalid_argument "Kernel.cost_at: n must be >= 1") (fun () ->
      ignore (K.cost_at fig2 ~n:0 ~r:1.))

(* ------------------------------------------------------------------ *)
(* the old optimal_n algorithm, verbatim, as an executable reference   *)

let optimal_n_direct ?(n_max = 4096) ?(patience = 24) (p : Params.t) ~r =
  let first_useful =
    let rec find i =
      if i > n_max then n_max
      else if Zeroconf.Probes.no_answer p ~i ~r < 1. then i
      else find (i + 1)
    in
    if r = 0. then n_max else find 1
  in
  let best_n = ref 1 and best_cost = ref (Zeroconf.Cost.mean p ~n:1 ~r) in
  let misses = ref 0 in
  let n = ref (max 1 first_useful) in
  while !misses < patience && !n <= n_max do
    let c = Zeroconf.Cost.mean p ~n:!n ~r in
    if c < !best_cost then begin
      best_n := !n;
      best_cost := c;
      misses := 0
    end else incr misses;
    incr n
  done;
  (!best_n, !best_cost)

let test_optimal_n_matches_reference () =
  List.iter
    (fun (n_max, patience) ->
      Array.iter
        (fun r ->
          Alcotest.(check (pair int (float 0.)))
            (Printf.sprintf "r = %g, n_max = %d, patience = %d" r n_max patience)
            (optimal_n_direct ~n_max ~patience fig2 ~r)
            (O.optimal_n ~n_max ~patience fig2 ~r))
        (Array.append [| 0.; 0.02 |] (Numerics.Grid.linspace 0.05 6. 40)))
    [ (4096, 24); (64, 24); (4096, 1); (1, 24); (0, 24); (4096, 0) ]

let test_scan_error_fields () =
  Array.iter
    (fun r ->
      let scan = O.optimal_n_scan fig2 ~r in
      let n = scan.O.n in
      Alcotest.(check (float 0.)) "error_prob"
        (Zeroconf.Reliability.error_probability fig2 ~n ~r)
        scan.O.error_prob;
      Alcotest.(check (float 0.)) "log10_error"
        (Zeroconf.Reliability.log10_error_probability fig2 ~n ~r)
        scan.O.log10_error)
    (Numerics.Grid.linspace 0.3 6. 20)

(* ------------------------------------------------------------------ *)
(* the O(n_max) acceptance criterion, via a counting survival stub     *)

let counting_scenario () =
  let base = Dist.Families.shifted_exponential ~mass:0.999 ~rate:10. ~delay:1. () in
  let count = ref 0 in
  let dist =
    Dist.Distribution.v ~name:"counting" ~mass:base.Dist.Distribution.mass
      ~cdf:base.Dist.Distribution.cdf
      ~survival:(fun t ->
        incr count;
        base.Dist.Distribution.survival t)
      ~sample:base.Dist.Distribution.sample ()
  in
  ( Params.v ~name:"counting" ~delay:dist ~q:0.01 ~probe_cost:1. ~error_cost:1e6,
    count )

let test_optimal_n_is_linear_in_n_max () =
  let p, count = counting_scenario () in
  let n_max = 512 in
  (* patience = n_max forces the scan all the way to n_max *)
  ignore (O.optimal_n ~n_max ~patience:n_max p ~r:0.5);
  let first_pass = !count in
  Alcotest.(check bool)
    (Printf.sprintf "scan to %d costs <= %d evaluations (got %d)" n_max
       (n_max + 2) first_pass)
    true
    (first_pass > 0 && first_pass <= n_max + 2);
  (* the per-domain memo absorbs a repeat of the same scan entirely *)
  ignore (O.optimal_n ~n_max ~patience:n_max p ~r:0.5);
  Alcotest.(check int) "second identical scan is all memo hits" first_pass !count

(* ------------------------------------------------------------------ *)
(* qcheck: kernel sweeps vs direct evaluation on random scenarios      *)

let scenario_gen =
  QCheck.Gen.(
    let* loss = float_range 0. 0.5 in
    let* rate = float_range 0.5 20. in
    let* delay = float_range 0. 2. in
    let* q = float_range 0.01 0.85 in
    let* error_cost = float_range 10. 1e8 in
    return
      (Params.v ~name:"prop"
         ~delay:(Dist.Families.shifted_exponential ~mass:(1. -. loss) ~rate ~delay ())
         ~q ~probe_cost:1. ~error_cost))

let agree ?(rtol = 1e-12) a b =
  a = b (* covers infinities and bit-identical floats *)
  || Numerics.Safe_float.approx_eq ~rtol a b

(* stream one cursor to n_max, checking every power-of-two checkpoint
   plus n_max itself against the direct path *)
let prop_swept_values_agree =
  QCheck.Test.make ~name:"kernel sweep = direct Cost.mean / Reliability (<= 1e-12)"
    ~count:60
    QCheck.(triple (make scenario_gen) (int_range 1 4096) (float_range 0.01 8.))
    (fun (p, n_max, r) ->
      let k = K.create p ~r in
      let ok = ref true in
      let checkpoint = ref 1 in
      for n = 1 to n_max do
        K.advance k;
        if n = !checkpoint || n = n_max then begin
          checkpoint := 2 * !checkpoint;
          ok :=
            !ok
            && agree (Zeroconf.Cost.mean p ~n ~r) (K.cost k)
            && agree (Zeroconf.Reliability.error_probability p ~n ~r)
                 (K.error_probability k)
            && agree (Zeroconf.Reliability.log10_error_probability p ~n ~r)
                 (K.log10_error k)
        end
      done;
      !ok)

let prop_one_shots_agree =
  QCheck.Test.make ~name:"one-shot reads = direct (bit-identical)" ~count:200
    QCheck.(triple (make scenario_gen) (int_range 1 64) (float_range 0. 8.))
    (fun (p, n, r) ->
      K.cost_at p ~n ~r = Zeroconf.Cost.mean p ~n ~r
      && K.error_probability_at p ~n ~r
         = Zeroconf.Reliability.error_probability p ~n ~r
      && K.log10_error_at p ~n ~r
         = Zeroconf.Reliability.log10_error_probability p ~n ~r
      && K.cost_at ~memo:false p ~n ~r = K.cost_at p ~n ~r)

let prop_optimal_n_matches_reference =
  QCheck.Test.make ~name:"kernel optimal_n = historical algorithm (exact)"
    ~count:100
    QCheck.(pair (make scenario_gen) (float_range 0. 6.))
    (fun (p, r) ->
      optimal_n_direct ~n_max:256 p ~r = O.optimal_n ~n_max:256 p ~r)

(* ------------------------------------------------------------------ *)
(* job counts: kernel-backed sweeps stay bit-identical on Exec pools   *)

let with_pool jobs f =
  let pool = Exec.Pool.create jobs in
  Fun.protect ~finally:(fun () -> Exec.Pool.shutdown pool) (fun () -> f pool)

let job_counts = [ 1; 2; 8 ]

let test_sweeps_bit_identical_across_jobs () =
  let grid = Numerics.Grid.linspace 0.05 6. 61 in
  let serial_sweep = O.optimal_n_sweep ~pool:(Exec.Pool.create 1) fig2 grid in
  let serial_costs = Array.map (fun r -> K.cost_at fig2 ~n:4 ~r) grid in
  let serial_errors = Array.map (fun r -> K.log10_error_at fig2 ~n:4 ~r) grid in
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          Alcotest.(check bool)
            (Printf.sprintf "optimal_n_sweep at jobs = %d" jobs)
            true
            (serial_sweep = O.optimal_n_sweep ~pool fig2 grid);
          Alcotest.(check bool)
            (Printf.sprintf "kernel cost sweep at jobs = %d" jobs)
            true
            (serial_costs
            = Exec.Parallel.map ~pool (fun r -> K.cost_at fig2 ~n:4 ~r) grid);
          Alcotest.(check bool)
            (Printf.sprintf "kernel error sweep at jobs = %d" jobs)
            true
            (serial_errors
            = Exec.Parallel.map ~pool (fun r -> K.log10_error_at fig2 ~n:4 ~r) grid)))
    job_counts

let prop_parallel_scan_agrees =
  QCheck.Test.make
    ~name:"random scenario: kernel sweep bit-identical at jobs in {1, 2, 8}"
    ~count:10
    QCheck.(pair (make scenario_gen) (int_range 2 32))
    (fun (p, points) ->
      let grid = Numerics.Grid.linspace 0.05 6. points in
      let reference = Array.map (fun r -> O.optimal_n_scan ~n_max:256 p ~r) grid in
      List.for_all
        (fun jobs ->
          with_pool jobs (fun pool ->
              reference
              = Exec.Parallel.map ~pool (fun r -> O.optimal_n_scan ~n_max:256 p ~r) grid))
        job_counts)

let () =
  Alcotest.run "kernel"
    [ ( "cursor",
        [ Alcotest.test_case "prefix quantities" `Quick test_cursor_matches_probes;
          Alcotest.test_case "readers" `Quick test_readers_match_direct;
          Alcotest.test_case "guards" `Quick test_guards ] );
      ( "optimal n",
        [ Alcotest.test_case "matches historical algorithm" `Quick
            test_optimal_n_matches_reference;
          Alcotest.test_case "scan error fields" `Quick test_scan_error_fields;
          Alcotest.test_case "O(n_max) survival evaluations" `Quick
            test_optimal_n_is_linear_in_n_max ] );
      ( "parallel",
        [ Alcotest.test_case "bit-identical across job counts" `Quick
            test_sweeps_bit_identical_across_jobs ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_swept_values_agree; prop_one_shots_agree;
            prop_optimal_n_matches_reference; prop_parallel_scan_agrees ] ) ]
