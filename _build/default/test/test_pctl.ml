module P = Dtmc.Pctl
module C = Dtmc.Chain
module M = Numerics.Matrix
module Ss = Dtmc.State_space

let check_close ?(tol = 1e-12) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* fair gambler on 0..4 *)
let ruin =
  let n = 5 in
  let m = M.create ~rows:n ~cols:n in
  M.set m 0 0 1.;
  M.set m 4 4 1.;
  for i = 1 to 3 do
    M.set m i (i - 1) 0.5;
    M.set m i (i + 1) 0.5
  done;
  C.create ~states:(Ss.of_labels [ "broke"; "one"; "two"; "three"; "rich" ]) m

let labels = P.label_of_state ruin

let test_atomic_and_boolean () =
  let sat = P.satisfaction ruin labels (P.Ap "two") in
  Alcotest.(check (array bool)) "exactly state 2"
    [| false; false; true; false; false |] sat;
  let sat = P.satisfaction ruin labels (P.Or (P.Ap "broke", P.Ap "rich")) in
  Alcotest.(check (array bool)) "the absorbing pair"
    [| true; false; false; false; true |] sat;
  let sat = P.satisfaction ruin labels (P.Not P.True) in
  Alcotest.(check (array bool)) "false everywhere"
    [| false; false; false; false; false |] sat

let test_eventually_matches_absorption () =
  (* P=? [F rich] from capital i is i/4 *)
  for i = 0 to 4 do
    check_close
      (Printf.sprintf "from %d" i)
      (float_of_int i /. 4.)
      (P.path_probability ruin labels ~from:i (P.Eventually (P.Ap "rich")))
  done

let test_until_with_constraint () =
  (* never dip to one capital before getting rich, from two:
     two -> three -> four path only: 0.5 * 0.5 ... but three can bounce
     back to two (allowed, it's not "one").  First-step analysis:
     x2 = 0.5 x3, x3 = 0.5 + 0.5 x2  =>  x2 = (0.5 * 0.5)/(1 - 0.25) = 1/3 *)
  check_close "constrained until" (1. /. 3.)
    (P.path_probability ruin labels ~from:2
       (P.Until (P.Not (P.Ap "one"), P.Ap "rich")))

let test_bounded_until () =
  (* reach rich within 2 steps from two: only two -> three -> rich, 1/4 *)
  check_close "2 steps" 0.25
    (P.path_probability ruin labels ~from:2
       (P.Bounded_eventually (P.Ap "rich", 2)));
  (* 0 steps: only if already there *)
  check_close "0 steps from two" 0.
    (P.path_probability ruin labels ~from:2 (P.Bounded_eventually (P.Ap "rich", 0)));
  check_close "0 steps from rich" 1.
    (P.path_probability ruin labels ~from:4 (P.Bounded_eventually (P.Ap "rich", 0)))

let test_next () =
  check_close "next from two" 0.5
    (P.path_probability ruin labels ~from:2 (P.Next (P.Ap "three")));
  check_close "next self-loop" 1.
    (P.path_probability ruin labels ~from:4 (P.Next (P.Ap "rich")))

let test_globally () =
  (* from rich, globally rich: 1.  From two, globally not broke =
     1 - P(F broke) = 1 - 1/2 *)
  check_close "absorbing globally" 1.
    (P.path_probability ruin labels ~from:4 (P.Globally (P.Ap "rich")));
  check_close "globally solvent" 0.5
    (P.path_probability ruin labels ~from:2 (P.Globally (P.Not (P.Ap "broke"))))

let test_prob_operator_thresholds () =
  (* states where P >= 0.5 of eventually rich: capital >= 2 *)
  let sat =
    P.satisfaction ruin labels (P.Prob (P.Ge, 0.5, P.Eventually (P.Ap "rich")))
  in
  Alcotest.(check (array bool)) "upper half"
    [| false; false; true; true; true |] sat;
  (* strict: P > 0.5 excludes capital 2 *)
  let sat =
    P.satisfaction ruin labels (P.Prob (P.Gt, 0.5, P.Eventually (P.Ap "rich")))
  in
  Alcotest.(check (array bool)) "strictly upper"
    [| false; false; false; true; true |] sat

let test_nested_formula () =
  (* "with probability >= 1/4, reach a state from which ruin is at most
     25% likely" — the inner set is {three, rich} *)
  let inner = P.Prob (P.Le, 0.25, P.Eventually (P.Ap "broke")) in
  let sat_inner = P.satisfaction ruin labels inner in
  Alcotest.(check (array bool)) "inner set"
    [| false; false; false; true; true |] sat_inner;
  Alcotest.(check bool) "outer holds from one" true
    (P.holds ruin labels ~from:1 (P.Prob (P.Ge, 0.25, P.Eventually inner)))

(* ---------------- zeroconf properties ---------------- *)

let drm = Zeroconf.Drm.build Zeroconf.Params.figure2 ~n:4 ~r:2.
let zc = drm.Zeroconf.Drm.chain
let zl = P.label_of_state zc

let test_zeroconf_error_reachability () =
  (* P=? [F error] must equal Eq. 4 *)
  check_close ~tol:1e-60 "matches Eq. 4"
    (Zeroconf.Reliability.error_probability Zeroconf.Params.figure2 ~n:4 ~r:2.)
    (P.path_probability zc zl ~from:drm.Zeroconf.Drm.start
       (P.Eventually (P.Ap "error")))

let test_zeroconf_first_try_clean () =
  (* configure without ever retrying: never return to start.
     P(X (not start U ok))-ish: from start, the clean path is the direct
     hop to ok with probability 1 - q *)
  let clean =
    P.path_probability zc zl ~from:drm.Zeroconf.Drm.start
      (P.Next (P.Ap "ok"))
  in
  check_close ~tol:1e-12 "one-shot success is 1 - q"
    (1. -. Zeroconf.Params.figure2.Zeroconf.Params.q)
    clean

let test_zeroconf_bounded_configuration () =
  (* the DRM reaches ok within 1 step with prob 1-q, and P grows with
     the horizon towards 1 - E(n,r) *)
  let p1 =
    P.path_probability zc zl ~from:drm.Zeroconf.Drm.start
      (P.Bounded_eventually (P.Ap "ok", 1))
  in
  let p10 =
    P.path_probability zc zl ~from:drm.Zeroconf.Drm.start
      (P.Bounded_eventually (P.Ap "ok", 10))
  in
  let p_inf =
    P.path_probability zc zl ~from:drm.Zeroconf.Drm.start
      (P.Eventually (P.Ap "ok"))
  in
  Alcotest.(check bool) "monotone in horizon" true (p1 <= p10 && p10 <= p_inf);
  check_close ~tol:1e-12 "limit is the reliability"
    (Zeroconf.Reliability.reliability Zeroconf.Params.figure2 ~n:4 ~r:2.)
    p_inf

let test_zeroconf_safety_formula () =
  (* the paper's reliability claim as a PCTL judgement: the chance of
     an address collision is below 1e-40 *)
  Alcotest.(check bool) "P < 1e-40 [F error]" true
    (P.holds zc zl ~from:drm.Zeroconf.Drm.start
       (P.Prob (P.Lt, 1e-40, P.Eventually (P.Ap "error"))))

(* ---------------- reward operator ---------------- *)

let test_reward_to_reach_is_eq3 () =
  (* R=? [F (error | ok)] with the DRM's cost rewards IS Eq. 3 *)
  let v =
    P.reward_to_reach drm.Zeroconf.Drm.reward zl
      (P.Or (P.Ap "error", P.Ap "ok"))
  in
  check_close ~tol:1e-9 "matches Eq. 3"
    (Zeroconf.Cost.mean Zeroconf.Params.figure2 ~n:4 ~r:2.)
    v.(drm.Zeroconf.Drm.start)

let test_reward_infinite_when_avoidable () =
  (* reward to reach ok alone is infinite: error is possible *)
  let v = P.reward_to_reach drm.Zeroconf.Drm.reward zl (P.Ap "ok") in
  Alcotest.(check bool) "infinite" true (v.(drm.Zeroconf.Drm.start) = infinity)

let test_reward_holds_thresholds () =
  let target = P.Or (P.Ap "error", P.Ap "ok") in
  let reward = drm.Zeroconf.Drm.reward in
  let eq3 = Zeroconf.Cost.mean Zeroconf.Params.figure2 ~n:4 ~r:2. in
  Alcotest.(check bool) "Le above" true
    (P.reward_holds reward zl ~from:drm.Zeroconf.Drm.start P.Le (eq3 +. 1.) target);
  Alcotest.(check bool) "Le below fails" false
    (P.reward_holds reward zl ~from:drm.Zeroconf.Drm.start P.Le (eq3 -. 1.) target);
  (* infinite rewards satisfy lower bounds, never upper bounds *)
  Alcotest.(check bool) "Ge on infinity" true
    (P.reward_holds reward zl ~from:drm.Zeroconf.Drm.start P.Ge 1e300 (P.Ap "ok"));
  Alcotest.(check bool) "Le on infinity" false
    (P.reward_holds reward zl ~from:drm.Zeroconf.Drm.start P.Le 1e300 (P.Ap "ok"))

let () =
  Alcotest.run "pctl"
    [ ( "state formulas",
        [ Alcotest.test_case "atomic/boolean" `Quick test_atomic_and_boolean;
          Alcotest.test_case "thresholds" `Quick test_prob_operator_thresholds;
          Alcotest.test_case "nesting" `Quick test_nested_formula ] );
      ( "path formulas",
        [ Alcotest.test_case "eventually" `Quick test_eventually_matches_absorption;
          Alcotest.test_case "constrained until" `Quick test_until_with_constraint;
          Alcotest.test_case "bounded" `Quick test_bounded_until;
          Alcotest.test_case "next" `Quick test_next;
          Alcotest.test_case "globally" `Quick test_globally ] );
      ( "zeroconf",
        [ Alcotest.test_case "error reachability = Eq. 4" `Quick
            test_zeroconf_error_reachability;
          Alcotest.test_case "one-shot success" `Quick test_zeroconf_first_try_clean;
          Alcotest.test_case "bounded configuration" `Quick
            test_zeroconf_bounded_configuration;
          Alcotest.test_case "safety judgement" `Quick test_zeroconf_safety_formula ] );
      ( "reward operator",
        [ Alcotest.test_case "R=? [F done] = Eq. 3" `Quick test_reward_to_reach_is_eq3;
          Alcotest.test_case "infinite when avoidable" `Quick
            test_reward_infinite_when_avoidable;
          Alcotest.test_case "thresholds" `Quick test_reward_holds_thresholds ] ) ]
