module A = Zeroconf.Attempts
module Params = Zeroconf.Params

let check_rel ?(rtol = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.12g vs %.12g" msg expected actual)
    true
    (Numerics.Safe_float.approx_eq ~rtol expected actual)

(* a crowded scenario where the refinements actually bite *)
let crowded =
  Params.v ~name:"crowded"
    ~delay:(Dist.Families.shifted_exponential ~mass:0.9 ~rate:2. ~delay:0.5 ())
    ~q:0. (* ignored by Attempts *) ~probe_cost:1. ~error_cost:100.

let occupied = 200
let pool = 256

let test_baseline_reproduces_eq3_eq4 () =
  (* the headline consistency check: with no refinement the attempt
     decomposition is algebraically identical to the closed forms *)
  List.iter
    (fun (n, r) ->
      let refinement = A.no_refinement ~occupied ~pool () in
      let a = A.analyze crowded refinement ~n ~r in
      let q = float_of_int occupied /. float_of_int pool in
      let p = Params.with_q crowded q in
      check_rel (Printf.sprintf "cost n=%d r=%g" n r) (Zeroconf.Cost.mean p ~n ~r)
        a.A.mean_cost;
      check_rel
        (Printf.sprintf "error n=%d r=%g" n r)
        (Zeroconf.Reliability.error_probability p ~n ~r)
        a.A.error_probability)
    [ (1, 0.6); (2, 1.); (3, 1.); (4, 2.); (6, 0.3) ]

let test_baseline_on_paper_scenario () =
  let refinement = A.no_refinement ~occupied:1000 () in
  let a = A.analyze Params.figure2 refinement ~n:4 ~r:2. in
  check_rel "figure2 draft cost" (Zeroconf.Cost.mean Params.figure2 ~n:4 ~r:2.)
    a.A.mean_cost

let test_mean_attempts_geometric () =
  (* baseline attempts are geometric with restart prob q (1 - pi_n):
     mean = 1 / (1 - q (1 - pi_n)) *)
  let refinement = A.no_refinement ~occupied ~pool () in
  let n = 3 and r = 1. in
  let a = A.analyze crowded refinement ~n ~r in
  let q = float_of_int occupied /. float_of_int pool in
  let pi_n = Zeroconf.Probes.pi crowded ~n ~r in
  check_rel "geometric mean attempts" (1. /. (1. -. (q *. (1. -. pi_n))))
    a.A.mean_attempts

let test_blacklist_reduces_attempts_and_cost () =
  let base = A.no_refinement ~occupied ~pool () in
  let black = { base with A.blacklist = true } in
  let n = 3 and r = 1. in
  let a0 = A.analyze crowded base ~n ~r in
  let a1 = A.analyze crowded black ~n ~r in
  Alcotest.(check bool) "fewer attempts" true (a1.A.mean_attempts < a0.A.mean_attempts);
  Alcotest.(check bool) "cheaper" true (a1.A.mean_cost < a0.A.mean_cost);
  Alcotest.(check bool) "no less reliable" true
    (a1.A.error_probability <= a0.A.error_probability +. 1e-15)

let test_blacklist_terminates_on_tiny_pool () =
  (* 3 occupied out of 4: after three aborts the next draw is free for
     sure, so attempts are bounded by 4 *)
  let refinement =
    { A.blacklist = true; rate_limit = None; occupied = 3; pool = 4 }
  in
  let a = A.analyze crowded refinement ~n:2 ~r:1. in
  Alcotest.(check bool)
    (Printf.sprintf "attempts %.3f <= 4" a.A.mean_attempts)
    true
    (a.A.mean_attempts <= 4. +. 1e-9);
  Alcotest.(check (float 1e-12)) "no truncation" 0. a.A.truncated_mass

let test_rate_limit_adds_delay_only () =
  let base = A.no_refinement ~occupied ~pool () in
  let limited = { base with A.rate_limit = Some (2, 10.) } in
  let n = 3 and r = 1. in
  let a0 = A.analyze crowded base ~n ~r in
  let a1 = A.analyze crowded limited ~n ~r in
  check_rel "error probability unchanged" a0.A.error_probability
    a1.A.error_probability;
  check_rel "attempts unchanged" a0.A.mean_attempts a1.A.mean_attempts;
  Alcotest.(check bool) "time grows" true (a1.A.mean_time > a0.A.mean_time);
  (* the extra cost equals the extra time (1:1 time-to-cost) *)
  check_rel ~rtol:1e-9 "cost grows by the delay"
    (a1.A.mean_time -. a0.A.mean_time)
    (a1.A.mean_cost -. a0.A.mean_cost)

let test_rate_limit_threshold_zero_charges_from_second_attempt () =
  let refinement =
    { A.blacklist = false; rate_limit = Some (0, 100.); occupied; pool }
  in
  let no_limit = A.no_refinement ~occupied ~pool () in
  let n = 2 and r = 0.5 in
  let a = A.analyze crowded refinement ~n ~r in
  let a0 = A.analyze crowded no_limit ~n ~r in
  (* every attempt after the first pays 100: extra = 100 (E[attempts] - 1) *)
  check_rel "delay accounting" (100. *. (a0.A.mean_attempts -. 1.))
    (a.A.mean_time -. a0.A.mean_time)

let test_matches_simulation () =
  (* end-to-end: all four refinement combinations against the aggregate
     simulator *)
  let delay = crowded.Params.delay in
  let n = 3 and r = 1. in
  let rng = Numerics.Rng.create 99 in
  List.iter
    (fun (avoid, rate_limit) ->
      let refinement = { A.blacklist = avoid; rate_limit; occupied; pool } in
      let a = A.analyze crowded refinement ~n ~r in
      let config =
        { (Netsim.Newcomer.drm_config ~n ~r ~probe_cost:1. ~error_cost:100.) with
          Netsim.Newcomer.avoid_failed = avoid;
          Netsim.Newcomer.rate_limit }
      in
      let outcomes =
        Netsim.Scenario.run_aggregate ~delay ~occupied ~pool_size:pool ~config
          ~trials:15_000 ~rng ()
      in
      let agg = Netsim.Metrics.aggregate outcomes in
      let lo, hi = agg.Netsim.Metrics.cost_ci in
      Alcotest.(check bool)
        (Printf.sprintf "blacklist=%b rl=%b: CI [%g, %g] covers %g" avoid
           (rate_limit <> None) lo hi a.A.mean_cost)
        true
        (a.A.mean_cost > lo -. (0.03 *. a.A.mean_cost)
        && a.A.mean_cost < hi +. (0.03 *. a.A.mean_cost)))
    [ (false, None); (true, None); (false, Some (2, 10.)); (true, Some (2, 10.)) ]

let test_compare_refinements_structure () =
  let rows = A.compare_refinements crowded ~occupied ~pool ~n:3 ~r:1. () in
  Alcotest.(check (list string)) "labels"
    [ "baseline"; "blacklist"; "rate-limit"; "draft (both)" ]
    (List.map fst rows)

let test_guards () =
  Alcotest.check_raises "occupied >= pool"
    (Invalid_argument "Attempts: occupied outside [0, pool)") (fun () ->
      ignore (A.no_refinement ~occupied:10 ~pool:10 ()));
  let refinement = A.no_refinement ~occupied:10 ~pool:100 () in
  Alcotest.check_raises "n = 0" (Invalid_argument "Attempts.analyze: n < 1")
    (fun () -> ignore (A.analyze crowded refinement ~n:0 ~r:1.))

let () =
  Alcotest.run "attempts"
    [ ( "baseline consistency",
        [ Alcotest.test_case "reproduces Eq. 3/4" `Quick
            test_baseline_reproduces_eq3_eq4;
          Alcotest.test_case "paper scenario" `Quick test_baseline_on_paper_scenario;
          Alcotest.test_case "geometric attempts" `Quick test_mean_attempts_geometric ] );
      ( "blacklisting",
        [ Alcotest.test_case "reduces attempts and cost" `Quick
            test_blacklist_reduces_attempts_and_cost;
          Alcotest.test_case "terminates on tiny pools" `Quick
            test_blacklist_terminates_on_tiny_pool ] );
      ( "rate limiting",
        [ Alcotest.test_case "adds delay only" `Quick test_rate_limit_adds_delay_only;
          Alcotest.test_case "threshold accounting" `Quick
            test_rate_limit_threshold_zero_charges_from_second_attempt ] );
      ( "validation",
        [ Alcotest.test_case "matches simulation (4 variants)" `Slow
            test_matches_simulation;
          Alcotest.test_case "comparison table" `Quick test_compare_refinements_structure;
          Alcotest.test_case "guards" `Quick test_guards ] ) ]
