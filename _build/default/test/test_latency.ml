module L = Zeroconf.Latency
module Params = Zeroconf.Params

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let check_rel ?(rtol = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.12g vs %.12g" msg expected actual)
    true
    (Numerics.Safe_float.approx_eq ~rtol expected actual)

let fig2 = Params.figure2

let test_free_network_is_deterministic () =
  (* q = 0: exactly n periods, always *)
  let p = Params.with_q fig2 0. in
  let d = L.periods p ~n:4 ~r:2. in
  check_close "pmf at 4 periods" 1. d.L.pmf.(4);
  check_close "mean 8 s" 8. (L.mean d);
  check_close "median 8 s" 8. (L.quantile d 0.5);
  check_close "no tail" 0. d.L.tail

let test_pmf_sums_to_one () =
  List.iter
    (fun (n, r, q) ->
      let p = Params.with_q fig2 q in
      let d = L.periods p ~n ~r in
      check_rel
        (Printf.sprintf "n=%d r=%g q=%g" n r q)
        1.
        (Numerics.Safe_float.sum d.L.pmf +. d.L.tail))
    [ (4, 2., 0.0154); (2, 1., 0.3); (3, 0.5, 0.7); (1, 2., 0.9) ]

let test_support_structure () =
  (* outcomes happen at n (clean success), or k + further periods after
     aborts: nothing below n periods is possible *)
  let p = Params.with_q fig2 0.3 in
  let n = 3 in
  let d = L.periods p ~n ~r:1.5 in
  for k = 0 to n - 1 do
    check_close (Printf.sprintf "nothing at %d periods" k) 0. d.L.pmf.(k)
  done;
  Alcotest.(check bool) "mass at n" true (d.L.pmf.(n) > 0.)

let test_mean_matches_drm_time_rewards () =
  (* independent route: a DRM whose transition rewards are the period
     durations (in seconds) must give the same expectation *)
  let p = Params.with_q fig2 0.3 in
  let n = 3 and r = 1.5 in
  let d = L.periods p ~n ~r in
  (* build the timed DRM: reuse Drm but with c = 0 and E = 0 so the cost
     IS (r + 0) per period, i.e. time *)
  let timed = Params.with_costs ~probe_cost:0. ~error_cost:0. p in
  let drm = Zeroconf.Drm.build timed ~n ~r in
  check_rel ~rtol:1e-9 "mean time via DRM rewards" (Zeroconf.Drm.mean_cost drm)
    (L.mean d)

let test_mean_matches_simulation () =
  let p =
    Params.v ~name:"sim"
      ~delay:(Dist.Families.shifted_exponential ~mass:0.9 ~rate:2. ~delay:0.5 ())
      ~q:0.25 ~probe_cost:1. ~error_cost:100.
  in
  let n = 3 and r = 1. in
  let d = L.periods p ~n ~r in
  let rng = Numerics.Rng.create 5 in
  let outcomes =
    Netsim.Scenario.run_aggregate ~delay:p.Params.delay ~occupied:256
      ~pool_size:1024
      ~config:(Netsim.Newcomer.drm_config ~n ~r ~probe_cost:1. ~error_cost:100.)
      ~trials:30_000 ~rng ()
  in
  let agg = Netsim.Metrics.aggregate outcomes in
  let sim_mean = agg.Netsim.Metrics.config_time.Numerics.Stats.mean in
  Alcotest.(check bool)
    (Printf.sprintf "analytic %.4f ~ simulated %.4f" (L.mean d) sim_mean)
    true
    (Float.abs (L.mean d -. sim_mean) < 0.05)

let test_cdf_monotone_and_bounded () =
  let p = Params.with_q fig2 0.5 in
  let d = L.periods p ~n:4 ~r:2. in
  let prev = ref (-1.) in
  List.iter
    (fun t ->
      let v = L.cdf d t in
      Alcotest.(check bool) "monotone" true (v >= !prev);
      Alcotest.(check bool) "bounded" true (Numerics.Safe_float.is_probability v);
      prev := v)
    [ 0.; 4.; 8.; 8.1; 10.; 16.; 100. ]

let test_quantile_inverts_cdf () =
  let p = Params.with_q fig2 0.5 in
  let d = L.periods p ~n:4 ~r:2. in
  List.iter
    (fun q ->
      let t = L.quantile d q in
      Alcotest.(check bool)
        (Printf.sprintf "cdf (quantile %g) >= %g" q q)
        true
        (L.cdf d t >= q -. 1e-12))
    [ 0.1; 0.5; 0.9; 0.99; 0.9999 ]

let test_exceeds_draft_threshold () =
  (* the draft point on figure2: P(wait > n r) = chance of any restart,
     which is q x P(reply heard in time) *)
  let d = L.periods fig2 ~n:4 ~r:2. in
  let p_restart = L.exceeds d 8. in
  (* q (1 - pi_n) up to re-restarts, which are O(q^2) *)
  let q = fig2.Params.q in
  let pi_n = Zeroconf.Probes.pi fig2 ~n:4 ~r:2. in
  Alcotest.(check bool)
    (Printf.sprintf "P(>8s) = %.4g ~ q(1 - pi_4) = %.4g" p_restart
       (q *. (1. -. pi_n)))
    true
    (Float.abs (p_restart -. (q *. (1. -. pi_n))) < 1e-3 *. q)

let test_horizon_tail_reported () =
  (* a hopeless scenario (q = 0.99, replies certain) with a tiny horizon
     must push mass into the tail rather than lose it *)
  let p =
    Params.v ~name:"hopeless"
      ~delay:(Dist.Families.deterministic ~delay:0.1 ())
      ~q:0.99 ~probe_cost:0. ~error_cost:0.
  in
  let d = L.periods ~horizon:10 p ~n:2 ~r:1. in
  Alcotest.(check bool) "tail mass present" true (d.L.tail > 0.01);
  check_rel "mass conservation" 1. (Numerics.Safe_float.sum d.L.pmf +. d.L.tail)

let test_quantile_beyond_mass_rejected () =
  let p =
    Params.v ~name:"hopeless"
      ~delay:(Dist.Families.deterministic ~delay:0.1 ())
      ~q:0.99 ~probe_cost:0. ~error_cost:0.
  in
  let d = L.periods ~horizon:10 p ~n:2 ~r:1. in
  try
    ignore (L.quantile d 0.9999);
    Alcotest.fail "accepted a quantile beyond the captured mass"
  with Invalid_argument _ -> ()

let test_guards () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Latency.periods: n < 1")
    (fun () -> ignore (L.periods fig2 ~n:0 ~r:1.));
  Alcotest.check_raises "horizon below n"
    (Invalid_argument "Latency.periods: horizon below n") (fun () ->
      ignore (L.periods ~horizon:2 fig2 ~n:4 ~r:1.))

let () =
  Alcotest.run "latency"
    [ ( "exact cases",
        [ Alcotest.test_case "free network" `Quick test_free_network_is_deterministic;
          Alcotest.test_case "mass conservation" `Quick test_pmf_sums_to_one;
          Alcotest.test_case "support" `Quick test_support_structure ] );
      ( "cross-checks",
        [ Alcotest.test_case "mean vs DRM rewards" `Quick
            test_mean_matches_drm_time_rewards;
          Alcotest.test_case "mean vs simulation" `Quick test_mean_matches_simulation;
          Alcotest.test_case "draft tail anchor" `Quick test_exceeds_draft_threshold ] );
      ( "cdf/quantile",
        [ Alcotest.test_case "cdf monotone" `Quick test_cdf_monotone_and_bounded;
          Alcotest.test_case "quantile inverts" `Quick test_quantile_inverts_cdf;
          Alcotest.test_case "tail reported" `Quick test_horizon_tail_reported;
          Alcotest.test_case "quantile beyond mass" `Quick
            test_quantile_beyond_mass_rejected;
          Alcotest.test_case "guards" `Quick test_guards ] ) ]
