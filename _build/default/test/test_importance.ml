module I = Dtmc.Importance
module M = Numerics.Matrix
module C = Dtmc.Chain
module Ss = Dtmc.State_space

let chain_of arrays labels =
  C.create ~states:(Ss.of_labels labels) (M.of_arrays arrays)

(* rare route: s -> bad with prob 1e-6, else -> good *)
let rare p_bad =
  chain_of
    [| [| 0.; p_bad; 1. -. p_bad |]; [| 0.; 1.; 0. |]; [| 0.; 0.; 1. |] |]
    [ "s"; "bad"; "good" ]

let test_unbiased_with_identity_proposal () =
  (* proposal = target chain: ordinary MC, must work on common events *)
  let c = rare 0.3 in
  let est =
    I.estimate_absorption ~trials:20_000 ~rng:(Numerics.Rng.create 1) ~proposal:c
      c ~from:0 ~into:1
  in
  Alcotest.(check bool)
    (Printf.sprintf "CI [%g, %g] covers 0.3" est.I.ci_lo est.I.ci_hi)
    true
    (est.I.ci_lo <= 0.3 && 0.3 <= est.I.ci_hi)

let test_rare_event_with_boost () =
  (* p = 1e-6: plain MC with 20k trials would almost surely see nothing;
     the boosted proposal nails it *)
  let c = rare 1e-6 in
  let proposal = I.boosted_proposal c ~toward:1 in
  let est =
    I.estimate_absorption ~trials:20_000 ~rng:(Numerics.Rng.create 2) ~proposal c
      ~from:0 ~into:1
  in
  Alcotest.(check bool) "many weighted hits" true (est.I.hits > 1_000);
  Alcotest.(check bool)
    (Printf.sprintf "CI [%g, %g] covers 1e-6" est.I.ci_lo est.I.ci_hi)
    true
    (est.I.ci_lo <= 1e-6 && 1e-6 <= est.I.ci_hi);
  Alcotest.(check bool) "tight relative error" true (est.I.relative_error < 0.1)

let test_multistep_rare_route () =
  (* two rare hops in sequence: 1e-4 each, total 1e-8 *)
  let c =
    chain_of
      [| [| 0.; 1e-4; 0.; 1. -. 1e-4 |];
         [| 0.; 0.; 1e-4; 1. -. 1e-4 |];
         [| 0.; 0.; 1.; 0. |];
         [| 0.; 0.; 0.; 1. |] |]
      [ "s"; "half"; "bad"; "good" ]
  in
  let proposal = I.boosted_proposal ~floor:0.5 c ~toward:2 in
  let est =
    I.estimate_absorption ~trials:30_000 ~rng:(Numerics.Rng.create 3) ~proposal c
      ~from:0 ~into:2
  in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.3e near 1e-8" est.I.mean)
    true
    (est.I.ci_lo <= 1e-8 && 1e-8 <= est.I.ci_hi)

let test_absolute_continuity_checked () =
  let c = rare 0.5 in
  (* proposal that kills the s -> bad edge *)
  let bad_proposal = rare 0.0001 in
  ignore bad_proposal;
  let zeroed =
    chain_of
      [| [| 0.; 0.; 1. |] (* no mass on the used edge *); [| 0.; 1.; 0. |];
         [| 0.; 0.; 1. |] |]
      [ "s"; "bad"; "good" ]
  in
  try
    ignore
      (I.estimate_absorption ~trials:10 ~rng:(Numerics.Rng.create 4)
         ~proposal:zeroed c ~from:0 ~into:1);
    Alcotest.fail "accepted a non-dominating proposal"
  with Invalid_argument _ -> ()

let test_boosted_proposal_is_stochastic () =
  let drm = Zeroconf.Drm.build Zeroconf.Params.figure2 ~n:4 ~r:2. in
  let proposal =
    I.boosted_proposal drm.Zeroconf.Drm.chain ~toward:drm.Zeroconf.Drm.error
  in
  (* Chain.create already validates rows; additionally every original
     edge keeps positive mass *)
  for i = 0 to C.size drm.Zeroconf.Drm.chain - 1 do
    List.iter
      (fun (j, p) ->
        if p > 0. then
          Alcotest.(check bool)
            (Printf.sprintf "edge %d->%d kept" i j)
            true
            (C.prob proposal i j > 0.))
      (C.successors drm.Zeroconf.Drm.chain i)
  done

(* The flagship: verify Eq. 4 at depths unreachable by plain MC *)
let test_zeroconf_tail_verification () =
  let rng = Numerics.Rng.create 5 in
  List.iter
    (fun (p, n, r, depth) ->
      let v = Zeroconf.Rare.verify_error_probability ~trials:15_000 ~rng p ~n ~r in
      Alcotest.(check bool)
        (Printf.sprintf "covered at depth ~1e%d (analytic %.3e, CI [%.3e, %.3e])"
           depth v.Zeroconf.Rare.analytic
           v.Zeroconf.Rare.estimate.I.ci_lo v.Zeroconf.Rare.estimate.I.ci_hi)
        true v.Zeroconf.Rare.covered)
    [ ( Zeroconf.Params.v ~name:"d9"
          ~delay:(Dist.Families.shifted_exponential ~mass:0.99 ~rate:5. ~delay:0.2 ())
          ~q:0.1 ~probe_cost:1. ~error_cost:100.,
        4, 1., -9 );
      (Zeroconf.Params.figure2, 3, 1.5, -28);
      (Zeroconf.Params.figure2, 4, 2., -50) ]

let test_guards () =
  let c = rare 0.5 in
  Alcotest.check_raises "trials"
    (Invalid_argument "Importance.estimate_absorption: trials < 1") (fun () ->
      ignore
        (I.estimate_absorption ~trials:0 ~rng:(Numerics.Rng.create 6) ~proposal:c
           c ~from:0 ~into:1));
  Alcotest.check_raises "target not absorbing"
    (Invalid_argument "Importance.estimate_absorption: target not absorbing")
    (fun () ->
      ignore
        (I.estimate_absorption ~trials:10 ~rng:(Numerics.Rng.create 7) ~proposal:c
           c ~from:0 ~into:0))

let () =
  Alcotest.run "importance"
    [ ( "estimator",
        [ Alcotest.test_case "identity proposal" `Quick
            test_unbiased_with_identity_proposal;
          Alcotest.test_case "rare event" `Quick test_rare_event_with_boost;
          Alcotest.test_case "multistep route" `Quick test_multistep_rare_route ] );
      ( "proposals",
        [ Alcotest.test_case "absolute continuity" `Quick
            test_absolute_continuity_checked;
          Alcotest.test_case "boosted is stochastic" `Quick
            test_boosted_proposal_is_stochastic ] );
      ( "zeroconf tails",
        [ Alcotest.test_case "Eq. 4 verified deep" `Slow
            test_zeroconf_tail_verification;
          Alcotest.test_case "guards" `Quick test_guards ] ) ]
