module Drm = Zeroconf.Drm
module Params = Zeroconf.Params
module C = Dtmc.Chain
module Ss = Dtmc.State_space

let check_rel ?(rtol = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.12g vs %.12g" msg expected actual)
    true
    (Numerics.Safe_float.approx_eq ~rtol expected actual)

let fig2 = Params.figure2

let test_state_space_layout () =
  (* the paper's table: start, 1st, ..., nth, error, ok *)
  let drm = Drm.build fig2 ~n:4 ~r:2. in
  let states = C.states drm.Drm.chain in
  Alcotest.(check int) "n + 3 states" 7 (Ss.size states);
  Alcotest.(check (array string)) "labels in paper order"
    [| "start"; "1st"; "2nd"; "3rd"; "4th"; "error"; "ok" |]
    (Ss.labels states);
  Alcotest.(check int) "start is row 1" 0 drm.Drm.start;
  Alcotest.(check int) "error is row n+2" 5 drm.Drm.error;
  Alcotest.(check int) "ok is row n+3" 6 drm.Drm.ok

let test_ordinal_labels_beyond_ten () =
  let drm = Drm.build fig2 ~n:13 ~r:0.3 in
  let states = C.states drm.Drm.chain in
  Alcotest.(check bool) "11th..13th present" true
    (Ss.mem states "11th" && Ss.mem states "12th" && Ss.mem states "13th");
  Alcotest.(check bool) "21st-style suffixes unused here" true
    (not (Ss.mem states "13rd"))

let test_transition_probabilities_match_paper () =
  let n = 3 and r = 1.5 in
  let drm = Drm.build fig2 ~n ~r in
  let c = drm.Drm.chain in
  check_rel "start -> 1st is q" fig2.Params.q (C.prob_by_label c "start" "1st");
  check_rel "start -> ok is 1 - q" (1. -. fig2.Params.q)
    (C.prob_by_label c "start" "ok");
  for i = 1 to n do
    let p_i = Zeroconf.Probes.no_answer fig2 ~i ~r in
    let src = [| "1st"; "2nd"; "3rd" |].(i - 1) in
    let dst = if i = n then "error" else [| "1st"; "2nd"; "3rd" |].(i) in
    check_rel (Printf.sprintf "%s forward" src) p_i (C.prob_by_label c src dst);
    check_rel (Printf.sprintf "%s back to start" src) (1. -. p_i)
      (C.prob_by_label c src "start")
  done

let test_costs_match_paper () =
  let n = 3 and r = 1.5 in
  let drm = Drm.build fig2 ~n ~r in
  let reward = drm.Drm.reward in
  let states = C.states drm.Drm.chain in
  let idx = Ss.index states in
  let step = r +. fig2.Params.probe_cost in
  check_rel "start -> ok costs n (r+c)" (float_of_int n *. step)
    (Dtmc.Reward.transition reward (idx "start") (idx "ok"));
  check_rel "start -> 1st costs r+c" step
    (Dtmc.Reward.transition reward (idx "start") (idx "1st"));
  check_rel "nth -> error costs E" fig2.Params.error_cost
    (Dtmc.Reward.transition reward (idx "3rd") (idx "error"));
  check_rel "abort transition is free" 0.
    (Dtmc.Reward.transition reward (idx "2nd") (idx "start"))

let test_absorption_partition () =
  let drm = Drm.build fig2 ~n:4 ~r:2. in
  let p_err = Drm.error_probability drm in
  let p_ok =
    Dtmc.Absorbing.absorption_probability drm.Drm.chain ~from:drm.Drm.start
      ~into:drm.Drm.ok
  in
  check_rel "error + ok = 1" 1. (p_err +. p_ok)

let test_expected_steps_free_network () =
  (* q = 0: start -> ok in one hop *)
  let p = Params.with_q fig2 0. in
  let drm = Drm.build p ~n:4 ~r:2. in
  check_rel "one step" 1. (Drm.expected_steps drm)

let test_q_one_always_collides_eventually () =
  (* q = 1 - eps with certain replies: every attempt returns to start
     until an unlucky run; with r below the round trip no reply ever
     arrives, so the first attempt errors *)
  let p =
    Params.v ~name:"hopeless"
      ~delay:(Dist.Families.shifted_exponential ~rate:10. ~delay:1. ())
      ~q:0.99 ~probe_cost:1. ~error_cost:10.
  in
  let drm = Drm.build p ~n:2 ~r:0.3 in
  check_rel "error prob = q (no reply can arrive)" 0.99 (Drm.error_probability drm)

let test_variance_positive_when_random () =
  let p = Params.with_q fig2 0.3 in
  let drm = Drm.build p ~n:3 ~r:1.2 in
  Alcotest.(check bool) "variance > 0" true (Drm.cost_variance drm > 0.)

let test_simulation_estimates_cover_truth () =
  let p =
    Params.v ~name:"sim"
      ~delay:(Dist.Families.shifted_exponential ~mass:0.9 ~rate:2. ~delay:0.5 ())
      ~q:0.3 ~probe_cost:1. ~error_cost:50.
  in
  let drm = Drm.build p ~n:3 ~r:1. in
  let rng = Numerics.Rng.create 77 in
  let cost_est = Drm.simulate_cost ~trials:30_000 ~rng drm in
  let err_est = Drm.simulate_error ~trials:30_000 ~rng drm in
  let cost_truth = Drm.mean_cost drm in
  let err_truth = Drm.error_probability drm in
  Alcotest.(check bool)
    (Printf.sprintf "cost CI [%g, %g] covers %g" cost_est.Dtmc.Simulate.ci_lo
       cost_est.Dtmc.Simulate.ci_hi cost_truth)
    true
    (cost_est.Dtmc.Simulate.ci_lo <= cost_truth
    && cost_truth <= cost_est.Dtmc.Simulate.ci_hi);
  Alcotest.(check bool)
    (Printf.sprintf "error CI [%g, %g] covers %g" err_est.Dtmc.Simulate.ci_lo
       err_est.Dtmc.Simulate.ci_hi err_truth)
    true
    (err_est.Dtmc.Simulate.ci_lo <= err_truth
    && err_truth <= err_est.Dtmc.Simulate.ci_hi)

let test_guards () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Drm.build: n must be >= 1")
    (fun () -> ignore (Drm.build fig2 ~n:0 ~r:1.));
  Alcotest.check_raises "negative r"
    (Invalid_argument "Drm.build: negative listening period") (fun () ->
      ignore (Drm.build fig2 ~n:1 ~r:(-1.)))

let () =
  Alcotest.run "drm"
    [ ( "structure",
        [ Alcotest.test_case "state layout" `Quick test_state_space_layout;
          Alcotest.test_case "ordinals" `Quick test_ordinal_labels_beyond_ten;
          Alcotest.test_case "probabilities" `Quick
            test_transition_probabilities_match_paper;
          Alcotest.test_case "costs" `Quick test_costs_match_paper ] );
      ( "analysis",
        [ Alcotest.test_case "absorption partition" `Quick test_absorption_partition;
          Alcotest.test_case "free network steps" `Quick
            test_expected_steps_free_network;
          Alcotest.test_case "hopeless network" `Quick
            test_q_one_always_collides_eventually;
          Alcotest.test_case "variance" `Quick test_variance_positive_when_random ] );
      ( "simulation",
        [ Alcotest.test_case "CIs cover truth" `Quick
            test_simulation_estimates_cover_truth;
          Alcotest.test_case "guards" `Quick test_guards ] ) ]
