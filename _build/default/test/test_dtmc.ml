module M = Numerics.Matrix
module C = Dtmc.Chain
module Ss = Dtmc.State_space

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* ---------------- state spaces ---------------- *)

let test_state_space () =
  let s = Ss.of_labels [ "a"; "b"; "c" ] in
  Alcotest.(check int) "size" 3 (Ss.size s);
  Alcotest.(check string) "label" "b" (Ss.label s 1);
  Alcotest.(check int) "index" 2 (Ss.index s "c");
  Alcotest.(check bool) "mem" true (Ss.mem s "a");
  Alcotest.(check bool) "not mem" false (Ss.mem s "z");
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Ss.index s "z"))

let test_state_space_guards () =
  Alcotest.check_raises "empty" (Invalid_argument "State_space.of_labels: empty")
    (fun () -> ignore (Ss.of_labels []));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "State_space.of_labels: duplicate label a") (fun () ->
      ignore (Ss.of_labels [ "a"; "a" ]))

(* ---------------- chain construction ---------------- *)

let two_state p q =
  (* a -> b with prob p, b -> a with prob q *)
  C.create
    ~states:(Ss.of_labels [ "a"; "b" ])
    (M.of_arrays [| [| 1. -. p; p |]; [| q; 1. -. q |] |])

let test_chain_validation () =
  let s = Ss.of_labels [ "a"; "b" ] in
  Alcotest.check_raises "rows must sum to 1"
    (Invalid_argument "Chain.create: row 0 (a) sums to 0.5") (fun () ->
      ignore (C.create ~states:s (M.of_arrays [| [| 0.5; 0. |]; [| 0.; 1. |] |])));
  (try
     ignore (C.create ~states:s (M.of_arrays [| [| -0.1; 1.1 |]; [| 0.; 1. |] |]));
     Alcotest.fail "negative accepted"
   with Invalid_argument _ -> ())

let test_chain_renormalizes_rounding () =
  let s = Ss.of_labels [ "a"; "b" ] in
  let eps = 1e-12 in
  let c =
    C.create ~states:s
      (M.of_arrays [| [| 0.5 +. eps; 0.5 |]; [| 0.; 1. |] |])
  in
  check_close "row renormalized" 1.
    (Numerics.Safe_float.sum (M.row (C.matrix c) 0))

let test_chain_accessors () =
  let c = two_state 0.3 0.7 in
  check_close "prob" 0.3 (C.prob c 0 1);
  check_close "prob by label" 0.7 (C.prob_by_label c "b" "a");
  Alcotest.(check (list (pair int (float 1e-12))))
    "successors" [ (0, 0.7); (1, 0.3) ] (C.successors c 0)

let test_absorbing_detection () =
  let c =
    C.create
      ~states:(Ss.of_labels [ "t"; "a" ])
      (M.of_arrays [| [| 0.5; 0.5 |]; [| 0.; 1. |] |])
  in
  Alcotest.(check bool) "t not absorbing" false (C.is_absorbing c 0);
  Alcotest.(check bool) "a absorbing" true (C.is_absorbing c 1);
  Alcotest.(check (list int)) "absorbing states" [ 1 ] (C.absorbing_states c);
  Alcotest.(check (list int)) "transient states" [ 0 ] (C.transient_states c)

let test_reachable () =
  let c =
    C.create
      ~states:(Ss.of_labels [ "a"; "b"; "c" ])
      (M.of_arrays
         [| [| 0.; 1.; 0. |]; [| 0.; 0.; 1. |]; [| 0.; 0.; 1. |] |])
  in
  let r = C.reachable c ~from:0 in
  Alcotest.(check (array bool)) "forward chain" [| true; true; true |] r;
  let r = C.reachable c ~from:2 in
  Alcotest.(check (array bool)) "absorbing sees only itself" [| false; false; true |] r

(* ---------------- gambler's ruin: hand-computed truths ----------- *)

(* states 0..4; 0 and 4 absorbing; fair coin *)
let ruin =
  let n = 5 in
  let m = M.create ~rows:n ~cols:n in
  M.set m 0 0 1.;
  M.set m 4 4 1.;
  for i = 1 to 3 do
    M.set m i (i - 1) 0.5;
    M.set m i (i + 1) 0.5
  done;
  C.create ~states:(Ss.of_labels [ "0"; "1"; "2"; "3"; "4" ]) m

let test_ruin_absorption_probabilities () =
  (* P(win from i) = i/4 for a fair game *)
  for i = 1 to 3 do
    check_close
      (Printf.sprintf "win prob from %d" i)
      (float_of_int i /. 4.)
      (Dtmc.Absorbing.absorption_probability ruin ~from:i ~into:4)
  done;
  check_close "already won" 1.
    (Dtmc.Absorbing.absorption_probability ruin ~from:4 ~into:4);
  check_close "already lost" 0.
    (Dtmc.Absorbing.absorption_probability ruin ~from:0 ~into:4)

let test_ruin_expected_steps () =
  (* E[steps from i] = i (4 - i) for the fair game *)
  for i = 0 to 4 do
    check_close
      (Printf.sprintf "steps from %d" i)
      (float_of_int (i * (4 - i)))
      (Dtmc.Absorbing.expected_steps ruin ~from:i)
  done

let test_ruin_fundamental_matrix () =
  let d = Dtmc.Absorbing.decompose ruin in
  let n = Dtmc.Absorbing.fundamental d in
  (* classic result: N = [[1.5, 1, .5], [1, 2, 1], [.5, 1, 1.5]] *)
  let expected =
    M.of_arrays [| [| 1.5; 1.; 0.5 |]; [| 1.; 2.; 1. |]; [| 0.5; 1.; 1.5 |] |]
  in
  Alcotest.(check bool) "fundamental matrix" true (M.approx_eq ~rtol:1e-9 expected n)

let test_expected_visits () =
  check_close "visits to 2 from 1" 1. (Dtmc.Absorbing.expected_visits ruin ~from:1 ~to_:2);
  check_close "visits to 1 from 1" 1.5 (Dtmc.Absorbing.expected_visits ruin ~from:1 ~to_:1)

let test_absorption_row_sums_one () =
  let b = Dtmc.Absorbing.absorption_probabilities ruin in
  for i = 0 to M.rows b - 1 do
    check_close "row sums to 1" 1. (Numerics.Safe_float.sum (M.row b i))
  done

let test_decompose_rejects_non_absorbing () =
  let c = two_state 0.3 0.7 in
  Alcotest.check_raises "no absorbing states"
    (Invalid_argument "Absorbing.decompose: chain has no absorbing state")
    (fun () -> ignore (Dtmc.Absorbing.decompose c))

(* ---------------- rewards ---------------- *)

let simple_reward () =
  (* t -> a with prob 1, cost 5; plus a state cost of 2 on t *)
  let c =
    C.create
      ~states:(Ss.of_labels [ "t"; "a" ])
      (M.of_arrays [| [| 0.; 1. |]; [| 0.; 1. |] |])
  in
  let costs = M.create ~rows:2 ~cols:2 in
  M.set costs 0 1 5.;
  Dtmc.Reward.create ~state_rewards:[| 2.; 0. |] ~transition_rewards:costs c

let test_reward_total () =
  let r = simple_reward () in
  check_close "one-step expected" 7. (Dtmc.Reward.one_step_expected r).(0);
  check_close "total accumulated" 7.
    (Dtmc.Absorbing.expected_total_reward r ~from:0)

let test_reward_validation () =
  let c =
    C.create
      ~states:(Ss.of_labels [ "t"; "a" ])
      (M.of_arrays [| [| 0.; 1. |]; [| 0.; 1. |] |])
  in
  let bad = M.create ~rows:2 ~cols:2 in
  M.set bad 0 0 3.;
  (* cost on a zero-probability edge *)
  (try
     ignore (Dtmc.Reward.create ~transition_rewards:bad c);
     Alcotest.fail "accepted cost on zero-prob edge"
   with Invalid_argument _ -> ());
  let bad2 = M.create ~rows:2 ~cols:2 in
  M.set bad2 1 1 1.;
  (* absorbing self-loop cost would diverge *)
  try
    ignore (Dtmc.Reward.create ~transition_rewards:bad2 c);
    Alcotest.fail "accepted absorbing self-loop cost"
  with Invalid_argument _ -> ()

let test_geometric_accumulation () =
  (* stay with prob 0.9 paying 1 per step, leave with prob 0.1:
     expected steps 10, each costing 1 -> total 10 *)
  let c =
    C.create
      ~states:(Ss.of_labels [ "s"; "done" ])
      (M.of_arrays [| [| 0.9; 0.1 |]; [| 0.; 1. |] |])
  in
  let costs = M.create ~rows:2 ~cols:2 in
  M.set costs 0 0 1.;
  M.set costs 0 1 1.;
  let r = Dtmc.Reward.create ~transition_rewards:costs c in
  check_close "geometric total" 10. (Dtmc.Absorbing.expected_total_reward r ~from:0)

let test_variance_deterministic_is_zero () =
  let r = simple_reward () in
  check_close "no randomness, no variance" 0.
    (Dtmc.Absorbing.variance_total_reward r ~from:0)

let test_variance_geometric () =
  (* total cost = number of steps, geometric with p = 0.1:
     Var = (1 - p) / p^2 = 90 *)
  let c =
    C.create
      ~states:(Ss.of_labels [ "s"; "done" ])
      (M.of_arrays [| [| 0.9; 0.1 |]; [| 0.; 1. |] |])
  in
  let costs = M.create ~rows:2 ~cols:2 in
  M.set costs 0 0 1.;
  M.set costs 0 1 1.;
  let r = Dtmc.Reward.create ~transition_rewards:costs c in
  check_close ~tol:1e-6 "geometric variance" 90.
    (Dtmc.Absorbing.variance_total_reward r ~from:0)

(* ---------------- builder ---------------- *)

let test_builder_roundtrip () =
  let b = Dtmc.Builder.create () in
  Dtmc.Builder.add_edge b ~src:"s" ~dst:"t" ~prob:0.4 ~cost:2.;
  Dtmc.Builder.add_edge b ~src:"s" ~dst:"u" ~prob:0.6;
  Dtmc.Builder.add_edge b ~src:"t" ~dst:"u" ~prob:1.;
  let chain, reward = Dtmc.Builder.build b in
  Alcotest.(check int) "three states" 3 (C.size chain);
  check_close "prob preserved" 0.4 (C.prob_by_label chain "s" "t");
  Alcotest.(check bool) "sink made absorbing" true
    (C.is_absorbing chain (Ss.index (C.states chain) "u"));
  check_close "cost preserved" 2.
    (Dtmc.Reward.transition reward
       (Ss.index (C.states chain) "s")
       (Ss.index (C.states chain) "t"))

let test_builder_accumulates_duplicate_edges () =
  let b = Dtmc.Builder.create () in
  Dtmc.Builder.add_edge b ~src:"s" ~dst:"t" ~prob:0.5;
  Dtmc.Builder.add_edge b ~src:"s" ~dst:"t" ~prob:0.5;
  let chain, _ = Dtmc.Builder.build b in
  check_close "accumulated" 1. (C.prob_by_label chain "s" "t")

let test_builder_rejects_bad_rows () =
  let b = Dtmc.Builder.create () in
  Dtmc.Builder.add_edge b ~src:"s" ~dst:"t" ~prob:0.5;
  try
    ignore (Dtmc.Builder.build b);
    Alcotest.fail "row summing to 0.5 accepted"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "dtmc"
    [ ( "state space",
        [ Alcotest.test_case "basics" `Quick test_state_space;
          Alcotest.test_case "guards" `Quick test_state_space_guards ] );
      ( "chain",
        [ Alcotest.test_case "validation" `Quick test_chain_validation;
          Alcotest.test_case "renormalization" `Quick test_chain_renormalizes_rounding;
          Alcotest.test_case "accessors" `Quick test_chain_accessors;
          Alcotest.test_case "absorbing detection" `Quick test_absorbing_detection;
          Alcotest.test_case "reachability" `Quick test_reachable ] );
      ( "gambler's ruin",
        [ Alcotest.test_case "absorption probs" `Quick test_ruin_absorption_probabilities;
          Alcotest.test_case "expected steps" `Quick test_ruin_expected_steps;
          Alcotest.test_case "fundamental matrix" `Quick test_ruin_fundamental_matrix;
          Alcotest.test_case "expected visits" `Quick test_expected_visits;
          Alcotest.test_case "row sums" `Quick test_absorption_row_sums_one;
          Alcotest.test_case "rejects non-absorbing" `Quick
            test_decompose_rejects_non_absorbing ] );
      ( "rewards",
        [ Alcotest.test_case "total" `Quick test_reward_total;
          Alcotest.test_case "validation" `Quick test_reward_validation;
          Alcotest.test_case "geometric" `Quick test_geometric_accumulation;
          Alcotest.test_case "variance deterministic" `Quick
            test_variance_deterministic_is_zero;
          Alcotest.test_case "variance geometric" `Quick test_variance_geometric ] );
      ( "builder",
        [ Alcotest.test_case "roundtrip" `Quick test_builder_roundtrip;
          Alcotest.test_case "duplicate edges" `Quick
            test_builder_accumulates_duplicate_edges;
          Alcotest.test_case "bad rows" `Quick test_builder_rejects_bad_rows ] ) ]
