module Sm = Dtmc.Semi_markov
module M = Numerics.Matrix
module C = Dtmc.Chain
module Ss = Dtmc.State_space

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let chain_of arrays labels =
  C.create ~states:(Ss.of_labels labels) (M.of_arrays arrays)

let test_unit_durations_reduce_to_steps () =
  (* all durations 1: expected duration = expected steps *)
  let ruin =
    chain_of
      [| [| 1.; 0.; 0. |]; [| 0.5; 0.; 0.5 |]; [| 0.; 0.; 1. |] |]
      [ "lose"; "play"; "win" ]
  in
  let sm = Sm.create ~durations:(fun _ _ -> 1) ruin in
  check_close "matches expected steps"
    (Dtmc.Absorbing.expected_steps ruin ~from:1)
    (Sm.expected_duration sm ~from:1)

let test_deterministic_pipeline () =
  (* a -> b (3 ticks) -> done (2 ticks): total always 5 *)
  let c =
    chain_of
      [| [| 0.; 1.; 0. |]; [| 0.; 0.; 1. |]; [| 0.; 0.; 1. |] |]
      [ "a"; "b"; "done" ]
  in
  let durations i _ = if i = 0 then 3 else 2 in
  let sm = Sm.create ~durations c in
  check_close "expected 5" 5. (Sm.expected_duration sm ~from:0);
  let d = Sm.distribution sm ~from:0 in
  check_close "all mass at 5" 1. d.Sm.pmf.(5);
  check_close "tail empty" 0. d.Sm.tail

let test_zero_duration_edges_resolved_exactly () =
  (* s splits instantly: 0.5 to a fast path (1 tick), 0.5 back to itself
     via an instant bounce through t -- the geometric zero-loop that an
     iterative resolution would only approximate *)
  let c =
    chain_of
      [| [| 0.; 0.5; 0.5; 0. |];
         [| 1.; 0.; 0.; 0. |];
         [| 0.; 0.; 0.; 1. |];
         [| 0.; 0.; 0.; 1. |] |]
      [ "s"; "bounce"; "fast"; "done" ]
  in
  (* s->bounce and bounce->s are instantaneous; s->fast takes 1;
     fast->done takes 1 *)
  let durations i j =
    match (i, j) with 0, 1 -> 0 | 1, 0 -> 0 | 0, 2 -> 1 | 2, 3 -> 1 | _ -> 1
  in
  let sm = Sm.create ~durations c in
  (* the zero loop resolves geometrically: always ends at exactly 2 *)
  let d = Sm.distribution sm ~from:0 in
  check_close "all mass at 2 ticks" 1. d.Sm.pmf.(2);
  check_close "mean 2" 2. (Sm.expected_duration sm ~from:0)

let test_zero_cycle_probability_one_rejected () =
  let c = chain_of [| [| 0.; 1. |]; [| 1.; 0. |] |] [ "a"; "b" ] in
  try
    ignore (Sm.create ~durations:(fun _ _ -> 0) c);
    Alcotest.fail "accepted a trapping zero-duration cycle"
  with Invalid_argument _ -> ()

let test_negative_duration_rejected () =
  let c = chain_of [| [| 0.; 1. |]; [| 0.; 1. |] |] [ "a"; "b" ] in
  Alcotest.check_raises "negative"
    (Invalid_argument "Semi_markov.create: negative duration") (fun () ->
      ignore (Sm.create ~durations:(fun _ _ -> -1) c))

let test_distribution_mean_matches_expectation () =
  let c =
    chain_of
      [| [| 0.6; 0.4; 0. |]; [| 0.3; 0.; 0.7 |]; [| 0.; 0.; 1. |] |]
      [ "x"; "y"; "done" ]
  in
  let durations i j = 1 + ((i + j) mod 3) in
  let sm = Sm.create ~durations c in
  let d = Sm.distribution ~horizon:2048 sm ~from:0 in
  Alcotest.(check bool) "tail negligible" true (d.Sm.tail < 1e-12);
  check_close ~tol:1e-8 "distribution mean = reward solve"
    (Sm.expected_duration sm ~from:0)
    (Sm.mean_of_distribution d)

(* The flagship cross-check: the zeroconf latency DP is a special case
   of the semi-Markov solver on the DRM. *)
let test_matches_zeroconf_latency () =
  let p = Zeroconf.Params.with_q Zeroconf.Params.figure2 0.3 in
  let n = 3 and r = 1.5 in
  let drm = Zeroconf.Drm.build p ~n ~r in
  let states = C.states drm.Zeroconf.Drm.chain in
  let start = drm.Zeroconf.Drm.start and ok = drm.Zeroconf.Drm.ok in
  let durations src dst =
    (* hops into probe states take one listening period; start -> ok
       takes n; aborts and the final error hop are instantaneous *)
    if src = start && dst = ok then n
    else if dst = start then 0
    else if dst = drm.Zeroconf.Drm.error then 0
    else 1
  in
  ignore states;
  let sm = Sm.create ~durations drm.Zeroconf.Drm.chain in
  let generic = Sm.distribution ~horizon:512 sm ~from:start in
  let special = Zeroconf.Latency.periods ~horizon:512 p ~n ~r in
  Alcotest.(check int) "same support length" (Array.length special.Zeroconf.Latency.pmf)
    (Array.length generic.Sm.pmf);
  Array.iteri
    (fun k mass ->
      check_close ~tol:1e-12
        (Printf.sprintf "pmf at %d" k)
        mass generic.Sm.pmf.(k))
    special.Zeroconf.Latency.pmf

let test_bad_state_guard () =
  let c = chain_of [| [| 0.; 1. |]; [| 0.; 1. |] |] [ "a"; "b" ] in
  let sm = Sm.create ~durations:(fun _ _ -> 1) c in
  Alcotest.check_raises "bad state"
    (Invalid_argument "Semi_markov.distribution: bad state") (fun () ->
      ignore (Sm.distribution sm ~from:7))

let () =
  Alcotest.run "semi_markov"
    [ ( "reductions",
        [ Alcotest.test_case "unit durations" `Quick test_unit_durations_reduce_to_steps;
          Alcotest.test_case "deterministic pipeline" `Quick test_deterministic_pipeline ] );
      ( "zero durations",
        [ Alcotest.test_case "resolved exactly" `Quick
            test_zero_duration_edges_resolved_exactly;
          Alcotest.test_case "trapping cycle rejected" `Quick
            test_zero_cycle_probability_one_rejected;
          Alcotest.test_case "negative rejected" `Quick test_negative_duration_rejected ] );
      ( "distributions",
        [ Alcotest.test_case "mean consistency" `Quick
            test_distribution_mean_matches_expectation;
          Alcotest.test_case "matches Zeroconf.Latency" `Quick
            test_matches_zeroconf_latency;
          Alcotest.test_case "guards" `Quick test_bad_state_guard ] ) ]
