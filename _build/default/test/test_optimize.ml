module O = Zeroconf.Optimize
module Params = Zeroconf.Params
module Cost = Zeroconf.Cost

let check_close ?(tol = 1e-6) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let fig2 = Params.figure2

(* ---------------- nu (Sec. 4.4) ---------------- *)

let test_nu_figure2 () =
  (* the paper: E = 1e35, 1 - l = 1e-15 gives nu = 3, explaining why
     C_1, C_2 are invisible in Figure 2 *)
  Alcotest.(check int) "nu = 3" 3 (O.min_useful_probes fig2)

let test_nu_realistic () =
  (* E = 5e20, 1 - l = 1e-12: ceil(20.7/12) = 2, the Sec. 6 result *)
  Alcotest.(check int) "nu = 2" 2 (O.min_useful_probes Params.realistic_ethernet)

let test_nu_lossless_is_one () =
  let p =
    Params.v ~name:"lossless"
      ~delay:(Dist.Families.shifted_exponential ~rate:10. ~delay:1. ())
      ~q:0.1 ~probe_cost:1. ~error_cost:1e20
  in
  Alcotest.(check int) "no loss -> one probe suffices" 1 (O.min_useful_probes p)

let test_nu_cheap_error_is_one () =
  let p = Params.with_costs ~error_cost:0.5 fig2 in
  Alcotest.(check int) "cheap errors need no insurance" 1 (O.min_useful_probes p)

(* ---------------- r_opt (Sec. 4.2) ---------------- *)

let test_optimal_r_figure2_values () =
  (* regression pins, cross-checked against a fine independent scan *)
  let r3 = O.optimal_r fig2 ~n:3 in
  check_close ~tol:1e-3 "r_opt(3)" 2.1416 r3.Numerics.Minimize.x;
  check_close ~tol:1e-3 "C_3 min" 12.6014 r3.Numerics.Minimize.fx;
  let r4 = O.optimal_r fig2 ~n:4 in
  check_close ~tol:1e-3 "r_opt(4)" 1.2436 r4.Numerics.Minimize.x

let test_optimal_r_is_stationary () =
  List.iter
    (fun n ->
      let r = (O.optimal_r fig2 ~n).Numerics.Minimize.x in
      let d = Cost.derivative fig2 ~n ~r in
      (* scale the tolerance with the cost magnitude *)
      let scale = Cost.mean fig2 ~n ~r in
      Alcotest.(check bool)
        (Printf.sprintf "dC_%d/dr ~ 0 at r_opt (got %g)" n d)
        true
        (Float.abs d < 1e-3 *. scale))
    [ 3; 4; 5; 6 ]

let test_optimal_r_beats_neighbours () =
  List.iter
    (fun n ->
      let res = O.optimal_r fig2 ~n in
      let r = res.Numerics.Minimize.x and fx = res.Numerics.Minimize.fx in
      List.iter
        (fun dr ->
          let r' = Float.max 0. (r +. dr) in
          Alcotest.(check bool)
            (Printf.sprintf "C_%d(%g) >= min" n r')
            true
            (Cost.mean fig2 ~n ~r:r' >= fx -. 1e-9))
        [ -0.5; -0.1; 0.1; 0.5; 2. ])
    [ 3; 5; 8 ]

let test_r_opt_decreases_with_n () =
  (* the paper: "The higher n is chosen, the smaller r_opt" *)
  let previous = ref infinity in
  List.iter
    (fun n ->
      let r = (O.optimal_r fig2 ~n).Numerics.Minimize.x in
      Alcotest.(check bool) (Printf.sprintf "r_opt(%d) < r_opt(%d)" n (n - 1)) true
        (r < !previous);
      previous := r)
    [ 3; 4; 5; 6; 7; 8 ]

let test_min_cost_increases_past_three () =
  (* the paper: C_3(r_opt) < C_4(r_opt) < ... < C_8(r_opt) *)
  let costs =
    List.map (fun n -> (O.optimal_r fig2 ~n).Numerics.Minimize.fx) [ 3; 4; 5; 6; 7; 8 ]
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "increasing chain" true (increasing costs)

(* ---------------- N(r) and C_min (Sec. 4.4) ---------------- *)

let test_optimal_n_matches_exhaustive () =
  List.iter
    (fun r ->
      let n_found, cost_found = O.optimal_n fig2 ~r in
      let n_brute, cost_brute =
        Numerics.Minimize.argmin_int ~lo:1 ~hi:64 (fun n -> Cost.mean fig2 ~n ~r)
      in
      Alcotest.(check int) (Printf.sprintf "N(%g)" r) n_brute n_found;
      check_close ~tol:1e-9 "same cost" cost_brute cost_found)
    [ 0.2; 0.5; 1.; 2.; 4.; 6. ]

let test_optimal_n_non_increasing_in_r () =
  (* longer listening periods never ask for more probes *)
  let previous = ref max_int in
  Array.iter
    (fun r ->
      let n, _ = O.optimal_n fig2 ~r in
      Alcotest.(check bool) (Printf.sprintf "N non-increasing at %g" r) true
        (n <= !previous);
      previous := n)
    (Numerics.Grid.linspace 0.3 6. 30)

let test_min_cost_is_lower_envelope () =
  List.iter
    (fun r ->
      let envelope = O.min_cost fig2 ~r in
      List.iter
        (fun n ->
          Alcotest.(check bool)
            (Printf.sprintf "C_min(%g) <= C_%d(%g)" r n r)
            true
            (envelope <= Cost.mean fig2 ~n ~r +. 1e-9))
        [ 1; 2; 3; 4; 5; 6; 7; 8 ])
    [ 0.5; 1.; 2.; 3. ]

let test_error_under_optimal_n () =
  let r = 2. in
  let n, _ = O.optimal_n fig2 ~r in
  check_close ~tol:1e-30 "consistent with direct computation"
    (Zeroconf.Reliability.error_probability fig2 ~n ~r)
    (O.error_under_optimal_n fig2 ~r)

(* ---------------- global optimum (Sec. 6) ---------------- *)

let test_global_optimum_realistic_matches_paper () =
  let o = O.global_optimum Params.realistic_ethernet in
  Alcotest.(check int) "n = 2" 2 o.O.n;
  check_close ~tol:5e-3 "r ~ 1.75" 1.7484 o.O.r;
  Alcotest.(check bool)
    (Printf.sprintf "error prob %.3g ~ 4e-22" o.O.error_prob)
    true
    (o.O.error_prob > 3.5e-22 && o.O.error_prob < 4.5e-22)

let test_global_optimum_figure2 () =
  let o = O.global_optimum fig2 in
  Alcotest.(check int) "n = 3 on figure2" 3 o.O.n;
  check_close ~tol:5e-3 "r_opt" 2.1416 o.O.r

let test_global_optimum_dominates_grid () =
  let o = O.global_optimum fig2 in
  List.iter
    (fun n ->
      Array.iter
        (fun r ->
          Alcotest.(check bool)
            (Printf.sprintf "optimum <= C(%d, %g)" n r)
            true
            (o.O.cost <= Cost.mean fig2 ~n ~r +. 1e-9))
        (Numerics.Grid.linspace 0.1 6. 25))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* ---------------- constrained / inverse queries ---------------- *)

let test_constrained_respects_budget () =
  List.iter
    (fun budget ->
      let o = O.constrained_optimum ~budget fig2 in
      Alcotest.(check bool)
        (Printf.sprintf "n*r = %g within %g" (float_of_int o.O.n *. o.O.r) budget)
        true
        (float_of_int o.O.n *. o.O.r <= budget +. 1e-9))
    [ 1.; 2.; 4.; 8.; 20. ]

let test_constrained_converges_to_global () =
  (* a generous budget reproduces the unconstrained optimum *)
  let free = O.global_optimum fig2 in
  let capped = O.constrained_optimum ~budget:100. fig2 in
  Alcotest.(check int) "same n" free.O.n capped.O.n;
  check_close ~tol:1e-3 "same r" free.O.r capped.O.r

let test_constrained_monotone_in_budget () =
  let cost budget = (O.constrained_optimum ~budget fig2).O.cost in
  Alcotest.(check bool) "looser budget never hurts" true
    (cost 8. <= cost 4. +. 1e-9 && cost 4. <= cost 2. +. 1e-9)

let test_constrained_guard () =
  Alcotest.check_raises "budget <= 0"
    (Invalid_argument "Optimize.constrained_optimum: budget <= 0") (fun () ->
      ignore (O.constrained_optimum ~budget:0. fig2))

let test_probes_for_error_target () =
  (* minimality: the found n meets the target, n - 1 does not *)
  List.iter
    (fun target ->
      match O.probes_for_error_target fig2 ~r:2. ~target with
      | None -> Alcotest.fail "expected a solution"
      | Some n ->
          Alcotest.(check bool) "meets the target" true
            (Zeroconf.Reliability.error_probability fig2 ~n ~r:2. <= target);
          if n > 1 then
            Alcotest.(check bool) "minimal" true
              (Zeroconf.Reliability.error_probability fig2 ~n:(n - 1) ~r:2.
              > target))
    [ 1e-6; 1e-12; 1e-30 ]

let test_probes_for_unreachable_target () =
  (* with heavy permanent loss the error floor blocks deep targets *)
  let lossy =
    Params.v ~name:"lossy"
      ~delay:(Dist.Families.shifted_exponential ~mass:0.5 ~rate:10. ~delay:0.1 ())
      ~q:0.5 ~probe_cost:1. ~error_cost:10.
  in
  (* floor per probe is 0.5: E(n, r) >= q * 0.5^n / ... but with n_max 8
     it cannot reach 1e-30 *)
  Alcotest.(check (option int)) "unreachable" None
    (O.probes_for_error_target ~n_max:8 lossy ~r:1. ~target:1e-30)

let () =
  Alcotest.run "optimize"
    [ ( "nu",
        [ Alcotest.test_case "figure2" `Quick test_nu_figure2;
          Alcotest.test_case "realistic" `Quick test_nu_realistic;
          Alcotest.test_case "lossless" `Quick test_nu_lossless_is_one;
          Alcotest.test_case "cheap error" `Quick test_nu_cheap_error_is_one ] );
      ( "optimal r",
        [ Alcotest.test_case "figure2 values" `Quick test_optimal_r_figure2_values;
          Alcotest.test_case "stationarity" `Quick test_optimal_r_is_stationary;
          Alcotest.test_case "beats neighbours" `Quick test_optimal_r_beats_neighbours;
          Alcotest.test_case "decreasing in n" `Quick test_r_opt_decreases_with_n;
          Alcotest.test_case "minima ordered" `Quick test_min_cost_increases_past_three ] );
      ( "optimal n",
        [ Alcotest.test_case "matches exhaustive" `Quick test_optimal_n_matches_exhaustive;
          Alcotest.test_case "non-increasing" `Quick test_optimal_n_non_increasing_in_r;
          Alcotest.test_case "lower envelope" `Quick test_min_cost_is_lower_envelope;
          Alcotest.test_case "error under optimal n" `Quick test_error_under_optimal_n ] );
      ( "global optimum",
        [ Alcotest.test_case "Sec. 6 headline" `Quick
            test_global_optimum_realistic_matches_paper;
          Alcotest.test_case "figure2" `Quick test_global_optimum_figure2;
          Alcotest.test_case "dominates grid" `Quick test_global_optimum_dominates_grid ] );
      ( "constrained and inverse",
        [ Alcotest.test_case "budget respected" `Quick test_constrained_respects_budget;
          Alcotest.test_case "matches global when loose" `Quick
            test_constrained_converges_to_global;
          Alcotest.test_case "monotone in budget" `Quick
            test_constrained_monotone_in_budget;
          Alcotest.test_case "guard" `Quick test_constrained_guard;
          Alcotest.test_case "probes for target" `Quick test_probes_for_error_target;
          Alcotest.test_case "unreachable target" `Quick
            test_probes_for_unreachable_target ] ) ]
