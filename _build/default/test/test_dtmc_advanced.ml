module M = Numerics.Matrix
module C = Dtmc.Chain
module Ss = Dtmc.State_space

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let chain_of arrays labels =
  C.create ~states:(Ss.of_labels labels) (M.of_arrays arrays)

(* ---------------- transient analysis ---------------- *)

let flip = chain_of [| [| 0.5; 0.5 |]; [| 0.5; 0.5 |] |] [ "h"; "t" ]

let test_distribution_after () =
  let pi = Dtmc.Transient.distribution_after flip ~k:5 [| 1.; 0. |] in
  check_close "mixes immediately" 0.5 pi.(0);
  let pi0 = Dtmc.Transient.distribution_after flip ~k:0 [| 1.; 0. |] in
  check_close "k = 0 is identity" 1. pi0.(0)

let test_k_step_probability () =
  let c = chain_of [| [| 0.; 1. |]; [| 1.; 0. |] |] [ "a"; "b" ] in
  check_close "period 2: back after 2" 1.
    (Dtmc.Transient.k_step_probability c ~k:2 ~from:0 ~to_:0);
  check_close "period 2: away after 3" 1.
    (Dtmc.Transient.k_step_probability c ~k:3 ~from:0 ~to_:1)

let test_absorption_cdf_geometric () =
  (* leave with prob 0.5 each step: P(absorbed by k) = 1 - 0.5^k *)
  let c = chain_of [| [| 0.5; 0.5 |]; [| 0.; 1. |] |] [ "s"; "a" ] in
  let cdf = Dtmc.Transient.absorption_cdf c ~from:0 ~horizon:6 in
  Array.iteri
    (fun k v ->
      check_close (Printf.sprintf "cdf at %d" k) (1. -. (0.5 ** float_of_int k)) v)
    cdf

let test_expected_reward_within () =
  (* pay 1 per step while unabsorbed; by horizon h the expected spend is
     sum_{k<h} P(still transient at step k) = sum 0.5^k *)
  let c = chain_of [| [| 0.5; 0.5 |]; [| 0.; 1. |] |] [ "s"; "a" ] in
  let costs = M.create ~rows:2 ~cols:2 in
  M.set costs 0 0 1.;
  M.set costs 0 1 1.;
  let r = Dtmc.Reward.create ~transition_rewards:costs c in
  let expected h =
    let acc = ref 0. in
    for k = 0 to h - 1 do
      acc := !acc +. (0.5 ** float_of_int k)
    done;
    !acc
  in
  List.iter
    (fun h ->
      check_close
        (Printf.sprintf "horizon %d" h)
        (expected h)
        (Dtmc.Transient.expected_reward_within r ~from:0 ~horizon:h))
    [ 0; 1; 2; 5; 20 ]

(* ---------------- stationary distributions ---------------- *)

let test_gth_two_state () =
  (* a -> b at 0.2, b -> a at 0.4: pi = (2/3, 1/3) *)
  let c = chain_of [| [| 0.8; 0.2 |]; [| 0.4; 0.6 |] |] [ "a"; "b" ] in
  let pi = Dtmc.Stationary.gth c in
  check_close "pi_a" (2. /. 3.) pi.(0);
  check_close "pi_b" (1. /. 3.) pi.(1);
  Alcotest.(check bool) "verified stationary" true (Dtmc.Stationary.is_stationary c pi)

let test_gth_matches_power_iteration () =
  let c =
    chain_of
      [| [| 0.5; 0.3; 0.2 |]; [| 0.1; 0.8; 0.1 |]; [| 0.3; 0.3; 0.4 |] |]
      [ "x"; "y"; "z" ]
  in
  let gth = Dtmc.Stationary.gth c in
  let power = Dtmc.Stationary.power_iteration c in
  Alcotest.(check bool) "agree" true
    (Numerics.Vector.approx_eq ~rtol:1e-8 ~atol:1e-10 gth power)

let test_gth_birth_death () =
  (* random walk on 0..3 with reflecting ends; detailed balance gives a
     closed form to compare against *)
  let up = 0.3 and down = 0.2 in
  let n = 4 in
  let m = M.create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    let u = if i < n - 1 then up else 0. in
    let d = if i > 0 then down else 0. in
    if u > 0. then M.set m i (i + 1) u;
    if d > 0. then M.set m i (i - 1) d;
    M.set m i i (1. -. u -. d)
  done;
  let c = C.create ~states:(Ss.of_labels [ "0"; "1"; "2"; "3" ]) m in
  let pi = Dtmc.Stationary.gth c in
  let ratio = up /. down in
  let unnorm = Array.init n (fun i -> ratio ** float_of_int i) in
  let total = Numerics.Safe_float.sum unnorm in
  Array.iteri
    (fun i u -> check_close (Printf.sprintf "pi_%d" i) (u /. total) pi.(i))
    unnorm

(* ---------------- reachability ---------------- *)

(* diamond: s -> l (0.3) / r (0.7); l -> goal; r -> trap *)
let diamond =
  chain_of
    [| [| 0.; 0.3; 0.7; 0.; 0. |];
       [| 0.; 0.; 0.; 1.; 0. |];
       [| 0.; 0.; 0.; 0.; 1. |];
       [| 0.; 0.; 0.; 1.; 0. |];
       [| 0.; 0.; 0.; 0.; 1. |] |]
    [ "s"; "l"; "r"; "goal"; "trap" ]

let test_reachability_prob () =
  let p = Dtmc.Reachability.prob diamond ~target:[ 3 ] in
  check_close "from s" 0.3 p.(0);
  check_close "from l" 1. p.(1);
  check_close "from r" 0. p.(2);
  check_close "target itself" 1. p.(3);
  check_close "trap" 0. p.(4)

let test_reachability_qualitative () =
  let never = Dtmc.Reachability.never diamond ~target:[ 3 ] in
  Alcotest.(check (array bool)) "never set"
    [| false; false; true; false; true |] never;
  let certain = Dtmc.Reachability.certainly diamond ~target:[ 3 ] in
  Alcotest.(check (array bool)) "certain set"
    [| false; true; false; true; false |] certain

let test_reachability_vs_absorption () =
  (* on the zeroconf-like chain, reachability of [error] must equal the
     absorption probability into it *)
  let drm = Zeroconf.Drm.build Zeroconf.Params.figure2 ~n:3 ~r:1.5 in
  let via_reach =
    Dtmc.Reachability.prob_from drm.Zeroconf.Drm.chain ~from:drm.Zeroconf.Drm.start
      ~target:[ drm.Zeroconf.Drm.error ]
  in
  let via_absorb = Zeroconf.Drm.error_probability drm in
  check_close ~tol:1e-12 "agree" via_absorb via_reach

let test_bounded_reachability () =
  (* leave with prob 0.5 per step *)
  let c = chain_of [| [| 0.5; 0.5 |]; [| 0.; 1. |] |] [ "s"; "a" ] in
  let v = Dtmc.Reachability.bounded_prob c ~target:[ 1 ] ~horizon:3 in
  check_close "within 3 steps" (1. -. 0.125) v.(0);
  let v0 = Dtmc.Reachability.bounded_prob c ~target:[ 1 ] ~horizon:0 in
  check_close "horizon 0 from non-target" 0. v0.(0);
  check_close "horizon 0 from target" 1. v0.(1)

(* ---------------- sparse matrices ---------------- *)

let test_sparse_roundtrip () =
  let dense =
    M.of_arrays [| [| 0.; 1.; 0. |]; [| 2.; 0.; 3. |]; [| 0.; 0.; 0. |] |]
  in
  let s = Dtmc.Sparse.of_matrix dense in
  Alcotest.(check int) "nnz" 3 (Dtmc.Sparse.nnz s);
  Alcotest.(check bool) "roundtrip" true
    (M.approx_eq dense (Dtmc.Sparse.to_matrix s));
  check_close "get hit" 3. (Dtmc.Sparse.get s 1 2);
  check_close "get miss" 0. (Dtmc.Sparse.get s 2 0)

let test_sparse_of_rows_sums_duplicates () =
  let s = Dtmc.Sparse.of_rows ~rows:2 ~cols:2 [ (0, 1, 1.); (0, 1, 2.) ] in
  check_close "summed" 3. (Dtmc.Sparse.get s 0 1);
  Alcotest.(check int) "single entry" 1 (Dtmc.Sparse.nnz s)

let test_sparse_mul_vec_matches_dense () =
  let dense =
    M.of_arrays [| [| 0.5; 0.; 0.5 |]; [| 0.1; 0.2; 0.7 |]; [| 0.; 0.; 1. |] |]
  in
  let s = Dtmc.Sparse.of_matrix dense in
  let v = [| 1.; 2.; 3. |] in
  Alcotest.(check bool) "mul_vec" true
    (Numerics.Vector.approx_eq (M.mul_vec dense v) (Dtmc.Sparse.mul_vec s v));
  Alcotest.(check bool) "vec_mul" true
    (Numerics.Vector.approx_eq (M.vec_mul v dense) (Dtmc.Sparse.vec_mul v s))

let test_sparse_jacobi_matches_lu () =
  (* (I - Q) x = b with substochastic Q from the ruin chain *)
  let q =
    M.of_arrays [| [| 0.; 0.5; 0. |]; [| 0.5; 0.; 0.5 |]; [| 0.; 0.5; 0. |] |]
  in
  let b = [| 1.; 1.; 1. |] in
  let lu = Numerics.Lu.solve (M.sub (M.identity 3) q) b in
  let jacobi = Dtmc.Sparse.jacobi_solve (Dtmc.Sparse.of_matrix q) b in
  Alcotest.(check bool) "agree" true
    (Numerics.Vector.approx_eq ~rtol:1e-8 ~atol:1e-10 lu jacobi)

(* ---------------- simulation ---------------- *)

let test_simulate_ruin () =
  let rng = Numerics.Rng.create 31 in
  let ruin =
    chain_of
      [| [| 1.; 0.; 0. |]; [| 0.5; 0.; 0.5 |]; [| 0.; 0.; 1. |] |]
      [ "lose"; "play"; "win" ]
  in
  let est =
    Dtmc.Simulate.estimate_absorption ~trials:20_000 ~rng ruin ~from:1 ~into:2
  in
  Alcotest.(check bool) "win prob near 0.5" true
    (est.Dtmc.Simulate.ci_lo <= 0.5 && 0.5 <= est.Dtmc.Simulate.ci_hi)

let test_simulate_reward_matches_analytic () =
  let rng = Numerics.Rng.create 32 in
  let c = chain_of [| [| 0.8; 0.2 |]; [| 0.; 1. |] |] [ "s"; "a" ] in
  let costs = M.create ~rows:2 ~cols:2 in
  M.set costs 0 0 1.;
  M.set costs 0 1 1.;
  let r = Dtmc.Reward.create ~transition_rewards:costs c in
  let est = Dtmc.Simulate.estimate_total_reward ~trials:20_000 ~rng r ~from:0 in
  let truth = Dtmc.Absorbing.expected_total_reward r ~from:0 in
  check_close "analytic is 5" 5. truth;
  Alcotest.(check bool) "CI covers analytic" true
    (est.Dtmc.Simulate.ci_lo <= truth && truth <= est.Dtmc.Simulate.ci_hi)

let test_simulate_path_structure () =
  let rng = Numerics.Rng.create 33 in
  let c = chain_of [| [| 0.; 1. |]; [| 0.; 1. |] |] [ "s"; "a" ] in
  let p = Dtmc.Simulate.run ~rng (Dtmc.Reward.zero c) ~from:0 in
  Alcotest.(check bool) "absorbed" true p.Dtmc.Simulate.absorbed;
  Alcotest.(check (array int)) "path" [| 0; 1 |] p.Dtmc.Simulate.states

let () =
  Alcotest.run "dtmc_advanced"
    [ ( "transient",
        [ Alcotest.test_case "distribution_after" `Quick test_distribution_after;
          Alcotest.test_case "k-step" `Quick test_k_step_probability;
          Alcotest.test_case "absorption cdf" `Quick test_absorption_cdf_geometric;
          Alcotest.test_case "finite-horizon reward" `Quick test_expected_reward_within ] );
      ( "stationary",
        [ Alcotest.test_case "two-state" `Quick test_gth_two_state;
          Alcotest.test_case "gth vs power" `Quick test_gth_matches_power_iteration;
          Alcotest.test_case "birth-death" `Quick test_gth_birth_death ] );
      ( "reachability",
        [ Alcotest.test_case "probabilities" `Quick test_reachability_prob;
          Alcotest.test_case "qualitative" `Quick test_reachability_qualitative;
          Alcotest.test_case "vs absorption" `Quick test_reachability_vs_absorption;
          Alcotest.test_case "bounded" `Quick test_bounded_reachability ] );
      ( "sparse",
        [ Alcotest.test_case "roundtrip" `Quick test_sparse_roundtrip;
          Alcotest.test_case "duplicate triples" `Quick test_sparse_of_rows_sums_duplicates;
          Alcotest.test_case "mul matches dense" `Quick test_sparse_mul_vec_matches_dense;
          Alcotest.test_case "jacobi vs lu" `Quick test_sparse_jacobi_matches_lu ] );
      ( "simulation",
        [ Alcotest.test_case "ruin" `Quick test_simulate_ruin;
          Alcotest.test_case "reward" `Quick test_simulate_reward_matches_analytic;
          Alcotest.test_case "path structure" `Quick test_simulate_path_structure ] ) ]
