module Ph = Dist.Phase_type
module F = Dist.Families
module D = Dist.Distribution

let check_close ?(tol = 1e-8) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let grid = [ 0.05; 0.2; 0.5; 1.; 2.; 5. ]

let check_same_cdf ?(tol = 1e-8) msg a b =
  List.iter
    (fun t ->
      check_close ~tol
        (Printf.sprintf "%s cdf at %g" msg t)
        (a.D.cdf t) (b.D.cdf t))
    grid

let test_single_phase_is_exponential () =
  check_same_cdf "PH(1) vs exponential"
    (Ph.exponential ~rate:3. ())
    (F.exponential ~rate:3. ())

let test_erlang_matches_family () =
  check_same_cdf "PH erlang vs closed form"
    (Ph.erlang ~stages:4 ~rate:2. ())
    (F.erlang ~stages:4 ~rate:2. ())

let test_hyperexponential_matches_mixture () =
  let ph = Ph.hyperexponential [ (0.3, 1.); (0.7, 5.) ] in
  let mix =
    F.mixture [ (0.3, F.exponential ~rate:1. ()); (0.7, F.exponential ~rate:5. ()) ]
  in
  check_same_cdf "PH hyperexp vs mixture" ph mix

let test_coxian_all_continue_is_erlang () =
  let cox =
    Ph.coxian ~rates:[| 2.; 2.; 2. |] ~continue_probs:[| 1.; 1. |] ()
  in
  check_same_cdf "coxian(1,1) = erlang-3" cox (F.erlang ~stages:3 ~rate:2. ())

let test_coxian_never_continue_is_exponential () =
  let cox = Ph.coxian ~rates:[| 2.; 7. |] ~continue_probs:[| 0. |] () in
  check_same_cdf "coxian(0) = exp" cox (F.exponential ~rate:2. ())

let test_mean_matches_closed_form () =
  let d = Ph.erlang ~stages:5 ~rate:2. () in
  check_close "mean 5/2" 2.5 (Option.get d.D.mean);
  let h = Ph.hyperexponential [ (0.5, 1.); (0.5, 4.) ] in
  check_close "hyperexp mean" ((0.5 /. 1.) +. (0.5 /. 4.)) (Option.get h.D.mean)

let test_defective_mass () =
  let d = Ph.exponential ~mass:0.8 ~rate:2. () in
  Alcotest.(check bool) "defective" true (D.is_defective d);
  check_close "cdf saturates at mass" 0.8 (d.D.cdf 100.);
  check_close "survival floor" 0.2 (d.D.survival 100.)

let test_self_check () =
  List.iter
    (fun d ->
      match D.check ~hi:20. d with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    [ Ph.exponential ~rate:1. ();
      Ph.erlang ~stages:3 ~rate:4. ();
      Ph.hyperexponential [ (0.2, 0.5); (0.8, 3.) ];
      Ph.coxian ~rates:[| 1.; 2. |] ~continue_probs:[| 0.6 |] () ]

let test_alpha_deficit_is_atom_at_zero () =
  (* initial mass 0.75 on the phase, 0.25 absorbed immediately *)
  let d =
    Ph.create ~alpha:[| 0.75 |]
      ~sub_generator:(Numerics.Matrix.of_arrays [| [| -1. |] |])
      ()
  in
  check_close "atom at zero" 0.25 (d.D.cdf 0.);
  check_close "eventually one" 1. (d.D.cdf 50.)

let test_sampling_matches_cdf () =
  let d = Ph.coxian ~rates:[| 3.; 1. |] ~continue_probs:[| 0.5 |] () in
  let rng = Numerics.Rng.create 5 in
  let samples =
    Array.init 30_000 (fun _ ->
        match d.D.sample rng with Some x -> x | None -> Alcotest.fail "loss?")
  in
  let ecdf = Numerics.Stats.ecdf samples in
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Printf.sprintf "ecdf ~ cdf at %g" t)
        true
        (Float.abs (ecdf t -. d.D.cdf t) < 0.015))
    [ 0.2; 0.5; 1.; 2. ];
  (* sampled mean vs closed-form mean *)
  let sampled = Numerics.Safe_float.mean samples in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.4f ~ %.4f" sampled (Option.get d.D.mean))
    true
    (Float.abs (sampled -. Option.get d.D.mean) < 0.02)

let test_usable_in_cost_model () =
  (* a PH reply-delay drops into the zeroconf model like any other
     distribution; sanity: cost is finite and error probability behaves *)
  let delay = Ph.hyperexponential ~mass:0.95 [ (0.7, 10.); (0.3, 1.) ] in
  let p =
    Zeroconf.Params.v ~name:"ph-scenario" ~delay ~q:0.1 ~probe_cost:1.
      ~error_cost:1e4
  in
  let c = Zeroconf.Cost.mean p ~n:4 ~r:1. in
  Alcotest.(check bool) "finite positive cost" true (Float.is_finite c && c > 0.);
  let e1 = Zeroconf.Reliability.error_probability p ~n:2 ~r:1. in
  let e2 = Zeroconf.Reliability.error_probability p ~n:4 ~r:1. in
  Alcotest.(check bool) "more probes help" true (e2 < e1);
  (* and the DRM matrix route agrees with Eq. 3 for the PH delay too *)
  let drm = Zeroconf.Drm.build p ~n:3 ~r:0.8 in
  Alcotest.(check bool) "matrix route agrees" true
    (Numerics.Safe_float.approx_eq ~rtol:1e-8
       (Zeroconf.Cost.mean p ~n:3 ~r:0.8)
       (Zeroconf.Drm.mean_cost drm))

let test_validation () =
  (try
     ignore (Ph.create ~alpha:[||] ~sub_generator:(Numerics.Matrix.identity 1) ());
     Alcotest.fail "accepted empty alpha"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Ph.create ~alpha:[| 1.5 |]
          ~sub_generator:(Numerics.Matrix.of_arrays [| [| -1. |] |])
          ());
     Alcotest.fail "accepted alpha mass > 1"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Ph.create ~alpha:[| 1. |]
          ~sub_generator:(Numerics.Matrix.of_arrays [| [| 1. |] |])
          ());
     Alcotest.fail "accepted positive row sum"
   with Invalid_argument _ -> ());
  try
    ignore (Ph.coxian ~rates:[| 1. |] ~continue_probs:[| 0.5 |] ());
    Alcotest.fail "accepted mismatched coxian arrays"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "phase_type"
    [ ( "special cases",
        [ Alcotest.test_case "exponential" `Quick test_single_phase_is_exponential;
          Alcotest.test_case "erlang" `Quick test_erlang_matches_family;
          Alcotest.test_case "hyperexponential" `Quick
            test_hyperexponential_matches_mixture;
          Alcotest.test_case "coxian -> erlang" `Quick test_coxian_all_continue_is_erlang;
          Alcotest.test_case "coxian -> exp" `Quick test_coxian_never_continue_is_exponential ] );
      ( "moments and mass",
        [ Alcotest.test_case "means" `Quick test_mean_matches_closed_form;
          Alcotest.test_case "defective" `Quick test_defective_mass;
          Alcotest.test_case "self-check" `Quick test_self_check;
          Alcotest.test_case "alpha deficit" `Quick test_alpha_deficit_is_atom_at_zero ] );
      ( "integration",
        [ Alcotest.test_case "sampling" `Quick test_sampling_matches_cdf;
          Alcotest.test_case "plugs into the cost model" `Quick
            test_usable_in_cost_model;
          Alcotest.test_case "validation" `Quick test_validation ] ) ]
