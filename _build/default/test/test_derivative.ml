module D = Numerics.Derivative

let check_close ?(tol = 1e-6) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let test_central_polynomial () =
  check_close "d/dx x^2 at 3" 6. (D.central ~f:(fun x -> x *. x) 3.);
  check_close "d/dx x^3 at 2" 12. (D.central ~f:(fun x -> x ** 3.) 2.)

let test_central_transcendental () =
  check_close "d/dx sin at 0" 1. (D.central ~f:sin 0.);
  check_close "d/dx exp at 1" (exp 1.) (D.central ~f:exp 1.)

let test_richardson_beats_central () =
  let f = exp in
  let x = 2. in
  let truth = exp 2. in
  let err_central = Float.abs (D.central ~f x -. truth) in
  let err_rich = Float.abs (D.richardson ~f x -. truth) in
  Alcotest.(check bool)
    (Printf.sprintf "richardson (%.2e) <= central (%.2e)" err_rich err_central)
    true
    (err_rich <= err_central +. 1e-14)

let test_richardson_high_accuracy () =
  check_close ~tol:1e-10 "d/dx log at 5" 0.2 (D.richardson ~f:log 5.)

let test_second () =
  check_close ~tol:1e-4 "d2/dx2 x^3 at 2" 12. (D.second ~f:(fun x -> x ** 3.) 2.);
  check_close ~tol:1e-4 "d2/dx2 sin at pi/2" (-1.) (D.second ~f:sin (Float.pi /. 2.))

let test_log_elasticity () =
  (* f = x^k has constant elasticity k *)
  check_close ~tol:1e-6 "power law k = 3" 3.
    (D.log_elasticity ~f:(fun x -> x ** 3.) 7.);
  check_close ~tol:1e-6 "power law k = -0.5" (-0.5)
    (D.log_elasticity ~f:(fun x -> x ** -0.5) 2.);
  (* constants have zero elasticity *)
  check_close ~tol:1e-9 "constant" 0. (D.log_elasticity ~f:(fun _ -> 42.) 5.)

let test_log_elasticity_guards () =
  Alcotest.check_raises "x <= 0"
    (Invalid_argument "Derivative.log_elasticity: x <= 0") (fun () ->
      ignore (D.log_elasticity ~f:(fun x -> x) 0.));
  Alcotest.check_raises "f x <= 0"
    (Invalid_argument "Derivative.log_elasticity: f x <= 0") (fun () ->
      ignore (D.log_elasticity ~f:(fun _ -> -1.) 1.))

let prop_derivative_of_affine =
  QCheck.Test.make ~name:"derivative of ax + b is a" ~count:300
    QCheck.(triple (float_range (-10.) 10.) (float_range (-10.) 10.)
              (float_range (-5.) 5.))
    (fun (a, b, x) ->
      let d = D.richardson ~f:(fun x -> (a *. x) +. b) x in
      Numerics.Safe_float.approx_eq ~rtol:1e-6 ~atol:1e-8 d a)

let prop_chain_rule_scaling =
  QCheck.Test.make ~name:"f(kx) differentiates to k f'(kx)" ~count:200
    QCheck.(pair (float_range 0.5 3.) (float_range 0.2 2.))
    (fun (k, x) ->
      let d = D.richardson ~f:(fun x -> sin (k *. x)) x in
      Numerics.Safe_float.approx_eq ~rtol:1e-5 ~atol:1e-8 d (k *. cos (k *. x)))

let () =
  Alcotest.run "derivative"
    [ ( "central",
        [ Alcotest.test_case "polynomial" `Quick test_central_polynomial;
          Alcotest.test_case "transcendental" `Quick test_central_transcendental ] );
      ( "richardson",
        [ Alcotest.test_case "beats central" `Quick test_richardson_beats_central;
          Alcotest.test_case "high accuracy" `Quick test_richardson_high_accuracy ] );
      ("second", [ Alcotest.test_case "second derivative" `Quick test_second ]);
      ( "elasticity",
        [ Alcotest.test_case "power laws" `Quick test_log_elasticity;
          Alcotest.test_case "guards" `Quick test_log_elasticity_guards ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_derivative_of_affine; prop_chain_rule_scaling ] ) ]
