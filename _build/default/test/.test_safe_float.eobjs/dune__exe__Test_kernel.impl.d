test/test_kernel.ml: Alcotest Array Dist Exec Fun List Numerics Printf QCheck QCheck_alcotest Zeroconf
