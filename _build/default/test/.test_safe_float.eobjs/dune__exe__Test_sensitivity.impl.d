test/test_sensitivity.ml: Alcotest Float List Numerics Printf Zeroconf
