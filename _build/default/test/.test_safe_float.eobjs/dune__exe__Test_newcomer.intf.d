test/test_newcomer.mli:
