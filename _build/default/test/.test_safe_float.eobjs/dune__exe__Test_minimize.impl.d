test/test_minimize.ml: Alcotest Array Float List Numerics QCheck QCheck_alcotest
