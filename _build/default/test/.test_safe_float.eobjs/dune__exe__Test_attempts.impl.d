test/test_attempts.ml: Alcotest Dist List Netsim Numerics Printf Zeroconf
