test/test_scc_hitting.mli:
