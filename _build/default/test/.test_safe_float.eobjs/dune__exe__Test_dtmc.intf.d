test/test_dtmc.mli:
