test/test_derivative.ml: Alcotest Float List Numerics Printf QCheck QCheck_alcotest
