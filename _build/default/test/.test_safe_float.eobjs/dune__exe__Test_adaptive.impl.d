test/test_adaptive.ml: Alcotest Array Dist List Numerics Printf Zeroconf
