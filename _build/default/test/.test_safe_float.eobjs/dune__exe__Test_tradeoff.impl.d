test/test_tradeoff.ml: Alcotest List Printf Zeroconf
