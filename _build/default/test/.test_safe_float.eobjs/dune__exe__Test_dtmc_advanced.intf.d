test/test_dtmc_advanced.mli:
