test/test_dtmc_random.ml: Alcotest Array Dtmc List Numerics Printf QCheck QCheck_alcotest
