test/test_importance.mli:
