test/test_reliability.ml: Alcotest Dist Float List Numerics Printf QCheck QCheck_alcotest Zeroconf
