test/test_scc_hitting.ml: Alcotest Array Dtmc List Numerics Zeroconf
