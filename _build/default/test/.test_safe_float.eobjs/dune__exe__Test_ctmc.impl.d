test/test_ctmc.ml: Alcotest Array Dtmc List Numerics Printf
