test/test_dtmc_random.mli:
