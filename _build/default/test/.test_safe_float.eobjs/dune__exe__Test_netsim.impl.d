test/test_netsim.ml: Alcotest Array Dist Float List Netsim Numerics Option Printf QCheck QCheck_alcotest
