test/test_drm.mli:
