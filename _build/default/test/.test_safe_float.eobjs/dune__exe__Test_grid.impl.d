test/test_grid.ml: Alcotest Array Fun List Numerics QCheck QCheck_alcotest
