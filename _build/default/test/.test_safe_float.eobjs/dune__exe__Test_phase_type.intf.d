test/test_phase_type.mli:
