test/test_params.ml: Alcotest Dist Format List Option String Zeroconf
