test/test_pctl_parser.ml: Alcotest Dtmc Format List Zeroconf
