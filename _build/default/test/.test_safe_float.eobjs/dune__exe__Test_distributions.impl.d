test/test_distributions.ml: Alcotest Array Dist Float List Numerics Option Printf QCheck QCheck_alcotest
