test/test_fit.mli:
