test/test_integrate.ml: Alcotest Dist Float List Numerics QCheck QCheck_alcotest
