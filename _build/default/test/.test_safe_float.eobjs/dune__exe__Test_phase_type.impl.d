test/test_phase_type.ml: Alcotest Array Dist Float List Numerics Option Printf Zeroconf
