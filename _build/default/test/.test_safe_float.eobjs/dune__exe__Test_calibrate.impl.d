test/test_calibrate.ml: Alcotest Dist Float Printf Zeroconf
