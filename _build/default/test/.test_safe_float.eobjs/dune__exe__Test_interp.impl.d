test/test_interp.ml: Alcotest Array Float Gen List Numerics QCheck QCheck_alcotest
