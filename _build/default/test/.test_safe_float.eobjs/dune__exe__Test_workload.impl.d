test/test_workload.ml: Alcotest Array Dist List Netsim Numerics Printf
