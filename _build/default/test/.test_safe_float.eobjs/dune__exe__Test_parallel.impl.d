test/test_parallel.ml: Alcotest Array Dist Exec Fun List Netsim Numerics Printf Zeroconf
