test/test_output.ml: Alcotest Array Filename Float Fun List Output Printf String Sys
