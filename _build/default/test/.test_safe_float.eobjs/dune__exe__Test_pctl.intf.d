test/test_pctl.mli:
