test/test_pctl_parser.mli:
