test/test_export.ml: Alcotest Array Dtmc Hashtbl List Numerics Option Printf String Zeroconf
