test/test_stats.ml: Alcotest Array Float Gen List Numerics Printf QCheck QCheck_alcotest
