test/test_derivative.mli:
