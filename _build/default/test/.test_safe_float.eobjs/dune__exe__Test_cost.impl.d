test/test_cost.ml: Alcotest Dist List Numerics Printf QCheck QCheck_alcotest Zeroconf
