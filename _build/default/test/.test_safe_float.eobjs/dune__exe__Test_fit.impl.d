test/test_fit.ml: Alcotest Array Dist Float Numerics Option Printf QCheck QCheck_alcotest String Zeroconf
