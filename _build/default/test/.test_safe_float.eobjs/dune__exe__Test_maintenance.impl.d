test/test_maintenance.ml: Alcotest Dist Netsim Numerics Printf
