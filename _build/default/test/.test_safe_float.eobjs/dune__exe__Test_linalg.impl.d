test/test_linalg.ml: Alcotest Array Gen List Numerics QCheck QCheck_alcotest
