test/test_uncertainty.mli:
