test/test_drm.ml: Alcotest Array Dist Dtmc Numerics Printf Zeroconf
