test/test_semi_markov.ml: Alcotest Array Dtmc Numerics Printf Zeroconf
