test/test_importance.ml: Alcotest Dist Dtmc List Numerics Printf Zeroconf
