test/test_uncertainty.ml: Alcotest Array Dist Format List Numerics Printf String Zeroconf
