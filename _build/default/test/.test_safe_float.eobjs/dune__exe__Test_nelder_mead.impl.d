test/test_nelder_mead.ml: Alcotest Array Dist Float Numerics Printf Zeroconf
