test/test_empirical.ml: Alcotest Array Dist Float Gen List Numerics Printf QCheck QCheck_alcotest
