test/test_newcomer.ml: Alcotest Array Dist Float List Netsim Numerics Printf String Zeroconf
