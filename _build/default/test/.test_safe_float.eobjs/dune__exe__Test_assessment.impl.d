test/test_assessment.ml: Alcotest Format List Printf String Zeroconf
