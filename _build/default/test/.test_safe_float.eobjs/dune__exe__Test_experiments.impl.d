test/test_experiments.ml: Alcotest Array Dtmc Float List Printf Zeroconf
