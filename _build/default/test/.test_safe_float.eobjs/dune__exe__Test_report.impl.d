test/test_report.ml: Alcotest List String Zeroconf
