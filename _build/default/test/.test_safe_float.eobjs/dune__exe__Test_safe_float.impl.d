test/test_safe_float.ml: Alcotest Array Float Gen List Numerics QCheck QCheck_alcotest
