test/test_optimize.ml: Alcotest Array Dist Float List Numerics Printf Zeroconf
