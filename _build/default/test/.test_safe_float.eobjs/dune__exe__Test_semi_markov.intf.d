test/test_semi_markov.mli:
