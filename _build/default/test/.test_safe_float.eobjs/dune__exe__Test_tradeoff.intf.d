test/test_tradeoff.mli:
