test/test_probes.ml: Alcotest Array Dist Float List Numerics Printf QCheck QCheck_alcotest Zeroconf
