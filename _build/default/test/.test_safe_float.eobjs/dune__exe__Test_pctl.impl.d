test/test_pctl.ml: Alcotest Array Dtmc Numerics Printf Zeroconf
