test/test_safe_float.mli:
