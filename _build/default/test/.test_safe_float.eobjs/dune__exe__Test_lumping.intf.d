test/test_lumping.mli:
