test/test_moments.ml: Alcotest Array Dist Float List Numerics QCheck QCheck_alcotest
