test/test_latency.ml: Alcotest Array Dist Float List Netsim Numerics Printf Zeroconf
