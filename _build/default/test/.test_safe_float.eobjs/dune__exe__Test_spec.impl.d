test/test_spec.ml: Alcotest Array Dist Float Netsim Numerics Printf Zeroconf
