test/test_attempts.mli:
