test/test_roots.ml: Alcotest Float List Numerics QCheck QCheck_alcotest
