test/test_consistency.ml: Alcotest Array Dist Dtmc Float List Numerics Printf Zeroconf
