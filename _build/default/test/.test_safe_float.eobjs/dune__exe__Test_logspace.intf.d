test/test_logspace.mli:
