test/test_dtmc.ml: Alcotest Array Dtmc Numerics Printf
