test/test_logspace.ml: Alcotest Float List Numerics Printf QCheck QCheck_alcotest
