test/test_assessment.mli:
