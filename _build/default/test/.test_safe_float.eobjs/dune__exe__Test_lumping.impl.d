test/test_lumping.ml: Alcotest Array Dtmc List Numerics Printf Zeroconf
