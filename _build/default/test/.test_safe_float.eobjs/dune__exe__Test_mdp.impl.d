test/test_mdp.ml: Alcotest Array Dtmc Float List Printf
