test/test_probes.mli:
