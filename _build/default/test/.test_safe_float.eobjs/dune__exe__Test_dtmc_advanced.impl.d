test/test_dtmc_advanced.ml: Alcotest Array Dtmc List Numerics Printf Zeroconf
