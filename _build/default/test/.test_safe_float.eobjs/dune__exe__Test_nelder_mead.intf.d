test/test_nelder_mead.mli:
