test/test_multi.ml: Alcotest Array Dist List Netsim Numerics Printf
