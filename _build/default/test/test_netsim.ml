module Eq = Netsim.Event_queue
module Engine = Netsim.Engine
module Pool = Netsim.Address_pool
module Link = Netsim.Link

let check_close ?(tol = 1e-12) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* ---------------- event queue ---------------- *)

let test_queue_orders_by_time () =
  let q = Eq.create () in
  Eq.add q ~time:3. "c";
  Eq.add q ~time:1. "a";
  Eq.add q ~time:2. "b";
  let order = List.init 3 (fun _ -> snd (Option.get (Eq.pop q))) in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] order;
  Alcotest.(check bool) "drained" true (Eq.is_empty q)

let test_queue_fifo_on_ties () =
  let q = Eq.create () in
  List.iter (fun label -> Eq.add q ~time:1. label) [ "first"; "second"; "third" ];
  let order = List.init 3 (fun _ -> snd (Option.get (Eq.pop q))) in
  Alcotest.(check (list string)) "insertion order" [ "first"; "second"; "third" ] order

let test_queue_peek_nondestructive () =
  let q = Eq.create () in
  Eq.add q ~time:5. "x";
  Alcotest.(check (option (pair (float 0.) string))) "peek" (Some (5., "x")) (Eq.peek q);
  Alcotest.(check int) "still there" 1 (Eq.size q)

let test_queue_interleaved_ops () =
  let q = Eq.create () in
  Eq.add q ~time:10. 10;
  Eq.add q ~time:5. 5;
  Alcotest.(check (option (pair (float 0.) int))) "pop min" (Some (5., 5)) (Eq.pop q);
  Eq.add q ~time:1. 1;
  Alcotest.(check (option (pair (float 0.) int))) "new min" (Some (1., 1)) (Eq.pop q);
  Alcotest.(check (option (pair (float 0.) int))) "last" (Some (10., 10)) (Eq.pop q);
  Alcotest.(check (option (pair (float 0.) int))) "empty" None (Eq.pop q)

let test_queue_large_heap_sorted () =
  let q = Eq.create () in
  let rng = Numerics.Rng.create 55 in
  for i = 0 to 999 do
    Eq.add q ~time:(Numerics.Rng.float rng) i
  done;
  let previous = ref neg_infinity in
  let ok = ref true in
  for _ = 1 to 1000 do
    let time, _ = Option.get (Eq.pop q) in
    if time < !previous then ok := false;
    previous := time
  done;
  Alcotest.(check bool) "non-decreasing" true !ok

let test_queue_rejects_nan () =
  let q = Eq.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Event_queue.add: nan time")
    (fun () -> Eq.add q ~time:Float.nan ())

(* model-based property: any interleaving of adds and pops behaves like
   a stable sort on (time, insertion order) *)
let prop_queue_matches_reference_model =
  QCheck.Test.make ~name:"heap = stable sorted reference under random ops"
    ~count:300
    QCheck.(list (pair (float_range 0. 100.) bool))
    (fun ops ->
      let q = Eq.create () in
      (* reference: sorted association list of (time, seq) *)
      let model = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun (time, is_add) ->
          if is_add then begin
            Eq.add q ~time !seq;
            model :=
              List.merge
                (fun (t1, s1) (t2, s2) -> compare (t1, s1) (t2, s2))
                !model
                [ (time, !seq) ];
            incr seq
          end
          else
            match (Eq.pop q, !model) with
            | None, [] -> ()
            | Some (t, payload), (mt, ms) :: rest ->
                if t <> mt || payload <> ms then ok := false;
                model := rest
            | Some _, [] | None, _ :: _ -> ok := false)
        ops;
      (* drain and compare the rest *)
      List.iter
        (fun (mt, ms) ->
          match Eq.pop q with
          | Some (t, payload) when t = mt && payload = ms -> ()
          | _ -> ok := false)
        !model;
      !ok && Eq.is_empty q)

(* ---------------- engine ---------------- *)

let test_engine_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~after:2. (fun () -> log := ("b", Engine.now e) :: !log);
  Engine.schedule e ~after:1. (fun () -> log := ("a", Engine.now e) :: !log);
  Engine.run e;
  Alcotest.(check (list (pair string (float 0.))))
    "order and clock" [ ("a", 1.); ("b", 2.) ] (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let fired = ref [] in
  Engine.schedule e ~after:1. (fun () ->
      fired := 1 :: !fired;
      Engine.schedule e ~after:1. (fun () -> fired := 2 :: !fired));
  Engine.run e;
  Alcotest.(check (list int)) "nested event ran" [ 1; 2 ] (List.rev !fired);
  check_close "clock at 2" 2. (Engine.now e)

let test_engine_until_horizon () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~after:1. (fun () -> incr fired);
  Engine.schedule e ~after:10. (fun () -> incr fired);
  Engine.run ~until:5. e;
  Alcotest.(check int) "only the early event" 1 !fired;
  check_close "clock clamped to horizon" 5. (Engine.now e);
  Alcotest.(check int) "late event still queued" 1 (Engine.pending e)

let test_engine_event_budget () =
  let e = Engine.create () in
  let rec loop () = Engine.schedule e ~after:0. loop in
  Engine.schedule e ~after:0. loop;
  Alcotest.check_raises "runaway guarded" (Failure "Engine.run: event budget exceeded")
    (fun () -> Engine.run ~max_events:1000 e)

let test_engine_rejects_past () =
  let e = Engine.create () in
  Engine.schedule e ~after:1. (fun () -> ());
  Engine.run e;
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule e ~after:(-1.) (fun () -> ()));
  Alcotest.check_raises "absolute past"
    (Invalid_argument "Engine.schedule_at: time in the past") (fun () ->
      Engine.schedule_at e ~time:0.5 (fun () -> ()))

let test_engine_tracer () =
  let e = Engine.create () in
  let lines = ref [] in
  Engine.set_tracer e (Some (fun t s -> lines := (t, s) :: !lines));
  Engine.schedule e ~after:1.5 (fun () -> Engine.trace e "fired %d" 42);
  Engine.run e;
  Alcotest.(check (list (pair (float 0.) string))) "traced" [ (1.5, "fired 42") ] !lines;
  Engine.set_tracer e None;
  Engine.trace e "silent %d" 1

(* ---------------- address pool ---------------- *)

let test_pool_claim_release () =
  let p = Pool.create ~size:16 () in
  Alcotest.(check int) "empty" 0 (Pool.occupied_count p);
  Pool.claim p 3;
  Alcotest.(check bool) "occupied" true (Pool.is_occupied p 3);
  Alcotest.(check int) "count" 1 (Pool.occupied_count p);
  Alcotest.check_raises "double claim"
    (Invalid_argument "Address_pool.claim: already occupied") (fun () ->
      Pool.claim p 3);
  Pool.release p 3;
  Alcotest.(check bool) "released" false (Pool.is_occupied p 3);
  Alcotest.check_raises "double release"
    (Invalid_argument "Address_pool.release: not occupied") (fun () ->
      Pool.release p 3)

let test_pool_default_size_is_paper () =
  Alcotest.(check int) "65024 addresses" 65024 (Pool.size (Pool.create ()))

let test_pool_random_free () =
  let p = Pool.create ~size:8 () in
  let rng = Numerics.Rng.create 1 in
  for _ = 1 to 8 do
    ignore (Pool.claim_random_free p ~rng)
  done;
  Alcotest.(check int) "filled" 8 (Pool.occupied_count p);
  Alcotest.check_raises "full" (Failure "Address_pool.claim_random_free: pool full")
    (fun () -> ignore (Pool.claim_random_free p ~rng))

let test_pool_to_string () =
  Alcotest.(check string) "first" "169.254.1.0" (Pool.to_string 0);
  Alcotest.(check string) "second octet rollover" "169.254.2.0" (Pool.to_string 256);
  Alcotest.(check string) "last" "169.254.254.255" (Pool.to_string 65023)

let test_pool_candidate_uniform () =
  let p = Pool.create ~size:4 () in
  let rng = Numerics.Rng.create 2 in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let a = Pool.random_candidate p ~rng in
    counts.(a) <- counts.(a) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "address %d near uniform" i)
        true
        (Float.abs ((float_of_int c /. float_of_int n) -. 0.25) < 0.02))
    counts

(* ---------------- link ---------------- *)

let perfect_delay = Dist.Families.deterministic ~delay:0.1 ()

let test_link_delivers_to_others_not_sender () =
  let engine = Engine.create () in
  let rng = Numerics.Rng.create 3 in
  let link = Link.create ~engine ~rng ~loss:0. ~one_way:perfect_delay in
  let received = Array.make 3 0 in
  let ids =
    Array.init 3 (fun i -> Link.attach link (fun _ -> received.(i) <- received.(i) + 1))
  in
  Link.broadcast link ~sender:ids.(0)
    (Netsim.Packet.Arp_probe { sender = ids.(0); address = 1 });
  Engine.run engine;
  Alcotest.(check (array int)) "everyone but the sender" [| 0; 1; 1 |] received;
  Alcotest.(check int) "sent count" 1 (Link.packets_sent link);
  Alcotest.(check int) "delivered count" 2 (Link.packets_delivered link)

let test_link_delay_applied () =
  let engine = Engine.create () in
  let rng = Numerics.Rng.create 4 in
  let link = Link.create ~engine ~rng ~loss:0. ~one_way:perfect_delay in
  let arrival = ref 0. in
  let _receiver = Link.attach link (fun _ -> arrival := Engine.now engine) in
  let sender = Link.attach link (fun _ -> ()) in
  Link.broadcast link ~sender (Netsim.Packet.Arp_probe { sender; address = 0 });
  Engine.run engine;
  check_close "one-way delay" 0.1 !arrival

let test_link_loss_rate () =
  let engine = Engine.create () in
  let rng = Numerics.Rng.create 5 in
  let link = Link.create ~engine ~rng ~loss:0.3 ~one_way:perfect_delay in
  let received = ref 0 in
  let _receiver = Link.attach link (fun _ -> incr received) in
  let sender = Link.attach link (fun _ -> ()) in
  let n = 20_000 in
  for _ = 1 to n do
    Link.broadcast link ~sender (Netsim.Packet.Arp_probe { sender; address = 0 })
  done;
  Engine.run engine;
  let rate = 1. -. (float_of_int !received /. float_of_int n) in
  Alcotest.(check bool) (Printf.sprintf "loss rate %.3f near 0.3" rate) true
    (Float.abs (rate -. 0.3) < 0.02);
  Alcotest.(check int) "conservation" n
    (Link.packets_delivered link + Link.packets_lost link)

let test_link_detach () =
  let engine = Engine.create () in
  let rng = Numerics.Rng.create 6 in
  let link = Link.create ~engine ~rng ~loss:0. ~one_way:perfect_delay in
  let received = ref 0 in
  let receiver = Link.attach link (fun _ -> incr received) in
  let sender = Link.attach link (fun _ -> ()) in
  Link.detach link receiver;
  Link.broadcast link ~sender (Netsim.Packet.Arp_probe { sender; address = 0 });
  Engine.run engine;
  Alcotest.(check int) "no delivery after detach" 0 !received

(* ---------------- host responder ---------------- *)

let test_host_replies_to_own_address_only () =
  let engine = Engine.create () in
  let rng = Numerics.Rng.create 7 in
  let link = Link.create ~engine ~rng ~loss:0. ~one_way:perfect_delay in
  let host = Netsim.Host.create ~engine ~link ~rng ~address:5 () in
  let replies = ref [] in
  let observer = Link.attach link (fun p -> replies := p :: !replies) in
  Link.broadcast link ~sender:observer
    (Netsim.Packet.Arp_probe { sender = observer; address = 5 });
  Link.broadcast link ~sender:observer
    (Netsim.Packet.Arp_probe { sender = observer; address = 6 });
  Engine.run engine;
  Alcotest.(check int) "one reply" 1 (List.length !replies);
  Alcotest.(check int) "host reply count" 1 (Netsim.Host.replies_sent host);
  match !replies with
  | [ Netsim.Packet.Arp_reply { address; _ } ] ->
      Alcotest.(check int) "defends its address" 5 address
  | _ -> Alcotest.fail "expected exactly one ARP reply"

let test_host_processing_delay () =
  let engine = Engine.create () in
  let rng = Numerics.Rng.create 8 in
  let link = Link.create ~engine ~rng ~loss:0. ~one_way:perfect_delay in
  let _host =
    Netsim.Host.create ~engine ~link ~rng
      ~processing:(Dist.Families.deterministic ~delay:0.5 ())
      ~address:5 ()
  in
  let reply_time = ref 0. in
  let observer = Link.attach link (fun _ -> reply_time := Engine.now engine) in
  Link.broadcast link ~sender:observer
    (Netsim.Packet.Arp_probe { sender = observer; address = 5 });
  Engine.run engine;
  (* probe 0.1 one way + 0.5 processing + 0.1 reply = 0.7 *)
  check_close "round trip" 0.7 !reply_time

let test_host_deafness () =
  let engine = Engine.create () in
  let rng = Numerics.Rng.create 9 in
  let link = Link.create ~engine ~rng ~loss:0. ~one_way:perfect_delay in
  let host = Netsim.Host.create ~engine ~link ~rng ~deaf_prob:1. ~address:5 () in
  let observer = Link.attach link (fun _ -> ()) in
  ignore observer;
  Link.broadcast link ~sender:observer
    (Netsim.Packet.Arp_probe { sender = observer; address = 5 });
  Engine.run engine;
  Alcotest.(check int) "fully deaf host never replies" 0 (Netsim.Host.replies_sent host)

let test_host_defend_interval () =
  (* two probes within the window: only the first draws a defense *)
  let engine = Engine.create () in
  let rng = Numerics.Rng.create 10 in
  let link = Link.create ~engine ~rng ~loss:0. ~one_way:perfect_delay in
  let host =
    Netsim.Host.create ~engine ~link ~rng ~defend_interval:10. ~address:5 ()
  in
  let observer = Link.attach link (fun _ -> ()) in
  let probe () =
    Link.broadcast link ~sender:observer
      (Netsim.Packet.Arp_probe { sender = observer; address = 5 })
  in
  Engine.schedule engine ~after:0. probe;
  Engine.schedule engine ~after:5. probe;   (* inside the window *)
  Engine.schedule engine ~after:20. probe;  (* outside: defended again *)
  Engine.run engine;
  Alcotest.(check int) "two defenses for three probes" 2
    (Netsim.Host.replies_sent host)

let () =
  Alcotest.run "netsim"
    [ ( "event queue",
        [ Alcotest.test_case "orders by time" `Quick test_queue_orders_by_time;
          Alcotest.test_case "fifo ties" `Quick test_queue_fifo_on_ties;
          Alcotest.test_case "peek" `Quick test_queue_peek_nondestructive;
          Alcotest.test_case "interleaved" `Quick test_queue_interleaved_ops;
          Alcotest.test_case "large heap" `Quick test_queue_large_heap_sorted;
          Alcotest.test_case "rejects nan" `Quick test_queue_rejects_nan;
          QCheck_alcotest.to_alcotest prop_queue_matches_reference_model ] );
      ( "engine",
        [ Alcotest.test_case "order" `Quick test_engine_runs_in_order;
          Alcotest.test_case "nested" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "horizon" `Quick test_engine_until_horizon;
          Alcotest.test_case "budget" `Quick test_engine_event_budget;
          Alcotest.test_case "rejects past" `Quick test_engine_rejects_past;
          Alcotest.test_case "tracer" `Quick test_engine_tracer ] );
      ( "address pool",
        [ Alcotest.test_case "claim/release" `Quick test_pool_claim_release;
          Alcotest.test_case "paper size" `Quick test_pool_default_size_is_paper;
          Alcotest.test_case "random free" `Quick test_pool_random_free;
          Alcotest.test_case "rendering" `Quick test_pool_to_string;
          Alcotest.test_case "uniform candidates" `Quick test_pool_candidate_uniform ] );
      ( "link",
        [ Alcotest.test_case "broadcast semantics" `Quick
            test_link_delivers_to_others_not_sender;
          Alcotest.test_case "delay" `Quick test_link_delay_applied;
          Alcotest.test_case "loss rate" `Quick test_link_loss_rate;
          Alcotest.test_case "detach" `Quick test_link_detach ] );
      ( "host",
        [ Alcotest.test_case "replies to own address" `Quick
            test_host_replies_to_own_address_only;
          Alcotest.test_case "processing delay" `Quick test_host_processing_delay;
          Alcotest.test_case "deafness" `Quick test_host_deafness;
          Alcotest.test_case "defend interval" `Quick test_host_defend_interval ] ) ]
