module R = Zeroconf.Reliability
module Params = Zeroconf.Params

let check_rel ?(rtol = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.12g vs %.12g" msg expected actual)
    true
    (Numerics.Safe_float.approx_eq ~rtol expected actual)

let fig2 = Params.figure2

let test_at_zero_equals_conditional_q () =
  (* r = 0: pi_n = 1, so E = q / (1 - q + q) = q *)
  check_rel "E(n, 0) = q" fig2.Params.q (R.error_probability fig2 ~n:4 ~r:0.)

let test_draft_regression () =
  (* pinned value computed at build time and cross-checked by hand *)
  check_rel ~rtol:1e-4 "E(4, 2) on figure2" 6.6957e-50
    (R.error_probability fig2 ~n:4 ~r:2.)

let test_free_network_never_errs () =
  let p = Params.with_q fig2 0. in
  Alcotest.(check (float 0.)) "q = 0 means no collision" 0.
    (R.error_probability p ~n:4 ~r:2.)

let test_complement () =
  let e = R.error_probability fig2 ~n:3 ~r:1.5 in
  check_rel "reliability complements" (1. -. e) (R.reliability fig2 ~n:3 ~r:1.5)

let test_log10_matches_linear () =
  List.iter
    (fun (n, r) ->
      check_rel ~rtol:1e-6
        (Printf.sprintf "log10 at n=%d r=%g" n r)
        (log10 (R.error_probability fig2 ~n ~r))
        (R.log10_error_probability fig2 ~n ~r))
    [ (1, 1.5); (3, 2.); (4, 2.) ]

let test_log10_below_float_underflow () =
  (* 40 probes at r = 3: the linear value underflows to 0 but the log
     form reports the true magnitude *)
  let v = R.log10_error_probability fig2 ~n:40 ~r:3. in
  Alcotest.(check bool) "finite and very negative" true
    (Float.is_finite v && v < -300.)

let test_error_bound_is_floor () =
  let p = Params.wireless_worst_case in
  let n = 4 in
  let floor = R.error_bound p ~n in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "E(n, %g) >= floor" r)
        true
        (R.error_probability p ~n ~r >= floor -. 1e-18))
    [ 0.5; 1.; 2.; 5.; 50. ];
  check_rel ~rtol:1e-3 "floor attained at huge r" floor
    (R.error_probability p ~n ~r:1e5)

let scenario_gen =
  QCheck.Gen.(
    let* loss = float_range 0. 0.5 in
    let* rate = float_range 0.5 20. in
    let* delay = float_range 0. 2. in
    let* q = float_range 0.01 0.9 in
    return
      (Params.v ~name:"prop"
         ~delay:(Dist.Families.shifted_exponential ~mass:(1. -. loss) ~rate ~delay ())
         ~q ~probe_cost:1. ~error_cost:100.))

let prop_eq4_matches_matrix =
  QCheck.Test.make ~name:"Eq. 4 = absorption probability into error" ~count:200
    QCheck.(triple (make scenario_gen) (int_range 1 8) (float_range 0. 6.))
    (fun (p, n, r) ->
      let drm = Zeroconf.Drm.build p ~n ~r in
      Numerics.Safe_float.approx_eq ~rtol:1e-8 ~atol:1e-12
        (R.error_probability p ~n ~r)
        (Zeroconf.Drm.error_probability drm))

let prop_is_probability =
  QCheck.Test.make ~name:"E(n, r) in [0, 1]" ~count:300
    QCheck.(triple (make scenario_gen) (int_range 1 10) (float_range 0. 10.))
    (fun (p, n, r) ->
      Numerics.Safe_float.is_probability (R.error_probability p ~n ~r))

let prop_decreasing_in_n =
  QCheck.Test.make ~name:"more probes never hurt reliability" ~count:200
    QCheck.(triple (make scenario_gen) (int_range 1 8) (float_range 0.1 6.))
    (fun (p, n, r) ->
      R.error_probability p ~n:(n + 1) ~r <= R.error_probability p ~n ~r +. 1e-12)

let prop_decreasing_in_r =
  QCheck.Test.make ~name:"longer listening never hurts reliability" ~count:200
    QCheck.(quad (make scenario_gen) (int_range 1 8) (float_range 0.05 5.)
              (float_range 0.05 5.))
    (fun (p, n, r1, r2) ->
      let lo = Float.min r1 r2 and hi = Float.max r1 r2 in
      R.error_probability p ~n ~r:hi <= R.error_probability p ~n ~r:lo +. 1e-12)

let prop_bounded_by_q =
  QCheck.Test.make ~name:"E(n, r) <= q (collision needs an occupied pick)"
    ~count:300
    QCheck.(triple (make scenario_gen) (int_range 1 8) (float_range 0. 6.))
    (fun (p, n, r) -> R.error_probability p ~n ~r <= p.Params.q +. 1e-12)

let () =
  Alcotest.run "reliability"
    [ ( "point values",
        [ Alcotest.test_case "at zero" `Quick test_at_zero_equals_conditional_q;
          Alcotest.test_case "draft regression" `Quick test_draft_regression;
          Alcotest.test_case "free network" `Quick test_free_network_never_errs;
          Alcotest.test_case "complement" `Quick test_complement ] );
      ( "log form",
        [ Alcotest.test_case "matches linear" `Quick test_log10_matches_linear;
          Alcotest.test_case "below underflow" `Quick test_log10_below_float_underflow ] );
      ( "bounds",
        [ Alcotest.test_case "loss floor" `Quick test_error_bound_is_floor ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_eq4_matches_matrix; prop_is_probability; prop_decreasing_in_n;
            prop_decreasing_in_r; prop_bounded_by_q ] ) ]
