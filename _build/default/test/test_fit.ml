module Fit = Dist.Fit
module F = Dist.Families
module D = Dist.Distribution

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let draw_samples dist ~count ~seed =
  let rng = Numerics.Rng.create seed in
  let delays = ref [] and losses = ref 0 in
  for _ = 1 to count do
    match dist.D.sample rng with
    | Some d -> delays := d :: !delays
    | None -> incr losses
  done;
  (Array.of_list !delays, !losses)

let test_mle_recovers_parameters () =
  let truth = F.shifted_exponential ~mass:0.97 ~rate:6. ~delay:0.4 () in
  let samples, losses = draw_samples truth ~count:20_000 ~seed:1 in
  let fit = Fit.shifted_exponential_mle ~losses samples in
  Alcotest.(check bool)
    (Printf.sprintf "delay %.4f near 0.4" fit.Fit.delay)
    true
    (Float.abs (fit.Fit.delay -. 0.4) < 0.01);
  Alcotest.(check bool)
    (Printf.sprintf "rate %.3f near 6" fit.Fit.rate)
    true
    (Float.abs (fit.Fit.rate -. 6.) < 0.2);
  Alcotest.(check bool)
    (Printf.sprintf "loss %.4f near 0.03" fit.Fit.loss)
    true
    (Float.abs (fit.Fit.loss -. 0.03) < 0.005)

let test_mle_exact_structure () =
  (* the closed form is exact on tiny inputs: d = min, rate = 1/(mean-d) *)
  let samples = [| 1.; 2.; 3. |] in
  let fit = Fit.shifted_exponential_mle samples in
  check_close "delay is min" 1. fit.Fit.delay;
  check_close "rate" 1. fit.Fit.rate;
  check_close "no loss" 0. fit.Fit.loss

let test_to_distribution_roundtrip () =
  let fit = { Fit.loss = 0.1; delay = 0.5; rate = 2. } in
  let d = Fit.to_distribution fit in
  check_close "mass" 0.9 d.D.mass;
  check_close "mean" 1.0 (Option.get d.D.mean);
  check_close "no mass before the floor" 0. (d.D.cdf 0.49)

let test_nm_agrees_with_mle () =
  let truth = F.shifted_exponential ~rate:4. ~delay:1.2 () in
  let samples, _ = draw_samples truth ~count:5_000 ~seed:2 in
  let mle = Fit.shifted_exponential_mle samples in
  let nm = Fit.shifted_exponential_nm samples in
  Alcotest.(check bool)
    (Printf.sprintf "delay %.4f ~ %.4f" nm.Fit.delay mle.Fit.delay)
    true
    (Float.abs (nm.Fit.delay -. mle.Fit.delay) < 0.01);
  Alcotest.(check bool)
    (Printf.sprintf "rate %.3f ~ %.3f" nm.Fit.rate mle.Fit.rate)
    true
    (Float.abs (nm.Fit.rate -. mle.Fit.rate) /. mle.Fit.rate < 0.05)

let test_erlang_moment_match () =
  let truth = F.erlang ~stages:5 ~rate:2. () in
  let samples, _ = draw_samples truth ~count:30_000 ~seed:3 in
  let fitted = Fit.erlang_moment_match samples in
  (* recover the stage count and rate approximately *)
  Alcotest.(check bool)
    ("recovered " ^ fitted.D.name)
    true
    (let has_k k =
       let name = fitted.D.name in
       let needle = Printf.sprintf "k=%d" k in
       let nl = String.length needle and ll = String.length name in
       let rec scan i = i + nl <= ll && (String.sub name i nl = needle || scan (i + 1)) in
       scan 0
     in
     has_k 4 || has_k 5 || has_k 6);
  check_close ~tol:0.1 "mean preserved" 2.5 (Option.get fitted.D.mean)

let test_assess_prefers_the_right_family () =
  (* data from a shifted exponential: the correct family must beat the
     erlang alternative on KS distance *)
  let truth = F.shifted_exponential ~rate:8. ~delay:0.3 () in
  let samples, _ = draw_samples truth ~count:5_000 ~seed:4 in
  let good = Fit.to_distribution (Fit.shifted_exponential_mle samples) in
  let alt = Fit.erlang_moment_match samples in
  let q_good = Fit.assess good samples in
  let q_alt = Fit.assess alt samples in
  Alcotest.(check bool)
    (Printf.sprintf "KS %.4f < %.4f" q_good.Fit.ks_statistic q_alt.Fit.ks_statistic)
    true
    (q_good.Fit.ks_statistic < q_alt.Fit.ks_statistic);
  Alcotest.(check bool) "log likelihood agrees on ordering" true
    (q_good.Fit.log_likelihood > q_alt.Fit.log_likelihood)

let test_assess_ks_small_on_own_sample () =
  let truth = F.exponential ~rate:3. () in
  let samples, _ = draw_samples truth ~count:10_000 ~seed:5 in
  let q = Fit.assess truth samples in
  Alcotest.(check bool)
    (Printf.sprintf "KS %.4f below 0.02" q.Fit.ks_statistic)
    true
    (q.Fit.ks_statistic < 0.02)

let test_guards () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Fit.shifted_exponential_mle: empty sample") (fun () ->
      ignore (Fit.shifted_exponential_mle [||]));
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Fit.erlang_moment_match: bad delay") (fun () ->
      ignore (Fit.erlang_moment_match [| -1. |]))

let prop_fit_regret_small =
  (* end-to-end: fitting from the distribution's own samples and
     optimizing on the fit must cost at most a few percent more than
     optimizing on the truth *)
  QCheck.Test.make ~name:"deploying a fitted design has small regret" ~count:8
    QCheck.(pair (float_range 2. 10.) (float_range 0.05 0.5))
    (fun (rate, delay) ->
      let truth = F.shifted_exponential ~mass:0.99 ~rate ~delay () in
      let samples, losses = draw_samples truth ~count:4_000 ~seed:6 in
      let fitted = Fit.to_distribution (Fit.shifted_exponential_mle ~losses samples) in
      let scenario d =
        Zeroconf.Params.v ~name:"fit" ~delay:d ~q:0.05 ~probe_cost:1.
          ~error_cost:1e8
      in
      let o_true = Zeroconf.Optimize.global_optimum (scenario truth) in
      let o_fit = Zeroconf.Optimize.global_optimum (scenario fitted) in
      let deployed =
        Zeroconf.Cost.mean (scenario truth) ~n:o_fit.Zeroconf.Optimize.n
          ~r:o_fit.Zeroconf.Optimize.r
      in
      deployed <= o_true.Zeroconf.Optimize.cost *. 1.05)

let () =
  Alcotest.run "fit"
    [ ( "shifted exponential",
        [ Alcotest.test_case "recovers parameters" `Quick test_mle_recovers_parameters;
          Alcotest.test_case "exact structure" `Quick test_mle_exact_structure;
          Alcotest.test_case "to_distribution" `Quick test_to_distribution_roundtrip;
          Alcotest.test_case "NM agrees with MLE" `Quick test_nm_agrees_with_mle ] );
      ( "alternatives",
        [ Alcotest.test_case "erlang moment match" `Quick test_erlang_moment_match ] );
      ( "assessment",
        [ Alcotest.test_case "right family wins" `Quick
            test_assess_prefers_the_right_family;
          Alcotest.test_case "KS small on own sample" `Quick
            test_assess_ks_small_on_own_sample;
          Alcotest.test_case "guards" `Quick test_guards ] );
      ( "end to end",
        [ QCheck_alcotest.to_alcotest prop_fit_regret_small ] ) ]
