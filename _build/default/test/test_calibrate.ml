module Cal = Zeroconf.Calibrate
module Params = Zeroconf.Params

let check_close ?(tol = 1e-6) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let wireless_network =
  Params.v ~name:"sec45-wireless"
    ~delay:(Dist.Families.shifted_exponential ~mass:(1. -. 1e-5) ~rate:10. ~delay:1. ())
    ~q:(Params.q_of_hosts 1000) ~probe_cost:0. ~error_cost:0.

let wired_network =
  Params.v ~name:"sec45-wired"
    ~delay:(Dist.Families.shifted_exponential ~mass:(1. -. 1e-10) ~rate:100. ~delay:0.1 ())
    ~q:(Params.q_of_hosts 1000) ~probe_cost:0. ~error_cost:0.

let test_stationarity_e_wireless () =
  (* the paper derives E_{r=2} = 5e20 "by simple numerical
     approximation"; the exact stationarity solution is 5.66e20 *)
  let p = Params.with_costs ~probe_cost:3.5 wireless_network in
  let e = Cal.error_cost_for_stationarity p ~n:4 ~r:2. in
  Alcotest.(check bool)
    (Printf.sprintf "E = %.3g within [4e20, 7e20]" e)
    true
    (e > 4e20 && e < 7e20)

let test_stationarity_e_wired () =
  (* paper: E_{r=0.2} = 1e35; exact stationarity gives 5.6e34 *)
  let p = Params.with_costs ~probe_cost:0.5 wired_network in
  let e = Cal.error_cost_for_stationarity p ~n:4 ~r:0.2 in
  Alcotest.(check bool)
    (Printf.sprintf "E = %.3g within [3e34, 2e35]" e)
    true
    (e > 3e34 && e < 2e35)

let test_stationarity_e_barely_depends_on_c () =
  let e_at c =
    Cal.error_cost_for_stationarity
      (Params.with_costs ~probe_cost:c wireless_network)
      ~n:4 ~r:2.
  in
  Alcotest.(check bool) "c moves E by < 1%" true
    (Float.abs ((e_at 0.5 /. e_at 5.) -. 1.) < 0.01)

let test_full_calibration_wireless () =
  let res = Cal.run wireless_network ~n:4 ~r:2. in
  (* threshold postage just below the paper's rounded 3.5 *)
  Alcotest.(check bool)
    (Printf.sprintf "c = %.3f in [2.5, 3.5]" res.Cal.probe_cost)
    true
    (res.Cal.probe_cost > 2.5 && res.Cal.probe_cost <= 3.5);
  Alcotest.(check int) "target n is optimal" 4 res.Cal.optimum.Zeroconf.Optimize.n;
  check_close ~tol:0.02 "target r recovered" 2. res.Cal.optimum.Zeroconf.Optimize.r;
  Alcotest.(check bool) "r residual small" true (res.Cal.r_residual < 0.02)

let test_full_calibration_wired () =
  let res = Cal.run wired_network ~n:4 ~r:0.2 in
  Alcotest.(check bool)
    (Printf.sprintf "c = %.3f in [0.2, 0.5]" res.Cal.probe_cost)
    true
    (res.Cal.probe_cost > 0.2 && res.Cal.probe_cost <= 0.5);
  Alcotest.(check int) "target n is optimal" 4 res.Cal.optimum.Zeroconf.Optimize.n;
  check_close ~tol:0.005 "target r recovered" 0.2 res.Cal.optimum.Zeroconf.Optimize.r

let test_paper_costs_make_draft_optimal () =
  (* forward check of Sec. 4.5: under the paper's (E, c) the draft's
     (4, 2) resp. (4, 0.2) are globally optimal *)
  let check_scenario base e c n r =
    let p = Params.with_costs ~probe_cost:c ~error_cost:e base in
    let o = Zeroconf.Optimize.global_optimum p in
    Alcotest.(check int) "draft n optimal" n o.Zeroconf.Optimize.n;
    check_close ~tol:(0.05 *. r) "draft r optimal" r o.Zeroconf.Optimize.r
  in
  check_scenario wireless_network 5e20 3.5 4 2.;
  check_scenario wired_network 1e35 0.5 4 0.2

let test_guards () =
  Alcotest.check_raises "n = 0"
    (Invalid_argument "Calibrate.run: n < 1") (fun () ->
      ignore (Cal.run wireless_network ~n:0 ~r:2.));
  Alcotest.check_raises "r = 0"
    (Invalid_argument "Calibrate.run: r <= 0") (fun () ->
      ignore (Cal.run wireless_network ~n:4 ~r:0.))

let () =
  Alcotest.run "calibrate"
    [ ( "stationarity E",
        [ Alcotest.test_case "wireless" `Quick test_stationarity_e_wireless;
          Alcotest.test_case "wired" `Quick test_stationarity_e_wired;
          Alcotest.test_case "independent of c" `Quick
            test_stationarity_e_barely_depends_on_c ] );
      ( "full inverse problem",
        [ Alcotest.test_case "wireless (Sec. 4.5 r=2)" `Slow
            test_full_calibration_wireless;
          Alcotest.test_case "wired (Sec. 4.5 r=0.2)" `Slow
            test_full_calibration_wired ] );
      ( "forward check",
        [ Alcotest.test_case "paper costs make draft optimal" `Quick
            test_paper_costs_make_draft_optimal;
          Alcotest.test_case "guards" `Quick test_guards ] ) ]
