module I = Numerics.Interp

let check_close ?(tol = 1e-12) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let table = I.create ~xs:[| 0.; 1.; 2.; 4. |] ~ys:[| 0.; 10.; 10.; 30. |]

let test_eval_at_knots () =
  check_close "knot 0" 0. (I.eval table 0.);
  check_close "knot 1" 10. (I.eval table 1.);
  check_close "knot 3" 30. (I.eval table 4.)

let test_eval_between_knots () =
  check_close "first segment" 5. (I.eval table 0.5);
  check_close "flat segment" 10. (I.eval table 1.7);
  check_close "last segment" 20. (I.eval table 3.)

let test_eval_extrapolation_clamps () =
  check_close "below" 0. (I.eval table (-5.));
  check_close "above" 30. (I.eval table 100.)

let test_inverse () =
  check_close "inverse interior" 0.5 (I.inverse table 5.);
  check_close "inverse at knot" 1. (I.inverse table 10.);
  check_close "inverse in last segment" 3. (I.inverse table 20.);
  check_close "inverse clamps low" 0. (I.inverse table (-1.));
  check_close "inverse clamps high" 4. (I.inverse table 99.)

let test_domain_and_map () =
  let lo, hi = I.domain table in
  check_close "domain lo" 0. lo;
  check_close "domain hi" 4. hi;
  let doubled = I.map_y (fun y -> 2. *. y) table in
  check_close "mapped" 20. (I.eval doubled 1.)

let test_validation () =
  Alcotest.check_raises "too short"
    (Invalid_argument "Interp.create: need at least two points") (fun () ->
      ignore (I.create ~xs:[| 1. |] ~ys:[| 1. |]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Interp.create: length mismatch") (fun () ->
      ignore (I.create ~xs:[| 1.; 2. |] ~ys:[| 1. |]));
  Alcotest.check_raises "not increasing"
    (Invalid_argument "Interp.create: abscissae not strictly increasing")
    (fun () -> ignore (I.create ~xs:[| 1.; 1. |] ~ys:[| 1.; 2. |]))

let prop_interpolation_bounded =
  QCheck.Test.make ~name:"interpolant stays within segment y-range" ~count:300
    QCheck.(pair (float_range 0. 4.) (list_of_size (Gen.return 5) (float_range (-10.) 10.)))
    (fun (x, ys) ->
      let xs = [| 0.; 1.; 2.; 3.; 4. |] in
      let ys = Array.of_list ys in
      let t = I.create ~xs ~ys in
      let v = I.eval t x in
      let lo = Array.fold_left Float.min ys.(0) ys in
      let hi = Array.fold_left Float.max ys.(0) ys in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_inverse_of_monotone_roundtrips =
  QCheck.Test.make ~name:"inverse . eval = id on monotone tables" ~count:300
    (QCheck.float_range 0. 4.)
    (fun x ->
      let xs = [| 0.; 1.; 2.; 3.; 4. |] in
      let ys = [| 0.; 1.; 4.; 9.; 16. |] in
      let t = I.create ~xs ~ys in
      Float.abs (I.inverse t (I.eval t x) -. x) < 1e-9)

let () =
  Alcotest.run "interp"
    [ ( "eval",
        [ Alcotest.test_case "at knots" `Quick test_eval_at_knots;
          Alcotest.test_case "between knots" `Quick test_eval_between_knots;
          Alcotest.test_case "extrapolation" `Quick test_eval_extrapolation_clamps ] );
      ("inverse", [ Alcotest.test_case "inverse" `Quick test_inverse ]);
      ( "misc",
        [ Alcotest.test_case "domain/map" `Quick test_domain_and_map;
          Alcotest.test_case "validation" `Quick test_validation ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_interpolation_bounded; prop_inverse_of_monotone_roundtrips ] ) ]
