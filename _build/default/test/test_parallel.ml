module Pool = Exec.Pool
module Parallel = Exec.Parallel

let with_pool jobs f =
  let pool = Pool.create jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let job_counts = [ 1; 2; 8 ]

(* Inputs exercising the serial fallback (empty, singleton), a grid
   shorter than the chunk count, and one that splits properly. *)
let inputs =
  [ [||]; [| 3. |]; Numerics.Grid.linspace 0. 1. 7; Array.init 100 float_of_int ]

let test_map_matches_array_map () =
  let f x = (x *. x) +. 1. in
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          List.iter
            (fun xs ->
              Alcotest.(check (array (float 0.)))
                (Printf.sprintf "jobs = %d, length %d" jobs (Array.length xs))
                (Array.map f xs)
                (Parallel.map ~pool f xs))
            inputs))
    job_counts

let test_init_matches_array_init () =
  let f i = float_of_int (i * i) -. 0.5 in
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          List.iter
            (fun n ->
              Alcotest.(check (array (float 0.)))
                (Printf.sprintf "jobs = %d, n = %d" jobs n)
                (Array.init n f)
                (Parallel.init ~pool n f))
            [ 0; 1; 2; 17; 100 ]))
    job_counts

let test_init_negative_length () =
  with_pool 2 (fun pool ->
      Alcotest.check_raises "negative length"
        (Invalid_argument "Parallel.init: negative length") (fun () ->
          ignore (Parallel.init ~pool (-1) (fun i -> i))))

let test_map_sweep_bit_identical () =
  (* a real sweep from the figures: Eq. 3 over an r grid *)
  let p = Zeroconf.Params.figure2 in
  let grid = Numerics.Grid.linspace 0.05 6. 97 in
  let f r = Zeroconf.Cost.mean p ~n:4 ~r in
  let expected = Numerics.Grid.map_sweep f grid in
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          let got = Parallel.map_sweep ~pool f grid in
          Alcotest.(check bool)
            (Printf.sprintf "bit-identical at jobs = %d" jobs)
            true (expected = got)))
    job_counts

let test_optimal_n_sweep_bit_identical () =
  let p = Zeroconf.Params.figure2 in
  let grid = Numerics.Grid.linspace 0.1 6. 31 in
  let expected =
    Array.map (fun r -> (r, Zeroconf.Optimize.optimal_n p ~r)) grid
  in
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          Alcotest.(check bool)
            (Printf.sprintf "envelope bit-identical at jobs = %d" jobs)
            true
            (expected = Zeroconf.Optimize.optimal_n_sweep ~pool p grid)))
    job_counts

let test_worker_exception_surfaces () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          Alcotest.check_raises
            (Printf.sprintf "exception at jobs = %d" jobs)
            (Failure "boom") (fun () ->
              ignore
                (Parallel.init ~pool 64 (fun i ->
                     if i = 37 then failwith "boom" else i)))))
    job_counts

let test_pool_survives_failed_batch () =
  with_pool 2 (fun pool ->
      (try ignore (Parallel.init ~pool 8 (fun _ -> failwith "first"))
       with Failure _ -> ());
      Alcotest.(check (array (float 0.)))
        "pool still works after a failure" [| 0.; 1.; 2.; 3. |]
        (Parallel.init ~pool 4 float_of_int))

let test_chunks_feed_every_index () =
  (* the pool's work-splitting primitive: concatenation restores the
     input and lengths are near-equal, for awkward sizes too *)
  List.iter
    (fun (k, n) ->
      let xs = Array.init n Fun.id in
      let chunks = Numerics.Grid.chunks k xs in
      Alcotest.(check (array int))
        (Printf.sprintf "concat restores (k = %d, n = %d)" k n)
        xs
        (Array.concat (Array.to_list chunks));
      Array.iter
        (fun chunk ->
          Alcotest.(check bool) "no empty chunk" true (Array.length chunk > 0))
        chunks)
    [ (1, 5); (2, 4); (3, 7); (4, 4); (8, 3); (16, 100) ]

(* Multi-host Monte Carlo: same root seed must give identical statistics
   at every job count (the per-trial streams are split serially). *)
let multi_stats jobs =
  with_pool jobs (fun pool ->
      let rng = Numerics.Rng.create 99 in
      let config =
        Netsim.Newcomer.drm_config ~n:3 ~r:0.2 ~probe_cost:1. ~error_cost:100.
      in
      let results =
        Netsim.Multi.run_trials ~domains:pool ~loss:0.1
          ~one_way:(Dist.Families.deterministic ~delay:0.02 ())
          ~occupied:8 ~pool_size:32 ~newcomers:4 ~config ~trials:12 ~rng ()
      in
      Array.map
        (fun (r : Netsim.Multi.result) ->
          ( r.Netsim.Multi.collisions,
            r.Netsim.Multi.all_unique,
            r.Netsim.Multi.makespan,
            Array.map
              (fun (o : Netsim.Metrics.outcome) -> o.Netsim.Metrics.address)
              r.Netsim.Multi.outcomes ))
        results)

let test_multi_identical_across_jobs () =
  let reference = multi_stats 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs = %d matches jobs = 1" jobs)
        true
        (reference = multi_stats jobs))
    [ 2; 8 ]

let test_collision_rates_identical_across_jobs () =
  let rates jobs =
    with_pool jobs (fun pool ->
        Netsim.Multi.collision_rate_vs_newcomers ~domains:pool ~loss:0.2
          ~one_way:(Dist.Families.deterministic ~delay:0.02 ())
          ~occupied:8 ~pool_size:32
          ~config:(Netsim.Newcomer.drm_config ~n:3 ~r:0.2 ~probe_cost:0. ~error_cost:0.)
          ~trials:6 ~counts:[ 1; 2; 4 ]
          ~rng:(Numerics.Rng.create 7) ())
  in
  let reference = rates 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "rates at jobs = %d" jobs)
        true
        (reference = rates jobs))
    [ 2; 8 ]

let test_pool_guards () =
  Alcotest.check_raises "zero size" (Invalid_argument "Pool.create: size < 1")
    (fun () -> ignore (Pool.create 0));
  Alcotest.check_raises "set_jobs 0" (Invalid_argument "Pool.set_jobs: jobs < 1")
    (fun () -> Pool.set_jobs 0)

let test_set_jobs_resizes_default_pool () =
  Pool.set_jobs 3;
  Alcotest.(check int) "default_jobs follows set_jobs" 3 (Pool.default_jobs ());
  Alcotest.(check int) "default pool resized" 3 (Pool.size (Pool.get ()));
  Pool.set_jobs 1;
  Alcotest.(check int) "shrunk back to serial" 1 (Pool.size (Pool.get ()))

let () =
  Alcotest.run "parallel"
    [ ( "determinism",
        [ Alcotest.test_case "map = Array.map" `Quick test_map_matches_array_map;
          Alcotest.test_case "init = Array.init" `Quick
            test_init_matches_array_init;
          Alcotest.test_case "map_sweep bit-identical" `Quick
            test_map_sweep_bit_identical;
          Alcotest.test_case "optimal_n_sweep bit-identical" `Quick
            test_optimal_n_sweep_bit_identical ] );
      ( "exceptions",
        [ Alcotest.test_case "negative length" `Quick test_init_negative_length;
          Alcotest.test_case "worker exception surfaces" `Quick
            test_worker_exception_surfaces;
          Alcotest.test_case "pool survives failure" `Quick
            test_pool_survives_failed_batch ] );
      ( "chunking",
        [ Alcotest.test_case "chunks feed every index" `Quick
            test_chunks_feed_every_index ] );
      ( "netsim",
        [ Alcotest.test_case "multi stats independent of jobs" `Quick
            test_multi_identical_across_jobs;
          Alcotest.test_case "collision rates independent of jobs" `Quick
            test_collision_rates_identical_across_jobs ] );
      ( "pool",
        [ Alcotest.test_case "guards" `Quick test_pool_guards;
          Alcotest.test_case "set_jobs resizes" `Quick
            test_set_jobs_resizes_default_pool ] ) ]
