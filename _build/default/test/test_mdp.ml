module Mdp = Dtmc.Mdp

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let tr dst prob cost = { Mdp.dst; prob; cost }

(* Deterministic two-road choice: state 0 picks the cheap (5) or the
   expensive (9) road to the absorbing state 1. *)
let two_roads =
  Mdp.create ~num_states:2 ~actions:(function
    | 0 -> [ ("cheap", [ tr 1 1. 5. ]); ("dear", [ tr 1 1. 9. ]) ]
    | _ -> [])

let test_picks_cheaper_road () =
  let s = Mdp.value_iteration two_roads in
  check_close "value" 5. s.Mdp.values.(0);
  Alcotest.(check string) "action" "cheap"
    (Mdp.action_name two_roads ~state:0 ~action:s.Mdp.policy.(0));
  Alcotest.(check int) "absorbing has no action" (-1) s.Mdp.policy.(1)

let test_lookahead_beats_greedy_first_step () =
  (* a: pay 1 now but land in a state that costs 10 more;
     b: pay 3 now and finish.  One-step greedy prefers a; the optimal
     policy must prefer b. *)
  let m =
    Mdp.create ~num_states:3 ~actions:(function
      | 0 -> [ ("a", [ tr 1 1. 1. ]); ("b", [ tr 2 1. 3. ]) ]
      | 1 -> [ ("slog", [ tr 2 1. 10. ]) ]
      | _ -> [])
  in
  let s = Mdp.value_iteration m in
  check_close "optimal value" 3. s.Mdp.values.(0);
  Alcotest.(check string) "chooses b" "b" (Mdp.action_name m ~state:0 ~action:s.Mdp.policy.(0))

let test_stochastic_restart_loop () =
  (* pay 2 to try; success 0.25, else back to the start: expected
     total = 2 / 0.25 = 8 *)
  let m =
    Mdp.create ~num_states:2 ~actions:(function
      | 0 -> [ ("try", [ tr 1 0.25 2.; tr 0 0.75 2. ]) ]
      | _ -> [])
  in
  let s = Mdp.value_iteration m in
  check_close ~tol:1e-8 "geometric cost" 8. s.Mdp.values.(0)

let test_chooses_between_risky_and_safe () =
  (* safe: cost 4, done.  risky: cost 1, success 0.5, else retry.
     risky's total = 1/0.5 = 2 < 4: choose risky.  With success 0.2,
     total = 5 > 4: choose safe. *)
  let build p_succ =
    Mdp.create ~num_states:2 ~actions:(function
      | 0 ->
          [ ("safe", [ tr 1 1. 4. ]);
            ("risky", [ tr 1 p_succ 1.; tr 0 (1. -. p_succ) 1. ]) ]
      | _ -> [])
  in
  let s1 = Mdp.value_iteration (build 0.5) in
  Alcotest.(check string) "risky wins at 0.5" "risky"
    (Mdp.action_name (build 0.5) ~state:0 ~action:s1.Mdp.policy.(0));
  check_close "value 2" 2. s1.Mdp.values.(0);
  let s2 = Mdp.value_iteration (build 0.2) in
  Alcotest.(check string) "safe wins at 0.2" "safe"
    (Mdp.action_name (build 0.2) ~state:0 ~action:s2.Mdp.policy.(0));
  check_close "value 4" 4. s2.Mdp.values.(0)

let test_evaluate_policy_exact () =
  let m =
    Mdp.create ~num_states:2 ~actions:(function
      | 0 -> [ ("loop", [ tr 1 0.1 1.; tr 0 0.9 1. ]) ]
      | _ -> [])
  in
  let v = Mdp.evaluate_policy m ~policy:[| 0; -1 |] in
  check_close "exact 10" 10. v.(0)

let test_policy_iteration_agrees () =
  let m =
    Mdp.create ~num_states:4 ~actions:(function
      | 0 -> [ ("l", [ tr 1 0.7 2.; tr 2 0.3 1. ]); ("r", [ tr 2 1. 2.5 ]) ]
      | 1 -> [ ("go", [ tr 3 0.5 1.; tr 0 0.5 1. ]) ]
      | 2 -> [ ("go", [ tr 3 1. 2. ]) ]
      | _ -> [])
  in
  let vi = Mdp.value_iteration m in
  let pi = Mdp.policy_iteration m in
  Array.iteri
    (fun s v -> check_close ~tol:1e-8 (Printf.sprintf "state %d" s) v pi.Mdp.values.(s))
    vi.Mdp.values;
  Alcotest.(check (array int)) "same policy" vi.Mdp.policy pi.Mdp.policy

let test_gamblers_choice () =
  (* states 0..4 of capital; goal: reach 4 with minimal expected number
     of fair-coin bets; allowed stakes: 1, or all-in (min(capital,
     4 - capital)).  Bold play reaches the goal in fewer expected steps
     than timid play from capital 1 (1 step vs 3 with absorption at 0
     counting as termination too).  We only assert consistency: VI = PI
     and values are finite and positive for interior states. *)
  let stake_targets capital stake = (capital + stake, capital - stake) in
  let m =
    Mdp.create ~num_states:5 ~actions:(fun s ->
        if s = 0 || s = 4 then []
        else
          let actions = ref [] in
          List.iter
            (fun stake ->
              if stake >= 1 && stake <= min s (4 - s) then begin
                let win, lose = stake_targets s stake in
                actions :=
                  ( Printf.sprintf "bet%d" stake,
                    [ tr win 0.5 1.; tr lose 0.5 1. ] )
                  :: !actions
              end)
            [ 1; 2 ];
          List.rev !actions)
  in
  let vi = Mdp.value_iteration m in
  let pi = Mdp.policy_iteration m in
  for s = 1 to 3 do
    Alcotest.(check bool) "finite positive" true
      (Float.is_finite vi.Mdp.values.(s) && vi.Mdp.values.(s) > 0.);
    check_close ~tol:1e-8 (Printf.sprintf "vi = pi at %d" s) vi.Mdp.values.(s)
      pi.Mdp.values.(s)
  done;
  (* at capital 2, the all-in bet ends the game in exactly one step *)
  check_close ~tol:1e-8 "all-in from 2" 1. vi.Mdp.values.(2);
  Alcotest.(check string) "bold at 2" "bet2"
    (Mdp.action_name m ~state:2 ~action:vi.Mdp.policy.(2))

let test_validation () =
  (try
     ignore
       (Mdp.create ~num_states:2 ~actions:(function
         | 0 -> [ ("bad", [ tr 1 0.5 0. ]) ]
         | _ -> []));
     Alcotest.fail "accepted sub-stochastic action"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Mdp.create ~num_states:2 ~actions:(function
         | 0 -> [ ("bad", [ tr 5 1. 0. ]) ]
         | _ -> []));
     Alcotest.fail "accepted out-of-range destination"
   with Invalid_argument _ -> ());
  try
    ignore
      (Mdp.create ~num_states:1 ~actions:(fun _ -> [ ("empty", []) ]));
    Alcotest.fail "accepted empty action"
  with Invalid_argument _ -> ()

let test_improper_policy_detected () =
  (* an action that loops forever: evaluating it must fail, not hang *)
  let m =
    Mdp.create ~num_states:2 ~actions:(function
      | 0 -> [ ("spin", [ tr 0 1. 1. ]) ]
      | _ -> [])
  in
  try
    ignore (Mdp.evaluate_policy m ~policy:[| 0; -1 |]);
    Alcotest.fail "evaluated an improper policy"
  with Failure _ -> ()

let () =
  Alcotest.run "mdp"
    [ ( "optimality",
        [ Alcotest.test_case "two roads" `Quick test_picks_cheaper_road;
          Alcotest.test_case "lookahead" `Quick test_lookahead_beats_greedy_first_step;
          Alcotest.test_case "restart loop" `Quick test_stochastic_restart_loop;
          Alcotest.test_case "risk switch" `Quick test_chooses_between_risky_and_safe ] );
      ( "algorithms",
        [ Alcotest.test_case "policy evaluation" `Quick test_evaluate_policy_exact;
          Alcotest.test_case "policy iteration = value iteration" `Quick
            test_policy_iteration_agrees;
          Alcotest.test_case "gambler's choice" `Quick test_gamblers_choice ] );
      ( "robustness",
        [ Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "improper policy" `Quick test_improper_policy_detected ] ) ]
