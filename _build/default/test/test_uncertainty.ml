module U = Zeroconf.Uncertainty

let draw truth ~count ~seed =
  let rng = Numerics.Rng.create seed in
  let delays = ref [] and losses = ref 0 in
  for _ = 1 to count do
    match truth.Dist.Distribution.sample rng with
    | Some d -> delays := d :: !delays
    | None -> incr losses
  done;
  (Array.of_list !delays, !losses)

let truth = Dist.Families.shifted_exponential ~mass:0.99 ~rate:8. ~delay:0.1 ()

let run ~count ~seed ~rounds =
  let delays, losses = draw truth ~count ~seed in
  U.bootstrap ~rounds ~losses ~rng:(Numerics.Rng.create (seed + 1)) ~delays
    ~q:0.05 ~probe_cost:1. ~error_cost:1e8 ()

let test_structure () =
  let r = run ~count:500 ~seed:1 ~rounds:50 in
  Alcotest.(check int) "rounds recorded" 50 r.U.rounds;
  Alcotest.(check int) "votes sum to rounds" 50
    (List.fold_left (fun acc (_, c) -> acc + c) 0 r.U.n_votes);
  Alcotest.(check bool) "modal n positive" true (r.U.modal_n >= 1);
  let lo, hi = r.U.r_ci in
  Alcotest.(check bool) "interval ordered" true (lo <= hi);
  Alcotest.(check bool) "mean within interval" true
    (r.U.r_summary.Numerics.Stats.mean >= lo -. 1e-9
    && r.U.r_summary.Numerics.Stats.mean <= hi +. 1e-9)

let test_modal_recommendation_matches_truth () =
  (* with plenty of data, the modal recommendation equals the optimum
     computed from the true distribution *)
  let r = run ~count:5_000 ~seed:2 ~rounds:40 in
  let true_opt =
    Zeroconf.Optimize.global_optimum
      (Zeroconf.Params.v ~name:"truth" ~delay:truth ~q:0.05 ~probe_cost:1.
         ~error_cost:1e8)
  in
  Alcotest.(check int) "modal n = true optimal n" true_opt.Zeroconf.Optimize.n
    r.U.modal_n;
  let lo, hi = r.U.r_ci in
  Alcotest.(check bool)
    (Printf.sprintf "true r %.3f in bootstrap CI [%.3f, %.3f]"
       true_opt.Zeroconf.Optimize.r lo hi)
    true
    (true_opt.Zeroconf.Optimize.r >= lo -. 0.05
    && true_opt.Zeroconf.Optimize.r <= hi +. 0.05)

let test_more_data_tightens_interval () =
  let small = run ~count:60 ~seed:3 ~rounds:60 in
  let large = run ~count:6_000 ~seed:3 ~rounds:60 in
  let width (lo, hi) = hi -. lo in
  Alcotest.(check bool)
    (Printf.sprintf "width %.4f (n=60) >= width %.4f (n=6000)"
       (width small.U.r_ci) (width large.U.r_ci))
    true
    (width small.U.r_ci >= width large.U.r_ci -. 1e-6)

let test_guards () =
  Alcotest.check_raises "empty" (Invalid_argument "Uncertainty.bootstrap: empty sample")
    (fun () ->
      ignore
        (U.bootstrap ~rng:(Numerics.Rng.create 1) ~delays:[||] ~q:0.1
           ~probe_cost:1. ~error_cost:1. ()))

let test_pp () =
  let r = run ~count:200 ~seed:4 ~rounds:20 in
  let s = Format.asprintf "%a" U.pp r in
  Alcotest.(check bool) "mentions rounds" true (String.length s > 40)

let () =
  Alcotest.run "uncertainty"
    [ ( "bootstrap",
        [ Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "recovers the truth" `Slow
            test_modal_recommendation_matches_truth;
          Alcotest.test_case "data tightens" `Slow test_more_data_tightens_interval;
          Alcotest.test_case "guards" `Quick test_guards;
          Alcotest.test_case "printer" `Quick test_pp ] ) ]
