(* Cross-module consistency: one gate that exercises every route to the
   paper's two quantities on every preset scenario and a randomized
   family.  If any pair of implementations drifts apart, this suite is
   the first to know. *)

module Params = Zeroconf.Params

let check_rel ?(rtol = 1e-8) ?(atol = 0.) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.12g vs %.12g" msg expected actual)
    true
    (Numerics.Safe_float.approx_eq ~rtol ~atol expected actual)

let operating_points = [ (1, 0.5); (2, 1.5); (3, 2.); (4, 2.); (6, 0.8) ]

let routes_agree (p : Params.t) ~n ~r =
  let eq3 = Zeroconf.Cost.mean p ~n ~r in
  let eq4 = Zeroconf.Reliability.error_probability p ~n ~r in
  let drm = Zeroconf.Drm.build p ~n ~r in
  let label = Printf.sprintf "%s n=%d r=%g" p.Params.name n r in
  (* cost: closed form = log-space = matrix = attempts decomposition *)
  check_rel (label ^ " logspace") eq3
    (Numerics.Logspace.to_float (Zeroconf.Cost.mean_log p ~n ~r));
  check_rel (label ^ " matrix") eq3 (Zeroconf.Drm.mean_cost drm);
  (if p.Params.q > 0. then begin
     (* attempts needs an integer host count: snap q to hosts/pool *)
     let pool = 65536 in
     let occupied = int_of_float (Float.round (p.Params.q *. float_of_int pool)) in
     if occupied > 0 && occupied < pool then begin
       let refinement =
         { Zeroconf.Attempts.blacklist = false;
           rate_limit = None;
           occupied;
           pool }
       in
       let snapped = Params.with_q p (float_of_int occupied /. float_of_int pool) in
       let a = Zeroconf.Attempts.analyze snapped refinement ~n ~r in
       check_rel (label ^ " attempts") (Zeroconf.Cost.mean snapped ~n ~r)
         a.Zeroconf.Attempts.mean_cost
     end
   end);
  (* error: closed form = matrix = reachability = PCTL *)
  check_rel ~rtol:1e-8 ~atol:1e-16 (label ^ " absorption") eq4 (Zeroconf.Drm.error_probability drm);
  check_rel ~rtol:1e-8 ~atol:1e-16 (label ^ " reachability") eq4
    (Dtmc.Reachability.prob_from drm.Zeroconf.Drm.chain
       ~from:drm.Zeroconf.Drm.start
       ~target:[ drm.Zeroconf.Drm.error ]);
  let labels = Dtmc.Pctl.label_of_state drm.Zeroconf.Drm.chain in
  check_rel ~rtol:1e-8 ~atol:1e-16 (label ^ " pctl") eq4
    (Dtmc.Pctl.path_probability drm.Zeroconf.Drm.chain labels
       ~from:drm.Zeroconf.Drm.start
       (Dtmc.Pctl.Eventually (Dtmc.Pctl.Ap "error")));
  (* reward operator = Eq. 3 *)
  check_rel ~rtol:1e-8 (label ^ " R operator") eq3
    (Dtmc.Pctl.reward_to_reach drm.Zeroconf.Drm.reward labels
       (Dtmc.Pctl.Or (Dtmc.Pctl.Ap "error", Dtmc.Pctl.Ap "ok"))).(drm.Zeroconf.Drm.start);
  (* latency mean = time-reward DRM solve *)
  let timed = Params.with_costs ~probe_cost:0. ~error_cost:0. p in
  let time_drm = Zeroconf.Drm.build timed ~n ~r in
  let dist = Zeroconf.Latency.periods p ~n ~r in
  check_rel ~rtol:1e-8 (label ^ " latency mean")
    (Zeroconf.Drm.mean_cost time_drm)
    (Zeroconf.Latency.mean dist)

let test_presets () =
  List.iter
    (fun (_, p) ->
      List.iter (fun (n, r) -> routes_agree p ~n ~r) operating_points)
    Params.presets

let test_randomized_scenarios () =
  let rng = Numerics.Rng.create 123 in
  for _ = 1 to 12 do
    let loss = Numerics.Rng.uniform rng ~lo:0. ~hi:0.4 in
    let rate = Numerics.Rng.uniform rng ~lo:0.5 ~hi:15. in
    let delay = Numerics.Rng.uniform rng ~lo:0. ~hi:1.5 in
    let q = Numerics.Rng.uniform rng ~lo:0.01 ~hi:0.85 in
    let p =
      Params.v ~name:"random"
        ~delay:(Dist.Families.shifted_exponential ~mass:(1. -. loss) ~rate ~delay ())
        ~q
        ~probe_cost:(Numerics.Rng.uniform rng ~lo:0. ~hi:4.)
        ~error_cost:(Numerics.Rng.uniform rng ~lo:0. ~hi:1e5)
    in
    let n = 1 + Numerics.Rng.int rng 6 in
    let r = Numerics.Rng.uniform rng ~lo:0.05 ~hi:4. in
    routes_agree p ~n ~r
  done

let test_phase_type_delay_consistency () =
  (* a structured PH delay flows through every route too *)
  let delay = Dist.Phase_type.hyperexponential ~mass:0.9 [ (0.6, 8.); (0.4, 1.5) ] in
  let p = Params.v ~name:"ph" ~delay ~q:0.2 ~probe_cost:1. ~error_cost:500. in
  routes_agree p ~n:3 ~r:1.

let () =
  Alcotest.run "consistency"
    [ ( "all routes agree",
        [ Alcotest.test_case "paper presets" `Quick test_presets;
          Alcotest.test_case "randomized scenarios" `Quick
            test_randomized_scenarios;
          Alcotest.test_case "phase-type delay" `Quick
            test_phase_type_delay_consistency ] ) ]
