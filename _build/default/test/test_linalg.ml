module V = Numerics.Vector
module M = Numerics.Matrix
module Lu = Numerics.Lu

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let check_vec msg expected actual =
  Alcotest.(check bool) msg true (V.approx_eq ~rtol:1e-9 ~atol:1e-12 expected actual)

let check_mat msg expected actual =
  Alcotest.(check bool) msg true (M.approx_eq ~rtol:1e-9 ~atol:1e-12 expected actual)

(* ---------------- vectors ---------------- *)

let test_vector_ops () =
  check_vec "add" [| 4.; 6. |] (V.add [| 1.; 2. |] [| 3.; 4. |]);
  check_vec "sub" [| -2.; -2. |] (V.sub [| 1.; 2. |] [| 3.; 4. |]);
  check_vec "scale" [| 2.; 4. |] (V.scale 2. [| 1.; 2. |]);
  check_vec "axpy" [| 5.; 8. |] (V.axpy ~alpha:2. [| 1.; 2. |] [| 3.; 4. |]);
  check_close "dot" 11. (V.dot [| 1.; 2. |] [| 3.; 4. |])

let test_vector_norms () =
  check_close "norm1" 7. (V.norm1 [| 3.; -4. |]);
  check_close "norm2" 5. (V.norm2 [| 3.; -4. |]);
  check_close "norm_inf" 4. (V.norm_inf [| 3.; -4. |])

let test_vector_max_index () =
  Alcotest.(check int) "max index" 2 (V.max_index [| 1.; 5.; 9.; 9. |]);
  Alcotest.check_raises "empty" (Invalid_argument "Vector.max_index: empty")
    (fun () -> ignore (V.max_index [||]))

let test_vector_mismatch () =
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Vector.add: dimension mismatch") (fun () ->
      ignore (V.add [| 1. |] [| 1.; 2. |]))

(* ---------------- matrices ---------------- *)

let a = M.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |]
let b = M.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |]

let test_matrix_basics () =
  Alcotest.(check int) "rows" 2 (M.rows a);
  Alcotest.(check int) "cols" 2 (M.cols a);
  check_close "get" 3. (M.get a 1 0);
  let c = M.copy a in
  M.set c 0 0 99.;
  check_close "copy is deep" 1. (M.get a 0 0)

let test_matrix_mul () =
  check_mat "product" (M.of_arrays [| [| 19.; 22. |]; [| 43.; 50. |] |]) (M.mul a b);
  check_mat "identity neutral" a (M.mul a (M.identity 2));
  check_vec "mul_vec" [| 5.; 11. |] (M.mul_vec a [| 1.; 2. |]);
  check_vec "vec_mul" [| 7.; 10. |] (M.vec_mul [| 1.; 2. |] a)

let test_matrix_pow () =
  check_mat "pow 0 is identity" (M.identity 2) (M.pow a 0);
  check_mat "pow 1" a (M.pow a 1);
  check_mat "pow 3 = a*a*a" (M.mul a (M.mul a a)) (M.pow a 3)

let test_matrix_transpose_sub () =
  check_mat "transpose" (M.of_arrays [| [| 1.; 3. |]; [| 2.; 4. |] |]) (M.transpose a);
  let big = M.init ~rows:4 ~cols:4 (fun i j -> float_of_int ((4 * i) + j)) in
  let sub = M.submatrix big ~row_lo:1 ~row_hi:2 ~col_lo:2 ~col_hi:3 in
  check_mat "submatrix" (M.of_arrays [| [| 6.; 7. |]; [| 10.; 11. |] |]) sub

let test_matrix_row_sums () =
  check_vec "row sums" [| 3.; 7. |] (M.row_sums a);
  check_close "norm_inf" 7. (M.norm_inf a)

(* ---------------- LU ---------------- *)

let test_lu_solve () =
  let m = M.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Lu.solve m [| 5.; 10. |] in
  check_vec "2x + y = 5, x + 3y = 10" [| 1.; 3. |] x

let test_lu_needs_pivoting () =
  (* zero on the leading diagonal forces a row swap *)
  let m = M.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  check_vec "swap solve" [| 2.; 1. |] (Lu.solve m [| 1.; 2. |])

let test_lu_det () =
  let f = Lu.decompose a in
  check_close "det" (-2.) (Lu.det f);
  let swap = M.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  check_close "det of permutation" (-1.) (Lu.det (Lu.decompose swap))

let test_lu_inverse () =
  let inv = Lu.inverse (Lu.decompose a) in
  check_mat "a * a^-1 = I" (M.identity 2) (M.mul a inv)

let test_lu_singular () =
  let singular = M.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" Lu.Singular (fun () ->
      ignore (Lu.decompose singular))

let test_lu_non_square () =
  let rect = M.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  Alcotest.check_raises "non-square"
    (Invalid_argument "Lu.decompose: non-square matrix") (fun () ->
      ignore (Lu.decompose rect))

let test_lu_hilbert_with_refinement () =
  (* 6x6 Hilbert: badly conditioned; refinement should not hurt *)
  let n = 6 in
  let h = M.init ~rows:n ~cols:n (fun i j -> 1. /. float_of_int (i + j + 1)) in
  let x_true = Array.make n 1. in
  let b = M.mul_vec h x_true in
  let fact = Lu.decompose h in
  let x = Lu.solve_vec fact b in
  let x_refined = Lu.refine h fact b x in
  let err v = V.norm_inf (V.sub v x_true) in
  Alcotest.(check bool) "solve is decent" true (err x < 1e-6);
  Alcotest.(check bool) "refinement no worse" true (err x_refined <= err x +. 1e-12)

let rand_matrix_gen n =
  QCheck.Gen.(
    array_size (return (n * n)) (float_range (-10.) 10.)
    |> map (fun data -> M.init ~rows:n ~cols:n (fun i j -> data.((n * i) + j))))

let prop_lu_solve_residual =
  QCheck.Test.make ~name:"LU solve has tiny residual on random 5x5" ~count:200
    (QCheck.make (rand_matrix_gen 5))
    (fun m ->
      let b = Array.init 5 (fun i -> float_of_int (i + 1)) in
      match Lu.solve m b with
      | x ->
          let residual = V.norm_inf (V.sub (M.mul_vec m x) b) in
          residual < 1e-6
      | exception Lu.Singular -> QCheck.assume_fail ())

let prop_det_product =
  QCheck.Test.make ~name:"det(AB) = det A * det B on random 4x4" ~count:100
    QCheck.(make Gen.(pair (rand_matrix_gen 4) (rand_matrix_gen 4)))
    (fun (x, y) ->
      match (Lu.decompose x, Lu.decompose y, Lu.decompose (M.mul x y)) with
      | fx, fy, fxy ->
          Numerics.Safe_float.approx_eq ~rtol:1e-6
            (Lu.det fx *. Lu.det fy) (Lu.det fxy)
      | exception Lu.Singular -> QCheck.assume_fail ())

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose is an involution" ~count:200
    (QCheck.make (rand_matrix_gen 4))
    (fun m -> M.approx_eq m (M.transpose (M.transpose m)))

let () =
  Alcotest.run "linalg"
    [ ( "vector",
        [ Alcotest.test_case "ops" `Quick test_vector_ops;
          Alcotest.test_case "norms" `Quick test_vector_norms;
          Alcotest.test_case "max index" `Quick test_vector_max_index;
          Alcotest.test_case "mismatch" `Quick test_vector_mismatch ] );
      ( "matrix",
        [ Alcotest.test_case "basics" `Quick test_matrix_basics;
          Alcotest.test_case "mul" `Quick test_matrix_mul;
          Alcotest.test_case "pow" `Quick test_matrix_pow;
          Alcotest.test_case "transpose/sub" `Quick test_matrix_transpose_sub;
          Alcotest.test_case "row sums" `Quick test_matrix_row_sums ] );
      ( "lu",
        [ Alcotest.test_case "solve" `Quick test_lu_solve;
          Alcotest.test_case "pivoting" `Quick test_lu_needs_pivoting;
          Alcotest.test_case "det" `Quick test_lu_det;
          Alcotest.test_case "inverse" `Quick test_lu_inverse;
          Alcotest.test_case "singular" `Quick test_lu_singular;
          Alcotest.test_case "non-square" `Quick test_lu_non_square;
          Alcotest.test_case "hilbert + refinement" `Quick test_lu_hilbert_with_refinement ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_lu_solve_residual; prop_det_product; prop_transpose_involution ] ) ]
