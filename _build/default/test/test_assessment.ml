module A = Zeroconf.Assessment
module Params = Zeroconf.Params

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let assessment = A.run Params.realistic_ethernet

let test_draft_point_values () =
  let d = assessment.A.draft in
  Alcotest.(check int) "n" 4 d.Zeroconf.Optimize.n;
  check_close "r" 2. d.Zeroconf.Optimize.r;
  check_close ~tol:1e-6 "cost is Eq. 3"
    (Zeroconf.Cost.mean Params.realistic_ethernet ~n:4 ~r:2.)
    d.Zeroconf.Optimize.cost;
  check_close ~tol:1e-60 "error is Eq. 4"
    (Zeroconf.Reliability.error_probability Params.realistic_ethernet ~n:4 ~r:2.)
    d.Zeroconf.Optimize.error_prob

let test_optimum_consistency () =
  let o = assessment.A.optimum in
  (* the assessment's optimum is the global optimum *)
  let g = Zeroconf.Optimize.global_optimum Params.realistic_ethernet in
  Alcotest.(check int) "same n" g.Zeroconf.Optimize.n o.Zeroconf.Optimize.n;
  check_close ~tol:1e-6 "same r" g.Zeroconf.Optimize.r o.Zeroconf.Optimize.r

let test_derived_quantities () =
  check_close ~tol:1e-9 "cost ratio"
    (assessment.A.draft.Zeroconf.Optimize.cost
    /. assessment.A.optimum.Zeroconf.Optimize.cost)
    assessment.A.cost_ratio;
  check_close "draft config time = n * r" 8. assessment.A.draft_config_time;
  check_close ~tol:1e-6 "optimal config time"
    (float_of_int assessment.A.optimum.Zeroconf.Optimize.n
    *. assessment.A.optimum.Zeroconf.Optimize.r)
    assessment.A.optimal_config_time;
  Alcotest.(check int) "nu recorded" 2 assessment.A.nu

let test_draft_never_beats_optimum () =
  List.iter
    (fun p ->
      let a = A.run p in
      Alcotest.(check bool)
        (p.Params.name ^ ": ratio >= 1")
        true
        (a.A.cost_ratio >= 1. -. 1e-9))
    [ Params.figure2; Params.wireless_worst_case; Params.wired_worst_case;
      Params.realistic_ethernet ]

let test_custom_draft_point () =
  (* assessing the optimum against itself gives ratio 1 *)
  let o = assessment.A.optimum in
  let self =
    A.run ~draft_n:o.Zeroconf.Optimize.n ~draft_r:o.Zeroconf.Optimize.r
      Params.realistic_ethernet
  in
  Alcotest.(check bool) "ratio ~ 1" true (self.A.cost_ratio < 1.0001)

let test_wireless_draft_is_optimal () =
  (* Sec. 4.5's whole point: under the calibrated costs the draft's
     (4, 2) IS the optimum for the wireless worst case *)
  let a = A.run Params.wireless_worst_case in
  Alcotest.(check int) "optimal n = 4" 4 a.A.optimum.Zeroconf.Optimize.n;
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.4f ~ 1" a.A.cost_ratio)
    true
    (a.A.cost_ratio < 1.001)

let test_pp () =
  let s = Format.asprintf "%a" A.pp assessment in
  let contains needle =
    let nl = String.length needle and hl = String.length s in
    let rec scan i = i + nl <= hl && (String.sub s i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "mentions draft" true (contains "draft");
  Alcotest.(check bool) "mentions optimal" true (contains "optimal");
  Alcotest.(check bool) "mentions nu" true (contains "nu")

let () =
  Alcotest.run "assessment"
    [ ( "values",
        [ Alcotest.test_case "draft point" `Quick test_draft_point_values;
          Alcotest.test_case "optimum" `Quick test_optimum_consistency;
          Alcotest.test_case "derived" `Quick test_derived_quantities ] );
      ( "structure",
        [ Alcotest.test_case "ratio >= 1" `Quick test_draft_never_beats_optimum;
          Alcotest.test_case "self comparison" `Quick test_custom_draft_point;
          Alcotest.test_case "Sec. 4.5 forward" `Quick test_wireless_draft_is_optimal;
          Alcotest.test_case "printer" `Quick test_pp ] ) ]
