module M = Numerics.Matrix
module C = Dtmc.Chain
module Ss = Dtmc.State_space

let chain_of arrays labels =
  C.create ~states:(Ss.of_labels labels) (M.of_arrays arrays)

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* two communicating pairs, one transient bridge:
   t -> a1 | b1; {a1, a2} cycle; {b1, b2} cycle *)
let two_cycles =
  chain_of
    [| [| 0.; 0.5; 0.; 0.5; 0. |];
       [| 0.; 0.; 1.; 0.; 0. |];
       [| 0.; 1.; 0.; 0.; 0. |];
       [| 0.; 0.; 0.; 0.; 1. |];
       [| 0.; 0.; 0.; 1.; 0. |] |]
    [ "t"; "a1"; "a2"; "b1"; "b2" ]

let test_tarjan_components () =
  let scc = Dtmc.Scc.tarjan two_cycles in
  Alcotest.(check int) "three components" 3 scc.Dtmc.Scc.count;
  (* a1/a2 together, b1/b2 together, t alone *)
  Alcotest.(check int) "a-pair together" scc.Dtmc.Scc.component.(1)
    scc.Dtmc.Scc.component.(2);
  Alcotest.(check int) "b-pair together" scc.Dtmc.Scc.component.(3)
    scc.Dtmc.Scc.component.(4);
  Alcotest.(check bool) "t separate" true
    (scc.Dtmc.Scc.component.(0) <> scc.Dtmc.Scc.component.(1)
    && scc.Dtmc.Scc.component.(0) <> scc.Dtmc.Scc.component.(3))

let test_bottom_components () =
  let bsccs = Dtmc.Scc.bottom_components two_cycles in
  Alcotest.(check int) "two BSCCs" 2 (List.length bsccs);
  let sorted = List.sort compare bsccs in
  Alcotest.(check (list (list int))) "the two cycles" [ [ 1; 2 ]; [ 3; 4 ] ] sorted

let test_bsccs_of_absorbing_chain_are_singletons () =
  let drm = Zeroconf.Drm.build Zeroconf.Params.figure2 ~n:4 ~r:2. in
  let bsccs = Dtmc.Scc.bottom_components drm.Zeroconf.Drm.chain in
  let sorted = List.sort compare bsccs in
  Alcotest.(check (list (list int))) "error and ok"
    [ [ drm.Zeroconf.Drm.error ]; [ drm.Zeroconf.Drm.ok ] ]
    sorted

let test_irreducibility () =
  let cycle = chain_of [| [| 0.; 1. |]; [| 1.; 0. |] |] [ "a"; "b" ] in
  Alcotest.(check bool) "cycle irreducible" true (Dtmc.Scc.is_irreducible cycle);
  Alcotest.(check bool) "two_cycles reducible" false
    (Dtmc.Scc.is_irreducible two_cycles)

let test_members () =
  let scc = Dtmc.Scc.tarjan two_cycles in
  let id = scc.Dtmc.Scc.component.(1) in
  Alcotest.(check (list int)) "members ascending" [ 1; 2 ]
    (Dtmc.Scc.members scc id)

let test_tarjan_deep_chain_no_stack_overflow () =
  (* 20k-state forward chain would blow a recursive implementation *)
  let n = 20_000 in
  let b = Dtmc.Builder.create () in
  for i = 0 to n - 2 do
    Dtmc.Builder.add_edge b
      ~src:(string_of_int i)
      ~dst:(string_of_int (i + 1))
      ~prob:1.
  done;
  let chain, _ = Dtmc.Builder.build b in
  let scc = Dtmc.Scc.tarjan chain in
  Alcotest.(check int) "all singleton components" n scc.Dtmc.Scc.count

(* ---------------- hitting times ---------------- *)

let test_hitting_on_cycle () =
  (* deterministic cycle a -> b -> c -> a: hitting c takes 2 from a,
     1 from b, 0 from c *)
  let c =
    chain_of
      [| [| 0.; 1.; 0. |]; [| 0.; 0.; 1. |]; [| 1.; 0.; 0. |] |]
      [ "a"; "b"; "c" ]
  in
  let h = Dtmc.Hitting.expected_steps c ~target:[ 2 ] in
  check_close "from a" 2. h.(0);
  check_close "from b" 1. h.(1);
  check_close "from c" 0. h.(2)

let test_hitting_geometric () =
  (* stay w.p. 0.75, move to the target w.p. 0.25; the target returns:
     hitting time is geometric with mean 4 even though nothing absorbs *)
  let c =
    chain_of [| [| 0.75; 0.25 |]; [| 1.; 0. |] |] [ "s"; "goal" ]
  in
  let h = Dtmc.Hitting.expected_steps c ~target:[ 1 ] in
  check_close "mean 4" 4. h.(0)

let test_hitting_infinite_when_avoidable () =
  (* the zeroconf chain can end in error, so ok is not a.s. reachable *)
  let drm = Zeroconf.Drm.build Zeroconf.Params.figure2 ~n:3 ~r:1.5 in
  let h = Dtmc.Hitting.expected_steps drm.Zeroconf.Drm.chain ~target:[ drm.Zeroconf.Drm.ok ] in
  Alcotest.(check bool) "infinite from start" true
    (h.(drm.Zeroconf.Drm.start) = infinity);
  check_close "zero on the target" 0. h.(drm.Zeroconf.Drm.ok)

let test_hitting_whole_absorbing_set_matches_expected_steps () =
  (* hitting {error, ok} is plain absorption: must agree with the
     dedicated absorbing-chain solver *)
  let drm = Zeroconf.Drm.build Zeroconf.Params.figure2 ~n:4 ~r:2. in
  let h =
    Dtmc.Hitting.expected_steps drm.Zeroconf.Drm.chain
      ~target:[ drm.Zeroconf.Drm.error; drm.Zeroconf.Drm.ok ]
  in
  check_close ~tol:1e-9 "agrees with Absorbing.expected_steps"
    (Dtmc.Absorbing.expected_steps drm.Zeroconf.Drm.chain
       ~from:drm.Zeroconf.Drm.start)
    h.(drm.Zeroconf.Drm.start)

let test_hitting_reward () =
  (* pay 3 per step until the goal: expected reward = 3 x hitting time *)
  let c = chain_of [| [| 0.5; 0.5 |]; [| 1.; 0. |] |] [ "s"; "goal" ] in
  let costs = M.create ~rows:2 ~cols:2 in
  M.set costs 0 0 3.;
  M.set costs 0 1 3.;
  M.set costs 1 0 7.;
  (* cost on edges out of the target must not matter *)
  let reward = Dtmc.Reward.create ~transition_rewards:costs c in
  let h = Dtmc.Hitting.expected_reward reward ~target:[ 1 ] in
  check_close "3 x mean 2" 6. h.(0)

let test_hitting_guards () =
  let c = chain_of [| [| 1. |] |] [ "only" ] in
  Alcotest.check_raises "empty target" (Invalid_argument "Hitting: empty target")
    (fun () -> ignore (Dtmc.Hitting.expected_steps c ~target:[]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Hitting: target index out of range") (fun () ->
      ignore (Dtmc.Hitting.expected_steps c ~target:[ 5 ]))

let () =
  Alcotest.run "scc_hitting"
    [ ( "tarjan",
        [ Alcotest.test_case "components" `Quick test_tarjan_components;
          Alcotest.test_case "bottom components" `Quick test_bottom_components;
          Alcotest.test_case "absorbing singletons" `Quick
            test_bsccs_of_absorbing_chain_are_singletons;
          Alcotest.test_case "irreducibility" `Quick test_irreducibility;
          Alcotest.test_case "members" `Quick test_members;
          Alcotest.test_case "deep chain (iterative)" `Quick
            test_tarjan_deep_chain_no_stack_overflow ] );
      ( "hitting",
        [ Alcotest.test_case "cycle" `Quick test_hitting_on_cycle;
          Alcotest.test_case "geometric" `Quick test_hitting_geometric;
          Alcotest.test_case "infinite when avoidable" `Quick
            test_hitting_infinite_when_avoidable;
          Alcotest.test_case "matches absorption" `Quick
            test_hitting_whole_absorbing_set_matches_expected_steps;
          Alcotest.test_case "rewards" `Quick test_hitting_reward;
          Alcotest.test_case "guards" `Quick test_hitting_guards ] ) ]
