module Multi = Netsim.Multi
module Newcomer = Netsim.Newcomer
module Metrics = Netsim.Metrics

let one_way = Dist.Families.deterministic ~delay:0.02 ()

let config =
  Newcomer.drm_config ~n:3 ~r:0.2 ~probe_cost:1. ~error_cost:100.

let fast_config = { config with Newcomer.immediate_abort = true }

let test_single_newcomer_reduces_to_scenario () =
  let r =
    Multi.run ~loss:0. ~one_way ~occupied:4 ~pool_size:16 ~newcomers:1
      ~config ~rng:(Numerics.Rng.create 1) ()
  in
  Alcotest.(check int) "one outcome" 1 (Array.length r.Multi.outcomes);
  Alcotest.(check bool) "unique trivially" true r.Multi.all_unique;
  Alcotest.(check int) "no collision on perfect link" 0 r.Multi.collisions

let test_staggered_newcomers_all_unique () =
  (* spaced arrivals on a perfect link: earlier hosts defend their new
     addresses, so everyone ends up distinct *)
  let r =
    Multi.run ~loss:0. ~one_way ~occupied:8 ~pool_size:32 ~newcomers:6
      ~spacing:1. ~config ~rng:(Numerics.Rng.create 2) ()
  in
  Alcotest.(check int) "all finished" 6 (Array.length r.Multi.outcomes);
  Alcotest.(check bool) "all unique" true r.Multi.all_unique;
  Alcotest.(check int) "no collisions" 0 r.Multi.collisions

let test_simultaneous_newcomers_rival_probe_rule () =
  (* all start at t = 0 on a tiny pool with a perfect link: the draft's
     rival-probe rule must still keep them apart *)
  let trials = 30 in
  let rng = Numerics.Rng.create 3 in
  let all_unique = ref 0 in
  for _ = 1 to trials do
    let r =
      Multi.run ~loss:0. ~one_way ~occupied:2 ~pool_size:8 ~newcomers:4
        ~config:fast_config ~rng ()
    in
    if r.Multi.all_unique && r.Multi.collisions = 0 then incr all_unique
  done;
  Alcotest.(check int)
    (Printf.sprintf "%d/%d runs perfectly separated" !all_unique trials)
    trials !all_unique

let test_makespan_positive_and_bounded () =
  let r =
    Multi.run ~loss:0. ~one_way ~occupied:4 ~pool_size:32 ~newcomers:3
      ~spacing:0.5 ~config ~rng:(Numerics.Rng.create 4) ()
  in
  (* each run takes at least n*r = 0.6 s *)
  Alcotest.(check bool) "makespan at least one full run" true
    (r.Multi.makespan >= 0.6)

let test_accepted_newcomers_defend () =
  (* newcomer A grabs an address; a later newcomer probing the same
     address must be rebuffed by A (not only by the original hosts).
     Pool of 2 with 1 occupied: A takes the only free one; B then cycles
     between the two occupied addresses forever... so bound by the rate
     limiter we give B few options — instead use pool 3 with 1 occupied:
     A takes one of 2 free; B must end on the last free one. *)
  let r =
    Multi.run ~loss:0. ~one_way ~occupied:1 ~pool_size:3 ~newcomers:2
      ~spacing:2. ~config ~rng:(Numerics.Rng.create 5) ()
  in
  Alcotest.(check bool) "distinct addresses" true r.Multi.all_unique;
  Alcotest.(check int) "no collision" 0 r.Multi.collisions

let test_lossy_link_occasionally_collides () =
  (* sanity for the statistics plumbing: with heavy loss and a crowded
     pool, collisions do occur and are counted *)
  let rng = Numerics.Rng.create 6 in
  let total_collisions = ref 0 in
  for _ = 1 to 40 do
    let r =
      Multi.run ~loss:0.95 ~one_way ~occupied:28 ~pool_size:32 ~newcomers:2
        ~config ~rng ()
    in
    total_collisions := !total_collisions + r.Multi.collisions
  done;
  Alcotest.(check bool)
    (Printf.sprintf "collisions observed (%d)" !total_collisions)
    true (!total_collisions > 0)

let test_sweep_shapes () =
  let rates =
    Multi.collision_rate_vs_newcomers ~loss:0.1 ~one_way ~occupied:8
      ~pool_size:32 ~config ~trials:5 ~counts:[ 1; 2; 4 ]
      ~rng:(Numerics.Rng.create 7) ()
  in
  Alcotest.(check (list int)) "counts echoed" [ 1; 2; 4 ] (List.map fst rates);
  List.iter
    (fun (_, rate) ->
      Alcotest.(check bool) "rate is a probability" true
        (Numerics.Safe_float.is_probability rate))
    rates

let test_announcements_broadcast_after_acceptance () =
  (* deterministic mechanism check: a clean acceptance with
     announce = (2, 0.5) must broadcast exactly two gratuitous replies
     for the accepted address, half a second apart *)
  let engine = Netsim.Engine.create () in
  let rng = Numerics.Rng.create 42 in
  let link =
    Netsim.Link.create ~engine ~rng ~loss:0.
      ~one_way:(Dist.Families.deterministic ~delay:0.01 ())
  in
  let pool = Netsim.Address_pool.create ~size:8 () in
  let announcements = ref [] in
  let _observer =
    Netsim.Link.attach link (fun packet ->
        match packet with
        | Netsim.Packet.Arp_reply { address; _ } ->
            announcements := (Netsim.Engine.now engine, address) :: !announcements
        | Netsim.Packet.Arp_probe _ -> ())
  in
  let accepted = ref None in
  let _newcomer =
    Netsim.Newcomer.start ~engine ~link ~pool ~rng
      ~config:
        { (Netsim.Newcomer.drm_config ~n:2 ~r:0.2 ~probe_cost:0. ~error_cost:0.) with
          Netsim.Newcomer.announce = Some (2, 0.5) }
      ~on_done:(fun o -> accepted := Some o)
      ()
  in
  Netsim.Engine.run engine;
  match !accepted with
  | None -> Alcotest.fail "newcomer never finished"
  | Some o ->
      let ann = List.rev !announcements in
      Alcotest.(check int) "two announcements" 2 (List.length ann);
      List.iter
        (fun (_, address) ->
          Alcotest.(check int) "announce the accepted address"
            o.Netsim.Metrics.address address)
        ann;
      (match ann with
      | [ (t1, _); (t2, _) ] ->
          Alcotest.(check (float 1e-9)) "spaced by the interval" 0.5 (t2 -. t1)
      | _ -> Alcotest.fail "expected exactly two")

let test_guards () =
  Alcotest.check_raises "zero newcomers" (Invalid_argument "Multi.run: newcomers < 1")
    (fun () ->
      ignore
        (Multi.run ~loss:0. ~one_way ~occupied:1 ~pool_size:8 ~newcomers:0
           ~config ~rng:(Numerics.Rng.create 8) ()));
  Alcotest.check_raises "negative spacing"
    (Invalid_argument "Multi.run: negative spacing") (fun () ->
      ignore
        (Multi.run ~loss:0. ~one_way ~occupied:1 ~pool_size:8 ~newcomers:1
           ~spacing:(-1.) ~config ~rng:(Numerics.Rng.create 9) ()))

let () =
  Alcotest.run "multi"
    [ ( "uniqueness",
        [ Alcotest.test_case "single reduces" `Quick
            test_single_newcomer_reduces_to_scenario;
          Alcotest.test_case "staggered unique" `Quick
            test_staggered_newcomers_all_unique;
          Alcotest.test_case "simultaneous rival-probe rule" `Quick
            test_simultaneous_newcomers_rival_probe_rule;
          Alcotest.test_case "accepted defend" `Quick test_accepted_newcomers_defend ] );
      ( "statistics",
        [ Alcotest.test_case "makespan" `Quick test_makespan_positive_and_bounded;
          Alcotest.test_case "lossy collides" `Quick
            test_lossy_link_occasionally_collides;
          Alcotest.test_case "announcements" `Quick
            test_announcements_broadcast_after_acceptance;
          Alcotest.test_case "sweep" `Quick test_sweep_shapes;
          Alcotest.test_case "guards" `Quick test_guards ] ) ]
