module G = Numerics.Grid

let check_floats = Alcotest.(check (array (float 1e-12)))

let test_linspace_basic () =
  check_floats "five points" [| 0.; 0.25; 0.5; 0.75; 1. |] (G.linspace 0. 1. 5);
  check_floats "two points" [| 2.; 5. |] (G.linspace 2. 5. 2)

let test_linspace_endpoints_exact () =
  let g = G.linspace 0.1 0.7 7 in
  Alcotest.(check (float 0.)) "first exact" 0.1 g.(0);
  Alcotest.(check (float 0.)) "last exact" 0.7 g.(6)

let test_linspace_descending () =
  check_floats "descending" [| 1.; 0.5; 0. |] (G.linspace 1. 0. 3)

let test_linspace_errors () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Grid.linspace: n < 1")
    (fun () -> ignore (G.linspace 0. 1. 0));
  Alcotest.check_raises "n = 1 with span"
    (Invalid_argument "Grid.linspace: n = 1 with a <> b") (fun () ->
      ignore (G.linspace 0. 1. 1));
  check_floats "n = 1 degenerate ok" [| 3. |] (G.linspace 3. 3. 1)

let test_logspace () =
  check_floats "decades" [| 1.; 10.; 100. |] (G.logspace 0. 2. 3)

let test_geomspace () =
  let g = G.geomspace 1. 8. 4 in
  Alcotest.(check (array (float 1e-9))) "powers of two" [| 1.; 2.; 4.; 8. |] g;
  Alcotest.check_raises "negative bound"
    (Invalid_argument "Grid.geomspace: non-positive bound") (fun () ->
      ignore (G.geomspace (-1.) 1. 3))

let test_arange () =
  check_floats "unit step" [| 0.; 1.; 2. |] (G.arange 0. 3.);
  check_floats "fractional step" [| 0.; 0.5; 1.; 1.5 |] (G.arange ~step:0.5 0. 2.);
  check_floats "empty" [||] (G.arange 5. 5.);
  Alcotest.check_raises "bad step" (Invalid_argument "Grid.arange: step <= 0")
    (fun () -> ignore (G.arange ~step:0. 0. 1.))

let test_midpoints () =
  check_floats "midpoints" [| 0.5; 1.5 |] (G.midpoints [| 0.; 1.; 2. |]);
  check_floats "too short" [||] (G.midpoints [| 1. |])

let test_map_sweep () =
  let swept = G.map_sweep (fun x -> x *. x) [| 1.; 2. |] in
  Alcotest.(check (array (pair (float 0.) (float 0.))))
    "pairs" [| (1., 1.); (2., 4.) |] swept

let check_chunks = Alcotest.(check (array (array int)))

let test_chunks_even () =
  check_chunks "even split" [| [| 1; 2 |]; [| 3; 4 |] |]
    (G.chunks 2 [| 1; 2; 3; 4 |])

let test_chunks_remainder () =
  (* 7 into 3: the leading chunks absorb the remainder *)
  check_chunks "remainder up front" [| [| 0; 1; 2 |]; [| 3; 4 |]; [| 5; 6 |] |]
    (G.chunks 3 (Array.init 7 Fun.id));
  check_chunks "one chunk" [| [| 9; 8; 7 |] |] (G.chunks 1 [| 9; 8; 7 |])

let test_chunks_count_exceeds_length () =
  check_chunks "singletons only" [| [| 1 |]; [| 2 |]; [| 3 |] |]
    (G.chunks 10 [| 1; 2; 3 |])

let test_chunks_empty () =
  check_chunks "empty input" [||] (G.chunks 4 [||])

let test_chunks_errors () =
  Alcotest.check_raises "k = 0" (Invalid_argument "Grid.chunks: k < 1")
    (fun () -> ignore (G.chunks 0 [| 1 |]))

let prop_chunks_partition =
  QCheck.Test.make ~name:"chunks concatenate back and balance" ~count:300
    QCheck.(pair (int_range 1 20) (int_range 0 200))
    (fun (k, n) ->
      let xs = Array.init n Fun.id in
      let chunks = G.chunks k xs in
      let lengths = Array.map Array.length chunks in
      Array.concat (Array.to_list chunks) = xs
      && Array.for_all (fun l -> l > 0) lengths
      && (n = 0
         || Array.fold_left max 0 lengths - Array.fold_left min max_int lengths
            <= 1))

let prop_linspace_monotone =
  QCheck.Test.make ~name:"linspace is monotone for a < b" ~count:300
    QCheck.(triple (float_range (-100.) 0.) (float_range 0.1 100.) (int_range 2 200))
    (fun (a, b, n) ->
      let g = G.linspace a b n in
      Array.length g = n
      && Array.for_all Fun.id (Array.init (n - 1) (fun i -> g.(i) < g.(i + 1))))

let prop_geomspace_ratios_constant =
  QCheck.Test.make ~name:"geomspace has constant ratio" ~count:300
    QCheck.(triple (float_range 0.01 10.) (float_range 11. 1000.) (int_range 3 50))
    (fun (a, b, n) ->
      let g = G.geomspace a b n in
      let ratio = g.(1) /. g.(0) in
      Array.for_all Fun.id
        (Array.init (n - 1) (fun i ->
             Numerics.Safe_float.approx_eq ~rtol:1e-9 (g.(i + 1) /. g.(i)) ratio)))

let () =
  Alcotest.run "grid"
    [ ( "linspace",
        [ Alcotest.test_case "basic" `Quick test_linspace_basic;
          Alcotest.test_case "endpoints exact" `Quick test_linspace_endpoints_exact;
          Alcotest.test_case "descending" `Quick test_linspace_descending;
          Alcotest.test_case "errors" `Quick test_linspace_errors ] );
      ( "log/geom",
        [ Alcotest.test_case "logspace" `Quick test_logspace;
          Alcotest.test_case "geomspace" `Quick test_geomspace ] );
      ( "arange/midpoints",
        [ Alcotest.test_case "arange" `Quick test_arange;
          Alcotest.test_case "midpoints" `Quick test_midpoints;
          Alcotest.test_case "map_sweep" `Quick test_map_sweep ] );
      ( "chunks",
        [ Alcotest.test_case "even" `Quick test_chunks_even;
          Alcotest.test_case "remainder" `Quick test_chunks_remainder;
          Alcotest.test_case "count exceeds length" `Quick
            test_chunks_count_exceeds_length;
          Alcotest.test_case "empty" `Quick test_chunks_empty;
          Alcotest.test_case "errors" `Quick test_chunks_errors ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_chunks_partition; prop_linspace_monotone;
            prop_geomspace_ratios_constant ] ) ]
