module P = Zeroconf.Params

let check_close ?(tol = 1e-12) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let test_address_space () =
  Alcotest.(check int) "65024 link-local addresses" 65024 P.address_space_size

let test_q_of_hosts () =
  check_close "paper's q" (1000. /. 65024.) (P.q_of_hosts 1000);
  check_close "empty network" 0. (P.q_of_hosts 0);
  Alcotest.check_raises "negative"
    (Invalid_argument "Params.q_of_hosts: m outside [0, 65024)") (fun () ->
      ignore (P.q_of_hosts (-1)));
  Alcotest.check_raises "full space"
    (Invalid_argument "Params.q_of_hosts: m outside [0, 65024)") (fun () ->
      ignore (P.q_of_hosts 65024))

let test_validation () =
  let delay = Dist.Families.exponential ~rate:1. () in
  Alcotest.check_raises "q = 1" (Invalid_argument "Params.v: q outside [0, 1)")
    (fun () ->
      ignore (P.v ~name:"bad" ~delay ~q:1. ~probe_cost:0. ~error_cost:0.));
  Alcotest.check_raises "negative c" (Invalid_argument "Params.v: probe_cost < 0")
    (fun () ->
      ignore (P.v ~name:"bad" ~delay ~q:0.5 ~probe_cost:(-1.) ~error_cost:0.));
  Alcotest.check_raises "negative E" (Invalid_argument "Params.v: error_cost < 0")
    (fun () ->
      ignore (P.v ~name:"bad" ~delay ~q:0.5 ~probe_cost:0. ~error_cost:(-1.)))

let test_updates_preserve_other_fields () =
  let base = P.figure2 in
  let updated = P.with_costs ~probe_cost:9. base in
  check_close "q untouched" base.P.q updated.P.q;
  check_close "E untouched" base.P.error_cost updated.P.error_cost;
  check_close "c changed" 9. updated.P.probe_cost;
  let requeued = P.with_q base 0.5 in
  check_close "c untouched" base.P.probe_cost requeued.P.probe_cost;
  check_close "q changed" 0.5 requeued.P.q;
  let redelayed = P.with_delay base (Dist.Families.exponential ~rate:2. ()) in
  check_close "loss now zero" 0. (P.loss_probability redelayed)

let test_update_validation_still_applies () =
  Alcotest.check_raises "with_q validates" (Invalid_argument "Params.v: q outside [0, 1)")
    (fun () -> ignore (P.with_q P.figure2 1.5))

let test_presets_match_paper () =
  (* figure2: Sec. 4.3 *)
  let p = P.figure2 in
  check_close "q" (1000. /. 65024.) p.P.q;
  check_close "c" 2. p.P.probe_cost;
  check_close "E" 1e35 p.P.error_cost;
  check_close ~tol:1e-18 "loss" 1e-15 (P.loss_probability p);
  check_close "mean reply d + 1/lambda" 1.1 (Option.get p.P.delay.Dist.Distribution.mean);
  (* wireless worst case: Sec. 4.5 r = 2 *)
  let w = P.wireless_worst_case in
  check_close "wireless E" 5e20 w.P.error_cost;
  check_close "wireless c" 3.5 w.P.probe_cost;
  check_close ~tol:1e-9 "wireless loss" 1e-5 (P.loss_probability w);
  (* wired worst case: Sec. 4.5 r = 0.2 *)
  let d = P.wired_worst_case in
  check_close "wired E" 1e35 d.P.error_cost;
  check_close "wired c" 0.5 d.P.probe_cost;
  check_close "wired mean reply" 0.11 (Option.get d.P.delay.Dist.Distribution.mean);
  (* realistic: Sec. 6 *)
  let r = P.realistic_ethernet in
  check_close "realistic E" 5e20 r.P.error_cost;
  check_close ~tol:1e-15 "realistic loss" 1e-12 (P.loss_probability r);
  check_close "realistic rtt" 0.001
    (let d = r.P.delay in
     (* the floor is where the cdf first leaves zero *)
     Dist.Distribution.quantile d 1e-12)

let test_presets_list_complete () =
  Alcotest.(check (list string)) "names"
    [ "figure2"; "wireless-worst-case"; "wired-worst-case"; "realistic-ethernet" ]
    (List.map fst P.presets);
  List.iter
    (fun (name, (p : P.t)) ->
      Alcotest.(check string) "name matches key" name p.P.name)
    P.presets

let test_pp_renders () =
  let s = Format.asprintf "%a" P.pp P.figure2 in
  Alcotest.(check bool) "mentions scenario" true (String.length s > 20)

let () =
  Alcotest.run "params"
    [ ( "constants",
        [ Alcotest.test_case "address space" `Quick test_address_space;
          Alcotest.test_case "q_of_hosts" `Quick test_q_of_hosts ] );
      ( "construction",
        [ Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "updates" `Quick test_updates_preserve_other_fields;
          Alcotest.test_case "update validation" `Quick
            test_update_validation_still_applies ] );
      ( "presets",
        [ Alcotest.test_case "paper values" `Quick test_presets_match_paper;
          Alcotest.test_case "list" `Quick test_presets_list_complete;
          Alcotest.test_case "printer" `Quick test_pp_renders ] ) ]
