module S = Numerics.Stats

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let test_summarize () =
  let s = S.summarize [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_close "mean" 5. s.S.mean;
  check_close "variance (n-1)" (32. /. 7.) s.S.variance;
  check_close "min" 2. s.S.min;
  check_close "max" 9. s.S.max;
  Alcotest.(check int) "n" 8 s.S.n

let test_summarize_singleton () =
  let s = S.summarize [| 42. |] in
  check_close "mean" 42. s.S.mean;
  check_close "variance" 0. s.S.variance;
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty sample")
    (fun () -> ignore (S.summarize [||]))

let test_normal_quantile () =
  check_close ~tol:1e-8 "median" 0. (S.normal_quantile 0.5);
  check_close ~tol:1e-6 "97.5%" 1.959963985 (S.normal_quantile 0.975);
  check_close ~tol:1e-6 "2.5%" (-1.959963985) (S.normal_quantile 0.025);
  check_close ~tol:1e-5 "99.9%" 3.090232306 (S.normal_quantile 0.999);
  Alcotest.check_raises "p = 0"
    (Invalid_argument "Stats.normal_quantile: p outside (0,1)") (fun () ->
      ignore (S.normal_quantile 0.))

let test_normal_quantile_symmetry () =
  List.iter
    (fun p ->
      check_close ~tol:1e-7 (Printf.sprintf "symmetry at %g" p)
        (S.normal_quantile p)
        (-.S.normal_quantile (1. -. p)))
    [ 0.001; 0.01; 0.1; 0.3; 0.45 ]

let test_mean_ci () =
  let rng = Numerics.Rng.create 17 in
  let data = Array.init 10_000 (fun _ -> Numerics.Rng.normal rng ~mu:10. ~sigma:1.) in
  let lo, hi = S.mean_ci data in
  Alcotest.(check bool) "interval contains truth" true (lo <= 10. && 10. <= hi);
  Alcotest.(check bool) "interval is tight" true (hi -. lo < 0.1)

let test_proportion_ci () =
  let lo, hi = S.proportion_ci ~successes:0 100 in
  check_close "wilson lower at 0 successes" 0. lo;
  Alcotest.(check bool) "wilson upper positive at 0 successes" true (hi > 0.);
  let lo, hi = S.proportion_ci ~successes:50 100 in
  Alcotest.(check bool) "contains 0.5" true (lo < 0.5 && 0.5 < hi);
  Alcotest.check_raises "bad trials"
    (Invalid_argument "Stats.proportion_ci: trials <= 0") (fun () ->
      ignore (S.proportion_ci ~successes:0 0))

let test_quantile () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_close "median" 3. (S.quantile xs 0.5);
  check_close "min" 1. (S.quantile xs 0.);
  check_close "max" 5. (S.quantile xs 1.);
  check_close "interpolated" 1.4 (S.quantile xs 0.1);
  check_close "median fn" 3. (S.median xs);
  (* input not mutated *)
  let shuffled = [| 5.; 1.; 3.; 2.; 4. |] in
  ignore (S.quantile shuffled 0.5);
  Alcotest.(check (array (float 0.))) "input intact" [| 5.; 1.; 3.; 2.; 4. |] shuffled

let test_histogram () =
  let h = S.histogram ~bins:4 [| 0.; 1.; 2.; 3.; 4. |] in
  Alcotest.(check int) "edges" 5 (Array.length h.S.edges);
  Alcotest.(check int) "total count" 5 (Array.fold_left ( + ) 0 h.S.counts);
  check_close "first edge" 0. h.S.edges.(0);
  check_close "last edge" 4. h.S.edges.(4)

let test_ecdf () =
  let f = S.ecdf [| 1.; 2.; 3. |] in
  check_close "below all" 0. (f 0.5);
  check_close "at first" (1. /. 3.) (f 1.);
  check_close "between" (2. /. 3.) (f 2.5);
  check_close "above all" 1. (f 10.)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile is monotone in p" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 2 30) (float_range (-100.) 100.))
              (pair (float_range 0. 1.) (float_range 0. 1.)))
    (fun (xs, (p1, p2)) ->
      let xs = Array.of_list xs in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      S.quantile xs lo <= S.quantile xs hi +. 1e-12)

let prop_ecdf_matches_quantile =
  (* quantile interpolates between order statistics, so the ecdf can lag
     by at most one sample weight *)
  QCheck.Test.make ~name:"ecdf (quantile p) >= p - 1/n" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 2 30) (float_range (-10.) 10.))
              (float_range 0.05 0.95))
    (fun (xs, p) ->
      let xs = Array.of_list xs in
      let slack = 1. /. float_of_int (Array.length xs) in
      S.ecdf xs (S.quantile xs p) >= p -. slack -. 1e-9)

let () =
  Alcotest.run "stats"
    [ ( "summary",
        [ Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "singleton/empty" `Quick test_summarize_singleton ] );
      ( "normal quantile",
        [ Alcotest.test_case "values" `Quick test_normal_quantile;
          Alcotest.test_case "symmetry" `Quick test_normal_quantile_symmetry ] );
      ( "intervals",
        [ Alcotest.test_case "mean ci" `Quick test_mean_ci;
          Alcotest.test_case "proportion ci" `Quick test_proportion_ci ] );
      ( "order statistics",
        [ Alcotest.test_case "quantile" `Quick test_quantile;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "ecdf" `Quick test_ecdf ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_quantile_monotone; prop_ecdf_matches_quantile ] ) ]
