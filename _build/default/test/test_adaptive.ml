module A = Zeroconf.Adaptive
module Params = Zeroconf.Params

let check_rel ?(rtol = 1e-8) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.12g vs %.12g" msg expected actual)
    true
    (Numerics.Safe_float.approx_eq ~rtol expected actual)

let crowded =
  Params.v ~name:"crowded"
    ~delay:(Dist.Families.shifted_exponential ~mass:0.9 ~rate:2. ~delay:0.5 ())
    ~q:0. ~probe_cost:1. ~error_cost:100.

let occupied = 200
let pool = 256
let base = Zeroconf.Attempts.no_refinement ~occupied ~pool ()

let test_constant_q_policy_is_stationary () =
  (* the theorem: with memoryless occupancy every attempt stage looks
     alike, so the optimal adaptive schedule repeats one choice and its
     value equals the best fixed value *)
  let s = A.solve crowded ~refinement:base () in
  check_rel "adaptive = fixed" s.A.fixed_cost s.A.expected_cost;
  let first = s.A.per_attempt.(0) in
  Array.iter
    (fun (c : A.choice) ->
      Alcotest.(check int) "same n everywhere" first.A.n c.A.n;
      check_rel "same r everywhere" first.A.r c.A.r)
    s.A.per_attempt

let test_constant_q_matches_eq3 () =
  (* the fixed value on the grid equals Eq. 3 at the chosen candidate *)
  let s = A.solve crowded ~refinement:base () in
  let q = float_of_int occupied /. float_of_int pool in
  let p = Params.with_q crowded q in
  check_rel "Eq. 3 at fixed_best"
    (Zeroconf.Cost.mean p ~n:s.A.fixed_best.A.n ~r:s.A.fixed_best.A.r)
    s.A.fixed_cost

let test_adaptive_never_worse () =
  List.iter
    (fun refinement ->
      let s = A.solve crowded ~refinement () in
      Alcotest.(check bool) "improvement >= 0" true (s.A.improvement >= 0.);
      Alcotest.(check bool) "adaptive <= fixed" true
        (s.A.expected_cost <= s.A.fixed_cost +. 1e-9))
    [ base;
      { base with Zeroconf.Attempts.blacklist = true };
      { base with Zeroconf.Attempts.rate_limit = Some (2, 30.) };
      { base with
        Zeroconf.Attempts.blacklist = true;
        Zeroconf.Attempts.rate_limit = Some (2, 30.) } ]

let test_rate_limit_makes_adaptivity_pay () =
  (* with a harsh rate limiter, switching strategy near the threshold
     beats any fixed choice by a real margin *)
  let refinement = { base with Zeroconf.Attempts.rate_limit = Some (2, 30.) } in
  let s = A.solve crowded ~refinement () in
  Alcotest.(check bool)
    (Printf.sprintf "improvement %.3f substantial" s.A.improvement)
    true
    (s.A.improvement > 1.);
  (* and the schedule is genuinely non-stationary *)
  let first = s.A.per_attempt.(0) in
  Alcotest.(check bool) "policy changes across attempts" true
    (Array.exists (fun (c : A.choice) -> c <> first) s.A.per_attempt)

let test_blacklist_value_matches_attempts_analysis () =
  (* restricted to the fixed candidate it prefers, the MDP's fixed value
     must agree with the attempt-indexed closed-form analysis *)
  let refinement = { base with Zeroconf.Attempts.blacklist = true } in
  let s = A.solve crowded ~refinement () in
  let analysis =
    Zeroconf.Attempts.analyze crowded refinement ~n:s.A.fixed_best.A.n
      ~r:s.A.fixed_best.A.r
  in
  check_rel ~rtol:1e-6 "MDP fixed value = Attempts.analyze"
    analysis.Zeroconf.Attempts.mean_cost s.A.fixed_cost

let test_explicit_candidates_respected () =
  let candidates = [ { A.n = 4; r = 2. }; { A.n = 2; r = 1. } ] in
  let s = A.solve ~candidates crowded ~refinement:base () in
  Array.iter
    (fun (c : A.choice) ->
      Alcotest.(check bool) "choice from the grid" true (List.mem c candidates))
    s.A.per_attempt

let test_guards () =
  Alcotest.check_raises "empty candidates"
    (Invalid_argument "Adaptive.solve: empty candidate set") (fun () ->
      ignore (A.solve ~candidates:[] crowded ~refinement:base ()));
  Alcotest.check_raises "bad candidate"
    (Invalid_argument "Adaptive.solve: bad candidate") (fun () ->
      ignore
        (A.solve ~candidates:[ { A.n = 0; r = 1. } ] crowded ~refinement:base ()));
  Alcotest.check_raises "stages" (Invalid_argument "Adaptive.solve: stages < 1")
    (fun () -> ignore (A.solve ~stages:0 crowded ~refinement:base ()))

let () =
  Alcotest.run "adaptive"
    [ ( "stationarity theorem",
        [ Alcotest.test_case "constant q is stationary" `Quick
            test_constant_q_policy_is_stationary;
          Alcotest.test_case "matches Eq. 3" `Quick test_constant_q_matches_eq3 ] );
      ( "dominance",
        [ Alcotest.test_case "never worse than fixed" `Quick test_adaptive_never_worse;
          Alcotest.test_case "rate limit rewards adaptivity" `Quick
            test_rate_limit_makes_adaptivity_pay;
          Alcotest.test_case "agrees with Attempts" `Quick
            test_blacklist_value_matches_attempts_analysis ] );
      ( "interface",
        [ Alcotest.test_case "explicit candidates" `Quick
            test_explicit_candidates_respected;
          Alcotest.test_case "guards" `Quick test_guards ] ) ]
