module D = Dist.Distribution
module E = Dist.Empirical

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let test_of_samples_cdf () =
  let d = E.of_samples [| 1.; 2.; 3.; 4. |] in
  check_close "below" 0. (d.D.cdf 0.5);
  check_close "half" 0.5 (d.D.cdf 2.);
  check_close "all" 1. (d.D.cdf 4.);
  check_close "mass" 1. d.D.mass

let test_of_samples_with_losses () =
  let d = E.of_samples ~losses:2 [| 1.; 2. |] in
  check_close "mass" 0.5 d.D.mass;
  check_close "cdf scaled by mass" 0.25 (d.D.cdf 1.);
  Alcotest.(check bool) "defective" true (D.is_defective d)

let test_of_samples_guards () =
  Alcotest.check_raises "empty" (Invalid_argument "Empirical.of_samples: empty sample")
    (fun () -> ignore (E.of_samples [||]));
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Empirical.of_samples: negative delay") (fun () ->
      ignore (E.of_samples [| -1. |]));
  Alcotest.check_raises "negative losses"
    (Invalid_argument "Empirical.of_samples: negative losses") (fun () ->
      ignore (E.of_samples ~losses:(-1) [| 1. |]))

let test_of_censored () =
  let d = E.of_censored ~timeout:5. [| 1.; 2.; 7.; 9.; 3. |] in
  check_close "mass = 3/5" 0.6 d.D.mass;
  check_close "all observed by 3" 0.6 (d.D.cdf 3.);
  Alcotest.check_raises "all censored"
    (Invalid_argument "Empirical.of_censored: every observation censored")
    (fun () -> ignore (E.of_censored ~timeout:0.5 [| 1.; 2. |]))

let test_sampling_resamples_observations () =
  let observations = [| 1.; 2.; 5. |] in
  let d = E.of_samples observations in
  let rng = Numerics.Rng.create 21 in
  for _ = 1 to 100 do
    match d.D.sample rng with
    | Some x ->
        Alcotest.(check bool) "sample is an observation" true
          (Array.exists (fun o -> o = x) observations)
    | None -> Alcotest.fail "no losses expected"
  done

let test_sampling_loss_rate () =
  let d = E.of_samples ~losses:10 (Array.make 10 1.) in
  let rng = Numerics.Rng.create 22 in
  let lost = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if d.D.sample rng = None then incr lost
  done;
  Alcotest.(check bool) "loss rate near 1/2" true
    (Float.abs ((float_of_int !lost /. float_of_int n) -. 0.5) < 0.02)

let test_empirical_recovers_parametric () =
  (* draw from a known shifted exponential, rebuild empirically, and
     compare CDFs: the measurement-driven path of Sec. 3.2 *)
  let truth = Dist.Families.shifted_exponential ~rate:5. ~delay:0.5 () in
  let rng = Numerics.Rng.create 23 in
  let samples =
    Array.init 20_000 (fun _ ->
        match truth.D.sample rng with Some x -> x | None -> 0.)
  in
  let d = E.of_samples samples in
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Printf.sprintf "cdf close at %g" t)
        true
        (Float.abs (d.D.cdf t -. truth.D.cdf t) < 0.02))
    [ 0.55; 0.7; 1.0; 1.5 ]

let test_smooth_preserves_mass_and_shape () =
  let d = E.of_samples [| 1.; 1.; 2.; 3. |] in
  let s = E.smooth d in
  check_close "mass preserved" d.D.mass s.D.mass;
  Alcotest.(check bool) "still monotone etc." true
    (match D.check ~hi:10. s with Ok () -> true | Error _ -> false);
  (* smoothing keeps values between the staircase endpoints *)
  Alcotest.(check bool) "close to original at knots" true
    (Float.abs (s.D.cdf 3. -. 1.) < 0.05)

let prop_empirical_cdf_steps_by_1_over_n =
  QCheck.Test.make ~name:"empirical cdf at the max is the mass" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range 0. 100.))
    (fun xs ->
      let arr = Array.of_list xs in
      let d = E.of_samples arr in
      let maximum = Array.fold_left Float.max arr.(0) arr in
      Float.abs (d.D.cdf maximum -. 1.) < 1e-9)

let () =
  Alcotest.run "empirical"
    [ ( "construction",
        [ Alcotest.test_case "cdf" `Quick test_of_samples_cdf;
          Alcotest.test_case "losses" `Quick test_of_samples_with_losses;
          Alcotest.test_case "guards" `Quick test_of_samples_guards;
          Alcotest.test_case "censored" `Quick test_of_censored ] );
      ( "sampling",
        [ Alcotest.test_case "resamples" `Quick test_sampling_resamples_observations;
          Alcotest.test_case "loss rate" `Quick test_sampling_loss_rate ] );
      ( "recovery",
        [ Alcotest.test_case "recovers parametric" `Quick
            test_empirical_recovers_parametric;
          Alcotest.test_case "smoothing" `Quick test_smooth_preserves_mass_and_shape ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_empirical_cdf_steps_by_1_over_n ] ) ]
