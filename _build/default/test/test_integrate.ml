module I = Numerics.Integrate

let check_close ?(tol = 1e-8) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let test_simpson_polynomials () =
  (* Simpson is exact on cubics *)
  check_close ~tol:1e-12 "x^2 on [0,1]" (1. /. 3.)
    (I.simpson ~n:4 ~f:(fun x -> x *. x) 0. 1.);
  check_close ~tol:1e-12 "x^3 on [0,2]" 4.
    (I.simpson ~n:4 ~f:(fun x -> x ** 3.) 0. 2.)

let test_simpson_transcendental () =
  check_close "sin over [0, pi]" 2. (I.simpson ~f:sin 0. Float.pi);
  check_close "exp over [0, 1]" (Float.exp 1. -. 1.) (I.simpson ~f:exp 0. 1.)

let test_simpson_odd_n_rounded () =
  (* odd n is rounded up rather than rejected *)
  check_close ~tol:1e-6 "odd n works" (1. /. 3.)
    (I.simpson ~n:33 ~f:(fun x -> x *. x) 0. 1.)

let test_adaptive_smooth () =
  check_close ~tol:1e-9 "gaussian-ish" (Float.exp 1. -. 1.) (I.adaptive ~f:exp 0. 1.);
  check_close ~tol:1e-9 "sin" 2. (I.adaptive ~f:sin 0. Float.pi)

let test_adaptive_peaked () =
  (* narrow bump that a fixed grid at low n would miss *)
  let f x = exp (-.((x -. 0.7) ** 2.) /. 1e-4) in
  let truth = sqrt Float.pi *. 1e-2 in
  check_close ~tol:1e-7 "narrow gaussian" truth (I.adaptive ~tol:1e-12 ~f (-1.) 2.)

let test_to_infinity_exponential () =
  check_close ~tol:1e-8 "integral of e^-x from 0" 1.
    (I.to_infinity ~f:(fun x -> exp (-.x)) 0.);
  check_close ~tol:1e-7 "integral of e^-2x from 1" (exp (-2.) /. 2.)
    (I.to_infinity ~f:(fun x -> exp (-2. *. x)) 1.)

let test_to_infinity_survival () =
  (* mean of the paper's conditional F_X: integral of survival = d + 1/lambda *)
  let d = Dist.Families.shifted_exponential ~rate:10. ~delay:1. () in
  check_close ~tol:1e-6 "mean via survival integral" 1.1
    (I.to_infinity ~f:d.Dist.Distribution.survival 0.)

let test_guards () =
  Alcotest.check_raises "n < 2" (Invalid_argument "Integrate.simpson: n < 2")
    (fun () -> ignore (I.simpson ~n:1 ~f:exp 0. 1.))

let prop_linearity =
  QCheck.Test.make ~name:"integration is linear" ~count:200
    QCheck.(pair (float_range (-5.) 5.) (float_range (-5.) 5.))
    (fun (a, b) ->
      let f x = (a *. sin x) +. (b *. (x *. x)) in
      let whole = I.adaptive ~f 0. 2. in
      let parts =
        (a *. I.adaptive ~f:sin 0. 2.) +. (b *. I.adaptive ~f:(fun x -> x *. x) 0. 2.)
      in
      Numerics.Safe_float.approx_eq ~rtol:1e-7 ~atol:1e-9 whole parts)

let prop_interval_additivity =
  QCheck.Test.make ~name:"integral over [a,c] = [a,b] + [b,c]" ~count:200
    QCheck.(triple (float_range 0. 2.) (float_range 2. 4.) (float_range 4. 6.))
    (fun (a, b, c) ->
      let f x = exp (-.x) *. cos x in
      Numerics.Safe_float.approx_eq ~rtol:1e-7 ~atol:1e-10
        (I.adaptive ~f a c)
        (I.adaptive ~f a b +. I.adaptive ~f b c))

let () =
  Alcotest.run "integrate"
    [ ( "simpson",
        [ Alcotest.test_case "polynomials exact" `Quick test_simpson_polynomials;
          Alcotest.test_case "transcendental" `Quick test_simpson_transcendental;
          Alcotest.test_case "odd n" `Quick test_simpson_odd_n_rounded ] );
      ( "adaptive",
        [ Alcotest.test_case "smooth" `Quick test_adaptive_smooth;
          Alcotest.test_case "peaked" `Quick test_adaptive_peaked ] );
      ( "to infinity",
        [ Alcotest.test_case "exponential tails" `Quick test_to_infinity_exponential;
          Alcotest.test_case "survival integral" `Quick test_to_infinity_survival;
          Alcotest.test_case "guards" `Quick test_guards ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_linearity; prop_interval_additivity ] ) ]
