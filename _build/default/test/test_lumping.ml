module L = Dtmc.Lumping
module C = Dtmc.Chain
module M = Numerics.Matrix
module Ss = Dtmc.State_space

let chain_of arrays labels =
  C.create ~states:(Ss.of_labels labels) (M.of_arrays arrays)

let check_close ?(tol = 1e-12) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* two interchangeable middle states *)
let parallel_branches =
  chain_of
    [| [| 0.; 0.5; 0.5; 0. |];
       [| 0.; 0.; 0.; 1. |];
       [| 0.; 0.; 0.; 1. |];
       [| 0.; 0.; 0.; 1. |] |]
    [ "start"; "b1"; "b2"; "done" ]

let test_symmetric_branches_lump () =
  let l = L.coarsest parallel_branches in
  Alcotest.(check int) "three blocks" 3 (C.size l.L.quotient);
  Alcotest.(check int) "b1 and b2 together" l.L.block_of.(1) l.L.block_of.(2);
  Alcotest.(check bool) "start alone" true (l.L.block_of.(0) <> l.L.block_of.(1));
  (* quotient transition start -> merged block is the summed 1.0 *)
  check_close "merged probability" 1.
    (C.prob l.L.quotient l.L.block_of.(0) l.L.block_of.(1))

let test_quotient_preserves_absorption () =
  (* a symmetric gadget with two absorbing outcomes: mirror states must
     merge, and absorption probabilities must survive the quotient *)
  let c =
    chain_of
      [| [| 0.; 0.3; 0.3; 0.2; 0.2; 0. |];
         [| 0.; 0.; 0.; 0.7; 0.3; 0. |];
         [| 0.; 0.; 0.; 0.7; 0.3; 0. |];
         [| 0.; 0.; 0.; 1.; 0.; 0. |];
         [| 0.; 0.; 0.; 0.; 1.; 0. |];
         [| 0.; 0.; 0.; 0.; 0.; 1. |] |]
      [ "s"; "m1"; "m2"; "win"; "lose"; "unreachable" ]
  in
  let l = L.coarsest c in
  Alcotest.(check int) "mirrors merged" l.L.block_of.(1) l.L.block_of.(2);
  let original = Dtmc.Absorbing.absorption_probability c ~from:0 ~into:3 in
  let quotient_win = l.L.block_of.(3) in
  let lumped =
    Dtmc.Absorbing.absorption_probability l.L.quotient ~from:l.L.block_of.(0)
      ~into:quotient_win
  in
  check_close ~tol:1e-12 "absorption preserved" original lumped;
  let steps_original = Dtmc.Absorbing.expected_steps c ~from:0 in
  let steps_lumped =
    Dtmc.Absorbing.expected_steps l.L.quotient ~from:l.L.block_of.(0)
  in
  check_close ~tol:1e-12 "expected steps preserved" steps_original steps_lumped

let test_asymmetric_chain_does_not_lump () =
  let c =
    chain_of
      [| [| 0.; 0.5; 0.5; 0. |];
         [| 0.; 0.; 0.; 1. |];
         [| 0.3; 0.; 0.; 0.7 |];
         [| 0.; 0.; 0.; 1. |] |]
      [ "s"; "quiet"; "loud"; "done" ]
  in
  let l = L.coarsest c in
  Alcotest.(check int) "no reduction" 4 (C.size l.L.quotient)

let test_initial_partition_respected () =
  (* forcing b1 and b2 apart up front blocks the merge *)
  let l = L.coarsest ~initial:(fun s -> s) parallel_branches in
  Alcotest.(check int) "identity seed: no merging" 4 (C.size l.L.quotient)

let test_absorbing_states_stay_apart () =
  (* two absorbing states never merge under the default seed *)
  let c =
    chain_of
      [| [| 0.; 0.5; 0.5 |]; [| 0.; 1.; 0. |]; [| 0.; 0.; 1. |] |]
      [ "s"; "a"; "b" ]
  in
  let l = L.coarsest c in
  Alcotest.(check bool) "a and b distinct" true (l.L.block_of.(1) <> l.L.block_of.(2))

let test_is_lumpable () =
  Alcotest.(check bool) "good partition" true
    (L.is_lumpable parallel_branches ~partition:(function
      | 1 | 2 -> 1
      | 0 -> 0
      | _ -> 2));
  Alcotest.(check bool) "bad partition" false
    (L.is_lumpable parallel_branches ~partition:(function
      | 0 | 1 -> 0
      | _ -> 1))

let test_big_symmetric_ring_collapses () =
  (* k identical parallel chains from start to done: the quotient is
     always start -> stage -> done regardless of k *)
  let k = 20 in
  let n = (2 * k) + 2 in
  let m = M.create ~rows:n ~cols:n in
  (* state 0 = start; 1..k = first stage; k+1..2k = second stage;
     2k+1 = done *)
  for i = 1 to k do
    M.set m 0 i (1. /. float_of_int k);
    M.set m i (k + i) 1.;
    M.set m (k + i) ((2 * k) + 1) 1.
  done;
  M.set m ((2 * k) + 1) ((2 * k) + 1) 1.;
  let labels = List.init n (fun i -> Printf.sprintf "s%d" i) in
  let c = C.create ~states:(Ss.of_labels labels) m in
  let l = L.coarsest c in
  Alcotest.(check int) "four blocks" 4 (C.size l.L.quotient);
  check_close "quotient length preserved" 3.
    (Dtmc.Absorbing.expected_steps l.L.quotient ~from:l.L.block_of.(0))

let test_lumped_zeroconf_below_roundtrip () =
  (* with r far below the round trip every probe hop is certain; the
     chain is a deterministic pipeline and cannot lump (each stage is a
     different distance from error), which the refinement must detect *)
  let drm = Zeroconf.Drm.build Zeroconf.Params.figure2 ~n:4 ~r:0.1 in
  let l = L.coarsest drm.Zeroconf.Drm.chain in
  Alcotest.(check int) "no spurious merging" 7 (C.size l.L.quotient)

let () =
  Alcotest.run "lumping"
    [ ( "coarsest",
        [ Alcotest.test_case "symmetric branches" `Quick test_symmetric_branches_lump;
          Alcotest.test_case "preserves absorption" `Quick
            test_quotient_preserves_absorption;
          Alcotest.test_case "asymmetric stays" `Quick test_asymmetric_chain_does_not_lump;
          Alcotest.test_case "initial respected" `Quick test_initial_partition_respected;
          Alcotest.test_case "absorbing apart" `Quick test_absorbing_states_stay_apart;
          Alcotest.test_case "big symmetric collapse" `Quick
            test_big_symmetric_ring_collapses;
          Alcotest.test_case "zeroconf pipeline" `Quick
            test_lumped_zeroconf_below_roundtrip ] );
      ( "checker",
        [ Alcotest.test_case "is_lumpable" `Quick test_is_lumpable ] ) ]
