module L = Numerics.Logspace

let check_float = Alcotest.(check (float 1e-9))
let to_f = L.to_float
let of_f = L.of_float

let test_roundtrip () =
  List.iter
    (fun x ->
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %g" x)
        true
        (Numerics.Safe_float.approx_eq ~rtol:1e-12 x (to_f (of_f x))))
    [ 0.; 1.; -1.; 0.5; -123.456; 1e300; -1e-300 ]

let test_constants () =
  check_float "zero" 0. (to_f L.zero);
  check_float "one" 1. (to_f L.one);
  check_float "minus_one" (-1.) (to_f L.minus_one);
  Alcotest.(check bool) "zero is zero" true (L.is_zero L.zero);
  Alcotest.(check bool) "one is not zero" false (L.is_zero L.one)

let test_add_signs () =
  check_float "pos + pos" 5. (to_f (L.add (of_f 2.) (of_f 3.)));
  check_float "pos + neg" (-1.) (to_f (L.add (of_f 2.) (of_f (-3.))));
  check_float "neg + pos" 1. (to_f (L.add (of_f (-2.)) (of_f 3.)));
  check_float "cancel exactly" 0. (to_f (L.add (of_f 2.) (of_f (-2.))));
  check_float "add zero" 7. (to_f (L.add L.zero (of_f 7.)))

let test_mul_div () =
  check_float "mul" (-6.) (to_f (L.mul (of_f 2.) (of_f (-3.))));
  check_float "mul by zero" 0. (to_f (L.mul L.zero (of_f 3.)));
  check_float "div" (-2.) (to_f (L.div (of_f 6.) (of_f (-3.))));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (L.div L.one L.zero))

let test_pow () =
  check_float "cube" (-8.) (to_f (L.pow (of_f (-2.)) 3));
  check_float "square" 4. (to_f (L.pow (of_f (-2.)) 2));
  check_float "zero^0 = 1" 1. (to_f (L.pow L.zero 0));
  check_float "zero^5 = 0" 0. (to_f (L.pow L.zero 5));
  Alcotest.check_raises "zero^-1" Division_by_zero (fun () ->
      ignore (L.pow L.zero (-1)))

let test_beyond_double_range () =
  (* (1e-300)^5 underflows doubles but stays exact in log space *)
  let tiny = L.pow (of_f 1e-300) 5 in
  check_float "log magnitude" (5. *. log 1e-300) (L.log_abs tiny);
  (* multiplying back up recovers a representable value *)
  let back = L.mul tiny (L.pow (of_f 1e300) 5) in
  check_float "recovered" 1. (to_f back);
  (* the paper's extreme: q * E * pi with E = 1e35, pi ~ 1e-120 *)
  let product = L.mul (L.mul (of_f 0.0154) (of_f 1e35)) (of_f 1e-120) in
  Alcotest.(check bool) "representable either way" true
    (Numerics.Safe_float.approx_eq ~rtol:1e-9 (to_f product) (0.0154 *. 1e-85))

let test_compare () =
  Alcotest.(check bool) "2 < 3" true L.(of_f 2. < of_f 3.);
  Alcotest.(check bool) "-3 < -2" true L.(of_f (-3.) < of_f (-2.));
  Alcotest.(check bool) "-1 < 1" true L.(of_f (-1.) < of_f 1.);
  Alcotest.(check bool) "zero <= zero" true L.(L.zero <= L.zero);
  Alcotest.(check bool) "equal" true (L.equal (of_f 5.) (of_f 5.));
  Alcotest.(check int) "compare sign" (-1) (L.compare (of_f 1.) (of_f 2.))

let test_sum_prod () =
  check_float "sum" 6. (to_f (L.sum [ of_f 1.; of_f 2.; of_f 3. ]));
  check_float "empty sum" 0. (to_f (L.sum []));
  check_float "prod" 24. (to_f (L.prod [ of_f 2.; of_f 3.; of_f 4. ]));
  check_float "empty prod" 1. (to_f (L.prod []))

let test_nan_rejected () =
  Alcotest.check_raises "nan" (Invalid_argument "Logspace.of_float: nan")
    (fun () -> ignore (of_f Float.nan))

let finite_float = QCheck.float_range (-1e8) 1e8

let prop_add_matches =
  QCheck.Test.make ~name:"add agrees with float add" ~count:1000
    QCheck.(pair finite_float finite_float)
    (fun (a, b) ->
      Numerics.Safe_float.approx_eq ~rtol:1e-9 ~atol:1e-6
        (to_f (L.add (of_f a) (of_f b)))
        (a +. b))

let prop_mul_matches =
  QCheck.Test.make ~name:"mul agrees with float mul" ~count:1000
    QCheck.(pair finite_float finite_float)
    (fun (a, b) ->
      Numerics.Safe_float.approx_eq ~rtol:1e-9 ~atol:1e-6
        (to_f (L.mul (of_f a) (of_f b)))
        (a *. b))

let prop_compare_matches =
  QCheck.Test.make ~name:"compare agrees with Float.compare" ~count:1000
    QCheck.(pair finite_float finite_float)
    (fun (a, b) -> L.compare (of_f a) (of_f b) = Float.compare a b)

let prop_distributive_sign =
  QCheck.Test.make ~name:"neg distributes over add" ~count:500
    QCheck.(pair finite_float finite_float)
    (fun (a, b) ->
      let lhs = L.neg (L.add (of_f a) (of_f b)) in
      let rhs = L.add (L.neg (of_f a)) (L.neg (of_f b)) in
      Numerics.Safe_float.approx_eq ~rtol:1e-9 ~atol:1e-6 (to_f lhs) (to_f rhs))

let () =
  Alcotest.run "logspace"
    [ ( "basics",
        [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "nan rejected" `Quick test_nan_rejected ] );
      ( "arithmetic",
        [ Alcotest.test_case "add with signs" `Quick test_add_signs;
          Alcotest.test_case "mul/div" `Quick test_mul_div;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "beyond double range" `Quick test_beyond_double_range ] );
      ( "ordering",
        [ Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "sum/prod" `Quick test_sum_prod ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_add_matches; prop_mul_matches; prop_compare_matches;
            prop_distributive_sign ] ) ]
