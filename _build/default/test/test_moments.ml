module M = Dist.Moments
module F = Dist.Families

let check_close ?(tol = 1e-5) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let test_exponential_moments () =
  let d = F.exponential ~rate:4. () in
  check_close "mean 1/4" 0.25 (M.conditional_mean d);
  check_close "second moment 2/rate^2" 0.125 (M.conditional_second_moment d);
  check_close "variance 1/16" 0.0625 (M.conditional_variance d);
  check_close "std 1/4" 0.25 (M.conditional_std d)

let test_paper_fx_mean () =
  (* the paper's convention: mean reply time d + 1/lambda, conditional on
     arrival, also for a defective distribution *)
  let d = F.shifted_exponential ~mass:(1. -. 1e-5) ~rate:10. ~delay:1. () in
  check_close "d + 1/lambda" 1.1 (M.conditional_mean d)

let test_heavily_defective_mean_unaffected () =
  (* the conditional mean must not depend on the loss mass *)
  let light = F.shifted_exponential ~mass:0.99 ~rate:5. ~delay:0.5 () in
  let heavy = F.shifted_exponential ~mass:0.5 ~rate:5. ~delay:0.5 () in
  check_close "same conditional mean" (M.conditional_mean light)
    (M.conditional_mean heavy)

let test_uniform_moments () =
  let d = F.uniform ~lo:1. ~hi:3. () in
  check_close "mean 2" 2. (M.conditional_mean d);
  check_close "variance (hi-lo)^2/12" (1. /. 3.) (M.conditional_variance d)

let test_deterministic_moments () =
  let d = F.deterministic ~mass:0.7 ~delay:2.5 () in
  check_close "mean is the atom" 2.5 (M.conditional_mean d);
  check_close "zero variance" 0. (M.conditional_variance d)

let test_erlang_moments () =
  let d = F.erlang ~stages:4 ~rate:2. () in
  check_close "mean k/rate" 2. (M.conditional_mean d);
  check_close "variance k/rate^2" 1. (M.conditional_variance d)

let prop_matches_stored_mean =
  let gen =
    QCheck.Gen.(
      let* mass = float_range 0.4 1.0 in
      let* rate = float_range 0.5 10. in
      let* delay = float_range 0. 2. in
      oneofl
        [ F.shifted_exponential ~mass ~rate ~delay ();
          F.exponential ~mass ~rate ();
          F.uniform ~mass ~lo:delay ~hi:(delay +. 2.) ();
          F.erlang ~mass ~stages:3 ~rate () ])
  in
  QCheck.Test.make ~name:"numeric mean = closed-form mean" ~count:60
    (QCheck.make gen)
    (fun d ->
      match d.Dist.Distribution.mean with
      | None -> true
      | Some closed ->
          Numerics.Safe_float.approx_eq ~rtol:1e-4 ~atol:1e-6 closed
            (M.conditional_mean d))

let prop_matches_sampling =
  QCheck.Test.make ~name:"numeric mean = sampled mean" ~count:10
    QCheck.(pair (float_range 1. 8.) (float_range 0. 1.))
    (fun (rate, delay) ->
      let d = F.shifted_exponential ~rate ~delay () in
      let rng = Numerics.Rng.create 42 in
      let samples =
        Array.init 40_000 (fun _ ->
            match d.Dist.Distribution.sample rng with
            | Some x -> x
            | None -> 0.)
      in
      let sampled = Numerics.Safe_float.mean samples in
      Float.abs (sampled -. M.conditional_mean d) < 0.05 *. M.conditional_mean d)

let () =
  Alcotest.run "moments"
    [ ( "closed forms",
        [ Alcotest.test_case "exponential" `Quick test_exponential_moments;
          Alcotest.test_case "paper F_X" `Quick test_paper_fx_mean;
          Alcotest.test_case "defect invariance" `Quick
            test_heavily_defective_mean_unaffected;
          Alcotest.test_case "uniform" `Quick test_uniform_moments;
          Alcotest.test_case "deterministic" `Quick test_deterministic_moments;
          Alcotest.test_case "erlang" `Quick test_erlang_moments ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_matches_stored_mean; prop_matches_sampling ] ) ]
