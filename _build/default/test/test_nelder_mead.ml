module Nm = Numerics.Nelder_mead

let check_close ?(tol = 1e-4) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let test_quadratic_bowl () =
  let f x = ((x.(0) -. 3.) ** 2.) +. ((x.(1) +. 1.) ** 2.) in
  let r = Nm.minimize ~f [| 0.; 0. |] in
  Alcotest.(check bool) "converged" true r.Nm.converged;
  check_close "x0" 3. r.Nm.x.(0);
  check_close "x1" (-1.) r.Nm.x.(1);
  check_close ~tol:1e-8 "value" 0. r.Nm.fx

let test_rosenbrock () =
  let f x =
    (100. *. ((x.(1) -. (x.(0) *. x.(0))) ** 2.)) +. ((1. -. x.(0)) ** 2.)
  in
  let r = Nm.restarted ~f [| -1.2; 1. |] in
  check_close ~tol:1e-3 "x0" 1. r.Nm.x.(0);
  check_close ~tol:1e-3 "x1" 1. r.Nm.x.(1)

let test_one_dimensional () =
  let f x = (x.(0) -. 7.) ** 2. in
  let r = Nm.minimize ~f [| 0. |] in
  check_close ~tol:1e-4 "1-d smooth" 7. r.Nm.x.(0);
  (* kinks can stall the simplex when vertices straddle the minimum
     symmetrically; restarts get close but exactness is not promised *)
  let kink x = Float.abs (x.(0) -. 7.) in
  let r = Nm.restarted ~f:kink [| 0. |] in
  check_close ~tol:0.2 "1-d kink (approximate)" 7. r.Nm.x.(0)

let test_higher_dimensional () =
  (* 5-d sphere shifted *)
  let centre = [| 1.; -2.; 3.; -4.; 5. |] in
  let f x =
    Numerics.Safe_float.sum (Array.mapi (fun i xi -> (xi -. centre.(i)) ** 2.) x)
  in
  let r = Nm.restarted ~f (Array.make 5 0.) in
  Array.iteri
    (fun i c -> check_close ~tol:1e-3 (Printf.sprintf "coord %d" i) c r.Nm.x.(i))
    centre

let test_infinity_as_constraint () =
  (* minimize (x - 2)^2 subject to x <= 1 encoded by infinity *)
  let f x = if x.(0) > 1. then infinity else (x.(0) -. 2.) ** 2. in
  let r = Nm.restarted ~f [| 0. |] in
  check_close ~tol:1e-5 "constrained optimum at the boundary" 1. r.Nm.x.(0)

let test_respects_max_iter () =
  let f x = (x.(0) ** 2.) +. (x.(1) ** 2.) in
  let r = Nm.minimize ~max_iter:3 ~f [| 10.; 10. |] in
  Alcotest.(check bool) "not converged" false r.Nm.converged;
  Alcotest.(check int) "stopped at budget" 3 r.Nm.iterations

let test_guards () =
  Alcotest.check_raises "empty start"
    (Invalid_argument "Nelder_mead.minimize: empty starting point") (fun () ->
      ignore (Nm.minimize ~f:(fun _ -> 0.) [||]));
  Alcotest.check_raises "infinite start"
    (Invalid_argument "Nelder_mead.minimize: objective not finite at start")
    (fun () -> ignore (Nm.minimize ~f:(fun _ -> infinity) [| 0. |]));
  Alcotest.check_raises "bad scale"
    (Invalid_argument "Nelder_mead.minimize: scale dimension mismatch")
    (fun () -> ignore (Nm.minimize ~scale:[| 1. |] ~f:(fun _ -> 0.) [| 0.; 0. |]))

let test_calibration_cross_check () =
  (* joint (log E, c) search reproduces the Sec. 4.5 wireless numbers:
     minimize the violation of (r_opt(4) = 2, n = 4 optimal at margin) *)
  let network =
    Zeroconf.Params.v ~name:"sec45"
      ~delay:(Dist.Families.shifted_exponential ~mass:(1. -. 1e-5) ~rate:10. ~delay:1. ())
      ~q:(Zeroconf.Params.q_of_hosts 1000) ~probe_cost:0. ~error_cost:0.
  in
  let objective x =
    let log_e = x.(0) and c = x.(1) in
    if c <= 0. || c > 32. || log_e < 20. || log_e > 120. then infinity
    else begin
      let p =
        Zeroconf.Params.with_costs ~probe_cost:c ~error_cost:(exp log_e) network
      in
      (* squared violations: r_opt(4) = 2 and indifference with n = 5 *)
      let r4 = (Zeroconf.Optimize.optimal_r p ~n:4).Numerics.Minimize.x in
      let c4 = Zeroconf.Cost.mean p ~n:4 ~r:r4 in
      let r5 = (Zeroconf.Optimize.optimal_r p ~n:5).Numerics.Minimize.x in
      let c5 = Zeroconf.Cost.mean p ~n:5 ~r:r5 in
      ((r4 -. 2.) ** 2.) +. (((c4 -. c5) /. c4) ** 2.)
    end
  in
  let r = Nm.restarted ~rounds:2 ~f:objective [| log 1e20; 2. |] in
  let e = exp r.Nm.x.(0) and c = r.Nm.x.(1) in
  Alcotest.(check bool)
    (Printf.sprintf "E = %.3g in [1e20, 2e21]" e)
    true
    (e > 1e20 && e < 2e21);
  Alcotest.(check bool)
    (Printf.sprintf "c = %.3f in [2, 4.5]" c)
    true
    (c > 2. && c < 4.5)

let () =
  Alcotest.run "nelder_mead"
    [ ( "classic objectives",
        [ Alcotest.test_case "quadratic" `Quick test_quadratic_bowl;
          Alcotest.test_case "rosenbrock" `Quick test_rosenbrock;
          Alcotest.test_case "1-d" `Quick test_one_dimensional;
          Alcotest.test_case "5-d" `Quick test_higher_dimensional ] );
      ( "robustness",
        [ Alcotest.test_case "infinity constraints" `Quick test_infinity_as_constraint;
          Alcotest.test_case "iteration budget" `Quick test_respects_max_iter;
          Alcotest.test_case "guards" `Quick test_guards ] );
      ( "application",
        [ Alcotest.test_case "Sec. 4.5 joint calibration" `Slow
            test_calibration_cross_check ] ) ]
