(* The protocol state machine, validated against the analytic model.

   The aggregate runner samples reply delays straight from F_X with the
   DRM's period-boundary semantics, so its collision rate and mean cost
   must match Eqs. 3 and 4 within Monte-Carlo error. *)

module Params = Zeroconf.Params
module Scenario = Netsim.Scenario
module Newcomer = Netsim.Newcomer
module Metrics = Netsim.Metrics

let mc_scenario =
  Params.v ~name:"mc"
    ~delay:(Dist.Families.shifted_exponential ~mass:0.9 ~rate:2. ~delay:0.5 ())
    ~q:0.25 ~probe_cost:1. ~error_cost:100.

let pool_size = 1024
let occupied = 256 (* q = 0.25 exactly *)

let config ~n ~r =
  Newcomer.drm_config ~n ~r ~probe_cost:mc_scenario.Params.probe_cost
    ~error_cost:mc_scenario.Params.error_cost

let run_aggregate ~n ~r ~trials ~seed =
  Scenario.run_aggregate ~delay:mc_scenario.Params.delay ~occupied ~pool_size
    ~config:(config ~n ~r) ~trials ~rng:(Numerics.Rng.create seed) ()

let test_aggregate_cost_matches_eq3 () =
  List.iter
    (fun (n, r) ->
      let outcomes = run_aggregate ~n ~r ~trials:30_000 ~seed:1 in
      let agg = Metrics.aggregate outcomes in
      let lo, hi = agg.Metrics.cost_ci in
      let truth = Zeroconf.Cost.mean mc_scenario ~n ~r in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d r=%g: CI [%g, %g] covers C = %g" n r lo hi truth)
        true
        (* allow a hair of slack beyond the 95% interval *)
        (truth > lo -. (0.02 *. truth) && truth < hi +. (0.02 *. truth)))
    [ (1, 0.8); (3, 0.7); (4, 1.2) ]

let test_aggregate_collision_matches_eq4 () =
  let n = 2 and r = 0.8 in
  let outcomes = run_aggregate ~n ~r ~trials:60_000 ~seed:2 in
  let agg = Metrics.aggregate outcomes in
  let lo, hi = agg.Metrics.collision_ci in
  let truth = Zeroconf.Reliability.error_probability mc_scenario ~n ~r in
  Alcotest.(check bool)
    (Printf.sprintf "CI [%g, %g] covers E = %g" lo hi truth)
    true
    (truth > lo -. 0.002 && truth < hi +. 0.002)

let test_aggregate_config_time_free_network () =
  (* nobody connected: config time is exactly n * r, cost n (r + c) *)
  let n = 4 and r = 0.5 in
  let outcomes =
    Scenario.run_aggregate ~delay:mc_scenario.Params.delay ~occupied:0 ~pool_size
      ~config:(config ~n ~r) ~trials:50 ~rng:(Numerics.Rng.create 3) ()
  in
  Array.iter
    (fun (o : Metrics.outcome) ->
      Alcotest.(check (float 1e-12)) "time" 2. o.Metrics.config_time;
      Alcotest.(check (float 1e-12)) "cost" 6. o.Metrics.cost;
      Alcotest.(check int) "probes" 4 o.Metrics.probes_sent;
      Alcotest.(check bool) "no collision" false o.Metrics.collided)
    outcomes

let test_aggregate_immediate_abort_never_slower () =
  (* immediate abort can only shorten configuration time *)
  let n = 3 and r = 1. in
  let drm_cfg = config ~n ~r in
  let fast_cfg = { drm_cfg with Newcomer.immediate_abort = true } in
  let run cfg seed =
    let outcomes =
      Scenario.run_aggregate ~delay:mc_scenario.Params.delay ~occupied ~pool_size
        ~config:cfg ~trials:20_000 ~rng:(Numerics.Rng.create seed) ()
    in
    (Metrics.aggregate outcomes).Metrics.config_time.Numerics.Stats.mean
  in
  let slow = run drm_cfg 4 and fast = run fast_cfg 4 in
  Alcotest.(check bool)
    (Printf.sprintf "immediate %.4f <= boundary %.4f" fast slow)
    true (fast <= slow)

(* ---------------- detailed (packet-level) runner ---------------- *)

let one_way = Dist.Families.deterministic ~delay:0.05 ()

let test_detailed_free_network () =
  let outcomes =
    Scenario.run_detailed ~loss:0. ~one_way ~occupied:0 ~pool_size:64
      ~config:(config ~n:3 ~r:0.5) ~trials:20 ~rng:(Numerics.Rng.create 5) ()
  in
  Array.iter
    (fun (o : Metrics.outcome) ->
      Alcotest.(check bool) "clean" false o.Metrics.collided;
      Alcotest.(check int) "3 probes" 3 o.Metrics.probes_sent;
      Alcotest.(check int) "no restarts" 0 o.Metrics.restarts)
    outcomes

let test_detailed_certain_conflict_with_perfect_link () =
  (* one free address in a pool of 2, perfect link: the newcomer may hit
     the occupied address but can never accept it *)
  let outcomes =
    Scenario.run_detailed ~loss:0. ~one_way ~occupied:1 ~pool_size:2
      ~config:(config ~n:2 ~r:0.5) ~trials:50 ~rng:(Numerics.Rng.create 6) ()
  in
  Array.iter
    (fun (o : Metrics.outcome) ->
      Alcotest.(check bool) "never collides on a perfect link" false
        o.Metrics.collided)
    outcomes

let test_detailed_total_loss_always_collides () =
  (* loss = 1: replies never arrive, so picking an occupied address is
     always accepted erroneously.  With 63/64 occupied that's almost
     every trial. *)
  let outcomes =
    Scenario.run_detailed ~loss:1. ~one_way ~occupied:63 ~pool_size:64
      ~config:(config ~n:2 ~r:0.2) ~trials:200 ~rng:(Numerics.Rng.create 7) ()
  in
  let agg = Metrics.aggregate outcomes in
  Alcotest.(check bool)
    (Printf.sprintf "collision rate %.3f near 63/64" agg.Metrics.collision_rate)
    true
    (Float.abs (agg.Metrics.collision_rate -. (63. /. 64.)) < 0.05);
  (* and nobody ever restarts: no reply can be heard *)
  Alcotest.(check (float 1e-9)) "no restarts" 0. agg.Metrics.mean_restarts

let test_detailed_matches_aggregate_and_eq3 () =
  (* end-to-end fidelity: legs of deterministic 0.25 s + exponential
     processing at rate 2, each leg losing 1 - sqrt(0.9), compose to the
     mc_scenario F_X (delay 0.5, rate 2, mass 0.9) *)
  let leg_loss = 1. -. sqrt 0.9 in
  let n = 3 and r = 1. in
  let outcomes =
    Scenario.run_detailed ~loss:leg_loss
      ~one_way:(Dist.Families.deterministic ~delay:0.25 ())
      ~processing:(Dist.Families.exponential ~rate:2. ())
      ~occupied ~pool_size ~config:(config ~n ~r) ~trials:3_000
      ~rng:(Numerics.Rng.create 8) ()
  in
  let agg = Metrics.aggregate outcomes in
  let lo, hi = agg.Metrics.cost_ci in
  let truth = Zeroconf.Cost.mean mc_scenario ~n ~r in
  Alcotest.(check bool)
    (Printf.sprintf "packet-level CI [%g, %g] covers Eq. 3 = %g" lo hi truth)
    true
    (truth > lo -. (0.05 *. truth) && truth < hi +. (0.05 *. truth))

let test_rate_limit_slows_retries () =
  (* with rate limiting after 1 conflict and a crowded pool, restarts
     incur the 60 s penalty, which shows up in config time *)
  let cfg =
    { (config ~n:2 ~r:0.2) with Newcomer.rate_limit = Some (1, 60.) }
  in
  let outcomes =
    Scenario.run_detailed ~loss:0. ~one_way ~occupied:60 ~pool_size:64
      ~config:cfg ~trials:100 ~rng:(Numerics.Rng.create 9) ()
  in
  let slow =
    Array.exists (fun (o : Metrics.outcome) -> o.Metrics.config_time > 59.) outcomes
  in
  Alcotest.(check bool) "some trial hit the rate limiter" true slow

let test_trace_records_protocol_steps () =
  let _, log =
    Scenario.trace_one ~loss:0. ~one_way ~occupied:8 ~pool_size:16
      ~config:(config ~n:2 ~r:0.5) ~rng:(Numerics.Rng.create 10) ()
  in
  Alcotest.(check bool) "trace non-empty" true (log <> []);
  let has_substring needle (_, line) =
    let nl = String.length needle and ll = String.length line in
    let rec scan i = i + nl <= ll && (String.sub line i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "someone tried an address" true
    (List.exists (has_substring "tries") log);
  Alcotest.(check bool) "a probe was sent" true
    (List.exists (has_substring "probe") log);
  Alcotest.(check bool) "an address was accepted" true
    (List.exists (has_substring "accepts") log)

let test_config_validation () =
  let engine = Netsim.Engine.create () in
  let rng = Numerics.Rng.create 11 in
  let link = Netsim.Link.create ~engine ~rng ~loss:0. ~one_way in
  let pool = Netsim.Address_pool.create ~size:8 () in
  let bad = { (config ~n:1 ~r:1.) with Newcomer.probes = 0 } in
  Alcotest.check_raises "probes < 1" (Invalid_argument "Newcomer: probes < 1")
    (fun () ->
      ignore (Newcomer.start ~engine ~link ~pool ~rng ~config:bad ~on_done:ignore ()))

let () =
  Alcotest.run "newcomer"
    [ ( "aggregate vs model",
        [ Alcotest.test_case "cost matches Eq. 3" `Quick
            test_aggregate_cost_matches_eq3;
          Alcotest.test_case "collision matches Eq. 4" `Quick
            test_aggregate_collision_matches_eq4;
          Alcotest.test_case "free network exact" `Quick
            test_aggregate_config_time_free_network;
          Alcotest.test_case "immediate abort faster" `Quick
            test_aggregate_immediate_abort_never_slower ] );
      ( "packet level",
        [ Alcotest.test_case "free network" `Quick test_detailed_free_network;
          Alcotest.test_case "perfect link never collides" `Quick
            test_detailed_certain_conflict_with_perfect_link;
          Alcotest.test_case "total loss always collides" `Quick
            test_detailed_total_loss_always_collides;
          Alcotest.test_case "matches Eq. 3 end-to-end" `Quick
            test_detailed_matches_aggregate_and_eq3;
          Alcotest.test_case "rate limiting" `Quick test_rate_limit_slows_retries;
          Alcotest.test_case "tracing" `Quick test_trace_records_protocol_steps;
          Alcotest.test_case "validation" `Quick test_config_validation ] ) ]
