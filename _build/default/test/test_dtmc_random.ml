(* Property tests over randomly generated chains: the solver invariants
   that must hold for any absorbing (or irreducible) chain, not just the
   hand-built ones. *)

module M = Numerics.Matrix
module C = Dtmc.Chain
module Ss = Dtmc.State_space

(* random absorbing chain: [transient] transient states, 2 absorbing;
   every transient row mixes a random distribution over all states with
   a guaranteed epsilon of direct absorption, so absorption is certain *)
let absorbing_chain_gen =
  QCheck.Gen.(
    let* transient = int_range 1 8 in
    let* seed = int_range 0 1_000_000 in
    return
      (let rng = Numerics.Rng.create seed in
       let n = transient + 2 in
       let m = M.create ~rows:n ~cols:n in
       for i = 0 to transient - 1 do
         let weights = Array.init n (fun _ -> Numerics.Rng.float rng +. 0.01) in
         (* force some direct absorption mass *)
         weights.(transient) <- weights.(transient) +. 0.3;
         let total = Numerics.Safe_float.sum weights in
         Array.iteri (fun j w -> M.set m i j (w /. total)) weights
       done;
       M.set m transient transient 1.;
       M.set m (transient + 1) (transient + 1) 1.;
       let labels = List.init n (fun i -> Printf.sprintf "s%d" i) in
       C.create ~states:(Ss.of_labels labels) m))

let prop_absorption_rows_sum_to_one =
  QCheck.Test.make ~name:"absorption probabilities sum to 1" ~count:200
    (QCheck.make absorbing_chain_gen)
    (fun chain ->
      let b = Dtmc.Absorbing.absorption_probabilities chain in
      let ok = ref true in
      for i = 0 to M.rows b - 1 do
        if not (Numerics.Safe_float.approx_eq ~rtol:1e-9 (Numerics.Safe_float.sum (M.row b i)) 1.)
        then ok := false
      done;
      !ok)

let prop_fundamental_diagonal_at_least_one =
  QCheck.Test.make ~name:"fundamental matrix diagonal >= 1" ~count:200
    (QCheck.make absorbing_chain_gen)
    (fun chain ->
      let d = Dtmc.Absorbing.decompose chain in
      let f = Dtmc.Absorbing.fundamental d in
      let ok = ref true in
      for i = 0 to M.rows f - 1 do
        if M.get f i i < 1. -. 1e-9 then ok := false
      done;
      !ok)

let prop_expected_steps_positive_and_consistent =
  QCheck.Test.make ~name:"expected steps = row sum of fundamental matrix"
    ~count:200
    (QCheck.make absorbing_chain_gen)
    (fun chain ->
      let d = Dtmc.Absorbing.decompose chain in
      let f = Dtmc.Absorbing.fundamental d in
      Array.for_all
        (fun (pos, original) ->
          let via_solver = Dtmc.Absorbing.expected_steps chain ~from:original in
          let via_fundamental = Numerics.Safe_float.sum (M.row f pos) in
          Numerics.Safe_float.approx_eq ~rtol:1e-8 via_solver via_fundamental)
        (Array.mapi (fun pos original -> (pos, original)) d.Dtmc.Absorbing.transient))

let prop_reachability_of_all_absorbing_is_one =
  QCheck.Test.make ~name:"P(reach some absorbing state) = 1" ~count:200
    (QCheck.make absorbing_chain_gen)
    (fun chain ->
      let target = Dtmc.Chain.absorbing_states chain in
      let p = Dtmc.Reachability.prob chain ~target in
      Array.for_all (fun v -> Numerics.Safe_float.approx_eq ~rtol:1e-9 v 1.) p)

let prop_reachability_matches_absorption =
  QCheck.Test.make ~name:"reachability of one absorbing state = absorption prob"
    ~count:150
    (QCheck.make absorbing_chain_gen)
    (fun chain ->
      match Dtmc.Chain.absorbing_states chain with
      | a :: _ ->
          let reach = Dtmc.Reachability.prob chain ~target:[ a ] in
          List.for_all
            (fun s ->
              Numerics.Safe_float.approx_eq ~rtol:1e-8 ~atol:1e-12 reach.(s)
                (Dtmc.Absorbing.absorption_probability chain ~from:s ~into:a))
            (Dtmc.Chain.transient_states chain)
      | [] -> false)

let prop_variance_non_negative =
  QCheck.Test.make ~name:"reward variance >= 0" ~count:150
    (QCheck.make absorbing_chain_gen)
    (fun chain ->
      (* unit cost per step *)
      let n = Dtmc.Chain.size chain in
      let costs = M.create ~rows:n ~cols:n in
      for i = 0 to n - 1 do
        if not (Dtmc.Chain.is_absorbing chain i) then
          List.iter
            (fun (j, _) -> M.set costs i j 1.)
            (Dtmc.Chain.successors chain i)
      done;
      let reward = Dtmc.Reward.create ~transition_rewards:costs chain in
      List.for_all
        (fun s -> Dtmc.Absorbing.variance_total_reward reward ~from:s >= -1e-9)
        (Dtmc.Chain.transient_states chain))

let prop_bsccs_are_absorbing_singletons =
  QCheck.Test.make ~name:"BSCCs of these chains are the absorbing singletons"
    ~count:200
    (QCheck.make absorbing_chain_gen)
    (fun chain ->
      let bsccs = List.sort compare (Dtmc.Scc.bottom_components chain) in
      let expected =
        List.sort compare (List.map (fun a -> [ a ]) (Dtmc.Chain.absorbing_states chain))
      in
      bsccs = expected)

(* random irreducible lazy chains for the stationary solvers *)
let irreducible_chain_gen =
  QCheck.Gen.(
    let* n = int_range 2 8 in
    let* seed = int_range 0 1_000_000 in
    return
      (let rng = Numerics.Rng.create seed in
       let m = M.create ~rows:n ~cols:n in
       for i = 0 to n - 1 do
         let weights = Array.init n (fun _ -> Numerics.Rng.float rng +. 0.05) in
         (* laziness: self-weight boost makes the chain aperiodic *)
         weights.(i) <- weights.(i) +. 0.5;
         let total = Numerics.Safe_float.sum weights in
         Array.iteri (fun j w -> M.set m i j (w /. total)) weights
       done;
       let labels = List.init n (fun i -> Printf.sprintf "s%d" i) in
       C.create ~states:(Ss.of_labels labels) m))

let prop_gth_is_stationary =
  QCheck.Test.make ~name:"GTH result is a stationary distribution" ~count:200
    (QCheck.make irreducible_chain_gen)
    (fun chain ->
      Dtmc.Stationary.is_stationary ~tol:1e-8 chain (Dtmc.Stationary.gth chain))

let prop_gth_matches_power =
  QCheck.Test.make ~name:"GTH = power iteration on lazy chains" ~count:100
    (QCheck.make irreducible_chain_gen)
    (fun chain ->
      let gth = Dtmc.Stationary.gth chain in
      let power = Dtmc.Stationary.power_iteration ~tol:1e-13 chain in
      Numerics.Vector.approx_eq ~rtol:1e-6 ~atol:1e-9 gth power)

let prop_simulation_consistent_with_absorption =
  QCheck.Test.make ~name:"simulated absorption inside Wilson CI (99% of runs)"
    ~count:30
    (QCheck.make absorbing_chain_gen)
    (fun chain ->
      match Dtmc.Chain.absorbing_states chain with
      | a :: _ ->
          let truth = Dtmc.Absorbing.absorption_probability chain ~from:0 ~into:a in
          let rng = Numerics.Rng.create 7 in
          let est =
            Dtmc.Simulate.estimate_absorption ~trials:3_000 ~rng chain ~from:0
              ~into:a
          in
          (* generous margin: qcheck runs many cases *)
          truth > est.Dtmc.Simulate.ci_lo -. 0.05
          && truth < est.Dtmc.Simulate.ci_hi +. 0.05
      | [] -> false)

let () =
  Alcotest.run "dtmc_random"
    [ ( "absorbing invariants",
        List.map QCheck_alcotest.to_alcotest
          [ prop_absorption_rows_sum_to_one;
            prop_fundamental_diagonal_at_least_one;
            prop_expected_steps_positive_and_consistent;
            prop_reachability_of_all_absorbing_is_one;
            prop_reachability_matches_absorption; prop_variance_non_negative;
            prop_bsccs_are_absorbing_singletons ] );
      ( "stationary invariants",
        List.map QCheck_alcotest.to_alcotest
          [ prop_gth_is_stationary; prop_gth_matches_power ] );
      ( "simulation",
        [ QCheck_alcotest.to_alcotest prop_simulation_consistent_with_absorption ] ) ]
