module Cost = Zeroconf.Cost
module Params = Zeroconf.Params

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let check_rel msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.12g vs %.12g" msg expected actual)
    true
    (Numerics.Safe_float.approx_eq ~rtol:1e-9 expected actual)

let fig2 = Params.figure2

let test_at_zero_is_qE () =
  (* Sec. 4.2: C_n(0) = qE for every n *)
  check_rel "closed form" (fig2.Params.q *. fig2.Params.error_cost) (Cost.at_zero fig2);
  List.iter
    (fun n -> check_rel (Printf.sprintf "C_%d(0)" n) (Cost.at_zero fig2) (Cost.mean fig2 ~n ~r:0.))
    [ 1; 2; 3; 5; 8 ]

let test_figure2_draft_value () =
  (* regression pin: C(4, 2) on the figure2 scenario *)
  check_close ~tol:1e-4 "C(4, 2)" 16.0625 (Cost.mean fig2 ~n:4 ~r:2.)

let test_free_network_costs_n_probes () =
  (* with q = 0 there is never a collision: cost is exactly n (r + c) *)
  let p = Params.with_q fig2 0. in
  List.iter
    (fun (n, r) ->
      check_rel
        (Printf.sprintf "n=%d r=%g" n r)
        (float_of_int n *. (r +. p.Params.probe_cost))
        (Cost.mean p ~n ~r))
    [ (1, 0.5); (4, 2.); (7, 0.1) ]

let test_asymptote_approached () =
  (* for large r the cost approaches A_n(r) from wherever qE pi_n left it *)
  let n = 4 in
  let r = 50. in
  check_rel "C ~ A at large r" (Cost.asymptote fig2 ~n ~r) (Cost.mean fig2 ~n ~r)

let test_asymptote_linear () =
  let n = 3 in
  let a1 = Cost.asymptote fig2 ~n ~r:10. in
  let a2 = Cost.asymptote fig2 ~n ~r:20. in
  let a3 = Cost.asymptote fig2 ~n ~r:30. in
  check_rel "equal increments" (a2 -. a1) (a3 -. a2)

let test_asymptote_non_defective_limit () =
  (* with l = 1 the geometric factor (1-(1-l)^n)/l degenerates to n *)
  let p =
    Params.v ~name:"lossless"
      ~delay:(Dist.Families.shifted_exponential ~rate:10. ~delay:1. ())
      ~q:0.1 ~probe_cost:1. ~error_cost:10.
  in
  let n = 3 and r = 5. in
  let expected =
    (r +. 1.) *. ((3. *. 0.9) +. (0.1 *. 3.)) /. 0.9
  in
  check_rel "continuity at l = 1" expected (Cost.asymptote p ~n ~r)

let test_mean_log_agrees_in_range () =
  List.iter
    (fun (n, r) ->
      check_rel
        (Printf.sprintf "log path n=%d r=%g" n r)
        (Cost.mean fig2 ~n ~r)
        (Numerics.Logspace.to_float (Cost.mean_log fig2 ~n ~r)))
    [ (1, 0.5); (3, 2.); (4, 2.); (8, 0.7); (5, 30.) ]

let test_mean_log_beyond_double_range () =
  (* E = 1e308 * 1e40 overflows doubles; the log path keeps going *)
  let extreme = Params.with_costs ~error_cost:1e300 fig2 in
  let v = Cost.mean_log extreme ~n:1 ~r:0.1 in
  (* C_1(0.1) ~ qE since pi_1 = 1 below the round trip *)
  check_rel "log magnitude"
    (log (extreme.Params.q *. 1e300) )
    (Numerics.Logspace.log_abs v)

let test_derivative_sign_structure () =
  (* C_n falls to the minimum then rises: derivative negative before
     r_opt, positive after (figure2, n = 4, r_opt ~ 1.24) *)
  Alcotest.(check bool) "falling at 1.1" true (Cost.derivative fig2 ~n:4 ~r:1.1 < 0.);
  Alcotest.(check bool) "rising at 2.5" true (Cost.derivative fig2 ~n:4 ~r:2.5 > 0.)

let test_guards () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Cost.mean: n must be >= 1")
    (fun () -> ignore (Cost.mean fig2 ~n:0 ~r:1.));
  Alcotest.check_raises "negative r"
    (Invalid_argument "Cost.mean: negative listening period") (fun () ->
      ignore (Cost.mean fig2 ~n:1 ~r:(-0.1)))

(* property block: Eq. 3 must agree with the DRM matrix solution and
   stay within its structural bounds across random scenarios *)
let scenario_gen =
  QCheck.Gen.(
    let* loss = float_range 0. 0.5 in
    let* rate = float_range 0.5 20. in
    let* delay = float_range 0. 2. in
    let* q = float_range 0.01 0.9 in
    let* c = float_range 0. 5. in
    let* e = float_range 0. 1e4 in
    return
      (Params.v ~name:"prop"
         ~delay:(Dist.Families.shifted_exponential ~mass:(1. -. loss) ~rate ~delay ())
         ~q ~probe_cost:c ~error_cost:e))

let prop_eq3_matches_matrix_solution =
  QCheck.Test.make ~name:"Eq. 3 = generic absorbing-chain solve" ~count:200
    QCheck.(triple (make scenario_gen) (int_range 1 8) (float_range 0. 6.))
    (fun (p, n, r) ->
      let drm = Zeroconf.Drm.build p ~n ~r in
      Numerics.Safe_float.approx_eq ~rtol:1e-8 ~atol:1e-9
        (Cost.mean p ~n ~r)
        (Zeroconf.Drm.mean_cost drm))

let prop_float_matches_logspace =
  QCheck.Test.make ~name:"float and log-space evaluation agree" ~count:300
    QCheck.(triple (make scenario_gen) (int_range 1 8) (float_range 0. 6.))
    (fun (p, n, r) ->
      Numerics.Safe_float.approx_eq ~rtol:1e-7 ~atol:1e-9
        (Cost.mean p ~n ~r)
        (Numerics.Logspace.to_float (Cost.mean_log p ~n ~r)))

let prop_cost_at_least_free_run =
  QCheck.Test.make ~name:"cost >= n (r + c) (1 - q): the free-run floor"
    ~count:300
    QCheck.(triple (make scenario_gen) (int_range 1 8) (float_range 0. 6.))
    (fun (p, n, r) ->
      Cost.mean p ~n ~r
      >= (float_of_int n *. (r +. p.Params.probe_cost) *. (1. -. p.Params.q)) -. 1e-9)

let prop_cost_increasing_in_error_cost =
  QCheck.Test.make ~name:"cost is non-decreasing in E" ~count:200
    QCheck.(triple (make scenario_gen) (int_range 1 6) (float_range 0.1 5.))
    (fun (p, n, r) ->
      let hi = Params.with_costs ~error_cost:(p.Params.error_cost +. 100.) p in
      Cost.mean hi ~n ~r >= Cost.mean p ~n ~r -. 1e-9)

let prop_cost_increasing_in_postage =
  QCheck.Test.make ~name:"cost is increasing in c" ~count:200
    QCheck.(triple (make scenario_gen) (int_range 1 6) (float_range 0.1 5.))
    (fun (p, n, r) ->
      let hi = Params.with_costs ~probe_cost:(p.Params.probe_cost +. 1.) p in
      Cost.mean hi ~n ~r > Cost.mean p ~n ~r -. 1e-12)

let () =
  Alcotest.run "cost"
    [ ( "boundary behaviour",
        [ Alcotest.test_case "C_n(0) = qE" `Quick test_at_zero_is_qE;
          Alcotest.test_case "draft value" `Quick test_figure2_draft_value;
          Alcotest.test_case "free network" `Quick test_free_network_costs_n_probes ] );
      ( "asymptote",
        [ Alcotest.test_case "approached" `Quick test_asymptote_approached;
          Alcotest.test_case "linear" `Quick test_asymptote_linear;
          Alcotest.test_case "l = 1 continuity" `Quick
            test_asymptote_non_defective_limit ] );
      ( "log-space path",
        [ Alcotest.test_case "agrees in range" `Quick test_mean_log_agrees_in_range;
          Alcotest.test_case "beyond double range" `Quick
            test_mean_log_beyond_double_range ] );
      ( "shape",
        [ Alcotest.test_case "derivative signs" `Quick test_derivative_sign_structure;
          Alcotest.test_case "guards" `Quick test_guards ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_eq3_matches_matrix_solution; prop_float_matches_logspace;
            prop_cost_at_least_free_run; prop_cost_increasing_in_error_cost;
            prop_cost_increasing_in_postage ] ) ]
