module Axis = Output.Axis
module Svg = Output.Svg
module Table = Output.Table

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

(* ---------------- axes ---------------- *)

let test_axis_projection_linear () =
  let a = Axis.create ~lo:0. ~hi:10. () in
  check_close "lo" 0. (Axis.project a 0.);
  check_close "hi" 1. (Axis.project a 10.);
  check_close "mid" 0.5 (Axis.project a 5.);
  check_close "clamped below" 0. (Axis.project a (-5.));
  check_close "clamped above" 1. (Axis.project a 15.)

let test_axis_projection_log () =
  let a = Axis.create ~scale:Axis.Log10 ~lo:1. ~hi:100. () in
  check_close "mid decade" 0.5 (Axis.project a 10.);
  check_close "non-positive clamps" 0. (Axis.project a (-1.))

let test_axis_ticks_linear () =
  let a = Axis.create ~lo:0. ~hi:10. () in
  let ticks = Axis.ticks a in
  Alcotest.(check bool) "a few ticks" true (List.length ticks >= 4);
  List.iter
    (fun (v, _) ->
      Alcotest.(check bool) "in range" true (v >= 0. && v <= 10.))
    ticks;
  (* ticks are nice multiples *)
  List.iter
    (fun (v, _) ->
      Alcotest.(check bool) (Printf.sprintf "%g is a multiple of 2" v) true
        (Float.is_integer (v /. 2.)))
    ticks

let test_axis_ticks_log () =
  let a = Axis.create ~scale:Axis.Log10 ~lo:1e-3 ~hi:1e3 () in
  let ticks = Axis.ticks a in
  List.iter
    (fun (v, label) ->
      Alcotest.(check bool) "decade" true
        (Float.is_integer (Float.round (log10 v)));
      Alcotest.(check bool) "labelled as power" true (contains label "1e"))
    ticks

let test_axis_of_data () =
  let a = Axis.of_data [| 1.; 5.; 3. |] in
  Alcotest.(check bool) "covers data" true (Axis.lo a <= 1. && Axis.hi a >= 5.);
  Alcotest.check_raises "empty" (Invalid_argument "Axis.of_data: empty data")
    (fun () -> ignore (Axis.of_data [||]))

let test_axis_guards () =
  Alcotest.check_raises "lo >= hi" (Invalid_argument "Axis.create: need lo < hi")
    (fun () -> ignore (Axis.create ~lo:1. ~hi:1. ()));
  Alcotest.check_raises "log with zero"
    (Invalid_argument "Axis.create: log axis needs lo > 0") (fun () ->
      ignore (Axis.create ~scale:Axis.Log10 ~lo:0. ~hi:1. ()))

(* ---------------- svg ---------------- *)

let test_svg_document_structure () =
  let s = Svg.create ~width:100 ~height:50 in
  Svg.line s (0., 0.) (10., 10.);
  Svg.polyline s [ (0., 0.); (5., 5.); (10., 0.) ];
  Svg.rect s ~fill:"red" (1., 1.) (5., 5.);
  Svg.circle s (3., 3.) 1.;
  Svg.text s ~x:2. ~y:2. "hello";
  let doc = Svg.to_string s in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains doc needle))
    [ "<svg"; "width=\"100\""; "<line"; "<polyline"; "<rect"; "<circle";
      "<text"; "hello"; "</svg>" ]

let test_svg_escaping () =
  let s = Svg.create ~width:10 ~height:10 in
  Svg.text s ~x:0. ~y:0. "a<b & c>d \"q\"";
  let doc = Svg.to_string s in
  Alcotest.(check bool) "escaped lt" true (contains doc "a&lt;b");
  Alcotest.(check bool) "escaped amp" true (contains doc "&amp;");
  Alcotest.(check bool) "escaped quote" true (contains doc "&quot;")

let test_svg_degenerate_polyline_dropped () =
  let s = Svg.create ~width:10 ~height:10 in
  Svg.polyline s [ (1., 1.) ];
  Alcotest.(check bool) "no polyline emitted" false
    (contains (Svg.to_string s) "<polyline")

let test_svg_save_roundtrip () =
  let s = Svg.create ~width:20 ~height:20 in
  Svg.circle s (10., 10.) 5.;
  let path = Filename.temp_file "test_svg" ".svg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Svg.save s path;
      let ic = open_in path in
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      Alcotest.(check string) "file matches" (Svg.to_string s) contents)

(* ---------------- chart ---------------- *)

let test_chart_renders_series_and_legend () =
  let chart =
    { Output.Chart.title = "demo";
      x_label = "x";
      y_label = "y";
      x_axis = Axis.create ~lo:0. ~hi:10. ();
      y_axis = Axis.create ~lo:0. ~hi:10. ();
      series =
        [ Output.Chart.series ~label:"rising"
            (Array.init 11 (fun i -> (float_of_int i, float_of_int i))) ] }
  in
  let doc = Svg.to_string (Output.Chart.render chart) in
  Alcotest.(check bool) "title present" true (contains doc "demo");
  Alcotest.(check bool) "legend present" true (contains doc "rising");
  Alcotest.(check bool) "a polyline drawn" true (contains doc "<polyline")

let test_chart_clips_out_of_range () =
  (* a series entirely above the frame must not produce a polyline *)
  let chart =
    { Output.Chart.title = "clip";
      x_label = "x";
      y_label = "y";
      x_axis = Axis.create ~lo:0. ~hi:10. ();
      y_axis = Axis.create ~lo:0. ~hi:1. ();
      series =
        [ Output.Chart.series ~label:"huge"
            (Array.init 11 (fun i -> (float_of_int i, 1e10))) ] }
  in
  let doc = Svg.to_string (Output.Chart.render chart) in
  Alcotest.(check bool) "clipped away" false (contains doc "<polyline")

(* ---------------- ascii chart ---------------- *)

let test_ascii_plot_marks_series () =
  let out =
    Output.Ascii_chart.plot ~title:"t"
      [ ("s1", [| (0., 0.); (1., 1.) |]); ("s2", [| (0., 1.); (1., 0.) |]) ]
  in
  Alcotest.(check bool) "title" true (contains out "t");
  Alcotest.(check bool) "legend a" true (contains out "a = s1");
  Alcotest.(check bool) "legend b" true (contains out "b = s2");
  Alcotest.(check bool) "marks drawn" true (contains out "a" && contains out "b")

let test_ascii_plot_guards () =
  Alcotest.check_raises "too small"
    (Invalid_argument "Ascii_chart.plot: too small") (fun () ->
      ignore (Output.Ascii_chart.plot ~width:4 ~height:2 ~title:"x" []))

(* ---------------- tables ---------------- *)

let test_table_text_alignment () =
  let t =
    Table.create ~columns:[ ("name", Table.Left); ("value", Table.Right) ]
  in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let text = Table.to_text t in
  Alcotest.(check bool) "header" true (contains text "name");
  Alcotest.(check bool) "separator" true (contains text "----");
  (* right-aligned numbers end in the same column *)
  let lines = String.split_on_char '\n' text in
  let data_lines = List.filteri (fun i _ -> i >= 2) lines in
  (match data_lines with
  | a :: b :: _ ->
      Alcotest.(check int) "equal widths" (String.length a) (String.length b)
  | _ -> Alcotest.fail "missing rows");
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Table.add_row: column count mismatch") (fun () ->
      Table.add_row t [ "only one" ])

let test_table_markdown () =
  let t =
    Table.create ~columns:[ ("name", Table.Left); ("value", Table.Right) ]
  in
  Table.add_float_row t [ 1.5; 2.25 ];
  let md = Table.to_markdown t in
  Alcotest.(check bool) "pipes" true (contains md "| name | value |");
  Alcotest.(check bool) "alignment row" true (contains md ":--- | ---:");
  Alcotest.(check bool) "floats formatted" true (contains md "2.25")

(* ---------------- csv ---------------- *)

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let test_csv_quoting () =
  let path = Filename.temp_file "test_csv" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Output.Csv.write ~path ~header:[ "a"; "b" ]
        [ [ "plain"; "has,comma" ]; [ "has\"quote"; "fine" ] ];
      let contents = read_file path in
      Alcotest.(check bool) "comma quoted" true (contains contents "\"has,comma\"");
      Alcotest.(check bool) "quote doubled" true (contains contents "\"has\"\"quote\""))

let test_csv_series_join () =
  let path = Filename.temp_file "test_csv2" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Output.Csv.write_series ~path ~x_label:"r"
        [ ("f", [| (1., 10.); (2., 20.) |]); ("g", [| (1., 11.); (2., 21.) |]) ];
      let contents = read_file path in
      Alcotest.(check bool) "header" true (contains contents "r,f,g");
      Alcotest.(check bool) "row joined" true (contains contents "2,20,21"))

let test_csv_series_grid_mismatch () =
  Alcotest.check_raises "mismatched grids"
    (Invalid_argument "Csv.write_series: mismatched grids") (fun () ->
      Output.Csv.write_series ~path:"/dev/null" ~x_label:"r"
        [ ("f", [| (1., 10.) |]); ("g", [| (2., 11.) |]) ])

(* ---------------- heatmap ---------------- *)

let sample_heatmap =
  { Output.Heatmap.title = "hm";
    x_label = "x";
    y_label = "y";
    x_ticks = [| "a"; "b"; "c" |];
    y_ticks = [| "r1"; "r2" |];
    values = [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] }

let test_heatmap_structure () =
  let doc = Svg.to_string (Output.Heatmap.render sample_heatmap) in
  Alcotest.(check bool) "title" true (contains doc "hm");
  Alcotest.(check bool) "legend min" true (contains doc "min 1");
  Alcotest.(check bool) "legend max" true (contains doc "max 6");
  Alcotest.(check bool) "tick label" true (contains doc "r2");
  (* 6 cells + 2 legend swatches + background *)
  let rects =
    List.length (String.split_on_char '\n' doc)
    |> fun _ ->
    let count = ref 0 in
    String.iteri
      (fun i c ->
        if c = '<' && i + 5 <= String.length doc && String.sub doc i 5 = "<rect"
        then incr count)
      doc;
    !count
  in
  Alcotest.(check int) "rect count" 9 rects

let test_heatmap_nonfinite_cells_grey () =
  let hm =
    { sample_heatmap with
      Output.Heatmap.values = [| [| 1.; nan; 3. |]; [| 4.; 5.; infinity |] |] }
  in
  let doc = Svg.to_string (Output.Heatmap.render hm) in
  Alcotest.(check bool) "grey cell present" true (contains doc "#bbbbbb")

let test_heatmap_validation () =
  (try
     ignore
       (Output.Heatmap.render
          { sample_heatmap with Output.Heatmap.values = [| [| 1. |]; [| 1.; 2. |] |] });
     Alcotest.fail "accepted ragged data"
   with Invalid_argument _ -> ());
  try
    ignore
      (Output.Heatmap.render
         { sample_heatmap with Output.Heatmap.y_ticks = [| "only" |] });
    Alcotest.fail "accepted mismatched ticks"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "output"
    [ ( "heatmap",
        [ Alcotest.test_case "structure" `Quick test_heatmap_structure;
          Alcotest.test_case "non-finite cells" `Quick test_heatmap_nonfinite_cells_grey;
          Alcotest.test_case "validation" `Quick test_heatmap_validation ] );
      ( "axis",
        [ Alcotest.test_case "linear projection" `Quick test_axis_projection_linear;
          Alcotest.test_case "log projection" `Quick test_axis_projection_log;
          Alcotest.test_case "linear ticks" `Quick test_axis_ticks_linear;
          Alcotest.test_case "log ticks" `Quick test_axis_ticks_log;
          Alcotest.test_case "of_data" `Quick test_axis_of_data;
          Alcotest.test_case "guards" `Quick test_axis_guards ] );
      ( "svg",
        [ Alcotest.test_case "structure" `Quick test_svg_document_structure;
          Alcotest.test_case "escaping" `Quick test_svg_escaping;
          Alcotest.test_case "degenerate polyline" `Quick
            test_svg_degenerate_polyline_dropped;
          Alcotest.test_case "save" `Quick test_svg_save_roundtrip ] );
      ( "chart",
        [ Alcotest.test_case "series + legend" `Quick test_chart_renders_series_and_legend;
          Alcotest.test_case "clipping" `Quick test_chart_clips_out_of_range ] );
      ( "ascii",
        [ Alcotest.test_case "marks" `Quick test_ascii_plot_marks_series;
          Alcotest.test_case "guards" `Quick test_ascii_plot_guards ] );
      ( "table",
        [ Alcotest.test_case "text" `Quick test_table_text_alignment;
          Alcotest.test_case "markdown" `Quick test_table_markdown ] );
      ( "csv",
        [ Alcotest.test_case "quoting" `Quick test_csv_quoting;
          Alcotest.test_case "series join" `Quick test_csv_series_join;
          Alcotest.test_case "grid mismatch" `Quick test_csv_series_grid_mismatch ] ) ]
