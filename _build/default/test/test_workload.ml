module W = Netsim.Workload

let one_way = Dist.Families.deterministic ~delay:0.01 ()

let config =
  { (Netsim.Newcomer.drm_config ~n:2 ~r:0.2 ~probe_cost:0. ~error_cost:0.) with
    Netsim.Newcomer.immediate_abort = true }

let run ?(pattern = W.Flash { count = 10; within = 1. }) ?(horizon = 10.)
    ?(loss = 0.) ?(initial = 5) ?(pool = 64) ~seed () =
  W.run ~pattern ~horizon ~loss ~one_way ~initial ~pool_size:pool ~config
    ~rng:(Numerics.Rng.create seed) ()

let test_flash_everyone_configures () =
  let r = run ~seed:1 () in
  Alcotest.(check int) "10 arrivals" 10 r.W.arrivals;
  Alcotest.(check int) "10 completions" 10 (Array.length r.W.outcomes);
  Alcotest.(check bool) "unique on a perfect link" true r.W.all_unique;
  Alcotest.(check int) "no collisions" 0 r.W.collisions

let test_flash_timing () =
  let r = run ~seed:2 () in
  (* every config takes at least n * r = 0.4 s; flash window is 1 s *)
  Alcotest.(check bool) "mean at least n*r" true (r.W.mean_config_time >= 0.4 -. 1e-9);
  Alcotest.(check bool) "last completion after the window start" true
    (r.W.last_completion >= 0.4)

let test_periodic_count () =
  let r = run ~pattern:(W.Periodic 2.) ~horizon:10. ~seed:3 () in
  Alcotest.(check int) "horizon/period arrivals" 5 r.W.arrivals

let test_poisson_rate () =
  let r = run ~pattern:(W.Poisson 2.) ~horizon:100. ~pool:512 ~seed:4 () in
  (* ~200 expected; allow wide slack *)
  Alcotest.(check bool)
    (Printf.sprintf "%d arrivals near 200" r.W.arrivals)
    true
    (r.W.arrivals > 140 && r.W.arrivals < 260)

let test_crowded_flash_still_unique_on_perfect_link () =
  (* 30 newcomers into 32 free addresses: heavy contention, but a
     loss-free link must keep every accepted address distinct *)
  let r =
    run ~pattern:(W.Flash { count = 30; within = 0.5 }) ~initial:2 ~pool:64
      ~seed:5 ()
  in
  Alcotest.(check bool) "all unique" true r.W.all_unique;
  Alcotest.(check int) "no collisions" 0 r.W.collisions

let test_lossy_flash_collides_sometimes () =
  let total = ref 0 in
  for seed = 10 to 19 do
    let r =
      run ~pattern:(W.Flash { count = 20; within = 0.2 }) ~loss:0.9 ~initial:30
        ~pool:64 ~seed ()
    in
    total := !total + r.W.collisions
  done;
  Alcotest.(check bool)
    (Printf.sprintf "collisions under heavy loss (%d)" !total)
    true (!total > 0)

let test_pool_exhaustion_guard () =
  try
    ignore (run ~pattern:(W.Flash { count = 100; within = 1. }) ~pool:64 ~seed:6 ());
    Alcotest.fail "accepted a workload exceeding the pool"
  with Failure _ -> ()

let test_pattern_guards () =
  List.iter
    (fun pattern ->
      try
        ignore (run ~pattern ~seed:7 ());
        Alcotest.fail "accepted an invalid pattern"
      with Invalid_argument _ -> ())
    [ W.Poisson 0.; W.Periodic 0.; W.Flash { count = -1; within = 1. } ]

let () =
  Alcotest.run "workload"
    [ ( "patterns",
        [ Alcotest.test_case "flash completes" `Quick test_flash_everyone_configures;
          Alcotest.test_case "flash timing" `Quick test_flash_timing;
          Alcotest.test_case "periodic count" `Quick test_periodic_count;
          Alcotest.test_case "poisson rate" `Quick test_poisson_rate ] );
      ( "contention",
        [ Alcotest.test_case "crowded but perfect" `Quick
            test_crowded_flash_still_unique_on_perfect_link;
          Alcotest.test_case "lossy collides" `Quick test_lossy_flash_collides_sometimes ] );
      ( "guards",
        [ Alcotest.test_case "pool exhaustion" `Quick test_pool_exhaustion_guard;
          Alcotest.test_case "pattern validation" `Quick test_pattern_guards ] ) ]
