module M = Numerics.Minimize

let check_close ?(tol = 1e-6) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let parabola x = ((x -. 3.) ** 2.) +. 1.

let test_golden_parabola () =
  let r = M.golden ~f:parabola 0. 10. in
  check_close "minimizer" 3. r.M.x;
  check_close "minimum" 1. r.M.fx

let test_brent_parabola () =
  let r = M.brent ~f:parabola 0. 10. in
  check_close "minimizer" 3. r.M.x;
  check_close "minimum" 1. r.M.fx

let test_brent_nonsmooth () =
  (* |x - 2| has a kink at the minimum: parabolic steps must fall back *)
  let r = M.brent ~f:(fun x -> Float.abs (x -. 2.)) 0. 5. in
  check_close ~tol:1e-5 "kink minimizer" 2. r.M.x

let test_brent_boundary_minimum () =
  (* monotone increasing: minimum at the left edge *)
  let r = M.brent ~f:(fun x -> x) 1. 2. in
  Alcotest.(check bool) "lands at or near the boundary" true (r.M.x < 1.01)

let test_grid_then_brent_multimodal () =
  (* two valleys; global at x = 4 (depth -2), local at x = 1 (depth -1) *)
  let f x =
    (-.exp (-.((x -. 1.) ** 2.) /. 0.05))
    -. (2. *. exp (-.((x -. 4.) ** 2.) /. 0.05))
  in
  let r = M.grid_then_brent ~samples:200 ~f 0. 5. in
  check_close ~tol:1e-4 "finds the global valley" 4. r.M.x

let test_grid_then_brent_plateau () =
  (* flat plateau then dip: the zeroconf C_n shape at small r *)
  let f x = if x < 2. then 10. else ((x -. 3.) ** 2.) +. 1. in
  let r = M.grid_then_brent ~samples:300 ~f 0. 6. in
  check_close ~tol:1e-4 "dip after plateau" 3. r.M.x

let test_argmin_int () =
  let n, v = M.argmin_int ~lo:1 ~hi:20 (fun k -> Float.abs (float_of_int k -. 7.3)) in
  Alcotest.(check int) "argmin" 7 n;
  check_close "value" 0.3 v

let test_argmin_int_ties_break_low () =
  (* f(3) = f(4) are joint minima; definition of N(r) picks the smaller *)
  let f k = Float.abs (float_of_int k -. 3.5) in
  let n, _ = M.argmin_int ~lo:1 ~hi:10 f in
  Alcotest.(check int) "first minimum wins" 3 n

let test_argmin_int_rejects_bad_range () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Minimize.argmin_int: lo > hi")
    (fun () -> ignore (M.argmin_int ~lo:5 ~hi:1 float_of_int))

let test_argmin_int_hull () =
  (* convex in k with minimum at 13, far from the start *)
  let f k = ((float_of_int k -. 13.) ** 2.) +. 5. in
  let n, v = M.argmin_int_hull ~lo:1 f in
  Alcotest.(check int) "found distant minimum" 13 n;
  check_close "value" 5. v

let test_argmin_int_hull_walks_down () =
  let f k = ((float_of_int k -. 2.) ** 2.) in
  let n, _ = M.argmin_int_hull ~lo:1 ~start:30 f in
  Alcotest.(check int) "walked down from start" 2 n

let prop_brent_at_most_golden =
  QCheck.Test.make ~name:"brent matches golden on random quadratics" ~count:200
    QCheck.(pair (float_range (-20.) 20.) (float_range 0.1 10.))
    (fun (centre, width) ->
      let f x = (x -. centre) ** 2. in
      let lo = centre -. width and hi = centre +. (1.3 *. width) in
      let g = M.golden ~f lo hi and b = M.brent ~f lo hi in
      Float.abs (g.M.x -. b.M.x) < 1e-4)

let prop_grid_then_brent_never_worse_than_grid =
  QCheck.Test.make ~name:"polish never loses to the raw grid" ~count:200
    QCheck.(float_range (-5.) 5.)
    (fun centre ->
      let f x = Float.abs (x -. centre) ** 1.5 in
      let r = M.grid_then_brent ~samples:64 ~f (-6.) 6. in
      (* compare against the best of the same grid *)
      let grid = Numerics.Grid.linspace (-6.) 6. 65 in
      let best_grid = Array.fold_left (fun acc x -> Float.min acc (f x)) infinity grid in
      r.M.fx <= best_grid +. 1e-12)

let () =
  Alcotest.run "minimize"
    [ ( "golden",
        [ Alcotest.test_case "parabola" `Quick test_golden_parabola ] );
      ( "brent",
        [ Alcotest.test_case "parabola" `Quick test_brent_parabola;
          Alcotest.test_case "non-smooth" `Quick test_brent_nonsmooth;
          Alcotest.test_case "boundary minimum" `Quick test_brent_boundary_minimum ] );
      ( "grid_then_brent",
        [ Alcotest.test_case "multimodal" `Quick test_grid_then_brent_multimodal;
          Alcotest.test_case "plateau" `Quick test_grid_then_brent_plateau ] );
      ( "argmin_int",
        [ Alcotest.test_case "basic" `Quick test_argmin_int;
          Alcotest.test_case "tie-break" `Quick test_argmin_int_ties_break_low;
          Alcotest.test_case "bad range" `Quick test_argmin_int_rejects_bad_range;
          Alcotest.test_case "hull search" `Quick test_argmin_int_hull;
          Alcotest.test_case "hull walks down" `Quick test_argmin_int_hull_walks_down ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_brent_at_most_golden; prop_grid_then_brent_never_worse_than_grid ] ) ]
