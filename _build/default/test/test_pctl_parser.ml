module P = Dtmc.Pctl
module Parser = Dtmc.Pctl_parser

let formula = Alcotest.testable (fun ppf _ -> Format.fprintf ppf "<formula>") ( = )

let check_parse msg expected input =
  Alcotest.check formula msg expected (Parser.formula input)

let test_atoms () =
  check_parse "true" P.True "true";
  check_parse "false" (P.Not P.True) "false";
  check_parse "ident" (P.Ap "error") "error";
  check_parse "underscored" (P.Ap "ok_state") "ok_state"

let test_boolean_structure () =
  check_parse "negation" (P.Not (P.Ap "a")) "!a";
  check_parse "double negation" (P.Not (P.Not (P.Ap "a"))) "!!a";
  check_parse "and" (P.And (P.Ap "a", P.Ap "b")) "a & b";
  check_parse "or" (P.Or (P.Ap "a", P.Ap "b")) "a | b";
  check_parse "implies" (P.Implies (P.Ap "a", P.Ap "b")) "a => b"

let test_precedence () =
  (* ! binds tighter than &, & tighter than |, | tighter than => *)
  check_parse "not-and" (P.And (P.Not (P.Ap "a"), P.Ap "b")) "!a & b";
  check_parse "and-or"
    (P.Or (P.And (P.Ap "a", P.Ap "b"), P.Ap "c"))
    "a & b | c";
  check_parse "or-implies"
    (P.Implies (P.Or (P.Ap "a", P.Ap "b"), P.Ap "c"))
    "a | b => c";
  check_parse "parens override"
    (P.And (P.Ap "a", P.Or (P.Ap "b", P.Ap "c")))
    "a & (b | c)";
  (* implies is right-associative *)
  check_parse "implies assoc"
    (P.Implies (P.Ap "a", P.Implies (P.Ap "b", P.Ap "c")))
    "a => b => c"

let test_probability_operator () =
  check_parse "eventually"
    (P.Prob (P.Ge, 0.5, P.Eventually (P.Ap "rich")))
    "P>=0.5 [ F rich ]";
  check_parse "scientific bound"
    (P.Prob (P.Lt, 1e-40, P.Eventually (P.Ap "error")))
    "P<1e-40 [ F error ]";
  check_parse "integer bound"
    (P.Prob (P.Le, 1., P.Next (P.Ap "ok")))
    "P<=1 [ X ok ]";
  check_parse "until"
    (P.Prob (P.Gt, 0.9, P.Until (P.Not (P.Ap "error"), P.Ap "ok")))
    "P>0.9 [ !error U ok ]";
  check_parse "bounded until"
    (P.Prob (P.Ge, 0.25, P.Bounded_until (P.True, P.Ap "rich", 2)))
    "P>=0.25 [ true U<=2 rich ]";
  check_parse "bounded eventually"
    (P.Prob (P.Ge, 0.25, P.Bounded_eventually (P.Ap "rich", 7)))
    "P>=0.25 [ F<=7 rich ]";
  check_parse "globally"
    (P.Prob (P.Ge, 0.99, P.Globally (P.Not (P.Ap "broke"))))
    "P>=0.99 [ G !broke ]"

let test_nesting () =
  check_parse "nested P"
    (P.Prob
       ( P.Ge, 0.5,
         P.Eventually (P.Prob (P.Le, 0.25, P.Eventually (P.Ap "broke"))) ))
    "P>=0.5 [ F P<=0.25 [ F broke ] ]"

let test_path_entry_point () =
  Alcotest.(check bool) "bare path" true
    (Parser.path "F ok" = P.Eventually (P.Ap "ok"));
  Alcotest.(check bool) "bare until" true
    (Parser.path "!a U b" = P.Until (P.Not (P.Ap "a"), P.Ap "b"))

let test_errors () =
  List.iter
    (fun input ->
      try
        ignore (Parser.formula input);
        Alcotest.failf "accepted %S" input
      with Parser.Parse_error _ -> ())
    [ ""; "&"; "P [ F a ]"; "P>= [ F a ]"; "P>=0.5 F a"; "P>=0.5 [ a ]";
      "a U b" (* path at formula level *); "(a"; "a b"; "F<= a"; "@" ]

let test_whitespace_insensitive () =
  Alcotest.(check bool) "spacing variants agree" true
    (Parser.formula "P>=0.5[F rich]" = Parser.formula "P >= 0.5 [ F  rich ]")

(* end-to-end: parse and check on a real chain *)
let test_parse_and_check_on_zeroconf () =
  let drm = Zeroconf.Drm.build Zeroconf.Params.figure2 ~n:4 ~r:2. in
  let chain = drm.Zeroconf.Drm.chain in
  let labels = P.label_of_state chain in
  let holds text =
    P.holds chain labels ~from:drm.Zeroconf.Drm.start (Parser.formula text)
  in
  Alcotest.(check bool) "safety" true (holds "P<1e-40 [ F error ]");
  Alcotest.(check bool) "liveness" true (holds "P>0.99 [ F ok ]");
  Alcotest.(check bool) "one-shot" true (holds "P>=0.98 [ X ok ]");
  Alcotest.(check bool) "negated claim fails" false (holds "P>=0.5 [ F error ]");
  (* the paper's reliability statement, parsed *)
  Alcotest.(check bool) "conjunction" true
    (holds "P>0.9 [ !error U ok ] & P<1e-40 [ F error ]")

let () =
  Alcotest.run "pctl_parser"
    [ ( "grammar",
        [ Alcotest.test_case "atoms" `Quick test_atoms;
          Alcotest.test_case "booleans" `Quick test_boolean_structure;
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "probability" `Quick test_probability_operator;
          Alcotest.test_case "nesting" `Quick test_nesting;
          Alcotest.test_case "path entry" `Quick test_path_entry_point ] );
      ( "robustness",
        [ Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "whitespace" `Quick test_whitespace_insensitive ] );
      ( "integration",
        [ Alcotest.test_case "zeroconf judgements" `Quick
            test_parse_and_check_on_zeroconf ] ) ]
