module Ctmc = Dtmc.Ctmc
module M = Numerics.Matrix
module Ss = Dtmc.State_space

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* birth-death on two states: a <-> b with rates 2 and 3 *)
let two_state =
  Ctmc.create
    ~states:(Ss.of_labels [ "a"; "b" ])
    (M.of_arrays [| [| -2.; 2. |]; [| 3.; -3. |] |])

(* pure death: a -> done at rate lambda *)
let single_exp rate =
  Ctmc.create
    ~states:(Ss.of_labels [ "a"; "done" ])
    (M.of_arrays [| [| -.rate; rate |]; [| 0.; 0. |] |])

let test_validation () =
  (try
     ignore
       (Ctmc.create
          ~states:(Ss.of_labels [ "a"; "b" ])
          (M.of_arrays [| [| -1.; 2. |]; [| 0.; 0. |] |]));
     Alcotest.fail "accepted nonzero row sum"
   with Invalid_argument _ -> ());
  try
    ignore
      (Ctmc.create
         ~states:(Ss.of_labels [ "a"; "b" ])
         (M.of_arrays [| [| 1.; -1. |]; [| 0.; 0. |] |]));
    Alcotest.fail "accepted negative off-diagonal"
  with Invalid_argument _ -> ()

let test_basic_accessors () =
  Alcotest.(check int) "size" 2 (Ctmc.size two_state);
  check_close "rate" 2. (Ctmc.rate two_state 0 1);
  check_close "uniformization rate" 3. (Ctmc.uniformization_rate two_state);
  Alcotest.(check bool) "not absorbing" false (Ctmc.is_absorbing two_state 0);
  Alcotest.(check bool) "absorbing" true (Ctmc.is_absorbing (single_exp 1.) 1)

let test_transient_exponential_decay () =
  (* single exponential: P(still in a at t) = e^{-rate t} *)
  let c = single_exp 2. in
  List.iter
    (fun t ->
      let pi = Ctmc.transient c ~horizon:t [| 1.; 0. |] in
      check_close ~tol:1e-10 (Printf.sprintf "survival at %g" t) (exp (-2. *. t)) pi.(0))
    [ 0.1; 0.5; 1.; 3. ]

let test_transient_two_state_closed_form () =
  (* closed form: p_a(t) = 3/5 + 2/5 e^{-5t} starting from a *)
  List.iter
    (fun t ->
      let pi = Ctmc.transient two_state ~horizon:t [| 1.; 0. |] in
      check_close ~tol:1e-10
        (Printf.sprintf "p_a(%g)" t)
        (0.6 +. (0.4 *. exp (-5. *. t)))
        pi.(0);
      check_close ~tol:1e-10 "mass conserved" 1. (pi.(0) +. pi.(1)))
    [ 0.05; 0.2; 1.; 4. ]

let test_transient_long_horizon_stationary () =
  let pi = Ctmc.transient two_state ~horizon:100. [| 1.; 0. |] in
  check_close ~tol:1e-9 "stationary a" 0.6 pi.(0);
  check_close ~tol:1e-9 "stationary b" 0.4 pi.(1)

let test_embedded_chain () =
  (* three states: x leaves at rate 3, split 1:2 to y and done *)
  let c =
    Ctmc.create
      ~states:(Ss.of_labels [ "x"; "y"; "done" ])
      (M.of_arrays
         [| [| -3.; 1.; 2. |]; [| 0.; -1.; 1. |]; [| 0.; 0.; 0. |] |])
  in
  let jump = Ctmc.embedded c in
  check_close "x -> y" (1. /. 3.) (Dtmc.Chain.prob jump 0 1);
  check_close "x -> done" (2. /. 3.) (Dtmc.Chain.prob jump 0 2);
  check_close "absorbing self-loop" 1. (Dtmc.Chain.prob jump 2 2)

let test_absorption_cdf_erlang () =
  (* two sequential rate-lambda phases: absorption time ~ Erlang-2 *)
  let lambda = 4. in
  let c =
    Ctmc.create
      ~states:(Ss.of_labels [ "p1"; "p2"; "done" ])
      (M.of_arrays
         [| [| -.lambda; lambda; 0. |];
            [| 0.; -.lambda; lambda |];
            [| 0.; 0.; 0. |] |])
  in
  List.iter
    (fun t ->
      let expected = 1. -. (exp (-.lambda *. t) *. (1. +. (lambda *. t))) in
      check_close ~tol:1e-10
        (Printf.sprintf "erlang-2 cdf at %g" t)
        expected
        (Ctmc.absorption_cdf c ~from:0 t))
    [ 0.1; 0.25; 0.5; 1.; 2. ]

let test_expected_absorption_time () =
  let c = single_exp 5. in
  check_close "mean 1/5" 0.2 (Ctmc.expected_absorption_time c ~from:0);
  check_close "zero from absorbing" 0. (Ctmc.expected_absorption_time c ~from:1);
  (* erlang-3: mean 3/rate *)
  let lambda = 2. in
  let erl =
    Ctmc.create
      ~states:(Ss.of_labels [ "p1"; "p2"; "p3"; "done" ])
      (M.of_arrays
         [| [| -.lambda; lambda; 0.; 0. |];
            [| 0.; -.lambda; lambda; 0. |];
            [| 0.; 0.; -.lambda; lambda |];
            [| 0.; 0.; 0.; 0. |] |])
  in
  check_close "erlang-3 mean" 1.5 (Ctmc.expected_absorption_time erl ~from:0)

let test_expected_absorption_requires_certainty () =
  (* two communicating states with no exit: no absorption *)
  try
    ignore (Ctmc.expected_absorption_time two_state ~from:0);
    Alcotest.fail "accepted a chain without absorption"
  with Invalid_argument _ -> ()

let test_large_mu_stability () =
  (* stiff case: rate 1000 over horizon 1 gives mu = 1000; the Poisson
     sum must stay normalized *)
  let c = single_exp 1000. in
  let v = Ctmc.absorption_cdf c ~from:0 1. in
  check_close ~tol:1e-9 "fully absorbed" 1. v;
  let early = Ctmc.absorption_cdf c ~from:0 1e-4 in
  check_close ~tol:1e-7 "early cdf" (1. -. exp (-0.1)) early

let () =
  Alcotest.run "ctmc"
    [ ( "construction",
        [ Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "accessors" `Quick test_basic_accessors;
          Alcotest.test_case "embedded" `Quick test_embedded_chain ] );
      ( "transient",
        [ Alcotest.test_case "exponential decay" `Quick
            test_transient_exponential_decay;
          Alcotest.test_case "two-state closed form" `Quick
            test_transient_two_state_closed_form;
          Alcotest.test_case "long horizon" `Quick test_transient_long_horizon_stationary;
          Alcotest.test_case "stiff stability" `Quick test_large_mu_stability ] );
      ( "absorption",
        [ Alcotest.test_case "erlang cdf" `Quick test_absorption_cdf_erlang;
          Alcotest.test_case "expected time" `Quick test_expected_absorption_time;
          Alcotest.test_case "certainty required" `Quick
            test_expected_absorption_requires_certainty ] ) ]
