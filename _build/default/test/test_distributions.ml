module D = Dist.Distribution
module F = Dist.Families

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let check_self d =
  match D.check d with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* ------------- shifted exponential: the paper's F_X ------------- *)

let paper_fx = F.shifted_exponential ~mass:(1. -. 1e-5) ~rate:10. ~delay:1. ()

let test_paper_fx_cdf () =
  check_close "zero before the round trip" 0. (paper_fx.D.cdf 0.9);
  check_close "zero at d" 0. (paper_fx.D.cdf 1.);
  (* F(d + t) = l (1 - e^{-lambda t}) *)
  check_close "one tenth after d"
    ((1. -. 1e-5) *. (1. -. exp (-1.)))
    (paper_fx.D.cdf 1.1);
  Alcotest.(check bool) "saturates at mass" true
    (Float.abs (paper_fx.D.cdf 1e6 -. (1. -. 1e-5)) < 1e-12)

let test_paper_fx_survival_tail () =
  (* the survival tail must resolve the 1e-5 defect without cancellation *)
  let s = paper_fx.D.survival 10. in
  check_close ~tol:1e-12 "tail = defect + exp decay"
    (1e-5 +. ((1. -. 1e-5) *. exp (-90.)))
    s;
  check_close ~tol:1e-18 "deep tail is exactly the defect"
    (1. -. paper_fx.D.mass)
    (paper_fx.D.survival 1e4)

let test_paper_fx_mean () =
  match paper_fx.D.mean with
  | Some m -> check_close "mean d + 1/lambda" 1.1 m
  | None -> Alcotest.fail "mean should be known"

let test_paper_fx_self () = check_self paper_fx

(* ------------- other families ------------- *)

let test_exponential () =
  let d = F.exponential ~rate:2. () in
  check_close "cdf at ln2/2" 0.5 (d.D.cdf (Float.log 2. /. 2.));
  check_close "survival complement" 0.5 (d.D.survival (Float.log 2. /. 2.));
  check_self d;
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Families.exponential: rate <= 0") (fun () ->
      ignore (F.exponential ~rate:0. ()))

let test_deterministic () =
  let d = F.deterministic ~mass:0.8 ~delay:3. () in
  check_close "before" 0. (d.D.cdf 2.999);
  check_close "after" 0.8 (d.D.cdf 3.);
  check_close "survival before" 1. (d.D.survival 2.9);
  check_close "survival after" 0.2 (d.D.survival 3.5);
  Alcotest.(check bool) "defective" true (D.is_defective d)

let test_uniform () =
  let d = F.uniform ~lo:1. ~hi:3. () in
  check_close "midpoint" 0.5 (d.D.cdf 2.);
  check_close "mean" 2. (Option.get d.D.mean);
  check_self d;
  Alcotest.check_raises "bad bounds"
    (Invalid_argument "Families.uniform: need 0 <= lo < hi") (fun () ->
      ignore (F.uniform ~lo:3. ~hi:1. ()))

let test_weibull_reduces_to_exponential () =
  (* shape 1 Weibull = exponential with rate 1/scale *)
  let w = F.weibull ~shape:1. ~scale:0.5 () in
  let e = F.exponential ~rate:2. () in
  List.iter
    (fun t ->
      check_close ~tol:1e-12 (Printf.sprintf "cdf at %g" t) (e.D.cdf t) (w.D.cdf t))
    [ 0.1; 0.5; 1.; 3. ]

let test_weibull_self () =
  check_self (F.weibull ~mass:0.95 ~delay:0.2 ~shape:1.7 ~scale:0.8 ())

let test_erlang_stages_one_is_exponential () =
  let er = F.erlang ~stages:1 ~rate:3. () in
  let ex = F.exponential ~rate:3. () in
  List.iter
    (fun t ->
      check_close ~tol:1e-12 (Printf.sprintf "cdf at %g" t) (ex.D.cdf t) (er.D.cdf t))
    [ 0.1; 1.; 2. ]

let test_erlang_mean_and_self () =
  let d = F.erlang ~stages:4 ~rate:2. ~delay:0.5 () in
  check_close "mean = d + k/rate" 2.5 (Option.get d.D.mean);
  check_self d

let test_mixture () =
  let d =
    F.mixture [ (1., F.deterministic ~delay:1. ()); (1., F.deterministic ~delay:3. ()) ]
  in
  check_close "mass" 1. d.D.mass;
  check_close "between the atoms" 0.5 (d.D.cdf 2.);
  check_close "after both" 1. (d.D.cdf 4.);
  Alcotest.check_raises "empty" (Invalid_argument "Families.mixture: empty mixture")
    (fun () -> ignore (F.mixture []))

let test_mixture_defective_mass () =
  let d =
    F.mixture
      [ (3., F.deterministic ~mass:0.5 ~delay:1. ());
        (1., F.deterministic ~mass:1.0 ~delay:2. ()) ]
  in
  check_close "weighted mass" ((0.75 *. 0.5) +. (0.25 *. 1.)) d.D.mass

(* ------------- generic Distribution operations ------------- *)

let test_quantile_inverts_cdf () =
  let d = F.shifted_exponential ~rate:5. ~delay:0.5 () in
  List.iter
    (fun p ->
      let t = D.quantile d p in
      check_close ~tol:1e-8 (Printf.sprintf "cdf (quantile %g)" p) p (d.D.cdf t))
    [ 0.1; 0.5; 0.9; 0.99 ]

let test_quantile_defective_tail_rejected () =
  let d = F.deterministic ~mass:0.5 ~delay:1. () in
  Alcotest.check_raises "beyond mass"
    (Invalid_argument "Distribution.quantile: p >= mass (reply never arrives)")
    (fun () -> ignore (D.quantile d 0.7))

let test_conditional_cdf () =
  let d = F.deterministic ~mass:0.5 ~delay:1. () in
  check_close "conditional saturates at 1" 1. (D.conditional_cdf d 2.)

let test_sampling_matches_cdf () =
  (* Kolmogorov-style check: ECDF of samples close to the cdf *)
  let d = F.shifted_exponential ~rate:4. ~delay:0.3 () in
  let rng = Numerics.Rng.create 99 in
  let n = 20_000 in
  let samples =
    Array.init n (fun _ ->
        match d.D.sample rng with Some x -> x | None -> Alcotest.fail "lost?")
  in
  let ecdf = Numerics.Stats.ecdf samples in
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Printf.sprintf "ecdf ~ cdf at %g" t)
        true
        (Float.abs (ecdf t -. d.D.cdf t) < 0.02))
    [ 0.35; 0.5; 0.8; 1.5 ]

let test_sampling_loss_rate () =
  let d = F.deterministic ~mass:0.7 ~delay:1. () in
  let rng = Numerics.Rng.create 5 in
  let n = 20_000 in
  let lost = ref 0 in
  for _ = 1 to n do
    if d.D.sample rng = None then incr lost
  done;
  let rate = float_of_int !lost /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "loss rate %.3f near 0.3" rate) true
    (Float.abs (rate -. 0.3) < 0.02)

let test_constructor_guards () =
  Alcotest.check_raises "mass 0" (Invalid_argument "Distribution.v: mass must lie in (0, 1]")
    (fun () ->
      ignore
        (D.v ~name:"bad" ~mass:0. ~cdf:(fun _ -> 0.) ~survival:(fun _ -> 1.)
           ~sample:(fun _ -> None) ()))

(* property: every family keeps cdf + survival = 1 and cdf monotone *)
let family_gen =
  QCheck.Gen.(
    let* mass = float_range 0.3 1.0 in
    let* rate = float_range 0.5 20. in
    let* delay = float_range 0. 2. in
    oneofl
      [ F.shifted_exponential ~mass ~rate ~delay ();
        F.exponential ~mass ~rate ();
        F.uniform ~mass ~lo:delay ~hi:(delay +. 1.) ();
        F.weibull ~mass ~delay ~shape:1.5 ~scale:(1. /. rate) ();
        F.erlang ~mass ~delay ~stages:3 ~rate () ])

let prop_families_well_formed =
  QCheck.Test.make ~name:"every family passes the self-check" ~count:100
    (QCheck.make family_gen)
    (fun d -> match D.check d with Ok () -> true | Error _ -> false)

let prop_survival_monotone_decreasing =
  QCheck.Test.make ~name:"survival is non-increasing" ~count:100
    QCheck.(pair (make family_gen) (pair (float_range 0. 10.) (float_range 0. 10.)))
    (fun (d, (t1, t2)) ->
      let lo = Float.min t1 t2 and hi = Float.max t1 t2 in
      d.D.survival hi <= d.D.survival lo +. 1e-9)

let () =
  Alcotest.run "distributions"
    [ ( "paper F_X",
        [ Alcotest.test_case "cdf" `Quick test_paper_fx_cdf;
          Alcotest.test_case "survival tail" `Quick test_paper_fx_survival_tail;
          Alcotest.test_case "mean" `Quick test_paper_fx_mean;
          Alcotest.test_case "self-check" `Quick test_paper_fx_self ] );
      ( "families",
        [ Alcotest.test_case "exponential" `Quick test_exponential;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "uniform" `Quick test_uniform;
          Alcotest.test_case "weibull = exp at shape 1" `Quick
            test_weibull_reduces_to_exponential;
          Alcotest.test_case "weibull self-check" `Quick test_weibull_self;
          Alcotest.test_case "erlang-1 = exp" `Quick
            test_erlang_stages_one_is_exponential;
          Alcotest.test_case "erlang mean" `Quick test_erlang_mean_and_self;
          Alcotest.test_case "mixture" `Quick test_mixture;
          Alcotest.test_case "mixture mass" `Quick test_mixture_defective_mass ] );
      ( "operations",
        [ Alcotest.test_case "quantile inverts cdf" `Quick test_quantile_inverts_cdf;
          Alcotest.test_case "quantile defective tail" `Quick
            test_quantile_defective_tail_rejected;
          Alcotest.test_case "conditional cdf" `Quick test_conditional_cdf;
          Alcotest.test_case "guards" `Quick test_constructor_guards ] );
      ( "sampling",
        [ Alcotest.test_case "matches cdf" `Quick test_sampling_matches_cdf;
          Alcotest.test_case "loss rate" `Quick test_sampling_loss_rate ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_families_well_formed; prop_survival_monotone_decreasing ] ) ]
