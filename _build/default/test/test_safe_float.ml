module Sf = Numerics.Safe_float

let check_float = Alcotest.(check (float 1e-12))

let test_approx_eq_basic () =
  Alcotest.(check bool) "equal values" true (Sf.approx_eq 1. 1.);
  Alcotest.(check bool) "close values" true (Sf.approx_eq ~rtol:1e-6 1. (1. +. 1e-9));
  Alcotest.(check bool) "far values" false (Sf.approx_eq 1. 2.);
  Alcotest.(check bool) "atol catches tiny" true (Sf.approx_eq ~atol:1e-6 0. 1e-9);
  Alcotest.(check bool) "zero vs zero" true (Sf.approx_eq 0. 0.)

let test_approx_eq_special () =
  Alcotest.(check bool) "nan never equal" false (Sf.approx_eq Float.nan Float.nan);
  Alcotest.(check bool) "nan vs number" false (Sf.approx_eq Float.nan 1.);
  Alcotest.(check bool) "inf equals inf" true (Sf.approx_eq infinity infinity);
  Alcotest.(check bool) "inf vs -inf" false (Sf.approx_eq infinity neg_infinity)

let test_clamp () =
  check_float "inside" 0.5 (Sf.clamp ~lo:0. ~hi:1. 0.5);
  check_float "below" 0. (Sf.clamp ~lo:0. ~hi:1. (-3.));
  check_float "above" 1. (Sf.clamp ~lo:0. ~hi:1. 7.);
  Alcotest.check_raises "bad bounds" (Invalid_argument "Safe_float.clamp: lo > hi")
    (fun () -> ignore (Sf.clamp ~lo:1. ~hi:0. 0.5))

let test_clamp_probability () =
  check_float "negative rounds to 0" 0. (Sf.clamp_probability (-1e-18));
  check_float "overshoot rounds to 1" 1. (Sf.clamp_probability (1. +. 1e-12))

let test_log1mexp () =
  (* log(1 - e^-1) *)
  check_float "at -1" (log (1. -. exp (-1.))) (Sf.log1mexp (-1.));
  (* very negative: log(1 - eps) ~ -eps *)
  Alcotest.(check bool) "tiny tail"
    true
    (Sf.approx_eq ~rtol:1e-9 (Sf.log1mexp (-50.)) (-.exp (-50.)));
  Alcotest.check_raises "rejects non-negative"
    (Invalid_argument "Safe_float.log1mexp: argument must be negative")
    (fun () -> ignore (Sf.log1mexp 0.))

let test_log_sum_exp () =
  check_float "symmetric" (log 2.) (Sf.log_sum_exp 0. 0.);
  check_float "with neg_infinity" 3. (Sf.log_sum_exp neg_infinity 3.);
  (* no overflow for large magnitudes *)
  check_float "huge args" (1000. +. log 2.) (Sf.log_sum_exp 1000. 1000.)

let test_log_diff_exp () =
  check_float "log(e^2 - e^1)" (log (exp 2. -. exp 1.)) (Sf.log_diff_exp 2. 1.);
  check_float "a = b gives -inf" neg_infinity (Sf.log_diff_exp 5. 5.);
  Alcotest.check_raises "a < b rejected"
    (Invalid_argument "Safe_float.log_diff_exp: a < b") (fun () ->
      ignore (Sf.log_diff_exp 1. 2.))

let test_sum_compensated () =
  (* classic cancellation case: 1 + 1e16 - 1e16 *)
  check_float "neumaier survives cancellation" 2.
    (Sf.sum [| 1.; 1e16; 1.; -1e16 |]);
  check_float "empty sum" 0. (Sf.sum [||]);
  check_float "list version" 2. (Sf.sum_list [ 1.; 1e16; 1.; -1e16 ])

let test_dot () =
  check_float "orthogonal" 0. (Sf.dot [| 1.; 0. |] [| 0.; 1. |]);
  check_float "simple" 11. (Sf.dot [| 1.; 2. |] [| 3.; 4. |]);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Safe_float.dot: length mismatch") (fun () ->
      ignore (Sf.dot [| 1. |] [| 1.; 2. |]))

let test_mean () =
  check_float "mean" 2. (Sf.mean [| 1.; 2.; 3. |]);
  Alcotest.check_raises "empty mean"
    (Invalid_argument "Safe_float.mean: empty array") (fun () ->
      ignore (Sf.mean [||]))

let test_predicates () =
  Alcotest.(check bool) "0.5 is probability" true (Sf.is_probability 0.5);
  Alcotest.(check bool) "1 is probability" true (Sf.is_probability 1.);
  Alcotest.(check bool) "1.1 is not" false (Sf.is_probability 1.1);
  Alcotest.(check bool) "nan is not" false (Sf.is_probability Float.nan);
  Alcotest.(check bool) "finite" true (Sf.finite 1.);
  Alcotest.(check bool) "inf not finite" false (Sf.finite infinity)

let prop_log_sum_exp_matches =
  QCheck.Test.make ~name:"log_sum_exp agrees with direct computation in range"
    ~count:500
    QCheck.(pair (float_range (-20.) 20.) (float_range (-20.) 20.))
    (fun (a, b) ->
      Sf.approx_eq ~rtol:1e-12 (Sf.log_sum_exp a b) (log (exp a +. exp b)))

let prop_sum_permutation_invariant =
  QCheck.Test.make ~name:"compensated sum is permutation-invariant" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 40) (float_range (-1e6) 1e6))
    (fun xs ->
      let a = Sf.sum (Array.of_list xs) in
      let b = Sf.sum (Array.of_list (List.rev xs)) in
      Sf.approx_eq ~rtol:1e-12 ~atol:1e-9 a b)

let prop_clamp_idempotent =
  QCheck.Test.make ~name:"clamp is idempotent" ~count:500
    QCheck.(float_range (-100.) 100.)
    (fun x ->
      let once = Sf.clamp ~lo:(-1.) ~hi:1. x in
      Sf.clamp ~lo:(-1.) ~hi:1. once = once)

let () =
  Alcotest.run "safe_float"
    [ ( "approx_eq",
        [ Alcotest.test_case "basic" `Quick test_approx_eq_basic;
          Alcotest.test_case "special values" `Quick test_approx_eq_special ] );
      ( "clamp",
        [ Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "probability" `Quick test_clamp_probability ] );
      ( "log-domain helpers",
        [ Alcotest.test_case "log1mexp" `Quick test_log1mexp;
          Alcotest.test_case "log_sum_exp" `Quick test_log_sum_exp;
          Alcotest.test_case "log_diff_exp" `Quick test_log_diff_exp ] );
      ( "reductions",
        [ Alcotest.test_case "sum" `Quick test_sum_compensated;
          Alcotest.test_case "dot" `Quick test_dot;
          Alcotest.test_case "mean" `Quick test_mean ] );
      ("predicates", [ Alcotest.test_case "predicates" `Quick test_predicates ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_log_sum_exp_matches; prop_sum_permutation_invariant;
            prop_clamp_idempotent ] ) ]
