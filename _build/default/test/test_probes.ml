module P = Zeroconf.Probes
module Params = Zeroconf.Params

let check_close ?(tol = 1e-12) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let fig2 = Params.figure2

let test_p0_is_one () =
  check_close "p_0 = 1 by convention" 1. (P.no_answer fig2 ~i:0 ~r:2.);
  check_close "literal agrees" 1. (P.no_answer_literal fig2 ~i:0 ~r:2.)

let test_below_round_trip_nothing_arrives () =
  (* r < d = 1: the reply cannot arrive within i periods when i*r < d *)
  check_close "p_1(0.5) = 1" 1. (P.no_answer fig2 ~i:1 ~r:0.5);
  check_close "p_2(0.4) = 1 (2 * 0.4 < 1)" 1. (P.no_answer fig2 ~i:2 ~r:0.4)

let test_known_value () =
  (* p_1(2) = S(2) = (1 - l) + l e^{-10 (2 - 1)} for the figure2 F_X *)
  let l = 1. -. 1e-15 in
  check_close "p_1(2)" (1e-15 +. (l *. exp (-10.))) (P.no_answer fig2 ~i:1 ~r:2.)

let test_decreasing_in_i () =
  let r = 1.5 in
  let prev = ref 2. in
  for i = 1 to 6 do
    let p = P.no_answer fig2 ~i ~r in
    Alcotest.(check bool) (Printf.sprintf "p_%d <= p_%d" i (i - 1)) true (p <= !prev);
    prev := p
  done

let test_pi_prefix_products () =
  let r = 1.3 and n = 5 in
  let all = P.pi_all fig2 ~n ~r in
  Alcotest.(check int) "length" (n + 1) (Array.length all);
  check_close "pi_0" 1. all.(0);
  for i = 1 to n do
    check_close
      (Printf.sprintf "pi_%d = pi_%d * p_%d" i (i - 1) i)
      (all.(i - 1) *. P.no_answer fig2 ~i ~r)
      all.(i)
  done;
  check_close "pi agrees with pi_all" all.(n) (P.pi fig2 ~n ~r)

let test_log_pi_consistent () =
  let r = 1.2 and n = 4 in
  check_close ~tol:1e-9 "log pi matches pi"
    (log (P.pi fig2 ~n ~r))
    (P.log_pi fig2 ~n ~r)

let test_log_pi_survives_underflow () =
  (* with 30 probes at r = 3 the plain product underflows towards 0 but
     log_pi stays informative *)
  let lp = P.log_pi fig2 ~n:30 ~r:3. in
  Alcotest.(check bool) "deeply negative but finite" true
    (Float.is_finite lp && lp < -100.)

let test_pi_limit () =
  check_close ~tol:1e-20 "limit is (1-l)^n" 1e-30 (P.pi_limit fig2 ~n:2);
  check_close "n = 0 limit" 1. (P.pi_limit fig2 ~n:0)

let test_guards () =
  Alcotest.check_raises "negative i"
    (Invalid_argument "Probes.no_answer: negative probe index") (fun () ->
      ignore (P.no_answer fig2 ~i:(-1) ~r:1.));
  Alcotest.check_raises "negative r"
    (Invalid_argument "Probes.pi: negative listening period") (fun () ->
      ignore (P.pi fig2 ~n:2 ~r:(-1.)))

(* The headline property: the paper's literal Eq. 1 product telescopes
   to the survival ratio.  Check across random scenarios. *)
let scenario_gen =
  QCheck.Gen.(
    let* loss = float_range 0. 0.5 in
    let* rate = float_range 0.5 20. in
    let* delay = float_range 0. 2. in
    let* q = float_range 0. 0.9 in
    return
      (Params.v ~name:"prop"
         ~delay:(Dist.Families.shifted_exponential ~mass:(1. -. loss) ~rate ~delay ())
         ~q ~probe_cost:1. ~error_cost:100.))

let prop_literal_equals_telescoped =
  QCheck.Test.make ~name:"Eq. 1 literal product = telescoped survival form"
    ~count:300
    QCheck.(triple (make scenario_gen) (int_range 1 10) (float_range 0.01 8.))
    (fun (p, i, r) ->
      Numerics.Safe_float.approx_eq ~rtol:1e-6 ~atol:1e-12
        (P.no_answer_literal p ~i ~r)
        (P.no_answer p ~i ~r))

let prop_pi_is_probability =
  QCheck.Test.make ~name:"pi_n(r) lies in [0, 1]" ~count:300
    QCheck.(triple (make scenario_gen) (int_range 1 10) (float_range 0. 8.))
    (fun (p, n, r) -> Numerics.Safe_float.is_probability (P.pi p ~n ~r))

let prop_pi_decreasing_in_r =
  QCheck.Test.make ~name:"pi_n is non-increasing in r" ~count:300
    QCheck.(quad (make scenario_gen) (int_range 1 8) (float_range 0.01 4.)
              (float_range 0.01 4.))
    (fun (p, n, r1, r2) ->
      let lo = Float.min r1 r2 and hi = Float.max r1 r2 in
      P.pi p ~n ~r:hi <= P.pi p ~n ~r:lo +. 1e-12)

let prop_pi_at_zero_is_one =
  QCheck.Test.make ~name:"pi_n(0) = 1 (no time to hear a reply)" ~count:100
    QCheck.(pair (make scenario_gen) (int_range 1 10))
    (fun (p, n) -> P.pi p ~n ~r:0. = 1.)

let prop_pi_approaches_loss_floor =
  QCheck.Test.make ~name:"pi_n(r) -> (1-l)^n for large r" ~count:100
    QCheck.(pair (make scenario_gen) (int_range 1 5))
    (fun (p, n) ->
      let floor = P.pi_limit p ~n in
      let at_large = P.pi p ~n ~r:1e4 in
      Numerics.Safe_float.approx_eq ~rtol:1e-3 ~atol:1e-15 at_large floor)

let () =
  Alcotest.run "probes"
    [ ( "point values",
        [ Alcotest.test_case "p_0 = 1" `Quick test_p0_is_one;
          Alcotest.test_case "below round trip" `Quick
            test_below_round_trip_nothing_arrives;
          Alcotest.test_case "known value" `Quick test_known_value;
          Alcotest.test_case "decreasing in i" `Quick test_decreasing_in_i ] );
      ( "prefix products",
        [ Alcotest.test_case "pi_all" `Quick test_pi_prefix_products;
          Alcotest.test_case "log pi consistent" `Quick test_log_pi_consistent;
          Alcotest.test_case "log pi underflow" `Quick test_log_pi_survives_underflow;
          Alcotest.test_case "pi limit" `Quick test_pi_limit;
          Alcotest.test_case "guards" `Quick test_guards ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_literal_equals_telescoped; prop_pi_is_probability;
            prop_pi_decreasing_in_r; prop_pi_at_zero_is_one;
            prop_pi_approaches_loss_floor ] ) ]
