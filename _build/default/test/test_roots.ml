module R = Numerics.Roots

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let test_bisect_simple () =
  let r = R.bisect ~f:(fun x -> (x *. x) -. 2.) 0. 2. in
  check_close "sqrt 2" (sqrt 2.) r.R.root

let test_bisect_endpoint_root () =
  let r = R.bisect ~f:(fun x -> x) 0. 1. in
  check_close "root at endpoint" 0. r.R.root;
  Alcotest.(check int) "no iterations" 0 r.R.iterations

let test_bisect_reversed_interval () =
  let r = R.bisect ~f:(fun x -> x -. 0.25) 1. 0. in
  check_close "handles b < a" 0.25 r.R.root

let test_bisect_rejects_same_sign () =
  Alcotest.check_raises "no bracket"
    (Invalid_argument "Roots.bisect: endpoints do not bracket a root")
    (fun () -> ignore (R.bisect ~f:(fun x -> (x *. x) +. 1.) (-1.) 1.))

let test_brent_polynomial () =
  let f x = ((x -. 1.) *. (x -. 2.) *. (x -. 3.)) in
  let r = R.brent ~f 1.5 2.9 in
  check_close "middle root" 2. r.R.root

let test_brent_transcendental () =
  let r = R.brent ~f:(fun x -> cos x -. x) 0. 1. in
  check_close "dottie number" 0.7390851332151607 r.R.root

let test_brent_faster_than_bisect () =
  let f x = exp x -. 2. in
  let b = R.bisect ~tol:1e-14 ~f 0. 10. in
  let br = R.brent ~tol:1e-14 ~f 0. 10. in
  check_close "bisect finds log 2" (log 2.) b.R.root;
  check_close "brent finds log 2" (log 2.) br.R.root;
  Alcotest.(check bool) "brent needs fewer iterations" true
    (br.R.iterations < b.R.iterations)

let test_brent_steep () =
  (* the zeroconf derivative shape: huge negative slope then gentle *)
  let f x = if x < 1. then -1e10 *. (1. -. x) +. 1. else x in
  (* f(0) < 0, f(2) > 0 (f jumps at 1 but is monotone) *)
  Alcotest.(check bool) "converged on stiff function" true
    (Float.abs (f (R.brent ~f 0. 2.).R.root) < 1e-3)

let test_newton () =
  let r = R.newton ~f:(fun x -> (x *. x) -. 2.) ~df:(fun x -> 2. *. x) 1. in
  check_close "sqrt 2 by newton" (sqrt 2.) r.R.root;
  Alcotest.(check bool) "few iterations" true (r.R.iterations <= 8)

let test_newton_zero_derivative () =
  Alcotest.check_raises "flat point" (Failure "Roots.newton: zero derivative")
    (fun () ->
      ignore (R.newton ~f:(fun x -> (x *. x) -. 2.) ~df:(fun _ -> 0.) 1.))

let test_bracket () =
  let a, b = R.bracket ~f:(fun x -> x -. 100.) 0. 1. in
  Alcotest.(check bool) "expanded to contain root" true (a <= 100. && 100. <= b)

let test_bracket_failure () =
  Alcotest.check_raises "positive function never brackets" R.No_bracket
    (fun () -> ignore (R.bracket ~max_iter:10 ~f:(fun x -> (x *. x) +. 1.) 0. 1.))

let test_find_all () =
  let f x = sin x in
  let roots = R.find_all ~f 0.5 9.9 in
  Alcotest.(check int) "three roots of sin in (0.5, 9.9)" 3 (List.length roots);
  List.iter2
    (fun expected actual -> check_close "pi multiple" expected actual)
    [ Float.pi; 2. *. Float.pi; 3. *. Float.pi ]
    roots

let test_find_all_none () =
  Alcotest.(check (list (float 1e-9))) "no roots" []
    (R.find_all ~f:(fun x -> (x *. x) +. 1.) (-5.) 5.)

let prop_brent_finds_planted_root =
  QCheck.Test.make ~name:"brent recovers a planted root" ~count:300
    QCheck.(float_range (-50.) 50.)
    (fun root ->
      let f x = (x -. root) *. ((x -. root) ** 2. +. 1.) in
      let r = R.brent ~f (root -. 10.) (root +. 11.) in
      Float.abs (r.R.root -. root) < 1e-6)

let prop_bisect_respects_bracket =
  QCheck.Test.make ~name:"bisection result stays inside the bracket" ~count:300
    QCheck.(pair (float_range (-10.) 0.) (float_range 0.1 10.))
    (fun (a, b) ->
      let f x = x in
      let r = R.bisect ~f a b in
      r.R.root >= a && r.R.root <= b)

let () =
  Alcotest.run "roots"
    [ ( "bisect",
        [ Alcotest.test_case "simple" `Quick test_bisect_simple;
          Alcotest.test_case "endpoint root" `Quick test_bisect_endpoint_root;
          Alcotest.test_case "reversed interval" `Quick test_bisect_reversed_interval;
          Alcotest.test_case "rejects same sign" `Quick test_bisect_rejects_same_sign ] );
      ( "brent",
        [ Alcotest.test_case "polynomial" `Quick test_brent_polynomial;
          Alcotest.test_case "transcendental" `Quick test_brent_transcendental;
          Alcotest.test_case "beats bisection" `Quick test_brent_faster_than_bisect;
          Alcotest.test_case "stiff function" `Quick test_brent_steep ] );
      ( "newton",
        [ Alcotest.test_case "sqrt" `Quick test_newton;
          Alcotest.test_case "zero derivative" `Quick test_newton_zero_derivative ] );
      ( "bracket",
        [ Alcotest.test_case "expansion" `Quick test_bracket;
          Alcotest.test_case "failure" `Quick test_bracket_failure ] );
      ( "find_all",
        [ Alcotest.test_case "sin roots" `Quick test_find_all;
          Alcotest.test_case "no roots" `Quick test_find_all_none ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_brent_finds_planted_root; prop_bisect_respects_bracket ] ) ]
