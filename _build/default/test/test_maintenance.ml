module Mnt = Netsim.Maintenance

let one_way = Dist.Families.deterministic ~delay:0.02 ()

let config =
  Netsim.Newcomer.drm_config ~n:2 ~r:0.2 ~probe_cost:0. ~error_cost:0.

let run ?background_rate ?connection_rate ?(loss = 0.) ~seed () =
  Mnt.simulate_collision ?background_rate ?connection_rate ~loss ~one_way
    ~occupied:20 ~pool_size:64 ~config
    ~rng:(Numerics.Rng.create seed) ()

let test_resolution_structure () =
  let r = run ~background_rate:1. ~seed:1 () in
  Alcotest.(check bool) "detection positive" true (r.Mnt.detection_time > 0.);
  Alcotest.(check bool) "reconfiguration at least n*r" true
    (r.Mnt.reconfiguration_time >= 0.4 -. 1e-9);
  Alcotest.(check (float 1e-9)) "disruption adds up"
    (r.Mnt.detection_time +. r.Mnt.reconfiguration_time)
    r.Mnt.total_disruption;
  Alcotest.(check bool) "connections non-negative" true
    (r.Mnt.broken_connections >= 0)

let test_chattier_network_detects_faster () =
  (* average detection latency scales with 1/background_rate *)
  let mean_detection rate =
    let rng = Numerics.Rng.create 7 in
    let acc = ref 0. in
    let trials = 40 in
    for _ = 1 to trials do
      let r =
        Mnt.simulate_collision ~background_rate:rate ~loss:0. ~one_way
          ~occupied:20 ~pool_size:64 ~config ~rng ()
      in
      acc := !acc +. r.Mnt.detection_time
    done;
    !acc /. float_of_int trials
  in
  let fast = mean_detection 10. in
  let slow = mean_detection 0.1 in
  Alcotest.(check bool)
    (Printf.sprintf "chatty %.2f s << quiet %.2f s" fast slow)
    true (fast *. 5. < slow)

let test_loss_delays_detection () =
  let mean_detection loss =
    let rng = Numerics.Rng.create 8 in
    let acc = ref 0. in
    let trials = 40 in
    for _ = 1 to trials do
      let r =
        Mnt.simulate_collision ~background_rate:1. ~loss ~one_way ~occupied:20
          ~pool_size:64 ~config ~rng ()
      in
      acc := !acc +. r.Mnt.detection_time
    done;
    !acc /. float_of_int trials
  in
  let clean = mean_detection 0. in
  let lossy = mean_detection 0.8 in
  Alcotest.(check bool)
    (Printf.sprintf "clean %.2f s < lossy %.2f s" clean lossy)
    true (clean < lossy)

let test_more_connections_on_slow_detection () =
  let r = run ~background_rate:0.01 ~connection_rate:1. ~seed:3 () in
  Alcotest.(check bool)
    (Printf.sprintf "%d connections opened during %g s of latency"
       r.Mnt.broken_connections r.Mnt.detection_time)
    true
    (r.Mnt.broken_connections > 0)

let test_estimate_error_cost () =
  let rng = Numerics.Rng.create 9 in
  let est =
    Mnt.estimate_error_cost ~per_connection:30. ~background_rate:1. ~loss:0.
      ~one_way ~occupied:20 ~pool_size:64 ~config ~trials:20 ~rng ()
  in
  Alcotest.(check int) "trials recorded" 20 est.Mnt.trials;
  Alcotest.(check bool) "suggested E consistent" true
    (Numerics.Safe_float.approx_eq ~rtol:1e-9
       (est.Mnt.disruption.Numerics.Stats.mean +. (30. *. est.Mnt.mean_broken))
       est.Mnt.suggested_error_cost);
  Alcotest.(check bool) "E positive" true (est.Mnt.suggested_error_cost > 0.)

let test_guards () =
  Alcotest.check_raises "bad background rate"
    (Invalid_argument "Maintenance.simulate_collision: background_rate <= 0")
    (fun () -> ignore (run ~background_rate:0. ~seed:1 ()));
  let rng = Numerics.Rng.create 1 in
  Alcotest.check_raises "bad trials"
    (Invalid_argument "Maintenance.estimate_error_cost: trials < 1") (fun () ->
      ignore
        (Mnt.estimate_error_cost ~loss:0. ~one_way ~occupied:20 ~pool_size:64
           ~config ~trials:0 ~rng ()))

let () =
  Alcotest.run "maintenance"
    [ ( "resolution",
        [ Alcotest.test_case "structure" `Quick test_resolution_structure;
          Alcotest.test_case "chatty detects faster" `Quick
            test_chattier_network_detects_faster;
          Alcotest.test_case "loss delays detection" `Quick test_loss_delays_detection;
          Alcotest.test_case "connections accumulate" `Quick
            test_more_connections_on_slow_detection ] );
      ( "cost estimate",
        [ Alcotest.test_case "aggregation" `Quick test_estimate_error_cost;
          Alcotest.test_case "guards" `Quick test_guards ] ) ]
