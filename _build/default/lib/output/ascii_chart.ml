let plot ?(width = 72) ?(height = 20) ?x_axis ?y_axis ~title series =
  if width < 16 || height < 4 then invalid_arg "Ascii_chart.plot: too small";
  let all_points = List.concat_map (fun (_, pts) -> Array.to_list pts) series in
  let finite_pairs =
    List.filter (fun (x, y) -> Float.is_finite x && Float.is_finite y) all_points
  in
  if finite_pairs = [] then invalid_arg "Ascii_chart.plot: no finite points";
  let xs = Array.of_list (List.map fst finite_pairs) in
  let ys = Array.of_list (List.map snd finite_pairs) in
  let x_axis = match x_axis with Some a -> a | None -> Axis.of_data xs in
  let y_axis = match y_axis with Some a -> a | None -> Axis.of_data ys in
  let canvas = Array.make_matrix height width ' ' in
  let in_range axis v = v >= Axis.lo axis && v <= Axis.hi axis in
  List.iteri
    (fun idx (_, pts) ->
      let mark = Char.chr (Char.code 'a' + (idx mod 26)) in
      Array.iter
        (fun (x, y) ->
          if
            Float.is_finite y && in_range x_axis x && in_range y_axis y
          then begin
            let col =
              min (width - 1)
                (int_of_float (Axis.project x_axis x *. float_of_int (width - 1)))
            in
            let row =
              min (height - 1)
                (int_of_float
                   ((1. -. Axis.project y_axis y) *. float_of_int (height - 1)))
            in
            canvas.(row).(col) <- mark
          end)
        pts)
    series;
  let buf = Buffer.create ((width + 16) * (height + 4)) in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let y_lo_label = Printf.sprintf "%.3g" (Axis.lo y_axis) in
  let y_hi_label = Printf.sprintf "%.3g" (Axis.hi y_axis) in
  let label_width = max (String.length y_lo_label) (String.length y_hi_label) in
  Array.iteri
    (fun row line ->
      let label =
        if row = 0 then y_hi_label
        else if row = height - 1 then y_lo_label
        else ""
      in
      Buffer.add_string buf (Printf.sprintf "%*s |" label_width label);
      Array.iter (Buffer.add_char buf) line;
      Buffer.add_char buf '\n')
    canvas;
  Buffer.add_string buf (String.make (label_width + 2) ' ');
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%*s  %-10.4g%*s%10.4g\n" label_width ""
       (Axis.lo x_axis)
       (max 1 (width - 20))
       "" (Axis.hi x_axis));
  List.iteri
    (fun idx (label, _) ->
      Buffer.add_string buf
        (Printf.sprintf "  %c = %s\n" (Char.chr (Char.code 'a' + (idx mod 26))) label))
    series;
  Buffer.contents buf
