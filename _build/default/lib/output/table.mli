(** Aligned text and Markdown tables for the experiment reports. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
val add_row : t -> string list -> unit
(** Raises [Invalid_argument] on a column-count mismatch. *)

val add_float_row : ?fmt:(float -> string) -> t -> float list -> unit
(** Formats with ["%.6g"] by default. *)

val to_text : t -> string
(** Box-drawing-free aligned plain text. *)

val to_markdown : t -> string

val pp : Format.formatter -> t -> unit
(** Prints {!to_text}. *)
