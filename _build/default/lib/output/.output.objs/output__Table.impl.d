lib/output/table.ml: Format List Printf String
