lib/output/table.mli: Format
