lib/output/heatmap.mli: Svg
