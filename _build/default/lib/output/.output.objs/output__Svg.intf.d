lib/output/svg.mli:
