lib/output/csv.mli:
