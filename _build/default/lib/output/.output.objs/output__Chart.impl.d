lib/output/chart.ml: Array Axis Float List Svg
