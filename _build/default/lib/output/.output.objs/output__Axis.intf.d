lib/output/axis.mli:
