lib/output/csv.ml: Array Fun List Numerics Printf String
