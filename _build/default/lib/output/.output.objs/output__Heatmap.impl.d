lib/output/heatmap.ml: Array Float List Numerics Printf Svg
