lib/output/ascii_chart.mli: Axis
