lib/output/svg.ml: Buffer Fun List Printf String
