lib/output/axis.ml: Array Float List Numerics Printf
