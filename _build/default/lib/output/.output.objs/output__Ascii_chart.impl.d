lib/output/ascii_chart.ml: Array Axis Buffer Char Float List Printf String
