lib/output/chart.mli: Axis Svg
