type t = {
  title : string;
  x_label : string;
  y_label : string;
  x_ticks : string array;
  y_ticks : string array;
  values : float array array;
}

let validate t =
  let rows = Array.length t.values in
  if rows = 0 then invalid_arg "Heatmap.render: no rows";
  let cols = Array.length t.values.(0) in
  if cols = 0 then invalid_arg "Heatmap.render: empty rows";
  Array.iter
    (fun row ->
      if Array.length row <> cols then invalid_arg "Heatmap.render: ragged data")
    t.values;
  if Array.length t.x_ticks <> cols then
    invalid_arg "Heatmap.render: x_ticks/columns mismatch";
  if Array.length t.y_ticks <> rows then
    invalid_arg "Heatmap.render: y_ticks/rows mismatch";
  (rows, cols)

(* light yellow -> red colour ramp *)
let colour frac =
  let frac = Numerics.Safe_float.clamp ~lo:0. ~hi:1. frac in
  let red = 255 in
  let green = int_of_float (235. -. (190. *. frac)) in
  let blue = int_of_float (205. *. (1. -. frac)) in
  Printf.sprintf "#%02x%02x%02x" red green blue

let render ?(width = 720) ?(height = 480) t =
  let rows, cols = validate t in
  let svg = Svg.create ~width ~height in
  let ml = 80. and mr = 40. and mt = 40. and mb = 60. in
  let plot_w = float_of_int width -. ml -. mr in
  let plot_h = float_of_int height -. mt -. mb in
  let cell_w = plot_w /. float_of_int cols in
  let cell_h = plot_h /. float_of_int rows in
  let finite =
    Array.to_list t.values
    |> List.concat_map Array.to_list
    |> List.filter Float.is_finite
  in
  if finite = [] then invalid_arg "Heatmap.render: no finite values";
  let lo = List.fold_left Float.min (List.hd finite) finite in
  let hi = List.fold_left Float.max (List.hd finite) finite in
  let span = if hi > lo then hi -. lo else 1. in
  for row = 0 to rows - 1 do
    for col = 0 to cols - 1 do
      let v = t.values.(row).(col) in
      let fill =
        if Float.is_finite v then colour ((v -. lo) /. span) else "#bbbbbb"
      in
      let x = ml +. (float_of_int col *. cell_w) in
      (* row 0 at the bottom *)
      let y = mt +. plot_h -. (float_of_int (row + 1) *. cell_h) in
      Svg.rect svg ~fill ~stroke:"#ffffff" (x, y) (cell_w, cell_h)
    done
  done;
  (* tick labels: thin to at most ~12 along x *)
  let x_stride = max 1 (cols / 12) in
  Array.iteri
    (fun col label ->
      if col mod x_stride = 0 then
        Svg.text svg ~anchor:"middle" ~size:10
          ~x:(ml +. ((float_of_int col +. 0.5) *. cell_w))
          ~y:(mt +. plot_h +. 14.) label)
    t.x_ticks;
  Array.iteri
    (fun row label ->
      Svg.text svg ~anchor:"end" ~size:10 ~x:(ml -. 6.)
        ~y:(mt +. plot_h -. ((float_of_int row +. 0.5) *. cell_h) +. 4.)
        label)
    t.y_ticks;
  Svg.text svg ~size:14 ~anchor:"middle" ~x:(ml +. (plot_w /. 2.)) ~y:(mt -. 12.)
    t.title;
  Svg.text svg ~anchor:"middle" ~x:(ml +. (plot_w /. 2.))
    ~y:(float_of_int height -. 12.) t.x_label;
  Svg.text svg ~anchor:"middle" ~x:18. ~y:(mt +. (plot_h /. 2.)) t.y_label;
  (* colour legend *)
  Svg.text svg ~size:10 ~x:(ml +. plot_w -. 160.) ~y:(mt -. 12.)
    (Printf.sprintf "min %.3g" lo);
  Svg.rect svg ~fill:(colour 0.) (ml +. plot_w -. 110., mt -. 22.) (18., 12.);
  Svg.rect svg ~fill:(colour 1.) (ml +. plot_w -. 88., mt -. 22.) (18., 12.);
  Svg.text svg ~size:10 ~x:(ml +. plot_w -. 62.) ~y:(mt -. 12.)
    (Printf.sprintf "max %.3g" hi);
  svg

let save ?width ?height t path = Svg.save (render ?width ?height t) path
