let quote field =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') field then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
  else field

let write ~path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let emit row =
        output_string oc (String.concat "," (List.map quote row));
        output_char oc '\n'
      in
      emit header;
      List.iter
        (fun row ->
          if List.length row <> List.length header then
            invalid_arg "Csv.write: row width mismatch";
          emit row)
        rows)

let write_series ~path ~x_label series =
  match series with
  | [] -> invalid_arg "Csv.write_series: no series"
  | (_, first) :: rest ->
      let xs = Array.map fst first in
      List.iter
        (fun (_, pts) ->
          if
            Array.length pts <> Array.length xs
            || not
                 (Array.for_all2
                    (fun (x, _) x' -> Numerics.Safe_float.approx_eq x x')
                    pts xs)
          then invalid_arg "Csv.write_series: mismatched grids")
        rest;
      let header = x_label :: List.map fst series in
      let rows =
        Array.to_list
          (Array.mapi
             (fun i x ->
               Printf.sprintf "%.9g" x
               :: List.map
                    (fun (_, pts) -> Printf.sprintf "%.9g" (snd pts.(i)))
                    series)
             xs)
      in
      write ~path ~header rows
