(** CSV export of experiment series (RFC-4180 quoting). *)

val write : path:string -> header:string list -> string list list -> unit

val write_series :
  path:string -> x_label:string -> (string * (float * float) array) list -> unit
(** Join several (x, y) series on their x values (which must agree
    across series, as the experiment grids do) into one wide CSV.
    Raises [Invalid_argument] when the grids differ. *)
