type t = { width : int; height : int; mutable elements : string list (* reversed *) }

let create ~width ~height =
  if width < 1 || height < 1 then invalid_arg "Svg.create: non-positive size";
  { width; height; elements = [] }

let width t = t.width
let height t = t.height
let push t e = t.elements <- e :: t.elements

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let dash_attr = function
  | None -> ""
  | Some d -> Printf.sprintf {| stroke-dasharray="%s"|} d

let line t ?(stroke = "#000") ?(stroke_width = 1.) ?dash (x1, y1) (x2, y2) =
  push t
    (Printf.sprintf
       {|<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"%s/>|}
       x1 y1 x2 y2 stroke stroke_width (dash_attr dash))

let polyline t ?(stroke = "#000") ?(stroke_width = 1.5) ?dash points =
  match points with
  | [] | [ _ ] -> ()
  | _ ->
      let coords =
        String.concat " "
          (List.map (fun (x, y) -> Printf.sprintf "%.2f,%.2f" x y) points)
      in
      push t
        (Printf.sprintf
           {|<polyline points="%s" fill="none" stroke="%s" stroke-width="%.2f"%s/>|}
           coords stroke stroke_width (dash_attr dash))

let rect t ?(fill = "none") ?(stroke = "none") (x, y) (w, h) =
  push t
    (Printf.sprintf
       {|<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="%s"/>|}
       x y w h fill stroke)

let circle t ?(fill = "#000") (cx, cy) r =
  push t
    (Printf.sprintf {|<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s"/>|} cx cy r fill)

let text t ?(size = 11) ?(anchor = "start") ?(fill = "#333") ~x ~y s =
  push t
    (Printf.sprintf
       {|<text x="%.2f" y="%.2f" font-size="%d" font-family="sans-serif" text-anchor="%s" fill="%s">%s</text>|}
       x y size anchor fill (escape s))

let to_string t =
  Printf.sprintf
    {|<?xml version="1.0" encoding="UTF-8"?>
<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">
<rect width="%d" height="%d" fill="white"/>
%s
</svg>
|}
    t.width t.height t.width t.height t.width t.height
    (String.concat "\n" (List.rev t.elements))

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))
