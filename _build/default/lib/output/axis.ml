type scale = Linear | Log10
type t = { scale : scale; lo : float; hi : float }

let create ?(scale = Linear) ~lo ~hi () =
  if not (lo < hi) then invalid_arg "Axis.create: need lo < hi";
  (match scale with
  | Log10 when lo <= 0. -> invalid_arg "Axis.create: log axis needs lo > 0"
  | Log10 | Linear -> ());
  { scale; lo; hi }

let lo t = t.lo
let hi t = t.hi
let scale t = t.scale

let project t v =
  let frac =
    match t.scale with
    | Linear -> (v -. t.lo) /. (t.hi -. t.lo)
    | Log10 ->
        if v <= 0. then 0.
        else (log10 v -. log10 t.lo) /. (log10 t.hi -. log10 t.lo)
  in
  Numerics.Safe_float.clamp ~lo:0. ~hi:1. frac

let label v =
  let a = Float.abs v in
  if v = 0. then "0"
  else if a >= 1e5 || a < 1e-3 then Printf.sprintf "%.0e" v
  else if Float.is_integer v && a < 1e5 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3g" v

(* linear ticks at a "nice" step: 1, 2 or 5 times a power of ten *)
let nice_step span target =
  let raw = span /. float_of_int target in
  let mag = 10. ** Float.floor (log10 raw) in
  let residual = raw /. mag in
  let mult = if residual <= 1.5 then 1. else if residual <= 3.5 then 2. else if residual <= 7.5 then 5. else 10. in
  mult *. mag

let ticks ?(target = 6) t =
  match t.scale with
  | Linear ->
      let step = nice_step (t.hi -. t.lo) target in
      let first = Float.ceil (t.lo /. step) *. step in
      let rec collect v acc =
        if v > t.hi +. (1e-9 *. step) then List.rev acc
        else
          let v' = if Float.abs v < 1e-12 *. step then 0. else v in
          collect (v +. step) ((v', label v') :: acc)
      in
      collect first []
  | Log10 ->
      let lo_exp = int_of_float (Float.ceil (log10 t.lo -. 1e-9)) in
      let hi_exp = int_of_float (Float.floor (log10 t.hi +. 1e-9)) in
      let count = hi_exp - lo_exp + 1 in
      let stride = max 1 (count / target) in
      List.filter_map
        (fun e ->
          if (e - lo_exp) mod stride = 0 then
            let v = 10. ** float_of_int e in
            Some (v, Printf.sprintf "1e%d" e)
          else None)
        (List.init count (fun i -> lo_exp + i))

let of_data ?(scale = Linear) ?(pad = 0.05) data =
  if Array.length data = 0 then invalid_arg "Axis.of_data: empty data";
  let finite = Array.of_list (List.filter Float.is_finite (Array.to_list data)) in
  if Array.length finite = 0 then invalid_arg "Axis.of_data: no finite data";
  let lo = Array.fold_left Float.min finite.(0) finite in
  let hi = Array.fold_left Float.max finite.(0) finite in
  match scale with
  | Linear ->
      let span = if hi > lo then hi -. lo else Float.max 1. (Float.abs lo) in
      create ~scale ~lo:(lo -. (pad *. span)) ~hi:(hi +. (pad *. span)) ()
  | Log10 ->
      if hi <= 0. then invalid_arg "Axis.of_data: log axis needs positive data";
      let lo = if lo <= 0. then hi /. 1e6 else lo in
      let llo = log10 lo and lhi = log10 hi in
      let span = if lhi > llo then lhi -. llo else 1. in
      create ~scale
        ~lo:(10. ** (llo -. (pad *. span)))
        ~hi:(10. ** (lhi +. (pad *. span)))
        ()
