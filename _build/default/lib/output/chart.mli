(** Multi-series line charts rendered to SVG — the renderer behind the
    regenerated Figures 2–6. *)

type series = {
  label : string;
  points : (float * float) array;
  style : [ `Solid | `Dashed | `Dotted ];
}

val series :
  ?style:[ `Solid | `Dashed | `Dotted ] -> label:string ->
  (float * float) array -> series

type t = {
  title : string;
  x_label : string;
  y_label : string;
  x_axis : Axis.t;
  y_axis : Axis.t;
  series : series list;
}

val render : ?width:int -> ?height:int -> t -> Svg.t
(** Points outside the axis ranges are clipped (the polyline is broken
    there), matching how the paper's plot frames hide the huge [C_1],
    [C_2] values. *)

val save : ?width:int -> ?height:int -> t -> string -> unit
