(** Terminal line plots, so `dune exec` output shows the figures' shape
    without leaving the shell. *)

val plot :
  ?width:int -> ?height:int -> ?x_axis:Axis.t -> ?y_axis:Axis.t ->
  title:string -> (string * (float * float) array) list -> string
(** Render the series onto a character canvas (each series gets the
    marks [a], [b], [c], ...; overlaps show the later series).  Axes
    default to the data range.  Returns a multi-line string. *)
