(** Axis scaling and tick generation for the chart renderers. *)

type scale = Linear | Log10

type t

val create : ?scale:scale -> lo:float -> hi:float -> unit -> t
(** [lo < hi]; a log axis additionally needs [lo > 0]. *)

val lo : t -> float
val hi : t -> float
val scale : t -> scale

val project : t -> float -> float
(** Map a data value into [\[0, 1\]] (clamped). *)

val ticks : ?target:int -> t -> (float * string) list
(** "Nice" tick positions (multiples of 1, 2, 5 x 10^k on linear axes;
    decades on log axes) with compact labels; roughly [target]
    (default [6]) of them. *)

val of_data : ?scale:scale -> ?pad:float -> float array -> t
(** Axis spanning the data range, padded by [pad] (default [0.05]) of
    the span on each side (log axes pad in log space).  Raises
    [Invalid_argument] on empty or degenerate data it cannot span. *)
