type series = {
  label : string;
  points : (float * float) array;
  style : [ `Solid | `Dashed | `Dotted ];
}

let series ?(style = `Solid) ~label points = { label; points; style }

type t = {
  title : string;
  x_label : string;
  y_label : string;
  x_axis : Axis.t;
  y_axis : Axis.t;
  series : series list;
}

let palette =
  [| "#1f77b4"; "#d62728"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b";
     "#e377c2"; "#17becf"; "#bcbd22"; "#7f7f7f" |]

let dash_of_style = function
  | `Solid -> None
  | `Dashed -> Some "6,4"
  | `Dotted -> Some "2,3"

let render ?(width = 720) ?(height = 480) t =
  let svg = Svg.create ~width ~height in
  let ml = 70. and mr = 150. and mt = 40. and mb = 55. in
  let plot_w = float_of_int width -. ml -. mr in
  let plot_h = float_of_int height -. mt -. mb in
  let px v = ml +. (Axis.project t.x_axis v *. plot_w) in
  let py v = mt +. plot_h -. (Axis.project t.y_axis v *. plot_h) in
  (* frame and gridlines *)
  Svg.rect svg ~stroke:"#888" (ml, mt) (plot_w, plot_h);
  List.iter
    (fun (v, lbl) ->
      let x = px v in
      Svg.line svg ~stroke:"#ddd" (x, mt) (x, mt +. plot_h);
      Svg.text svg ~anchor:"middle" ~x ~y:(mt +. plot_h +. 16.) lbl)
    (Axis.ticks t.x_axis);
  List.iter
    (fun (v, lbl) ->
      let y = py v in
      Svg.line svg ~stroke:"#ddd" (ml, y) (ml +. plot_w, y);
      Svg.text svg ~anchor:"end" ~x:(ml -. 6.) ~y:(y +. 4.) lbl)
    (Axis.ticks t.y_axis);
  (* series, clipped to the frame by breaking the polyline *)
  let in_range axis v = v >= Axis.lo axis && v <= Axis.hi axis in
  List.iteri
    (fun idx s ->
      let colour = palette.(idx mod Array.length palette) in
      let dash = dash_of_style s.style in
      let flush segment =
        match segment with
        | [] | [ _ ] -> ()
        | pts -> Svg.polyline svg ~stroke:colour ?dash (List.rev pts)
      in
      let segment = ref [] in
      Array.iter
        (fun (x, y) ->
          if Float.is_finite y && in_range t.x_axis x && in_range t.y_axis y
          then segment := (px x, py y) :: !segment
          else begin
            flush !segment;
            segment := []
          end)
        s.points;
      flush !segment;
      (* legend entry *)
      let ly = mt +. 10. +. (float_of_int idx *. 18.) in
      let lx = ml +. plot_w +. 12. in
      Svg.line svg ~stroke:colour ~stroke_width:2. ?dash (lx, ly)
        (lx +. 24., ly);
      Svg.text svg ~x:(lx +. 30.) ~y:(ly +. 4.) s.label)
    t.series;
  (* titles *)
  Svg.text svg ~size:14 ~anchor:"middle"
    ~x:(ml +. (plot_w /. 2.)) ~y:(mt -. 14.) t.title;
  Svg.text svg ~anchor:"middle" ~x:(ml +. (plot_w /. 2.))
    ~y:(float_of_int height -. 14.) t.x_label;
  Svg.text svg ~anchor:"middle" ~x:16. ~y:(mt +. (plot_h /. 2.))
    t.y_label;
  svg

let save ?width ?height t path = Svg.save (render ?width ?height t) path
