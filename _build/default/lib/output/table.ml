type align = Left | Right

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let create ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: column count mismatch";
  t.rows <- cells :: t.rows

let add_float_row ?(fmt = Printf.sprintf "%.6g") t values =
  add_row t (List.map fmt values)

let column_widths t =
  let rows = t.headers :: List.rev t.rows in
  List.mapi
    (fun i _ ->
      List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 rows)
    t.headers

let pad align width s =
  let fill = String.make (max 0 (width - String.length s)) ' ' in
  match align with Left -> s ^ fill | Right -> fill ^ s

let to_text t =
  let widths = column_widths t in
  let render_row cells =
    String.concat "  "
      (List.map2 (fun (w, a) c -> pad a w c) (List.combine widths t.aligns) cells)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n"
    (render_row t.headers :: sep :: List.map render_row (List.rev t.rows))
  ^ "\n"

let to_markdown t =
  let row cells = "| " ^ String.concat " | " cells ^ " |" in
  let sep =
    row
      (List.map
         (function Left -> ":---" | Right -> "---:")
         t.aligns)
  in
  String.concat "\n" (row t.headers :: sep :: List.map row (List.rev t.rows))
  ^ "\n"

let pp ppf t = Format.pp_print_string ppf (to_text t)
