(** Grid heatmaps (SVG): the natural rendering for the cost landscape
    [C(n, r)] over the design grid. *)

type t = {
  title : string;
  x_label : string;
  y_label : string;
  x_ticks : string array;  (** One label per column. *)
  y_ticks : string array;  (** One label per row. *)
  values : float array array;
      (** [values.(row).(col)]; rows render bottom-up so the first row
          sits at the bottom, matching axis convention. *)
}

val render : ?width:int -> ?height:int -> t -> Svg.t
(** Colours run from light (minimum) to dark red (maximum) over the
    finite values; non-finite cells render grey.  A min/max legend is
    included.  Raises [Invalid_argument] on ragged or empty data or
    label-dimension mismatches. *)

val save : ?width:int -> ?height:int -> t -> string -> unit
