(** Minimal SVG document builder — enough vocabulary for line charts:
    paths, lines, rectangles, text, and dash patterns.  Geometric
    arguments are [(x, y)] pairs in user units. *)

type t

val create : width:int -> height:int -> t
val width : t -> int
val height : t -> int

val line :
  t -> ?stroke:string -> ?stroke_width:float -> ?dash:string ->
  float * float -> float * float -> unit
(** [line t p1 p2]. *)

val polyline :
  t -> ?stroke:string -> ?stroke_width:float -> ?dash:string ->
  (float * float) list -> unit
(** Rendered as one open path. *)

val rect :
  t -> ?fill:string -> ?stroke:string -> float * float -> float * float -> unit
(** [rect t (x, y) (w, h)]. *)

val circle : t -> ?fill:string -> float * float -> float -> unit
(** [circle t centre radius]. *)

val text :
  t -> ?size:int -> ?anchor:string -> ?fill:string -> x:float -> y:float ->
  string -> unit
(** [anchor] is an SVG [text-anchor]: ["start"], ["middle"], or
    ["end"]. *)

val to_string : t -> string
val save : t -> string -> unit
(** Write the document to a file. *)
