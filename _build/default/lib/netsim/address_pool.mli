(** The link-local address space (65024 addresses, 169.254.1.0 –
    169.254.254.255) and its occupancy. *)

type t

val create : ?size:int -> unit -> t
(** Default size is {!Zeroconf-like} 65024; smaller pools are useful in
    tests to provoke collisions. *)

val size : t -> int
val occupied_count : t -> int

val claim : t -> int -> unit
(** Mark an address occupied.  Raises [Invalid_argument] if out of
    range or already claimed. *)

val release : t -> int -> unit
val is_occupied : t -> int -> bool

val claim_random_free : t -> rng:Numerics.Rng.t -> int
(** Claim a uniformly random free address (rejection sampling; raises
    [Failure] when the pool is full). *)

val random_candidate : t -> rng:Numerics.Rng.t -> int
(** Uniform draw over the whole space — occupied or not — exactly the
    protocol's blind selection step. *)

val to_string : int -> string
(** Render an index as its dotted IPv4 in the 169.254/16 range. *)
