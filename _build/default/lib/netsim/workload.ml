type pattern =
  | Poisson of float
  | Flash of { count : int; within : float }
  | Periodic of float

type result = {
  arrivals : int;
  outcomes : Metrics.outcome array;
  collisions : int;
  all_unique : bool;
  last_completion : float;
  mean_config_time : float;
}

let arrival_times ~pattern ~horizon ~rng =
  match pattern with
  | Poisson rate ->
      if rate <= 0. then invalid_arg "Workload: Poisson rate <= 0";
      let rec collect t acc =
        let t = t +. Numerics.Rng.exponential rng ~rate in
        if t > horizon then List.rev acc else collect t (t :: acc)
      in
      collect 0. []
  | Flash { count; within } ->
      if count < 0 || within < 0. then invalid_arg "Workload: bad flash";
      List.sort Float.compare
        (List.init count (fun _ -> Numerics.Rng.uniform rng ~lo:0. ~hi:within))
  | Periodic every ->
      if every <= 0. then invalid_arg "Workload: period <= 0";
      let n = int_of_float (horizon /. every) in
      List.init n (fun i -> float_of_int (i + 1) *. every)

let run ~pattern ~horizon ~loss ~one_way ?processing ?(initial = 0) ?pool_size
    ~config ~rng () =
  if horizon <= 0. then invalid_arg "Workload.run: horizon <= 0";
  let engine = Engine.create () in
  let pool = Address_pool.create ?size:pool_size () in
  let link = Link.create ~engine ~rng ~loss ~one_way in
  for _ = 1 to initial do
    let address = Address_pool.claim_random_free pool ~rng in
    ignore (Host.create ~engine ~link ~rng ?processing ~address ())
  done;
  let times = arrival_times ~pattern ~horizon ~rng in
  if initial + List.length times >= Address_pool.size pool then
    failwith "Workload.run: address pool would be exhausted";
  let finished = ref [] in
  let completions = ref 0 in
  List.iter
    (fun time ->
      Engine.schedule_at engine ~time (fun () ->
          ignore
            (Newcomer.start ~engine ~link ~pool ~rng ~config
               ~on_done:(fun outcome ->
                 incr completions;
                 finished := (outcome, Engine.now engine) :: !finished;
                 if not outcome.Metrics.collided then
                   ignore
                     (Host.create ~engine ~link ~rng ?processing
                        ~address:outcome.Metrics.address ()))
               ())))
    times;
  Engine.run engine;
  let entries = Array.of_list (List.rev !finished) in
  let outcomes = Array.map fst entries in
  let collisions =
    Array.fold_left
      (fun acc (o : Metrics.outcome) -> if o.Metrics.collided then acc + 1 else acc)
      0 outcomes
  in
  let module Iset = Set.Make (Int) in
  let accepted =
    Array.fold_left
      (fun acc (o : Metrics.outcome) -> Iset.add o.Metrics.address acc)
      Iset.empty outcomes
  in
  { arrivals = List.length times;
    outcomes;
    collisions;
    all_unique = Iset.cardinal accepted = Array.length outcomes;
    last_completion =
      Array.fold_left (fun acc (_, t) -> Float.max acc t) 0. entries;
    mean_config_time =
      (if Array.length outcomes = 0 then 0.
       else
         Numerics.Safe_float.mean
           (Array.map (fun (o : Metrics.outcome) -> o.Metrics.config_time) outcomes)) }
