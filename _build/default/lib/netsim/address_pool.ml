type t = { size : int; occupied : Bytes.t; mutable count : int }

let default_size = 65024

let create ?(size = default_size) () =
  if size < 1 then invalid_arg "Address_pool.create: size < 1";
  { size; occupied = Bytes.make size '\000'; count = 0 }

let size t = t.size
let occupied_count t = t.count

let check t a name =
  if a < 0 || a >= t.size then invalid_arg (name ^ ": address out of range")

let is_occupied t a =
  check t a "Address_pool.is_occupied";
  Bytes.get t.occupied a <> '\000'

let claim t a =
  check t a "Address_pool.claim";
  if is_occupied t a then invalid_arg "Address_pool.claim: already occupied";
  Bytes.set t.occupied a '\001';
  t.count <- t.count + 1

let release t a =
  check t a "Address_pool.release";
  if not (is_occupied t a) then invalid_arg "Address_pool.release: not occupied";
  Bytes.set t.occupied a '\000';
  t.count <- t.count - 1

let random_candidate t ~rng = Numerics.Rng.int rng t.size

let claim_random_free t ~rng =
  if t.count >= t.size then failwith "Address_pool.claim_random_free: pool full";
  let rec draw () =
    let a = random_candidate t ~rng in
    if is_occupied t a then draw () else a
  in
  let a = draw () in
  claim t a;
  a

(* 169.254.1.0 .. 169.254.254.255: index 0 is 169.254.1.0 *)
let to_string a =
  let third = 1 + (a / 256) and fourth = a mod 256 in
  Printf.sprintf "169.254.%d.%d" third fourth
