(* One aggregate-mode configuration run, sampling reply delays straight
   from F_X with the DRM's period-boundary semantics (Sec. 3.1). *)
let aggregate_trial ~(delay : Dist.Distribution.t) ~pool ~rng
    ~(config : Newcomer.config) =
  let n = config.Newcomer.probes and r = config.Newcomer.listen in
  let step_cost = r +. config.Newcomer.probe_cost in
  let probes = ref 0 and restarts = ref 0 in
  let cost = ref 0. and time = ref 0. in
  let failed = Hashtbl.create 8 in
  let draw_candidate () =
    let c = ref (Address_pool.random_candidate pool ~rng) in
    if config.Newcomer.avoid_failed then begin
      let guard = ref 0 in
      while Hashtbl.mem failed !c && !guard < 10_000 do
        c := Address_pool.random_candidate pool ~rng;
        incr guard
      done
    end;
    !c
  in
  let rate_limit_delay () =
    match config.Newcomer.rate_limit with
    | Some (threshold, delay) when !restarts >= threshold -> delay
    | Some _ | None -> 0.
  in
  let rec attempt () =
    let candidate = draw_candidate () in
    if not (Address_pool.is_occupied pool candidate) then begin
      (* nobody answers: all n probes go out, then the address is kept *)
      probes := !probes + n;
      cost := !cost +. (float_of_int n *. step_cost);
      time := !time +. (float_of_int n *. r);
      (candidate, false)
    end
    else begin
      (* the owner may answer any of the n probes; probe i goes out at
         relative time (i-1) r and its reply lands X_i later *)
      let first_arrival = ref infinity in
      for i = 1 to n do
        match delay.sample rng with
        | None -> ()
        | Some x ->
            let arrival = (float_of_int (i - 1) *. r) +. x in
            if arrival < !first_arrival then first_arrival := arrival
      done;
      if !first_arrival > float_of_int n *. r then begin
        (* no reply within the protocol's horizon: collision accepted *)
        probes := !probes + n;
        cost := !cost +. (float_of_int n *. step_cost) +. config.Newcomer.error_cost;
        time := !time +. (float_of_int n *. r);
        (candidate, true)
      end
      else begin
        (* reply lands in period k: k probes were sent, attempt aborts *)
        let k = int_of_float (Float.ceil (!first_arrival /. r)) in
        let k = max 1 (min n k) in
        probes := !probes + k;
        cost := !cost +. (float_of_int k *. step_cost);
        time :=
          !time
          +.
          if config.Newcomer.immediate_abort then !first_arrival
          else float_of_int k *. r;
        Hashtbl.replace failed candidate ();
        incr restarts;
        let delay = rate_limit_delay () in
        time := !time +. delay;
        cost := !cost +. delay;
        attempt ()
      end
    end
  in
  let address, collided = attempt () in
  { Metrics.address;
    collided;
    probes_sent = !probes;
    restarts = !restarts;
    config_time = !time;
    cost = !cost }

let occupy_pool pool ~occupied ~rng =
  if occupied < 0 || occupied >= Address_pool.size pool then
    invalid_arg "Scenario: occupied outside [0, pool size)";
  let addresses = ref [] in
  for _ = 1 to occupied do
    addresses := Address_pool.claim_random_free pool ~rng :: !addresses
  done;
  !addresses

let run_aggregate ~delay ~occupied ?pool_size ~config ~trials ~rng () =
  if trials < 1 then invalid_arg "Scenario.run_aggregate: trials < 1";
  Array.init trials (fun _ ->
      let pool = Address_pool.create ?size:pool_size () in
      ignore (occupy_pool pool ~occupied ~rng);
      aggregate_trial ~delay ~pool ~rng ~config)

let detailed_trial ~loss ~one_way ?processing ?deaf_prob ~occupied ?pool_size
    ~config ~rng ~tracer () =
  let engine = Engine.create () in
  Engine.set_tracer engine tracer;
  let pool = Address_pool.create ?size:pool_size () in
  let link = Link.create ~engine ~rng ~loss ~one_way in
  let addresses = occupy_pool pool ~occupied ~rng in
  List.iter
    (fun address ->
      ignore (Host.create ~engine ~link ~rng ?processing ?deaf_prob ~address ()))
    addresses;
  let result = ref None in
  let _newcomer =
    Newcomer.start ~engine ~link ~pool ~rng ~config
      ~on_done:(fun outcome -> result := Some outcome)
      ()
  in
  Engine.run engine;
  match !result with
  | Some outcome -> outcome
  | None -> failwith "Scenario.detailed_trial: newcomer never finished"

let run_detailed ~loss ~one_way ?processing ?deaf_prob ~occupied ?pool_size
    ~config ~trials ~rng () =
  if trials < 1 then invalid_arg "Scenario.run_detailed: trials < 1";
  Array.init trials (fun _ ->
      detailed_trial ~loss ~one_way ?processing ?deaf_prob ~occupied ?pool_size
        ~config ~rng ~tracer:None ())

let trace_one ~loss ~one_way ?processing ~occupied ?pool_size ~config ~rng () =
  let log = ref [] in
  let tracer = Some (fun time line -> log := (time, line) :: !log) in
  let outcome =
    detailed_trial ~loss ~one_way ?processing ~occupied ?pool_size ~config ~rng
      ~tracer ()
  in
  (outcome, List.rev !log)
