type t =
  | Arp_probe of { sender : int; address : int }
  | Arp_reply of { sender : int; address : int }

let address = function
  | Arp_probe { address; _ } | Arp_reply { address; _ } -> address

let sender = function
  | Arp_probe { sender; _ } | Arp_reply { sender; _ } -> sender

let pp ppf = function
  | Arp_probe { sender; address } ->
      Format.fprintf ppf "probe[host%d, %s]" sender (Address_pool.to_string address)
  | Arp_reply { sender; address } ->
      Format.fprintf ppf "reply[host%d, %s]" sender (Address_pool.to_string address)
