type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : float;
  mutable tracer : (float -> string -> unit) option;
}

let create () = { queue = Event_queue.create (); clock = 0.; tracer = None }
let now t = t.clock

let schedule t ~after thunk =
  if after < 0. then invalid_arg "Engine.schedule: negative delay";
  Event_queue.add t.queue ~time:(t.clock +. after) thunk

let schedule_at t ~time thunk =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.add t.queue ~time thunk

let run ?until ?(max_events = 10_000_000) t =
  let fired = ref 0 in
  let continue = ref true in
  while !continue do
    match Event_queue.peek t.queue with
    | None -> continue := false
    | Some (time, _) -> (
        match until with
        | Some horizon when time > horizon ->
            t.clock <- horizon;
            continue := false
        | _ -> (
            match Event_queue.pop t.queue with
            | None -> continue := false
            | Some (time, thunk) ->
                t.clock <- time;
                incr fired;
                if !fired > max_events then
                  failwith "Engine.run: event budget exceeded";
                thunk ()))
  done

let pending t = Event_queue.size t.queue
let set_tracer t tracer = t.tracer <- tracer

let trace t fmt =
  match t.tracer with
  | None -> Printf.ikfprintf ignore () fmt
  | Some f -> Printf.ksprintf (fun s -> f t.clock s) fmt
