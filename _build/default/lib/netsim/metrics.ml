type outcome = {
  address : int;
  collided : bool;
  probes_sent : int;
  restarts : int;
  config_time : float;
  cost : float;
}

type aggregate = {
  trials : int;
  collisions : int;
  collision_rate : float;
  collision_ci : float * float;
  cost : Numerics.Stats.summary;
  cost_ci : float * float;
  config_time : Numerics.Stats.summary;
  mean_probes : float;
  mean_restarts : float;
}

let aggregate outcomes =
  let trials = Array.length outcomes in
  if trials = 0 then invalid_arg "Metrics.aggregate: no outcomes";
  let collisions =
    Array.fold_left
      (fun acc (o : outcome) -> if o.collided then acc + 1 else acc)
      0 outcomes
  in
  let costs = Array.map (fun (o : outcome) -> o.cost) outcomes in
  let times = Array.map (fun (o : outcome) -> o.config_time) outcomes in
  { trials;
    collisions;
    collision_rate = float_of_int collisions /. float_of_int trials;
    collision_ci = Numerics.Stats.proportion_ci ~successes:collisions trials;
    cost = Numerics.Stats.summarize costs;
    cost_ci = Numerics.Stats.mean_ci costs;
    config_time = Numerics.Stats.summarize times;
    mean_probes =
      Numerics.Safe_float.mean
        (Array.map (fun o -> float_of_int o.probes_sent) outcomes);
    mean_restarts =
      Numerics.Safe_float.mean
        (Array.map (fun o -> float_of_int o.restarts) outcomes) }

let pp_aggregate ppf a =
  let lo, hi = a.collision_ci and clo, chi = a.cost_ci in
  Format.fprintf ppf
    "@[<v>%d trials:@,\
    \  collisions: %d (rate %.3g, 95%% CI [%.3g, %.3g])@,\
    \  mean cost: %.4g (95%% CI [%.4g, %.4g])@,\
    \  mean config time: %.4g s (min %.3g, max %.3g)@,\
    \  mean probes: %.3g; mean restarts: %.3g@]"
    a.trials a.collisions a.collision_rate lo hi a.cost.Numerics.Stats.mean clo
    chi a.config_time.Numerics.Stats.mean a.config_time.Numerics.Stats.min
    a.config_time.Numerics.Stats.max a.mean_probes a.mean_restarts
