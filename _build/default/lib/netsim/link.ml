type station = { id : int; handler : Packet.t -> unit; mutable attached : bool }

type t = {
  engine : Engine.t;
  rng : Numerics.Rng.t;
  loss : float;
  one_way : Dist.Distribution.t;
  mutable stations : station list; (* newest first *)
  mutable next_id : int;
  mutable sent : int;
  mutable delivered : int;
  mutable lost : int;
}

let create ~engine ~rng ~loss ~one_way =
  if not (Numerics.Safe_float.is_probability loss) then
    invalid_arg "Link.create: loss not in [0, 1]";
  { engine;
    rng;
    loss;
    one_way;
    stations = [];
    next_id = 0;
    sent = 0;
    delivered = 0;
    lost = 0 }

let attach t handler =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.stations <- { id; handler; attached = true } :: t.stations;
  id

let detach t id =
  List.iter (fun s -> if s.id = id then s.attached <- false) t.stations

let broadcast t ~sender packet =
  t.sent <- t.sent + 1;
  Engine.trace t.engine "host%d sends %s" sender
    (Format.asprintf "%a" Packet.pp packet);
  let deliver station =
    if station.attached && station.id <> sender then begin
      if Numerics.Rng.bool t.rng t.loss then begin
        t.lost <- t.lost + 1;
        Engine.trace t.engine "  lost on the way to host%d" station.id
      end
      else
        match t.one_way.sample t.rng with
        | None ->
            t.lost <- t.lost + 1;
            Engine.trace t.engine "  lost (delay defect) to host%d" station.id
        | Some delay ->
            t.delivered <- t.delivered + 1;
            Engine.schedule t.engine ~after:delay (fun () ->
                if station.attached then station.handler packet)
    end
  in
  List.iter deliver t.stations

let packets_sent t = t.sent
let packets_delivered t = t.delivered
let packets_lost t = t.lost
