(** Discrete-event simulation engine: a virtual clock driving a queue
    of scheduled thunks. *)

type t

val create : unit -> t
val now : t -> float
(** Current simulation time; starts at [0.]. *)

val schedule : t -> after:float -> (unit -> unit) -> unit
(** Run the thunk [after] seconds of virtual time from now; [after]
    must be non-negative. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Absolute-time variant; [time] must not lie in the past. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Process events in timestamp order until the queue drains, the
    clock passes [until], or [max_events] (default [10_000_000])
    events have fired (guarding against runaway schedules; raises
    [Failure] in that case). *)

val pending : t -> int

val set_tracer : t -> (float -> string -> unit) option -> unit
(** Install (or remove) an event tracer; {!trace} calls become visible
    to it. *)

val trace : t -> ('a, unit, string, unit) format4 -> 'a
(** Emit a trace line at the current virtual time (no-op without a
    tracer). *)
