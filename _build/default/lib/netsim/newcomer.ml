type config = {
  probes : int;
  listen : float;
  listen_jitter : (float * float) option;
  probe_cost : float;
  error_cost : float;
  immediate_abort : bool;
  rate_limit : (int * float) option;
  avoid_failed : bool;
  announce : (int * float) option;
}

let default_config =
  { probes = 4;
    listen = 2.;
    listen_jitter = None;
    probe_cost = 0.;
    error_cost = 0.;
    immediate_abort = true;
    rate_limit = Some (10, 60.);
    avoid_failed = true;
    announce = Some (2, 2.) }

let drm_config ~n ~r ~probe_cost ~error_cost =
  { probes = n;
    listen = r;
    listen_jitter = None;
    probe_cost;
    error_cost;
    immediate_abort = false;
    rate_limit = None;
    avoid_failed = false;
    announce = None }

type t = {
  engine : Engine.t;
  link : Link.t;
  pool : Address_pool.t;
  rng : Numerics.Rng.t;
  config : config;
  on_done : Metrics.outcome -> unit;
  start_time : float;
  mutable station : int;
  mutable epoch : int;      (* bumps on every restart; stale events no-op *)
  mutable candidate : int;
  mutable conflict : bool;
  mutable probes_sent : int;
  mutable restarts : int;
  mutable cost : float;
  mutable finished : bool;
  failed : (int, unit) Hashtbl.t;
      (* addresses that drew a defence, never retried when the config
         says to avoid them (draft detail (a), paper Sec. 3.1) *)
}

let station_id t = t.station

let validate config =
  if config.probes < 1 then invalid_arg "Newcomer: probes < 1";
  if config.listen < 0. then invalid_arg "Newcomer: negative listen period";
  if config.probe_cost < 0. || config.error_cost < 0. then
    invalid_arg "Newcomer: negative cost"

let announce t =
  match t.config.announce with
  | None -> ()
  | Some (count, interval) ->
      (* gratuitous ARPs after acceptance (the draft's ANNOUNCE phase):
         they warn hosts still probing for this address *)
      for k = 1 to count do
        Engine.schedule t.engine
          ~after:(float_of_int (k - 1) *. interval)
          (fun () ->
            Link.broadcast t.link ~sender:t.station
              (Packet.Arp_reply { sender = t.station; address = t.candidate }))
      done

let finish t =
  if not t.finished then begin
    t.finished <- true;
    Link.detach t.link t.station;
    let collided = Address_pool.is_occupied t.pool t.candidate in
    if collided then t.cost <- t.cost +. t.config.error_cost
    else Address_pool.claim t.pool t.candidate;
    Engine.trace t.engine "host%d accepts %s%s" t.station
      (Address_pool.to_string t.candidate)
      (if collided then " (COLLISION)" else "");
    if not collided then announce t;
    t.on_done
      { Metrics.address = t.candidate;
        collided;
        probes_sent = t.probes_sent;
        restarts = t.restarts;
        config_time = Engine.now t.engine -. t.start_time;
        cost = t.cost }
  end

let rec begin_attempt t =
  t.epoch <- t.epoch + 1;
  t.conflict <- false;
  let draw () = Address_pool.random_candidate t.pool ~rng:t.rng in
  let candidate = ref (draw ()) in
  if t.config.avoid_failed then begin
    (* rejection-sample around the blacklist; give up if it somehow
       covers (almost) the whole space *)
    let guard = ref 0 in
    while Hashtbl.mem t.failed !candidate && !guard < 10_000 do
      candidate := draw ();
      incr guard
    done
  end;
  t.candidate <- !candidate;
  Engine.trace t.engine "host%d tries %s" t.station
    (Address_pool.to_string t.candidate);
  send_probe t ~epoch:t.epoch ~k:1

and send_probe t ~epoch ~k =
  if epoch = t.epoch && not t.finished then begin
    t.probes_sent <- t.probes_sent + 1;
    (* the draft randomizes the inter-probe spacing (PROBE_MIN..PROBE_MAX);
       the paper's model fixes it at r *)
    let listen =
      match t.config.listen_jitter with
      | None -> t.config.listen
      | Some (lo, hi) -> Numerics.Rng.uniform t.rng ~lo ~hi
    in
    t.cost <- t.cost +. listen +. t.config.probe_cost;
    Link.broadcast t.link ~sender:t.station
      (Packet.Arp_probe { sender = t.station; address = t.candidate });
    Engine.schedule t.engine ~after:listen (fun () -> period_end t ~epoch ~k)
  end

and period_end t ~epoch ~k =
  if epoch = t.epoch && not t.finished then begin
    if t.conflict then restart t
    else if k >= t.config.probes then finish t
    else send_probe t ~epoch ~k:(k + 1)
  end

and restart t =
  t.restarts <- t.restarts + 1;
  if t.config.avoid_failed && t.candidate >= 0 then
    Hashtbl.replace t.failed t.candidate ();
  let delay =
    match t.config.rate_limit with
    | Some (threshold, wait) when t.restarts >= threshold -> wait
    | Some _ | None -> 0.
  in
  if delay > 0. then begin
    (* freeze this attempt: bump epoch so pending events die, then wait;
       waiting time is charged at the model's 1:1 time-to-cost rate *)
    t.epoch <- t.epoch + 1;
    t.cost <- t.cost +. delay;
    Engine.schedule t.engine ~after:delay (fun () -> begin_attempt t)
  end
  else begin_attempt t

let handle_packet t packet =
  if (not t.finished) && Packet.address packet = t.candidate then
    match packet with
    | Packet.Arp_reply _ ->
        if not t.conflict then begin
          t.conflict <- true;
          Engine.trace t.engine "host%d hears a defence of %s" t.station
            (Address_pool.to_string t.candidate);
          if t.config.immediate_abort then restart t
        end
    | Packet.Arp_probe { sender; _ } when sender <> t.station ->
        (* someone else is probing for our candidate: conflict per draft *)
        if not t.conflict then begin
          t.conflict <- true;
          Engine.trace t.engine "host%d sees a rival probe for %s" t.station
            (Address_pool.to_string t.candidate);
          if t.config.immediate_abort then restart t
        end
    | Packet.Arp_probe _ -> ()

let start ~engine ~link ~pool ~rng ~config ~on_done () =
  validate config;
  let t =
    { engine;
      link;
      pool;
      rng;
      config;
      on_done;
      start_time = Engine.now engine;
      station = -1;
      epoch = 0;
      candidate = -1;
      conflict = false;
      probes_sent = 0;
      restarts = 0;
      cost = 0.;
      finished = false;
      failed = Hashtbl.create 8 }
  in
  t.station <- Link.attach link (fun packet -> handle_packet t packet);
  Engine.schedule engine ~after:0. (fun () -> begin_attempt t);
  t
