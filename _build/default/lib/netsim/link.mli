(** Broadcast medium with per-receiver loss and propagation delay.

    Every attached station sees every transmission (it is a single
    collision domain, as in the paper's link-local setting), except
    that each receiver independently loses the packet with the
    configured probability — the "probe got lost / reply got lost"
    events of Sec. 3.1. *)

type t

val create :
  engine:Engine.t -> rng:Numerics.Rng.t -> loss:float ->
  one_way:Dist.Distribution.t -> t
(** [loss] is the per-receiver drop probability; [one_way] the
    propagation-delay distribution (its own defect mass also counts as
    loss). *)

val attach : t -> (Packet.t -> unit) -> int
(** Register a station; returns its station id.  The handler runs at
    packet-arrival virtual time. *)

val detach : t -> int -> unit
(** Stop delivering to a station (it may still send). *)

val broadcast : t -> sender:int -> Packet.t -> unit
(** Transmit to every other attached station. *)

val packets_sent : t -> int
val packets_delivered : t -> int
val packets_lost : t -> int
