type t = {
  engine : Engine.t;
  link : Link.t;
  rng : Numerics.Rng.t;
  processing : Dist.Distribution.t option;
  deaf_prob : float;
  defend_interval : float;
  address : int;
  mutable station : int;
  mutable replies : int;
  mutable last_defense : float;
}

let create ~engine ~link ~rng ?processing ?(deaf_prob = 0.)
    ?(defend_interval = 0.) ~address () =
  if not (Numerics.Safe_float.is_probability deaf_prob) then
    invalid_arg "Host.create: deaf_prob not in [0, 1]";
  if defend_interval < 0. then invalid_arg "Host.create: negative defend_interval";
  let t =
    { engine;
      link;
      rng;
      processing;
      deaf_prob;
      defend_interval;
      address;
      station = -1;
      replies = 0;
      last_defense = neg_infinity }
  in
  let handle packet =
    match packet with
    | Packet.Arp_probe { address; _ } when address = t.address ->
        (* the draft's DEFEND_INTERVAL: at most one defense per window,
           leaving a real (if short) vulnerability between defenses *)
        if
          Engine.now t.engine -. t.last_defense >= t.defend_interval
          && not (Numerics.Rng.bool t.rng t.deaf_prob)
        then begin
          t.last_defense <- Engine.now t.engine;
          let send () =
            t.replies <- t.replies + 1;
            Link.broadcast t.link ~sender:t.station
              (Packet.Arp_reply { sender = t.station; address = t.address })
          in
          match t.processing with
          | None -> send ()
          | Some dist -> (
              match dist.sample t.rng with
              | None -> () (* processing never completes: host wedged *)
              | Some d -> Engine.schedule t.engine ~after:d send)
        end
    | Packet.Arp_probe _ | Packet.Arp_reply _ -> ()
  in
  t.station <- Link.attach link handle;
  t

let address t = t.address
let station_id t = t.station
let replies_sent t = t.replies
