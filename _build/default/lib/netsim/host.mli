(** A host already configured with an address: the ARP responder side
    of the protocol.  On receiving a probe for its own address it
    broadcasts a reply — possibly late (processing delay, modelling the
    "host is busy" case of Sec. 3.1) or not at all (deafness
    probability). *)

type t

val create :
  engine:Engine.t -> link:Link.t -> rng:Numerics.Rng.t ->
  ?processing:Dist.Distribution.t -> ?deaf_prob:float ->
  ?defend_interval:float -> address:int -> unit -> t
(** [processing] defaults to instantaneous response; [deaf_prob]
    (default [0.]) is the probability of ignoring a probe entirely
    (busy beyond the listening horizon); [defend_interval] (default
    [0.], i.e. always defend) rate-limits defenses to one per window,
    the draft's DEFEND_INTERVAL behaviour. *)

val address : t -> int
val station_id : t -> int
val replies_sent : t -> int
