lib/netsim/maintenance.mli: Dist Newcomer Numerics
