lib/netsim/scenario.ml: Address_pool Array Dist Engine Float Hashtbl Host Link List Metrics Newcomer
