lib/netsim/multi.ml: Address_pool Array Engine Float Host Int Link List Metrics Newcomer Set
