lib/netsim/multi.ml: Address_pool Array Engine Exec Float Host Int Link List Metrics Newcomer Numerics Set
