lib/netsim/scenario.mli: Dist Metrics Newcomer Numerics
