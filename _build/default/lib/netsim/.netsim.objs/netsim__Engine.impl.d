lib/netsim/engine.ml: Event_queue Printf
