lib/netsim/newcomer.mli: Address_pool Engine Link Metrics Numerics
