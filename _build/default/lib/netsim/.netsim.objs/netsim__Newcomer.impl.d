lib/netsim/newcomer.ml: Address_pool Engine Hashtbl Link Metrics Numerics Packet
