lib/netsim/address_pool.ml: Bytes Numerics Printf
