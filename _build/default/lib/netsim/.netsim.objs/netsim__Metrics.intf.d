lib/netsim/metrics.mli: Format Numerics
