lib/netsim/link.mli: Dist Engine Numerics Packet
