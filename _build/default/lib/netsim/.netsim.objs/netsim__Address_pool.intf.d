lib/netsim/address_pool.mli: Numerics
