lib/netsim/packet.ml: Address_pool Format
