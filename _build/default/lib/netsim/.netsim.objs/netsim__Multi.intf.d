lib/netsim/multi.mli: Dist Metrics Newcomer Numerics
