lib/netsim/multi.mli: Dist Exec Metrics Newcomer Numerics
