lib/netsim/workload.ml: Address_pool Array Engine Float Host Int Link List Metrics Newcomer Numerics Set
