lib/netsim/host.ml: Dist Engine Link Numerics Packet
