lib/netsim/metrics.ml: Array Format Numerics
