lib/netsim/maintenance.ml: Address_pool Array Engine Float Host Link Newcomer Numerics Packet
