lib/netsim/engine.mli:
