lib/netsim/link.ml: Dist Engine Format List Numerics Packet
