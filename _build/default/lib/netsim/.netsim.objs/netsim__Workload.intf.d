lib/netsim/workload.mli: Dist Metrics Newcomer Numerics
