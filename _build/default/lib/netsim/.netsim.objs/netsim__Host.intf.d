lib/netsim/host.mli: Dist Engine Link Numerics
