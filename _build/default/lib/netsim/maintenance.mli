(** The protocol's second part: collision detection and address defense
    during normal operation.

    The paper describes only the initialization phase and treats the
    consequence of an accepted collision as an opaque cost [E]
    ("the maintenance mechanism will later have to launch a costly
    protocol to re-establish the integrity of the IP numbers",
    Sec. 3.1).  This module simulates that costly protocol, giving [E]
    an operational reading:

    after an erroneous acceptance two hosts share an address; the
    conflict stays latent until background ARP traffic for that address
    makes one owner hear the other's reply.  The incumbent defends
    (broadcasts its claim); the newcomer must abandon the address and
    reconfigure from scratch, killing its established connections.  The
    disruption — detection latency plus reconfiguration time, weighted
    by the connections torn down — is the measurable counterpart of
    [E]. *)

type resolution = {
  detection_time : float;
      (** Virtual seconds from the collision until the newcomer learns
          of it. *)
  reconfiguration_time : float;
      (** Zeroconf run time for the replacement address. *)
  total_disruption : float;
      (** [detection_time + reconfiguration_time]: the outage window. *)
  broken_connections : int;
      (** Connections the newcomer had established on the colliding
          address (all torn down). *)
}

val simulate_collision :
  ?background_rate:float -> ?connection_rate:float -> loss:float ->
  one_way:Dist.Distribution.t -> occupied:int -> ?pool_size:int ->
  config:Newcomer.config -> rng:Numerics.Rng.t -> unit -> resolution
(** One latent collision, played out.  [background_rate] (default
    [0.1]/s) is the Poisson rate of ARP traffic touching the contested
    address; [connection_rate] (default [0.05]/s) the rate at which the
    unsuspecting newcomer opens connections until detection. *)

type cost_estimate = {
  trials : int;
  disruption : Numerics.Stats.summary;
  mean_broken : float;
  suggested_error_cost : float;
      (** Mean disruption plus [per_connection] per broken connection —
          on the paper's scale where one second of waiting costs 1. *)
}

val estimate_error_cost :
  ?per_connection:float -> ?background_rate:float -> ?connection_rate:float ->
  loss:float -> one_way:Dist.Distribution.t -> occupied:int ->
  ?pool_size:int -> config:Newcomer.config -> trials:int ->
  rng:Numerics.Rng.t -> unit -> cost_estimate
(** Monte-Carlo over collisions.  [per_connection] (default [30.])
    prices one broken connection in waiting-seconds. *)
