(** Priority queue of timestamped events (binary min-heap).

    Ties in time break in insertion order, so simultaneous events run
    deterministically — essential for reproducible simulations. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val add : 'a t -> time:float -> 'a -> unit
(** Raises [Invalid_argument] on a [nan] timestamp. *)

val peek : 'a t -> (float * 'a) option
(** Earliest event without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val clear : 'a t -> unit
