type resolution = {
  detection_time : float;
  reconfiguration_time : float;
  total_disruption : float;
  broken_connections : int;
}

(* One collision, played out on the packet level.

   Setup: the contested address has an incumbent owner (a Host, which
   defends it) and a colliding newcomer that believes the address is
   its own.  Background ARP requests for the address arrive at Poisson
   times; each makes the incumbent broadcast a defence reply.  The
   first such reply the colliding host receives reveals the conflict;
   it then abandons the address and runs the configuration protocol
   again for a fresh one. *)
let simulate_collision ?(background_rate = 0.1) ?(connection_rate = 0.05)
    ~loss ~one_way ~occupied ?pool_size ~config ~rng () =
  if background_rate <= 0. then
    invalid_arg "Maintenance.simulate_collision: background_rate <= 0";
  if connection_rate < 0. then
    invalid_arg "Maintenance.simulate_collision: connection_rate < 0";
  let engine = Engine.create () in
  let pool = Address_pool.create ?size:pool_size () in
  let link = Link.create ~engine ~rng ~loss ~one_way in
  (* populate the network *)
  for _ = 1 to occupied do
    let address = Address_pool.claim_random_free pool ~rng in
    ignore (Host.create ~engine ~link ~rng ~address ())
  done;
  (* the contested address: give it an incumbent... *)
  let contested = Address_pool.claim_random_free pool ~rng in
  ignore (Host.create ~engine ~link ~rng ~address:contested ());
  (* ...and a requester that keeps asking for it (background traffic) *)
  let requester = Link.attach link (fun _ -> ()) in
  let rec background () =
    Engine.schedule engine
      ~after:(Numerics.Rng.exponential rng ~rate:background_rate)
      (fun () ->
        Link.broadcast link ~sender:requester
          (Packet.Arp_probe { sender = requester; address = contested });
        background ())
  in
  background ();
  (* the colliding host: listens for any defence of "its" address *)
  let detection_time = ref None in
  let reconfiguration = ref None in
  let collider = ref (-1) in
  let on_packet packet =
    match (packet, !detection_time) with
    | Packet.Arp_reply { address; sender }, None
      when address = contested && sender <> !collider ->
        detection_time := Some (Engine.now engine);
        (* abandon the address, reconfigure from scratch *)
        Link.detach link !collider;
        let started = Engine.now engine in
        ignore
          (Newcomer.start ~engine ~link ~pool ~rng ~config
             ~on_done:(fun outcome ->
               reconfiguration :=
                 Some (Engine.now engine -. started, outcome))
             ())
    | _ -> ()
  in
  collider := Link.attach link on_packet;
  (* run until the collider has reconfigured (cap the horizon against
     pathological loss rates) *)
  let horizon = ref 1000. in
  while !reconfiguration = None && !horizon < 1e7 do
    Engine.run ~until:!horizon engine;
    horizon := !horizon *. 10.
  done;
  match (!detection_time, !reconfiguration) with
  | Some detected, Some (reconf_time, _) ->
      let connections =
        (* connections opened while the collision was latent *)
        int_of_float (Float.round (detected *. connection_rate))
      in
      { detection_time = detected;
        reconfiguration_time = reconf_time;
        total_disruption = detected +. reconf_time;
        broken_connections = connections }
  | _ -> failwith "Maintenance.simulate_collision: conflict never resolved"

type cost_estimate = {
  trials : int;
  disruption : Numerics.Stats.summary;
  mean_broken : float;
  suggested_error_cost : float;
}

let estimate_error_cost ?(per_connection = 30.) ?background_rate
    ?connection_rate ~loss ~one_way ~occupied ?pool_size ~config ~trials ~rng
    () =
  if trials < 1 then invalid_arg "Maintenance.estimate_error_cost: trials < 1";
  let resolutions =
    Array.init trials (fun _ ->
        simulate_collision ?background_rate ?connection_rate ~loss ~one_way
          ~occupied ?pool_size ~config ~rng ())
  in
  let disruptions = Array.map (fun r -> r.total_disruption) resolutions in
  let broken =
    Array.map (fun r -> float_of_int r.broken_connections) resolutions
  in
  let disruption = Numerics.Stats.summarize disruptions in
  let mean_broken = Numerics.Safe_float.mean broken in
  { trials;
    disruption;
    mean_broken;
    suggested_error_cost =
      disruption.Numerics.Stats.mean +. (per_connection *. mean_broken) }
