type result = {
  outcomes : Metrics.outcome array;
  all_unique : bool;
  collisions : int;
  makespan : float;
}

let run ~loss ~one_way ?processing ~occupied ?pool_size ~newcomers
    ?(spacing = 0.) ~config ~rng () =
  if newcomers < 1 then invalid_arg "Multi.run: newcomers < 1";
  if spacing < 0. then invalid_arg "Multi.run: negative spacing";
  let engine = Engine.create () in
  let pool = Address_pool.create ?size:pool_size () in
  let link = Link.create ~engine ~rng ~loss ~one_way in
  for _ = 1 to occupied do
    let address = Address_pool.claim_random_free pool ~rng in
    ignore (Host.create ~engine ~link ~rng ?processing ~address ())
  done;
  let finished = ref [] in
  let launch i =
    Engine.schedule engine ~after:(float_of_int i *. spacing) (fun () ->
        ignore
          (Newcomer.start ~engine ~link ~pool ~rng ~config
             ~on_done:(fun outcome ->
               finished := outcome :: !finished;
               (* a freshly configured host starts defending its address
                  (unless it collided: then the original owner defends) *)
               if not outcome.Metrics.collided then
                 ignore
                   (Host.create ~engine ~link ~rng ?processing
                      ~address:outcome.Metrics.address ()))
             ()))
  in
  for i = 0 to newcomers - 1 do
    launch i
  done;
  Engine.run engine;
  let outcomes = Array.of_list (List.rev !finished) in
  if Array.length outcomes <> newcomers then
    failwith "Multi.run: some newcomer never finished";
  let module Iset = Set.Make (Int) in
  let addresses =
    Array.fold_left
      (fun acc (o : Metrics.outcome) -> Iset.add o.Metrics.address acc)
      Iset.empty outcomes
  in
  { outcomes;
    all_unique = Iset.cardinal addresses = newcomers;
    collisions =
      Array.fold_left
        (fun acc (o : Metrics.outcome) -> if o.Metrics.collided then acc + 1 else acc)
        0 outcomes;
    makespan =
      Array.fold_left
        (fun acc (o : Metrics.outcome) -> Float.max acc o.Metrics.config_time)
        0. outcomes }

let run_trials ?domains ~loss ~one_way ?processing ~occupied ?pool_size
    ~newcomers ?spacing ~config ~trials ~rng () =
  if trials < 1 then invalid_arg "Multi.run_trials: trials < 1";
  (* One generator per replication, split from the root *serially* so
     the streams — and hence every statistic — are identical whatever
     the job count of the pool that then runs them. *)
  let rngs = Array.init trials (fun _ -> Numerics.Rng.split rng) in
  Exec.Parallel.init ?pool:domains trials (fun i ->
      run ~loss ~one_way ?processing ~occupied ?pool_size ~newcomers ?spacing
        ~config ~rng:rngs.(i) ())

let collision_rate_vs_newcomers ?domains ~loss ~one_way ~occupied ?pool_size
    ~config ~trials ~counts ~rng () =
  if trials < 1 then invalid_arg "Multi.collision_rate_vs_newcomers: trials < 1";
  List.map
    (fun count ->
      let results =
        run_trials ?domains ~loss ~one_way ~occupied ?pool_size
          ~newcomers:count ~config ~trials ~rng ()
      in
      let collided =
        Array.fold_left (fun acc r -> acc + r.collisions) 0 results
      in
      (count, float_of_int collided /. float_of_int (trials * count)))
    counts
