(** Trial runners: repeat configuration attempts and collect outcomes.

    Two fidelity levels:

    - {!run_aggregate} samples reply round-trips directly from the
      paper's [F_X] (no packet-level machinery) with the DRM's
      period-boundary semantics — the sharpest Monte-Carlo check of
      Eqs. 3 and 4, because it samples {e delays}, not the chain's
      already-derived probabilities.
    - {!run_detailed} runs the full packet-level simulation: broadcast
      link with per-receiver loss, ARP responder hosts with processing
      delays, and the newcomer state machine. *)

val run_aggregate :
  delay:Dist.Distribution.t -> occupied:int -> ?pool_size:int ->
  config:Newcomer.config -> trials:int -> rng:Numerics.Rng.t -> unit ->
  Metrics.outcome array
(** Occupancy is [occupied / pool_size] (defaults to the real 65024
    space), so [q] matches {!Zeroconf.Params.q_of_hosts}. *)

val run_detailed :
  loss:float -> one_way:Dist.Distribution.t ->
  ?processing:Dist.Distribution.t -> ?deaf_prob:float -> occupied:int ->
  ?pool_size:int -> config:Newcomer.config -> trials:int ->
  rng:Numerics.Rng.t -> unit -> Metrics.outcome array
(** Each trial builds a fresh network of [occupied] configured hosts
    plus one newcomer and runs it to completion. *)

val trace_one :
  loss:float -> one_way:Dist.Distribution.t ->
  ?processing:Dist.Distribution.t -> occupied:int -> ?pool_size:int ->
  config:Newcomer.config -> rng:Numerics.Rng.t -> unit ->
  Metrics.outcome * (float * string) list
(** Run a single detailed trial with tracing on; returns the outcome
    and the timestamped event log (for the examples and for
    debugging). *)
