(** Long-horizon workloads: hosts joining a link-local network over
    time, each configuring via zeroconf and then defending its address.

    These are the deployment stories from the paper's introduction —
    home networks accreting appliances, ad-hoc networks forming — as
    repeatable workload patterns for the simulator. *)

type pattern =
  | Poisson of float
      (** Arrivals at the given rate (per second) over the horizon. *)
  | Flash of { count : int; within : float }
      (** [count] hosts power on uniformly within the first [within]
          seconds — the power-restored scenario. *)
  | Periodic of float
      (** One arrival every given number of seconds. *)

type result = {
  arrivals : int;          (** Hosts that started configuring. *)
  outcomes : Metrics.outcome array;
      (** One per completed configuration, completion order. *)
  collisions : int;
  all_unique : bool;       (** All accepted addresses distinct. *)
  last_completion : float; (** Virtual time of the last acceptance. *)
  mean_config_time : float;
}

val run :
  pattern:pattern -> horizon:float -> loss:float ->
  one_way:Dist.Distribution.t -> ?processing:Dist.Distribution.t ->
  ?initial:int -> ?pool_size:int -> config:Newcomer.config ->
  rng:Numerics.Rng.t -> unit -> result
(** Simulate a network that starts with [initial] (default [0])
    configured hosts; arrivals follow [pattern] until [horizon] virtual
    seconds, and the simulation then runs to completion of every
    started configuration.  Raises [Failure] if the address pool would
    be exhausted. *)
