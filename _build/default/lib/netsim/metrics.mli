(** Per-trial outcomes of a configuration attempt and their
    aggregation. *)

type outcome = {
  address : int;        (** Finally accepted address. *)
  collided : bool;      (** True when the accepted address was in use. *)
  probes_sent : int;    (** Total ARP probes across all attempts. *)
  restarts : int;       (** Number of addresses abandoned after a reply. *)
  config_time : float;  (** Virtual seconds from power-on to acceptance. *)
  cost : float;         (** Accumulated abstract cost (paper's metric). *)
}

type aggregate = {
  trials : int;
  collisions : int;
  collision_rate : float;
  collision_ci : float * float;  (** Wilson 95% interval. *)
  cost : Numerics.Stats.summary;
  cost_ci : float * float;
  config_time : Numerics.Stats.summary;
  mean_probes : float;
  mean_restarts : float;
}

val aggregate : outcome array -> aggregate
(** Raises [Invalid_argument] on an empty array. *)

val pp_aggregate : Format.formatter -> aggregate -> unit
