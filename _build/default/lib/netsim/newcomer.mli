(** The configuring host: the zeroconf initialization state machine of
    Sec. 2, driven by the event engine.

    The newcomer picks a uniformly random candidate address, broadcasts
    [n] ARP probes [r] seconds apart, and restarts with a fresh
    candidate whenever evidence of a conflict arrives — an ARP reply
    for the candidate, or (per the draft) someone else's probe for the
    same candidate.  After [n] silent listening periods it claims the
    address; if the address was in fact occupied, that is an address
    collision, charged the error cost. *)

type config = {
  probes : int;          (** [n]. *)
  listen : float;        (** [r], seconds per listening period. *)
  listen_jitter : (float * float) option;
      (** When set, each listening period is drawn uniformly from
          [(lo, hi)] instead of being exactly [listen] — the draft's
          PROBE_MIN..PROBE_MAX randomization that the paper's model
          fixes at [r]. *)
  probe_cost : float;    (** [c], postage per probe. *)
  error_cost : float;    (** [E], charged on accepting a collision. *)
  immediate_abort : bool;
      (** [true]: restart the moment a conflict is detected (real
          protocol behaviour).  [false]: only act at listening-period
          boundaries, which is exactly the paper's DRM semantics. *)
  rate_limit : (int * float) option;
      (** Draft detail the paper abstracts away (Sec. 3.1 (b)): after
          [k] conflicts, wait [delay] seconds between attempts. *)
  avoid_failed : bool;
      (** Draft detail (a): never retry an address that drew a
          defence. *)
  announce : (int * float) option;
      (** After a clean acceptance, broadcast [(count, interval)]
          gratuitous ARP replies — the draft's ANNOUNCE phase, which
          warns hosts still probing for the same address. *)
}

val default_config : config
(** Draft defaults: [n = 4], [r = 2], zero costs, immediate abort,
    rate limit of 60 s after 10 conflicts, failed addresses avoided. *)

val drm_config : n:int -> r:float -> probe_cost:float -> error_cost:float -> config
(** Paper-faithful semantics: period-boundary aborts, no rate limit, no
    blacklisting. *)

type t

val start :
  engine:Engine.t -> link:Link.t -> pool:Address_pool.t ->
  rng:Numerics.Rng.t -> config:config ->
  on_done:(Metrics.outcome -> unit) -> unit -> t
(** Attach to the link and begin configuring at the current virtual
    time.  [on_done] fires exactly once, when an address is accepted
    (cleanly or collidingly); the newcomer detaches itself first, so
    the scenario can hand the address to a {!Host} responder. *)

val station_id : t -> int
