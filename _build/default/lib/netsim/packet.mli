(** ARP-level messages of the zeroconf initialization phase. *)

type t =
  | Arp_probe of { sender : int; address : int }
      (** "Who is using [address]?" — broadcast by a configuring host
          ([sender] is a host id, not an address; the probe's source
          address field is empty per the draft). *)
  | Arp_reply of { sender : int; address : int }
      (** "[address] is mine" — broadcast by its owner. *)

val address : t -> int
val sender : t -> int
val pp : Format.formatter -> t -> unit
