module Matrix = Numerics.Matrix

type edge = { mutable prob : float; mutable cost : float }

type t = {
  mutable order : string list; (* reversed declaration order *)
  known : (string, unit) Hashtbl.t;
  edges : (string * string, edge) Hashtbl.t;
  state_costs : (string, float) Hashtbl.t;
}

let create () =
  { order = [];
    known = Hashtbl.create 16;
    edges = Hashtbl.create 16;
    state_costs = Hashtbl.create 16 }

let add_state t name =
  if not (Hashtbl.mem t.known name) then begin
    Hashtbl.add t.known name ();
    t.order <- name :: t.order
  end

let add_edge ?(cost = 0.) t ~src ~dst ~prob =
  if prob <= 0. then invalid_arg "Builder.add_edge: prob <= 0";
  add_state t src;
  add_state t dst;
  match Hashtbl.find_opt t.edges (src, dst) with
  | Some e ->
      if e.cost <> cost then
        invalid_arg
          (Printf.sprintf "Builder.add_edge: conflicting costs on %s -> %s" src dst);
      e.prob <- e.prob +. prob
  | None -> Hashtbl.add t.edges (src, dst) { prob; cost }

let set_state_cost t name cost =
  add_state t name;
  Hashtbl.replace t.state_costs name cost

let build ?tol t =
  let names = List.rev t.order in
  if names = [] then invalid_arg "Builder.build: no states";
  let space = State_space.of_labels names in
  let n = State_space.size space in
  let p = Matrix.create ~rows:n ~cols:n in
  let c = Matrix.create ~rows:n ~cols:n in
  Hashtbl.iter
    (fun (src, dst) e ->
      let i = State_space.index space src and j = State_space.index space dst in
      Matrix.set p i j e.prob;
      Matrix.set c i j e.cost)
    t.edges;
  (* states with no outgoing edge become absorbing *)
  for i = 0 to n - 1 do
    if Numerics.Safe_float.sum (Matrix.row p i) = 0. then Matrix.set p i i 1.
  done;
  let state_rewards =
    Array.init n (fun i ->
        Option.value ~default:0.
          (Hashtbl.find_opt t.state_costs (State_space.label space i)))
  in
  let chain = Chain.create ?tol ~states:space p in
  let reward = Reward.create ~state_rewards ~transition_rewards:c chain in
  (chain, reward)
