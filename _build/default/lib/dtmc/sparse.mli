(** Compressed-sparse-row matrices for large chains.

    The zeroconf DRM is tiny, but its transition matrix is banded
    (three non-zeros per row); CSR keeps the large synthetic chains in
    the test and bench suites affordable and demonstrates that the
    solver stack scales beyond toy sizes. *)

type t

val of_matrix : ?threshold:float -> Numerics.Matrix.t -> t
(** Drop entries with magnitude [<= threshold] (default [0.]). *)

val of_rows : rows:int -> cols:int -> (int * int * float) list -> t
(** From coordinate triples [(row, col, value)]; duplicate coordinates
    are summed. *)

val to_matrix : t -> Numerics.Matrix.t
val rows : t -> int
val cols : t -> int
val nnz : t -> int
val get : t -> int -> int -> float

val mul_vec : t -> Numerics.Vector.t -> Numerics.Vector.t
val vec_mul : Numerics.Vector.t -> t -> Numerics.Vector.t

val row_entries : t -> int -> (int * float) list

val jacobi_solve :
  ?tol:float -> ?max_iter:int -> t -> Numerics.Vector.t -> Numerics.Vector.t
(** Solve [(I - Q) x = b] for a substochastic [Q] given as [t], by the
    convergent fixed-point iteration [x <- b + Q x].  This is the
    standard iterative engine of probabilistic model checkers.  Raises
    [Failure] on non-convergence. *)
