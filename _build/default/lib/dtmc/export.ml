let to_dot ?(rankdir = "LR") ?costs ?(highlight = []) chain =
  let buf = Buffer.create 1024 in
  let states = Chain.states chain in
  Buffer.add_string buf "digraph chain {\n";
  Buffer.add_string buf (Printf.sprintf "  rankdir=%s;\n" rankdir);
  Buffer.add_string buf "  node [shape=circle, fontsize=11];\n";
  for i = 0 to Chain.size chain - 1 do
    let shape = if List.mem i highlight then ", peripheries=2" else "" in
    Buffer.add_string buf
      (Printf.sprintf "  s%d [label=\"%s\"%s];\n" i (State_space.label states i)
         shape)
  done;
  for i = 0 to Chain.size chain - 1 do
    List.iter
      (fun (j, p) ->
        if not (Chain.is_absorbing chain i) || i <> j then begin
          let cost_label =
            match costs with
            | Some r when Reward.transition r i j <> 0. ->
                Printf.sprintf " / %g" (Reward.transition r i j)
            | Some _ | None -> ""
          in
          Buffer.add_string buf
            (Printf.sprintf "  s%d -> s%d [label=\"%g%s\"];\n" i j p cost_label)
        end)
      (Chain.successors chain i)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_tra chain =
  let buf = Buffer.create 1024 in
  let transitions =
    List.concat_map
      (fun i -> List.map (fun (j, p) -> (i, j, p)) (Chain.successors chain i))
      (List.init (Chain.size chain) Fun.id)
  in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" (Chain.size chain) (List.length transitions));
  List.iter
    (fun (i, j, p) -> Buffer.add_string buf (Printf.sprintf "%d %d %.17g\n" i j p))
    transitions;
  Buffer.contents buf
