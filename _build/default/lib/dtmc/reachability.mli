(** Unbounded reachability probabilities — the core query of
    probabilistic model checking ("P=? [F target]"), which is exactly
    how the zeroconf model is phrased in the PRISM benchmark suite.

    The implementation does the standard qualitative precomputation
    (identify states that reach the target with probability 0, and with
    probability 1) and solves a linear system only for the remainder. *)

val prob : Chain.t -> target:int list -> Numerics.Vector.t
(** For every state, the probability of eventually reaching (any state
    in) [target]. *)

val prob_from : Chain.t -> from:int -> target:int list -> float

val certainly : Chain.t -> target:int list -> bool array
(** States reaching the target with probability one. *)

val never : Chain.t -> target:int list -> bool array
(** States that cannot reach the target at all. *)

val bounded_prob : Chain.t -> target:int list -> horizon:int -> Numerics.Vector.t
(** Probability of reaching the target within [horizon] steps
    ("P=? [F<=k target]").  Target states count as reached at step 0. *)
