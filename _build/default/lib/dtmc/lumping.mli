(** Ordinary lumping (strong probabilistic bisimulation) of chains.

    Two states are bisimilar when, for every block of the coarsest
    stable partition, they move into the block with equal probability.
    The quotient chain preserves every distribution-level quantity —
    absorption probabilities, expected rewards, transient behaviour —
    while shrinking the state space; for highly symmetric chains the
    reduction is dramatic.  Classic partition refinement (splitter
    iteration) computes the coarsest lumping. *)

type t = {
  block_of : int array;      (** Block id per original state. *)
  blocks : int list array;   (** Members per block, ascending. *)
  quotient : Chain.t;        (** The lumped chain, one state per block. *)
}

val coarsest :
  ?initial:(int -> int) -> Chain.t -> t
(** The coarsest ordinary lumping refining the [initial] partition
    (default: absorbing states vs transient states each in their own
    block — pass a finer seed to protect labels or rewards you care
    about, e.g. [Reward.one_step_expected] values).  Block ids are
    dense, ordered by their smallest member. *)

val is_lumpable : Chain.t -> partition:(int -> int) -> bool
(** Check a candidate partition for the lumping condition. *)
