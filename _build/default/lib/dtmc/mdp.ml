type transition = { dst : int; prob : float; cost : float }

type t = {
  num_states : int;
  actions : (string * transition list) array array;
}

let create ~num_states ~actions =
  if num_states < 1 then invalid_arg "Mdp.create: num_states < 1";
  let table =
    Array.init num_states (fun s ->
        let acts = Array.of_list (actions s) in
        Array.iter
          (fun (name, transitions) ->
            if transitions = [] then
              invalid_arg
                (Printf.sprintf "Mdp.create: action %s of state %d has no transitions"
                   name s);
            let total =
              Numerics.Safe_float.sum_list
                (List.map
                   (fun tr ->
                     if tr.prob <= 0. then
                       invalid_arg "Mdp.create: non-positive probability";
                     if tr.dst < 0 || tr.dst >= num_states then
                       invalid_arg "Mdp.create: destination out of range";
                     tr.prob)
                   transitions)
            in
            if not (Numerics.Safe_float.approx_eq ~rtol:1e-9 total 1.) then
              invalid_arg
                (Printf.sprintf
                   "Mdp.create: action %s of state %d has probability mass %.12g"
                   name s total))
          acts;
        acts)
  in
  { num_states; actions = table }

let num_states t = t.num_states

let action_names t s =
  if s < 0 || s >= t.num_states then invalid_arg "Mdp.action_names: bad state";
  Array.to_list (Array.map fst t.actions.(s))

let action_name t ~state ~action =
  if state < 0 || state >= t.num_states then invalid_arg "Mdp.action_name: bad state";
  if action < 0 || action >= Array.length t.actions.(state) then
    invalid_arg "Mdp.action_name: bad action";
  fst t.actions.(state).(action)

type solution = { values : float array; policy : int array; iterations : int }

let q_value t values s a =
  let _, transitions = t.actions.(s).(a) in
  Numerics.Safe_float.sum_list
    (List.map (fun tr -> tr.prob *. (tr.cost +. values.(tr.dst))) transitions)

let greedy t values s =
  let acts = t.actions.(s) in
  if Array.length acts = 0 then (-1, 0.)
  else begin
    let best = ref 0 and best_v = ref (q_value t values s 0) in
    for a = 1 to Array.length acts - 1 do
      let v = q_value t values s a in
      if v < !best_v then begin
        best := a;
        best_v := v
      end
    done;
    (!best, !best_v)
  end

let value_iteration ?(tol = 1e-12) ?(max_iter = 1_000_000) t =
  let values = Array.make t.num_states 0. in
  let rec sweep k =
    if k >= max_iter then failwith "Mdp.value_iteration: no convergence";
    let delta = ref 0. in
    (* Gauss-Seidel: use fresh values within the sweep *)
    for s = 0 to t.num_states - 1 do
      if Array.length t.actions.(s) > 0 then begin
        let _, v = greedy t values s in
        delta := Float.max !delta (Float.abs (v -. values.(s)));
        values.(s) <- v
      end
    done;
    if !delta > tol *. (1. +. Array.fold_left (fun m v -> Float.max m (Float.abs v)) 0. values)
    then sweep (k + 1)
    else k + 1
  in
  let iterations = sweep 0 in
  let policy = Array.init t.num_states (fun s -> fst (greedy t values s)) in
  { values; policy; iterations }

let evaluate_policy t ~policy =
  if Array.length policy <> t.num_states then
    invalid_arg "Mdp.evaluate_policy: policy length mismatch";
  let n = t.num_states in
  (* v = c_pi + P_pi v over controlled states *)
  let controlled =
    Array.of_list
      (List.filter (fun s -> Array.length t.actions.(s) > 0) (List.init n Fun.id))
  in
  Array.iter
    (fun s ->
      if policy.(s) < 0 || policy.(s) >= Array.length t.actions.(s) then
        invalid_arg "Mdp.evaluate_policy: action index out of range")
    controlled;
  let pos = Array.make n (-1) in
  Array.iteri (fun p s -> pos.(s) <- p) controlled;
  let m = Array.length controlled in
  let values = Array.make n 0. in
  if m > 0 then begin
    let a = Numerics.Matrix.identity m in
    let b = Array.make m 0. in
    Array.iteri
      (fun p s ->
        let _, transitions = t.actions.(s).(policy.(s)) in
        List.iter
          (fun tr ->
            b.(p) <- b.(p) +. (tr.prob *. tr.cost);
            if pos.(tr.dst) >= 0 then
              Numerics.Matrix.set a p pos.(tr.dst)
                (Numerics.Matrix.get a p pos.(tr.dst) -. tr.prob))
          transitions)
      controlled;
    let x =
      try Numerics.Lu.solve a b
      with Numerics.Lu.Singular ->
        failwith "Mdp.evaluate_policy: policy does not reach absorption"
    in
    Array.iteri (fun p s -> values.(s) <- x.(p)) controlled
  end;
  values

let policy_iteration ?(max_rounds = 1_000) t =
  let policy = Array.init t.num_states (fun s -> if Array.length t.actions.(s) > 0 then 0 else -1) in
  let rec round k =
    if k >= max_rounds then failwith "Mdp.policy_iteration: no convergence";
    let values = evaluate_policy t ~policy in
    let changed = ref false in
    for s = 0 to t.num_states - 1 do
      if Array.length t.actions.(s) > 0 then begin
        let best, _ = greedy t values s in
        if best <> policy.(s) then begin
          (* strict improvement check to avoid oscillation on ties *)
          let current = q_value t values s policy.(s) in
          let candidate = q_value t values s best in
          if candidate < current -. 1e-15 *. (1. +. Float.abs current) then begin
            policy.(s) <- best;
            changed := true
          end
        end
      end
    done;
    if !changed then round (k + 1)
    else { values; policy = Array.copy policy; iterations = k + 1 }
  in
  round 0
