(** Transient (finite-horizon) analysis: the k-step probabilities the
    paper mentions when interpreting powers of [P_n] in Section 5. *)

val step : Chain.t -> Numerics.Vector.t -> Numerics.Vector.t
(** One step of the distribution: [pi' = pi P]. *)

val distribution_after : Chain.t -> k:int -> Numerics.Vector.t -> Numerics.Vector.t
(** Distribution after exactly [k] steps. *)

val point_mass : Chain.t -> int -> Numerics.Vector.t
(** The distribution concentrated on one state. *)

val k_step_probability : Chain.t -> k:int -> from:int -> to_:int -> float
(** Entry of [P^k]. *)

val absorption_cdf : Chain.t -> from:int -> horizon:int -> float array
(** [absorption_cdf c ~from ~horizon] gives, for [k = 0 .. horizon], the
    probability that the chain started at [from] has been absorbed by
    step [k] — the configuration-time distribution of the protocol. *)

val expected_reward_within : Reward.t -> from:int -> horizon:int -> float
(** Expected reward accumulated in the first [horizon] steps (finite-
    horizon value iteration). *)
