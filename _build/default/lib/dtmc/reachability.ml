module Matrix = Numerics.Matrix

let check_target chain target =
  if target = [] then invalid_arg "Reachability: empty target set";
  List.iter
    (fun t ->
      if t < 0 || t >= Chain.size chain then
        invalid_arg "Reachability: target index out of range")
    target

(* Backward reachability over the positive-probability edge relation,
   with target states treated as absorbing (paths through a target do
   not count: once reached, reached). *)
let can_reach_target chain target =
  let n = Chain.size chain in
  let is_target = Array.make n false in
  List.iter (fun t -> is_target.(t) <- true) target;
  let preds = Array.make n [] in
  for i = 0 to n - 1 do
    if not is_target.(i) then
      List.iter (fun (j, _) -> preds.(j) <- i :: preds.(j)) (Chain.successors chain i)
  done;
  let seen = Array.make n false in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter dfs preds.(i)
    end
  in
  List.iter dfs target;
  seen

let never chain ~target =
  check_target chain target;
  Array.map not (can_reach_target chain target)

let certainly chain ~target =
  check_target chain target;
  let n = Chain.size chain in
  let never_set = never chain ~target in
  let is_target = Array.make n false in
  List.iter (fun t -> is_target.(t) <- true) target;
  (* a state fails prob-1 iff it can reach a never-state without first
     passing through the target *)
  let reaches_never = Array.make n false in
  let preds = Array.make n [] in
  for i = 0 to n - 1 do
    if not is_target.(i) then
      List.iter (fun (j, _) -> preds.(j) <- i :: preds.(j)) (Chain.successors chain i)
  done;
  let rec dfs i =
    if not reaches_never.(i) then begin
      reaches_never.(i) <- true;
      List.iter dfs preds.(i)
    end
  in
  for i = 0 to n - 1 do
    if never_set.(i) && not reaches_never.(i) then dfs i
  done;
  Array.init n (fun i -> is_target.(i) || not reaches_never.(i))

let prob chain ~target =
  check_target chain target;
  let n = Chain.size chain in
  let zero = never chain ~target in
  let one = certainly chain ~target in
  let maybe =
    Array.of_list
      (List.filter (fun i -> (not zero.(i)) && not one.(i)) (List.init n Fun.id))
  in
  let result = Array.init n (fun i -> if one.(i) then 1. else 0.) in
  if Array.length maybe > 0 then begin
    let pos = Array.make n (-1) in
    Array.iteri (fun p i -> pos.(i) <- p) maybe;
    let m = Array.length maybe in
    let q =
      Matrix.init ~rows:m ~cols:m (fun a b ->
          Chain.prob chain maybe.(a) maybe.(b))
    in
    let b =
      Array.map
        (fun i ->
          Numerics.Safe_float.sum_list
            (List.filter_map
               (fun (j, p) -> if one.(j) then Some p else None)
               (Chain.successors chain i)))
        maybe
    in
    let x = Numerics.Lu.solve (Matrix.sub (Matrix.identity m) q) b in
    Array.iteri (fun p i -> result.(i) <- Numerics.Safe_float.clamp_probability x.(p)) maybe
  end;
  result

let prob_from chain ~from ~target = (prob chain ~target).(from)

let bounded_prob chain ~target ~horizon =
  check_target chain target;
  if horizon < 0 then invalid_arg "Reachability.bounded_prob: negative horizon";
  let n = Chain.size chain in
  let is_target = Array.make n false in
  List.iter (fun t -> is_target.(t) <- true) target;
  let v = ref (Array.init n (fun i -> if is_target.(i) then 1. else 0.)) in
  for _ = 1 to horizon do
    let pv = Matrix.mul_vec (Chain.matrix chain) !v in
    v := Array.init n (fun i -> if is_target.(i) then 1. else pv.(i))
  done;
  !v
