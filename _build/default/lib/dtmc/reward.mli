(** Reward (cost) structures attached to a chain, as in the paper's
    Markov reward models: a cost on each transition, plus an optional
    per-visit state cost. *)

module Matrix = Numerics.Matrix

type t

val create :
  ?state_rewards:Numerics.Vector.t -> transition_rewards:Matrix.t ->
  Chain.t -> t
(** Validates shapes against the chain.  The paper requires zero cost
    on transitions with zero probability and zero self-loop cost on
    absorbing states (otherwise total cost diverges); [create] enforces
    both and raises [Invalid_argument] on violation. *)

val zero : Chain.t -> t

val transition : t -> int -> int -> float
val state : t -> int -> float

val one_step_expected : t -> Numerics.Vector.t
(** The vector [w] with [w_i = state_i + sum_j p_ij * c_ij]: the
    expected cost of one step out of each state (Sec. 4.1 of the
    paper). *)

val chain : t -> Chain.t
