module Matrix = Numerics.Matrix
module Lu = Numerics.Lu

type decomposition = {
  transient : int array;
  absorbing : int array;
  q : Matrix.t;
  r : Matrix.t;
}

let decompose chain =
  let n = Chain.size chain in
  let absorbing = Array.of_list (Chain.absorbing_states chain) in
  if Array.length absorbing = 0 then
    invalid_arg "Absorbing.decompose: chain has no absorbing state";
  let is_abs = Array.make n false in
  Array.iter (fun i -> is_abs.(i) <- true) absorbing;
  let transient =
    Array.of_list (List.filter (fun i -> not is_abs.(i)) (List.init n Fun.id))
  in
  (* every transient state must reach an absorbing one *)
  Array.iter
    (fun i ->
      let r = Chain.reachable chain ~from:i in
      if not (Array.exists (fun a -> r.(a)) absorbing) then
        invalid_arg
          (Printf.sprintf
             "Absorbing.decompose: state %s cannot reach absorption"
             (State_space.label (Chain.states chain) i)))
    transient;
  let nt = Array.length transient and na = Array.length absorbing in
  let q =
    Matrix.init ~rows:nt ~cols:nt (fun i j ->
        Chain.prob chain transient.(i) transient.(j))
  in
  let r =
    Matrix.init ~rows:nt ~cols:na (fun i j ->
        Chain.prob chain transient.(i) absorbing.(j))
  in
  { transient; absorbing; q; r }

let i_minus_q d =
  Matrix.sub (Matrix.identity (Matrix.rows d.q)) d.q

let fundamental d = Lu.inverse (Lu.decompose (i_minus_q d))

let absorption_probabilities chain =
  let d = decompose chain in
  Lu.solve_matrix (i_minus_q d) d.r

let position arr x =
  let rec go i =
    if i >= Array.length arr then None
    else if arr.(i) = x then Some i
    else go (i + 1)
  in
  go 0

let absorption_probability chain ~from ~into =
  let d = decompose chain in
  match position d.absorbing into with
  | None -> invalid_arg "Absorbing.absorption_probability: target not absorbing"
  | Some target_pos -> (
      if Chain.is_absorbing chain from then (if from = into then 1. else 0.)
      else
        match position d.transient from with
        | None -> invalid_arg "Absorbing.absorption_probability: bad source"
        | Some src_pos ->
            let b = Lu.solve_matrix (i_minus_q d) d.r in
            Matrix.get b src_pos target_pos)

let expected_steps chain ~from =
  if Chain.is_absorbing chain from then 0.
  else
    let d = decompose chain in
    match position d.transient from with
    | None -> invalid_arg "Absorbing.expected_steps: bad source"
    | Some src ->
        let ones = Array.make (Array.length d.transient) 1. in
        (Lu.solve (i_minus_q d) ones).(src)

let expected_visits chain ~from ~to_ =
  if Chain.is_absorbing chain from then 0.
  else
    let d = decompose chain in
    match (position d.transient from, position d.transient to_) with
    | Some src, Some dst ->
        let n = fundamental d in
        Matrix.get n src dst
    | _ -> invalid_arg "Absorbing.expected_visits: states must be transient"

(* Expected cost accumulated until absorption: a = (I - Q)^{-1} w over
   the transient block, scattered back to original indices. *)
let expected_total_reward_all reward =
  let chain = Reward.chain reward in
  let d = decompose chain in
  let w_full = Reward.one_step_expected reward in
  let w = Array.map (fun i -> w_full.(i)) d.transient in
  let a = Lu.solve (i_minus_q d) w in
  let out = Array.make (Chain.size chain) 0. in
  Array.iteri (fun pos i -> out.(i) <- a.(pos)) d.transient;
  out

let expected_total_reward reward ~from = (expected_total_reward_all reward).(from)

let variance_total_reward reward ~from =
  let chain = Reward.chain reward in
  if Chain.is_absorbing chain from then 0.
  else begin
    let d = decompose chain in
    let a = expected_total_reward_all reward in
    (* second moment: s_i = sum_j p_ij (g_ij^2 + 2 g_ij a_j) + sum_{j in T} p_ij s_j
       with g_ij = state_i + c_ij the cost of the step *)
    let u =
      Array.map
        (fun i ->
          Numerics.Safe_float.sum_list
            (List.map
               (fun (j, p) ->
                 let g = Reward.state reward i +. Reward.transition reward i j in
                 p *. ((g *. g) +. (2. *. g *. a.(j))))
               (Chain.successors chain i)))
        d.transient
    in
    let s = Lu.solve (i_minus_q d) u in
    match position d.transient from with
    | None -> invalid_arg "Absorbing.variance_total_reward: bad source"
    | Some pos ->
        let second_moment = s.(pos) in
        Float.max 0. (second_moment -. (a.(from) *. a.(from)))
  end
