(** Finite, labelled state spaces.

    States are dense integer indices with human-readable labels, so
    chains print the way the paper writes them ([start], [1st], ...,
    [nth], [error], [ok]). *)

type t

val of_labels : string list -> t
(** Labels must be distinct and non-empty; raises [Invalid_argument]
    otherwise. *)

val size : t -> int
val label : t -> int -> string
(** Raises [Invalid_argument] on an out-of-range index. *)

val index : t -> string -> int
(** Raises [Not_found] for an unknown label. *)

val mem : t -> string -> bool
val labels : t -> string array
val pp : Format.formatter -> t -> unit
