module Matrix = Numerics.Matrix

(* GTH elimination (Grassmann, Taksar, Heyman 1985): censor states one
   by one from the back, then back-substitute.  All arithmetic uses
   only additions, multiplications and divisions of non-negative
   quantities, so no cancellation occurs. *)
let gth chain =
  let n = Chain.size chain in
  let p = Matrix.to_arrays (Chain.matrix chain) in
  for k = n - 1 downto 1 do
    let s = ref 0. in
    for j = 0 to k - 1 do
      s := !s +. p.(k).(j)
    done;
    if !s <= 0. then
      invalid_arg "Stationary.gth: zero pivot (chain not irreducible)";
    for i = 0 to k - 1 do
      (* censor state k: redistribute its column mass, keeping the
         normalized p(i,k)/s for the back substitution *)
      let factor = p.(i).(k) /. !s in
      p.(i).(k) <- factor;
      for j = 0 to k - 1 do
        p.(i).(j) <- p.(i).(j) +. (factor *. p.(k).(j))
      done
    done
  done;
  let pi = Array.make n 0. in
  pi.(0) <- 1.;
  for k = 1 to n - 1 do
    let s = ref 0. in
    for i = 0 to k - 1 do
      s := !s +. (pi.(i) *. p.(i).(k))
    done;
    pi.(k) <- !s
  done;
  let total = Numerics.Safe_float.sum pi in
  Array.map (fun x -> x /. total) pi

let power_iteration ?(tol = 1e-12) ?(max_iter = 100_000) chain =
  let n = Chain.size chain in
  let pi = ref (Array.make n (1. /. float_of_int n)) in
  let rec go k =
    if k >= max_iter then failwith "Stationary.power_iteration: no convergence";
    let next = Matrix.vec_mul !pi (Chain.matrix chain) in
    let delta = Numerics.Vector.norm1 (Numerics.Vector.sub next !pi) in
    pi := next;
    if delta < tol then !pi else go (k + 1)
  in
  go 0

let is_stationary ?(tol = 1e-9) chain pi =
  Array.length pi = Chain.size chain
  && Numerics.Safe_float.approx_eq ~rtol:1e-9 (Numerics.Safe_float.sum pi) 1.
  && Numerics.Vector.norm_inf
       (Numerics.Vector.sub (Matrix.vec_mul pi (Chain.matrix chain)) pi)
     <= tol
