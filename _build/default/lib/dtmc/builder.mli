(** Declarative chain construction: name the states, list the weighted
    edges (with optional costs), and get a validated chain plus reward
    structure.  Rows with no outgoing edge become absorbing
    automatically, matching the modelling convention of the paper's
    Figure 1. *)

type t

val create : unit -> t

val add_state : t -> string -> unit
(** Declares a state; idempotent. *)

val add_edge : ?cost:float -> t -> src:string -> dst:string -> prob:float -> unit
(** Adds a transition (declaring endpoints as needed).  Duplicate edges
    accumulate probability; their costs must agree.  Raises
    [Invalid_argument] on non-positive probability or conflicting
    costs. *)

val set_state_cost : t -> string -> float -> unit
(** Per-visit cost for a state. *)

val build : ?tol:float -> t -> Chain.t * Reward.t
(** Validates that out-probabilities sum to one for every state with
    edges, makes edge-less states absorbing, and returns the chain with
    its rewards.  State order is declaration order. *)
