lib/dtmc/state_space.ml: Array Format Hashtbl
