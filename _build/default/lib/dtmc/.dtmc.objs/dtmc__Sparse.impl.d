lib/dtmc/sparse.ml: Array Float Hashtbl List Numerics Option
