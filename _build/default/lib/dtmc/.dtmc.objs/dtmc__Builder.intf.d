lib/dtmc/builder.mli: Chain Reward
