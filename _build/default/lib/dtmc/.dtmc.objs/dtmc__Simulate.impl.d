lib/dtmc/simulate.ml: Array Chain List Numerics Reward
