lib/dtmc/pctl.mli: Chain Numerics Reward
