lib/dtmc/chain.ml: Array Float Format Fun List Numerics Printf State_space
