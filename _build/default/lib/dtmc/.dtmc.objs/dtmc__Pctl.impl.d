lib/dtmc/pctl.ml: Array Chain Float Fun Hitting List Numerics Reward State_space
