lib/dtmc/semi_markov.mli: Chain
