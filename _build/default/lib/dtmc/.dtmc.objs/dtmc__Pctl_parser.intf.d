lib/dtmc/pctl_parser.mli: Pctl
