lib/dtmc/stationary.mli: Chain Numerics
