lib/dtmc/sparse.mli: Numerics
