lib/dtmc/importance.ml: Array Chain Float List Numerics Printf Queue
