lib/dtmc/ctmc.ml: Array Chain Float Fun List Numerics Printf State_space
