lib/dtmc/hitting.ml: Array Chain Fun List Numerics Reachability Reward
