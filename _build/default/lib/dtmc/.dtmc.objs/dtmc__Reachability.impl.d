lib/dtmc/reachability.ml: Array Chain Fun List Numerics
