lib/dtmc/export.ml: Buffer Chain Fun List Printf Reward State_space
