lib/dtmc/absorbing.mli: Chain Numerics Reward
