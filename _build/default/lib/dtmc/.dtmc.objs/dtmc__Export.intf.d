lib/dtmc/export.mli: Chain Reward
