lib/dtmc/lumping.mli: Chain
