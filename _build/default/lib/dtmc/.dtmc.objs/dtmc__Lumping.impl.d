lib/dtmc/lumping.ml: Array Chain Fun Hashtbl List Numerics Option State_space String
