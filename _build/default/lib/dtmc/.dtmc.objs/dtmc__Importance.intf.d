lib/dtmc/importance.mli: Chain Numerics
