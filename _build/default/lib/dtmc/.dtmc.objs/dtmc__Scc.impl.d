lib/dtmc/scc.ml: Array Chain Fun List
