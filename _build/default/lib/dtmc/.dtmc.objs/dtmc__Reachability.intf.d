lib/dtmc/reachability.mli: Chain Numerics
