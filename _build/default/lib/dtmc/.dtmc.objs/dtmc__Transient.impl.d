lib/dtmc/transient.ml: Array Chain List Numerics Reward
