lib/dtmc/absorbing.ml: Array Chain Float Fun List Numerics Printf Reward State_space
