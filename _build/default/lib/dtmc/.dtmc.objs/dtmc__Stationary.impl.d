lib/dtmc/stationary.ml: Array Chain Numerics
