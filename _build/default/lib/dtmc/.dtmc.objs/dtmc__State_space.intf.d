lib/dtmc/state_space.mli: Format
