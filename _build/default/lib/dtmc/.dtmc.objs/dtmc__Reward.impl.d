lib/dtmc/reward.ml: Array Chain List Numerics Printf
