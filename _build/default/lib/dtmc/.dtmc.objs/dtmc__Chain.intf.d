lib/dtmc/chain.mli: Format Numerics State_space
