lib/dtmc/semi_markov.ml: Absorbing Array Chain List Numerics Reward
