lib/dtmc/reward.mli: Chain Numerics
