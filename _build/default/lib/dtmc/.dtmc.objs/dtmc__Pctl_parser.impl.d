lib/dtmc/pctl_parser.ml: List Pctl Printf String
