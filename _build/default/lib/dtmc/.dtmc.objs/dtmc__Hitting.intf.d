lib/dtmc/hitting.mli: Chain Numerics Reward
