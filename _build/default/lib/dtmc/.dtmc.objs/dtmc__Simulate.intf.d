lib/dtmc/simulate.mli: Chain Numerics Reward
