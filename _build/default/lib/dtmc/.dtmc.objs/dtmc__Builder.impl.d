lib/dtmc/builder.ml: Array Chain Hashtbl List Numerics Option Printf Reward State_space
