lib/dtmc/mdp.ml: Array Float Fun List Numerics Printf
