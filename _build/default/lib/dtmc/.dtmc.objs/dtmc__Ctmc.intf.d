lib/dtmc/ctmc.mli: Chain Numerics State_space
