lib/dtmc/scc.mli: Chain
