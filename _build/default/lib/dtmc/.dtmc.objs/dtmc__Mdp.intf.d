lib/dtmc/mdp.mli:
