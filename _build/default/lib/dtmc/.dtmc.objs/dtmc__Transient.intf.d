lib/dtmc/transient.mli: Chain Numerics Reward
