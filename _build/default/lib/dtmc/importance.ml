type estimate = {
  trials : int;
  mean : float;
  relative_error : float;
  ci_lo : float;
  ci_hi : float;
  hits : int;
}

let check_absolute_continuity target proposal =
  if Chain.size target <> Chain.size proposal then
    invalid_arg "Importance: state-space size mismatch";
  for i = 0 to Chain.size target - 1 do
    List.iter
      (fun (j, p) ->
        if p > 0. && Chain.prob proposal i j <= 0. then
          invalid_arg
            (Printf.sprintf
               "Importance: proposal gives zero mass to used edge %d -> %d" i j))
      (Chain.successors target i)
  done

let estimate_absorption ?(max_steps = 1_000_000) ~trials ~rng ~proposal chain
    ~from ~into =
  if trials < 1 then invalid_arg "Importance.estimate_absorption: trials < 1";
  check_absolute_continuity chain proposal;
  if not (Chain.is_absorbing chain into) then
    invalid_arg "Importance.estimate_absorption: target not absorbing";
  let samples = Array.make trials 0. in
  let hits = ref 0 in
  for trial = 0 to trials - 1 do
    (* walk under the proposal, accumulating the likelihood ratio in log
       space to survive 50-orders-of-magnitude weights *)
    let state = ref from in
    let log_weight = ref 0. in
    let steps = ref 0 in
    while not (Chain.is_absorbing chain !state) do
      if !steps > max_steps then
        failwith "Importance.estimate_absorption: path too long";
      incr steps;
      let succs = Chain.successors proposal !state in
      let weights = Array.of_list (List.map snd succs) in
      let picked = Numerics.Rng.choose_weighted rng weights in
      let next, q_prob = List.nth succs picked in
      let p_prob = Chain.prob chain !state next in
      log_weight := !log_weight +. log p_prob -. log q_prob;
      state := next
    done;
    if !state = into then begin
      incr hits;
      samples.(trial) <- exp !log_weight
    end
  done;
  let mean = Numerics.Safe_float.mean samples in
  let std =
    if trials < 2 then 0.
    else (Numerics.Stats.summarize samples).Numerics.Stats.std
  in
  let half = 1.959963985 *. std /. sqrt (float_of_int trials) in
  { trials;
    mean;
    relative_error = (if mean > 0. then std /. sqrt (float_of_int trials) /. mean else infinity);
    ci_lo = Float.max 0. (mean -. half);
    ci_hi = mean +. half;
    hits = !hits }

let boosted_proposal ?(floor = 0.4) chain ~toward =
  if not (Numerics.Safe_float.is_probability floor) then
    invalid_arg "Importance.boosted_proposal: floor outside [0, 1]";
  let n = Chain.size chain in
  if toward < 0 || toward >= n then
    invalid_arg "Importance.boosted_proposal: bad target";
  (* BFS distances to the target over reversed edges *)
  let dist = Array.make n max_int in
  dist.(toward) <- 0;
  let preds = Array.make n [] in
  for i = 0 to n - 1 do
    if not (Chain.is_absorbing chain i) then
      List.iter (fun (j, _) -> preds.(j) <- i :: preds.(j)) (Chain.successors chain i)
  done;
  let queue = Queue.create () in
  Queue.add toward queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun u ->
        if dist.(u) = max_int then begin
          dist.(u) <- dist.(v) + 1;
          Queue.add u queue
        end)
      preds.(v)
  done;
  let m = Numerics.Matrix.create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    if Chain.is_absorbing chain i then Numerics.Matrix.set m i i 1.
    else begin
      let succs = Chain.successors chain i in
      let improving =
        List.filter (fun (j, _) -> dist.(j) < dist.(i)) succs
      in
      if improving = [] || dist.(i) = max_int then
        (* cannot move closer: keep the original row *)
        List.iter (fun (j, p) -> Numerics.Matrix.set m i j p) succs
      else begin
        (* give the improving edges at least [floor] total mass, split
           proportionally to their original probabilities *)
        let improving_mass =
          Numerics.Safe_float.sum_list (List.map snd improving)
        in
        let target_mass = Float.max improving_mass floor in
        let other_scale =
          if improving_mass >= 1. then 0.
          else (1. -. target_mass) /. (1. -. improving_mass)
        in
        List.iter
          (fun (j, p) ->
            let boosted =
              if dist.(j) < dist.(i) then p /. improving_mass *. target_mass
              else p *. other_scale
            in
            Numerics.Matrix.set m i j boosted)
          succs
      end
    end
  done;
  Chain.create ~states:(Chain.states chain) m
