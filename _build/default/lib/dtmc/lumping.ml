type t = {
  block_of : int array;
  blocks : int list array;
  quotient : Chain.t;
}

(* probability mass from state s into each current block *)
let signature chain block_of s =
  let acc = Hashtbl.create 8 in
  List.iter
    (fun (j, p) ->
      let b = block_of.(j) in
      Hashtbl.replace acc b (p +. Option.value ~default:0. (Hashtbl.find_opt acc b)))
    (Chain.successors chain s);
  let sig_list = Hashtbl.fold (fun b p l -> (b, p) :: l) acc [] in
  List.sort compare sig_list

(* group states by (current block, signature), producing dense new ids
   ordered by smallest member *)
let refine chain block_of =
  let n = Chain.size chain in
  let keys = Array.init n (fun s -> (block_of.(s), signature chain block_of s)) in
  let table = Hashtbl.create 16 in
  (* collect members per key *)
  for s = n - 1 downto 0 do
    let members = Option.value ~default:[] (Hashtbl.find_opt table keys.(s)) in
    Hashtbl.replace table keys.(s) (s :: members)
  done;
  let groups = Hashtbl.fold (fun _ members acc -> members :: acc) table [] in
  let groups =
    List.sort (fun a b -> compare (List.hd a) (List.hd b)) groups
  in
  let fresh = Array.make n (-1) in
  List.iteri (fun id members -> List.iter (fun s -> fresh.(s) <- id) members) groups;
  (fresh, List.length groups)

let coarsest ?initial chain =
  let n = Chain.size chain in
  let block_of =
    match initial with
    | Some f -> Array.init n f
    | None ->
        (* default: each absorbing state alone, transient states together *)
        let next = ref 1 in
        Array.init n (fun s ->
            if Chain.is_absorbing chain s then begin
              let id = !next in
              incr next;
              id
            end
            else 0)
  in
  (* normalize to dense ids *)
  let block_of, count = refine chain block_of in
  let current = ref block_of and count = ref count in
  let stable = ref false in
  while not !stable do
    let fresh, fresh_count = refine chain !current in
    if fresh_count = !count then stable := true
    else begin
      current := fresh;
      count := fresh_count
    end
  done;
  let block_of = !current in
  let blocks = Array.make !count [] in
  for s = n - 1 downto 0 do
    blocks.(block_of.(s)) <- s :: blocks.(block_of.(s))
  done;
  (* quotient chain: any representative's block-mass row works *)
  let labels =
    List.init !count (fun b ->
        String.concat "|"
          (List.map (fun s -> State_space.label (Chain.states chain) s) blocks.(b)))
  in
  let m = Numerics.Matrix.create ~rows:!count ~cols:!count in
  Array.iteri
    (fun b members ->
      match members with
      | [] -> ()
      | representative :: _ ->
          List.iter
            (fun (c, p) -> Numerics.Matrix.set m b c p)
            (signature chain block_of representative))
    blocks;
  { block_of;
    blocks;
    quotient = Chain.create ~states:(State_space.of_labels labels) m }

let is_lumpable chain ~partition =
  let n = Chain.size chain in
  let block_of = Array.init n partition in
  let rec check s =
    if s >= n then true
    else begin
      (* all states in s's block must share s's signature *)
      let s_sig = signature chain block_of s in
      let same =
        List.for_all
          (fun other ->
            block_of.(other) <> block_of.(s)
            ||
            let o_sig = signature chain block_of other in
            List.length o_sig = List.length s_sig
            && List.for_all2
                 (fun (b1, p1) (b2, p2) ->
                   b1 = b2 && Numerics.Safe_float.approx_eq ~rtol:1e-9 ~atol:1e-12 p1 p2)
                 o_sig s_sig)
          (List.init n Fun.id)
      in
      same && check (s + 1)
    end
  in
  check 0
