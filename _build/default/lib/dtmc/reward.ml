module Matrix = Numerics.Matrix

type t = {
  chain : Chain.t;
  transition_rewards : Matrix.t;
  state_rewards : Numerics.Vector.t;
}

let create ?state_rewards ~transition_rewards chain =
  let n = Chain.size chain in
  if Matrix.rows transition_rewards <> n || Matrix.cols transition_rewards <> n
  then invalid_arg "Reward.create: transition reward shape mismatch";
  let state_rewards =
    match state_rewards with
    | Some v ->
        if Array.length v <> n then
          invalid_arg "Reward.create: state reward length mismatch";
        Array.copy v
    | None -> Array.make n 0.
  in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let c = Matrix.get transition_rewards i j in
      if Chain.prob chain i j = 0. && c <> 0. then
        invalid_arg
          (Printf.sprintf
             "Reward.create: nonzero cost %g on zero-probability edge (%d, %d)"
             c i j)
    done;
    if Chain.is_absorbing chain i then begin
      if Matrix.get transition_rewards i i <> 0. then
        invalid_arg
          (Printf.sprintf
             "Reward.create: absorbing state %d has nonzero self-loop cost" i);
      if state_rewards.(i) <> 0. then
        invalid_arg
          (Printf.sprintf
             "Reward.create: absorbing state %d has nonzero state cost" i)
    end
  done;
  { chain; transition_rewards = Matrix.copy transition_rewards; state_rewards }

let zero chain =
  let n = Chain.size chain in
  { chain;
    transition_rewards = Matrix.create ~rows:n ~cols:n;
    state_rewards = Array.make n 0. }

let transition t i j = Matrix.get t.transition_rewards i j
let state t i = t.state_rewards.(i)

let one_step_expected t =
  let n = Chain.size t.chain in
  Array.init n (fun i ->
      let edges =
        List.map
          (fun (j, p) -> p *. Matrix.get t.transition_rewards i j)
          (Chain.successors t.chain i)
      in
      t.state_rewards.(i) +. Numerics.Safe_float.sum_list edges)

let chain t = t.chain
