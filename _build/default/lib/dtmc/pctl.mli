(** A PCTL model checker for labelled chains.

    Zeroconf is a standard benchmark of probabilistic model checkers;
    this module closes the loop by checking PCTL formulas directly on
    our chains — "the probability of configuring without ever aborting
    is at least 0.98" is [P (Ge, 0.98, Until (Not (Ap "start2"), Ap "ok"))]
    style.  The implementation is the textbook algorithm
    (Baier–Katoen ch. 10): qualitative precomputation of the
    probability-0 and probability-1 sets, then one linear solve for the
    remainder; bounded operators by value iteration. *)

type comparison = Ge | Gt | Le | Lt

type formula =
  | True
  | Ap of string             (** Atomic proposition, resolved by the labelling. *)
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Prob of comparison * float * path
      (** [P ⋈ p \[path\]]. *)

and path =
  | Next of formula
  | Until of formula * formula
  | Bounded_until of formula * formula * int
  | Eventually of formula            (** [True U phi]. *)
  | Bounded_eventually of formula * int
  | Globally of formula              (** [¬ F ¬ phi]. *)

type labelling = string -> int -> bool
(** [labelling ap state] decides the atomic propositions.  Unknown
    proposition names should raise [Not_found]. *)

val satisfaction : Chain.t -> labelling -> formula -> bool array
(** The satisfying states.  Probability thresholds are compared with a
    relative epsilon ([1e-9]), so a solver result equal to the bound up
    to rounding counts as equal: [Ge]/[Le] are forgiving, [Gt]/[Lt]
    conservative. *)

val holds : Chain.t -> labelling -> from:int -> formula -> bool

val path_probability : Chain.t -> labelling -> from:int -> path -> float
(** The raw probability of the path formula — the "P=?" query. *)

val label_of_state : Chain.t -> labelling
(** The default labelling: each state's own label in the chain's state
    space is an atomic proposition true exactly there. *)

(** {1 Reward queries (PRISM's R operator)} *)

val reward_to_reach : Reward.t -> labelling -> formula -> Numerics.Vector.t
(** [R=? \[F phi\]]: expected reward accumulated until first reaching a
    [phi]-state — [infinity] where that is not almost sure, [0.] on
    [phi]-states themselves.  With the zeroconf DRM's cost rewards and
    [phi = error | ok] this is exactly Eq. 3. *)

val reward_holds :
  Reward.t -> labelling -> from:int -> comparison -> float -> formula -> bool
(** [R ⋈ bound \[F phi\]] at one state, with the same epsilon policy as
    the probability thresholds ([infinity] compares plainly). *)
