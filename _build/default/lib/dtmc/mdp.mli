(** Markov decision processes with total expected cost (stochastic
    shortest path): the decision-theoretic layer above {!Chain}.

    The zeroconf design question "which [(n, r)] should the next
    attempt use?" is an MDP whose states are attempt stages and whose
    actions are parameter choices; this module provides the standard
    machinery (value iteration, policy evaluation, policy iteration)
    for such absorbing cost MDPs. *)

type transition = {
  dst : int;
  prob : float;
  cost : float;  (** Charged when this transition fires. *)
}

type t

val create :
  num_states:int -> actions:(int -> (string * transition list) list) -> t
(** [actions s] lists the named actions available in state [s]; an
    empty list makes [s] absorbing (cost 0 thereafter).  Validates that
    each action's probabilities are positive and sum to one, and that
    destinations are in range.  Raises [Invalid_argument] otherwise. *)

val num_states : t -> int
val action_names : t -> int -> string list

type solution = {
  values : float array;        (** Minimal expected total cost per state. *)
  policy : int array;          (** Chosen action index per state ([-1] for absorbing). *)
  iterations : int;
}

val value_iteration : ?tol:float -> ?max_iter:int -> t -> solution
(** Gauss–Seidel value iteration to [tol] (default [1e-12]) sup-norm
    change; raises [Failure] on non-convergence within [max_iter]
    (default [1_000_000]) sweeps — e.g. when no proper policy exists
    (some state cannot reach absorption under any action). *)

val evaluate_policy : t -> policy:int array -> float array
(** Exact expected total cost of a fixed policy (LU solve on the
    induced chain).  Raises [Invalid_argument] on out-of-range action
    indices and [Failure] when the induced chain is not absorbing from
    every state. *)

val policy_iteration : ?max_rounds:int -> t -> solution
(** Howard's policy iteration: evaluate, improve greedily, repeat until
    stable.  Must agree with {!value_iteration} (property-tested). *)

val action_name : t -> state:int -> action:int -> string
