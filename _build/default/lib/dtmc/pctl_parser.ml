exception Parse_error of string

type token =
  | Ident of string
  | Number of float
  | Int of int
  | Bang
  | Amp
  | Pipe
  | Arrow        (* => *)
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Prob
  | Cmp of Pctl.comparison
  | Next_op
  | Finally_op
  | Globally_op
  | Until_op
  | Bound of int (* the "<= k" attached to F or U *)
  | Eof

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at position %d" msg !pos)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let read_number () =
    let start = !pos in
    let seen_dot = ref false and seen_e = ref false in
    let continue = ref true in
    while !continue && !pos < n do
      let c = input.[!pos] in
      if is_digit c then incr pos
      else if c = '.' && not !seen_dot && not !seen_e then begin
        seen_dot := true;
        incr pos
      end
      else if (c = 'e' || c = 'E') && not !seen_e then begin
        seen_e := true;
        incr pos;
        if !pos < n && (input.[!pos] = '+' || input.[!pos] = '-') then incr pos
      end
      else continue := false
    done;
    let text = String.sub input start (!pos - start) in
    match (int_of_string_opt text, float_of_string_opt text) with
    | Some i, _ -> Int i
    | None, Some f -> Number f
    | None, None -> fail ("bad number " ^ text)
  in
  while !pos < n do
    (match peek () with
    | None -> ()
    | Some c ->
        if c = ' ' || c = '\t' || c = '\n' then incr pos
        else if is_digit c then tokens := read_number () :: !tokens
        else if is_ident_start c then begin
          let start = !pos in
          while !pos < n && is_ident_char input.[!pos] do
            incr pos
          done;
          let word = String.sub input start (!pos - start) in
          let token =
            match word with
            | "P" -> Prob
            | "X" -> Next_op
            | "F" -> Finally_op
            | "G" -> Globally_op
            | "U" -> Until_op
            | _ -> Ident word
          in
          tokens := token :: !tokens
        end
        else begin
          let two = if !pos + 1 < n then String.sub input !pos 2 else "" in
          match two with
          | ">=" ->
              tokens := Cmp Pctl.Ge :: !tokens;
              pos := !pos + 2
          | "<=" -> (
              (* "<= 3" directly after F or U is a step bound *)
              pos := !pos + 2;
              while !pos < n && input.[!pos] = ' ' do
                incr pos
              done;
              match !tokens with
              | (Finally_op | Until_op) :: _ ->
                  let start = !pos in
                  while !pos < n && is_digit input.[!pos] do
                    incr pos
                  done;
                  if !pos = start then fail "expected integer bound after <=";
                  tokens :=
                    Bound (int_of_string (String.sub input start (!pos - start)))
                    :: !tokens
              | _ -> tokens := Cmp Pctl.Le :: !tokens)
          | "=>" ->
              tokens := Arrow :: !tokens;
              pos := !pos + 2
          | _ -> (
              (match c with
              | '>' -> tokens := Cmp Pctl.Gt :: !tokens
              | '<' -> tokens := Cmp Pctl.Lt :: !tokens
              | '!' -> tokens := Bang :: !tokens
              | '&' -> tokens := Amp :: !tokens
              | '|' -> tokens := Pipe :: !tokens
              | '(' -> tokens := Lparen :: !tokens
              | ')' -> tokens := Rparen :: !tokens
              | '[' -> tokens := Lbracket :: !tokens
              | ']' -> tokens := Rbracket :: !tokens
              | _ -> fail (Printf.sprintf "unexpected character %c" c));
              incr pos)
        end)
  done;
  List.rev (Eof :: !tokens)

(* recursive descent over a mutable token stream *)
type stream = { mutable tokens : token list }

let peek s = match s.tokens with [] -> Eof | t :: _ -> t

let advance s =
  match s.tokens with [] -> () | _ :: rest -> s.tokens <- rest

let expect s token msg =
  if peek s = token then advance s else raise (Parse_error ("expected " ^ msg))

let rec parse_formula s = parse_implies s

and parse_implies s =
  let left = parse_or s in
  if peek s = Arrow then begin
    advance s;
    let right = parse_implies s in
    Pctl.Implies (left, right)
  end
  else left

and parse_or s =
  let left = ref (parse_and s) in
  while peek s = Pipe do
    advance s;
    left := Pctl.Or (!left, parse_and s)
  done;
  !left

and parse_and s =
  let left = ref (parse_unary s) in
  while peek s = Amp do
    advance s;
    left := Pctl.And (!left, parse_unary s)
  done;
  !left

and parse_unary s =
  match peek s with
  | Bang ->
      advance s;
      Pctl.Not (parse_unary s)
  | Prob -> (
      advance s;
      match peek s with
      | Cmp cmp ->
          advance s;
          let bound =
            match peek s with
            | Number f ->
                advance s;
                f
            | Int i ->
                advance s;
                float_of_int i
            | _ -> raise (Parse_error "expected probability bound after comparison")
          in
          expect s Lbracket "'['";
          let path = parse_path s in
          expect s Rbracket "']'";
          Pctl.Prob (cmp, bound, path)
      | _ -> raise (Parse_error "expected comparison after P"))
  | Lparen ->
      advance s;
      let f = parse_formula s in
      expect s Rparen "')'";
      f
  | Ident "true" ->
      advance s;
      Pctl.True
  | Ident "false" ->
      advance s;
      Pctl.Not Pctl.True
  | Ident name ->
      advance s;
      Pctl.Ap name
  | _ -> raise (Parse_error "expected a formula")

and parse_path s =
  match peek s with
  | Next_op ->
      advance s;
      Pctl.Next (parse_formula s)
  | Finally_op -> (
      advance s;
      match peek s with
      | Bound k ->
          advance s;
          Pctl.Bounded_eventually (parse_formula s, k)
      | _ -> Pctl.Eventually (parse_formula s))
  | Globally_op ->
      advance s;
      Pctl.Globally (parse_formula s)
  | _ -> (
      (* formula U formula *)
      let left = parse_formula s in
      match peek s with
      | Until_op -> (
          advance s;
          match peek s with
          | Bound k ->
              advance s;
              Pctl.Bounded_until (left, parse_formula s, k)
          | _ -> Pctl.Until (left, parse_formula s))
      | _ -> raise (Parse_error "expected U in path formula"))

let run_parser parse input =
  let s = { tokens = tokenize input } in
  let result = parse s in
  if peek s <> Eof then raise (Parse_error "trailing input");
  result

let formula input = run_parser parse_formula input
let path input = run_parser parse_path input
