module Matrix = Numerics.Matrix

type t = {
  rows : int;
  cols : int;
  row_ptr : int array;   (* length rows + 1 *)
  col_idx : int array;   (* length nnz, sorted within each row *)
  values : float array;
}

let of_rows ~rows ~cols triples =
  if rows < 0 || cols < 0 then invalid_arg "Sparse.of_rows: negative size";
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= rows || j < 0 || j >= cols then
        invalid_arg "Sparse.of_rows: index out of range")
    triples;
  (* bucket by row, sum duplicates *)
  let buckets = Array.make rows [] in
  List.iter (fun (i, j, v) -> buckets.(i) <- (j, v) :: buckets.(i)) triples;
  let summed =
    Array.map
      (fun entries ->
        let tbl = Hashtbl.create 8 in
        List.iter
          (fun (j, v) ->
            Hashtbl.replace tbl j (v +. Option.value ~default:0. (Hashtbl.find_opt tbl j)))
          entries;
        List.sort compare (Hashtbl.fold (fun j v acc -> (j, v) :: acc) tbl []))
      buckets
  in
  let nnz = Array.fold_left (fun acc l -> acc + List.length l) 0 summed in
  let row_ptr = Array.make (rows + 1) 0 in
  let col_idx = Array.make nnz 0 in
  let values = Array.make nnz 0. in
  let k = ref 0 in
  Array.iteri
    (fun i entries ->
      row_ptr.(i) <- !k;
      List.iter
        (fun (j, v) ->
          col_idx.(!k) <- j;
          values.(!k) <- v;
          incr k)
        entries)
    summed;
  row_ptr.(rows) <- !k;
  { rows; cols; row_ptr; col_idx; values }

let of_matrix ?(threshold = 0.) m =
  let triples = ref [] in
  for i = Matrix.rows m - 1 downto 0 do
    for j = Matrix.cols m - 1 downto 0 do
      let v = Matrix.get m i j in
      if Float.abs v > threshold then triples := (i, j, v) :: !triples
    done
  done;
  of_rows ~rows:(Matrix.rows m) ~cols:(Matrix.cols m) !triples

let to_matrix t =
  let m = Matrix.create ~rows:t.rows ~cols:t.cols in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Matrix.set m i t.col_idx.(k) t.values.(k)
    done
  done;
  m

let rows t = t.rows
let cols t = t.cols
let nnz t = t.row_ptr.(t.rows)

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Sparse.get: index out of range";
  let rec scan k =
    if k >= t.row_ptr.(i + 1) then 0.
    else if t.col_idx.(k) = j then t.values.(k)
    else if t.col_idx.(k) > j then 0.
    else scan (k + 1)
  in
  scan t.row_ptr.(i)

let mul_vec t v =
  if Array.length v <> t.cols then invalid_arg "Sparse.mul_vec: shape mismatch";
  Array.init t.rows (fun i ->
      let acc = ref 0. in
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        acc := !acc +. (t.values.(k) *. v.(t.col_idx.(k)))
      done;
      !acc)

let vec_mul v t =
  if Array.length v <> t.rows then invalid_arg "Sparse.vec_mul: shape mismatch";
  let out = Array.make t.cols 0. in
  for i = 0 to t.rows - 1 do
    let vi = v.(i) in
    if vi <> 0. then
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        out.(t.col_idx.(k)) <- out.(t.col_idx.(k)) +. (vi *. t.values.(k))
      done
  done;
  out

let row_entries t i =
  if i < 0 || i >= t.rows then invalid_arg "Sparse.row_entries: out of range";
  List.init
    (t.row_ptr.(i + 1) - t.row_ptr.(i))
    (fun d ->
      let k = t.row_ptr.(i) + d in
      (t.col_idx.(k), t.values.(k)))

let jacobi_solve ?(tol = 1e-14) ?(max_iter = 1_000_000) t b =
  if t.rows <> t.cols then invalid_arg "Sparse.jacobi_solve: non-square";
  if Array.length b <> t.rows then invalid_arg "Sparse.jacobi_solve: shape mismatch";
  let x = ref (Array.copy b) in
  let rec go k =
    if k >= max_iter then failwith "Sparse.jacobi_solve: no convergence";
    let qx = mul_vec t !x in
    let next = Array.mapi (fun i bi -> bi +. qx.(i)) b in
    let delta = Numerics.Vector.norm_inf (Numerics.Vector.sub next !x) in
    x := next;
    if delta <= tol *. (1. +. Numerics.Vector.norm_inf next) then !x else go (k + 1)
  in
  go 0
