(** Rare-event estimation for absorbing chains by importance sampling.

    Plain Monte-Carlo cannot see the zeroconf error probabilities —
    Eq. 4 lives at [1e-20 .. 1e-50] — but sampling paths under a
    {e proposal} chain that makes the rare route likely, and weighting
    each path by its likelihood ratio, gives unbiased estimates with
    useful relative error at any depth the float range allows. *)

type estimate = {
  trials : int;
  mean : float;              (** Unbiased estimate of the probability. *)
  relative_error : float;    (** Sample std of the estimator / mean. *)
  ci_lo : float;
  ci_hi : float;             (** Normal-approximation 95% bounds. *)
  hits : int;                (** Paths that reached the target. *)
}

val estimate_absorption :
  ?max_steps:int -> trials:int -> rng:Numerics.Rng.t ->
  proposal:Chain.t -> Chain.t -> from:int -> into:int -> estimate
(** Estimate the probability that [chain] started at [from] absorbs in
    [into], sampling paths from [proposal] and reweighting.

    Requirements checked at call time: the two chains share the state
    space size, and the proposal gives positive probability to every
    transition the target chain uses ([absolute continuity]); raises
    [Invalid_argument] otherwise.  Paths longer than [max_steps]
    (default [1_000_000]) abort the run with [Failure]. *)

val boosted_proposal : ?floor:float -> Chain.t -> toward:int -> Chain.t
(** A generic proposal: in every transient state that can move closer
    to [toward] (by graph distance), shift probability so each such
    edge gets at least [floor] (default [0.4]) of the row, renormalizing
    the rest.  Leaves absorbing states alone.  Good enough for chains
    with a single rare forward route, like the zeroconf DRM. *)
