type path = { states : int array; total_reward : float; absorbed : bool }

let run ?(max_steps = 1_000_000) ~rng reward ~from =
  let chain = Reward.chain reward in
  let visited = ref [ from ] in
  let total = ref 0. in
  let rec go state steps =
    if Chain.is_absorbing chain state then true
    else if steps >= max_steps then false
    else begin
      let succs = Chain.successors chain state in
      let weights = Array.of_list (List.map snd succs) in
      let picked = Numerics.Rng.choose_weighted rng weights in
      let next, _ = List.nth succs picked in
      total :=
        !total +. Reward.state reward state +. Reward.transition reward state next;
      visited := next :: !visited;
      go next (steps + 1)
    end
  in
  let absorbed = go from 0 in
  { states = Array.of_list (List.rev !visited); total_reward = !total; absorbed }

type estimate = { trials : int; mean : float; ci_lo : float; ci_hi : float }

let estimate_total_reward ?max_steps ~trials ~rng reward ~from =
  if trials <= 0 then invalid_arg "Simulate.estimate_total_reward: trials <= 0";
  let samples =
    Array.init trials (fun _ -> (run ?max_steps ~rng reward ~from).total_reward)
  in
  let ci_lo, ci_hi = Numerics.Stats.mean_ci samples in
  { trials; mean = Numerics.Safe_float.mean samples; ci_lo; ci_hi }

let estimate_absorption ?max_steps ~trials ~rng chain ~from ~into =
  if trials <= 0 then invalid_arg "Simulate.estimate_absorption: trials <= 0";
  let reward = Reward.zero chain in
  let hits = ref 0 in
  for _ = 1 to trials do
    let p = run ?max_steps ~rng reward ~from in
    if p.absorbed && p.states.(Array.length p.states - 1) = into then incr hits
  done;
  let ci_lo, ci_hi = Numerics.Stats.proportion_ci ~successes:!hits trials in
  { trials; mean = float_of_int !hits /. float_of_int trials; ci_lo; ci_hi }
