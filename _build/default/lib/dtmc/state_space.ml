type t = { labels : string array; by_label : (string, int) Hashtbl.t }

let of_labels labels =
  if labels = [] then invalid_arg "State_space.of_labels: empty";
  let arr = Array.of_list labels in
  let by_label = Hashtbl.create (Array.length arr) in
  Array.iteri
    (fun i l ->
      if l = "" then invalid_arg "State_space.of_labels: empty label";
      if Hashtbl.mem by_label l then
        invalid_arg ("State_space.of_labels: duplicate label " ^ l);
      Hashtbl.add by_label l i)
    arr;
  { labels = arr; by_label }

let size t = Array.length t.labels

let label t i =
  if i < 0 || i >= Array.length t.labels then
    invalid_arg "State_space.label: index out of range";
  t.labels.(i)

let index t l =
  match Hashtbl.find_opt t.by_label l with
  | Some i -> i
  | None -> raise Not_found

let mem t l = Hashtbl.mem t.by_label l
let labels t = Array.copy t.labels

let pp ppf t =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Format.pp_print_string)
    t.labels
