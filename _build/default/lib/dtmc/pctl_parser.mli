(** Concrete syntax for PCTL formulas.

    Grammar (PRISM-flavoured):

    {v
    formula ::= 'true' | 'false' | ident
              | '!' formula
              | formula '&' formula        (left assoc, binds tighter than |)
              | formula '|' formula
              | formula '=>' formula       (right assoc, loosest)
              | 'P' cmp number '[' path ']'
              | '(' formula ')'
    path    ::= 'X' formula
              | 'F' formula    | 'F<=' int formula
              | 'G' formula
              | formula 'U' formula | formula 'U<=' int formula
    cmp     ::= '>=' | '>' | '<=' | '<'
    v}

    Identifiers are atomic propositions ([\[A-Za-z_\]\[A-Za-z0-9_\]*]);
    numbers accept scientific notation ([1e-40]). *)

exception Parse_error of string
(** Carries a human-readable message with the offending position. *)

val formula : string -> Pctl.formula
(** Parse a state formula.  Raises {!Parse_error}. *)

val path : string -> Pctl.path
(** Parse a bare path formula (the "P=? [ ... ]" body). *)
