(** Expected hitting times and hitting-time rewards for arbitrary
    target sets (the targets need not be absorbing).

    For the zeroconf chain this answers "expected number of protocol
    steps until [ok]" directly, but the machinery is the general
    first-passage solve: [h_i = 0] on the target,
    [h_i = 1 + sum_j p_ij h_j] elsewhere, restricted to states that
    reach the target almost surely. *)

val expected_steps : Chain.t -> target:int list -> Numerics.Vector.t
(** Expected number of steps to first hit the target; [infinity] for
    states that fail to reach it with probability one.  Target states
    get [0.]. *)

val expected_reward :
  Reward.t -> target:int list -> Numerics.Vector.t
(** Same first-passage solve, accumulating the reward structure instead
    of step counts. *)
