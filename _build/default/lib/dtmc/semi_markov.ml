module Matrix = Numerics.Matrix

type t = {
  chain : Chain.t;
  durations : (int * int * float) list array;
      (* per source state: (dst, duration, prob) for positive-duration
         edges out of non-absorbing states *)
  resolve : Numerics.Lu.t;
      (* factorization of I - Z0^T, Z0 the zero-duration flows *)
  absorbing : bool array;
}

let create ~durations chain =
  let n = Chain.size chain in
  let absorbing = Array.init n (fun i -> Chain.is_absorbing chain i) in
  let positive = Array.make n [] in
  let z0t = Matrix.create ~rows:n ~cols:n in
  for src = 0 to n - 1 do
    if not absorbing.(src) then
      List.iter
        (fun (dst, prob) ->
          let d = durations src dst in
          if d < 0 then invalid_arg "Semi_markov.create: negative duration";
          if d = 0 then Matrix.set z0t dst src (Matrix.get z0t dst src +. prob)
          else positive.(src) <- (dst, d, prob) :: positive.(src))
        (Chain.successors chain src)
  done;
  let resolve =
    try Numerics.Lu.decompose (Matrix.sub (Matrix.identity n) z0t)
    with Numerics.Lu.Singular ->
      invalid_arg "Semi_markov.create: zero-duration cycle traps probability"
  in
  { chain; durations = positive; resolve; absorbing }

(* instantaneous closure: mass y passing through each state this tick,
   given mass m arriving at it *)
let resolve_tick t m = Numerics.Lu.solve_vec t.resolve m

type distribution = { pmf : float array; tail : float }

let distribution ?(horizon = 4096) t ~from =
  let n = Chain.size t.chain in
  if from < 0 || from >= n then invalid_arg "Semi_markov.distribution: bad state";
  if horizon < 0 then invalid_arg "Semi_markov.distribution: negative horizon";
  (* arrivals.(tick) is consumed in tick order; future arrivals beyond
     the horizon fall into the tail *)
  let arrivals = Array.make (horizon + 1) [||] in
  for k = 0 to horizon do
    arrivals.(k) <- Array.make n 0.
  done;
  arrivals.(0).(from) <- 1.;
  let pmf = Array.make (horizon + 1) 0. in
  let tail = ref 0. in
  for tick = 0 to horizon do
    let m = arrivals.(tick) in
    if Array.exists (fun x -> x <> 0.) m then begin
      let y = resolve_tick t m in
      for s = 0 to n - 1 do
        let mass = y.(s) in
        if mass > 0. then
          if t.absorbing.(s) then pmf.(tick) <- pmf.(tick) +. mass
          else
            List.iter
              (fun (dst, d, prob) ->
                let target_tick = tick + d in
                if target_tick <= horizon then
                  arrivals.(target_tick).(dst) <-
                    arrivals.(target_tick).(dst) +. (mass *. prob)
                else tail := !tail +. (mass *. prob))
              t.durations.(s)
      done
    end
  done;
  { pmf; tail = !tail }

let expected_duration t ~from =
  (* ordinary reward solve with duration-valued transition rewards;
     Chain.successors has one entry per (src, dst), so the duration
     annotation translates directly into a cost matrix *)
  let n = Chain.size t.chain in
  let costs = Matrix.create ~rows:n ~cols:n in
  for src = 0 to n - 1 do
    if not t.absorbing.(src) then
      List.iter
        (fun (dst, d, _prob) -> Matrix.set costs src dst (float_of_int d))
        t.durations.(src)
  done;
  let reward = Reward.create ~transition_rewards:costs t.chain in
  Absorbing.expected_total_reward reward ~from

let mean_of_distribution d =
  let acc = ref 0. in
  Array.iteri (fun k mass -> acc := !acc +. (float_of_int k *. mass)) d.pmf;
  !acc
