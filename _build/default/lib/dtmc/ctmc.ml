module M = Numerics.Matrix

type t = { states : State_space.t; q : M.t }

let create ~states q =
  let n = State_space.size states in
  if M.rows q <> n || M.cols q <> n then
    invalid_arg "Ctmc.create: generator does not match state space";
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && M.get q i j < -1e-12 then
        invalid_arg "Ctmc.create: negative off-diagonal rate"
    done;
    let row_sum = Numerics.Safe_float.sum (M.row q i) in
    if Float.abs row_sum > 1e-9 then
      invalid_arg
        (Printf.sprintf "Ctmc.create: row %d sums to %g (want 0)" i row_sum)
  done;
  { states; q = M.copy q }

let size t = State_space.size t.states
let states t = t.states
let rate t i j = M.get t.q i j
let is_absorbing t i = Float.abs (M.get t.q i i) <= 1e-12

let uniformization_rate t =
  let lam = ref 0. in
  for i = 0 to size t - 1 do
    lam := Float.max !lam (Float.abs (M.get t.q i i))
  done;
  !lam

let embedded t =
  let n = size t in
  let p = M.create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    if is_absorbing t i then M.set p i i 1.
    else begin
      let out = Float.abs (M.get t.q i i) in
      for j = 0 to n - 1 do
        if j <> i then M.set p i j (Float.max 0. (M.get t.q i j) /. out)
      done
    end
  done;
  Chain.create ~states:t.states p

let transient t ~horizon pi0 =
  if horizon < 0. then invalid_arg "Ctmc.transient: negative horizon";
  let n = size t in
  if Array.length pi0 <> n then invalid_arg "Ctmc.transient: dimension mismatch";
  let lam = uniformization_rate t in
  if lam = 0. || horizon = 0. then Array.copy pi0
  else begin
    (* uniformized DTMC: P = I + Q / lam *)
    let p =
      M.init ~rows:n ~cols:n (fun i j ->
          (if i = j then 1. else 0.) +. (M.get t.q i j /. lam))
    in
    let mu = lam *. horizon in
    (* Poisson(mu) weights maintained incrementally in log space *)
    let acc = Array.make n 0. in
    let v = ref (Array.copy pi0) in
    let cumulative = ref 0. in
    let k = ref 0 in
    let log_weight = ref (-.mu) in
    (* iterate until the Poisson tail is negligible; bound iterations *)
    let max_k = 64 + int_of_float (mu +. (12. *. sqrt (mu +. 1.))) in
    while !cumulative < 1. -. 1e-13 && !k <= max_k do
      let w = exp !log_weight in
      if w > 0. then begin
        Array.iteri (fun i vi -> acc.(i) <- acc.(i) +. (w *. vi)) !v;
        cumulative := !cumulative +. w
      end;
      v := M.vec_mul !v p;
      incr k;
      log_weight := !log_weight +. log mu -. log (float_of_int !k)
    done;
    (* distribute any neglected tail proportionally to the last vector,
       keeping acc a distribution when pi0 was one *)
    let missing = 1. -. !cumulative in
    if missing > 0. then
      Array.iteri (fun i vi -> acc.(i) <- acc.(i) +. (missing *. vi)) !v;
    acc
  end

let absorption_cdf t ~from horizon =
  let n = size t in
  if from < 0 || from >= n then invalid_arg "Ctmc.absorption_cdf: bad state";
  let pi0 = Array.make n 0. in
  pi0.(from) <- 1.;
  let pi = transient t ~horizon pi0 in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    if is_absorbing t i then acc := !acc +. pi.(i)
  done;
  Numerics.Safe_float.clamp_probability !acc

let expected_absorption_time t ~from =
  let n = size t in
  if from < 0 || from >= n then
    invalid_arg "Ctmc.expected_absorption_time: bad state";
  if is_absorbing t from then 0.
  else begin
    let transient_states =
      Array.of_list
        (List.filter (fun i -> not (is_absorbing t i)) (List.init n Fun.id))
    in
    let pos = Array.make n (-1) in
    Array.iteri (fun p i -> pos.(i) <- p) transient_states;
    let m = Array.length transient_states in
    let sub =
      M.init ~rows:m ~cols:m (fun a b ->
          M.get t.q transient_states.(a) transient_states.(b))
    in
    let minus_one = Array.make m (-1.) in
    match Numerics.Lu.solve sub minus_one with
    | a -> a.(pos.(from))
    | exception Numerics.Lu.Singular ->
        invalid_arg "Ctmc.expected_absorption_time: absorption not certain"
  end
