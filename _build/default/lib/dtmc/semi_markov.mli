(** Discrete-time semi-Markov analysis: a chain whose transitions take
    integer numbers of ticks rather than exactly one step.

    This generalizes the ad-hoc dynamic program behind
    {!Zeroconf.Latency}: the zeroconf DRM spends one listening period
    per probe hop, [n] periods on the direct [start -> ok] hop, and no
    time on aborts — durations 1, [n] and 0 on a 7-state chain.  The
    module computes, for any such annotation, both the expected total
    duration until absorption and the exact duration distribution.

    Zero-duration transitions are resolved exactly (not iterated): per
    tick, the instantaneous flow satisfies [y = m + Z0^T y] for the
    zero-duration substochastic matrix [Z0], solved once by LU.  Chains
    whose zero-duration edges form a probability-one cycle are rejected. *)

type t

val create : durations:(int -> int -> int) -> Chain.t -> t
(** Annotate every positive-probability transition with a duration in
    ticks ([durations src dst >= 0]).  Raises [Invalid_argument] on
    negative durations or when the zero-duration sub-chain traps
    probability (a zero-time cycle of probability one). *)

val expected_duration : t -> from:int -> float
(** Expected ticks until absorption (must agree with an ordinary
    reward solve where each transition's reward is its duration). *)

type distribution = {
  pmf : float array;  (** [pmf.(t)]: absorbed after exactly [t] ticks. *)
  tail : float;       (** Mass beyond the horizon. *)
}

val distribution : ?horizon:int -> t -> from:int -> distribution
(** Exact duration distribution up to [horizon] (default [4096])
    ticks. *)

val mean_of_distribution : distribution -> float
(** Mean of the captured mass, for cross-checking against
    {!expected_duration}. *)
