(** Monte-Carlo simulation of chains with rewards — the third,
    independent route to the paper's quantities (after the closed forms
    and the linear-algebra solve). *)

type path = {
  states : int array;     (** Visited states, first is the start. *)
  total_reward : float;   (** Accumulated transition + state rewards. *)
  absorbed : bool;        (** Whether the run ended in an absorbing state. *)
}

val run :
  ?max_steps:int -> rng:Numerics.Rng.t -> Reward.t -> from:int -> path
(** Sample one trajectory until absorption or [max_steps] (default
    [1_000_000]). *)

type estimate = {
  trials : int;
  mean : float;
  ci_lo : float;
  ci_hi : float;  (** 95% confidence bounds. *)
}

val estimate_total_reward :
  ?max_steps:int -> trials:int -> rng:Numerics.Rng.t -> Reward.t ->
  from:int -> estimate
(** Estimate the mean total reward (the paper's [C(n, r)]) by
    simulation. *)

val estimate_absorption :
  ?max_steps:int -> trials:int -> rng:Numerics.Rng.t -> Chain.t ->
  from:int -> into:int -> estimate
(** Estimate the absorption probability into a given state (the
    paper's error probability), with a Wilson interval. *)
