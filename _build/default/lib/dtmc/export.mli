(** Export chains to external tool formats. *)

val to_dot :
  ?rankdir:string -> ?costs:Reward.t -> ?highlight:int list -> Chain.t ->
  string
(** Graphviz digraph: one node per state (labelled), one edge per
    positive-probability transition annotated with its probability (and
    cost, when a reward structure is supplied).  [highlight] states are
    drawn with a double border (e.g. absorbing states).  [rankdir]
    defaults to ["LR"]. *)

val to_tra :
  Chain.t -> string
(** The explicit ".tra" transition-list format used by PRISM/Storm:
    a header line "states transitions" followed by
    "src dst probability" rows. *)
