(** Continuous-time Markov chains, analysed by uniformization.

    The discrete DRM of the paper quantizes time into listening
    periods; a CTMC view supports the continuous side of the toolbox —
    in particular phase-type reply-delay distributions
    ({!Dist.Phase_type}), whose CDFs are transient absorption
    probabilities of small CTMCs. *)

type t

val create : states:State_space.t -> Numerics.Matrix.t -> t
(** From a generator matrix [Q]: off-diagonal entries are non-negative
    rates, every row sums to zero (a row of zeros is an absorbing
    state).  Raises [Invalid_argument] on violations beyond [1e-9]
    tolerance. *)

val size : t -> int
val states : t -> State_space.t
val rate : t -> int -> int -> float
val is_absorbing : t -> int -> bool

val uniformization_rate : t -> float
(** [max_i |Q_ii|], the Poisson rate of the uniformized jump process. *)

val embedded : t -> Chain.t
(** The jump chain: transition probabilities [-Q_ij / Q_ii] (absorbing
    states keep their self-loop). *)

val transient : t -> horizon:float -> Numerics.Vector.t -> Numerics.Vector.t
(** [transient c ~horizon pi0 = pi0 · exp(Q · horizon)] by
    uniformization, truncating the Poisson sum once the neglected mass
    drops below [1e-13].  Exact to that tolerance for any generator. *)

val absorption_cdf : t -> from:int -> float -> float
(** Probability of having been absorbed (any absorbing state) by the
    given time, starting from [from]. *)

val expected_absorption_time : t -> from:int -> float
(** Mean time to absorption: the solution of [Q' a = -1] on the
    transient block.  Raises [Invalid_argument] when some state cannot
    reach absorption. *)
