(** Absorbing-chain analysis: the machinery of the paper's Sections 4.1
    (mean accumulated cost, [a = -(P' - I)^(-1) w]) and 5 (absorption
    probabilities, [s (I - P')^(-1) e]).

    Terminology follows Kulkarni / Kemeny–Snell: with transient states
    [T] and absorbing states [A], write the transition matrix in
    canonical form with [Q] the [T x T] block and [R] the [T x A]
    block.  The fundamental matrix is [N = (I - Q)^(-1)]. *)

type decomposition = {
  transient : int array;   (** Original indices of transient states. *)
  absorbing : int array;   (** Original indices of absorbing states. *)
  q : Numerics.Matrix.t;   (** [T x T] block. *)
  r : Numerics.Matrix.t;   (** [T x A] block. *)
}

val decompose : Chain.t -> decomposition
(** Raises [Invalid_argument] when some state can avoid absorption
    forever (the chain is not absorbing). *)

val fundamental : decomposition -> Numerics.Matrix.t
(** [N = (I - Q)^(-1)]; entry [(i, j)] is the expected number of visits
    to transient state [j] starting from transient state [i]. *)

val absorption_probabilities : Chain.t -> Numerics.Matrix.t
(** [B = N R], indexed by (transient position, absorbing position) in
    the order of {!decomposition}; row sums are one. *)

val absorption_probability : Chain.t -> from:int -> into:int -> float
(** Probability of ending in absorbing state [into] starting from
    [from] (original indices).  [from] may itself be absorbing. *)

val expected_steps : Chain.t -> from:int -> float
(** Expected number of steps until absorption. *)

val expected_visits : Chain.t -> from:int -> to_:int -> float
(** Expected visits to transient state [to_] before absorption. *)

val expected_total_reward : Reward.t -> from:int -> float
(** The paper's mean total cost: the solution [a = (I - Q)^(-1) w]
    evaluated at [from], with [w] the one-step expected cost
    ({!Reward.one_step_expected}).  Zero when [from] is absorbing. *)

val expected_total_reward_all : Reward.t -> Numerics.Vector.t
(** The whole vector [a], indexed by original state index (zeros at
    absorbing states). *)

val variance_total_reward : Reward.t -> from:int -> float
(** Variance of the accumulated reward until absorption, from the
    second-moment recursion
    [m2_i = sum_j p_ij ((c_ij + a_j)^2 + (m2_j - a_j^2))]. *)
