module Matrix = Numerics.Matrix

type t = { states : State_space.t; p : Matrix.t }

let create ?(tol = 1e-9) ~states p =
  let n = State_space.size states in
  if Matrix.rows p <> n || Matrix.cols p <> n then
    invalid_arg "Chain.create: matrix does not match state space";
  let normalized = Matrix.copy p in
  for i = 0 to n - 1 do
    let row_sum = ref 0. in
    for j = 0 to n - 1 do
      let v = Matrix.get p i j in
      if v < -.tol || Float.is_nan v then
        invalid_arg
          (Printf.sprintf "Chain.create: negative probability at (%d, %d)" i j);
      row_sum := !row_sum +. Float.max 0. v
    done;
    if Float.abs (!row_sum -. 1.) > tol then
      invalid_arg
        (Printf.sprintf "Chain.create: row %d (%s) sums to %.12g" i
           (State_space.label states i) !row_sum);
    for j = 0 to n - 1 do
      Matrix.set normalized i j (Float.max 0. (Matrix.get p i j) /. !row_sum)
    done
  done;
  { states; p = normalized }

let states t = t.states
let size t = State_space.size t.states
let matrix t = t.p
let prob t i j = Matrix.get t.p i j

let prob_by_label t a b =
  prob t (State_space.index t.states a) (State_space.index t.states b)

let successors t i =
  let out = ref [] in
  for j = size t - 1 downto 0 do
    let p = prob t i j in
    if p > 0. then out := (j, p) :: !out
  done;
  !out

let is_absorbing t i = prob t i i = 1.

let absorbing_states t =
  List.filter (is_absorbing t) (List.init (size t) Fun.id)

let reachable t ~from =
  let n = size t in
  let seen = Array.make n false in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter (fun (j, _) -> dfs j) (successors t i)
    end
  in
  dfs from;
  seen

let transient_states t =
  let absorbing = absorbing_states t in
  List.filter
    (fun i ->
      (not (is_absorbing t i))
      &&
      let r = reachable t ~from:i in
      List.exists (fun a -> r.(a)) absorbing)
    (List.init (size t) Fun.id)

let pp ppf t =
  let n = size t in
  Format.fprintf ppf "@[<v>";
  for i = 0 to n - 1 do
    Format.fprintf ppf "%s ->" (State_space.label t.states i);
    List.iter
      (fun (j, p) ->
        Format.fprintf ppf " %s:%g" (State_space.label t.states j) p)
      (successors t i);
    if i < n - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
