(** Discrete-time Markov chains over a labelled state space. *)

module Matrix = Numerics.Matrix

type t
(** A validated DTMC: square transition matrix whose rows sum to one. *)

val create : ?tol:float -> states:State_space.t -> Matrix.t -> t
(** Validates shape, non-negativity, and row sums within [tol] (default
    [1e-9]); rows are then renormalized exactly.  Raises
    [Invalid_argument] on violation. *)

val states : t -> State_space.t
val size : t -> int
val matrix : t -> Matrix.t
(** The (renormalized) transition matrix; do not mutate. *)

val prob : t -> int -> int -> float
(** One-step transition probability by index. *)

val prob_by_label : t -> string -> string -> float

val successors : t -> int -> (int * float) list
(** Outgoing transitions with positive probability. *)

val is_absorbing : t -> int -> bool
(** True when the state loops to itself with probability one. *)

val absorbing_states : t -> int list
val transient_states : t -> int list
(** States from which an absorbing state is reachable.  For absorbing
    chains this is the complement of {!absorbing_states}. *)

val reachable : t -> from:int -> bool array
(** Graph reachability (positive-probability paths). *)

val pp : Format.formatter -> t -> unit
