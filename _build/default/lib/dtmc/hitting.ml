module Matrix = Numerics.Matrix

let first_passage chain ~target ~one_step =
  if target = [] then invalid_arg "Hitting: empty target";
  let n = Chain.size chain in
  List.iter
    (fun t ->
      if t < 0 || t >= n then invalid_arg "Hitting: target index out of range")
    target;
  let certain = Reachability.certainly chain ~target in
  let is_target = Array.make n false in
  List.iter (fun t -> is_target.(t) <- true) target;
  (* solve on the states that reach the target a.s. and are not in it *)
  let solve_states =
    Array.of_list
      (List.filter
         (fun i -> certain.(i) && not is_target.(i))
         (List.init n Fun.id))
  in
  let pos = Array.make n (-1) in
  Array.iteri (fun p i -> pos.(i) <- p) solve_states;
  let m = Array.length solve_states in
  let result = Array.init n (fun i -> if is_target.(i) then 0. else infinity) in
  if m > 0 then begin
    let q =
      Matrix.init ~rows:m ~cols:m (fun a b ->
          Chain.prob chain solve_states.(a) solve_states.(b))
    in
    let w = Array.map one_step solve_states in
    let h = Numerics.Lu.solve (Matrix.sub (Matrix.identity m) q) w in
    Array.iteri (fun p i -> result.(i) <- h.(p)) solve_states
  end;
  result

let expected_steps chain ~target =
  first_passage chain ~target ~one_step:(fun _ -> 1.)

let expected_reward reward ~target =
  let chain = Reward.chain reward in
  let w = Reward.one_step_expected reward in
  first_passage chain ~target ~one_step:(fun i -> w.(i))
