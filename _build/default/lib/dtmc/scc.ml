type t = { component : int array; count : int }

(* Iterative Tarjan (explicit stack, so deep chains don't blow the call
   stack). *)
let tarjan chain =
  let n = Chain.size chain in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let component = Array.make n (-1) in
  let next_index = ref 0 in
  let count = ref 0 in
  let successors i = List.map fst (Chain.successors chain i) in
  let strongconnect v =
    (* frames: (vertex, remaining successors) *)
    let frames = ref [ (v, ref (successors v)) ] in
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    while !frames <> [] do
      match !frames with
      | [] -> ()
      | (u, rest) :: parent_frames -> (
          match !rest with
          | w :: tl ->
              rest := tl;
              if index.(w) = -1 then begin
                index.(w) <- !next_index;
                lowlink.(w) <- !next_index;
                incr next_index;
                stack := w :: !stack;
                on_stack.(w) <- true;
                frames := (w, ref (successors w)) :: !frames
              end
              else if on_stack.(w) then
                lowlink.(u) <- min lowlink.(u) index.(w)
          | [] ->
              (* u is finished: maybe the root of a component *)
              if lowlink.(u) = index.(u) then begin
                let rec pop () =
                  match !stack with
                  | [] -> ()
                  | w :: rest_stack ->
                      stack := rest_stack;
                      on_stack.(w) <- false;
                      component.(w) <- !count;
                      if w <> u then pop ()
                in
                pop ();
                incr count
              end;
              frames := parent_frames;
              (match parent_frames with
              | (parent, _) :: _ ->
                  lowlink.(parent) <- min lowlink.(parent) lowlink.(u)
              | [] -> ()))
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  { component; count = !count }

let members t id =
  let out = ref [] in
  for i = Array.length t.component - 1 downto 0 do
    if t.component.(i) = id then out := i :: !out
  done;
  !out

let is_bottom chain t id =
  let states = members t id in
  List.for_all
    (fun s ->
      List.for_all (fun (j, _) -> t.component.(j) = id) (Chain.successors chain s))
    states

let bottom_components chain =
  let t = tarjan chain in
  List.filter_map
    (fun id -> if is_bottom chain t id then Some (members t id) else None)
    (List.init t.count Fun.id)

let is_irreducible chain = (tarjan chain).count = 1
