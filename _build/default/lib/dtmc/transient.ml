module Matrix = Numerics.Matrix

let step chain pi = Matrix.vec_mul pi (Chain.matrix chain)

let distribution_after chain ~k pi =
  if k < 0 then invalid_arg "Transient.distribution_after: negative k";
  let rec go k pi = if k = 0 then pi else go (k - 1) (step chain pi) in
  go k pi

let point_mass chain i =
  let v = Array.make (Chain.size chain) 0. in
  v.(i) <- 1.;
  v

let k_step_probability chain ~k ~from ~to_ =
  (distribution_after chain ~k (point_mass chain from)).(to_)

let absorption_cdf chain ~from ~horizon =
  if horizon < 0 then invalid_arg "Transient.absorption_cdf: negative horizon";
  let absorbing = Chain.absorbing_states chain in
  let mass pi =
    Numerics.Safe_float.sum_list (List.map (fun a -> pi.(a)) absorbing)
  in
  let out = Array.make (horizon + 1) 0. in
  let pi = ref (point_mass chain from) in
  out.(0) <- mass !pi;
  for k = 1 to horizon do
    pi := step chain !pi;
    out.(k) <- mass !pi
  done;
  out

let expected_reward_within reward ~from ~horizon =
  if horizon < 0 then invalid_arg "Transient.expected_reward_within: negative horizon";
  let chain = Reward.chain reward in
  let w = Reward.one_step_expected reward in
  (* value iteration backwards: v_0 = 0; v_{t+1} = w + P v_t *)
  let v = ref (Array.make (Chain.size chain) 0.) in
  for _ = 1 to horizon do
    let pv = Matrix.mul_vec (Chain.matrix chain) !v in
    v := Array.mapi (fun i wi -> wi +. pv.(i)) w
  done;
  !v.(from)
