(** Stationary distributions of irreducible chains.

    Not needed for the zeroconf chain itself (which is absorbing), but
    part of any credible DTMC toolkit and used for the network-
    maintenance extension where hosts cycle between idle/defend
    states. *)

val gth : Chain.t -> Numerics.Vector.t
(** Grassmann–Taksar–Heyman elimination: numerically stable stationary
    vector without subtractions.  Raises [Invalid_argument] if the
    chain is reducible in a way that leaves a zero pivot. *)

val power_iteration :
  ?tol:float -> ?max_iter:int -> Chain.t -> Numerics.Vector.t
(** Repeated [pi P] from the uniform distribution until the L1 change
    falls below [tol] (default [1e-12]).  Raises [Failure] on
    non-convergence within [max_iter] (default [100_000]) — e.g. on
    periodic chains. *)

val is_stationary : ?tol:float -> Chain.t -> Numerics.Vector.t -> bool
