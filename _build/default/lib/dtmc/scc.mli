(** Strongly connected components and bottom SCCs.

    BSCCs (SCCs with no outgoing edge) are where a finite chain ends up
    with probability one; they drive qualitative model checking and the
    long-run analysis of reducible chains. *)

type t = {
  component : int array;  (** Component id per state, ids in [0, count). *)
  count : int;
}

val tarjan : Chain.t -> t
(** Tarjan's algorithm over the positive-probability edge relation.
    Component ids are assigned in reverse topological order: edges go
    from higher ids to lower or equal ids. *)

val members : t -> int -> int list
(** States of one component, ascending. *)

val is_bottom : Chain.t -> t -> int -> bool
(** No edge leaves the component. *)

val bottom_components : Chain.t -> int list list
(** The BSCCs, each as an ascending state list.  For an absorbing chain
    these are exactly the singletons of absorbing states. *)

val is_irreducible : Chain.t -> bool
