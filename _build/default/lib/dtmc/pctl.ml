module M = Numerics.Matrix

type comparison = Ge | Gt | Le | Lt

type formula =
  | True
  | Ap of string
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Prob of comparison * float * path

and path =
  | Next of formula
  | Until of formula * formula
  | Bounded_until of formula * formula * int
  | Eventually of formula
  | Bounded_eventually of formula * int
  | Globally of formula

type labelling = string -> int -> bool

(* backward reachability of [target] through states satisfying [via]
   (target states themselves need not satisfy [via]) *)
let backward_reach chain ~via ~target =
  let n = Chain.size chain in
  let preds = Array.make n [] in
  for i = 0 to n - 1 do
    List.iter (fun (j, _) -> preds.(j) <- i :: preds.(j)) (Chain.successors chain i)
  done;
  let reached = Array.make n false in
  let rec dfs j =
    List.iter
      (fun i ->
        if (not reached.(i)) && via.(i) then begin
          reached.(i) <- true;
          dfs i
        end)
      preds.(j)
  in
  for j = 0 to n - 1 do
    if target.(j) then begin
      (* the target itself counts as reached *)
      if not reached.(j) then begin
        reached.(j) <- true;
        dfs j
      end
    end
  done;
  reached

(* quantitative until: P(phi U psi) per state *)
let prob_until chain ~phi ~psi =
  let n = Chain.size chain in
  (* can-reach: psi reachable through phi-states *)
  let via = Array.init n (fun s -> phi.(s) && not psi.(s)) in
  let can_reach = backward_reach chain ~via ~target:psi in
  (* prob 0: everything else *)
  let zero = Array.init n (fun s -> not can_reach.(s)) in
  (* prob 1: cannot reach a zero-state while moving through phi\psi *)
  let reaches_zero = backward_reach chain ~via ~target:zero in
  let one = Array.init n (fun s -> psi.(s) || not reaches_zero.(s)) in
  let result = Array.init n (fun s -> if one.(s) then 1. else 0.) in
  let maybe =
    Array.of_list
      (List.filter (fun s -> (not zero.(s)) && not one.(s)) (List.init n Fun.id))
  in
  if Array.length maybe > 0 then begin
    let pos = Array.make n (-1) in
    Array.iteri (fun p s -> pos.(s) <- p) maybe;
    let m = Array.length maybe in
    let q = M.init ~rows:m ~cols:m (fun a b -> Chain.prob chain maybe.(a) maybe.(b)) in
    let b =
      Array.map
        (fun s ->
          Numerics.Safe_float.sum_list
            (List.filter_map
               (fun (j, p) -> if one.(j) then Some p else None)
               (Chain.successors chain s)))
        maybe
    in
    let x = Numerics.Lu.solve (M.sub (M.identity m) q) b in
    Array.iteri
      (fun p s -> result.(s) <- Numerics.Safe_float.clamp_probability x.(p))
      maybe
  end;
  result

let prob_bounded_until chain ~phi ~psi ~k =
  if k < 0 then invalid_arg "Pctl: negative bound";
  let n = Chain.size chain in
  let v = ref (Array.init n (fun s -> if psi.(s) then 1. else 0.)) in
  for _ = 1 to k do
    let pv = M.mul_vec (Chain.matrix chain) !v in
    v :=
      Array.init n (fun s ->
          if psi.(s) then 1. else if phi.(s) then pv.(s) else 0.)
  done;
  !v

let prob_next chain ~phi =
  let n = Chain.size chain in
  Array.init n (fun s ->
      Numerics.Safe_float.sum_list
        (List.filter_map
           (fun (j, p) -> if phi.(j) then Some p else None)
           (Chain.successors chain s)))

(* the probabilities come out of a linear solve, so thresholds are
   compared with a relative epsilon: [Ge]/[Le] are forgiving, [Gt]/[Lt]
   conservative, and a value equal to the bound up to rounding counts
   as equal *)
let compare_with comparison bound v =
  let eps = 1e-9 *. Float.max (Float.abs bound) (Float.abs v) in
  match comparison with
  | Ge -> v >= bound -. eps
  | Gt -> v > bound +. eps
  | Le -> v <= bound +. eps
  | Lt -> v < bound -. eps

let all_true n = Array.make n true

let rec path_probabilities chain labelling path =
  let n = Chain.size chain in
  match path with
  | Next phi -> prob_next chain ~phi:(satisfaction chain labelling phi)
  | Until (phi, psi) ->
      prob_until chain
        ~phi:(satisfaction chain labelling phi)
        ~psi:(satisfaction chain labelling psi)
  | Bounded_until (phi, psi, k) ->
      prob_bounded_until chain
        ~phi:(satisfaction chain labelling phi)
        ~psi:(satisfaction chain labelling psi)
        ~k
  | Eventually phi ->
      prob_until chain ~phi:(all_true n) ~psi:(satisfaction chain labelling phi)
  | Bounded_eventually (phi, k) ->
      prob_bounded_until chain ~phi:(all_true n)
        ~psi:(satisfaction chain labelling phi)
        ~k
  | Globally phi ->
      (* P(G phi) = 1 - P(F not phi) *)
      let complement =
        prob_until chain ~phi:(all_true n)
          ~psi:(satisfaction chain labelling (Not phi))
      in
      Array.map (fun p -> 1. -. p) complement

and satisfaction chain labelling formula =
  let n = Chain.size chain in
  match formula with
  | True -> all_true n
  | Ap name -> Array.init n (fun s -> labelling name s)
  | Not f -> Array.map not (satisfaction chain labelling f)
  | And (a, b) ->
      let sa = satisfaction chain labelling a and sb = satisfaction chain labelling b in
      Array.init n (fun s -> sa.(s) && sb.(s))
  | Or (a, b) ->
      let sa = satisfaction chain labelling a and sb = satisfaction chain labelling b in
      Array.init n (fun s -> sa.(s) || sb.(s))
  | Implies (a, b) ->
      let sa = satisfaction chain labelling a and sb = satisfaction chain labelling b in
      Array.init n (fun s -> (not sa.(s)) || sb.(s))
  | Prob (comparison, bound, path) ->
      let p = path_probabilities chain labelling path in
      Array.map (compare_with comparison bound) p

let holds chain labelling ~from formula =
  (satisfaction chain labelling formula).(from)

let path_probability chain labelling ~from path =
  (path_probabilities chain labelling path).(from)

let label_of_state chain name state =
  State_space.label (Chain.states chain) state = name

let reward_to_reach reward labelling formula =
  let chain = Reward.chain reward in
  let sat = satisfaction chain labelling formula in
  let target =
    List.filter (fun s -> sat.(s)) (List.init (Chain.size chain) Fun.id)
  in
  if target = [] then
    Array.make (Chain.size chain) infinity
  else Hitting.expected_reward reward ~target

let reward_holds reward labelling ~from comparison bound formula =
  let v = (reward_to_reach reward labelling formula).(from) in
  if Float.is_finite v then compare_with comparison bound v
  else match comparison with Ge | Gt -> true | Le | Lt -> false
