(** Piecewise-linear interpolation over tabulated data — used to build
    empirical reply-delay distributions from measured samples, the
    measurement-driven path the paper calls for in Sec. 3.2. *)

type t

val create : xs:float array -> ys:float array -> t
(** Abscissae must be strictly increasing and at least two points long;
    raises [Invalid_argument] otherwise. *)

val eval : t -> float -> float
(** Linear interpolation inside the table, constant extrapolation
    (clamped to the end values) outside. *)

val inverse : t -> float -> float
(** For a table with non-decreasing [ys] (e.g. a CDF): the smallest [x]
    with [eval t x >= y], linearly interpolated.  Clamps outside the
    range of [ys]. *)

val domain : t -> float * float
val map_y : (float -> float) -> t -> t
