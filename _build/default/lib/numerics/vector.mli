(** Dense float vectors (thin layer over [float array] with
    compensated reductions). *)

type t = float array

val make : int -> float -> t
val init : int -> (int -> float) -> t
val dim : t -> int
val copy : t -> t
val of_list : float list -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val dot : t -> t -> float
val norm_inf : t -> float
val norm1 : t -> float
val norm2 : t -> float
val axpy : alpha:float -> t -> t -> t
(** [axpy ~alpha x y = alpha * x + y]. *)

val sum : t -> float
val max_index : t -> int
(** Index of the maximum entry (first on ties).  Raises
    [Invalid_argument] on the empty vector. *)

val approx_eq : ?rtol:float -> ?atol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
