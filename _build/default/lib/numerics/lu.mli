(** LU decomposition with partial pivoting, and the linear solves built
    on it.

    This is the engine behind the generic Markov-reward solve
    [(I - Q) a = w] (paper Sec. 4.1) and absorption probabilities
    [(I - Q) B = R] (Sec. 5). *)

exception Singular
(** Raised when a pivot is exactly zero (matrix is singular to working
    precision). *)

type t
(** A factorization [P A = L U]. *)

val decompose : Matrix.t -> t
(** Factorize a square matrix.  Raises [Invalid_argument] on non-square
    input and {!Singular} on singular input. *)

val solve_vec : t -> Vector.t -> Vector.t
(** Solve [A x = b] given the factorization of [A]. *)

val solve_mat : t -> Matrix.t -> Matrix.t
(** Solve [A X = B] column by column. *)

val det : t -> float
(** Determinant of the factorized matrix. *)

val inverse : t -> Matrix.t

val solve : Matrix.t -> Vector.t -> Vector.t
(** One-shot [A x = b]. *)

val solve_matrix : Matrix.t -> Matrix.t -> Matrix.t
(** One-shot [A X = B]. *)

val refine : Matrix.t -> t -> Vector.t -> Vector.t -> Vector.t
(** [refine a fact b x] performs one step of iterative refinement on a
    candidate solution [x] of [a x = b]. *)
