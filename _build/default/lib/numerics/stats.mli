(** Descriptive statistics and interval estimates for the Monte-Carlo
    side of the reproduction (simulation vs analytic model). *)

type summary = {
  n : int;
  mean : float;
  variance : float;  (** Unbiased (n-1) sample variance; [0.] if n < 2. *)
  std : float;
  min : float;
  max : float;
}

val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty array. *)

val mean_ci : ?confidence:float -> float array -> float * float
(** Normal-approximation confidence interval for the mean
    (default [confidence = 0.95]).  Returns [(lo, hi)]. *)

val proportion_ci : ?confidence:float -> successes:int -> int -> float * float
(** Wilson score interval for a binomial proportion — well-behaved even
    when [successes] is 0, which matters for rare collision events. *)

val quantile : float array -> float -> float
(** [quantile xs p] with linear interpolation between order statistics;
    [p] in [\[0, 1\]].  Does not mutate the input. *)

val median : float array -> float

type histogram = {
  edges : float array;   (** [bins + 1] bin edges. *)
  counts : int array;    (** [bins] counts. *)
}

val histogram : ?bins:int -> float array -> histogram
(** Equal-width histogram over the data range (default [bins = 20]). *)

val ecdf : float array -> float -> float
(** [ecdf xs] is the empirical CDF of the sample, as a function. *)

val normal_quantile : float -> float
(** Inverse standard-normal CDF (Acklam's rational approximation,
    |error| < 1.15e-9).  Argument in (0, 1). *)
