type result = { x : float array; fx : float; iterations : int; converged : bool }

(* standard coefficients: reflection, expansion, contraction, shrink *)
let alpha = 1.
let gamma = 2.
let rho = 0.5
let sigma = 0.5

let minimize ?(tol = 1e-10) ?max_iter ?scale ~f x0 =
  let dim = Array.length x0 in
  if dim = 0 then invalid_arg "Nelder_mead.minimize: empty starting point";
  let max_iter = match max_iter with Some m -> m | None -> 200 * dim in
  let scale =
    match scale with
    | Some s ->
        if Array.length s <> dim then
          invalid_arg "Nelder_mead.minimize: scale dimension mismatch";
        s
    | None -> Array.map (fun x -> Float.max 0.1 (0.1 *. Float.abs x)) x0
  in
  if not (Float.is_finite (f x0)) then
    invalid_arg "Nelder_mead.minimize: objective not finite at start";
  (* simplex: dim + 1 vertices *)
  let vertices =
    Array.init (dim + 1) (fun i ->
        let v = Array.copy x0 in
        if i > 0 then v.(i - 1) <- v.(i - 1) +. scale.(i - 1);
        v)
  in
  let values = Array.map f vertices in
  let order () =
    let idx = Array.init (dim + 1) Fun.id in
    Array.sort (fun a b -> Float.compare values.(a) values.(b)) idx;
    idx
  in
  let centroid exclude =
    let c = Array.make dim 0. in
    Array.iteri
      (fun i v ->
        if i <> exclude then
          Array.iteri (fun k x -> c.(k) <- c.(k) +. (x /. float_of_int dim)) v)
      vertices;
    c
  in
  let blend a b coeff =
    Array.init dim (fun k -> a.(k) +. (coeff *. (b.(k) -. a.(k))))
  in
  let iterations = ref 0 in
  let converged = ref false in
  let shrink_toward best =
    let b = vertices.(best) in
    Array.iteri
      (fun i v ->
        if i <> best then begin
          vertices.(i) <- blend b v sigma;
          values.(i) <- f vertices.(i)
        end)
      vertices
  in
  while (not !converged) && !iterations < max_iter do
    incr iterations;
    let idx = order () in
    let best = idx.(0) and worst = idx.(dim) and second_worst = idx.(dim - 1) in
    let spread =
      Float.abs (values.(worst) -. values.(best))
      /. (1. +. Float.abs values.(best))
    in
    (* equal values alone are not convergence: a simplex straddling the
       minimum symmetrically ties exactly; demand a small diameter too *)
    let diameter =
      Array.fold_left
        (fun acc v ->
          Float.max acc
            (Vector.norm_inf (Vector.sub v vertices.(best))))
        0. vertices
    in
    let x_scale =
      1. +. Vector.norm_inf vertices.(best)
    in
    if spread <= tol && diameter <= sqrt tol *. x_scale then converged := true
    else if spread <= tol then shrink_toward best
    else begin
      let c = centroid worst in
      (* reflection: c + alpha (c - worst) *)
      let reflected = blend c vertices.(worst) (-.alpha) in
      let f_reflected = f reflected in
      if f_reflected < values.(best) then begin
        (* expansion *)
        let expanded = blend c vertices.(worst) (-.(alpha *. gamma)) in
        let f_expanded = f expanded in
        if f_expanded < f_reflected then begin
          vertices.(worst) <- expanded;
          values.(worst) <- f_expanded
        end
        else begin
          vertices.(worst) <- reflected;
          values.(worst) <- f_reflected
        end
      end
      else if f_reflected < values.(second_worst) then begin
        vertices.(worst) <- reflected;
        values.(worst) <- f_reflected
      end
      else begin
        (* contraction (outside if the reflection helped at all) *)
        let contracted =
          if f_reflected < values.(worst) then blend c reflected rho
          else blend c vertices.(worst) rho
        in
        let f_contracted = f contracted in
        if f_contracted < Float.min f_reflected values.(worst) then begin
          vertices.(worst) <- contracted;
          values.(worst) <- f_contracted
        end
        else shrink_toward best
      end
    end
  done;
  let idx = order () in
  { x = Array.copy vertices.(idx.(0));
    fx = values.(idx.(0));
    iterations = !iterations;
    converged = !converged }

let restarted ?tol ?(rounds = 4) ?scale ~f x0 =
  let rec go round incumbent =
    if round >= rounds then incumbent
    else begin
      let next = minimize ?tol ?scale ~f incumbent.x in
      if next.fx < incumbent.fx -. (1e-12 *. (1. +. Float.abs incumbent.fx)) then
        go (round + 1)
          { next with iterations = incumbent.iterations + next.iterations }
      else { incumbent with converged = true }
    end
  in
  let first = minimize ?tol ?scale ~f x0 in
  go 1 first
