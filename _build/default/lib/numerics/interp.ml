type t = { xs : float array; ys : float array }

let create ~xs ~ys =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Interp.create: need at least two points";
  if Array.length ys <> n then invalid_arg "Interp.create: length mismatch";
  for i = 0 to n - 2 do
    if xs.(i) >= xs.(i + 1) then
      invalid_arg "Interp.create: abscissae not strictly increasing"
  done;
  { xs = Array.copy xs; ys = Array.copy ys }

(* Largest index i with xs.(i) <= x, clamped to [0, n-2]. *)
let segment t x =
  let n = Array.length t.xs in
  if x <= t.xs.(0) then 0
  else if x >= t.xs.(n - 1) then n - 2
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let eval t x =
  let n = Array.length t.xs in
  if x <= t.xs.(0) then t.ys.(0)
  else if x >= t.xs.(n - 1) then t.ys.(n - 1)
  else
    let i = segment t x in
    let frac = (x -. t.xs.(i)) /. (t.xs.(i + 1) -. t.xs.(i)) in
    t.ys.(i) +. (frac *. (t.ys.(i + 1) -. t.ys.(i)))

let inverse t y =
  let n = Array.length t.ys in
  if y <= t.ys.(0) then t.xs.(0)
  else if y >= t.ys.(n - 1) then t.xs.(n - 1)
  else begin
    (* find first segment whose right endpoint reaches y *)
    let i = ref 0 in
    while t.ys.(!i + 1) < y do
      incr i
    done;
    let dy = t.ys.(!i + 1) -. t.ys.(!i) in
    if dy = 0. then t.xs.(!i)
    else
      let frac = (y -. t.ys.(!i)) /. dy in
      t.xs.(!i) +. (frac *. (t.xs.(!i + 1) -. t.xs.(!i)))
  end

let domain t = (t.xs.(0), t.xs.(Array.length t.xs - 1))
let map_y f t = { t with ys = Array.map f t.ys }
