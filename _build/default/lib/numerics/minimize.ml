type result = { x : float; fx : float; iterations : int }

let invphi = (sqrt 5. -. 1.) /. 2. (* 1/φ *)

let golden ?(tol = 1e-10) ?(max_iter = 200) ~f a b =
  let a = ref (Float.min a b) and b = ref (Float.max a b) in
  let c = ref (!b -. (invphi *. (!b -. !a))) in
  let d = ref (!a +. (invphi *. (!b -. !a))) in
  let fc = ref (f !c) and fd = ref (f !d) in
  let iter = ref 0 in
  while
    Float.abs (!b -. !a) > tol *. (Float.abs !a +. Float.abs !b +. 1.)
    && !iter < max_iter
  do
    incr iter;
    if !fc < !fd then begin
      b := !d;
      d := !c;
      fd := !fc;
      c := !b -. (invphi *. (!b -. !a));
      fc := f !c
    end else begin
      a := !c;
      c := !d;
      fc := !fd;
      d := !a +. (invphi *. (!b -. !a));
      fd := f !d
    end
  done;
  let x = 0.5 *. (!a +. !b) in
  { x; fx = f x; iterations = !iter }

(* Brent's minimization, after Numerical Recipes' transcription of
   Brent (1973), ch. 5. *)
let brent ?(tol = 1e-10) ?(max_iter = 200) ~f a b =
  let cgold = 0.381966 in
  let zeps = 1e-18 in
  let a = ref (Float.min a b) and b = ref (Float.max a b) in
  let x = ref (!a +. (cgold *. (!b -. !a))) in
  let w = ref !x and v = ref !x in
  let fx = ref (f !x) in
  let fw = ref !fx and fv = ref !fx in
  let d = ref 0. and e = ref 0. in
  let result = ref None in
  let iter = ref 0 in
  while !result = None && !iter < max_iter do
    incr iter;
    let xm = 0.5 *. (!a +. !b) in
    let tol1 = (tol *. Float.abs !x) +. zeps in
    let tol2 = 2. *. tol1 in
    if Float.abs (!x -. xm) <= tol2 -. (0.5 *. (!b -. !a)) then
      result := Some { x = !x; fx = !fx; iterations = !iter }
    else begin
      let use_golden = ref true in
      if Float.abs !e > tol1 then begin
        (* parabolic fit through x, v, w *)
        let r = (!x -. !w) *. (!fx -. !fv) in
        let q = (!x -. !v) *. (!fx -. !fw) in
        let p = ((!x -. !v) *. q) -. ((!x -. !w) *. r) in
        let q = 2. *. (q -. r) in
        let p = if q > 0. then -.p else p in
        let q = Float.abs q in
        let etemp = !e in
        e := !d;
        if
          Float.abs p < Float.abs (0.5 *. q *. etemp)
          && p > q *. (!a -. !x)
          && p < q *. (!b -. !x)
        then begin
          d := p /. q;
          let u = !x +. !d in
          if u -. !a < tol2 || !b -. u < tol2 then
            d := if xm >= !x then tol1 else -.tol1;
          use_golden := false
        end
      end;
      if !use_golden then begin
        e := (if !x >= xm then !a else !b) -. !x;
        d := cgold *. !e
      end;
      let u =
        if Float.abs !d >= tol1 then !x +. !d
        else !x +. (if !d >= 0. then tol1 else -.tol1)
      in
      let fu = f u in
      if fu <= !fx then begin
        if u >= !x then a := !x else b := !x;
        v := !w; fv := !fw;
        w := !x; fw := !fx;
        x := u; fx := fu
      end else begin
        if u < !x then a := u else b := u;
        if fu <= !fw || !w = !x then begin
          v := !w; fv := !fw;
          w := u; fw := fu
        end else if fu <= !fv || !v = !x || !v = !w then begin
          v := u;
          fv := fu
        end
      end
    end
  done;
  match !result with
  | Some r -> r
  | None -> { x = !x; fx = !fx; iterations = !iter }

let grid_then_brent ?(samples = 256) ?(tol = 1e-10) ~f a b =
  if samples < 2 then invalid_arg "Minimize.grid_then_brent: samples < 2";
  let lo = Float.min a b and hi = Float.max a b in
  let h = (hi -. lo) /. float_of_int samples in
  let best_i = ref 0 and best_f = ref (f lo) in
  for i = 1 to samples do
    let fx = f (lo +. (float_of_int i *. h)) in
    if fx < !best_f then begin
      best_f := fx;
      best_i := i
    end
  done;
  let l = lo +. (h *. float_of_int (max 0 (!best_i - 1))) in
  let r = lo +. (h *. float_of_int (min samples (!best_i + 1))) in
  let polished = brent ~tol ~f l r in
  (* The polish can only improve on the grid incumbent; keep the grid
     point if Brent landed on a worse local feature. *)
  if polished.fx <= !best_f then polished
  else
    { x = lo +. (h *. float_of_int !best_i);
      fx = !best_f;
      iterations = polished.iterations }

let argmin_int ~lo ~hi f =
  if lo > hi then invalid_arg "Minimize.argmin_int: lo > hi";
  let best = ref lo and best_f = ref (f lo) in
  for k = lo + 1 to hi do
    let fk = f k in
    if fk < !best_f then begin
      best := k;
      best_f := fk
    end
  done;
  (!best, !best_f)

let argmin_int_hull ~lo ?start ?(patience = 8) f =
  let start = match start with Some s -> max lo s | None -> lo in
  let best = ref start and best_f = ref (f start) in
  (* walk down first, in case start overshoots the minimum *)
  let k = ref (start - 1) in
  let misses = ref 0 in
  while !k >= lo && !misses < patience do
    let fk = f !k in
    if fk < !best_f then begin
      best := !k;
      best_f := fk;
      misses := 0
    end else incr misses;
    decr k
  done;
  (* then walk up *)
  let k = ref (start + 1) in
  let misses = ref 0 in
  while !misses < patience do
    let fk = f !k in
    if fk < !best_f then begin
      best := !k;
      best_f := fk;
      misses := 0
    end else incr misses;
    incr k
  done;
  (!best, !best_f)
