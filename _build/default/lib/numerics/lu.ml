exception Singular

type t = {
  n : int;
  lu : float array array; (* packed L (unit diagonal, below) and U (on/above) *)
  perm : int array;       (* row permutation *)
  sign : float;           (* parity of the permutation, for det *)
}

let decompose m =
  let n = Matrix.rows m in
  if Matrix.cols m <> n then invalid_arg "Lu.decompose: non-square matrix";
  let lu = Matrix.to_arrays m in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* partial pivoting: largest magnitude in column k at/below row k *)
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs lu.(i).(k) > Float.abs lu.(!pivot).(k) then pivot := i
    done;
    if !pivot <> k then begin
      let tmp = lu.(k) in
      lu.(k) <- lu.(!pivot);
      lu.(!pivot) <- tmp;
      let tp = perm.(k) in
      perm.(k) <- perm.(!pivot);
      perm.(!pivot) <- tp;
      sign := -. !sign
    end;
    let pkk = lu.(k).(k) in
    if pkk = 0. then raise Singular;
    for i = k + 1 to n - 1 do
      let factor = lu.(i).(k) /. pkk in
      lu.(i).(k) <- factor;
      if factor <> 0. then
        for j = k + 1 to n - 1 do
          lu.(i).(j) <- lu.(i).(j) -. (factor *. lu.(k).(j))
        done
    done
  done;
  { n; lu; perm; sign = !sign }

let solve_vec { n; lu; perm; _ } b =
  if Array.length b <> n then invalid_arg "Lu.solve_vec: dimension mismatch";
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* forward substitution with unit-lower L *)
  for i = 1 to n - 1 do
    let s = ref x.(i) in
    for j = 0 to i - 1 do
      s := !s -. (lu.(i).(j) *. x.(j))
    done;
    x.(i) <- !s
  done;
  (* back substitution with U *)
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (lu.(i).(j) *. x.(j))
    done;
    x.(i) <- !s /. lu.(i).(i)
  done;
  x

let solve_mat fact b =
  let cols = Matrix.cols b in
  let solved = Array.init cols (fun j -> solve_vec fact (Matrix.col b j)) in
  Matrix.init ~rows:fact.n ~cols (fun i j -> solved.(j).(i))

let det { n; lu; sign; _ } =
  let d = ref sign in
  for i = 0 to n - 1 do
    d := !d *. lu.(i).(i)
  done;
  !d

let inverse fact = solve_mat fact (Matrix.identity fact.n)
let solve a b = solve_vec (decompose a) b
let solve_matrix a b = solve_mat (decompose a) b

let refine a fact b x =
  let residual = Vector.sub b (Matrix.mul_vec a x) in
  Vector.add x (solve_vec fact residual)
