let simpson ?(n = 512) ~f a b =
  if n < 2 then invalid_arg "Integrate.simpson: n < 2";
  let n = if n land 1 = 1 then n + 1 else n in
  let h = (b -. a) /. float_of_int n in
  let acc = ref (f a +. f b) in
  for i = 1 to n - 1 do
    let x = a +. (float_of_int i *. h) in
    acc := !acc +. ((if i land 1 = 1 then 4. else 2.) *. f x)
  done;
  !acc *. h /. 3.

(* single Simpson panel *)
let panel f a b =
  let m = 0.5 *. (a +. b) in
  ((b -. a) /. 6.) *. (f a +. (4. *. f m) +. f b)

let adaptive ?(tol = 1e-10) ?(max_depth = 48) ~f a b =
  let rec go a b whole tol depth =
    let m = 0.5 *. (a +. b) in
    let left = panel f a m and right = panel f m b in
    let refined = left +. right in
    if depth >= max_depth || Float.abs (refined -. whole) <= 15. *. tol then
      refined +. ((refined -. whole) /. 15.)
    else
      go a m left (tol /. 2.) (depth + 1)
      +. go m b right (tol /. 2.) (depth + 1)
  in
  (* pre-split so narrow features cannot hide between the three probe
     points of a single top-level panel *)
  let pieces = 32 in
  let h = (b -. a) /. float_of_int pieces in
  let acc = ref 0. in
  for i = 0 to pieces - 1 do
    let lo = a +. (float_of_int i *. h) in
    let hi = if i = pieces - 1 then b else lo +. h in
    acc := !acc +. go lo hi (panel f lo hi) (tol /. float_of_int pieces) 0
  done;
  !acc

let to_infinity ?(tol = 1e-12) ?(max_doublings = 64) ~f a =
  let total = ref 0. in
  let lo = ref a in
  let width = ref (Float.max 1. (Float.abs a)) in
  let continue = ref true in
  let rounds = ref 0 in
  while !continue && !rounds < max_doublings do
    let hi = !lo +. !width in
    let piece = adaptive ~tol:(tol /. 16.) ~f !lo hi in
    total := !total +. piece;
    if Float.abs piece <= tol *. (1. +. Float.abs !total) && !rounds > 2 then
      continue := false
    else begin
      lo := hi;
      width := !width *. 2.;
      incr rounds
    end
  done;
  !total
