(** Dense row-major float matrices.

    Sized for Markov-chain work: a few thousand states at most.  All
    operations allocate fresh results; in-place variants are not
    exposed. *)

type t

val create : rows:int -> cols:int -> t
(** Zero matrix. *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t
val identity : int -> t
val of_arrays : float array array -> t
(** Rows must be non-empty and of equal length. *)

val to_arrays : t -> float array array
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t

val row : t -> int -> Vector.t
val col : t -> int -> Vector.t

val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
val mul_vec : t -> Vector.t -> Vector.t
val vec_mul : Vector.t -> t -> Vector.t
(** Row-vector times matrix. *)

val pow : t -> int -> t
(** Matrix power by repeated squaring; exponent must be non-negative
    and the matrix square. *)

val map : (float -> float) -> t -> t
val submatrix : t -> row_lo:int -> row_hi:int -> col_lo:int -> col_hi:int -> t
(** Inclusive index bounds. *)

val row_sums : t -> Vector.t
val norm_inf : t -> float
(** Maximum absolute row sum. *)

val approx_eq : ?rtol:float -> ?atol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
