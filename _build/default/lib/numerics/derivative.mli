(** Numerical differentiation, used for sensitivity analysis
    (elasticities of the cost function w.r.t. scenario parameters) and
    to cross-check the optimizer (the derivative must vanish at
    [r_opt]). *)

val central : ?h:float -> f:(float -> float) -> float -> float
(** Central difference [ (f (x+h) - f (x-h)) / 2h ].  The default step
    scales with [x]: [h = eps^(1/3) * max 1 |x|]. *)

val richardson : ?h:float -> ?levels:int -> f:(float -> float) -> float -> float
(** Richardson-extrapolated central differences ([levels] halvings,
    default [4]); roughly [O(h^(2*levels))] accurate on smooth
    functions. *)

val second : ?h:float -> f:(float -> float) -> float -> float
(** Central second derivative. *)

val log_elasticity : ?h:float -> f:(float -> float) -> float -> float
(** [log_elasticity ~f x] is [d log f / d log x] at [x]: the relative
    sensitivity of [f] to [x].  Requires [x > 0] and [f x > 0]. *)
