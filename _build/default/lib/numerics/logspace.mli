(** Signed log-domain arithmetic.

    A {!t} represents a real number as a sign together with the natural
    logarithm of its magnitude, so products of many tiny probabilities
    (the paper's [pi_n(r)], which reaches [1e-120] and below) and huge
    cost coefficients ([E = 1e35] and beyond) stay representable far
    past the range of IEEE doubles.  All operations are total on
    non-[nan] inputs. *)

type t
(** A signed log-domain real. *)

val zero : t
val one : t
val minus_one : t

val of_float : float -> t
(** Embed a float.  Raises [Invalid_argument] on [nan]. *)

val of_log : float -> t
(** [of_log x] is the positive number whose natural log is [x]
    ([neg_infinity] gives {!zero}). *)

val to_float : t -> float
(** Round-trip to float; overflows to [infinity]/[neg_infinity] and
    underflows to (signed) zero exactly as [exp] would. *)

val log_abs : t -> float
(** Natural log of the magnitude ([neg_infinity] for {!zero}). *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** [div _ zero] raises [Division_by_zero]. *)

val pow : t -> int -> t
(** Integer power.  [pow zero 0 = one]; negative exponents of
    {!zero} raise [Division_by_zero]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool

val is_zero : t -> bool

val sum : t list -> t
(** Log-sum-exp over a list, sign-aware. *)

val prod : t list -> t

val pp : Format.formatter -> t -> unit
(** Prints either the float value (when in range) or [±exp(ℓ)]. *)
