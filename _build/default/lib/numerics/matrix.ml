type t = { rows : int; cols : int; data : float array (* row-major *) }

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create: negative size";
  { rows; cols; data = Array.make (rows * cols) 0. }

let init ~rows ~cols f =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.init: negative size";
  { rows;
    cols;
    data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let identity n = init ~rows:n ~cols:n (fun i j -> if i = j then 1. else 0.)

let of_arrays arr =
  let rows = Array.length arr in
  if rows = 0 then invalid_arg "Matrix.of_arrays: no rows";
  let cols = Array.length arr.(0) in
  if cols = 0 then invalid_arg "Matrix.of_arrays: empty rows";
  Array.iter
    (fun r ->
      if Array.length r <> cols then invalid_arg "Matrix.of_arrays: ragged rows")
    arr;
  init ~rows ~cols (fun i j -> arr.(i).(j))

let rows m = m.rows
let cols m = m.cols

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Matrix.get: index out of bounds";
  Array.unsafe_get m.data ((i * m.cols) + j)

let set m i j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Matrix.set: index out of bounds";
  Array.unsafe_set m.data ((i * m.cols) + j) v

let copy m = { m with data = Array.copy m.data }
let to_arrays m = Array.init m.rows (fun i -> Array.init m.cols (get m i))
let row m i = Array.init m.cols (fun j -> get m i j)
let col m j = Array.init m.rows (fun i -> get m i j)
let transpose m = init ~rows:m.cols ~cols:m.rows (fun i j -> get m j i)

let check_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (name ^ ": shape mismatch")

let add a b =
  check_same "Matrix.add" a b;
  { a with data = Array.mapi (fun k x -> x +. b.data.(k)) a.data }

let sub a b =
  check_same "Matrix.sub" a b;
  { a with data = Array.mapi (fun k x -> x -. b.data.(k)) a.data }

let scale alpha m = { m with data = Array.map (fun x -> alpha *. x) m.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: shape mismatch";
  let c = create ~rows:a.rows ~cols:b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let mul_vec m v =
  if m.cols <> Array.length v then invalid_arg "Matrix.mul_vec: shape mismatch";
  Array.init m.rows (fun i -> Safe_float.dot (row m i) v)

let vec_mul v m =
  if m.rows <> Array.length v then invalid_arg "Matrix.vec_mul: shape mismatch";
  Array.init m.cols (fun j -> Safe_float.dot v (col m j))

let pow m k =
  if m.rows <> m.cols then invalid_arg "Matrix.pow: non-square";
  if k < 0 then invalid_arg "Matrix.pow: negative exponent";
  let rec go acc base k =
    if k = 0 then acc
    else
      let acc = if k land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (k lsr 1)
  in
  go (identity m.rows) m k

let map f m = { m with data = Array.map f m.data }

let submatrix m ~row_lo ~row_hi ~col_lo ~col_hi =
  if
    row_lo < 0 || row_hi >= m.rows || col_lo < 0 || col_hi >= m.cols
    || row_lo > row_hi || col_lo > col_hi
  then invalid_arg "Matrix.submatrix: bad bounds";
  init
    ~rows:(row_hi - row_lo + 1)
    ~cols:(col_hi - col_lo + 1)
    (fun i j -> get m (row_lo + i) (col_lo + j))

let row_sums m = Array.init m.rows (fun i -> Safe_float.sum (row m i))

let norm_inf m =
  let sums = Array.init m.rows (fun i -> Vector.norm1 (row m i)) in
  Array.fold_left Float.max 0. sums

let approx_eq ?rtol ?atol a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2
       (fun x y -> Safe_float.approx_eq ?rtol ?atol x y)
       a.data b.data

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "%a@," Vector.pp (row m i)
  done;
  Format.fprintf ppf "@]"
