type summary = {
  n : int;
  mean : float;
  variance : float;
  std : float;
  min : float;
  max : float;
}

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  let mean = Safe_float.mean xs in
  let variance =
    if n < 2 then 0.
    else
      Safe_float.sum (Array.map (fun x -> (x -. mean) ** 2.) xs)
      /. float_of_int (n - 1)
  in
  { n;
    mean;
    variance;
    std = sqrt variance;
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs }

(* Inverse standard-normal CDF: Peter Acklam's rational approximation. *)
let normal_quantile p =
  if p <= 0. || p >= 1. then invalid_arg "Stats.normal_quantile: p outside (0,1)";
  let a = [| -3.969683028665376e+01; 2.209460984245205e+02;
             -2.759285104469687e+02; 1.383577518672690e+02;
             -3.066479806614716e+01; 2.506628277459239e+00 |] in
  let b = [| -5.447609879822406e+01; 1.615858368580409e+02;
             -1.556989798598866e+02; 6.680131188771972e+01;
             -1.328068155288572e+01 |] in
  let c = [| -7.784894002430293e-03; -3.223964580411365e-01;
             -2.400758277161838e+00; -2.549732539343734e+00;
             4.374664141464968e+00; 2.938163982698783e+00 |] in
  let d = [| 7.784695709041462e-03; 3.224671290700398e-01;
             2.445134137142996e+00; 3.754408661907416e+00 |] in
  let p_low = 0.02425 in
  let tail q sign =
    let q = sqrt (-2. *. log q) in
    sign
    *. ((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
    /. (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.)
  in
  if p < p_low then tail p 1.
  else if p > 1. -. p_low then tail (1. -. p) (-1.)
  else
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5))
    *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.)

let mean_ci ?(confidence = 0.95) xs =
  let s = summarize xs in
  if s.n < 2 then (s.mean, s.mean)
  else
    let z = normal_quantile (0.5 +. (confidence /. 2.)) in
    let half = z *. s.std /. sqrt (float_of_int s.n) in
    (s.mean -. half, s.mean +. half)

let proportion_ci ?(confidence = 0.95) ~successes trials =
  if trials <= 0 then invalid_arg "Stats.proportion_ci: trials <= 0";
  if successes < 0 || successes > trials then
    invalid_arg "Stats.proportion_ci: successes outside [0, trials]";
  let z = normal_quantile (0.5 +. (confidence /. 2.)) in
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1. +. (z2 /. n) in
  let centre = (p +. (z2 /. (2. *. n))) /. denom in
  let half =
    z *. sqrt ((p *. (1. -. p) /. n) +. (z2 /. (4. *. n *. n))) /. denom
  in
  (Safe_float.clamp_probability (centre -. half),
   Safe_float.clamp_probability (centre +. half))

let quantile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.quantile: empty sample";
  if not (Safe_float.is_probability p) then
    invalid_arg "Stats.quantile: p outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let h = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor h) in
  let hi = min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median xs = quantile xs 0.5

type histogram = { edges : float array; counts : int array }

let histogram ?(bins = 20) xs =
  if bins < 1 then invalid_arg "Stats.histogram: bins < 1";
  let s = summarize xs in
  let lo = s.min and hi = if s.max > s.min then s.max else s.min +. 1. in
  let width = (hi -. lo) /. float_of_int bins in
  let edges = Array.init (bins + 1) (fun i -> lo +. (float_of_int i *. width)) in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = if b >= bins then bins - 1 else if b < 0 then 0 else b in
      counts.(b) <- counts.(b) + 1)
    xs;
  { edges; counts }

let ecdf xs =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  fun x ->
    if n = 0 then invalid_arg "Stats.ecdf: empty sample";
    (* count of entries <= x, by binary search for the upper bound *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if sorted.(mid) <= x then search (mid + 1) hi else search lo mid
    in
    float_of_int (search 0 n) /. float_of_int n
