(** One-dimensional numerical integration.

    Used to compute distribution moments from survival functions
    (mean = integral of the survival of the non-defective part) and to
    cross-check closed-form means in the test suite. *)

val simpson : ?n:int -> f:(float -> float) -> float -> float -> float
(** Composite Simpson's rule with [n] (default [512], rounded up to
    even) subintervals on [\[a, b\]]. *)

val adaptive :
  ?tol:float -> ?max_depth:int -> f:(float -> float) -> float -> float ->
  float
(** Adaptive Simpson (Lyness criterion): recursively bisect until the
    local error estimate is below [tol] (default [1e-10]) or
    [max_depth] (default [48]) is reached. *)

val to_infinity :
  ?tol:float -> ?max_doublings:int -> f:(float -> float) -> float -> float
(** Integrate [f] from a lower bound to infinity by integrating over
    geometrically growing windows until a window contributes less than
    [tol] (default [1e-12]) in relative terms.  Suitable for integrands
    with (eventually) decaying tails. *)
