let default_h x = (Safe_float.epsilon ** (1. /. 3.)) *. Float.max 1. (Float.abs x)

let central ?h ~f x =
  let h = match h with Some h -> h | None -> default_h x in
  (f (x +. h) -. f (x -. h)) /. (2. *. h)

let richardson ?h ?(levels = 4) ~f x =
  let h0 = match h with Some h -> h | None -> default_h x *. 8. in
  (* Neville-style tableau on successively halved central differences. *)
  let d = Array.make levels 0. in
  for i = 0 to levels - 1 do
    let hi = h0 /. (2. ** float_of_int i) in
    d.(i) <- (f (x +. hi) -. f (x -. hi)) /. (2. *. hi)
  done;
  let tableau = Array.copy d in
  for j = 1 to levels - 1 do
    for i = levels - 1 downto j do
      let pow4 = 4. ** float_of_int j in
      tableau.(i) <- ((pow4 *. tableau.(i)) -. tableau.(i - 1)) /. (pow4 -. 1.)
    done
  done;
  tableau.(levels - 1)

let second ?h ~f x =
  let h =
    match h with
    | Some h -> h
    | None -> (Safe_float.epsilon ** 0.25) *. Float.max 1. (Float.abs x)
  in
  (f (x +. h) -. (2. *. f x) +. f (x -. h)) /. (h *. h)

let log_elasticity ?h ~f x =
  if x <= 0. then invalid_arg "Derivative.log_elasticity: x <= 0";
  let fx = f x in
  if fx <= 0. then invalid_arg "Derivative.log_elasticity: f x <= 0";
  let g u = log (f (exp u)) in
  central ?h ~f:g (log x)
