(** Derivative-free multidimensional minimization (Nelder–Mead).

    Used where the model has several coupled unknowns — e.g. fitting
    delay-distribution parameters to measurements, or solving the
    Sec. 4.5 inverse problem for [(E, c)] jointly instead of by nested
    one-dimensional searches. *)

type result = {
  x : float array;     (** Minimizer. *)
  fx : float;          (** Minimum value. *)
  iterations : int;
  converged : bool;    (** False when [max_iter] was exhausted. *)
}

val minimize :
  ?tol:float -> ?max_iter:int -> ?scale:float array ->
  f:(float array -> float) -> float array -> result
(** [minimize ~f x0] from the initial point [x0].  [scale] sets the
    initial simplex edge per coordinate (default: 10% of each
    coordinate's magnitude, or 0.1); [tol] (default [1e-10]) bounds the
    simplex's relative function spread at termination; [max_iter]
    defaults to [200 * dim].  The objective may return [infinity] to
    encode constraints (the simplex retreats).  Raises
    [Invalid_argument] on an empty starting point or non-finite initial
    objective. *)

val restarted :
  ?tol:float -> ?rounds:int -> ?scale:float array ->
  f:(float array -> float) -> float array -> result
(** Re-run {!minimize} from each result until the value stops improving
    (at most [rounds], default [4]) — the standard cheap defence against
    premature simplex collapse. *)
