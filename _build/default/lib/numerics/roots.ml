exception No_bracket

type result = { root : float; value : float; iterations : int }

let bracket ?(grow = 1.6) ?(max_iter = 60) ~f a b =
  if a = b then invalid_arg "Roots.bracket: degenerate interval";
  let a = ref (Float.min a b) and b = ref (Float.max a b) in
  let fa = ref (f !a) and fb = ref (f !b) in
  let rec loop k =
    if !fa *. !fb <= 0. then (!a, !b)
    else if k >= max_iter then raise No_bracket
    else begin
      (* Expand the endpoint whose function value is smaller in
         magnitude: it is more likely to be on the root's side. *)
      if Float.abs !fa < Float.abs !fb then begin
        a := !a +. (grow *. (!a -. !b));
        fa := f !a
      end else begin
        b := !b +. (grow *. (!b -. !a));
        fb := f !b
      end;
      loop (k + 1)
    end
  in
  loop 0

let check_sign_change name fa fb =
  if fa *. fb > 0. then
    invalid_arg (name ^ ": endpoints do not bracket a root")

let bisect ?(tol = 1e-12) ?(max_iter = 200) ~f a b =
  let fa = f a and fb = f b in
  check_sign_change "Roots.bisect" fa fb;
  if fa = 0. then { root = a; value = 0.; iterations = 0 }
  else if fb = 0. then { root = b; value = 0.; iterations = 0 }
  else
    let rec loop a fa b k =
      let m = 0.5 *. (a +. b) in
      let fm = f m in
      if fm = 0. || (b -. a) /. 2. < tol || k >= max_iter then
        { root = m; value = fm; iterations = k }
      else if fa *. fm < 0. then loop a fa m (k + 1)
      else loop m fm b (k + 1)
    in
    let a, fa, b = if a <= b then (a, fa, b) else (b, fb, a) in
    loop a fa b 0

(* Brent's method, following the classical ALGOL 60 formulation
   (Brent 1973, "Algorithms for Minimization without Derivatives"). *)
let brent ?(tol = 1e-12) ?(max_iter = 200) ~f a b =
  let fa = f a and fb = f b in
  check_sign_change "Roots.brent" fa fb;
  let a = ref a and b = ref b and fa = ref fa and fb = ref fb in
  if Float.abs !fa < Float.abs !fb then begin
    let t = !a in a := !b; b := t;
    let t = !fa in fa := !fb; fb := t
  end;
  let c = ref !a and fc = ref !fa in
  let d = ref (!b -. !a) and e = ref (!b -. !a) in
  let result = ref None in
  let iter = ref 0 in
  while !result = None && !iter < max_iter do
    incr iter;
    if Float.abs !fc < Float.abs !fb then begin
      a := !b; b := !c; c := !a;
      fa := !fb; fb := !fc; fc := !fa
    end;
    let tol1 = (2. *. Safe_float.epsilon *. Float.abs !b) +. (0.5 *. tol) in
    let xm = 0.5 *. (!c -. !b) in
    if Float.abs xm <= tol1 || !fb = 0. then
      result := Some { root = !b; value = !fb; iterations = !iter }
    else begin
      if Float.abs !e >= tol1 && Float.abs !fa > Float.abs !fb then begin
        let s = !fb /. !fa in
        let p, q =
          if !a = !c then
            (* secant *)
            (2. *. xm *. s, 1. -. s)
          else begin
            (* inverse quadratic interpolation *)
            let qq = !fa /. !fc and rr = !fb /. !fc in
            ( s *. ((2. *. xm *. qq *. (qq -. rr)) -. ((!b -. !a) *. (rr -. 1.))),
              (qq -. 1.) *. (rr -. 1.) *. (s -. 1.) )
          end
        in
        let p, q = if p > 0. then (p, -.q) else (-.p, q) in
        let min1 = (3. *. xm *. q) -. Float.abs (tol1 *. q) in
        let min2 = Float.abs (!e *. q) in
        if 2. *. p < Float.min min1 min2 then begin
          e := !d;
          d := p /. q
        end else begin
          d := xm;
          e := xm
        end
      end else begin
        d := xm;
        e := xm
      end;
      a := !b;
      fa := !fb;
      if Float.abs !d > tol1 then b := !b +. !d
      else b := !b +. (if xm >= 0. then tol1 else -.tol1);
      fb := f !b;
      if (!fb > 0. && !fc > 0.) || (!fb < 0. && !fc < 0.) then begin
        c := !a; fc := !fa;
        d := !b -. !a; e := !d
      end
    end
  done;
  match !result with
  | Some r -> r
  | None -> { root = !b; value = !fb; iterations = !iter }

let newton ?(tol = 1e-12) ?(max_iter = 100) ~f ~df x0 =
  let rec loop x k =
    if k >= max_iter then failwith "Roots.newton: no convergence";
    let fx = f x in
    let dfx = df x in
    if dfx = 0. then failwith "Roots.newton: zero derivative";
    let step = fx /. dfx in
    let x' = x -. step in
    if Float.abs step <= tol *. (1. +. Float.abs x') then
      { root = x'; value = f x'; iterations = k + 1 }
    else loop x' (k + 1)
  in
  loop x0 0

let find_all ?(samples = 512) ?(tol = 1e-12) ~f a b =
  if samples < 1 then invalid_arg "Roots.find_all: samples < 1";
  let lo = Float.min a b and hi = Float.max a b in
  let h = (hi -. lo) /. float_of_int samples in
  let roots = ref [] in
  let push r =
    match !roots with
    | r' :: _ when Float.abs (r -. r') <= 10. *. tol -> ()
    | _ -> roots := r :: !roots
  in
  let x_prev = ref lo and f_prev = ref (f lo) in
  if !f_prev = 0. then push lo;
  for i = 1 to samples do
    let x = lo +. (float_of_int i *. h) in
    let fx = f x in
    if fx = 0. then push x
    else if !f_prev *. fx < 0. then begin
      let r = brent ~tol ~f !x_prev x in
      push r.root
    end;
    x_prev := x;
    f_prev := fx
  done;
  List.rev !roots
