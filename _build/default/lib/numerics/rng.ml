type t = { mutable state : int64 }

(* splitmix64 (Steele, Lea, Flood 2014): a tiny generator with excellent
   statistical behaviour for its cost, and trivially splittable. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let uint64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = uint64 t in
  { state = mix seed }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* rejection sampling on the top bits to avoid modulo bias *)
  let b = Int64.of_int bound in
  let rec draw () =
    let raw = Int64.shift_right_logical (uint64 t) 1 (* 63 bits, non-negative *) in
    let max_fair = Int64.sub Int64.max_int (Int64.rem Int64.max_int b) in
    if raw >= max_fair then draw () else Int64.to_int (Int64.rem raw b)
  in
  draw ()

let float t =
  (* top 53 bits -> [0, 1) *)
  let bits = Int64.shift_right_logical (uint64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let uniform t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.uniform: lo > hi";
  lo +. ((hi -. lo) *. float t)

let bool t p =
  if not (Safe_float.is_probability p) then invalid_arg "Rng.bool: p not in [0,1]";
  float t < p

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate <= 0";
  (* -log U / rate; use 1 - float to exclude 0 *)
  -.Float.log1p (-.float t) /. rate

let normal t ~mu ~sigma =
  let u1 = 1. -. float t (* in (0, 1] so log is safe *) in
  let u2 = float t in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let choose_weighted t weights =
  let total =
    Array.fold_left
      (fun acc w ->
        if w < 0. then invalid_arg "Rng.choose_weighted: negative weight";
        acc +. w)
      0. weights
  in
  if total <= 0. then invalid_arg "Rng.choose_weighted: zero total weight";
  let target = float t *. total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
