type t = { sign : int; mag : float }
(* Invariant: sign ∈ {-1, 0, 1}; sign = 0 iff mag = neg_infinity. *)

let zero = { sign = 0; mag = neg_infinity }
let one = { sign = 1; mag = 0. }
let minus_one = { sign = -1; mag = 0. }

let make sign mag =
  if mag = neg_infinity || sign = 0 then zero else { sign; mag }

let of_float x =
  if Float.is_nan x then invalid_arg "Logspace.of_float: nan";
  if x = 0. then zero
  else if x > 0. then { sign = 1; mag = log x }
  else { sign = -1; mag = log (-.x) }

let of_log x = make 1 x

let to_float { sign; mag } =
  match sign with
  | 0 -> 0.
  | 1 -> exp mag
  | _ -> -.exp mag

let log_abs t = t.mag
let sign t = t.sign
let neg t = make (-t.sign) t.mag
let abs t = make (Stdlib.abs t.sign) t.mag
let is_zero t = t.sign = 0

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (Safe_float.log_sum_exp a.mag b.mag)
  else if a.mag = b.mag then zero
  else if a.mag > b.mag then make a.sign (Safe_float.log_diff_exp a.mag b.mag)
  else make b.sign (Safe_float.log_diff_exp b.mag a.mag)

let sub a b = add a (neg b)
let mul a b = make (a.sign * b.sign) (a.mag +. b.mag)

let div a b =
  if b.sign = 0 then raise Division_by_zero;
  make (a.sign * b.sign) (a.mag -. b.mag)

let pow a k =
  if a.sign = 0 then
    if k > 0 then zero else if k = 0 then one else raise Division_by_zero
  else
    let sign = if a.sign < 0 && k land 1 = 1 then -1 else 1 in
    make sign (float_of_int k *. a.mag)

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then Stdlib.compare a.mag b.mag
  else Stdlib.compare b.mag a.mag

let equal a b = compare a b = 0
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let sum ts = List.fold_left add zero ts
let prod ts = List.fold_left mul one ts

let pp ppf t =
  let v = to_float t in
  if Float.is_finite v && (v = 0. || Stdlib.( < ) (Float.abs t.mag) 700.) then
    Format.fprintf ppf "%g" v
  else
    Format.fprintf ppf "%sexp(%g)" (if Stdlib.( < ) t.sign 0 then "-" else "") t.mag
