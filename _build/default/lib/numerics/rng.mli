(** Deterministic, splittable pseudo-random numbers.

    The network simulator and the Monte-Carlo validation of the Markov
    model need reproducible streams; this module provides a splitmix64
    generator (for seeding and splitting) driving PCG-style output,
    plus the standard sampling transforms. *)

type t
(** Mutable generator state.  Not thread-safe; split instead. *)

val create : int -> t
(** Seeded generator; equal seeds give equal streams. *)

val split : t -> t
(** Derive an independent generator; advances the parent. *)

val copy : t -> t

val uint64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [\[0, bound)]; [bound > 0].  Uses
    rejection sampling, so the distribution is exactly uniform. *)

val float : t -> float
(** Uniform on [\[0, 1)] with 53-bit resolution. *)

val uniform : t -> lo:float -> hi:float -> float
val bool : t -> float -> bool
(** [bool t p] is a Bernoulli trial with success probability [p]. *)

val exponential : t -> rate:float -> float
(** Exponential variate, [rate > 0]. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian variate via Box–Muller. *)

val choose_weighted : t -> float array -> int
(** Sample an index proportional to the (non-negative) weights; raises
    [Invalid_argument] if all weights are zero or any is negative. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
