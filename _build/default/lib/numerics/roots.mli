(** One-dimensional root finding.

    Used by the optimizer (zeroing the cost derivative) and by the
    Section-4.5 calibration, which inverts the cost model for the error
    cost [E]. *)

exception No_bracket
(** Raised when a sign-changing interval cannot be established. *)

type result = {
  root : float;
  value : float;  (** [f root] *)
  iterations : int;
}

val bracket :
  ?grow:float -> ?max_iter:int -> f:(float -> float) -> float -> float ->
  float * float
(** [bracket ~f a b] expands the interval [(a, b)] geometrically until
    [f] changes sign across it.  [grow] (default [1.6]) is the expansion
    factor; raises {!No_bracket} after [max_iter] (default [60])
    expansions. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float ->
  result
(** Plain bisection on a sign-changing interval.  [tol] (default
    [1e-12]) is the absolute interval width at which iteration stops.
    Raises [Invalid_argument] if [f a] and [f b] have the same strict
    sign. *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float ->
  result
(** Brent's method (inverse quadratic interpolation with bisection
    fallback).  Same preconditions as {!bisect}; typically converges
    superlinearly. *)

val newton :
  ?tol:float -> ?max_iter:int -> f:(float -> float) ->
  df:(float -> float) -> float -> result
(** Newton–Raphson from an initial guess.  Raises [Failure] when the
    derivative vanishes or the iteration exceeds [max_iter] (default
    [100]) without meeting [tol] (default [1e-12]) on the step size. *)

val find_all :
  ?samples:int -> ?tol:float -> f:(float -> float) -> float -> float ->
  float list
(** [find_all ~f a b] scans [\[a, b\]] on a uniform grid ([samples]
    intervals, default [512]) and polishes every sign change with
    {!brent}.  Returns roots in increasing order.  Roots of even
    multiplicity (no sign change) are not detected. *)
