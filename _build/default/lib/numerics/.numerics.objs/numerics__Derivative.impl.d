lib/numerics/derivative.ml: Array Float Safe_float
