lib/numerics/minimize.mli:
