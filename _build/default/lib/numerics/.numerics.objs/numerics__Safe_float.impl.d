lib/numerics/safe_float.ml: Array Float List Stdlib
