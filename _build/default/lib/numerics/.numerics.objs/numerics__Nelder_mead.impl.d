lib/numerics/nelder_mead.ml: Array Float Fun Vector
