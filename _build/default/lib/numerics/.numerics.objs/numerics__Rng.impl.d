lib/numerics/rng.ml: Array Float Int64 Safe_float
