lib/numerics/integrate.ml: Float
