lib/numerics/matrix.mli: Format Vector
