lib/numerics/lu.mli: Matrix Vector
