lib/numerics/integrate.mli:
