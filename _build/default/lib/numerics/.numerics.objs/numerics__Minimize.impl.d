lib/numerics/minimize.ml: Float
