lib/numerics/rng.mli:
