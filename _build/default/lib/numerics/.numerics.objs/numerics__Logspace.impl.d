lib/numerics/logspace.ml: Float Format List Safe_float Stdlib
