lib/numerics/lu.ml: Array Float Matrix Vector
