lib/numerics/vector.ml: Array Float Format Safe_float
