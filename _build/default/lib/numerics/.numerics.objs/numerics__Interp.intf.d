lib/numerics/interp.mli:
