lib/numerics/nelder_mead.mli:
