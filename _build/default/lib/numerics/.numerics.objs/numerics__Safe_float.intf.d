lib/numerics/safe_float.mli:
