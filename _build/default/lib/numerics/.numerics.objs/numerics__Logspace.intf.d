lib/numerics/logspace.mli: Format
