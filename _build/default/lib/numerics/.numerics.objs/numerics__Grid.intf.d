lib/numerics/grid.mli:
