lib/numerics/matrix.ml: Array Float Format Safe_float Vector
