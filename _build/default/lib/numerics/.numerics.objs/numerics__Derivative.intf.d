lib/numerics/derivative.mli:
