lib/numerics/roots.ml: Float List Safe_float
