lib/numerics/stats.ml: Array Float Safe_float
