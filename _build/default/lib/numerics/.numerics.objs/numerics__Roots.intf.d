lib/numerics/roots.mli:
