lib/numerics/stats.mli:
