(** One-dimensional minimization.

    The heart of the paper's optimization problem: find
    [r_opt(n) = argmin_r C_n(r)] (Sec. 4.2).  The cost functions are
    unimodal past their initial plateau, so golden-section / Brent on a
    bracketed minimum is exact enough; a grid pre-scan makes the search
    robust to the flat [qE] plateau at small [r]. *)

type result = {
  x : float;      (** Minimizer. *)
  fx : float;     (** Minimum value. *)
  iterations : int;
}

val golden :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float ->
  result
(** Golden-section search on [\[a, b\]].  Converges linearly; requires
    only unimodality on the interval.  [tol] (default [1e-10]) is
    relative. *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float ->
  result
(** Brent's minimization (golden section + successive parabolic
    interpolation) on [\[a, b\]].  Superlinear on smooth functions. *)

val grid_then_brent :
  ?samples:int -> ?tol:float -> f:(float -> float) -> float -> float ->
  result
(** Scan [samples] (default [256]) equispaced points, then polish the
    best grid cell with {!brent}.  Robust for functions with plateaus or
    multiple shallow local minima, such as [C_min(r)]. *)

val argmin_int : lo:int -> hi:int -> (int -> float) -> int * float
(** Exhaustive minimization over an integer range (used for the optimal
    probe count [N(r)]).  Ties break toward the smaller argument, as in
    the paper's definition of [N].  Raises [Invalid_argument] if
    [lo > hi]. *)

val argmin_int_hull :
  lo:int -> ?start:int -> ?patience:int -> (int -> float) -> int * float
(** Minimize over unbounded integers [>= lo] assuming the sequence is
    eventually increasing: stops after [patience] (default [8])
    consecutive non-improving values past the incumbent.  [start]
    defaults to [lo]. *)
