type t = float array

let make = Array.make
let init = Array.init
let dim = Array.length
let copy = Array.copy
let of_list = Array.of_list

let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg (name ^ ": dimension mismatch")

let add a b =
  check_dims "Vector.add" a b;
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_dims "Vector.sub" a b;
  Array.mapi (fun i x -> x -. b.(i)) a

let scale alpha a = Array.map (fun x -> alpha *. x) a
let dot = Safe_float.dot

let norm_inf a = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. a
let norm1 a = Safe_float.sum (Array.map Float.abs a)
let norm2 a = sqrt (Safe_float.sum (Array.map (fun x -> x *. x) a))

let axpy ~alpha x y =
  check_dims "Vector.axpy" x y;
  Array.mapi (fun i xi -> (alpha *. xi) +. y.(i)) x

let sum = Safe_float.sum

let max_index a =
  if Array.length a = 0 then invalid_arg "Vector.max_index: empty";
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) > a.(!best) then best := i
  done;
  !best

let approx_eq ?rtol ?atol a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Safe_float.approx_eq ?rtol ?atol x y) a b

let pp ppf a =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    a
