let linspace a b n =
  if n < 1 then invalid_arg "Grid.linspace: n < 1";
  if n = 1 then
    if a = b then [| a |] else invalid_arg "Grid.linspace: n = 1 with a <> b"
  else
    let h = (b -. a) /. float_of_int (n - 1) in
    Array.init n (fun i -> if i = n - 1 then b else a +. (float_of_int i *. h))

let logspace a b n = Array.map (fun e -> 10. ** e) (linspace a b n)

let geomspace a b n =
  if a <= 0. || b <= 0. then invalid_arg "Grid.geomspace: non-positive bound";
  Array.map exp (linspace (log a) (log b) n)

let arange ?(step = 1.) a b =
  if step <= 0. then invalid_arg "Grid.arange: step <= 0";
  let n = int_of_float (Float.ceil ((b -. a) /. step)) in
  if n <= 0 then [||]
  else Array.init n (fun i -> a +. (float_of_int i *. step))

let midpoints xs =
  let n = Array.length xs in
  if n < 2 then [||]
  else Array.init (n - 1) (fun i -> 0.5 *. (xs.(i) +. xs.(i + 1)))

let map_sweep f xs = Array.map (fun x -> (x, f x)) xs

let chunks k xs =
  if k < 1 then invalid_arg "Grid.chunks: k < 1";
  let n = Array.length xs in
  let count = min k n in
  if count = 0 then [||]
  else
    (* the first [n mod count] chunks carry one extra element, so
       lengths differ by at most one and every element appears once *)
    let base = n / count and extra = n mod count in
    let start = ref 0 in
    Array.init count (fun i ->
        let len = base + if i < extra then 1 else 0 in
        let chunk = Array.sub xs !start len in
        start := !start + len;
        chunk)
