lib/exec/parallel.ml: Array Fun Numerics Pool
