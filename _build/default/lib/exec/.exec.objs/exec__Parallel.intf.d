lib/exec/parallel.mli: Pool
