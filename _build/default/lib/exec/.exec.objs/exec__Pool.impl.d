lib/exec/pool.ml: Array Condition Domain List Mutex Option Printexc Queue Stdlib String Sys
