lib/exec/pool.mli:
