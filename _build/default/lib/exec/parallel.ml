let resolve = function Some pool -> pool | None -> Pool.get ()

(* About four chunks per worker: coarse enough to amortize queueing,
   fine enough to balance sweeps whose per-point cost varies (e.g.
   Optimize.optimal_n is much dearer at small r). *)
let chunk_count pool n = min n (4 * Pool.size pool)

let init ?pool n f =
  if n < 0 then invalid_arg "Parallel.init: negative length";
  let pool = resolve pool in
  if Pool.size pool = 1 || n < 2 then Array.init n f
  else begin
    let results = Array.make n None in
    let indices = Array.init n Fun.id in
    let tasks =
      Array.map
        (fun chunk () -> Array.iter (fun i -> results.(i) <- Some (f i)) chunk)
        (Numerics.Grid.chunks (chunk_count pool n) indices)
    in
    Pool.run pool tasks;
    Array.map
      (function Some value -> value | None -> assert false (* all slots filled *))
      results
  end

let map ?pool f xs = init ?pool (Array.length xs) (fun i -> f xs.(i))

let map_sweep ?pool f xs =
  init ?pool (Array.length xs) (fun i ->
      let x = xs.(i) in
      (x, f x))

let iter_chunks ?pool f xs =
  let pool = resolve pool in
  let n = Array.length xs in
  if n = 0 then ()
  else if Pool.size pool = 1 || n = 1 then f xs
  else
    Pool.run pool
      (Array.map
         (fun chunk () -> f chunk)
         (Numerics.Grid.chunks (chunk_count pool n) xs))
