(** Numeric moments of delay distributions, from their survival
    functions.

    For a non-negative variable, [E X = integral of S] and
    [E X^2 = integral of 2 t S(t)].  For a defective distribution these
    integrals diverge (the survival floors at [1 - l]), so moments here
    are {e conditional on arrival}: computed on [S(t) - (1 - l)],
    rescaled by the mass — exactly the "mean time a reply is received
    ... assuming that the reply does not get lost" convention the paper
    uses for [d + 1/lambda]. *)

val conditional_mean : ?tol:float -> Distribution.t -> float
(** Mean delay given that the reply arrives.  Agrees with the closed
    form stored in the distribution when there is one (property-tested). *)

val conditional_second_moment : ?tol:float -> Distribution.t -> float

val conditional_variance : ?tol:float -> Distribution.t -> float

val conditional_std : ?tol:float -> Distribution.t -> float
