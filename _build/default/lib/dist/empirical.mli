(** Delay distributions estimated from measurements.

    The paper (Sec. 3.2): "Preferably, \[F_X\] should be based on
    measurements."  This module provides that path: feed in observed
    reply delays — with losses recorded either explicitly or via a
    timeout cutoff — and obtain a {!Distribution.t} usable everywhere a
    parametric family is. *)

val of_samples : ?losses:int -> float array -> Distribution.t
(** [of_samples ~losses delays] builds the empirical distribution of the
    observed [delays] (all non-negative), treating [losses] additional
    trials as replies that never arrived, so the resulting mass is
    [n / (n + losses)].  Sampling draws uniformly from the observations
    (and loses the reply with the empirical loss rate).  Raises
    [Invalid_argument] on an empty sample or negative entries. *)

val of_censored : timeout:float -> float array -> Distribution.t
(** [of_censored ~timeout raw] treats every observation [>= timeout] as
    a loss — the standard way of logging probe experiments where the
    prober gives up after [timeout] seconds. *)

val smooth : ?bandwidth:float -> Distribution.t -> Distribution.t
(** Replace a piecewise-constant empirical CDF by linear interpolation
    between jump midpoints, removing staircase artifacts from
    optimization over [r].  [bandwidth] is reserved for future kernel
    smoothing and currently ignored. *)
