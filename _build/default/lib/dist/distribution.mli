(** Possibly-defective probability distributions over reply delays.

    Section 3.2 of the paper models the time [X] between sending an ARP
    probe and receiving its reply with a {e defective} distribution: a
    monotone [D] with [lim D(t) = l < 1], where [1 - l] is the
    probability the reply is lost forever.  A value of type {!t} packages
    the CDF together with an accurately-computed survival function
    (the quantity that actually appears in Eq. 1), the total mass [l],
    and a sampler for the simulator. *)

type t = {
  name : string;
  mass : float;
      (** Total probability [l] that a reply ever arrives, in [(0, 1]].
          [1. -. mass] is the permanent-loss probability. *)
  cdf : float -> float;
      (** [cdf t] is the probability a reply arrives within [t] seconds.
          Monotone from [0] to [mass]. *)
  survival : float -> float;
      (** [survival t = 1 - cdf t], computed without cancellation; tends
          to [1 - mass] as [t -> infinity]. *)
  density : (float -> float) option;
      (** Density of the non-defective part where it exists. *)
  mean : float option;
      (** Mean delay conditional on the reply arriving, when finite and
          known in closed form. *)
  sample : Numerics.Rng.t -> float option;
      (** Draw a reply delay; [None] means the reply is lost forever. *)
}

val v :
  name:string -> ?mass:float -> ?density:(float -> float) ->
  ?mean:float -> cdf:(float -> float) -> survival:(float -> float) ->
  sample:(Numerics.Rng.t -> float option) -> unit -> t
(** Smart constructor; validates [mass] in [(0, 1]]. *)

val is_defective : t -> bool
(** True when [mass < 1.]. *)

val loss_probability : t -> float
(** [1. -. mass]. *)

val conditional_cdf : t -> float -> float
(** CDF of the delay given that the reply arrives: [cdf t /. mass]
    (the paper's [F(t) = D(t) / l]). *)

val quantile : ?tol:float -> t -> float -> float
(** [quantile d p] inverts the (unconditional) CDF numerically for
    [p < mass]; raises [Invalid_argument] when [p >= mass] (that far
    into the tail the reply never arrives). *)

val check : ?samples:int -> ?lo:float -> ?hi:float -> t -> (unit, string) result
(** Self-test used by the property suite: CDF monotone, within
    [\[0, mass\]], consistent with survival on a sample grid. *)

val pp : Format.formatter -> t -> unit
