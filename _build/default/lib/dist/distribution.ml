type t = {
  name : string;
  mass : float;
  cdf : float -> float;
  survival : float -> float;
  density : (float -> float) option;
  mean : float option;
  sample : Numerics.Rng.t -> float option;
}

let v ~name ?(mass = 1.) ?density ?mean ~cdf ~survival ~sample () =
  if not (mass > 0. && mass <= 1.) then
    invalid_arg "Distribution.v: mass must lie in (0, 1]";
  { name; mass; cdf; survival; density; mean; sample }

let is_defective d = d.mass < 1.
let loss_probability d = 1. -. d.mass
let conditional_cdf d t = d.cdf t /. d.mass

let quantile ?(tol = 1e-12) d p =
  if p < 0. then invalid_arg "Distribution.quantile: p < 0";
  if p >= d.mass then
    invalid_arg "Distribution.quantile: p >= mass (reply never arrives)";
  if p = 0. then 0.
  else begin
    (* find an upper bound, then bisect cdf t - p *)
    let hi = ref 1. in
    let guard = ref 0 in
    while d.cdf !hi < p && !guard < 200 do
      hi := !hi *. 2.;
      incr guard
    done;
    if d.cdf !hi < p then invalid_arg "Distribution.quantile: cannot bracket";
    (Numerics.Roots.bisect ~tol ~f:(fun t -> d.cdf t -. p) 0. !hi).root
  end

let check ?(samples = 200) ?(lo = 0.) ?(hi = 100.) d =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let grid = Numerics.Grid.linspace lo hi samples in
  let rec scan i prev =
    if i >= Array.length grid then Ok ()
    else
      let t = grid.(i) in
      let c = d.cdf t and s = d.survival t in
      if Float.is_nan c || c < -1e-12 || c > d.mass +. 1e-9 then
        err "%s: cdf %g out of [0, %g] at t=%g" d.name c d.mass t
      else if c +. 1e-9 < prev then
        err "%s: cdf not monotone at t=%g (%g < %g)" d.name t c prev
      else if not (Numerics.Safe_float.approx_eq ~rtol:1e-6 ~atol:1e-12 (c +. s) 1.)
      then err "%s: cdf + survival = %g <> 1 at t=%g" d.name (c +. s) t
      else scan (i + 1) c
  in
  scan 0 0.

let pp ppf d =
  if is_defective d then
    Format.fprintf ppf "%s (defective, loss %.3g)" d.name (1. -. d.mass)
  else Format.fprintf ppf "%s" d.name
