lib/dist/empirical.ml: Array Distribution Float List Numerics Printf
