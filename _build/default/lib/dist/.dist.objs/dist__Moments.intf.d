lib/dist/moments.mli: Distribution
