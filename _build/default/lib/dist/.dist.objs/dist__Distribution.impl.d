lib/dist/distribution.ml: Array Float Format Numerics
