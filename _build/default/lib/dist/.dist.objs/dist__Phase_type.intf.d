lib/dist/phase_type.mli: Distribution Numerics
