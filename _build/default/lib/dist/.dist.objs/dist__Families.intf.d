lib/dist/families.mli: Distribution
