lib/dist/distribution.mli: Format Numerics
