lib/dist/families.ml: Array Distribution Float List Numerics Printf String
