lib/dist/phase_type.ml: Array Distribution Dtmc Float List Numerics Printf
