lib/dist/empirical.mli: Distribution
