lib/dist/moments.ml: Distribution Float Numerics
