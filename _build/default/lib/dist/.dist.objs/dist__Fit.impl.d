lib/dist/fit.ml: Array Distribution Families Float Numerics
