lib/dist/fit.mli: Distribution
