type shifted_exp = { loss : float; delay : float; rate : float }

let check_sample name ?(losses = 0) samples =
  if Array.length samples = 0 then invalid_arg (name ^ ": empty sample");
  if losses < 0 then invalid_arg (name ^ ": negative losses");
  Array.iter
    (fun x -> if x < 0. || not (Float.is_finite x) then invalid_arg (name ^ ": bad delay"))
    samples

let loss_fraction ~losses n =
  float_of_int losses /. float_of_int (n + losses)

let shifted_exponential_mle ?(losses = 0) samples =
  check_sample "Fit.shifted_exponential_mle" ~losses samples;
  let n = Array.length samples in
  let d = Array.fold_left Float.min samples.(0) samples in
  let mean = Numerics.Safe_float.mean samples in
  let excess = Float.max 1e-12 (mean -. d) in
  { loss = loss_fraction ~losses n; delay = d; rate = 1. /. excess }

let to_distribution { loss; delay; rate } =
  Families.shifted_exponential ~mass:(1. -. loss) ~rate ~delay ()

let erlang_moment_match ?(losses = 0) samples =
  check_sample "Fit.erlang_moment_match" ~losses samples;
  let s = Numerics.Stats.summarize samples in
  let mean = s.Numerics.Stats.mean in
  if mean <= 0. then invalid_arg "Fit.erlang_moment_match: zero mean";
  let variance = Float.max 1e-12 s.Numerics.Stats.variance in
  let stages =
    Numerics.Safe_float.clamp ~lo:1. ~hi:64.
      (Float.round (mean *. mean /. variance))
  in
  let stages = int_of_float stages in
  let rate = float_of_int stages /. mean in
  Families.erlang
    ~mass:(1. -. loss_fraction ~losses (Array.length samples))
    ~stages ~rate ()

(* negative log-likelihood of the conditional shifted-exp density *)
let neg_log_likelihood samples ~delay ~rate =
  if rate <= 0. then infinity
  else begin
    let n = Array.length samples in
    let acc = ref 0. in
    (try
       Array.iter
         (fun x ->
           if x < delay then raise Exit
           else acc := !acc +. (rate *. (x -. delay)))
         samples
     with Exit -> acc := infinity);
    if Float.is_finite !acc then !acc -. (float_of_int n *. log rate)
    else infinity
  end

let shifted_exponential_nm ?(losses = 0) samples =
  check_sample "Fit.shifted_exponential_nm" ~losses samples;
  let n = Array.length samples in
  let d0 = Array.fold_left Float.min samples.(0) samples in
  let mean = Numerics.Safe_float.mean samples in
  (* optimize over (delay, log rate); start slightly inside the feasible
     region so the simplex has room *)
  let f x =
    let delay = x.(0) and rate = exp x.(1) in
    if delay < 0. then infinity else neg_log_likelihood samples ~delay ~rate
  in
  let start = [| 0.95 *. d0; log (1. /. Float.max 1e-6 (mean -. (0.95 *. d0))) |] in
  let result =
    Numerics.Nelder_mead.restarted ~tol:1e-14
      ~scale:[| Float.max 1e-3 (0.05 *. (d0 +. 0.01)); 0.25 |]
      ~f start
  in
  { loss = loss_fraction ~losses n;
    delay = result.Numerics.Nelder_mead.x.(0);
    rate = exp result.Numerics.Nelder_mead.x.(1) }

type quality = { ks_statistic : float; log_likelihood : float }

let assess ?(losses = 0) (d : Distribution.t) samples =
  check_sample "Fit.assess" ~losses samples;
  ignore losses;
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let nf = float_of_int n in
  (* KS distance on the conditional CDFs *)
  let ks = ref 0. in
  Array.iteri
    (fun i x ->
      let model = Distribution.conditional_cdf d x in
      let lo = float_of_int i /. nf and hi = float_of_int (i + 1) /. nf in
      ks := Float.max !ks (Float.max (Float.abs (model -. lo)) (Float.abs (model -. hi))))
    sorted;
  (* log likelihood via the density when available, else finite
     differences of the cdf *)
  let log_density x =
    match d.Distribution.density with
    | Some pdf ->
        let v = pdf x /. d.Distribution.mass in
        if v > 0. then log v else -745.
    | None ->
        let h = 1e-6 *. (1. +. Float.abs x) in
        let v =
          (Distribution.conditional_cdf d (x +. h)
          -. Distribution.conditional_cdf d (Float.max 0. (x -. h)))
          /. (2. *. h)
        in
        if v > 0. then log v else -745.
  in
  { ks_statistic = !ks;
    log_likelihood = Numerics.Safe_float.sum (Array.map log_density sorted) }
