(** Phase-type reply-delay distributions: absorption times of small
    continuous-time Markov chains.

    Phase-type laws are dense in the distributions on [\[0, inf)], so
    they are the natural fitting family for measured reply delays when
    a closed form is wanted; and because our CTMC solver computes their
    CDFs by uniformization, they compose with everything else in the
    toolbox (defectiveness mass, the cost model, the simulator).

    A PH distribution is given by an initial probability row [alpha]
    over [m] transient phases and an [m x m] sub-generator [T] (strictly
    dominated rows); the exit-rate vector is [t0 = -T 1]. *)

val create :
  ?mass:float -> alpha:float array -> sub_generator:Numerics.Matrix.t ->
  unit -> Distribution.t
(** Validates that [alpha] is a sub-distribution (its deficit is an
    atom at zero), [T] has non-negative off-diagonal rates and
    non-positive row sums, and absorption is certain.  [mass] adds the
    usual permanent-loss defect on top. *)

val exponential : ?mass:float -> rate:float -> unit -> Distribution.t
(** PH with a single phase — must agree with
    {!Families.exponential} (property-tested). *)

val erlang : ?mass:float -> stages:int -> rate:float -> unit -> Distribution.t
(** The [stages]-phase chain — must agree with {!Families.erlang}. *)

val hyperexponential :
  ?mass:float -> (float * float) list -> Distribution.t
(** Mixture of exponentials [(weight, rate)]: the classic model for
    bimodal reply delays (fast local replies vs slow busy hosts). *)

val coxian :
  ?mass:float -> rates:float array -> continue_probs:float array -> unit ->
  Distribution.t
(** Coxian chain: phase [i] completes at [rates.(i)] and then continues
    to phase [i+1] with [continue_probs.(i)] (else absorbs).
    [continue_probs] has one entry fewer than [rates]. *)
