(** Parametric delay-distribution families.

    {!shifted_exponential} is the paper's choice (Sec. 4.3):
    [F_X(t) = l (1 - e^(-lambda (t - d)))] for [t >= d], i.e. a hard
    round-trip delay [d], exponential tail with rate [lambda], and a
    permanent-loss probability [1 - l].  The others give alternative
    tail shapes for sensitivity studies, all supporting the same
    defectiveness and shift parameters. *)

val exponential : ?mass:float -> rate:float -> unit -> Distribution.t
(** Memoryless delay with the given rate. *)

val shifted_exponential :
  ?mass:float -> rate:float -> delay:float -> unit -> Distribution.t
(** The paper's [F_X]: zero probability before the round-trip delay
    [delay] ([d] in the paper), exponential with [rate] ([lambda])
    after it, total mass [mass] ([l], default [1.]).  Conditional mean
    is [delay + 1/rate], matching the paper's "[d + 1/lambda]". *)

val deterministic : ?mass:float -> delay:float -> unit -> Distribution.t
(** Replies arrive exactly [delay] seconds after the probe (or never,
    with probability [1 - mass]). *)

val uniform : ?mass:float -> lo:float -> hi:float -> unit -> Distribution.t
(** Delay uniform on [\[lo, hi\]]. *)

val weibull :
  ?mass:float -> ?delay:float -> shape:float -> scale:float -> unit ->
  Distribution.t
(** Weibull delay shifted by [delay]; [shape < 1] gives heavy tails
    (bursty congestion), [shape > 1] light tails. *)

val erlang :
  ?mass:float -> ?delay:float -> stages:int -> rate:float -> unit ->
  Distribution.t
(** Erlang-[stages] delay (sum of [stages] exponentials): concentrates
    around [stages/rate], modelling multi-hop store-and-forward. *)

val mixture : (float * Distribution.t) list -> Distribution.t
(** Finite mixture; weights must be positive and are normalized.  The
    mixture's mass is the weighted mass of its components.  Raises
    [Invalid_argument] on an empty list. *)
