module Rng = Numerics.Rng

(* Shared sampling skeleton: lose the reply with probability 1 - mass,
   otherwise draw from the conditional delay law. *)
let defective_sample mass conditional rng =
  if mass < 1. && Rng.float rng >= mass then None else Some (conditional rng)

let exponential ?(mass = 1.) ~rate () =
  if rate <= 0. then invalid_arg "Families.exponential: rate <= 0";
  let survival t = if t <= 0. then 1. else (1. -. mass) +. (mass *. exp (-.rate *. t)) in
  Distribution.v ~name:(Printf.sprintf "exp(rate=%g)" rate) ~mass
    ~density:(fun t -> if t < 0. then 0. else mass *. rate *. exp (-.rate *. t))
    ~mean:(1. /. rate)
    ~cdf:(fun t -> if t <= 0. then 0. else mass *. (-.Float.expm1 (-.rate *. t)))
    ~survival
    ~sample:(defective_sample mass (fun rng -> Rng.exponential rng ~rate))
    ()

let shifted_exponential ?(mass = 1.) ~rate ~delay () =
  if rate <= 0. then invalid_arg "Families.shifted_exponential: rate <= 0";
  if delay < 0. then invalid_arg "Families.shifted_exponential: delay < 0";
  let cdf t =
    if t <= delay then 0. else mass *. (-.Float.expm1 (-.rate *. (t -. delay)))
  in
  let survival t =
    if t <= delay then 1. else (1. -. mass) +. (mass *. exp (-.rate *. (t -. delay)))
  in
  Distribution.v
    ~name:(Printf.sprintf "shifted-exp(d=%g, rate=%g, l=%g)" delay rate mass)
    ~mass
    ~density:(fun t ->
      if t < delay then 0. else mass *. rate *. exp (-.rate *. (t -. delay)))
    ~mean:(delay +. (1. /. rate))
    ~cdf ~survival
    ~sample:(defective_sample mass (fun rng -> delay +. Rng.exponential rng ~rate))
    ()

let deterministic ?(mass = 1.) ~delay () =
  if delay < 0. then invalid_arg "Families.deterministic: delay < 0";
  Distribution.v ~name:(Printf.sprintf "deterministic(d=%g)" delay) ~mass
    ~mean:delay
    ~cdf:(fun t -> if t >= delay then mass else 0.)
    ~survival:(fun t -> if t >= delay then 1. -. mass else 1.)
    ~sample:(defective_sample mass (fun _ -> delay))
    ()

let uniform ?(mass = 1.) ~lo ~hi () =
  if lo < 0. || hi <= lo then invalid_arg "Families.uniform: need 0 <= lo < hi";
  let width = hi -. lo in
  let cdf t =
    if t <= lo then 0.
    else if t >= hi then mass
    else mass *. (t -. lo) /. width
  in
  Distribution.v ~name:(Printf.sprintf "uniform[%g, %g]" lo hi) ~mass
    ~density:(fun t -> if t < lo || t > hi then 0. else mass /. width)
    ~mean:(0.5 *. (lo +. hi))
    ~cdf
    ~survival:(fun t -> 1. -. cdf t)
    ~sample:(defective_sample mass (fun rng -> Rng.uniform rng ~lo ~hi))
    ()

let weibull ?(mass = 1.) ?(delay = 0.) ~shape ~scale () =
  if shape <= 0. || scale <= 0. then
    invalid_arg "Families.weibull: shape and scale must be positive";
  if delay < 0. then invalid_arg "Families.weibull: delay < 0";
  let z t = ((t -. delay) /. scale) ** shape in
  let cdf t = if t <= delay then 0. else mass *. (-.Float.expm1 (-.z t)) in
  let survival t =
    if t <= delay then 1. else (1. -. mass) +. (mass *. exp (-.z t))
  in
  let density t =
    if t <= delay then 0.
    else
      let u = (t -. delay) /. scale in
      mass *. (shape /. scale) *. (u ** (shape -. 1.)) *. exp (-.(u ** shape))
  in
  let conditional rng =
    delay +. (scale *. ((-.Float.log1p (-.Rng.float rng)) ** (1. /. shape)))
  in
  Distribution.v
    ~name:(Printf.sprintf "weibull(k=%g, scale=%g, d=%g)" shape scale delay)
    ~mass ~density ~cdf ~survival
    ~sample:(defective_sample mass conditional)
    ()

let erlang ?(mass = 1.) ?(delay = 0.) ~stages ~rate () =
  if stages < 1 then invalid_arg "Families.erlang: stages < 1";
  if rate <= 0. then invalid_arg "Families.erlang: rate <= 0";
  if delay < 0. then invalid_arg "Families.erlang: delay < 0";
  (* Survival of Erlang-k: e^{-rt} * sum_{i<k} (rt)^i / i!, summed in
     increasing order so the partial sums stay accurate. *)
  let core_survival u =
    if u <= 0. then 1.
    else begin
      let x = rate *. u in
      let term = ref 1. and acc = ref 1. in
      for i = 1 to stages - 1 do
        term := !term *. x /. float_of_int i;
        acc := !acc +. !term
      done;
      exp (-.x) *. !acc
    end
  in
  let survival t =
    if t <= delay then 1.
    else (1. -. mass) +. (mass *. core_survival (t -. delay))
  in
  let cdf t = if t <= delay then 0. else mass *. (1. -. core_survival (t -. delay)) in
  let density t =
    if t <= delay then 0.
    else begin
      let u = t -. delay in
      let x = rate *. u in
      (* rate * x^(k-1) e^{-x} / (k-1)! *)
      let log_fact = ref 0. in
      for i = 2 to stages - 1 do
        log_fact := !log_fact +. log (float_of_int i)
      done;
      mass *. rate *. exp ((float_of_int (stages - 1) *. log x) -. x -. !log_fact)
    end
  in
  let conditional rng =
    let acc = ref delay in
    for _ = 1 to stages do
      acc := !acc +. Rng.exponential rng ~rate
    done;
    !acc
  in
  Distribution.v
    ~name:(Printf.sprintf "erlang(k=%d, rate=%g, d=%g)" stages rate delay)
    ~mass ~density
    ~mean:(delay +. (float_of_int stages /. rate))
    ~cdf ~survival
    ~sample:(defective_sample mass conditional)
    ()

let mixture components =
  if components = [] then invalid_arg "Families.mixture: empty mixture";
  List.iter
    (fun (w, _) -> if w <= 0. then invalid_arg "Families.mixture: weight <= 0")
    components;
  let total = Numerics.Safe_float.sum_list (List.map fst components) in
  let weighted = List.map (fun (w, d) -> (w /. total, d)) components in
  let mass =
    Numerics.Safe_float.sum_list
      (List.map (fun (w, (d : Distribution.t)) -> w *. d.mass) weighted)
  in
  let combine f t =
    Numerics.Safe_float.sum_list
      (List.map (fun (w, d) -> w *. f d t) weighted)
  in
  let sample rng =
    let weights = Array.of_list (List.map fst weighted) in
    let picked = Numerics.Rng.choose_weighted rng weights in
    let _, (d : Distribution.t) = List.nth weighted picked in
    d.sample rng
  in
  let name =
    String.concat " + "
      (List.map
         (fun (w, (d : Distribution.t)) -> Printf.sprintf "%.2f*%s" w d.name)
         weighted)
  in
  Distribution.v ~name ~mass
    ~cdf:(combine (fun (d : Distribution.t) -> d.cdf))
    ~survival:(combine (fun (d : Distribution.t) -> d.survival))
    ~sample ()
