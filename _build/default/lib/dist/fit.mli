(** Fitting delay distributions to measurements — the workflow the
    paper prescribes but could not execute ("Preferably, \[F_X\] should
    be based on measurements", Sec. 3.2).

    Measurements are reply delays with losses recorded either
    explicitly (count of probes that never got an answer) or as
    timeouts.  The fitted object is the paper's defective shifted
    exponential, or a moment-matched Erlang / phase-type alternative. *)

type shifted_exp = {
  loss : float;   (** [1 - l]. *)
  delay : float;  (** Round-trip floor [d]. *)
  rate : float;   (** Tail rate [lambda]. *)
}

val shifted_exponential_mle :
  ?losses:int -> float array -> shifted_exp
(** Maximum likelihood for the defective shifted exponential:
    [loss = losses / (n + losses)], [d = min sample] (the MLE of a
    shift), [lambda = 1 / (mean - d)].  Raises [Invalid_argument] on an
    empty sample. *)

val to_distribution : shifted_exp -> Distribution.t

val erlang_moment_match :
  ?losses:int -> float array -> Distribution.t
(** Match mean and variance with an Erlang: the stage count is
    [round (mean^2 / variance)] clamped to [1, 64], the rate is
    [stages / mean].  Good for unimodal delays without a hard floor. *)

val shifted_exponential_nm :
  ?losses:int -> float array -> shifted_exp
(** Same family as {!shifted_exponential_mle} but fitted by minimizing
    the negative log-likelihood with Nelder–Mead — a cross-check of the
    closed form, and the template for families without closed-form
    MLEs.  Agrees with the MLE (property-tested). *)

type quality = {
  ks_statistic : float;
      (** Kolmogorov–Smirnov distance between the fitted conditional
          CDF and the empirical one. *)
  log_likelihood : float;
}

val assess : ?losses:int -> Distribution.t -> float array -> quality
(** Fit quality of any candidate distribution on the sample. *)
