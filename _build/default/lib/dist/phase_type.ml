module M = Numerics.Matrix

let validate ~alpha ~sub_generator =
  let m = Array.length alpha in
  if m = 0 then invalid_arg "Phase_type.create: no phases";
  if M.rows sub_generator <> m || M.cols sub_generator <> m then
    invalid_arg "Phase_type.create: alpha/sub-generator size mismatch";
  Array.iter
    (fun a -> if a < 0. then invalid_arg "Phase_type.create: negative alpha entry")
    alpha;
  let alpha_sum = Numerics.Safe_float.sum alpha in
  if alpha_sum > 1. +. 1e-12 then
    invalid_arg "Phase_type.create: alpha mass exceeds one";
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      if i <> j && M.get sub_generator i j < 0. then
        invalid_arg "Phase_type.create: negative off-diagonal rate"
    done;
    if Numerics.Safe_float.sum (M.row sub_generator i) > 1e-12 then
      invalid_arg "Phase_type.create: positive row sum in sub-generator"
  done;
  alpha_sum

(* full generator over m phases + 1 absorbing state *)
let full_ctmc ~alpha ~sub_generator =
  let m = Array.length alpha in
  let labels = List.init (m + 1) (fun i -> if i = m then "done" else Printf.sprintf "ph%d" i) in
  let q =
    M.init ~rows:(m + 1) ~cols:(m + 1) (fun i j ->
        if i = m then 0.
        else if j = m then -.Numerics.Safe_float.sum (M.row sub_generator i)
        else M.get sub_generator i j)
  in
  Dtmc.Ctmc.create ~states:(Dtmc.State_space.of_labels labels) q

let create ?(mass = 1.) ~alpha ~sub_generator () =
  let alpha_sum = validate ~alpha ~sub_generator in
  let m = Array.length alpha in
  let ctmc = full_ctmc ~alpha ~sub_generator in
  (* absorption must be certain: every phase's expected absorption time
     must be finite *)
  for i = 0 to m - 1 do
    ignore (Dtmc.Ctmc.expected_absorption_time ctmc ~from:i)
  done;
  let pi0 =
    Array.init (m + 1) (fun i -> if i = m then 1. -. alpha_sum else alpha.(i))
  in
  (* conditional absorption probability by time t *)
  let absorbed t =
    if t <= 0. then 1. -. alpha_sum
    else (Dtmc.Ctmc.transient ctmc ~horizon:t pi0).(m)
  in
  let phase_mass t =
    if t <= 0. then alpha_sum
    else begin
      let pi = Dtmc.Ctmc.transient ctmc ~horizon:t pi0 in
      Numerics.Safe_float.sum (Array.sub pi 0 m)
    end
  in
  let cdf t = if t < 0. then 0. else mass *. absorbed t in
  let survival t = if t < 0. then 1. else (1. -. mass) +. (mass *. phase_mass t) in
  (* conditional mean: alpha . (-T)^{-1} 1 *)
  let mean =
    let a =
      Array.init m (fun i -> Dtmc.Ctmc.expected_absorption_time ctmc ~from:i)
    in
    Numerics.Safe_float.dot alpha a
  in
  (* sampling: jump simulation over the phases *)
  let exit_rate i = -.Numerics.Safe_float.sum (M.row sub_generator i) in
  let total_rate i = Float.abs (M.get sub_generator i i) in
  let sample rng =
    if mass < 1. && Numerics.Rng.float rng >= mass then None
    else begin
      (* initial phase, or instant absorption on the alpha deficit *)
      let u = Numerics.Rng.float rng in
      let rec pick i acc =
        if i >= m then None (* deficit: absorbed immediately *)
        else
          let acc = acc +. alpha.(i) in
          if u < acc then Some i else pick (i + 1) acc
      in
      match pick 0 0. with
      | None -> Some 0.
      | Some start ->
          let time = ref 0. in
          let phase = ref start in
          let absorbed = ref false in
          while not !absorbed do
            let rate = total_rate !phase in
            time := !time +. Numerics.Rng.exponential rng ~rate;
            (* choose exit vs another phase *)
            let u = Numerics.Rng.float rng *. rate in
            if u < exit_rate !phase then absorbed := true
            else begin
              let rec pick_phase j acc =
                if j >= m then !phase (* numeric slack: stay *)
                else if j = !phase then pick_phase (j + 1) acc
                else
                  let acc = acc +. M.get sub_generator !phase j in
                  if u < exit_rate !phase +. acc then j else pick_phase (j + 1) acc
              in
              phase := pick_phase 0 0.
            end
          done;
          Some !time
    end
  in
  Distribution.v
    ~name:(Printf.sprintf "phase-type(%d phases)" m)
    ~mass ~mean ~cdf ~survival ~sample ()

let exponential ?mass ~rate () =
  if rate <= 0. then invalid_arg "Phase_type.exponential: rate <= 0";
  create ?mass ~alpha:[| 1. |]
    ~sub_generator:(M.of_arrays [| [| -.rate |] |])
    ()

let erlang ?mass ~stages ~rate () =
  if stages < 1 then invalid_arg "Phase_type.erlang: stages < 1";
  if rate <= 0. then invalid_arg "Phase_type.erlang: rate <= 0";
  let t =
    M.init ~rows:stages ~cols:stages (fun i j ->
        if i = j then -.rate
        else if j = i + 1 then rate
        else 0.)
  in
  let alpha = Array.init stages (fun i -> if i = 0 then 1. else 0.) in
  create ?mass ~alpha ~sub_generator:t ()

let hyperexponential ?mass branches =
  if branches = [] then invalid_arg "Phase_type.hyperexponential: empty";
  List.iter
    (fun (w, rate) ->
      if w <= 0. || rate <= 0. then
        invalid_arg "Phase_type.hyperexponential: non-positive weight or rate")
    branches;
  let total = Numerics.Safe_float.sum_list (List.map fst branches) in
  let arr = Array.of_list branches in
  let m = Array.length arr in
  let alpha = Array.map (fun (w, _) -> w /. total) arr in
  let t =
    M.init ~rows:m ~cols:m (fun i j -> if i = j then -.snd arr.(i) else 0.)
  in
  create ?mass ~alpha ~sub_generator:t ()

let coxian ?mass ~rates ~continue_probs () =
  let m = Array.length rates in
  if m = 0 then invalid_arg "Phase_type.coxian: no phases";
  if Array.length continue_probs <> m - 1 then
    invalid_arg "Phase_type.coxian: continue_probs must have one entry fewer than rates";
  Array.iter
    (fun r -> if r <= 0. then invalid_arg "Phase_type.coxian: rate <= 0")
    rates;
  Array.iter
    (fun p ->
      if not (Numerics.Safe_float.is_probability p) then
        invalid_arg "Phase_type.coxian: continue prob outside [0,1]")
    continue_probs;
  let t =
    M.init ~rows:m ~cols:m (fun i j ->
        if i = j then -.rates.(i)
        else if j = i + 1 && i < m - 1 then rates.(i) *. continue_probs.(i)
        else 0.)
  in
  let alpha = Array.init m (fun i -> if i = 0 then 1. else 0.) in
  create ?mass ~alpha ~sub_generator:t ()
