(* survival of the arrival-conditioned distribution:
   (S(t) - (1 - l)) / l, which decays to zero *)
let conditional_survival (d : Distribution.t) t =
  Float.max 0. ((d.Distribution.survival t -. (1. -. d.Distribution.mass)))
  /. d.Distribution.mass

let conditional_mean ?(tol = 1e-10) d =
  Numerics.Integrate.to_infinity ~tol ~f:(conditional_survival d) 0.

let conditional_second_moment ?(tol = 1e-10) d =
  Numerics.Integrate.to_infinity ~tol
    ~f:(fun t -> 2. *. t *. conditional_survival d t)
    0.

let conditional_variance ?tol d =
  let m = conditional_mean ?tol d in
  Float.max 0. (conditional_second_moment ?tol d -. (m *. m))

let conditional_std ?tol d = sqrt (conditional_variance ?tol d)
