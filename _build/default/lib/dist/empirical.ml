let of_samples ?(losses = 0) delays =
  let n = Array.length delays in
  if n = 0 then invalid_arg "Empirical.of_samples: empty sample";
  if losses < 0 then invalid_arg "Empirical.of_samples: negative losses";
  Array.iter
    (fun d -> if d < 0. then invalid_arg "Empirical.of_samples: negative delay")
    delays;
  let sorted = Array.copy delays in
  Array.sort Float.compare sorted;
  let total = float_of_int (n + losses) in
  let mass = float_of_int n /. total in
  let ecdf_conditional = Numerics.Stats.ecdf sorted in
  let cdf t = if t < 0. then 0. else mass *. ecdf_conditional t in
  let mean = Numerics.Safe_float.mean sorted in
  let sample rng =
    if losses > 0 && Numerics.Rng.float rng >= mass then None
    else Some sorted.(Numerics.Rng.int rng n)
  in
  Distribution.v
    ~name:(Printf.sprintf "empirical(n=%d, losses=%d)" n losses)
    ~mass ~mean ~cdf
    ~survival:(fun t -> 1. -. cdf t)
    ~sample ()

let of_censored ~timeout raw =
  if timeout <= 0. then invalid_arg "Empirical.of_censored: timeout <= 0";
  let arrived, lost =
    Array.fold_left
      (fun (arr, lost) d -> if d >= timeout then (arr, lost + 1) else (d :: arr, lost))
      ([], 0) raw
  in
  match arrived with
  | [] -> invalid_arg "Empirical.of_censored: every observation censored"
  | _ -> of_samples ~losses:lost (Array.of_list (List.rev arrived))

let smooth ?bandwidth:_ (d : Distribution.t) =
  (* Probe the CDF on a fine grid over its active range and replace it
     by the piecewise-linear interpolant.  The active range is found by
     scanning for where the CDF saturates. *)
  let hi =
    let rec grow t guard =
      if guard > 60 || d.cdf t >= d.mass -. (1e-9 *. d.mass) then t
      else grow (t *. 2.) (guard + 1)
    in
    grow 1. 0
  in
  let xs = Numerics.Grid.linspace 0. hi 513 in
  let ys = Array.map d.cdf xs in
  let interp = Numerics.Interp.create ~xs ~ys in
  let cdf t = if t <= 0. then 0. else Numerics.Interp.eval interp t in
  Distribution.v
    ~name:(d.name ^ " smoothed")
    ~mass:d.mass ?mean:d.mean ~cdf
    ~survival:(fun t -> 1. -. cdf t)
    ~sample:d.sample ()
