type knob = {
  name : string;
  value : float;
  apply : Params.t -> float -> Params.t;
}

let standard_knobs (p : Params.t) =
  [ { name = "q"; value = p.q; apply = Params.with_q };
    { name = "c";
      value = p.probe_cost;
      apply = (fun p c -> Params.with_costs ~probe_cost:c p) };
    { name = "E";
      value = p.error_cost;
      apply = (fun p e -> Params.with_costs ~error_cost:e p) } ]

let shifted_exp_knobs ~loss ~rate ~delay =
  let rebuild ~loss ~rate ~delay p =
    Params.with_delay p
      (Dist.Families.shifted_exponential ~mass:(1. -. loss) ~rate ~delay ())
  in
  [ { name = "loss";
      value = loss;
      apply = (fun p v -> rebuild ~loss:v ~rate ~delay p) };
    { name = "lambda";
      value = rate;
      apply = (fun p v -> rebuild ~loss ~rate:v ~delay p) };
    { name = "rtt";
      value = delay;
      apply = (fun p v -> rebuild ~loss ~rate ~delay:v p) } ]

let elasticity_of output p knob =
  Numerics.Derivative.log_elasticity ~f:(fun v -> output (knob.apply p v))
    knob.value

let cost_elasticity p knob ~n ~r =
  elasticity_of (fun p -> Cost.mean p ~n ~r) p knob

let error_elasticity p knob ~n ~r =
  (* work on log10 E directly: E itself underflows for reliable nets *)
  let log_err p = Reliability.log10_error_probability p ~n ~r in
  let f v = log_err (knob.apply p v) in
  (* d log10 E / d log x, converted to d ln E / d ln x *)
  let g u = f (exp u) in
  Numerics.Derivative.central ~f:g (log knob.value) *. Float.log 10.

type tornado_entry = {
  knob_name : string;
  low : float;
  base : float;
  high : float;
}

let tornado ?(swing = 2.) ~output p knobs =
  if swing <= 1. then invalid_arg "Sensitivity.tornado: swing must exceed 1";
  let base = output p in
  let entries =
    List.map
      (fun k ->
        { knob_name = k.name;
          low = output (k.apply p (k.value /. swing));
          base;
          high = output (k.apply p (k.value *. swing)) })
      knobs
  in
  List.sort
    (fun a b ->
      Float.compare
        (Float.abs (b.high -. b.low))
        (Float.abs (a.high -. a.low)))
    entries
