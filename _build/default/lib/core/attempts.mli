(** Attempt-indexed refinement of the cost model.

    The paper's DRM deliberately abstracts two details of the draft
    (Sec. 3.1): (a) a host may decide {e not} to retry addresses that
    failed before, and (b) after 10 conflicts the probing rate must drop
    to one address per minute.  Both break the memorylessness of the
    chain — the occupancy probability and the per-attempt overhead then
    depend on {e how many} attempts have happened — but the model stays
    analytic when decomposed by attempt index:

    attempt [i] ends in success with probability [1 - q_i], in an abort
    during period [k] with probability [q_i (pi_(k-1) - pi_k)], and in
    an accepted collision with probability [q_i pi_n].  Blacklisting
    makes [q_i = (m - (i-1)) / (M - (i-1))] (each abort reveals one
    occupied address, never to be drawn again); rate limiting charges an
    extra delay before every attempt past the threshold.

    With both refinements off, the attempt decomposition must reproduce
    Eqs. 3 and 4 exactly — the test suite asserts this, which validates
    the decomposition algebra itself. *)

type refinement = {
  blacklist : bool;
      (** Never retry an address that drew a defence reply. *)
  rate_limit : (int * float) option;
      (** [(threshold, delay)]: every attempt after the first
          [threshold] conflicts starts [delay] seconds late (the
          draft's 10 conflicts / 60 s). *)
  occupied : int;  (** [m], the number of configured hosts. *)
  pool : int;      (** [M], the address-space size (65024). *)
}

val no_refinement : occupied:int -> ?pool:int -> unit -> refinement
val draft_refinement : occupied:int -> ?pool:int -> unit -> refinement
(** Blacklisting on, rate limit (10, 60 s) — the draft's behaviour. *)

type analysis = {
  mean_cost : float;
  error_probability : float;
  mean_time : float;      (** Seconds until an address is accepted. *)
  mean_attempts : float;
  truncated_mass : float;
      (** Probability mass beyond the attempt cutoff (should be ~0). *)
}

val analyze :
  ?max_attempts:int -> Params.t -> refinement -> n:int -> r:float -> analysis
(** Evaluate the refined model.  The scenario's own [q] is ignored in
    favour of [occupied / pool] so blacklisting can update it per
    attempt.  [max_attempts] (default [10_000]) truncates the attempt
    series; the leftover mass is reported. *)

val compare_refinements :
  Params.t -> occupied:int -> ?pool:int -> n:int -> r:float -> unit ->
  (string * analysis) list
(** The ablation table: baseline, blacklist only, rate limit only,
    both. *)
