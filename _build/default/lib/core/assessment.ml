type t = {
  scenario : Params.t;
  nu : int;
  draft : Optimize.point;
  optimum : Optimize.point;
  cost_ratio : float;
  draft_config_time : float;
  optimal_config_time : float;
}

let point p ~n ~r =
  { Optimize.n;
    r;
    cost = Cost.mean p ~n ~r;
    error_prob = Reliability.error_probability p ~n ~r }

let run ?(draft_n = 4) ?(draft_r = 2.) (p : Params.t) =
  let draft = point p ~n:draft_n ~r:draft_r in
  let optimum = Optimize.global_optimum p in
  { scenario = p;
    nu = Optimize.min_useful_probes p;
    draft;
    optimum;
    cost_ratio = draft.cost /. optimum.cost;
    draft_config_time = float_of_int draft_n *. draft_r;
    optimal_config_time = float_of_int optimum.Optimize.n *. optimum.Optimize.r }

let pp_point ppf (pt : Optimize.point) =
  Format.fprintf ppf "n = %d, r = %.4g  (cost %.4g, error prob %.3g)"
    pt.Optimize.n pt.Optimize.r pt.Optimize.cost pt.Optimize.error_prob

let pp ppf t =
  Format.fprintf ppf
    "@[<v>assessment of %s:@,\
    \  nu (minimal useful n) = %d@,\
    \  draft:   %a@,\
    \  optimal: %a@,\
    \  draft costs %.3gx the optimum@,\
    \  configuration time: %.3gs (draft) vs %.3gs (optimal)@]"
    t.scenario.Params.name t.nu pp_point t.draft pp_point t.optimum
    t.cost_ratio t.draft_config_time t.optimal_config_time
