type point = { n : int; r : float; cost : float; error_prob : float }

let min_useful_probes (p : Params.t) =
  let loss = Params.loss_probability p in
  if loss <= 0. || p.error_cost <= 1. then 1
  else
    let nu = Float.ceil (-.log p.error_cost /. log loss) in
    max 1 (int_of_float nu)

(* Initial search scale for r: past the round-trip bulk of the delay
   distribution the polynomial term is already decaying, so a high
   quantile of the conditional delay is a sound starting point. *)
let default_r_hi (p : Params.t) ~n =
  let bulk =
    match p.delay.mean with
    | Some m -> 4. *. m
    | None -> (
        try Dist.Distribution.quantile p.delay (0.99 *. p.delay.mass)
        with Invalid_argument _ -> 1.)
  in
  Float.max 1. (bulk *. Float.max 1. (8. /. float_of_int n))

let optimal_r ?r_hi ?(samples = 512) (p : Params.t) ~n =
  if n < 1 then invalid_arg "Optimize.optimal_r: n must be >= 1";
  let f r = Cost.mean p ~n ~r in
  let rec search hi attempts =
    let result = Numerics.Minimize.grid_then_brent ~samples ~f 0. hi in
    if result.x >= 0.95 *. hi && attempts < 60 then search (hi *. 2.) (attempts + 1)
    else result
  in
  let hi = match r_hi with Some h -> h | None -> default_r_hi p ~n in
  search hi 0

let optimal_n ?(n_max = 4096) ?(patience = 24) (p : Params.t) ~r =
  if r < 0. then invalid_arg "Optimize.optimal_n: negative r";
  (* While i*r is below the round-trip delay, p_i(r) = 1 and the cost
     rises linearly in n on a plateau at height ~ qE; the first n whose
     horizon can see a reply is where the descent can start.  Below that
     point n = 1 is the (bad) optimum of the plateau. *)
  let first_useful =
    let rec find i =
      if i > n_max then n_max
      else if Probes.no_answer p ~i ~r < 1. then i
      else find (i + 1)
    in
    if r = 0. then n_max else find 1
  in
  let best_n = ref 1 and best_cost = ref (Cost.mean p ~n:1 ~r) in
  let misses = ref 0 in
  let n = ref (max 1 first_useful) in
  while !misses < patience && !n <= n_max do
    let c = Cost.mean p ~n:!n ~r in
    if c < !best_cost then begin
      best_n := !n;
      best_cost := c;
      misses := 0
    end else incr misses;
    incr n
  done;
  (!best_n, !best_cost)

let min_cost ?n_max ?patience p ~r = snd (optimal_n ?n_max ?patience p ~r)

(* Grid sweeps of the step function and its envelope: every point is an
   independent scan over n, so they fan out across the Exec domains.
   Slot-indexed writes keep the output bit-identical at any job count. *)
let optimal_n_sweep ?pool ?n_max ?patience (p : Params.t) grid =
  Exec.Parallel.map_sweep ?pool (fun r -> optimal_n ?n_max ?patience p ~r) grid

let lower_envelope ?pool ?n_max ?patience (p : Params.t) grid =
  Array.map
    (fun (r, (_, cost)) -> (r, cost))
    (optimal_n_sweep ?pool ?n_max ?patience p grid)

let error_under_optimal_n ?n_max (p : Params.t) ~r =
  let n, _ = optimal_n ?n_max p ~r in
  Reliability.error_probability p ~n ~r

let global_optimum ?(n_max = 4096) ?(patience = 8) (p : Params.t) =
  let evaluate n =
    let { Numerics.Minimize.x = r; fx = cost; _ } = optimal_r p ~n in
    { n; r; cost; error_prob = Reliability.error_probability p ~n ~r }
  in
  let best = ref (evaluate 1) in
  let misses = ref 0 in
  let n = ref 2 in
  (* skip straight to nu when it prunes a long useless prefix *)
  let nu = min_useful_probes p in
  if nu > 8 then begin
    let at_nu = evaluate nu in
    if at_nu.cost < !best.cost then best := at_nu;
    n := nu + 1
  end;
  while !misses < patience && !n <= n_max do
    let candidate = evaluate !n in
    if candidate.cost < !best.cost then begin
      best := candidate;
      misses := 0
    end else incr misses;
    incr n
  done;
  !best

let constrained_optimum ?(n_max = 32) ~budget (p : Params.t) =
  if budget <= 0. then invalid_arg "Optimize.constrained_optimum: budget <= 0";
  let evaluate n =
    let r_cap = budget /. float_of_int n in
    let unconstrained = optimal_r ~r_hi:r_cap p ~n in
    let r = Float.min unconstrained.Numerics.Minimize.x r_cap in
    let cost = Cost.mean p ~n ~r in
    { n; r; cost; error_prob = Reliability.error_probability p ~n ~r }
  in
  let best = ref (evaluate 1) in
  for n = 2 to n_max do
    let candidate = evaluate n in
    if candidate.cost < !best.cost then best := candidate
  done;
  !best

let probes_for_error_target ?(n_max = 256) (p : Params.t) ~r ~target =
  if not (Numerics.Safe_float.is_probability target) then
    invalid_arg "Optimize.probes_for_error_target: target outside [0, 1]";
  let rec search n =
    if n > n_max then None
    else if Reliability.error_probability p ~n ~r <= target then Some n
    else search (n + 1)
  in
  search 1
