(** Export the zeroconf DRM to probabilistic model checkers.

    The zeroconf protocol is a standard benchmark of the PRISM model
    suite; this module emits our Sec. 4.1 chain in PRISM's input
    language so the reproduction can be cross-validated against an
    independent tool, plus Graphviz for documentation. *)

val to_prism : Params.t -> n:int -> r:float -> string
(** A complete PRISM [dtmc] model: the state variable, one command per
    transient state with the numeric probabilities [q], [p_1(r)], ...,
    [p_n(r)], and a ["cost"] reward structure carrying the expected
    one-step costs of Sec. 4.1 (so that PRISM's
    [R{"cost"}=? \[F done\]] equals Eq. 3). *)

val prism_properties : n:int -> string
(** The matching property file: error reachability (Eq. 4), reliability,
    and expected total cost (Eq. 3), phrased against the state encoding
    of {!to_prism} for the same [n]. *)

val to_dot : Params.t -> n:int -> r:float -> string
(** Graphviz rendering of the DRM (Figure 1 of the paper, with the
    numeric annotations). *)
