type t = {
  chain : Dtmc.Chain.t;
  reward : Dtmc.Reward.t;
  start : int;
  error : int;
  ok : int;
}

let ordinal i =
  let suffix =
    match i mod 100 with
    | 11 | 12 | 13 -> "th"
    | _ -> ( match i mod 10 with 1 -> "st" | 2 -> "nd" | 3 -> "rd" | _ -> "th")
  in
  Printf.sprintf "%d%s" i suffix

let build (p : Params.t) ~n ~r =
  if n < 1 then invalid_arg "Drm.build: n must be >= 1";
  if r < 0. then invalid_arg "Drm.build: negative listening period";
  let b = Dtmc.Builder.create () in
  let probe_state i = ordinal i in
  (* declare in the paper's row order: start, 1st .. nth, error, ok *)
  Dtmc.Builder.add_state b "start";
  for i = 1 to n do
    Dtmc.Builder.add_state b (probe_state i)
  done;
  Dtmc.Builder.add_state b "error";
  Dtmc.Builder.add_state b "ok";
  let step_cost = r +. p.probe_cost in
  if p.q > 0. then
    Dtmc.Builder.add_edge b ~src:"start" ~dst:(probe_state 1) ~prob:p.q
      ~cost:step_cost;
  if p.q < 1. then
    Dtmc.Builder.add_edge b ~src:"start" ~dst:"ok" ~prob:(1. -. p.q)
      ~cost:(float_of_int n *. step_cost);
  for i = 1 to n do
    let p_i = Probes.no_answer p ~i ~r in
    let dst = if i = n then "error" else probe_state (i + 1) in
    let cost = if i = n then p.error_cost else step_cost in
    if p_i > 0. then
      Dtmc.Builder.add_edge b ~src:(probe_state i) ~dst ~prob:p_i ~cost;
    if p_i < 1. then
      Dtmc.Builder.add_edge b ~src:(probe_state i) ~dst:"start"
        ~prob:(1. -. p_i)
  done;
  let chain, reward = Dtmc.Builder.build b in
  let states = Dtmc.Chain.states chain in
  { chain;
    reward;
    start = Dtmc.State_space.index states "start";
    error = Dtmc.State_space.index states "error";
    ok = Dtmc.State_space.index states "ok" }

let mean_cost t = Dtmc.Absorbing.expected_total_reward t.reward ~from:t.start

let error_probability t =
  Dtmc.Absorbing.absorption_probability t.chain ~from:t.start ~into:t.error

let cost_variance t = Dtmc.Absorbing.variance_total_reward t.reward ~from:t.start
let expected_steps t = Dtmc.Absorbing.expected_steps t.chain ~from:t.start

let simulate_cost ~trials ~rng t =
  Dtmc.Simulate.estimate_total_reward ~trials ~rng t.reward ~from:t.start

let simulate_error ~trials ~rng t =
  Dtmc.Simulate.estimate_absorption ~trials ~rng t.chain ~from:t.start
    ~into:t.error
