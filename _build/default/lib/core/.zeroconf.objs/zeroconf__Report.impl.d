lib/core/report.ml: Assessment Buffer Dist Latency List Optimize Params Printf Sensitivity Tradeoff
