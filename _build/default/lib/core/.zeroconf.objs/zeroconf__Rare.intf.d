lib/core/rare.mli: Dtmc Numerics Params
