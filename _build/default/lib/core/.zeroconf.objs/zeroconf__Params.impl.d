lib/core/params.ml: Dist Format Option
