lib/core/probes.mli: Params
