lib/core/attempts.mli: Params
