lib/core/calibrate.ml: Array Float Numerics Optimize Params Printf Probes
