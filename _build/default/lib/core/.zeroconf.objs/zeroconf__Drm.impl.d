lib/core/drm.ml: Dtmc Params Printf Probes
