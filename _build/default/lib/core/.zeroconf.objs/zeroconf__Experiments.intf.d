lib/core/experiments.mli: Assessment Calibrate Dtmc Params
