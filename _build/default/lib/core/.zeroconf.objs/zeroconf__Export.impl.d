lib/core/export.ml: Buffer Drm Dtmc Params Printf Probes String
