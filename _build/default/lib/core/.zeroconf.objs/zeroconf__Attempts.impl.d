lib/core/attempts.ml: Array Numerics Params Probes
