lib/core/adaptive.mli: Attempts Params
