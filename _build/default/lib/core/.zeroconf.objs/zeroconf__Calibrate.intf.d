lib/core/calibrate.mli: Optimize Params
