lib/core/experiments.ml: Array Assessment Calibrate Cost Dist Drm Dtmc Exec Latency List Numerics Optimize Option Params Printf Reliability Tradeoff
