lib/core/experiments.ml: Array Assessment Calibrate Cost Dist Drm Dtmc Exec Kernel Latency List Numerics Optimize Option Params Printf Reliability Tradeoff
