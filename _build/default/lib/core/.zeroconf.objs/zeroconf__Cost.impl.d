lib/core/cost.ml: Array Numerics Params Probes
