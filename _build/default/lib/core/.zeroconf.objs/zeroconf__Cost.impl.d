lib/core/cost.ml: Array List Numerics Params Probes
