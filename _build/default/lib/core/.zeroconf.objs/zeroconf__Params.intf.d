lib/core/params.mli: Dist Format
