lib/core/spec.mli: Netsim
