lib/core/reliability.ml: Float Numerics Params Probes
