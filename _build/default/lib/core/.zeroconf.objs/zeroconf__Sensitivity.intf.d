lib/core/sensitivity.mli: Params
