lib/core/assessment.mli: Format Optimize Params
