lib/core/spec.ml: Netsim
