lib/core/tradeoff.ml: Array Float Kernel List Numerics Params
