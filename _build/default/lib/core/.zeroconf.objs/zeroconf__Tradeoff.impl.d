lib/core/tradeoff.ml: Array Cost Float List Numerics Params Reliability
