lib/core/assessment.ml: Cost Format Optimize Params Reliability
