lib/core/latency.ml: Array Numerics Params Probes
