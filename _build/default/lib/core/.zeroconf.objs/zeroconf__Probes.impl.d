lib/core/probes.ml: Array Dist Numerics Params
