lib/core/drm.mli: Dtmc Numerics Params
