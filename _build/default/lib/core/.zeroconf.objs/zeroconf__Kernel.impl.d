lib/core/kernel.ml: Dist Domain Float Hashtbl List Numerics Params
