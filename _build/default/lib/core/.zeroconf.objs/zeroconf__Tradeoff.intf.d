lib/core/tradeoff.mli: Params
