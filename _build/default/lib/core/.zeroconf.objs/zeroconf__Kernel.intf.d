lib/core/kernel.mli: Params
