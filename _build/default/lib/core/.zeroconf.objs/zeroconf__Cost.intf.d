lib/core/cost.mli: Numerics Params
