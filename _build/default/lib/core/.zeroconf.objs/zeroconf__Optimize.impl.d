lib/core/optimize.ml: Array Dist Exec Float Kernel Numerics Params
