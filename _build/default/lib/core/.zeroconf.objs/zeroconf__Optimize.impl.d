lib/core/optimize.ml: Array Cost Dist Exec Float Numerics Params Probes Reliability
