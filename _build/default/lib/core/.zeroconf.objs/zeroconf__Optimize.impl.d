lib/core/optimize.ml: Cost Dist Float Numerics Params Probes Reliability
