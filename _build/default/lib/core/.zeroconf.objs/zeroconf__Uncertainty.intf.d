lib/core/uncertainty.mli: Format Numerics
