lib/core/rare.ml: Drm Dtmc Params Reliability
