lib/core/reliability.mli: Params
