lib/core/sensitivity.ml: Cost Dist Float List Numerics Params Reliability
