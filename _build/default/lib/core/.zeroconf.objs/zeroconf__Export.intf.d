lib/core/export.mli: Params
