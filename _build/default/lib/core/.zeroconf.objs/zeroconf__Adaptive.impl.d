lib/core/adaptive.ml: Array Attempts Dist Dtmc Float List Numerics Params Printf Probes
