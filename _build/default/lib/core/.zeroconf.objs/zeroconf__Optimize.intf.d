lib/core/optimize.mli: Exec Numerics Params
