lib/core/optimize.mli: Numerics Params
