lib/core/latency.mli: Params
