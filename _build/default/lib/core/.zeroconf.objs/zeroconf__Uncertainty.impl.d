lib/core/uncertainty.ml: Array Dist Format Hashtbl List Numerics Optimize Option Params
