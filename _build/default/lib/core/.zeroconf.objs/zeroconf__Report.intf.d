lib/core/report.mli: Params
