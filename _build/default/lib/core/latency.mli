(** The distribution of the configuration time — not just its mean.

    The paper motivates the whole study with user-perceived latency ("a
    configuration time of 8 seconds may seem barely acceptable"), but
    Eq. 3 only delivers an expectation.  Under the DRM's semantics the
    total configuration time is [r] times the number of listening
    periods spent, and the period count has an exactly computable
    distribution: dynamic programming over (DRM state, periods elapsed),
    where each hop into a probe state consumes one period, the
    [start -> ok] hop consumes [n], and aborts are instantaneous.

    This yields tail probabilities ("what fraction of users wait longer
    than 8 s?") and quantiles for any [(n, r)], and a third consistency
    anchor: the distribution's mean must equal the expected-reward solve
    of the DRM with time rewards. *)

type t = {
  n : int;
  r : float;
  pmf : float array;
      (** [pmf.(t)] is the probability of finishing in exactly [t]
          listening periods; index 0 unused except for degenerate
          cases. *)
  tail : float;
      (** Mass beyond the horizon (not captured in [pmf]). *)
}

val periods : ?horizon:int -> Params.t -> n:int -> r:float -> t
(** Distribution of the period count.  The default horizon ([4096])
    leaves negligible tail for any realistic scenario. *)

val cdf : t -> float -> float
(** [cdf dist seconds]: probability the host is configured within
    [seconds]. *)

val quantile : t -> float -> float
(** [quantile dist p]: smallest time (seconds) by which a fraction [p]
    of configurations complete.  Raises [Invalid_argument] when [p]
    exceeds the captured mass. *)

val mean : t -> float
(** Mean configuration time in seconds (of the captured mass). *)

val exceeds : t -> float -> float
(** [exceeds dist seconds = 1 - cdf dist seconds], including the
    uncaptured tail. *)
