(** Parameter uncertainty, propagated to the recommendation.

    The paper closes on exactly this worry: the optimized parameters
    depend on application-specific inputs that "must be based on
    measurement in real world scenarios", which designers can only
    estimate.  This module quantifies the consequence: bootstrap the
    measured reply delays, refit [F_X] on each resample, re-run the
    optimizer, and report how stable the recommended design actually
    is. *)

type recommendation_distribution = {
  rounds : int;
  n_votes : (int * int) list;
      (** Optimal probe count and its bootstrap frequency, most common
          first. *)
  modal_n : int;
  r_summary : Numerics.Stats.summary;
      (** Spread of the recommended listening period. *)
  r_ci : float * float;  (** Central 90% bootstrap interval for [r]. *)
  cost_summary : Numerics.Stats.summary;
      (** Spread of the believed optimal cost. *)
}

val bootstrap :
  ?rounds:int -> ?losses:int -> rng:Numerics.Rng.t ->
  delays:float array -> q:float -> probe_cost:float -> error_cost:float ->
  unit -> recommendation_distribution
(** [rounds] (default [200]) bootstrap resamples of the delay
    measurements (losses resampled binomially alongside).  Raises
    [Invalid_argument] on an empty sample. *)

val pp : Format.formatter -> recommendation_distribution -> unit
