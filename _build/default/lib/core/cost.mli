(** The mean total cost of a protocol run — Eq. 3 of the paper:

    {v
                (r+c) ( n(1-q) + q sum_(i=0..n-1) pi_i(r) ) + q E pi_n(r)
    C(n, r) =  -----------------------------------------------------------
                            1 - q (1 - pi_n(r))
    v}

    with the boundary behaviour derived in Sec. 4.2:
    [C_n(0) = qE] and [C_n(r) -> A_n(r)] (linear asymptote) as
    [r -> inf]. *)

val mean : Params.t -> n:int -> r:float -> float
(** [C(n, r)].  Requires [n >= 1], [r >= 0]. *)

val mean_log : Params.t -> n:int -> r:float -> Numerics.Logspace.t
(** Log-domain evaluation of Eq. 3; agrees with {!mean} in double
    range and continues to work when [q E pi_n(r)] overflows or
    underflows doubles (ablation A1). *)

val asymptote : Params.t -> n:int -> r:float -> float
(** [A_n(r)]: the linear function [C_n] approaches for large [r]
    (Sec. 4.2).  Defined for defective delay distributions ([l < 1])
    and, by continuity ([ (1-(1-l)^n)/l -> n ] as [l -> 1]), also for
    [l = 1]. *)

val at_zero : Params.t -> float
(** [C_n(0) = qE], independent of [n]. *)

val derivative : Params.t -> n:int -> r:float -> float
(** Numerical [dC_n/dr], via Richardson extrapolation; used by tests to
    confirm optimality of [r_opt] and by the calibration solver. *)
