(** Assessing the Internet-draft's parameter choice (Sec. 6): compare
    the draft's [(n, r)] against the cost-optimal setting for a given
    scenario. *)

type t = {
  scenario : Params.t;
  nu : int;                    (** Minimal useful probe count. *)
  draft : Optimize.point;      (** Cost/error at the draft's [(n, r)]. *)
  optimum : Optimize.point;    (** Globally cost-optimal [(n, r)]. *)
  cost_ratio : float;          (** [draft.cost / optimum.cost]. *)
  draft_config_time : float;   (** [n * r] of the draft: seconds a user waits. *)
  optimal_config_time : float; (** [n * r] at the optimum. *)
}

val run : ?draft_n:int -> ?draft_r:float -> Params.t -> t
(** Defaults to the draft's [n = 4], [r = 2]. *)

val pp : Format.formatter -> t -> unit
