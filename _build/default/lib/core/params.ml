type t = {
  name : string;
  delay : Dist.Distribution.t;
  q : float;
  probe_cost : float;
  error_cost : float;
}

let address_space_size = 65024

let q_of_hosts m =
  if m < 0 || m >= address_space_size then
    invalid_arg "Params.q_of_hosts: m outside [0, 65024)";
  float_of_int m /. float_of_int address_space_size

let v ~name ~delay ~q ~probe_cost ~error_cost =
  if not (q >= 0. && q < 1.) then invalid_arg "Params.v: q outside [0, 1)";
  if probe_cost < 0. then invalid_arg "Params.v: probe_cost < 0";
  if error_cost < 0. then invalid_arg "Params.v: error_cost < 0";
  { name; delay; q; probe_cost; error_cost }

let with_costs ?probe_cost ?error_cost t =
  v ~name:t.name ~delay:t.delay ~q:t.q
    ~probe_cost:(Option.value ~default:t.probe_cost probe_cost)
    ~error_cost:(Option.value ~default:t.error_cost error_cost)

let with_q t q =
  v ~name:t.name ~delay:t.delay ~q ~probe_cost:t.probe_cost
    ~error_cost:t.error_cost

let with_delay t delay =
  v ~name:t.name ~delay ~q:t.q ~probe_cost:t.probe_cost
    ~error_cost:t.error_cost

let loss_probability t = Dist.Distribution.loss_probability t.delay

let shifted ~loss ~rate ~delay =
  Dist.Families.shifted_exponential ~mass:(1. -. loss) ~rate ~delay ()

let figure2 =
  v ~name:"figure2"
    ~delay:(shifted ~loss:1e-15 ~rate:10. ~delay:1.)
    ~q:(q_of_hosts 1000) ~probe_cost:2. ~error_cost:1e35

let wireless_worst_case =
  v ~name:"wireless-worst-case"
    ~delay:(shifted ~loss:1e-5 ~rate:10. ~delay:1.)
    ~q:(q_of_hosts 1000) ~probe_cost:3.5 ~error_cost:5e20

let wired_worst_case =
  v ~name:"wired-worst-case"
    ~delay:(shifted ~loss:1e-10 ~rate:100. ~delay:0.1)
    ~q:(q_of_hosts 1000) ~probe_cost:0.5 ~error_cost:1e35

let realistic_ethernet =
  v ~name:"realistic-ethernet"
    ~delay:(shifted ~loss:1e-12 ~rate:10. ~delay:0.001)
    ~q:(q_of_hosts 1000) ~probe_cost:3.5 ~error_cost:5e20

let presets =
  [ ("figure2", figure2);
    ("wireless-worst-case", wireless_worst_case);
    ("wired-worst-case", wired_worst_case);
    ("realistic-ethernet", realistic_ethernet) ]

let pp ppf t =
  Format.fprintf ppf
    "@[<v>scenario %s:@,  F_X = %a@,  q = %g@,  c = %g@,  E = %g@]" t.name
    Dist.Distribution.pp t.delay t.q t.probe_cost t.error_cost
