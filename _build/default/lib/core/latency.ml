type t = { n : int; r : float; pmf : float array; tail : float }

(* DP over (DRM state, periods elapsed).  States: 0 = start, 1..n = the
   probe states, absorption recorded straight into the pmf.  Durations:
   entering probe state i costs one period; start -> ok costs n periods
   (all n probes are sent); aborts (probe state -> start) and the final
   nth -> error hop are instantaneous. *)
let periods ?(horizon = 4096) (p : Params.t) ~n ~r =
  if n < 1 then invalid_arg "Latency.periods: n < 1";
  if r < 0. then invalid_arg "Latency.periods: negative r";
  if horizon < n then invalid_arg "Latency.periods: horizon below n";
  let q = p.Params.q in
  let p_i = Array.init (n + 1) (fun i -> Probes.no_answer p ~i ~r) in
  let pmf = Array.make (horizon + 1) 0. in
  (* mass.(s) = probability of being in state s (0 = start, i = i-th
     probe state) having consumed exactly [t] periods *)
  let current = Array.make (n + 1) 0. in
  let next = Array.make (n + 1) 0. in
  current.(0) <- 1.;
  let leftover = ref 0. in
  for t = 0 to horizon do
    Array.fill next 0 (n + 1) 0.;
    (* instantaneous moves first: aborts return to start within the same
       period count; the start mass then spends periods by probing *)
    (* resolve the chain of instantaneous hops: start mass at t *)
    let start_mass = ref current.(0) in
    (* probe states progress or abort: state i with mass m *)
    for i = 1 to n do
      let m = current.(i) in
      if m > 0. then
        if i = n then begin
          (* unanswered last probe -> error (instant); answered -> abort *)
          if t <= horizon then pmf.(t) <- pmf.(t) +. (m *. p_i.(n));
          start_mass := !start_mass +. (m *. (1. -. p_i.(n)))
        end
        else begin
          (* forward hop consumes a period *)
          if t + 1 <= horizon then
            next.(i + 1) <- next.(i + 1) +. (m *. p_i.(i))
          else leftover := !leftover +. (m *. p_i.(i));
          start_mass := !start_mass +. (m *. (1. -. p_i.(i)))
        end
    done;
    (* start: pick an address; free -> ok after n periods, occupied ->
       first probe state after one period *)
    let m = !start_mass in
    if m > 0. then begin
      if t + n <= horizon then pmf.(t + n) <- pmf.(t + n) +. (m *. (1. -. q))
      else leftover := !leftover +. (m *. (1. -. q));
      if t + 1 <= horizon then next.(1) <- next.(1) +. (m *. q)
      else leftover := !leftover +. (m *. q)
    end;
    Array.blit next 0 current 0 (n + 1)
  done;
  leftover := !leftover +. Numerics.Safe_float.sum current;
  { n; r; pmf; tail = !leftover }

let cdf t seconds =
  if seconds < 0. then 0.
  else begin
    let max_periods =
      if t.r = 0. then Array.length t.pmf - 1
      else min (Array.length t.pmf - 1) (int_of_float (seconds /. t.r))
    in
    let acc = ref 0. in
    for k = 0 to max_periods do
      acc := !acc +. t.pmf.(k)
    done;
    Numerics.Safe_float.clamp_probability !acc
  end

let quantile t p =
  if not (Numerics.Safe_float.is_probability p) then
    invalid_arg "Latency.quantile: p outside [0, 1]";
  let captured = Numerics.Safe_float.sum t.pmf in
  if p > captured then
    invalid_arg "Latency.quantile: p beyond captured mass (raise the horizon)";
  let acc = ref 0. and k = ref 0 in
  while !acc < p && !k < Array.length t.pmf do
    acc := !acc +. t.pmf.(!k);
    if !acc < p then incr k
  done;
  float_of_int !k *. t.r

let mean t =
  let acc = ref 0. in
  Array.iteri (fun k mass -> acc := !acc +. (float_of_int k *. t.r *. mass)) t.pmf;
  !acc

(* the cdf only counts captured mass, so its complement naturally
   includes the beyond-horizon tail *)
let exceeds t seconds = 1. -. cdf t seconds
