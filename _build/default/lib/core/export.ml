let to_prism (p : Params.t) ~n ~r =
  if n < 1 then invalid_arg "Export.to_prism: n < 1";
  if r < 0. then invalid_arg "Export.to_prism: negative r";
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "// IPv4 zeroconf initialization (Bohnenkamp et al., DSN 2003, Sec. 4.1)\n";
  add "// scenario %s: q = %.17g, c = %.17g, E = %.17g, r = %g, n = %d\n" p.Params.name
    p.Params.q p.Params.probe_cost p.Params.error_cost r n;
  add "// state encoding: 0 = start, 1..%d = probe states, %d = error, %d = ok\n\n"
    n (n + 1) (n + 2);
  add "dtmc\n\n";
  add "const double q = %.17g;\n" p.Params.q;
  for i = 1 to n do
    add "const double p%d = %.17g; // P(no answer to any of %d probes in period %d)\n"
      i (Probes.no_answer p ~i ~r) i i
  done;
  add "\nmodule zeroconf\n";
  add "  s : [0..%d] init 0;\n\n" (n + 2);
  add "  [] s=0 -> q : (s'=1) + (1-q) : (s'=%d);\n" (n + 2);
  for i = 1 to n do
    let next = if i = n then n + 1 else i + 1 in
    add "  [] s=%d -> p%d : (s'=%d) + (1-p%d) : (s'=0);\n" i i next i
  done;
  add "  [] s=%d -> (s'=%d); // error\n" (n + 1) (n + 1);
  add "  [] s=%d -> (s'=%d); // ok\n" (n + 2) (n + 2);
  add "endmodule\n\n";
  add "// expected one-step costs (Sec. 4.1), as state rewards so that\n";
  add "// R{\"cost\"}=? [ F s>=%d ] equals the paper's Eq. 3\n" (n + 1);
  add "rewards \"cost\"\n";
  (* w_start = q (r+c) + (1-q) n (r+c); w_i = p_i c_i->next *)
  let step = r +. p.Params.probe_cost in
  let w_start =
    (p.Params.q *. step) +. ((1. -. p.Params.q) *. float_of_int n *. step)
  in
  add "  s=0 : %.17g;\n" w_start;
  for i = 1 to n do
    let p_i = Probes.no_answer p ~i ~r in
    let forward_cost = if i = n then p.Params.error_cost else step in
    add "  s=%d : %.17g;\n" i (p_i *. forward_cost)
  done;
  add "endrewards\n";
  Buffer.contents buf

let prism_properties ~n =
  if n < 1 then invalid_arg "Export.prism_properties: n < 1";
  String.concat "\n"
    [ "// Eq. 4: probability the initialization accepts a colliding address";
      Printf.sprintf "P=? [ F s=%d ]" (n + 1);
      "// reliability (complement)";
      Printf.sprintf "P=? [ F s=%d ]" (n + 2);
      "// Eq. 3: mean total cost of a protocol run";
      Printf.sprintf "R{\"cost\"}=? [ F s>=%d ]" (n + 1);
      "" ]

let to_dot p ~n ~r =
  let drm = Drm.build p ~n ~r in
  Dtmc.Export.to_dot ~costs:drm.Drm.reward
    ~highlight:[ drm.Drm.error; drm.Drm.ok ]
    drm.Drm.chain
