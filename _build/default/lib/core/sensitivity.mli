(** Sensitivity of the model outputs to the application-specific
    parameters — the "standard exercise" the paper defers to
    (Sec. 4.2) and motivates in its conclusion: the quality of the
    optimized protocol parameters depends on parameters that can only
    be estimated, so their influence must be quantified.

    Two instruments are provided: log-log {e elasticities}
    ([d log output / d log parameter], a dimensionless local
    sensitivity) and {e tornado} sweeps (output swing when one
    parameter moves by a fixed factor while the rest stay put). *)

type knob = {
  name : string;
  value : float;  (** Current value of the parameter. *)
  apply : Params.t -> float -> Params.t;
      (** Rebuild the scenario with a new value for this parameter. *)
}

val standard_knobs : Params.t -> knob list
(** The knobs every scenario has: occupancy [q], postage [c], error
    cost [E]. *)

val shifted_exp_knobs :
  loss:float -> rate:float -> delay:float -> knob list
(** Knobs for the paper's shifted-exponential [F_X]: the loss
    probability [1 - l], the reply rate [lambda], and the round-trip
    delay [d].  The closure rebuilds the distribution around the
    perturbed value, holding the other two at the given baselines. *)

val cost_elasticity : Params.t -> knob -> n:int -> r:float -> float
(** Elasticity of [C(n, r)] with respect to the knob at its current
    value. *)

val error_elasticity : Params.t -> knob -> n:int -> r:float -> float
(** Elasticity of [E(n, r)] (computed through the log-domain error
    probability, so it remains meaningful at [1e-50]). *)

type tornado_entry = {
  knob_name : string;
  low : float;   (** Output at [value / swing]. *)
  base : float;  (** Output at the current value. *)
  high : float;  (** Output at [value * swing]. *)
}

val tornado :
  ?swing:float -> output:(Params.t -> float) -> Params.t -> knob list ->
  tornado_entry list
(** One-at-a-time sweep with multiplicative [swing] (default [2.]),
    sorted by descending output range. *)
