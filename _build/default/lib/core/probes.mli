(** No-answer probabilities — Eq. 1 of the paper.

    [p_i(r) = P(i, r)] is the probability that {e none} of the [i] ARP
    probes sent so far is answered during the [i]-th listening period
    of length [r], and [pi_i(r) = prod_(j=0..i) p_j(r)] the probability
    that the host is still waiting after [i] whole periods.

    Eq. 1 telescopes: each factor equals the survival ratio
    [S(jr) / S((j-1) r)] with [S = 1 - F_X], so
    [P(i, r) = S(i r) / S(0)].  Both the literal product (as printed in
    the paper) and the telescoped form are provided; they agree up to
    rounding (a property test asserts this), but the telescoped form is
    faster and immune to the cancellation in [F(jr) - F((j-1) r)]. *)

val no_answer : Params.t -> i:int -> r:float -> float
(** [p_i(r)], telescoped form.  [p_0(r) = 1] by convention.  Requires
    [i >= 0] and [r >= 0]. *)

val no_answer_literal : Params.t -> i:int -> r:float -> float
(** [p_i(r)] evaluated exactly as Eq. 1 is written — conditional CDF
    increments — kept for the ablation study and cross-validation. *)

val pi : Params.t -> n:int -> r:float -> float
(** [pi_n(r) = prod_(i=0..n) p_i(r)]. *)

val pi_all : Params.t -> n:int -> r:float -> float array
(** All prefix products [pi_0(r) .. pi_n(r)] in one pass ([n + 1]
    entries). *)

val log_pi : Params.t -> n:int -> r:float -> float
(** Natural log of [pi_n(r)], computed in the log domain so it stays
    finite far past float underflow. *)

val pi_limit : Params.t -> n:int -> float
(** [lim_(r -> inf) pi_n(r) = (1 - l)^n] (Sec. 4.2). *)
