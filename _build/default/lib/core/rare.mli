(** Importance-sampled verification of the error probability.

    Plain Monte-Carlo confirms Eq. 4 only where collisions are common;
    this wrapper builds a boosted proposal for the DRM (push the walk
    toward [error]) and estimates [E(n, r)] by likelihood-ratio
    weighting — confirming the analytic tail at depths like [1e-20]
    with a few thousand paths. *)

type verification = {
  analytic : float;      (** Eq. 4. *)
  estimate : Dtmc.Importance.estimate;
  covered : bool;        (** Analytic value inside the 95% CI. *)
}

val verify_error_probability :
  ?trials:int -> ?floor:float -> rng:Numerics.Rng.t -> Params.t ->
  n:int -> r:float -> verification
(** Default [trials = 20_000]; [floor] is the proposal boost
    (see {!Dtmc.Importance.boosted_proposal}). *)
