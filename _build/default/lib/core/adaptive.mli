(** Adaptive protocol parameters: choose [(n, r)] {e per attempt}.

    The paper fixes one [(n, r)] for the whole initialization.  But a
    host that has just aborted an attempt has learned something — with
    blacklisting, the occupancy of the remaining address pool drops
    with every conflict — so the optimal next attempt may differ from
    the first one.  Casting attempts as MDP stages and parameter pairs
    as actions ({!Dtmc.Mdp}), value iteration yields the optimal
    adaptive schedule and its cost.

    Two structural facts anchor the model (both property-tested):
    without blacklisting the occupancy is constant, every stage looks
    alike, and the optimal policy is stationary with value exactly
    [min over the candidate grid of Eq. 3]; with blacklisting the
    adaptive value can only improve on the best fixed choice. *)

type choice = { n : int; r : float }

type schedule = {
  per_attempt : choice array;
      (** Optimal choice for attempt 1, 2, ...; the last entry repeats
          for all later attempts. *)
  expected_cost : float;
  fixed_best : choice;
      (** Best single choice applied at every attempt (the paper's
          setting, restricted to the same candidate grid). *)
  fixed_cost : float;
  improvement : float;  (** [fixed_cost - expected_cost >= 0]. *)
}

val solve :
  ?stages:int -> ?candidates:choice list -> Params.t ->
  refinement:Attempts.refinement -> unit -> schedule
(** Solve the adaptive design problem over a candidate grid (default:
    [n] in 1–8 crossed with a small [r] grid scaled to the scenario's
    delay distribution).  [stages] (default [64]) caps the number of
    distinguished attempt stages; beyond it the occupancy is frozen,
    which is exact for non-blacklisting refinements and a lower-order
    approximation otherwise.  Rate limiting is honoured as per-stage
    delay costs. *)
