(** Scenario parameters of the zeroconf cost model.

    The paper separates {e protocol} parameters — the probe count [n]
    and listening period [r], which the designer controls — from
    {e application} parameters, fixed by the environment: the occupancy
    probability [q], the probe postage [c], the error cost [E], and the
    reply-delay distribution [F_X].  A {!t} bundles the application
    side; protocol parameters are passed per query. *)

type t = {
  name : string;
  delay : Dist.Distribution.t;
      (** [F_X]: distribution of the delay between sending an ARP probe
          and receiving its reply; defective mass encodes permanent
          loss (Sec. 3.2). *)
  q : float;
      (** Probability that the randomly chosen address is already in
          use; [q = m / 65024] for [m] occupied addresses. *)
  probe_cost : float;  (** The postage [c] charged per ARP probe. *)
  error_cost : float;  (** The cost [E] of accepting a colliding address. *)
}

val address_space_size : int
(** 65024: the IANA link-local range 169.254.1.0 – 169.254.254.255. *)

val q_of_hosts : int -> float
(** [q_of_hosts m = m / 65024], each host holding one address.  Raises
    [Invalid_argument] unless [0 <= m < 65024]. *)

val v :
  name:string -> delay:Dist.Distribution.t -> q:float ->
  probe_cost:float -> error_cost:float -> t
(** Validates [0 <= q < 1], [probe_cost >= 0], [error_cost >= 0]. *)

val with_costs : ?probe_cost:float -> ?error_cost:float -> t -> t
val with_q : t -> float -> t
val with_delay : t -> Dist.Distribution.t -> t

val loss_probability : t -> float
(** [1 - l] of the delay distribution. *)

(** {1 Paper scenarios} *)

val figure2 : t
(** Sec. 4.3 demonstration scenario: [d = 1], [l = 1 - 1e-15],
    [lambda = 10], [q = 1000/65024], [c = 2], [E = 1e35]
    (Figures 2–6). *)

val wireless_worst_case : t
(** Sec. 4.5, [r = 2] derivation: [1 - l = 1e-5], [d = 1],
    [lambda = 10], [q = 1000/65024], with the derived costs
    [E = 5e20], [c = 3.5]. *)

val wired_worst_case : t
(** Sec. 4.5, [r = 0.2] derivation: [1 - l = 1e-10], [d = 0.1],
    [lambda = 100], with the derived costs [E = 1e35], [c = 0.5]. *)

val realistic_ethernet : t
(** Sec. 6 assessment: [1 - l = 1e-12], [d = 1 ms], [lambda = 10],
    keeping [E = 5e20], [c = 3.5], [q = 1000/65024]. *)

val presets : (string * t) list
val pp : Format.formatter -> t -> unit
