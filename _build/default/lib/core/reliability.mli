(** Protocol reliability — Eq. 4 of the paper.

    The error probability is the probability that a run ends in state
    [error] (the host starts using an address that is actually in
    use):

    {v
                       q pi_n(r)
    E(n, r)  =  ----------------------
                 1 - q (1 - pi_n(r))
    v}

    and the reliability is its complement, the probability of ending in
    [ok]. *)

val error_probability : Params.t -> n:int -> r:float -> float
(** [E(n, r)].  Requires [n >= 1], [r >= 0]. *)

val log10_error_probability : Params.t -> n:int -> r:float -> float
(** Base-10 log of [E(n, r)], computed in the log domain: the
    figure-5/6 ordinate, finite down to [10^-300] and beyond. *)

val reliability : Params.t -> n:int -> r:float -> float
(** [1 - E(n, r)]: probability the configured address is genuinely
    free. *)

val error_bound : Params.t -> n:int -> float
(** The [r -> inf] floor of the error probability,
    [E_inf = q (1-l)^n / (1 - q (1 - (1-l)^n))]: no amount of waiting
    gets below this (driven purely by permanent message loss). *)
