type choice = { n : int; r : float }

type schedule = {
  per_attempt : choice array;
  expected_cost : float;
  fixed_best : choice;
  fixed_cost : float;
  improvement : float;
}

let default_candidates (p : Params.t) =
  let base =
    match p.Params.delay.Dist.Distribution.mean with Some m -> m | None -> 1.
  in
  List.concat_map
    (fun n ->
      List.map
        (fun scale -> { n; r = scale *. base })
        [ 0.25; 0.5; 0.75; 1.; 1.5; 2.; 3. ])
    (List.init 8 (fun i -> i + 1))

(* occupancy of attempt number i (1-based) under the refinement *)
let occupancy (refinement : Attempts.refinement) i =
  if not refinement.Attempts.blacklist then
    float_of_int refinement.Attempts.occupied
    /. float_of_int refinement.Attempts.pool
  else begin
    let known = min (i - 1) refinement.Attempts.occupied in
    float_of_int (refinement.Attempts.occupied - known)
    /. float_of_int (refinement.Attempts.pool - known)
  end

let delay_before (refinement : Attempts.refinement) i =
  match refinement.Attempts.rate_limit with
  | Some (threshold, delay) when i - 1 >= threshold && i > 1 -> delay
  | Some _ | None -> 0.

let solve ?(stages = 64) ?candidates (p : Params.t) ~refinement () =
  if stages < 1 then invalid_arg "Adaptive.solve: stages < 1";
  let candidates =
    match candidates with
    | Some [] -> invalid_arg "Adaptive.solve: empty candidate set"
    | Some cs -> cs
    | None -> default_candidates p
  in
  List.iter
    (fun c ->
      if c.n < 1 || c.r < 0. then invalid_arg "Adaptive.solve: bad candidate")
    candidates;
  let done_state = stages in
  let num_states = stages + 1 in
  (* per-candidate, per-occupancy transition data *)
  let outcome_terms c =
    let pis = Probes.pi_all p ~n:c.n ~r:c.r in
    let pi_n = pis.(c.n) in
    let sum_pi = Numerics.Safe_float.sum (Array.sub pis 0 c.n) in
    let step = c.r +. p.Params.probe_cost in
    let clean_cost = float_of_int c.n *. step in
    let abort_prob_given_occupied = 1. -. pi_n in
    let mean_periods_given_abort =
      if abort_prob_given_occupied <= 0. then 0.
      else (sum_pi -. (float_of_int c.n *. pi_n)) /. abort_prob_given_occupied
    in
    ( pi_n,
      clean_cost,
      step *. mean_periods_given_abort )
  in
  let terms = List.map (fun c -> (c, outcome_terms c)) candidates in
  let actions stage =
    if stage >= done_state then []
    else begin
      let attempt = stage + 1 in
      let q = occupancy refinement attempt in
      let delay = delay_before refinement attempt in
      let next = min (stage + 1) (stages - 1) in
      List.map
        (fun (c, (pi_n, clean_cost, abort_cost)) ->
          let name = Printf.sprintf "n=%d,r=%g" c.n c.r in
          let transitions =
            List.filter
              (fun tr -> tr.Dtmc.Mdp.prob > 0.)
              [ { Dtmc.Mdp.dst = done_state;
                  prob = 1. -. q;
                  cost = delay +. clean_cost };
                { Dtmc.Mdp.dst = done_state;
                  prob = q *. pi_n;
                  cost = delay +. clean_cost +. p.Params.error_cost };
                { Dtmc.Mdp.dst = next;
                  prob = q *. (1. -. pi_n);
                  cost = delay +. abort_cost } ]
          in
          (name, transitions))
        terms
    end
  in
  let mdp = Dtmc.Mdp.create ~num_states ~actions in
  let solution = Dtmc.Mdp.value_iteration mdp in
  let candidate_array = Array.of_list candidates in
  let per_attempt =
    Array.init stages (fun stage -> candidate_array.(solution.Dtmc.Mdp.policy.(stage)))
  in
  (* best fixed choice on the same grid *)
  let fixed_cost_of idx =
    let policy = Array.init num_states (fun s -> if s = done_state then -1 else idx) in
    (Dtmc.Mdp.evaluate_policy mdp ~policy).(0)
  in
  let best_idx = ref 0 and best_cost = ref (fixed_cost_of 0) in
  Array.iteri
    (fun idx _ ->
      if idx > 0 then begin
        let cost = fixed_cost_of idx in
        if cost < !best_cost then begin
          best_idx := idx;
          best_cost := cost
        end
      end)
    candidate_array;
  { per_attempt;
    expected_cost = solution.Dtmc.Mdp.values.(0);
    fixed_best = candidate_array.(!best_idx);
    fixed_cost = !best_cost;
    improvement = Float.max 0. (!best_cost -. solution.Dtmc.Mdp.values.(0)) }
