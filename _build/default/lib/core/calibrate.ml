type result = {
  error_cost : float;
  probe_cost : float;
  optimum : Optimize.point;
  r_residual : float;
}

(* Eq. 3 split as C_n(r) = (A(r) + E B(r)) / D(r) with
   A = (r+c) G,  G = n(1-q) + q sum_{i<n} pi_i,
   B = q pi_n,   D = 1 - q (1 - pi_n). *)
let error_cost_for_stationarity (p : Params.t) ~n ~r =
  if n < 1 then invalid_arg "Calibrate.error_cost_for_stationarity: n < 1";
  if r <= 0. then invalid_arg "Calibrate.error_cost_for_stationarity: r <= 0";
  let g r =
    let pis = Probes.pi_all p ~n ~r in
    (float_of_int n *. (1. -. p.q))
    +. (p.q *. Numerics.Safe_float.sum (Array.sub pis 0 n))
  in
  let b r = p.q *. Probes.pi p ~n ~r in
  let d r = 1. -. (p.q *. (1. -. Probes.pi p ~n ~r)) in
  let a r = (r +. p.probe_cost) *. g r in
  let da = Numerics.Derivative.richardson ~f:a r in
  let db = Numerics.Derivative.richardson ~f:b r in
  let dd = Numerics.Derivative.richardson ~f:d r in
  let av = a r and bv = b r and dv = d r in
  let denom = (db *. dv) -. (bv *. dd) in
  if denom = 0. then
    failwith "Calibrate.error_cost_for_stationarity: degenerate stationarity";
  let e = ((av *. dd) -. (da *. dv)) /. denom in
  if not (Float.is_finite e) || e <= 0. then
    failwith
      (Printf.sprintf
         "Calibrate.error_cost_for_stationarity: no positive solution (E = %g)"
         e);
  e

let run ?(c_hi = 64.) ?(tol = 1e-3) (p : Params.t) ~n ~r =
  if n < 1 then invalid_arg "Calibrate.run: n < 1";
  if r <= 0. then invalid_arg "Calibrate.run: r <= 0";
  let scenario_with c =
    let p' = Params.with_costs ~probe_cost:c p in
    let e = error_cost_for_stationarity p' ~n ~r in
    Params.with_costs ~error_cost:e p'
  in
  let target_is_optimal c =
    let opt = Optimize.global_optimum (scenario_with c) in
    opt.Optimize.n = n
  in
  (* geometric scan for the first postage making n* optimal, then
     bisection down to tol *)
  let rec scan c prev =
    if c > c_hi then
      failwith
        (Printf.sprintf "Calibrate.run: no postage <= %g makes n = %d optimal"
           c_hi n)
    else if target_is_optimal c then (prev, c)
    else scan (c *. 2.) c
  in
  let lo, hi = scan 0.0625 0. in
  let rec bisect lo hi =
    if hi -. lo <= tol then hi
    else
      let mid = 0.5 *. (lo +. hi) in
      if target_is_optimal mid then bisect lo mid else bisect mid hi
  in
  let c_star = bisect lo hi in
  let calibrated = scenario_with c_star in
  let optimum = Optimize.global_optimum calibrated in
  let r_opt = (Optimize.optimal_r calibrated ~n).Numerics.Minimize.x in
  { error_cost = calibrated.Params.error_cost;
    probe_cost = c_star;
    optimum;
    r_residual = Float.abs (r_opt -. r) }
