type recommendation_distribution = {
  rounds : int;
  n_votes : (int * int) list;
  modal_n : int;
  r_summary : Numerics.Stats.summary;
  r_ci : float * float;
  cost_summary : Numerics.Stats.summary;
}

let bootstrap ?(rounds = 200) ?(losses = 0) ~rng ~delays ~q ~probe_cost
    ~error_cost () =
  let n = Array.length delays in
  if n = 0 then invalid_arg "Uncertainty.bootstrap: empty sample";
  if rounds < 1 then invalid_arg "Uncertainty.bootstrap: rounds < 1";
  if losses < 0 then invalid_arg "Uncertainty.bootstrap: negative losses";
  let total = n + losses in
  let loss_rate = float_of_int losses /. float_of_int total in
  let ns = Array.make rounds 0 in
  let rs = Array.make rounds 0. in
  let costs = Array.make rounds 0. in
  for round = 0 to rounds - 1 do
    (* resample delays with replacement; resample the loss count
       binomially at the empirical rate *)
    let resampled = Array.init n (fun _ -> delays.(Numerics.Rng.int rng n)) in
    let relosses = ref 0 in
    for _ = 1 to total do
      if Numerics.Rng.bool rng loss_rate then incr relosses
    done;
    let fit = Dist.Fit.shifted_exponential_mle ~losses:!relosses resampled in
    let scenario =
      Params.v ~name:"bootstrap"
        ~delay:(Dist.Fit.to_distribution fit)
        ~q ~probe_cost ~error_cost
    in
    let opt = Optimize.global_optimum scenario in
    ns.(round) <- opt.Optimize.n;
    rs.(round) <- opt.Optimize.r;
    costs.(round) <- opt.Optimize.cost
  done;
  let votes = Hashtbl.create 8 in
  Array.iter
    (fun n ->
      Hashtbl.replace votes n (1 + Option.value ~default:0 (Hashtbl.find_opt votes n)))
    ns;
  let n_votes =
    List.sort
      (fun (_, a) (_, b) -> compare b a)
      (Hashtbl.fold (fun n c acc -> (n, c) :: acc) votes [])
  in
  { rounds;
    n_votes;
    modal_n = (match n_votes with (n, _) :: _ -> n | [] -> 0);
    r_summary = Numerics.Stats.summarize rs;
    r_ci = (Numerics.Stats.quantile rs 0.05, Numerics.Stats.quantile rs 0.95);
    cost_summary = Numerics.Stats.summarize costs }

let pp ppf t =
  let lo, hi = t.r_ci in
  Format.fprintf ppf
    "@[<v>bootstrap over %d rounds:@,\
    \  recommended n: %a (modal %d)@,\
    \  recommended r: mean %.4f, 90%% interval [%.4f, %.4f]@,\
    \  believed optimal cost: %.4f +- %.4f@]"
    t.rounds
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (n, c) -> Format.fprintf ppf "%d (x%d)" n c))
    t.n_votes t.modal_n t.r_summary.Numerics.Stats.mean lo hi
    t.cost_summary.Numerics.Stats.mean t.cost_summary.Numerics.Stats.std
