(** The discrete-time Markov reward model of Sec. 3.1 / 4.1, built
    explicitly as matrices over the state space
    [start, 1st, ..., nth, error, ok] and analysed with the generic
    {!Dtmc} machinery.

    This module is the bridge that lets the repository check the
    paper's closed forms (Eqs. 3 and 4) against an independent
    linear-algebra solution of the very matrices [P_n] and [C_n] the
    paper defines. *)

type t = {
  chain : Dtmc.Chain.t;
  reward : Dtmc.Reward.t;
  start : int;
  error : int;
  ok : int;
}

val build : Params.t -> n:int -> r:float -> t
(** Constructs the DRM for the given protocol parameters.  Transition
    probabilities and costs follow Sec. 4.1 verbatim:
    [start -> 1st] with probability [q] and cost [r + c];
    [start -> ok] with probability [1 - q] and cost [n (r + c)];
    [ith -> (i+1)th] with probability [p_i(r)] and cost [r + c]
    (the final such hop, [nth -> error], costs [E] instead);
    [ith -> start] with probability [1 - p_i(r)] and zero cost. *)

val mean_cost : t -> float
(** Mean accumulated cost from [start] — the matrix route to
    [C(n, r)], via [(I - Q)^(-1) w]. *)

val error_probability : t -> float
(** Absorption probability into [error] — the matrix route to
    [E(n, r)]. *)

val cost_variance : t -> float
(** Variance of the accumulated cost (beyond the paper: Eq. 3 gives
    only the mean). *)

val expected_steps : t -> float
(** Expected number of DRM transitions until absorption. *)

val simulate_cost :
  trials:int -> rng:Numerics.Rng.t -> t -> Dtmc.Simulate.estimate
(** Monte-Carlo estimate of the mean cost (validation route 3). *)

val simulate_error :
  trials:int -> rng:Numerics.Rng.t -> t -> Dtmc.Simulate.estimate
(** Monte-Carlo estimate of the error probability. *)
