type verification = {
  analytic : float;
  estimate : Dtmc.Importance.estimate;
  covered : bool;
}

let verify_error_probability ?(trials = 20_000) ?floor ~rng (p : Params.t) ~n ~r =
  let drm = Drm.build p ~n ~r in
  let proposal = Dtmc.Importance.boosted_proposal ?floor drm.Drm.chain ~toward:drm.Drm.error in
  let estimate =
    Dtmc.Importance.estimate_absorption ~trials ~rng ~proposal drm.Drm.chain
      ~from:drm.Drm.start ~into:drm.Drm.error
  in
  let analytic = Reliability.error_probability p ~n ~r in
  { analytic;
    estimate;
    covered =
      analytic >= estimate.Dtmc.Importance.ci_lo
      && analytic <= estimate.Dtmc.Importance.ci_hi }
