(** The Sec. 4.5 inverse problem: which costs make the draft's
    parameters optimal?

    Given the network side of a scenario (delay distribution and
    occupancy [q]) and a target protocol setting [(n_t, r_t)] — the
    Internet-draft's [(4, 2)] or [(4, 0.2)] — find the error cost [E]
    and probe postage [c] under which [(n_t, r_t)] minimizes the mean
    total cost.

    The algorithm exploits that Eq. 3 is affine in [E]: writing
    [C_n(r) = (A(r) + E B(r)) / D(r)], stationarity of [C_(n_t)] at
    [r_t] pins [E] to

    {v E = (A D' - A' D) / (B' D - B D')  at r = r_t, v}

    which is (nearly) independent of [c].  The postage is then the
    {e smallest} [c] at which [n_t] becomes the globally cost-optimal
    probe count — below it, a cheaper-postage design prefers more,
    shorter probes.  On the paper's two worst-case scenarios this
    yields [E = 5.7e20, c = 3.5] and [E = 5.6e34, c = 0.5], matching
    the paper's [5e20 / 3.5] and [1e35 / 0.5] up to its one-digit
    rounding. *)

type result = {
  error_cost : float;  (** Calibrated [E]. *)
  probe_cost : float;  (** Calibrated [c] (threshold postage). *)
  optimum : Optimize.point;
      (** Global optimum under the calibrated costs — should equal the
          target [(n_t, r_t)]. *)
  r_residual : float;
      (** [|r_opt(n_t) - r_t|] under the calibrated costs. *)
}

val error_cost_for_stationarity : Params.t -> n:int -> r:float -> float
(** The [E] making [r] a stationary point of [C_n] (uses the scenario's
    current [probe_cost]).  Raises [Failure] when the stationarity
    condition has no positive solution (e.g. [r] below the round-trip
    delay, where the cost is locally flat). *)

val run :
  ?c_hi:float -> ?tol:float -> Params.t -> n:int -> r:float -> result
(** Full calibration.  The scenario's own cost fields are ignored (they
    are what is being solved for).  [c_hi] (default [64.]) caps the
    postage search; [tol] (default [1e-3]) is the bisection tolerance
    on [c].  Raises [Failure] if no postage in [(0, c_hi]] makes [n_t]
    optimal. *)
