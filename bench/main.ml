(* Benchmark and reproduction harness.

   Part 1 prints, for every evaluation artifact of the paper (Figures
   2-6, Sec. 4.4, Sec. 4.5, Sec. 6, plus this repo's validation and
   ablation experiments), the rows/series the paper reports, next to
   the paper's own numbers where it states them.

   Part 2 times the machinery behind each artifact with Bechamel (one
   Test.make per artifact, plus the ablation pairs from DESIGN.md). *)

open Bechamel
open Toolkit

let line () = print_endline (String.make 78 '-')

let section title =
  line ();
  Printf.printf "%s\n" title;
  line ()

(* ------------------------------------------------------------------ *)
(* Part 1: reproduction                                                *)

let fig2_scenario = Zeroconf.Params.figure2

let reproduce_fig2 () =
  section "Figure 2 -- cost functions C_1 .. C_8 (figure2 scenario)";
  Printf.printf "paper: C_1, C_2 invisible (astronomical); minima ordered \
                 C_3 < C_4 < ... < C_8;\nhigher n -> smaller r_opt\n\n";
  let table =
    Output.Table.create
      ~columns:
        [ ("n", Output.Table.Right); ("r_opt", Output.Table.Right);
          ("C_n(r_opt)", Output.Table.Right); ("C_n(1)", Output.Table.Right);
          ("C_n(2)", Output.Table.Right); ("C_n(4)", Output.Table.Right) ]
  in
  for n = 1 to 8 do
    let opt = Zeroconf.Optimize.optimal_r fig2_scenario ~n in
    Output.Table.add_row table
      [ string_of_int n;
        Printf.sprintf "%.4f" opt.Numerics.Minimize.x;
        Printf.sprintf "%.6g" opt.Numerics.Minimize.fx;
        Printf.sprintf "%.6g" (Zeroconf.Cost.mean fig2_scenario ~n ~r:1.);
        Printf.sprintf "%.6g" (Zeroconf.Cost.mean fig2_scenario ~n ~r:2.);
        Printf.sprintf "%.6g" (Zeroconf.Cost.mean fig2_scenario ~n ~r:4.) ]
  done;
  print_string (Output.Table.to_text table)

let reproduce_fig3 () =
  section "Figure 3 -- N(r): optimal probe count for given r";
  Printf.printf "paper: piecewise-constant, non-increasing steps\n\n";
  (* report the switching points of the step function *)
  let grid = Numerics.Grid.linspace 0.05 6. 400 in
  let previous = ref (-1) in
  Printf.printf "  r        N(r)\n";
  Array.iter
    (fun r ->
      let n, _ = Zeroconf.Optimize.optimal_n fig2_scenario ~r in
      if n <> !previous then begin
        Printf.printf "  %-7.3f  %d\n" r n;
        previous := n
      end)
    grid

let reproduce_fig4 () =
  section "Figure 4 -- minimal-cost envelope C_min(r)";
  let table =
    Output.Table.create
      ~columns:
        [ ("r", Output.Table.Right); ("N(r)", Output.Table.Right);
          ("C_min(r)", Output.Table.Right) ]
  in
  List.iter
    (fun r ->
      let n, cost = Zeroconf.Optimize.optimal_n fig2_scenario ~r in
      Output.Table.add_row table
        [ Printf.sprintf "%.2f" r; string_of_int n; Printf.sprintf "%.5g" cost ])
    [ 0.25; 0.5; 0.75; 1.; 1.5; 2.; 2.5; 3.; 4.; 5.; 6. ];
  print_string (Output.Table.to_text table)

let reproduce_fig5_6 () =
  section "Figures 5/6 -- log10 error probability E(n, r), and E(N(r), r)";
  Printf.printf
    "paper: log-scale curves decreasing in r and n; the envelope E(N(r), r)\n\
     is sawtoothed and stays roughly within [1e-54, 1e-35]\n\n";
  let table =
    Output.Table.create
      ~columns:
        ([ ("r", Output.Table.Right) ]
        @ List.map (fun n -> (Printf.sprintf "n=%d" n, Output.Table.Right))
            [ 1; 2; 3; 4; 5; 6; 7; 8 ]
        @ [ ("N(r)", Output.Table.Right); ("env", Output.Table.Right) ])
  in
  List.iter
    (fun r ->
      let cells =
        List.map
          (fun n ->
            Printf.sprintf "%.1f"
              (Zeroconf.Reliability.log10_error_probability fig2_scenario ~n ~r))
          [ 1; 2; 3; 4; 5; 6; 7; 8 ]
      in
      let n_opt, _ = Zeroconf.Optimize.optimal_n fig2_scenario ~r in
      Output.Table.add_row table
        ((Printf.sprintf "%.2f" r :: cells)
        @ [ string_of_int n_opt;
            Printf.sprintf "%.1f"
              (Zeroconf.Reliability.log10_error_probability fig2_scenario
                 ~n:n_opt ~r) ]))
    [ 0.5; 1.; 1.5; 2.; 3.; 4.; 5.; 6. ];
  print_string (Output.Table.to_text table);
  (* the paper's band claim, checked on a fine grid *)
  let env_min = ref 0. and env_max = ref (-1000.) in
  Array.iter
    (fun r ->
      let n, _ = Zeroconf.Optimize.optimal_n fig2_scenario ~r in
      let v = Zeroconf.Reliability.log10_error_probability fig2_scenario ~n ~r in
      if v < !env_min then env_min := v;
      if v > !env_max then env_max := v)
    (Numerics.Grid.linspace 0.4 6. 300);
  Printf.printf "\nenvelope range over r in [0.4, 6]: log10 E in [%.1f, %.1f]\n"
    !env_min !env_max;
  Printf.printf "paper:                              log10 E in [-54, -35] (roughly)\n"

let reproduce_sec44 () =
  section "Sec. 4.4 -- minimal useful probe count";
  Printf.printf "nu(figure2)            = %d   (paper: 3)\n"
    (Engine.Experiments.section_44_nu ());
  Printf.printf "nu(realistic-ethernet) = %d   (paper Sec. 6 context: 2)\n"
    (Zeroconf.Optimize.min_useful_probes Zeroconf.Params.realistic_ethernet)

let reproduce_sec45 () =
  section "Sec. 4.5 -- calibrated costs making the draft's (n, r) optimal";
  List.iter
    (fun (row : Engine.Experiments.calibration_row) ->
      let d = row.Engine.Experiments.derived in
      Printf.printf "%s (target n=%d, r=%g):\n" row.Engine.Experiments.label
        row.Engine.Experiments.target_n row.Engine.Experiments.target_r;
      Printf.printf "  E = %-12.4g (paper: %.2g)\n" d.Zeroconf.Calibrate.error_cost
        row.Engine.Experiments.paper_error_cost;
      Printf.printf "  c = %-12.4g (paper: %.2g; ours is the exact threshold)\n"
        d.Zeroconf.Calibrate.probe_cost row.Engine.Experiments.paper_probe_cost;
      Printf.printf "  optimum under calibrated costs: n = %d, r = %.3f\n"
        d.Zeroconf.Calibrate.optimum.Zeroconf.Optimize.n
        d.Zeroconf.Calibrate.optimum.Zeroconf.Optimize.r)
    (Engine.Experiments.section_45 ())

let reproduce_sec6 () =
  section "Sec. 6 -- assessment on a realistic network";
  Format.printf "%a@." Zeroconf.Assessment.pp (Engine.Experiments.section_6 ());
  Printf.printf "paper: optimal n = 2, r ~= 1.75, error probability ~= 4e-22\n"

let reproduce_validation () =
  section "Validation (V1) -- Eq. 3/4 vs DRM matrix solve vs Monte-Carlo";
  let table =
    Output.Table.create
      ~columns:
        [ ("n", Output.Table.Right); ("r", Output.Table.Right);
          ("C eq3", Output.Table.Right); ("C matrix", Output.Table.Right);
          ("C sim 95% CI", Output.Table.Left); ("E eq4", Output.Table.Right);
          ("E matrix", Output.Table.Right); ("E sim 95% CI", Output.Table.Left) ]
  in
  List.iter
    (fun (row : Engine.Experiments.validation_row) ->
      Output.Table.add_row table
        [ string_of_int row.Engine.Experiments.n;
          Printf.sprintf "%.2f" row.Engine.Experiments.r;
          Printf.sprintf "%.4f" row.Engine.Experiments.analytic_cost;
          Printf.sprintf "%.4f" row.Engine.Experiments.matrix_cost;
          Printf.sprintf "[%.4f, %.4f]"
            row.Engine.Experiments.simulated_cost.Dtmc.Simulate.ci_lo
            row.Engine.Experiments.simulated_cost.Dtmc.Simulate.ci_hi;
          Printf.sprintf "%.5f" row.Engine.Experiments.analytic_error;
          Printf.sprintf "%.5f" row.Engine.Experiments.matrix_error;
          Printf.sprintf "[%.5f, %.5f]"
            row.Engine.Experiments.simulated_error.Dtmc.Simulate.ci_lo
            row.Engine.Experiments.simulated_error.Dtmc.Simulate.ci_hi ])
    (Engine.Experiments.validation ~trials:10_000 ());
  print_string (Output.Table.to_text table)

let reproduce_refinements () =
  section "Extension (A2) -- the Sec. 3.1 refinements the paper abstracts away";
  Printf.printf
    "attempt-indexed model on a crowded 256-address pool (200 occupied),\n\
     n = 3, r = 1, F_X = shifted-exp(d = 0.5, rate = 2, loss 0.1):\n\n";
  let crowded =
    Zeroconf.Params.v ~name:"crowded"
      ~delay:(Dist.Families.shifted_exponential ~mass:0.9 ~rate:2. ~delay:0.5 ())
      ~q:0. ~probe_cost:1. ~error_cost:100.
  in
  let table =
    Output.Table.create
      ~columns:
        [ ("refinement", Output.Table.Left); ("mean cost", Output.Table.Right);
          ("error prob", Output.Table.Right); ("mean time (s)", Output.Table.Right);
          ("mean attempts", Output.Table.Right) ]
  in
  List.iter
    (fun (label, (a : Zeroconf.Attempts.analysis)) ->
      Output.Table.add_row table
        [ label;
          Printf.sprintf "%.4f" a.Zeroconf.Attempts.mean_cost;
          Printf.sprintf "%.4f" a.Zeroconf.Attempts.error_probability;
          Printf.sprintf "%.4f" a.Zeroconf.Attempts.mean_time;
          Printf.sprintf "%.4f" a.Zeroconf.Attempts.mean_attempts ])
    (Zeroconf.Attempts.compare_refinements crowded ~occupied:200 ~pool:256 ~n:3
       ~r:1. ());
  print_string (Output.Table.to_text table)

let reproduce_latency () =
  section "Extension (A3) -- configuration-time distribution (figure2, draft n=4, r=2)";
  let dist = Zeroconf.Latency.periods fig2_scenario ~n:4 ~r:2. in
  Printf.printf "mean = %.4f s; quantiles: 50%% %.3g s, 99%% %.3g s, 99.99%% %.3g s\n"
    (Zeroconf.Latency.mean dist)
    (Zeroconf.Latency.quantile dist 0.5)
    (Zeroconf.Latency.quantile dist 0.99)
    (Zeroconf.Latency.quantile dist 0.9999);
  Printf.printf "P(wait > 8 s) = %.3e   (the paper's 'barely acceptable' threshold)\n"
    (Zeroconf.Latency.exceeds dist 8.)

let reproduce_pareto () =
  section "Extension (A4) -- cost/reliability Pareto front (figure2)";
  let front = Engine.Tradeoff.front ~n_max:10 ~r_points:150 ~r_max:6. fig2_scenario in
  Printf.printf "front size: %d designs; endpoints and knee:\n" (List.length front);
  let show label (d : Engine.Tradeoff.design) =
    Printf.printf "  %-9s n = %2d, r = %5.2f: cost %8.2f, log10 error %.1f\n" label
      d.Engine.Tradeoff.n d.Engine.Tradeoff.r d.Engine.Tradeoff.cost
      d.Engine.Tradeoff.log10_error
  in
  (match front with d :: _ -> show "cheapest" d | [] -> ());
  (match List.rev front with d :: _ -> show "safest" d | [] -> ());
  (match Engine.Tradeoff.knee front with
  | Some d -> show "knee" d
  | None -> ());
  Printf.printf
    "paper Sec. 5: 'optimal reliability and optimal cost can not be achieved\n\
     at the same time' -- the front above is that statement, quantified.\n"

let reproduce_maintenance () =
  section "Extension (A5) -- maintenance phase: operational reading of E";
  let rng = Numerics.Rng.create 13 in
  let est =
    Netsim.Maintenance.estimate_error_cost ~background_rate:0.1 ~loss:0.01
      ~one_way:(Dist.Families.exponential ~rate:40. ())
      ~occupied:100 ~pool_size:1024
      ~config:(Netsim.Newcomer.drm_config ~n:4 ~r:2. ~probe_cost:0. ~error_cost:0.)
      ~trials:60 ~rng ()
  in
  Printf.printf
    "60 simulated collisions (bg ARP 0.1/s, loss 1%%):\n\
    \  mean disruption %.1f s (max %.1f s), %.2f broken connections,\n\
    \  suggested E ~ %.1f on the waiting-seconds scale\n"
    est.Netsim.Maintenance.disruption.Numerics.Stats.mean
    est.Netsim.Maintenance.disruption.Numerics.Stats.max
    est.Netsim.Maintenance.mean_broken
    est.Netsim.Maintenance.suggested_error_cost

let reproduce_rare () =
  section "Validation (V2) -- Eq. 4 verified in the deep tail by importance sampling";
  Printf.printf
    "plain Monte-Carlo is blind below ~1e-5; a boosted proposal with\n\
     likelihood-ratio weights confirms the analytic error probability at\n\
     every depth (20k paths each):\n\n";
  let rng = Numerics.Rng.create 11 in
  let table =
    Output.Table.create
      ~columns:
        [ ("scenario", Output.Table.Left); ("(n, r)", Output.Table.Left);
          ("Eq. 4", Output.Table.Right); ("IS estimate", Output.Table.Right);
          ("95% CI", Output.Table.Left); ("rel. err", Output.Table.Right);
          ("covered", Output.Table.Right) ]
  in
  List.iter
    (fun (name, p, n, r) ->
      let v = Zeroconf.Rare.verify_error_probability ~trials:20_000 ~rng p ~n ~r in
      Output.Table.add_row table
        [ name;
          Printf.sprintf "(%d, %g)" n r;
          Printf.sprintf "%.3e" v.Zeroconf.Rare.analytic;
          Printf.sprintf "%.3e" v.Zeroconf.Rare.estimate.Dtmc.Importance.mean;
          Printf.sprintf "[%.2e, %.2e]" v.Zeroconf.Rare.estimate.Dtmc.Importance.ci_lo
            v.Zeroconf.Rare.estimate.Dtmc.Importance.ci_hi;
          Printf.sprintf "%.3f" v.Zeroconf.Rare.estimate.Dtmc.Importance.relative_error;
          string_of_bool v.Zeroconf.Rare.covered ])
    [ ( "moderate",
        Zeroconf.Params.v ~name:"m"
          ~delay:(Dist.Families.shifted_exponential ~mass:0.9 ~rate:2. ~delay:0.5 ())
          ~q:0.3 ~probe_cost:1. ~error_cost:100.,
        3, 1. );
      ( "deep",
        Zeroconf.Params.v ~name:"d"
          ~delay:(Dist.Families.shifted_exponential ~mass:0.99 ~rate:5. ~delay:0.2 ())
          ~q:0.1 ~probe_cost:1. ~error_cost:100.,
        4, 1. );
      ("figure2", fig2_scenario, 3, 1.5);
      ("figure2 draft", fig2_scenario, 4, 2.) ];
  print_string (Output.Table.to_text table)

let reproduce_adaptive () =
  section "Extension (A6) -- adaptive per-attempt (n, r) via the MDP solver";
  let crowded =
    Zeroconf.Params.v ~name:"crowded"
      ~delay:(Dist.Families.shifted_exponential ~mass:0.9 ~rate:2. ~delay:0.5 ())
      ~q:0. ~probe_cost:1. ~error_cost:100.
  in
  let base = Zeroconf.Attempts.no_refinement ~occupied:200 ~pool:256 () in
  let report label refinement =
    let s = Zeroconf.Adaptive.solve crowded ~refinement () in
    Printf.printf "%-22s fixed %.4f  adaptive %.4f  improvement %.4f\n" label
      s.Zeroconf.Adaptive.fixed_cost s.Zeroconf.Adaptive.expected_cost
      s.Zeroconf.Adaptive.improvement
  in
  report "memoryless (paper)" base;
  report "blacklist" { base with Zeroconf.Attempts.blacklist = true };
  report "rate limit (2, 30 s)"
    { base with Zeroconf.Attempts.rate_limit = Some (2, 30.) };
  Printf.printf
    "\nwith memoryless occupancy the optimal schedule is stationary and the\n\
     improvement is exactly zero (the paper's fixed-(n, r) setting is optimal\n\
     there); harsh rate limiting is where adaptivity pays.\n"

let reproduce_multi () =
  section "Extension (M1) -- simultaneous newcomers (the Uppaal companion setting)";
  Printf.printf
    "packet-level simulation, 32-address pool with 8 occupied, loss 10%%,\n\
     immediate abort + rival-probe rule + announcements (the draft,\n\
     faithfully); per-newcomer collision rate vs crowd size:\n\n";
  let rng = Numerics.Rng.create 17 in
  let config =
    { (Netsim.Newcomer.drm_config ~n:3 ~r:0.3 ~probe_cost:0. ~error_cost:0.) with
      Netsim.Newcomer.immediate_abort = true;
      Netsim.Newcomer.avoid_failed = true;
      Netsim.Newcomer.announce = Some (2, 0.5) }
  in
  let rates =
    Netsim.Multi.collision_rate_vs_newcomers ~loss:0.1
      ~one_way:(Dist.Families.uniform ~lo:0.005 ~hi:0.05 ())
      ~occupied:8 ~pool_size:32 ~config ~trials:60 ~counts:[ 1; 2; 4; 8; 16 ]
      ~rng ()
  in
  List.iter
    (fun (count, rate) ->
      Printf.printf "  %2d simultaneous newcomers: collision rate %.4f\n" count rate)
    rates;
  Printf.printf
    "\nthe rival-probe rule keeps simultaneous configurations apart even\n\
     when half the pool is being contested at once.\n"

let reproduce_all () =
  reproduce_fig2 ();
  reproduce_fig3 ();
  reproduce_fig4 ();
  reproduce_fig5_6 ();
  reproduce_sec44 ();
  reproduce_sec45 ();
  reproduce_sec6 ();
  reproduce_validation ();
  reproduce_refinements ();
  reproduce_latency ();
  reproduce_pareto ();
  reproduce_maintenance ();
  reproduce_adaptive ();
  reproduce_rare ();
  reproduce_multi ()

(* ------------------------------------------------------------------ *)
(* Part 2: bechamel timing benches, one per artifact + ablations       *)

let r_grid = Numerics.Grid.linspace 0.05 6. 48

(* The pre-kernel [Optimize.optimal_n], verbatim: a point-wise
   [Cost.mean] rebuild per candidate n.  Kept here as the baseline the
   incremental kernel is benchmarked (and smoke-checked) against. *)
let optimal_n_direct ?(n_max = 4096) ?(patience = 24) (p : Zeroconf.Params.t) ~r =
  if r < 0. then invalid_arg "optimal_n_direct: negative r";
  let first_useful =
    let rec find i =
      if i > n_max then n_max
      else if Zeroconf.Probes.no_answer p ~i ~r < 1. then i
      else find (i + 1)
    in
    if r = 0. then n_max else find 1
  in
  let best_n = ref 1 and best_cost = ref (Zeroconf.Cost.mean p ~n:1 ~r) in
  let misses = ref 0 in
  let n = ref (max 1 first_useful) in
  while !misses < patience && !n <= n_max do
    let c = Zeroconf.Cost.mean p ~n:!n ~r in
    if c < !best_cost then begin
      best_n := !n;
      best_cost := c;
      misses := 0
    end else incr misses;
    incr n
  done;
  (!best_n, !best_cost)

(* a power-of-two lattice grid r = k/32 keeps the kernel's
   survival-memo abscissae i * r exactly coincident across grid points *)
let kernel_grid = Array.init 96 (fun k -> float_of_int (k + 1) /. 32.)

let bench_tests =
  let stage = Staged.stage in
  Test.make_grouped ~name:"zeroconf"
    [ Test.make ~name:"fig2/cost-curves"
        (stage (fun () ->
             for n = 1 to 8 do
               Array.iter
                 (fun r -> ignore (Zeroconf.Cost.mean fig2_scenario ~n ~r))
                 r_grid
             done));
      Test.make ~name:"fig3/optimal-n"
        (stage (fun () ->
             Array.iter
               (fun r -> ignore (Zeroconf.Optimize.optimal_n fig2_scenario ~r))
               r_grid));
      Test.make ~name:"fig4/min-cost"
        (stage (fun () ->
             Array.iter
               (fun r -> ignore (Zeroconf.Optimize.min_cost fig2_scenario ~r))
               r_grid));
      Test.make ~name:"fig5/error-prob"
        (stage (fun () ->
             for n = 1 to 8 do
               Array.iter
                 (fun r ->
                   ignore
                     (Zeroconf.Reliability.log10_error_probability fig2_scenario
                        ~n ~r))
                 r_grid
             done));
      Test.make ~name:"fig6/error-under-optimal-n"
        (stage (fun () ->
             Array.iter
               (fun r ->
                 ignore (Zeroconf.Optimize.error_under_optimal_n fig2_scenario ~r))
               r_grid));
      Test.make ~name:"sec44/nu"
        (stage (fun () -> ignore (Engine.Experiments.section_44_nu ())));
      Test.make ~name:"sec45/calibrate-E"
        (stage (fun () ->
             ignore
               (Zeroconf.Calibrate.error_cost_for_stationarity
                  (Zeroconf.Params.with_costs ~probe_cost:3.5
                     Zeroconf.Params.wireless_worst_case)
                  ~n:4 ~r:2.)));
      Test.make ~name:"sec6/global-optimum"
        (stage (fun () ->
             ignore
               (Zeroconf.Optimize.global_optimum Zeroconf.Params.realistic_ethernet)));
      Test.make ~name:"validate/drm-matrix-solve"
        (stage (fun () ->
             let drm = Zeroconf.Drm.build fig2_scenario ~n:4 ~r:2. in
             ignore (Zeroconf.Drm.mean_cost drm);
             ignore (Zeroconf.Drm.error_probability drm)));
      (let rng = Numerics.Rng.create 1 in
       let delay =
         Dist.Families.shifted_exponential ~mass:0.9 ~rate:2. ~delay:0.5 ()
       in
       let config =
         Netsim.Newcomer.drm_config ~n:3 ~r:1. ~probe_cost:1. ~error_cost:100.
       in
       Test.make ~name:"validate/aggregate-sim-100"
         (stage (fun () ->
              ignore
                (Netsim.Scenario.run_aggregate ~delay ~occupied:256
                   ~pool_size:1024 ~config ~trials:100 ~rng ()))));
      (* ablation A1a: literal Eq. 1 product vs telescoped survival form *)
      Test.make ~name:"ablate/pi-literal"
        (stage (fun () ->
             Array.iter
               (fun r ->
                 for i = 1 to 8 do
                   ignore (Zeroconf.Probes.no_answer_literal fig2_scenario ~i ~r)
                 done)
               r_grid));
      Test.make ~name:"ablate/pi-telescoped"
        (stage (fun () ->
             Array.iter
               (fun r ->
                 for i = 1 to 8 do
                   ignore (Zeroconf.Probes.no_answer fig2_scenario ~i ~r)
                 done)
               r_grid));
      (* incremental kernel vs direct point-wise rebuild: the same
         n-scan artifacts, streamed and not *)
      Test.make ~name:"kernel/optimal-n-direct"
        (stage (fun () ->
             Array.iter
               (fun r -> ignore (optimal_n_direct fig2_scenario ~r))
               kernel_grid));
      Test.make ~name:"kernel/optimal-n-kernel"
        (stage (fun () ->
             Array.iter
               (fun r -> ignore (Zeroconf.Optimize.optimal_n fig2_scenario ~r))
               kernel_grid));
      Test.make ~name:"kernel/cost-sweep-direct"
        (stage (fun () ->
             Array.iter
               (fun r -> ignore (Zeroconf.Cost.mean fig2_scenario ~n:32 ~r))
               kernel_grid));
      Test.make ~name:"kernel/cost-sweep-kernel"
        (stage (fun () ->
             Array.iter
               (fun r -> ignore (Zeroconf.Kernel.cost_at fig2_scenario ~n:32 ~r))
               kernel_grid));
      (* the same sweep through the query engine: the pipeline layers
         (query validation, plan compilation, cache miss, provenance)
         must be free next to the kernel they route to; a fresh cache
         per call keeps every iteration an honest miss *)
      Test.make ~name:"kernel/cost-sweep-engine"
        (stage (fun () ->
             ignore
               (Engine.Executor.eval
                  ~cache:(Engine.Cache.create ())
                  (Engine.Query.r_sweep Engine.Query.Mean_cost fig2_scenario
                     ~n:32 ~rs:kernel_grid))));
      (* ablation A1b: float vs log-space cost evaluation *)
      Test.make ~name:"ablate/cost-float"
        (stage (fun () ->
             Array.iter
               (fun r -> ignore (Zeroconf.Cost.mean fig2_scenario ~n:4 ~r))
               r_grid));
      Test.make ~name:"ablate/cost-logspace"
        (stage (fun () ->
             Array.iter
               (fun r -> ignore (Zeroconf.Cost.mean_log fig2_scenario ~n:4 ~r))
               r_grid));
      (* extensions *)
      Test.make ~name:"ext/refined-attempts"
        (stage (fun () ->
             let crowded =
               Zeroconf.Params.v ~name:"crowded"
                 ~delay:
                   (Dist.Families.shifted_exponential ~mass:0.9 ~rate:2.
                      ~delay:0.5 ())
                 ~q:0. ~probe_cost:1. ~error_cost:100.
             in
             ignore
               (Zeroconf.Attempts.analyze crowded
                  (Zeroconf.Attempts.draft_refinement ~occupied:200 ~pool:256 ())
                  ~n:3 ~r:1.)));
      Test.make ~name:"ext/latency-distribution"
        (stage (fun () ->
             ignore (Zeroconf.Latency.periods ~horizon:256 fig2_scenario ~n:4 ~r:2.)));
      (let rng = Numerics.Rng.create 11 in
       Test.make ~name:"validate/importance-sampling-5k"
         (stage (fun () ->
              ignore
                (Zeroconf.Rare.verify_error_probability ~trials:5_000 ~rng
                   fig2_scenario ~n:4 ~r:2.))));
      Test.make ~name:"ext/adaptive-mdp"
        (stage (fun () ->
             let crowded =
               Zeroconf.Params.v ~name:"crowded"
                 ~delay:
                   (Dist.Families.shifted_exponential ~mass:0.9 ~rate:2.
                      ~delay:0.5 ())
                 ~q:0. ~probe_cost:1. ~error_cost:100.
             in
             ignore
               (Zeroconf.Adaptive.solve ~stages:32 crowded
                  ~refinement:
                    { (Zeroconf.Attempts.no_refinement ~occupied:200 ~pool:256 ()) with
                      Zeroconf.Attempts.rate_limit = Some (2, 30.) }
                  ())));
      Test.make ~name:"ext/pareto-front"
        (stage (fun () ->
             ignore
               (Engine.Tradeoff.front ~n_max:8 ~r_points:60 ~r_max:6.
                  fig2_scenario)));
      (* ablation A1c: dense LU vs sparse Jacobi on a 300-state chain *)
      (let n = 300 in
       let q =
         Numerics.Matrix.init ~rows:n ~cols:n (fun i j ->
             if j = i + 1 && i < n - 1 then 0.49
             else if j = i - 1 && i > 0 then 0.49
             else 0.)
       in
       let sparse = Dtmc.Sparse.of_matrix q in
       let b = Array.make n 1. in
       Test.make_grouped ~name:"ablate/solver"
         [ Test.make ~name:"dense-lu"
             (stage (fun () ->
                  ignore
                    (Numerics.Lu.solve
                       (Numerics.Matrix.sub (Numerics.Matrix.identity n) q)
                       b)));
           Test.make ~name:"sparse-jacobi"
             (stage (fun () ->
                  ignore (Dtmc.Sparse.jacobi_solve ~tol:1e-12 sparse b))) ]) ]

(* ------------------------------------------------------------------ *)
(* Serial-vs-parallel artifact pairs                                   *)

(* The same artifact body run on a one-domain pool (the pre-parallel
   code path, bit for bit) and on the default Exec pool.  [points] and
   [trials] scale the work so the smoke target stays cheap. *)
let serial_pool = Exec.Pool.create 1

let artifact_specs ~points ~trials =
  let grid = Numerics.Grid.linspace 0.05 6. points in
  [ ( "fig2/cost-curves",
      fun pool ->
        for n = 1 to 8 do
          ignore
            (Exec.Parallel.map_sweep ~pool
               (fun r -> Zeroconf.Cost.mean fig2_scenario ~n ~r)
               grid)
        done );
    ( "fig3-4/optimal-n-sweep",
      fun pool -> ignore (Zeroconf.Optimize.optimal_n_sweep ~pool fig2_scenario grid) );
    ( "fig5/error-grid",
      fun pool ->
        for n = 1 to 8 do
          ignore
            (Exec.Parallel.map_sweep ~pool
               (fun r ->
                 Zeroconf.Reliability.log10_error_probability fig2_scenario ~n ~r)
               grid)
        done );
    ( "fig6/error-envelope",
      fun pool ->
        ignore
          (Exec.Parallel.map_sweep ~pool
             (fun r -> Zeroconf.Optimize.error_under_optimal_n fig2_scenario ~r)
             grid) );
    ( "landscape/cost-surface",
      fun pool ->
        ignore
          (Exec.Parallel.init ~pool (10 * points) (fun k ->
               let n = (k / points) + 1 and r = grid.(k mod points) in
               log10 (Zeroconf.Cost.mean fig2_scenario ~n ~r))) );
    ( "netsim/multi-trials",
      fun pool ->
        let rng = Numerics.Rng.create 17 in
        let config =
          Netsim.Newcomer.drm_config ~n:3 ~r:0.3 ~probe_cost:0. ~error_cost:0.
        in
        ignore
          (Netsim.Multi.run_trials ~domains:pool ~loss:0.1
             ~one_way:(Dist.Families.uniform ~lo:0.005 ~hi:0.05 ())
             ~occupied:8 ~pool_size:32 ~newcomers:4 ~config ~trials ~rng ()) ) ]

let parallel_pair_tests () =
  let stage = Staged.stage in
  let pool = Exec.Pool.get () in
  let jobs = Exec.Pool.size pool in
  Test.make_grouped ~name:"parallel"
    (List.concat_map
       (fun (name, body) ->
         [ Test.make ~name:(name ^ "/serial") (stage (fun () -> body serial_pool));
           Test.make
             ~name:(Printf.sprintf "%s/jobs-%d" name jobs)
             (stage (fun () -> body pool)) ])
       (artifact_specs ~points:48 ~trials:16))

let wall_time body =
  let best = ref infinity in
  for _ = 1 to 5 do
    (* settle the heap first so no run pays for its predecessor's
       garbage — otherwise whichever variant is timed second absorbs
       the first one's major-GC debt and the comparison is unstable *)
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    body ();
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let write_parallel_json path =
  let pool = Exec.Pool.get () in
  let jobs = Exec.Pool.size pool in
  section (Printf.sprintf "Wall-clock serial vs parallel (jobs = %d)" jobs);
  let rows =
    List.map
      (fun (name, body) ->
        body pool (* warm call: spawns the worker domains once *);
        let serial_s = wall_time (fun () -> body serial_pool) in
        let parallel_s = wall_time (fun () -> body pool) in
        Printf.printf "  %-24s serial %8.4f s   parallel %8.4f s   speedup %.2fx\n%!"
          name serial_s parallel_s (serial_s /. parallel_s);
        (name, serial_s, parallel_s))
      (artifact_specs ~points:400 ~trials:200)
  in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"jobs\": %d,\n  \"artifacts\": [\n" jobs;
  List.iteri
    (fun i (name, serial_s, parallel_s) ->
      Printf.fprintf oc
        "    { \"name\": %S, \"serial_s\": %.6f, \"parallel_s\": %.6f, \
         \"speedup\": %.4f }%s\n"
        name serial_s parallel_s
        (serial_s /. parallel_s)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Kernel-vs-direct artifact pairs                                     *)

(* The n-scan artifacts evaluated both ways: the streaming kernel
   (what the library now runs) against the pre-kernel point-wise
   rebuild above.  [scale] divides the grid sizes so the smoke target
   stays cheap; the wall-clock run uses scale 1, where the dense
   envelope scans toward n_max = 4096 at the small-r end. *)
let kernel_specs ~scale =
  let lattice denom points =
    Array.init (max 1 (points / scale)) (fun k -> float_of_int (k + 1) /. denom)
  in
  (* r down to 1/4096: the first useful probe count reaches n_max *)
  let dense = lattice 4096. 512 in
  let sweep_grid = Numerics.Grid.linspace 0.05 6. (max 2 (400 / scale)) in
  [ ( "optimal-n/dense-4096",
      (fun () ->
        Array.iter (fun r -> ignore (optimal_n_direct fig2_scenario ~r)) dense),
      fun () ->
        Array.iter
          (fun r -> ignore (Zeroconf.Optimize.optimal_n fig2_scenario ~r))
          dense );
    ( "lower-envelope/dense-4096",
      (fun () ->
        ignore (Array.map (fun r -> (r, snd (optimal_n_direct fig2_scenario ~r))) dense)),
      fun () ->
        ignore (Zeroconf.Optimize.lower_envelope ~pool:serial_pool fig2_scenario dense)
    );
    ( "fig3-4/optimal-n-sweep",
      (fun () ->
        ignore
          (Exec.Parallel.map_sweep ~pool:serial_pool
             (fun r -> optimal_n_direct fig2_scenario ~r)
             sweep_grid)),
      fun () ->
        ignore
          (Zeroconf.Optimize.optimal_n_sweep ~pool:serial_pool fig2_scenario
             sweep_grid) ) ]

let write_kernel_json path =
  section "Wall-clock kernel vs direct point-wise rebuild (serial)";
  let rows =
    List.map
      (fun (name, direct, kernel) ->
        kernel () (* warm call: populates the per-domain survival memo *);
        let direct_s = wall_time direct in
        let kernel_s = wall_time kernel in
        Printf.printf "  %-26s direct %8.4f s   kernel %8.4f s   speedup %.1fx\n%!"
          name direct_s kernel_s (direct_s /. kernel_s);
        (name, direct_s, kernel_s))
      (kernel_specs ~scale:1)
  in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"n_max\": 4096,\n  \"artifacts\": [\n";
  List.iteri
    (fun i (name, direct_s, kernel_s) ->
      Printf.fprintf oc
        "    { \"name\": %S, \"direct_s\": %.6f, \"kernel_s\": %.6f, \
         \"speedup\": %.4f }%s\n"
        name direct_s kernel_s
        (direct_s /. kernel_s)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Batched vs scalar query execution                                   *)

(* Repeated-scenario workloads where batching amortizes backend work:
   the per-n figure series share each r-column's kernel cursor, and the
   tradeoff columns merge their cost and error sweeps onto one cursor. *)
let batch_specs ~points =
  let module Q = Engine.Query in
  let grid = Numerics.Grid.linspace 0.05 6. points in
  let ns = Array.init 64 (fun i -> i + 1) in
  [ ( "fig2/cost-series-n1-8",
      Array.init 8 (fun i ->
          Q.r_sweep Q.Mean_cost fig2_scenario ~n:(i + 1) ~rs:grid) );
    ( "fig5/error-series-n1-8",
      Array.init 8 (fun i ->
          Q.r_sweep Q.Log10_error fig2_scenario ~n:(i + 1) ~rs:grid) );
    ( "tradeoff/columns-n64",
      Array.append
        (Array.map (fun r -> Q.n_sweep Q.Mean_cost fig2_scenario ~ns ~r) grid)
        (Array.map (fun r -> Q.n_sweep Q.Log10_error fig2_scenario ~ns ~r) grid)
    ) ]

let write_batch_json path =
  section "Wall-clock batched vs scalar query evaluation (serial, cache off)";
  let was = Engine.Cache.enabled () in
  Engine.Cache.set_enabled false;
  Fun.protect ~finally:(fun () -> Engine.Cache.set_enabled was) @@ fun () ->
  let rows =
    List.map
      (fun (name, queries) ->
        (* pinned to the serial pool: this artifact isolates batch
           amortization; parallel scaling is BENCH_parallel.json's job *)
        ignore (Engine.Executor.eval_batch ~pool:serial_pool queries)
        (* warm call: populates the per-domain survival memo *);
        let scalar_s =
          wall_time (fun () ->
              Array.iter
                (fun q -> ignore (Engine.Executor.eval ~pool:serial_pool q))
                queries)
        in
        let batched_s =
          wall_time (fun () ->
              ignore (Engine.Executor.eval_batch ~pool:serial_pool queries))
        in
        Printf.printf
          "  %-26s scalar %8.4f s   batched %8.4f s   speedup %.2fx\n%!" name
          scalar_s batched_s (scalar_s /. batched_s);
        (name, Array.length queries, scalar_s, batched_s))
      (batch_specs ~points:400)
  in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"artifacts\": [\n";
  List.iteri
    (fun i (name, queries, scalar_s, batched_s) ->
      Printf.fprintf oc
        "    { \"name\": %S, \"queries\": %d, \"scalar_s\": %.6f, \
         \"batched_s\": %.6f, \"speedup\": %.4f }%s\n"
        name queries scalar_s batched_s
        (scalar_s /. batched_s)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

let smoke () =
  (* force a genuinely multi-domain pool even on a 1-core host *)
  let pool2 = Exec.Pool.create 2 in
  List.iter
    (fun (name, body) ->
      body serial_pool;
      body pool2;
      Printf.printf "smoke ok: %s\n" name)
    (artifact_specs ~points:8 ~trials:3);
  let grid = Numerics.Grid.linspace 0.05 6. 8 in
  let serial = Zeroconf.Optimize.optimal_n_sweep ~pool:serial_pool fig2_scenario grid in
  let parallel = Zeroconf.Optimize.optimal_n_sweep ~pool:pool2 fig2_scenario grid in
  assert (serial = parallel);
  Exec.Pool.shutdown pool2;
  print_endline "smoke ok: parallel sweep bit-identical to serial";
  (* kernel/direct agreement: the streaming scan must reproduce the
     point-wise rebuild bit for bit on every pair artifact *)
  List.iter
    (fun (name, _direct, kernel) ->
      kernel ();
      Printf.printf "smoke ok: %s (kernel)\n" name)
    (kernel_specs ~scale:64);
  Array.iter
    (fun r ->
      assert (optimal_n_direct fig2_scenario ~r
              = Zeroconf.Optimize.optimal_n fig2_scenario ~r))
    (Numerics.Grid.linspace 0.02 6. 16);
  List.iter
    (fun (n, r) ->
      assert (Zeroconf.Kernel.cost_at fig2_scenario ~n ~r
              = Zeroconf.Cost.mean fig2_scenario ~n ~r);
      assert (Zeroconf.Kernel.error_probability_at fig2_scenario ~n ~r
              = Zeroconf.Reliability.error_probability fig2_scenario ~n ~r);
      assert (Zeroconf.Kernel.log10_error_at fig2_scenario ~n ~r
              = Zeroconf.Reliability.log10_error_probability fig2_scenario ~n ~r))
    [ (1, 0.3); (4, 2.); (8, 0.7); (64, 1.1); (512, 0.05) ];
  print_endline "smoke ok: kernel scans bit-identical to direct evaluation";
  (* query engine: the planner's default route must reproduce the
     direct evaluation bit for bit, and the crosscheck must hold all
     deterministic routes within 1e-9 on every preset *)
  let module Q = Engine.Query in
  let module A = Engine.Answer in
  let planner_value qty p ~n ~r =
    A.scalar (Engine.Executor.eval (Q.point qty p ~n ~r)).A.points.(0)
  in
  List.iter
    (fun (_, p) ->
      List.iter
        (fun (n, r) ->
          assert (planner_value Q.Mean_cost p ~n ~r = Zeroconf.Cost.mean p ~n ~r);
          assert (planner_value Q.Error_probability p ~n ~r
                  = Zeroconf.Reliability.error_probability p ~n ~r))
        [ (1, 0.5); (4, 2.); (8, 0.7) ])
    Zeroconf.Params.presets;
  print_endline "smoke ok: planner routes bit-identical to direct evaluation";
  List.iter
    (fun (name, p) ->
      let rep = Engine.Crosscheck.run ~trials:500 (Q.point Q.Mean_cost p ~n:4 ~r:2.) in
      assert (List.length rep.Engine.Crosscheck.answers = 4);
      assert (rep.Engine.Crosscheck.max_rel_divergence <= 1e-9);
      Printf.printf "smoke ok: crosscheck %s (max divergence %.2e)\n" name
        rep.Engine.Crosscheck.max_rel_divergence)
    Zeroconf.Params.presets;
  (* batched execution: values bitwise equal to scalar evaluation at
     any pool size, and a warm cache serves the whole workload without
     a single backend eval *)
  let grid8 = Numerics.Grid.linspace 0.05 6. 8 in
  let ns8 = Array.init 8 (fun i -> i + 1) in
  let workload =
    Array.concat
      [ Array.init 4 (fun i ->
            Q.r_sweep Q.Mean_cost fig2_scenario ~n:(i + 1) ~rs:grid8);
        Array.map (fun r -> Q.n_sweep Q.Log10_error fig2_scenario ~ns:ns8 ~r) grid8;
        [| Q.point Q.Cost_variance fig2_scenario ~n:4 ~r:2.;
           Q.point
             ~accuracy:(Q.Sampled { trials = 200; seed = 7 })
             Q.Mean_cost fig2_scenario ~n:3 ~r:1. |] ]
  in
  let cold = Engine.Cache.create () in
  let batched = Engine.Executor.eval_batch ~cache:cold workload in
  let scalar =
    Array.map
      (fun q -> Engine.Executor.eval ~cache:(Engine.Cache.create ()) q)
      workload
  in
  Array.iter2
    (fun (a : A.t) (b : A.t) -> assert (a.A.points = b.A.points))
    batched scalar;
  let pool2 = Exec.Pool.create 2 in
  let batched_par =
    Engine.Executor.eval_batch ~pool:pool2 ~cache:(Engine.Cache.create ())
      workload
  in
  Exec.Pool.shutdown pool2;
  Array.iter2
    (fun (a : A.t) (b : A.t) -> assert (a.A.points = b.A.points))
    batched batched_par;
  print_endline "smoke ok: batched evaluation bit-identical to scalar";
  let warm = Engine.Executor.eval_batch ~cache:cold workload in
  Array.iter2
    (fun (w : A.t) (c : A.t) ->
      assert w.A.cached;
      assert (w.A.points = c.A.points))
    warm batched;
  let s = Engine.Cache.stats cold in
  assert (s.Engine.Cache.hits = Array.length workload);
  assert (s.Engine.Cache.misses = Array.length workload);
  print_endline "smoke ok: warm cache serves the workload with zero backend evals"

let run_benchmarks () =
  section "Bechamel timings (per run, OLS estimate)";
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.4) ~stabilize:true
      ~compaction:false ()
  in
  let raw =
    Benchmark.all cfg
      Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"" [ bench_tests; parallel_pair_tests () ])
  in
  let ols =
    Analyze.all
      (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) ols [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  let table =
    Output.Table.create
      ~columns:
        [ ("benchmark", Output.Table.Left); ("time/run", Output.Table.Right);
          ("r^2", Output.Table.Right) ]
  in
  List.iter
    (fun (name, result) ->
      let estimate =
        match Analyze.OLS.estimates result with
        | Some (e :: _) ->
            if e > 1e9 then Printf.sprintf "%.3f s" (e /. 1e9)
            else if e > 1e6 then Printf.sprintf "%.3f ms" (e /. 1e6)
            else if e > 1e3 then Printf.sprintf "%.3f us" (e /. 1e3)
            else Printf.sprintf "%.1f ns" e
        | Some [] | None -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square result with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "n/a"
      in
      Output.Table.add_row table [ name; estimate; r2 ])
    rows;
  print_string (Output.Table.to_text table)

let () =
  let args = Array.to_list Sys.argv in
  let rec jobs_of = function
    | "--jobs" :: value :: _ -> int_of_string_opt value
    | _ :: rest -> jobs_of rest
    | [] -> None
  in
  (match jobs_of args with Some jobs -> Exec.Pool.set_jobs jobs | None -> ());
  let rec json_of = function
    | "--json" :: next :: _ when String.length next > 0 && next.[0] <> '-' ->
        Some next
    | "--json" :: _ -> Some "BENCH_parallel.json"
    | _ :: rest -> json_of rest
    | [] -> None
  in
  if List.mem "--smoke" args then smoke ()
  else
    match json_of args with
    | Some path ->
        write_parallel_json path;
        write_kernel_json "BENCH_kernel.json";
        write_batch_json "BENCH_batch.json"
    | None ->
        let skip_timing = List.mem "--no-timing" args in
        let skip_repro = List.mem "--no-repro" args in
        if not skip_repro then reproduce_all ();
        if not skip_timing then run_benchmarks ()
