(* A single lint finding: where, which rule, what was flagged, and how
   to fix it.  Everything is plain strings/ints so the reporters (human
   and JSON) need no further context. *)

type t = {
  rule : string;  (** rule id: "R1".."R5", or "E0" for parse failures *)
  file : string;  (** repo-relative path, '/'-separated *)
  line : int;     (** 1-based; 0 when the finding is file-level *)
  col : int;      (** 0-based column *)
  ident : string; (** the flagged construct, e.g. "Random.self_init" *)
  message : string;
  hint : string;  (** one-line fix hint *)
}

let v ~rule ~file ~line ~col ~ident ~message ~hint =
  { rule; file; line; col; ident; message; hint }

(* Stable report order: by file, then position, then rule. *)
let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_human t =
  Printf.sprintf "%s:%d:%d: [%s] %s (fix: %s)" t.file t.line t.col t.rule
    t.message t.hint

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  Printf.sprintf
    "{\"rule\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"ident\":\"%s\",\"message\":\"%s\",\"hint\":\"%s\"}"
    (json_escape t.rule) (json_escape t.file) t.line t.col
    (json_escape t.ident) (json_escape t.message) (json_escape t.hint)
