(* The rule catalogue.  Purely syntactic: sources are parsed with the
   compiler's own parser (compiler-libs) and walked with
   [Ast_iterator]; rules match on flattened identifier paths
   ("Random.self_init", "/.", "Domain.DLS.get", ...) plus the
   repo-relative path of the file under scan.

   Known limit: a module alias ([module F = Float]) or a local [let log]
   defeats path matching in both directions.  The codebase does not use
   those spellings for the banned names, and the allowlist is the escape
   hatch if one ever becomes necessary; see DESIGN.md "Static analysis".

   The catalogue:
   - R1 float hygiene: no raw [log]/[exp]/[**]/[/.] in the
     probability-carrying modules — those must spell the operation
     through [Numerics.Safe_float] / [Numerics.Logspace] so every
     NaN-capable primitive on the Eq. 3/4 path has one audit point.
   - R2 determinism: no [Random.*] anywhere (RNG only via
     [Numerics.Rng]); no wall-clock reads outside [bench/].
   - R3 concurrency containment: [Domain]/[Atomic]/[Mutex]/[Condition]/
     [Thread] only under [lib/exec/].
   - R4 I/O containment: no stdout/stderr writes inside [lib/] except
     [lib/output/].
   - R5 interface discipline: every [lib] module has an [.mli]; no
     [Obj.magic] family anywhere. *)

(* -- path classification ------------------------------------------- *)

let normalize path =
  let path =
    if String.length path > 2 && String.sub path 0 2 = "./" then
      String.sub path 2 (String.length path - 2)
    else path
  in
  String.concat "/" (String.split_on_char '\\' path)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let in_lib path = starts_with ~prefix:"lib/" path
let in_exec path = starts_with ~prefix:"lib/exec/" path
let in_output path = starts_with ~prefix:"lib/output/" path
let in_bench path = starts_with ~prefix:"bench/" path

(* The probability-carrying modules: everything that assembles Eq. 1-4
   quantities (pi_i, Eq. 3 cost, Eq. 4 error probability) out of raw
   floats.  Extend this list as new modules join that path; the
   numerics substrate itself (Safe_float, Logspace) is the sanctioned
   home of the primitives and is deliberately absent. *)
let probability_modules =
  [ "lib/core/probes.ml";
    "lib/core/cost.ml";
    "lib/core/kernel.ml";
    "lib/core/optimize.ml";
    "lib/core/attempts.ml";
    "lib/core/reliability.ml";
    "lib/core/rare.ml";
    (* the engine pipeline: plans fingerprint survival values, the
       executor routes Eq. 3/4 answers, the cache indexes them — none
       may re-derive probabilities with raw primitives *)
    "lib/engine/plan.ml";
    "lib/engine/executor.ml";
    "lib/engine/cache.ml" ]

let is_probability_module path = List.mem path probability_modules

(* -- banned identifier tables -------------------------------------- *)

let r1_banned =
  [ "log"; "exp"; "log10"; "log1p"; "log2"; "expm1"; "**"; "/.";
    "Float.log"; "Float.exp"; "Float.log10"; "Float.log1p"; "Float.log2";
    "Float.expm1"; "Float.pow"; "Stdlib.log"; "Stdlib.exp"; "Stdlib.log10";
    "Stdlib.expm1"; "Stdlib.**"; "Stdlib./." ]

let r2_clock = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]

let r3_heads = [ "Domain"; "Atomic"; "Mutex"; "Condition"; "Thread" ]

let r4_banned =
  [ "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_bytes"; "print_int"; "print_float"; "prerr_string";
    "prerr_endline"; "prerr_newline"; "prerr_char"; "prerr_bytes";
    "prerr_int"; "prerr_float"; "stdout"; "stderr"; "Printf.printf";
    "Printf.eprintf"; "Format.printf"; "Format.eprintf";
    "Format.std_formatter"; "Format.err_formatter"; "Stdlib.print_string";
    "Stdlib.print_endline"; "Stdlib.print_newline"; "Stdlib.stdout";
    "Stdlib.stderr"; "Fmt.pr"; "Fmt.epr"; "Fmt.stdout"; "Fmt.stderr" ]

let r5_obj = [ "Obj.magic"; "Obj.repr"; "Obj.obj" ]

(* -- per-identifier checks ----------------------------------------- *)

let head ident =
  match String.index_opt ident '.' with
  | Some i -> String.sub ident 0 i
  | None -> ident

let check_ident ~path ident : (string * string * string) option =
  (* returns (rule, message, hint) *)
  if is_probability_module path && List.mem ident r1_banned then
    Some
      ( "R1",
        Printf.sprintf
          "raw float primitive `%s` in a probability-carrying module" ident,
        "spell it via Numerics.Safe_float.{log,exp,pow,div} or \
         Numerics.Logspace" )
  else if head ident = "Random" then
    Some
      ( "R2",
        (if ident = "Random.self_init" then
           "`Random.self_init` makes runs unreplayable"
         else
           Printf.sprintf "`%s` uses the global Random state" ident),
        "draw from a seeded, splittable Numerics.Rng.t threaded from the \
         caller" )
  else if List.mem ident r2_clock && not (in_bench path) then
    Some
      ( "R2",
        Printf.sprintf "wall-clock read `%s` outside bench/" ident,
        "timing belongs in bench/ or behind a reviewed provenance entry in \
         tools/lint/allow.sexp" )
  else if List.mem (head ident) r3_heads && not (in_exec path) then
    Some
      ( "R3",
        Printf.sprintf "`%s` leaks shared-memory concurrency outside \
                        lib/exec" ident,
        "route parallelism through Exec.Pool / Exec.Parallel, or add a \
         reviewed allow.sexp entry" )
  else if in_lib path && (not (in_output path)) && List.mem ident r4_banned
  then
    Some
      ( "R4",
        Printf.sprintf "`%s` writes to the console from inside lib/" ident,
        "return the string, or emit through lib/output (Output.Emit) or \
         Logs" )
  else if List.mem ident r5_obj then
    Some
      ( "R5",
        Printf.sprintf "`%s` defeats the type system" ident,
        "restructure the types; Obj is never sanctioned in this repo" )
  else None

(* -- AST walk ------------------------------------------------------ *)

let findings_of_structure ~path structure =
  let acc = ref [] in
  let add ~loc ~ident (rule, message, hint) =
    let pos = loc.Location.loc_start in
    acc :=
      Finding.v ~rule ~file:path ~line:pos.Lexing.pos_lnum
        ~col:(pos.Lexing.pos_cnum - pos.Lexing.pos_bol)
        ~ident ~message ~hint
      :: !acc
  in
  let visit_path ~loc txt =
    let ident = String.concat "." (Longident.flatten txt) in
    match check_ident ~path ident with
    | Some hit -> add ~loc ~ident hit
    | None -> ()
  in
  let open Ast_iterator in
  let expr this (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> visit_path ~loc txt
    | Pexp_new { txt; loc } -> visit_path ~loc txt
    | _ -> ());
    default_iterator.expr this e
  in
  let module_expr this (m : Parsetree.module_expr) =
    (match m.pmod_desc with
    | Pmod_ident { txt; loc } -> visit_path ~loc txt
    | _ -> ());
    default_iterator.module_expr this m
  in
  let iterator = { default_iterator with expr; module_expr } in
  iterator.structure iterator structure;
  List.sort Finding.compare !acc

let parse_error_finding ~path exn =
  let message =
    match Location.error_of_exn exn with
    | Some (`Ok _) | Some `Already_displayed -> "source failed to parse"
    | None -> Printexc.to_string exn
  in
  [ Finding.v ~rule:"E0" ~file:path ~line:0 ~col:0 ~ident:"<parse>"
      ~message:("unparsable source: " ^ message)
      ~hint:"fix the syntax error; the lint only certifies what it can parse"
  ]

(* [path] is the repo-relative logical path used for rule scoping;
   [source] is the file contents.  Splitting the two keeps the rules
   testable on synthetic sources. *)
let lint_source ~path source =
  let path = normalize path in
  if Filename.check_suffix path ".mli" then []
  else
    let lexbuf = Lexing.from_string source in
    Location.init lexbuf path;
    match Parse.implementation lexbuf with
    | structure -> findings_of_structure ~path structure
    | exception exn -> parse_error_finding ~path exn

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* -- file discovery and file-level checks -------------------------- *)

let rec collect_files acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left (fun acc e -> collect_files acc (Filename.concat path e)) acc
  else if
    Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then normalize path :: acc
  else acc

let collect roots =
  List.rev (List.fold_left collect_files [] roots) |> List.sort String.compare

(* R5, file level: every module under lib/ carries an interface. *)
let missing_mli_findings files =
  let files = List.map normalize files in
  List.filter_map
    (fun f ->
      if
        in_lib f
        && Filename.check_suffix f ".ml"
        && not (List.mem (f ^ "i") files)
      then
        Some
          (Finding.v ~rule:"R5" ~file:f ~line:0 ~col:0 ~ident:"<missing-mli>"
             ~message:"lib module without an .mli interface"
             ~hint:"add an .mli; lib surfaces are sealed by interface")
      else None)
    files

let lint_files files =
  let ast_findings =
    List.concat_map (fun f -> lint_source ~path:f (read_file f)) files
  in
  List.sort Finding.compare (ast_findings @ missing_mli_findings files)
