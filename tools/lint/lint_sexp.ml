(* Minimal s-expression reader for allow.sexp.  Supports atoms, quoted
   strings with the usual escapes, nested lists, and ';' line comments.
   Deliberately dependency-free: the lint must build from a bare
   compiler switch. *)

type t = Atom of string | List of t list

exception Parse_error of string

let parse_string (src : string) : t list =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_blank () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_blank ()
    | Some ';' ->
        while !pos < n && src.[!pos] <> '\n' do
          advance ()
        done;
        skip_blank ()
    | _ -> ()
  in
  let read_string () =
    advance () (* opening quote *);
    let b = Buffer.create 32 in
    let rec go () =
      if !pos >= n then raise (Parse_error "unterminated string")
      else
        match src.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            if !pos >= n then raise (Parse_error "unterminated escape")
            else begin
              (match src.[!pos] with
              | 'n' -> Buffer.add_char b '\n'
              | 't' -> Buffer.add_char b '\t'
              | c -> Buffer.add_char b c);
              advance ();
              go ()
            end
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let read_atom () =
    let start = !pos in
    let stop = ref false in
    while not !stop do
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' | '"') | None ->
          stop := true
      | Some _ -> advance ()
    done;
    String.sub src start (!pos - start)
  in
  let rec read_sexp () =
    skip_blank ();
    match peek () with
    | None -> raise (Parse_error "unexpected end of input")
    | Some '(' ->
        advance ();
        let items = ref [] in
        let rec items_loop () =
          skip_blank ();
          match peek () with
          | Some ')' -> advance ()
          | None -> raise (Parse_error "unclosed list")
          | Some _ ->
              items := read_sexp () :: !items;
              items_loop ()
        in
        items_loop ();
        List (List.rev !items)
    | Some ')' -> raise (Parse_error "unexpected ')'")
    | Some '"' -> Atom (read_string ())
    | Some _ -> Atom (read_atom ())
  in
  let out = ref [] in
  let rec top () =
    skip_blank ();
    if !pos < n then begin
      out := read_sexp () :: !out;
      top ()
    end
  in
  top ();
  List.rev !out
