(* The reviewed-exception list.  Each entry names a (rule, file, ident)
   triple plus a mandatory justification; the lint exits non-zero on any
   finding NOT covered here, so the file is the single audit point for
   every deliberate deviation from the rule catalogue. *)

type entry = {
  rule : string;
  file : string;
  ident : string;  (** matches the finding's ident exactly or as a
                       dotted-path prefix: "Domain.DLS" also covers
                       "Domain.DLS.get" *)
  why : string;    (** mandatory, non-empty justification *)
}

exception Malformed of string

let field name fields =
  let rec go = function
    | [] -> None
    | Lint_sexp.List [ Lint_sexp.Atom k; Lint_sexp.Atom v ] :: _ when k = name
      ->
        Some v
    | _ :: rest -> go rest
  in
  go fields

let entry_of_sexp = function
  | Lint_sexp.List fields ->
      let get name =
        match field name fields with
        | Some v -> v
        | None -> raise (Malformed ("allow entry missing (" ^ name ^ " ...)"))
      in
      let e =
        { rule = get "rule"; file = get "file"; ident = get "ident";
          why = get "why" }
      in
      if String.trim e.why = "" then
        raise (Malformed "allow entry has an empty (why ...) justification");
      e
  | Lint_sexp.Atom a -> raise (Malformed ("expected an allow entry, got " ^ a))

let of_string src =
  try List.map entry_of_sexp (Lint_sexp.parse_string src)
  with Lint_sexp.Parse_error msg -> raise (Malformed msg)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let ident_matches ~allowed ~found =
  String.equal allowed found
  || String.length found > String.length allowed
     && String.sub found 0 (String.length allowed + 1) = allowed ^ "."

let permits entries (f : Finding.t) =
  List.exists
    (fun e ->
      String.equal e.rule f.rule
      && String.equal e.file f.file
      && ident_matches ~allowed:e.ident ~found:f.ident)
    entries

(* Entries that covered no finding this run: surfaced as a warning so
   the allowlist shrinks as the code improves instead of fossilising. *)
let unused entries findings =
  List.filter
    (fun e ->
      not
        (List.exists
           (fun (f : Finding.t) ->
             String.equal e.rule f.rule
             && String.equal e.file f.file
             && ident_matches ~allowed:e.ident ~found:f.ident)
           findings))
    entries
