;; Reviewed exceptions to the zeroconf-lint rule catalogue.
;;
;; Policy (DESIGN.md "Static analysis"): every entry names the exact
;; (rule, file, ident) it waives and carries a written justification.
;; An entry whose ident is a dotted path also covers deeper accesses
;; ("Domain.DLS" covers "Domain.DLS.get").  The lint warns about
;; entries that no longer match anything — delete those, never keep
;; them "just in case".  Adding an entry requires the same review a
;; code change gets: say why the rule's risk does not apply.

((rule R3) (file lib/core/kernel.ml) (ident Domain.DLS)
 (why "per-domain survival memo: Domain.DLS is exactly the mechanism \
       that keeps the memo un-shared across Exec.Pool domains, so the \
       kernel stays lock-free and bit-identical at any --jobs; moving \
       it into lib/exec would couple the numeric kernel to the pool"))

((rule R2) (file lib/engine/backends.ml) (ident Unix.gettimeofday)
 (why "wall-clock provenance stamp (wall_ns) on query answers; never \
       feeds a numeric result, only the Answer provenance record that \
       crosscheck reports display"))

((rule R2) (file lib/engine/cache.ml) (ident Unix.gettimeofday)
 (why "insertion timestamp (stored_since observability in Cache.stats); \
       cache hits are keyed on the structural plan key alone, so the \
       clock can never select or alter an answer — determinism is \
       untouched"))
