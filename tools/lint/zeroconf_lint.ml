(* zeroconf-lint: repo-specific invariant checker.

   Usage: zeroconf-lint [--json] [--allow FILE] [PATH ...]

   Scans every .ml/.mli under the given paths (default: lib bin bench,
   resolved from the current directory, which must be the repo root),
   applies the R1-R5 rule catalogue from [Rules], subtracts the reviewed
   exceptions in the allowlist, and exits 1 when any new finding
   remains.  [--json] emits a machine-readable report on stdout. *)

open Lint_core

let usage = "zeroconf-lint [--json] [--allow FILE] [PATH ...]"

let () =
  let json = ref false in
  let allow_file = ref "" in
  let paths = ref [] in
  let spec =
    [ ("--json", Arg.Set json, " emit findings as JSON");
      ( "--allow",
        Arg.Set_string allow_file,
        "FILE reviewed-exception list (sexp)" ) ]
  in
  Arg.parse (Arg.align spec) (fun p -> paths := p :: !paths) usage;
  let roots =
    match List.rev !paths with [] -> [ "lib"; "bin"; "bench" ] | ps -> ps
  in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  if missing <> [] then begin
    prerr_endline
      ("zeroconf-lint: no such path: " ^ String.concat ", " missing
     ^ " (run from the repo root)");
    exit 2
  end;
  let allow =
    if !allow_file = "" then []
    else
      try Allowlist.load !allow_file
      with Allowlist.Malformed msg ->
        prerr_endline ("zeroconf-lint: bad allowlist: " ^ msg);
        exit 2
  in
  let files = Rules.collect roots in
  let all = Rules.lint_files files in
  let fresh = List.filter (fun f -> not (Allowlist.permits allow f)) all in
  let waived = List.length all - List.length fresh in
  let stale = Allowlist.unused allow all in
  if !json then begin
    let items = List.map Finding.to_json fresh in
    Printf.printf
      "{\"findings\":[%s],\"files_scanned\":%d,\"waived\":%d,\"stale_allow_entries\":%d}\n"
      (String.concat "," items) (List.length files) waived (List.length stale)
  end
  else begin
    List.iter (fun f -> print_endline (Finding.to_human f)) fresh;
    List.iter
      (fun (e : Allowlist.entry) ->
        Printf.eprintf
          "zeroconf-lint: stale allow entry (%s %s %s) matched nothing — \
           delete it\n"
          e.rule e.file e.ident)
      stale;
    Printf.printf "zeroconf-lint: %d file(s), %d finding(s), %d waived\n"
      (List.length files) (List.length fresh) waived
  end;
  exit (if fresh = [] then 0 else 1)
