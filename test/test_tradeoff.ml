module T = Engine.Tradeoff
module Params = Zeroconf.Params

let fig2 = Params.figure2
let front = T.front ~n_max:8 ~r_points:100 ~r_max:6. fig2

let test_front_nonempty_and_sorted () =
  Alcotest.(check bool) "non-empty" true (front <> []);
  let rec sorted = function
    | (a : T.design) :: (b :: _ as rest) -> a.T.cost <= b.T.cost && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by cost" true (sorted front)

let test_front_error_strictly_decreasing () =
  let rec strict = function
    | (a : T.design) :: (b :: _ as rest) ->
        a.T.log10_error > b.T.log10_error && strict rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly improving reliability" true (strict front)

let test_front_members_undominated () =
  let all = T.enumerate ~n_max:8 ~r_points:100 ~r_max:6. fig2 in
  List.iter
    (fun (f : T.design) ->
      List.iter
        (fun (d : T.design) ->
          let dominates =
            (d.T.cost < f.T.cost && d.T.log10_error <= f.T.log10_error)
            || (d.T.cost <= f.T.cost && d.T.log10_error < f.T.log10_error)
          in
          if dominates then
            Alcotest.failf "front member (n=%d, r=%g) dominated by (n=%d, r=%g)"
              f.T.n f.T.r d.T.n d.T.r)
        all)
    (* spot-check a handful of front members against everything *)
    (List.filteri (fun i _ -> i mod 17 = 0) front)

let test_paper_tension_on_front () =
  (* the paper's claim: the cheapest design is not the most reliable *)
  match (front, List.rev front) with
  | cheapest :: _, most_reliable :: _ ->
      Alcotest.(check bool) "cheapest is least reliable end" true
        (cheapest.T.log10_error > most_reliable.T.log10_error);
      Alcotest.(check bool) "reliability costs money" true
        (most_reliable.T.cost > cheapest.T.cost)
  | _ -> Alcotest.fail "degenerate front"

let test_global_optimum_on_front () =
  (* the cost-optimal design must be the front's cheap end (up to grid
     resolution) *)
  let opt = Zeroconf.Optimize.global_optimum fig2 in
  match front with
  | cheapest :: _ ->
      Alcotest.(check bool)
        (Printf.sprintf "front cheap end %.3f ~ global optimum %.3f"
           cheapest.T.cost opt.Zeroconf.Optimize.cost)
        true
        (cheapest.T.cost < opt.Zeroconf.Optimize.cost *. 1.01)
  | [] -> Alcotest.fail "empty front"

let test_enumerate_size () =
  let designs = T.enumerate ~n_max:5 ~r_points:40 ~r_max:4. fig2 in
  Alcotest.(check int) "n_max * r_points" 200 (List.length designs)

let test_knee_is_interior () =
  match T.knee front with
  | None -> Alcotest.fail "expected a knee on a substantial front"
  | Some k ->
      let first = List.hd front and last = List.hd (List.rev front) in
      Alcotest.(check bool) "knee differs from the cheap end" true (k <> first);
      Alcotest.(check bool) "knee differs from the reliable end" true (k <> last)

let test_knee_degenerate_fronts () =
  Alcotest.(check bool) "no knee on empty" true (T.knee [] = None);
  let d = { T.n = 1; r = 1.; cost = 1.; log10_error = -1. } in
  Alcotest.(check bool) "no knee on short fronts" true
    (T.knee [ d ] = None && T.knee [ d; d ] = None)

let test_guards () =
  Alcotest.check_raises "n_max = 0"
    (Invalid_argument "Tradeoff.enumerate: n_max < 1") (fun () ->
      ignore (T.enumerate ~n_max:0 fig2))

let () =
  Alcotest.run "tradeoff"
    [ ( "front structure",
        [ Alcotest.test_case "sorted" `Quick test_front_nonempty_and_sorted;
          Alcotest.test_case "strictly improving" `Quick
            test_front_error_strictly_decreasing;
          Alcotest.test_case "undominated" `Quick test_front_members_undominated;
          Alcotest.test_case "enumerate size" `Quick test_enumerate_size ] );
      ( "paper claims",
        [ Alcotest.test_case "cost/reliability tension" `Quick
            test_paper_tension_on_front;
          Alcotest.test_case "optimum at cheap end" `Quick
            test_global_optimum_on_front ] );
      ( "knee",
        [ Alcotest.test_case "interior" `Quick test_knee_is_interior;
          Alcotest.test_case "degenerate" `Quick test_knee_degenerate_fronts;
          Alcotest.test_case "guards" `Quick test_guards ] ) ]
