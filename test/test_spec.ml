module Spec = Zeroconf.Spec

let test_draft_constants () =
  Alcotest.(check int) "PROBE_NUM" 4 Spec.probe_num;
  Alcotest.(check (float 0.)) "PROBE_MIN" 1. Spec.probe_min;
  Alcotest.(check (float 0.)) "PROBE_MAX" 2. Spec.probe_max;
  Alcotest.(check int) "MAX_CONFLICTS" 10 Spec.max_conflicts;
  Alcotest.(check (float 0.)) "RATE_LIMIT_INTERVAL" 60. Spec.rate_limit_interval;
  Alcotest.(check int) "ANNOUNCE_NUM" 2 Spec.announce_num

let test_model_parameters () =
  let n, r = Spec.model_parameters () in
  Alcotest.(check int) "n = PROBE_NUM" 4 n;
  Alcotest.(check (float 1e-12)) "r = mean spacing" 1.5 r

let test_simulator_config_faithful () =
  let p = Zeroconf.Params.figure2 in
  let c = Spec.simulator_config p in
  Alcotest.(check int) "probes" 4 c.Netsim.Newcomer.probes;
  Alcotest.(check bool) "jittered" true (c.Netsim.Newcomer.listen_jitter <> None);
  Alcotest.(check bool) "immediate abort" true c.Netsim.Newcomer.immediate_abort;
  Alcotest.(check bool) "avoids failed" true c.Netsim.Newcomer.avoid_failed;
  Alcotest.(check (option (pair int (float 0.)))) "rate limited"
    (Some (10, 60.)) c.Netsim.Newcomer.rate_limit;
  (* costs flow from the scenario, not hardcoded zeros *)
  Alcotest.(check (float 0.)) "probe cost" p.Zeroconf.Params.probe_cost
    c.Netsim.Newcomer.probe_cost;
  Alcotest.(check (float 0.)) "error cost" p.Zeroconf.Params.error_cost
    c.Netsim.Newcomer.error_cost

(* the jitter in action: timing spreads while the fixed-r run is exact *)
let one_way = Dist.Families.deterministic ~delay:0.01 ()

let config_times config seed trials =
  let outcomes =
    Netsim.Scenario.run_detailed ~loss:0. ~one_way ~occupied:0 ~pool_size:64
      ~config ~trials ~rng:(Numerics.Rng.create seed) ()
  in
  Array.map (fun (o : Netsim.Metrics.outcome) -> o.Netsim.Metrics.config_time) outcomes

let test_jitter_spreads_config_time () =
  let fixed =
    Netsim.Newcomer.drm_config ~n:4 ~r:1.5 ~probe_cost:0. ~error_cost:0.
  in
  let jittered =
    { fixed with Netsim.Newcomer.listen_jitter = Some (1., 2.) }
  in
  let fixed_times = config_times fixed 1 60 in
  let jitter_times = config_times jittered 1 60 in
  let s_fixed = Numerics.Stats.summarize fixed_times in
  let s_jitter = Numerics.Stats.summarize jitter_times in
  Alcotest.(check (float 1e-9)) "fixed is deterministic" 0.
    s_fixed.Numerics.Stats.std;
  Alcotest.(check bool) "jittered varies" true (s_jitter.Numerics.Stats.std > 0.05);
  (* each jittered run is within [n*min, n*max] *)
  Alcotest.(check bool) "within draft bounds" true
    (s_jitter.Numerics.Stats.min >= 4. && s_jitter.Numerics.Stats.max <= 8.);
  (* and the mean sits near the fixed-r model's n * 1.5 *)
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f near 6" s_jitter.Numerics.Stats.mean)
    true
    (Float.abs (s_jitter.Numerics.Stats.mean -. 6.) < 0.3)

let test_jittered_collision_rate_matches_mean_r_model () =
  (* the fixed-r abstraction at r = E[spacing] predicts the jittered
     protocol's collision rate well on a lossy link *)
  let delay = Dist.Families.shifted_exponential ~mass:0.9 ~rate:2. ~delay:0.5 () in
  let p =
    Zeroconf.Params.v ~name:"jitter-check" ~delay ~q:(200. /. 256.)
      ~probe_cost:0. ~error_cost:0.
  in
  let n = 2 and lo = 0.5 and hi = 1.5 in
  let jittered =
    { (Netsim.Newcomer.drm_config ~n ~r:1. ~probe_cost:0. ~error_cost:0.) with
      Netsim.Newcomer.listen_jitter = Some (lo, hi) }
  in
  let outcomes =
    Netsim.Scenario.run_detailed ~loss:0.3163
      (* per-leg loss ~ 1 - sqrt(0.9) would be 0.0513; use the delay's
         own defect through processing instead: keep legs lossless and
         let processing defect carry the loss *)
      ~one_way:(Dist.Families.deterministic ~delay:0.25 ())
      ~processing:(Dist.Families.exponential ~rate:2. ())
      ~occupied:200 ~pool_size:256 ~config:jittered ~trials:4_000
      ~rng:(Numerics.Rng.create 3) ()
  in
  ignore p;
  let agg = Netsim.Metrics.aggregate outcomes in
  (* reference: fixed-r model averaged over the spacing distribution *)
  let leg_keep = 1. -. 0.3163 in
  let mass = leg_keep *. leg_keep in
  let model_delay =
    Dist.Families.shifted_exponential ~mass ~rate:2. ~delay:0.5 ()
  in
  let pm =
    Zeroconf.Params.v ~name:"ref" ~delay:model_delay ~q:(200. /. 256.)
      ~probe_cost:0. ~error_cost:0.
  in
  let averaged =
    Numerics.Integrate.simpson ~n:64
      ~f:(fun r -> Zeroconf.Reliability.error_probability pm ~n ~r)
      lo hi
    /. (hi -. lo)
  in
  let lo_ci, hi_ci = agg.Netsim.Metrics.collision_ci in
  Alcotest.(check bool)
    (Printf.sprintf "averaged model %.4f within widened sim CI [%.4f, %.4f]"
       averaged (lo_ci -. 0.02) (hi_ci +. 0.02))
    true
    (averaged > lo_ci -. 0.02 && averaged < hi_ci +. 0.02)

let () =
  Alcotest.run "spec"
    [ ( "constants",
        [ Alcotest.test_case "draft values" `Quick test_draft_constants;
          Alcotest.test_case "model mapping" `Quick test_model_parameters;
          Alcotest.test_case "simulator mapping" `Quick test_simulator_config_faithful ] );
      ( "jitter",
        [ Alcotest.test_case "spreads timing" `Quick test_jitter_spreads_config_time;
          Alcotest.test_case "mean-r abstraction holds" `Slow
            test_jittered_collision_rate_matches_mean_r_model ] ) ]
