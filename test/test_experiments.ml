(* The per-experiment index of DESIGN.md, checked end to end: every
   figure's data has the paper's qualitative shape, and the numeric
   anchors reported in the paper are reproduced. *)

module E = Engine.Experiments

let check_close ?(tol = 1e-6) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let series fig label =
  List.find (fun (s : E.series) -> s.E.label = label) fig.E.series

let ys (s : E.series) = Array.map snd s.E.points

(* ---------------- Figure 2 ---------------- *)

let fig2 = E.figure2 ~points:120 ()

let test_fig2_has_eight_cost_curves () =
  Alcotest.(check int) "eight series" 8 (List.length fig2.E.series);
  Alcotest.(check (list string)) "labels"
    [ "C_1"; "C_2"; "C_3"; "C_4"; "C_5"; "C_6"; "C_7"; "C_8" ]
    (List.map (fun (s : E.series) -> s.E.label) fig2.E.series)

let minimum arr = Array.fold_left Float.min arr.(0) arr

let test_fig2_n12_invisible_n3_smallest () =
  (* paper: "the functions for n = 1, 2 are not visible, since their
     smallest values are much too large"; and C_3's minimum is lowest *)
  let min_of label = minimum (ys (series fig2 label)) in
  Alcotest.(check bool) "C_1 off the chart" true (min_of "C_1" > 1e6);
  Alcotest.(check bool) "C_2 off the chart" true (min_of "C_2" > 1e4);
  let m3 = min_of "C_3" in
  List.iter
    (fun l ->
      Alcotest.(check bool) (Printf.sprintf "C_3 < %s" l) true (m3 < min_of l))
    [ "C_4"; "C_5"; "C_6"; "C_7"; "C_8" ];
  (* paper's frame: the visible minima lie well under the 100 clip *)
  Alcotest.(check bool) "C_3 minimum visible" true (m3 < 100.)

let test_fig2_curves_dip_then_rise () =
  (* each visible curve has an interior minimum *)
  List.iter
    (fun label ->
      let values = ys (series fig2 label) in
      let n = Array.length values in
      let min_idx = ref 0 in
      Array.iteri (fun i v -> if v < values.(!min_idx) then min_idx := i) values;
      Alcotest.(check bool) (label ^ " has interior minimum") true
        (!min_idx > 0 && !min_idx < n - 1))
    [ "C_3"; "C_4"; "C_5"; "C_6" ]

(* ---------------- Figure 3 ---------------- *)

let fig3 = E.figure3 ~points:150 ()

let test_fig3_step_function_decreasing () =
  let values = ys (series fig3 "N(r)") in
  let ok = ref true in
  for i = 1 to Array.length values - 1 do
    if values.(i) > values.(i - 1) then ok := false
  done;
  Alcotest.(check bool) "non-increasing" true !ok;
  Alcotest.(check bool) "integer-valued" true
    (Array.for_all (fun v -> Float.is_integer v) values)

let test_fig3_never_below_nu () =
  (* on the visible range, N(r) respects the nu = 3 bound of Sec. 4.4 *)
  let values = ys (series fig3 "N(r)") in
  Alcotest.(check bool) "N(r) >= 3 everywhere" true
    (Array.for_all (fun v -> v >= 3.) values)

(* ---------------- Figure 4 ---------------- *)

let fig4 = E.figure4 ~points:150 ()

let test_fig4_envelope_below_each_curve () =
  let env = series fig4 "C_min" in
  Array.iter
    (fun (r, v) ->
      List.iter
        (fun n ->
          Alcotest.(check bool)
            (Printf.sprintf "C_min(%g) <= C_%d" r n)
            true
            (v <= Zeroconf.Cost.mean Zeroconf.Params.figure2 ~n ~r +. 1e-9))
        [ 3; 4; 5; 6; 7; 8 ])
    env.E.points

(* ---------------- Figures 5 and 6 ---------------- *)

let fig5 = E.figure5 ~points:120 ()
let fig6 = E.figure6 ~points:120 ()

let test_fig5_ordering_in_n () =
  (* more probes give lower error for every r *)
  let arrays = List.map ys fig5.E.series in
  let rec pairwise = function
    | a :: (b :: _ as rest) ->
        Array.iteri
          (fun i v ->
            Alcotest.(check bool) "monotone in n" true (b.(i) <= v +. 1e-9))
          a;
        pairwise rest
    | _ -> ()
  in
  pairwise arrays

let test_fig6_envelope_sawtooth_and_bounds () =
  let env = ys (series fig6 "E(N(r), r)") in
  (* the paper: "the error is bounded and stays roughly within the
     limits of [1e-35, 1e-54]" (log10 in [-54, -35]); allow the grid to
     flutter at the very edges *)
  let in_band = Array.map (fun v -> v >= -56. && v <= -33.) env in
  let hits = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 in_band in
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d points in the paper's band" hits (Array.length env))
    true
    (float_of_int hits > 0.9 *. float_of_int (Array.length env));
  (* sawtooth: both rises and falls are present *)
  let rises = ref 0 and falls = ref 0 in
  for i = 1 to Array.length env - 1 do
    if env.(i) > env.(i - 1) +. 1e-9 then incr rises;
    if env.(i) < env.(i - 1) -. 1e-9 then incr falls
  done;
  Alcotest.(check bool) "has upward jumps" true (!rises > 0);
  Alcotest.(check bool) "has decreasing stretches" true (!falls > !rises)

let test_fig6_includes_fig5_series () =
  Alcotest.(check int) "eight curves + envelope" 9 (List.length fig6.E.series)

(* ---------------- Sec. 4.4 / 4.5 / 6 anchors ---------------- *)

let test_sec44_nu_is_three () =
  Alcotest.(check int) "nu = 3" 3 (E.section_44_nu ())

let test_sec6_matches_paper () =
  let a = E.section_6 () in
  Alcotest.(check int) "optimal n = 2" 2 a.Zeroconf.Assessment.optimum.Zeroconf.Optimize.n;
  check_close ~tol:5e-3 "optimal r ~ 1.75" 1.7484
    a.Zeroconf.Assessment.optimum.Zeroconf.Optimize.r;
  let err = a.Zeroconf.Assessment.optimum.Zeroconf.Optimize.error_prob in
  Alcotest.(check bool)
    (Printf.sprintf "error %.3g ~ 4e-22" err)
    true
    (err > 3.5e-22 && err < 4.5e-22);
  Alcotest.(check bool) "half the configuration time" true
    (a.Zeroconf.Assessment.optimal_config_time < 0.5 *. a.Zeroconf.Assessment.draft_config_time)

(* ---------------- validation experiment (V1) ---------------- *)

let test_validation_three_way_agreement () =
  let rows = E.validation ~trials:8_000 ~seed:5 () in
  Alcotest.(check bool) "several operating points" true (List.length rows >= 4);
  List.iter
    (fun (row : E.validation_row) ->
      let label = Printf.sprintf "n=%d r=%g" row.E.n row.E.r in
      check_close ~tol:1e-8 (label ^ ": Eq.3 = matrix") row.E.analytic_cost
        row.E.matrix_cost;
      check_close ~tol:1e-10 (label ^ ": Eq.4 = matrix") row.E.analytic_error
        row.E.matrix_error;
      let c = row.E.simulated_cost in
      Alcotest.(check bool)
        (Printf.sprintf "%s: cost CI [%g, %g] covers %g" label
           c.Dtmc.Simulate.ci_lo c.Dtmc.Simulate.ci_hi row.E.analytic_cost)
        true
        (row.E.analytic_cost > c.Dtmc.Simulate.ci_lo -. (0.03 *. row.E.analytic_cost)
        && row.E.analytic_cost < c.Dtmc.Simulate.ci_hi +. (0.03 *. row.E.analytic_cost));
      let e = row.E.simulated_error in
      Alcotest.(check bool)
        (Printf.sprintf "%s: error CI covers" label)
        true
        (row.E.analytic_error > e.Dtmc.Simulate.ci_lo -. 0.01
        && row.E.analytic_error < e.Dtmc.Simulate.ci_hi +. 0.01))
    rows

let test_all_figures_enumerates_five () =
  Alcotest.(check (list string)) "ids"
    [ "fig2"; "fig3"; "fig4"; "fig5"; "fig6" ]
    (List.map (fun (f : E.figure) -> f.E.id) (E.all_figures ()))

let test_latency_figure_shape () =
  let fig = E.latency_figure () in
  Alcotest.(check int) "three designs" 3 (List.length fig.E.series);
  List.iter
    (fun (s : E.series) ->
      (* each CDF is monotone from ~0 to ~1 *)
      let values = ys s in
      let n = Array.length values in
      let monotone = ref true in
      for i = 1 to n - 1 do
        if values.(i) < values.(i - 1) -. 1e-12 then monotone := false
      done;
      Alcotest.(check bool) (s.E.label ^ " monotone") true !monotone;
      Alcotest.(check bool) (s.E.label ^ " reaches ~1") true (values.(n - 1) > 0.99))
    fig.E.series;
  (* the draft starts later than the fast design: at 4 s the fast
     design is mostly done, the draft has not finished a single run *)
  let at s t =
    let _, v =
      Array.to_list (series fig s).E.points
      |> List.find (fun (x, _) -> x >= t)
    in
    v
  in
  Alcotest.(check (float 1e-9)) "draft has nothing by 4 s" 0. (at "draft (4, 2)" 4.)

let test_pareto_figure_shape () =
  let fig = E.pareto_figure () in
  match fig.E.series with
  | [ front ] ->
      let points = front.E.points in
      Alcotest.(check bool) "non-trivial front" true (Array.length points > 20);
      (* sorted by cost, strictly improving reliability *)
      for i = 1 to Array.length points - 1 do
        let c0, e0 = points.(i - 1) and c1, e1 = points.(i) in
        Alcotest.(check bool) "cost ascending" true (c1 >= c0);
        Alcotest.(check bool) "error descending" true (e1 < e0)
      done
  | _ -> Alcotest.fail "expected a single series"

let () =
  Alcotest.run "experiments"
    [ ( "figure 2",
        [ Alcotest.test_case "eight curves" `Quick test_fig2_has_eight_cost_curves;
          Alcotest.test_case "n=1,2 invisible; C_3 best" `Quick
            test_fig2_n12_invisible_n3_smallest;
          Alcotest.test_case "dip then rise" `Quick test_fig2_curves_dip_then_rise ] );
      ( "figure 3",
        [ Alcotest.test_case "decreasing integer steps" `Quick
            test_fig3_step_function_decreasing;
          Alcotest.test_case "respects nu" `Quick test_fig3_never_below_nu ] );
      ( "figure 4",
        [ Alcotest.test_case "lower envelope" `Quick test_fig4_envelope_below_each_curve ] );
      ( "figures 5-6",
        [ Alcotest.test_case "monotone in n" `Quick test_fig5_ordering_in_n;
          Alcotest.test_case "sawtooth in band" `Quick
            test_fig6_envelope_sawtooth_and_bounds;
          Alcotest.test_case "fig6 contains fig5" `Quick test_fig6_includes_fig5_series ] );
      ( "section anchors",
        [ Alcotest.test_case "Sec. 4.4: nu = 3" `Quick test_sec44_nu_is_three;
          Alcotest.test_case "Sec. 6 headline" `Quick test_sec6_matches_paper ] );
      ( "validation",
        [ Alcotest.test_case "three-way agreement" `Slow
            test_validation_three_way_agreement;
          Alcotest.test_case "figure inventory" `Quick test_all_figures_enumerates_five ] );
      ( "extension figures",
        [ Alcotest.test_case "latency CDFs" `Quick test_latency_figure_shape;
          Alcotest.test_case "pareto front" `Quick test_pareto_figure_shape ] ) ]
