(* The execute stage's contract: batched evaluation is a pure
   amortization — for ANY mix of queries, [Executor.eval_batch] must
   return bitwise the same points as evaluating each query alone, at
   any pool size, cache on or off.  This is the invariant that lets the
   figure drivers and the CLI batch subcommand share kernel cursors and
   DTMC matrix builds without anyone auditing the numerics again.

   The property below drives that with qcheck: random scenarios, all
   five quantities, all three domain shapes, exact and sampled
   accuracies, batch sizes 1-10, compared across jobs 1 and 8. *)

module Q = Engine.Query
module A = Engine.Answer

let bits = Int64.bits_of_float

let value_eq (a : A.value) (b : A.value) =
  match (a, b) with
  | A.Scalar x, A.Scalar y -> bits x = bits y
  | A.Interval i, A.Interval j ->
      bits i.mean = bits j.mean
      && bits i.ci_lo = bits j.ci_lo
      && bits i.ci_hi = bits j.ci_hi
  | _ -> false

let points_eq (a : A.t) (b : A.t) =
  Array.length a.A.points = Array.length b.A.points
  && Array.for_all2
       (fun (p : A.point) (q : A.point) ->
         p.A.n = q.A.n && bits p.A.r = bits q.A.r && value_eq p.A.value q.A.value)
       a.A.points b.A.points

(* -- random query mixes -------------------------------------------- *)

let scenario_gen =
  QCheck.Gen.(
    let* loss = float_range 0. 0.4 in
    let* rate = float_range 0.5 20. in
    let* delay = float_range 0. 1.5 in
    (* q stays moderate: the netsim route materializes q·2^16 occupied
       addresses per trial, so crowded scenarios price every sampled
       query at seconds, not microseconds *)
    let* q = float_range 0.01 0.3 in
    let* c = float_range 0. 5. in
    let* e = float_range 1. 1e4 in
    return
      (Zeroconf.Params.v ~name:"prop"
         ~delay:
           (Dist.Families.shifted_exponential ~mass:(1. -. loss) ~rate ~delay
              ())
         ~q ~probe_cost:c ~error_cost:e))

(* a handful of scenarios per mix, so batches mingle queries that share
   a scenario (exercising cursor/matrix sharing) with ones that don't *)
let scenarios_gen = QCheck.Gen.(array_size (int_range 1 3) scenario_gen)

let domain_gen =
  QCheck.Gen.(
    let* shape = int_range 0 2 in
    match shape with
    | 0 ->
        let* n = int_range 1 10 in
        let* r = float_range 0. 4. in
        return (Q.Point { n; r })
    | 1 ->
        let* len = int_range 1 5 in
        let* lo = int_range 1 6 in
        let* r = float_range 0. 4. in
        return (Q.N_sweep { ns = Array.init len (fun i -> lo + i); r })
    | _ ->
        let* n = int_range 1 10 in
        let* len = int_range 1 5 in
        let* lo = float_range 0. 2. in
        let* step = float_range 0.1 1. in
        return
          (Q.R_sweep
             { n; rs = Array.init len (fun i -> lo +. (float_of_int i *. step)) }))

let query_gen scenarios =
  QCheck.Gen.(
    let* scenario = oneofl (Array.to_list scenarios) in
    let* domain = domain_gen in
    let* pick = int_range 0 9 in
    (* weight the deterministic quantities; fold in sampled (Monte
       Carlo) and DRM-only (Cost_variance) mixes at lower rates *)
    let* quantity, accuracy =
      match pick with
      | 0 | 1 | 2 -> return (Q.Mean_cost, Q.Exact)
      | 3 | 4 -> return (Q.Error_probability, Q.Exact)
      | 5 -> return (Q.Log10_error, Q.Exact)
      | 6 -> return (Q.Mean_cost, Q.Within 1e-9)
      | 7 -> return (Q.Cost_variance, Q.Exact)
      | 8 -> return (Q.Latency_mean, Q.Exact)
      | _ ->
          let* trials = int_range 10 40 in
          let* seed = int_range 0 10_000 in
          let* mc_q = oneofl [ Q.Mean_cost; Q.Error_probability ] in
          return (mc_q, Q.Sampled { trials; seed })
    in
    return { Q.quantity; scenario; domain; accuracy })

let mix_gen =
  QCheck.Gen.(
    let* scenarios = scenarios_gen in
    array_size (int_range 1 10) (query_gen scenarios))

let mix_arbitrary =
  QCheck.make
    ~print:(fun qs ->
      String.concat "; "
        (Array.to_list (Array.map (Format.asprintf "%a" Q.pp) qs)))
    mix_gen

(* -- the property --------------------------------------------------- *)

let pool8 = lazy (Exec.Pool.create 8)

let with_cache_disabled f =
  Engine.Cache.set_enabled false;
  Fun.protect ~finally:(fun () -> Engine.Cache.set_enabled true) f

let check_same ~what reference answers =
  if Array.length reference <> Array.length answers then
    QCheck.Test.fail_reportf "%s: answer count mismatch" what;
  Array.iteri
    (fun i r ->
      if not (points_eq r answers.(i)) then
        QCheck.Test.fail_reportf "%s: answer %d differs bitwise:@.%a@.vs@.%a"
          what i A.pp r A.pp answers.(i))
    reference;
  true

let prop_batch_equals_scalar =
  QCheck.Test.make ~name:"eval_batch = map eval, bitwise, any jobs/cache"
    ~count:40 mix_arbitrary
    (fun queries ->
      (* reference: each query evaluated alone, no cache in play *)
      let reference =
        with_cache_disabled (fun () -> Array.map Engine.Executor.eval queries)
      in
      let batch_off jobs_pool =
        with_cache_disabled (fun () ->
            Engine.Executor.eval_batch ?pool:jobs_pool queries)
      in
      let batch_on jobs_pool =
        Engine.Executor.eval_batch ?pool:jobs_pool
          ~cache:(Engine.Cache.create ()) queries
      in
      ignore (check_same ~what:"jobs=1 cache=off" reference (batch_off None));
      ignore (check_same ~what:"jobs=1 cache=on" reference (batch_on None));
      let p8 = Some (Lazy.force pool8) in
      ignore (check_same ~what:"jobs=8 cache=off" reference (batch_off p8));
      ignore (check_same ~what:"jobs=8 cache=on" reference (batch_on p8));
      (* warm cache: second run serves every answer from the cache,
         points still bitwise identical *)
      let cache = Engine.Cache.create () in
      let cold = Engine.Executor.eval_batch ~cache queries in
      let warm = Engine.Executor.eval_batch ~cache queries in
      ignore (check_same ~what:"cold vs reference" reference cold);
      ignore (check_same ~what:"warm vs reference" reference warm);
      Array.iter
        (fun (a : A.t) ->
          if not a.A.cached then
            QCheck.Test.fail_report
              "warm batch returned an answer not marked cached")
        warm;
      true)

(* -- deterministic corners the generator may under-sample ----------- *)

let fig2 = List.assoc "figure2" Zeroconf.Params.presets

let test_duplicate_plans_in_one_batch () =
  (* the same query twice in one batch: both answers must carry the
     full value; the second may not be silently elided *)
  let q = Q.n_sweep Q.Mean_cost fig2 ~ns:[| 1; 2; 3; 4 |] ~r:2. in
  let answers =
    with_cache_disabled (fun () -> Engine.Executor.eval_batch [| q; q |])
  in
  Alcotest.(check int) "two answers" 2 (Array.length answers);
  Alcotest.(check bool) "identical points" true (points_eq answers.(0) answers.(1))

let test_within_batch_duplicates_hit_cache () =
  (* with a cache active, key-duplicates inside one batch evaluate
     once; the follower replays the stored answer as a counted hit *)
  let q = Q.r_sweep Q.Mean_cost fig2 ~n:3 ~rs:[| 0.5; 1.; 2. |] in
  let cache = Engine.Cache.create () in
  let answers = Engine.Executor.eval_batch ~cache [| q; q; q |] in
  Alcotest.(check bool) "first is the evaluation" false answers.(0).A.cached;
  Alcotest.(check bool) "second is a replay" true answers.(1).A.cached;
  Alcotest.(check bool) "third is a replay" true answers.(2).A.cached;
  Alcotest.(check bool) "replays are bitwise identical" true
    (points_eq answers.(0) answers.(1) && points_eq answers.(0) answers.(2));
  let stats = Engine.Cache.stats cache in
  Alcotest.(check int) "two hits counted" 2 stats.Engine.Cache.hits;
  Alcotest.(check int) "one miss counted" 1 stats.Engine.Cache.misses

let test_cache_keys_keep_routes_apart () =
  let q = Q.point Q.Mean_cost fig2 ~n:4 ~r:2. in
  let cache = Engine.Cache.create () in
  let a = Engine.Executor.eval ~cache ~backend:"kernel" q in
  let b = Engine.Executor.eval ~cache ~backend:"dtmc" q in
  Alcotest.(check string) "first ran on kernel" "kernel" a.A.backend;
  Alcotest.(check string)
    "forcing dtmc is not served the kernel's cache entry" "dtmc" b.A.backend;
  Alcotest.(check bool) "dtmc answer is a miss" false b.A.cached

let test_singleton_batch_matches_scalar_provenance () =
  let q = Q.n_sweep Q.Mean_cost fig2 ~ns:[| 1; 2; 3; 4 |] ~r:2. in
  let scalar = with_cache_disabled (fun () -> Engine.Executor.eval q) in
  let batch =
    with_cache_disabled (fun () -> Engine.Executor.eval_batch [| q |])
  in
  Alcotest.(check string) "backend" scalar.A.backend batch.(0).A.backend;
  Alcotest.(check int) "evals" scalar.A.evals batch.(0).A.evals

let () =
  Alcotest.run "executor"
    [ ( "batch equivalence",
        [ QCheck_alcotest.to_alcotest prop_batch_equals_scalar;
          Alcotest.test_case "duplicate plans in one batch" `Quick
            test_duplicate_plans_in_one_batch;
          Alcotest.test_case "within-batch duplicates hit the cache" `Quick
            test_within_batch_duplicates_hit_cache;
          Alcotest.test_case "cache keys keep routes apart" `Quick
            test_cache_keys_keep_routes_apart;
          Alcotest.test_case "singleton batch = scalar provenance" `Quick
            test_singleton_batch_matches_scalar_provenance ] ) ]
