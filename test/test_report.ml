let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let report = Engine.Report.markdown Zeroconf.Params.realistic_ethernet

let test_sections_present () =
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains report needle))
    [ "# Zeroconf design report: realistic-ethernet"; "## Scenario";
      "## Operating points"; "## Cost/reliability frontier";
      "## Sensitivity"; "nu = 2" ]

let test_headline_numbers_present () =
  (* the Sec. 6 anchors must appear in the rendered tables *)
  Alcotest.(check bool) "optimal n = 2 row" true (contains report "| optimal | 2 | 1.748");
  Alcotest.(check bool) "draft row" true (contains report "| draft | 4 | 2.000");
  Alcotest.(check bool) "cost ratio" true (contains report "**2.05x**")

let test_markdown_tables_well_formed () =
  (* every table line has matching pipe counts with its header *)
  let lines = String.split_on_char '\n' report in
  let rec scan = function
    | header :: sep :: rest
      when String.length header > 0 && header.[0] = '|'
           && String.length sep > 1 && sep.[0] = '|' && contains sep "---" ->
        let pipes s = String.fold_left (fun acc c -> if c = '|' then acc + 1 else acc) 0 s in
        let width = pipes header in
        Alcotest.(check int) "separator width" width (pipes sep);
        let rec rows = function
          | row :: more when String.length row > 0 && row.[0] = '|' ->
              Alcotest.(check int) "row width" width (pipes row);
              rows more
          | more -> scan more
        in
        rows rest
    | _ :: rest -> scan rest
    | [] -> ()
  in
  scan lines

let test_custom_draft_point () =
  let r = Engine.Report.markdown ~draft_n:2 ~draft_r:0.5 Zeroconf.Params.figure2 in
  Alcotest.(check bool) "custom draft row" true (contains r "| draft | 2 | 0.500")

let () =
  Alcotest.run "report"
    [ ( "structure",
        [ Alcotest.test_case "sections" `Quick test_sections_present;
          Alcotest.test_case "headline numbers" `Quick test_headline_numbers_present;
          Alcotest.test_case "well-formed tables" `Quick
            test_markdown_tables_well_formed;
          Alcotest.test_case "custom draft" `Quick test_custom_draft_point ] ) ]
