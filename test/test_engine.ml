(* Cross-backend consistency for the query engine: the deterministic
   routes must agree (kernel bit-identically with the closed forms,
   the DTMC solve to 1e-9 relative), and the Monte-Carlo route must
   cover the deterministic value with its confidence interval. *)

module Q = Engine.Query
module A = Engine.Answer

let eval ?backend q = Engine.Executor.eval ?backend q
let value ?backend q = A.scalar (eval ?backend q).A.points.(0)

let grid_points = [ (1, 0.5); (2, 1.); (4, 2.); (6, 1.3); (8, 0.7) ]
let exact_quantities = [ Q.Mean_cost; Q.Error_probability; Q.Log10_error ]

(* ------------------------------------------------------------------ *)
(* Analytic == Kernel, bit for bit, on every preset                    *)

let same_bits a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let test_kernel_bit_identity () =
  List.iter
    (fun (name, p) ->
      List.iter
        (fun (n, r) ->
          List.iter
            (fun qty ->
              let q = Q.point qty p ~n ~r in
              let va = value ~backend:"analytic" q in
              let vk = value ~backend:"kernel" q in
              if not (same_bits va vk) then
                Alcotest.failf "%s (%d, %g) %s: analytic %h vs kernel %h" name
                  n r (Q.quantity_name qty) va vk)
            exact_quantities)
        grid_points)
    Zeroconf.Params.presets

let test_sweep_matches_points () =
  let p = Zeroconf.Params.figure2 in
  let rs = Numerics.Grid.linspace 0.1 4. 25 in
  let ns = Array.init 10 (fun i -> i + 1) in
  List.iter
    (fun qty ->
      let sweep = eval (Q.r_sweep qty p ~n:4 ~rs) in
      Array.iteri
        (fun i (pt : A.point) ->
          let direct = value (Q.point qty p ~n:4 ~r:rs.(i)) in
          if not (same_bits (A.scalar pt) direct) then
            Alcotest.failf "r-sweep %s drifts at r = %g" (Q.quantity_name qty)
              rs.(i))
        sweep.A.points;
      let sweep = eval (Q.n_sweep qty p ~ns ~r:2.) in
      Array.iteri
        (fun i (pt : A.point) ->
          let direct = value (Q.point qty p ~n:ns.(i) ~r:2.) in
          if not (same_bits (A.scalar pt) direct) then
            Alcotest.failf "n-sweep %s drifts at n = %d" (Q.quantity_name qty)
              ns.(i))
        sweep.A.points)
    exact_quantities

let test_n_sweep_any_order () =
  (* the kernel backend reorders arbitrary (even duplicated) probe
     counts onto one forward cursor *)
  let p = Zeroconf.Params.figure2 in
  let ns = [| 7; 2; 2; 9; 1 |] in
  let a = eval ~backend:"kernel" (Q.n_sweep Q.Mean_cost p ~ns ~r:1.5) in
  Array.iteri
    (fun i (pt : A.point) ->
      Alcotest.(check int) "sweep order preserved" ns.(i) pt.A.n;
      let direct = value (Q.point Q.Mean_cost p ~n:ns.(i) ~r:1.5) in
      Alcotest.(check bool) "value matches" true (same_bits (A.scalar pt) direct))
    a.A.points

(* ------------------------------------------------------------------ *)
(* Analytic vs DTMC matrix solve: <= 1e-9 relative, on every preset    *)

let test_dtmc_agreement () =
  List.iter
    (fun (name, p) ->
      List.iter
        (fun (n, r) ->
          List.iter
            (fun qty ->
              let q = Q.point qty p ~n ~r in
              let va = value ~backend:"analytic" q in
              let vd = value ~backend:"dtmc" q in
              let rel = Engine.Crosscheck.rel_divergence va vd in
              if rel > 1e-9 then
                Alcotest.failf "%s (%d, %g) %s: analytic %.17g vs dtmc %.17g \
                                (rel %.3g)"
                  name n r (Q.quantity_name qty) va vd rel)
            [ Q.Mean_cost; Q.Error_probability ])
        grid_points)
    Zeroconf.Params.presets

(* ------------------------------------------------------------------ *)
(* Monte Carlo inside its own confidence interval (fixed seed)         *)

(* a scenario Monte Carlo can actually resolve: frequent collisions,
   moderate error cost; q on the hosts lattice so the simulator's
   occupancy reproduces it exactly *)
let mc_friendly =
  Zeroconf.Params.v ~name:"mc-moderate"
    ~delay:(Dist.Families.shifted_exponential ~mass:0.9 ~rate:2. ~delay:0.5 ())
    ~q:(Zeroconf.Params.q_of_hosts 19_507)
    ~probe_cost:1. ~error_cost:100.

let check_covered p ~n ~r qty =
  let rep =
    Engine.Crosscheck.run ~trials:20_000 ~seed:Engine.Crosscheck.default_seed
      (Q.point qty p ~n ~r)
  in
  Alcotest.(check (option bool))
    (Printf.sprintf "%s covered at (%d, %g) on %s" (Q.quantity_name qty) n r
       p.Zeroconf.Params.name)
    (Some true) rep.Engine.Crosscheck.mc_covered

let test_mc_within_ci () =
  List.iter
    (fun qty ->
      check_covered Zeroconf.Params.figure2 ~n:4 ~r:2. qty;
      check_covered mc_friendly ~n:4 ~r:1. qty)
    [ Q.Mean_cost; Q.Error_probability; Q.Latency_mean ]

(* ------------------------------------------------------------------ *)
(* Planner routing and provenance                                      *)

let planned q = Engine.Plan.route_name (Engine.Planner.plan q).Engine.Plan.route

let test_planner_routing () =
  let p = Zeroconf.Params.figure2 in
  Alcotest.(check string) "cost -> kernel" "kernel"
    (planned (Q.point Q.Mean_cost p ~n:4 ~r:2.));
  Alcotest.(check string) "log10 error -> kernel" "kernel"
    (planned (Q.point Q.Log10_error p ~n:4 ~r:2.));
  Alcotest.(check string) "latency -> analytic" "analytic"
    (planned (Q.point Q.Latency_mean p ~n:4 ~r:2.));
  Alcotest.(check string) "variance -> dtmc" "dtmc"
    (planned (Q.point Q.Cost_variance p ~n:4 ~r:2.));
  Alcotest.(check string) "sampled -> mc" "mc"
    (planned
       (Q.point ~accuracy:(Q.Sampled { trials = 100; seed = 1 }) Q.Mean_cost p
          ~n:4 ~r:2.));
  Alcotest.(check bool) "sampled variance unsupported" true
    (match
       Engine.Planner.plan
         (Q.point
            ~accuracy:(Q.Sampled { trials = 100; seed = 1 })
            Q.Cost_variance p ~n:4 ~r:2.)
     with
    | exception Engine.Planner.Unsupported _ -> true
    | _ -> false)

let test_provenance () =
  let p = Zeroconf.Params.figure2 in
  let a = eval (Q.point Q.Mean_cost p ~n:4 ~r:2.) in
  Alcotest.(check string) "backend tag" "kernel" a.A.backend;
  Alcotest.(check int) "kernel point evals = n" 4 a.A.evals;
  Alcotest.(check bool) "wall clock sane" true (a.A.wall_ns >= 0L);
  let sweep = eval (Q.r_sweep Q.Mean_cost p ~n:3 ~rs:(Numerics.Grid.linspace 1. 2. 5)) in
  Alcotest.(check int) "r-sweep evals = n * points" 15 sweep.A.evals;
  let mc =
    eval
      (Q.point ~accuracy:(Q.Sampled { trials = 250; seed = 7 }) Q.Mean_cost p
         ~n:4 ~r:2.)
  in
  Alcotest.(check string) "mc tag" "mc" mc.A.backend;
  Alcotest.(check int) "mc evals = trials" 250 mc.A.evals;
  (match mc.A.points.(0).A.value with
  | A.Interval { ci_lo; ci_hi; mean } ->
      Alcotest.(check bool) "ci ordered" true (ci_lo <= mean && mean <= ci_hi)
  | A.Scalar _ -> Alcotest.fail "mc must report an interval")

let test_validation () =
  let p = Zeroconf.Params.figure2 in
  List.iter
    (fun f -> Alcotest.(check bool) "rejected" true
        (match f () with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [ (fun () -> ignore (Q.point Q.Mean_cost p ~n:0 ~r:2.));
      (fun () -> ignore (Q.point Q.Mean_cost p ~n:4 ~r:(-1.)));
      (fun () -> ignore (Q.point Q.Mean_cost p ~n:4 ~r:Float.nan));
      (fun () -> ignore (Q.point Q.Mean_cost p ~n:4 ~r:Float.infinity));
      (fun () -> ignore (Q.n_sweep Q.Mean_cost p ~ns:[||] ~r:1.));
      (fun () -> ignore (Q.r_sweep Q.Mean_cost p ~n:4 ~rs:[||]));
      (fun () ->
        ignore
          (Q.point ~accuracy:(Q.Sampled { trials = 0; seed = 1 }) Q.Mean_cost p
             ~n:4 ~r:2.)) ]

(* the paper's r = 0 boundary: every pi_i is 1, so C_n(0) = n c + q E;
   with free probes (c = 0) the mean cost collapses to exactly q E *)
let test_r_zero_boundary () =
  let p = Zeroconf.Params.figure2 in
  let free_probes = Zeroconf.Params.with_costs ~probe_cost:0. p in
  List.iter
    (fun n ->
      let q = Q.point Q.Mean_cost free_probes ~n ~r:0. in
      let expected = free_probes.Zeroconf.Params.q *. free_probes.Zeroconf.Params.error_cost in
      List.iter
        (fun backend ->
          let v = value ~backend q in
          if not (same_bits v expected) then
            Alcotest.failf "%s: C_%d(0) = %h, expected q E = %h" backend n v
              expected)
        [ "analytic"; "kernel" ])
    [ 1; 4; 8 ];
  (* with postage, the boundary value is n c + q E (to rounding) *)
  let n = 4 in
  let v = value (Q.point Q.Mean_cost p ~n ~r:0.) in
  let expected =
    (float_of_int n *. p.Zeroconf.Params.probe_cost)
    +. (p.Zeroconf.Params.q *. p.Zeroconf.Params.error_cost)
  in
  Alcotest.(check bool)
    "C_4(0) = 4c + qE to 1e-12 relative" true
    (Engine.Crosscheck.rel_divergence v expected <= 1e-12);
  (* the error probability at r = 0 is the paper's q / (1 - q (1 - 1))
     = q: no probe ever helps *)
  let e = value (Q.point Q.Error_probability p ~n ~r:0.) in
  Alcotest.(check bool) "E(4, 0) = q" true
    (same_bits e p.Zeroconf.Params.q)

(* the acceptance-criteria crosscheck, as a regression test *)
let test_crosscheck_acceptance () =
  List.iter
    (fun qty ->
      let rep =
        Engine.Crosscheck.run (Q.point qty Zeroconf.Params.figure2 ~n:4 ~r:2.)
      in
      Alcotest.(check int) "three deterministic routes + mc" 4
        (List.length rep.Engine.Crosscheck.answers);
      Alcotest.(check bool) "divergence <= 1e-9" true
        (rep.Engine.Crosscheck.max_rel_divergence <= 1e-9);
      Alcotest.(check (option bool)) "mc covered" (Some true)
        rep.Engine.Crosscheck.mc_covered)
    [ Q.Mean_cost; Q.Error_probability ]

let () =
  Alcotest.run "engine"
    [ ( "consistency",
        [ Alcotest.test_case "analytic == kernel (bit)" `Quick
            test_kernel_bit_identity;
          Alcotest.test_case "sweeps == points (bit)" `Quick
            test_sweep_matches_points;
          Alcotest.test_case "n-sweep handles any order" `Quick
            test_n_sweep_any_order;
          Alcotest.test_case "analytic vs dtmc <= 1e-9" `Quick
            test_dtmc_agreement;
          Alcotest.test_case "mc inside its CI" `Slow test_mc_within_ci;
          Alcotest.test_case "crosscheck acceptance point" `Quick
            test_crosscheck_acceptance ] );
      ( "planner",
        [ Alcotest.test_case "routing" `Quick test_planner_routing;
          Alcotest.test_case "provenance" `Quick test_provenance;
          Alcotest.test_case "query validation" `Quick test_validation;
          Alcotest.test_case "r = 0 boundary (C_n(0) = n c + q E)" `Quick
            test_r_zero_boundary ] ) ]
