(* zeroconf-lint rule engine: one seeded violation per rule family,
   asserted down to the exact rule id and line, plus the allowlist
   machinery.  The live tree itself is linted by the root `dune` rule
   (aliases @lint and @runtest), so a regression in either the rules or
   the code shows up in the tier-1 gate. *)

open Lint_core

let hits path source =
  List.map
    (fun (f : Finding.t) -> (f.rule, f.line, f.ident))
    (Rules.lint_source ~path source)

let check_hits name ~path ~source expected =
  Alcotest.(check (list (triple string int string)))
    name expected (hits path source)

(* -- R1: float hygiene --------------------------------------------- *)

let r1_seeded () =
  check_hits "raw log, division and pow are flagged, line-exact"
    ~path:"lib/core/cost.ml"
    ~source:"let f x = log x\nlet g a b = a /. b\nlet h x n = x ** n\n"
    [ ("R1", 1, "log"); ("R1", 2, "/."); ("R1", 3, "**") ];
  check_hits "Float.log and exp count too" ~path:"lib/core/kernel.ml"
    ~source:"let f x = Float.log x +. exp x\n"
    [ ("R1", 1, "Float.log"); ("R1", 1, "exp") ]

let r1_scoped () =
  check_hits "sanctioned spellings are clean" ~path:"lib/core/cost.ml"
    ~source:
      "module SF = Numerics.Safe_float\n\
       let f x = SF.div (SF.log x) (SF.exp x)\n"
    [];
  check_hits "non-probability modules are out of R1 scope"
    ~path:"lib/numerics/integrate.ml" ~source:"let f x = log x /. exp x\n" []

let r1_engine_pipeline () =
  (* the engine's plan/executor/cache joined the probability path when
     the pipeline split landed; raw primitives there must be flagged *)
  List.iter
    (fun path ->
      check_hits
        (path ^ " is in R1 scope")
        ~path ~source:"let f x = exp x /. 2.\n"
        [ ("R1", 1, "exp"); ("R1", 1, "/.") ])
    [ "lib/engine/plan.ml"; "lib/engine/executor.ml"; "lib/engine/cache.ml" ];
  (* backends.ml stays out of scope: it only forwards values computed
     inside lib/core *)
  check_hits "lib/engine/backends.ml is out of R1 scope"
    ~path:"lib/engine/backends.ml" ~source:"let f x = exp x\n" []

(* -- R2: determinism ----------------------------------------------- *)

let r2_seeded () =
  check_hits "global Random state and wall clocks are flagged"
    ~path:"lib/dist/families.ml"
    ~source:
      "let () = Random.self_init ()\n\
       let x () = Random.float 1.\n\
       let t () = Unix.gettimeofday ()\n"
    [ ("R2", 1, "Random.self_init");
      ("R2", 2, "Random.float");
      ("R2", 3, "Unix.gettimeofday") ]

let r2_scoped () =
  check_hits "bench may read the wall clock" ~path:"bench/main.ml"
    ~source:"let t () = Unix.gettimeofday ()\n" [];
  check_hits "Numerics.Rng is the sanctioned RNG" ~path:"lib/netsim/multi.ml"
    ~source:"let draw rng = Numerics.Rng.float rng\n" []

let r2_cache_timestamps () =
  (* the cache's insertion timestamps DO trip the wall-clock rule — the
     shipped allow.sexp carries the one reviewed waiver, so the rule
     stays loud for any new clock read in the file *)
  check_hits "cache timestamps are caught by R2, waiver lives in allow.sexp"
    ~path:"lib/engine/cache.ml"
    ~source:"let stamp () = Unix.gettimeofday ()\n"
    [ ("R2", 1, "Unix.gettimeofday") ];
  let entries = Allowlist.of_string
      "((rule R2) (file lib/engine/cache.ml) (ident Unix.gettimeofday)\n\
      \ (why \"insertion timestamps, observability only\"))\n"
  in
  Alcotest.(check bool)
    "the waiver permits exactly that finding" true
    (Allowlist.permits entries
       (Finding.v ~rule:"R2" ~file:"lib/engine/cache.ml" ~line:1 ~col:0
          ~ident:"Unix.gettimeofday" ~message:"" ~hint:""));
  Alcotest.(check bool)
    "the waiver does not leak to other engine files" false
    (Allowlist.permits entries
       (Finding.v ~rule:"R2" ~file:"lib/engine/executor.ml" ~line:1 ~col:0
          ~ident:"Unix.gettimeofday" ~message:"" ~hint:""))

(* -- R3: concurrency containment ----------------------------------- *)

let r3_seeded () =
  check_hits "Domain/Atomic/Mutex leak outside lib/exec"
    ~path:"lib/netsim/engine.ml"
    ~source:
      "let d () = Domain.spawn (fun () -> ())\n\
       let a = Atomic.make 0\n\
       let m = Mutex.create ()\n"
    [ ("R3", 1, "Domain.spawn");
      ("R3", 2, "Atomic.make");
      ("R3", 3, "Mutex.create") ]

let r3_scoped () =
  check_hits "lib/exec is the sanctioned home" ~path:"lib/exec/pool.ml"
    ~source:"let d () = Domain.spawn (fun () -> ())\n" []

(* -- R4: I/O containment ------------------------------------------- *)

let r4_seeded () =
  check_hits "console writes inside lib are flagged"
    ~path:"lib/engine/report.ml"
    ~source:
      "let () = print_endline \"x\"\n\
       let () = Printf.printf \"y\"\n\
       let oc = stderr\n"
    [ ("R4", 1, "print_endline");
      ("R4", 2, "Printf.printf");
      ("R4", 3, "stderr") ]

let r4_scoped () =
  check_hits "lib/output is the sanctioned sink" ~path:"lib/output/emit.ml"
    ~source:"let () = print_string \"x\"\n" [];
  check_hits "binaries talk to the console freely" ~path:"bin/zeroconf_cli.ml"
    ~source:"let () = print_endline \"x\"\n" []

(* -- R5: interface discipline -------------------------------------- *)

let r5_obj () =
  check_hits "Obj.magic is never sanctioned" ~path:"lib/dtmc/sparse.ml"
    ~source:"let f x = Obj.magic x\n"
    [ ("R5", 1, "Obj.magic") ]

let r5_missing_mli () =
  let fs =
    Rules.missing_mli_findings
      [ "lib/core/cost.ml"; "lib/core/cost.mli"; "lib/core/orphan.ml";
        "bin/zeroconf_cli.ml" ]
  in
  Alcotest.(check (list (pair string string)))
    "only the interface-less lib module is flagged"
    [ ("R5", "lib/core/orphan.ml") ]
    (List.map (fun (f : Finding.t) -> (f.rule, f.file)) fs)

(* -- E0: parse failures are findings, not crashes ------------------ *)

let e0_parse_error () =
  match hits "lib/core/cost.ml" "let let = in" with
  | [ ("E0", _, "<parse>") ] -> ()
  | other ->
      Alcotest.failf "expected a single E0 finding, got %d" (List.length other)

(* -- allowlist ----------------------------------------------------- *)

let allow_entries =
  Allowlist.of_string
    "((rule R3) (file lib/core/kernel.ml) (ident Domain.DLS)\n\
    \ (why \"per-domain memo\"))\n"

let allowlist_permits () =
  let finding ident =
    Finding.v ~rule:"R3" ~file:"lib/core/kernel.ml" ~line:46 ~col:4 ~ident
      ~message:"" ~hint:""
  in
  Alcotest.(check bool)
    "exact ident is waived" true
    (Allowlist.permits allow_entries (finding "Domain.DLS"));
  Alcotest.(check bool)
    "deeper path under the ident is waived" true
    (Allowlist.permits allow_entries (finding "Domain.DLS.get"));
  Alcotest.(check bool)
    "a sibling module is not waived" false
    (Allowlist.permits allow_entries (finding "Domain.spawn"));
  Alcotest.(check bool)
    "another file is not waived" false
    (Allowlist.permits allow_entries
       (Finding.v ~rule:"R3" ~file:"lib/core/probes.ml" ~line:1 ~col:0
          ~ident:"Domain.DLS" ~message:"" ~hint:""))

let allowlist_requires_why () =
  Alcotest.check_raises "an entry without a justification is malformed"
    (Allowlist.Malformed "allow entry missing (why ...)") (fun () ->
      ignore
        (Allowlist.of_string
           "((rule R1) (file lib/core/cost.ml) (ident log))"))

let allowlist_stale () =
  let live =
    [ Finding.v ~rule:"R3" ~file:"lib/core/kernel.ml" ~line:46 ~col:4
        ~ident:"Domain.DLS.get" ~message:"" ~hint:"" ]
  in
  Alcotest.(check int)
    "a matching entry is not stale" 0
    (List.length (Allowlist.unused allow_entries live));
  Alcotest.(check int)
    "an entry matching nothing is reported stale" 1
    (List.length (Allowlist.unused allow_entries []))

(* -- the shipped allowlist itself stays well-formed ---------------- *)

let shipped_allowlist () =
  (* [Rules] scoping is path-based, so entries must use repo-relative
     paths; every entry must carry a justification (enforced by the
     loader).  The file lives next to the lint, two directories up from
     the test's cwd inside _build. *)
  let path = "../tools/lint/allow.sexp" in
  if Sys.file_exists path then
    let entries = Allowlist.load path in
    Alcotest.(check bool) "has entries" true (List.length entries > 0)
  else ()

let () =
  Alcotest.run "lint"
    [ ( "rules",
        [ Alcotest.test_case "R1 seeded" `Quick r1_seeded;
          Alcotest.test_case "R1 scoping" `Quick r1_scoped;
          Alcotest.test_case "R1 engine pipeline scope" `Quick
            r1_engine_pipeline;
          Alcotest.test_case "R2 seeded" `Quick r2_seeded;
          Alcotest.test_case "R2 scoping" `Quick r2_scoped;
          Alcotest.test_case "R2 cache timestamps" `Quick r2_cache_timestamps;
          Alcotest.test_case "R3 seeded" `Quick r3_seeded;
          Alcotest.test_case "R3 scoping" `Quick r3_scoped;
          Alcotest.test_case "R4 seeded" `Quick r4_seeded;
          Alcotest.test_case "R4 scoping" `Quick r4_scoped;
          Alcotest.test_case "R5 Obj" `Quick r5_obj;
          Alcotest.test_case "R5 missing mli" `Quick r5_missing_mli;
          Alcotest.test_case "E0 parse error" `Quick e0_parse_error ] );
      ( "allowlist",
        [ Alcotest.test_case "permits" `Quick allowlist_permits;
          Alcotest.test_case "why is mandatory" `Quick allowlist_requires_why;
          Alcotest.test_case "stale detection" `Quick allowlist_stale;
          Alcotest.test_case "shipped allow.sexp" `Quick shipped_allowlist ] )
    ]
