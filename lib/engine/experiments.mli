(** Programmatic definitions of every evaluation artifact in the paper
    (Figures 2–6, the Sec. 4.4 threshold, the Sec. 4.5 calibration, the
    Sec. 6 assessment) plus this reproduction's own validation
    experiment.  The CLI, the figure generator and the bench harness
    all consume these definitions, so "what Figure 4 is" lives in
    exactly one place.  The cost/error sweeps and the landscape are
    issued as engine queries ({!Query}/{!Planner}), so every figure
    carries the same provenance and cross-checking surface as ad-hoc
    queries — with values bit-identical to the historical direct
    sweeps. *)

open Zeroconf

type series = { label : string; points : (float * float) array }

type figure = {
  id : string;          (** e.g. ["fig2"]. *)
  title : string;
  x_label : string;
  y_label : string;
  log_y : bool;
  y_min : float option; (** Display clip, mirroring the paper's axes. *)
  y_max : float option;
  series : series list;
}

val figure2 : ?scenario:Params.t -> ?points:int -> unit -> figure
(** Cost functions [C_1 .. C_8] against [r] (clipped like the paper's
    plot, which hides the astronomically expensive [C_1], [C_2]). *)

val figure3 : ?scenario:Params.t -> ?points:int -> unit -> figure
(** The step function [N(r)]. *)

val figure4 : ?scenario:Params.t -> ?points:int -> unit -> figure
(** The lower envelope [C_min(r)]. *)

val figure5 : ?scenario:Params.t -> ?points:int -> unit -> figure
(** [log10 E(n, r)] for [n = 1 .. 8]. *)

val figure6 : ?scenario:Params.t -> ?points:int -> unit -> figure
(** The Figure-5 curves with the sawtoothed [E(N(r), r)] overlaid. *)

val all_figures : unit -> figure list
(** Figures 2–6, in order. *)

type landscape = {
  ns : int array;               (** Row labels: probe counts. *)
  rs : float array;             (** Column labels: listening periods. *)
  log10_cost : float array array;  (** [log10 C(n, r)] per (row, col). *)
}

val cost_landscape :
  ?scenario:Params.t -> ?n_max:int -> ?r_points:int -> ?r_lo:float ->
  ?r_hi:float -> unit -> landscape
(** The [(n, r)] cost surface behind the figure generator's heatmap
    (defaults: [n = 1..10], 24 points of [r] in [0.25, 6]), evaluated
    in parallel over the flattened grid. *)

val latency_figure : ?scenario:Params.t -> unit -> figure
(** Extension figure: configuration-time CDFs for the draft's [(4, 2)],
    the scenario's cost optimum, and a fast [(8, r_opt(8))] design. *)

val pareto_figure : ?scenario:Params.t -> unit -> figure
(** Extension figure: the cost/reliability Pareto front (log10 error
    against mean cost). *)

val extension_figures : unit -> figure list

val section_44_nu : unit -> int
(** [nu] for the Figure-2 scenario; the paper derives [3]. *)

type calibration_row = {
  label : string;
  target_n : int;
  target_r : float;
  paper_error_cost : float;
  paper_probe_cost : float;
  derived : Calibrate.result;
}

val section_45 : unit -> calibration_row list
(** Both Sec. 4.5 calibrations with the paper's reported values
    alongside ours. *)

val section_6 : unit -> Assessment.t
(** The realistic-ethernet assessment; the paper reports optimum
    [n = 2, r ~= 1.75] with error probability [~4e-22]. *)

type validation_row = {
  n : int;
  r : float;
  analytic_cost : float;       (** Eq. 3. *)
  matrix_cost : float;         (** Generic DRM solve. *)
  simulated_cost : Dtmc.Simulate.estimate;
  analytic_error : float;      (** Eq. 4. *)
  matrix_error : float;        (** Absorption probability. *)
  simulated_error : Dtmc.Simulate.estimate;
}

val validation : ?trials:int -> ?seed:int -> unit -> validation_row list
(** Three-way agreement check on a Monte-Carlo-friendly scenario
    (moderate [E] and loss, so all three routes resolve the same
    digits). *)
