exception Unsupported of string

let backends : (string * (module Backend.S)) list =
  [ ("kernel", (module Backends.Kernel));
    ("analytic", (module Backends.Analytic));
    ("dtmc", (module Backends.Dtmc));
    ("mc", (module Backends.Mc)) ]

let backend_of_name name =
  List.assoc_opt (String.lowercase_ascii name) backends

(* cheapest first: the kernel's streaming cursors beat the per-point
   closed forms, which beat the cubic matrix solve *)
let exact_order : (module Backend.S) list =
  [ (module Backends.Kernel); (module Backends.Analytic);
    (module Backends.Dtmc) ]

let plan (q : Query.t) =
  Query.validate q;
  let candidates =
    match q.accuracy with
    | Query.Sampled _ -> [ (module Backends.Mc : Backend.S) ]
    | Query.Exact | Query.Within _ -> exact_order
  in
  match
    List.find_opt (fun (module B : Backend.S) -> B.supports q) candidates
  with
  | Some b -> b
  | None ->
      raise (Unsupported (Format.asprintf "no backend supports: %a" Query.pp q))

let eval ?pool ?backend q =
  let (module B : Backend.S) =
    match backend with
    | None -> plan q
    | Some name -> (
        match backend_of_name name with
        | Some b -> b
        | None -> raise (Unsupported (Printf.sprintf "unknown backend %s" name)))
  in
  if not (B.supports q) then
    raise
      (Unsupported (Format.asprintf "%s cannot answer: %a" B.name Query.pp q));
  B.eval ?pool q
