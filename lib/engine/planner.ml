exception Unsupported of string

let backends : (string * (module Backend.S)) list =
  [ ("kernel", (module Backends.Kernel));
    ("analytic", (module Backends.Analytic));
    ("dtmc", (module Backends.Dtmc));
    ("mc", (module Backends.Mc)) ]

let backend_of_name name =
  List.assoc_opt (String.lowercase_ascii name) backends

(* cheapest first: the kernel's streaming cursors beat the per-point
   closed forms, which beat the cubic matrix solve *)
let exact_order : (Plan.route * (module Backend.S)) list =
  [ (Plan.Kernel, (module Backends.Kernel));
    (Plan.Analytic, (module Backends.Analytic));
    (Plan.Dtmc, (module Backends.Dtmc)) ]

let route (q : Query.t) =
  Query.validate q;
  let candidates =
    match q.accuracy with
    | Query.Sampled _ -> [ (Plan.Mc, (module Backends.Mc : Backend.S)) ]
    | Query.Exact | Query.Within _ -> exact_order
  in
  match
    List.find_opt (fun (_, (module B : Backend.S)) -> B.supports q) candidates
  with
  | Some (route, _) -> route
  | None ->
      raise (Unsupported (Format.asprintf "no backend supports: %a" Query.pp q))

let forced_route name (q : Query.t) =
  match Plan.route_of_name name with
  | None -> raise (Unsupported (Printf.sprintf "unknown backend %s" name))
  | Some route ->
      let (module B : Backend.S) =
        match backend_of_name name with
        | Some b -> b
        | None -> assert false (* route names and backend names coincide *)
      in
      if not (B.supports q) then
        raise
          (Unsupported (Format.asprintf "%s cannot answer: %a" B.name Query.pp q));
      route

let plan ?backend (q : Query.t) =
  let r = match backend with None -> route q | Some name -> forced_route name q in
  Plan.make ~route:r q

let backend_of_route (r : Plan.route) : (module Backend.S) =
  match r with
  | Plan.Kernel -> (module Backends.Kernel)
  | Plan.Analytic -> (module Backends.Analytic)
  | Plan.Dtmc -> (module Backends.Dtmc)
  | Plan.Mc -> (module Backends.Mc)
