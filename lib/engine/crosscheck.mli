(** Multi-route agreement: run one query on every backend that can
    answer it and quantify how far the routes drift apart.

    This generalizes the repository's historical three-way validation
    table to {e any} query: the deterministic routes must agree to
    float precision, and the Monte-Carlo estimate must cover the
    deterministic value with its confidence interval. *)

type report = {
  query : Query.t;
  answers : Answer.t list;
      (** One per backend that ran, deterministic routes first
          (analytic, kernel, dtmc in that order, those that support the
          query), Monte Carlo last when applicable. *)
  max_rel_divergence : float;
      (** Max over all domain points and all pairs of deterministic
          routes of [|a - b| / max |a| |b|] ([0.] when both are 0 or
          the values are equal; [infinity] if exactly one is
          non-finite). *)
  mc_covered : bool option;
      (** Whether the first deterministic answer lies inside the
          Monte-Carlo confidence interval at every domain point;
          [None] when no Monte-Carlo route applies (e.g. log10 error,
          cost variance). *)
}

val default_trials : int
(** 20_000. *)

val default_seed : int
(** 42. *)

val rel_divergence : float -> float -> float
(** The pairwise metric used for {!report.max_rel_divergence}. *)

val run : ?pool:Exec.Pool.t -> ?trials:int -> ?seed:int -> Query.t -> report
(** Evaluate [q] (its accuracy demand is ignored: deterministic routes
    run [Exact], Monte Carlo runs [Sampled] with [trials]/[seed]). *)
