(** The execute stage: plans in, answers out, cache consulted.

    The pipeline is [Planner.plan] (compile) — [Executor.run]
    (execute) — {!Cache} (memoize):

    {v
      Query ──plan──▶ Plan ──run──▶ Answer
                       │              ▲
                       └──key──▶ Cache┘
    v}

    [run_batch] first partitions the batch into cache hits and misses,
    then groups the misses by route and hands each backend ONE
    [eval_batch] call, so shared work (kernel cursors per
    [(scenario, r)] column, DTMC matrix builds) amortizes across the
    whole batch.  When a cache is active, key-duplicates within one
    batch evaluate once; the other occurrences replay the stored
    answer and count as cache hits.  Answers return in input order
    and every point is bitwise identical to evaluating each query
    alone, at any pool size, cache on or off. *)

val run : ?pool:Exec.Pool.t -> ?cache:Cache.t -> Plan.t -> Answer.t
(** Execute one compiled plan — the singleton case of {!run_batch}. *)

val run_batch :
  ?pool:Exec.Pool.t -> ?cache:Cache.t -> Plan.t array -> Answer.t array
(** Execute a batch.  [cache] defaults to {!Cache.default} when
    {!Cache.enabled}, and to no caching otherwise; pass a cache
    explicitly to use it regardless of the global switch.  [pool]
    defaults to {!Exec.Pool.get}. *)

val eval :
  ?pool:Exec.Pool.t -> ?cache:Cache.t -> ?backend:string -> Query.t -> Answer.t
(** [Planner.plan] then {!run}: the one-call convenience the CLI and
    experiment drivers use.  [backend] forces a route by name; raises
    {!Planner.Unsupported} as [Planner.plan] does. *)

val eval_batch :
  ?pool:Exec.Pool.t ->
  ?cache:Cache.t ->
  ?backend:string ->
  Query.t array ->
  Answer.t array
(** Compile every query, then {!run_batch}. *)
