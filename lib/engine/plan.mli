(** The compiled, executable form of a {!Query}.

    The engine runs as a three-stage pipeline — compile, execute,
    cache — and a plan is the hand-off between stages.  {!Planner.plan}
    compiles a query into a plan: validated, its domain flattened to
    concrete [(n, r)] points, its scenario interned, and its accuracy
    resolved to a concrete {!route}.  The {!Executor} then dispatches
    plans (singly or in batches) to backends; the {!Cache} indexes
    answers by the plan's structural {!key}.

    A plan is pure data: building one performs no evaluation. *)

type route = Kernel | Analytic | Dtmc | Mc
(** The concrete evaluation strategy the planner resolved to.  Kept as
    a variant (not a backend module) so plans stay first-class data the
    backends themselves can consume in [eval_batch]. *)

val route_name : route -> string
(** Stable lower-case identifier, matching {!Backend.S.name} of the
    corresponding backend ([kernel], [analytic], [dtmc], [mc]). *)

val route_of_name : string -> route option

type t = private {
  query : Query.t;        (** The originating request, untouched. *)
  route : route;          (** Where the executor will send it. *)
  scenario_id : int;      (** Interning id: plans with equal ids share a
                              numerically identical scenario, which is
                              what batch execution groups on. *)
  points : (int * float) array;
      (** The domain flattened to [(n, r)] pairs, in sweep order —
          same as {!Query.points} of [query]. *)
  key : string Lazy.t;    (** Stable structural cache key, computed on
                              first use; read it through {!key}. *)
}

val make : route:route -> Query.t -> t
(** Compile [query] to run on [route].  Re-validates the query (so
    plans built from hand-assembled records are still safe), interns
    the scenario, and computes the key.  Pure: no evaluation happens.
    Prefer {!Planner.plan}, which picks the route for you. *)

val scenario_id : Zeroconf.Params.t -> int
(** Intern a scenario directly.  Physically equal scenarios always map
    to the same id; distinct values whose structural fingerprint
    (scalar fields plus survival-function probes at fixed abscissae)
    agrees also share an id. *)

val key : t -> string
(** The structural key: quantity, route, scenario fingerprint, every
    domain point (floats in hex, so no precision is lost), and the
    accuracy demand.  Two queries that would produce bitwise identical
    answers through the same route compile to equal keys; anything
    that could change a single output bit — including the route, since
    a forced backend may answer differently — changes the key. *)

val size : t -> int
(** Number of evaluation points. *)

val pp : Format.formatter -> t -> unit
