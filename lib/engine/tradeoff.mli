(** The cost/reliability Pareto front.

    The paper's central qualitative claim: "minimal cost and maximal
    reliability are qualities that cannot be achieved at the same time"
    (and Figures 4 vs 6: the minima of one are not the minima of the
    other).  This module makes the claim quantitative by enumerating
    [(n, r)] designs and extracting the Pareto-optimal set over
    (mean cost, error probability).  The design grid is evaluated
    through the query engine (kernel-backed n-sweeps). *)

open Zeroconf

type design = {
  n : int;
  r : float;
  cost : float;
  log10_error : float;
      (** Error probability in log10, the scale on which the paper
          plots it. *)
}

val enumerate :
  ?n_max:int -> ?r_points:int -> ?r_max:float -> Params.t -> design list
(** All candidate designs on an [(n, r)] grid: [n = 1 .. n_max]
    (default [12]), [r] on [r_points] (default [200]) points up to
    [r_max] (default [8.]). *)

val pareto_front : design list -> design list
(** Designs not dominated by any other (lower cost {e and} lower error).
    Sorted by increasing cost (hence decreasing reliability). *)

val front :
  ?n_max:int -> ?r_points:int -> ?r_max:float -> Params.t -> design list
(** [pareto_front (enumerate p)]. *)

val knee : design list -> design option
(** The "knee" of a front sorted by cost: the design maximizing the
    distance to the segment between the front's endpoints, after
    normalizing both axes to [0, 1] — a standard heuristic for the
    best compromise.  [None] on fronts with fewer than three points. *)
