(** The cache stage: answers indexed by {!Plan.key}.

    Because the key is structural and routes are deterministic (or, for
    Monte Carlo, seeded), a hit returns an answer byte-identical to
    re-running the plan — caching changes cost, never values.  Hits are
    marked by the answer's [cached] flag; every other field, including
    [evals] and [wall_ns], still describes the original run, so
    provenance accounting stays truthful.

    A cache is single-domain state: the {!Executor} consults it before
    fanning work out over the pool and stores after results settle, so
    no locking is needed and worker domains never touch it.  Insertion
    timestamps ({!stats}' [stored_since]) are observability only — no
    computed value depends on the clock. *)

type t

type stats = {
  hits : int;        (** Lookups served from the table. *)
  misses : int;      (** Lookups that fell through to a backend. *)
  entries : int;     (** Live entries. *)
  stored_since : float option;
      (** Earliest insertion time (epoch seconds) among live entries;
          [None] when empty.  Observability only. *)
}

val create : ?capacity:int -> unit -> t
(** An empty cache.  When a store would push the table past
    [capacity] (default 4096 entries), the table is reset wholesale —
    a deterministic backstop with no eviction order to maintain. *)

val lookup : t -> Plan.t -> Answer.t option
(** The stored answer with [cached = true], or [None].  Counts one hit
    or one miss. *)

val store : t -> Plan.t -> Answer.t -> unit
(** Index [answer] under the plan's key (stored with
    [cached = false], so a later hit re-flags it). *)

val stats : t -> stats
val clear : t -> unit
(** Drop all entries and zero the counters. *)

val pp_stats : Format.formatter -> stats -> unit

(** {1 The process-wide default} *)

val default : t
(** The cache the {!Executor} uses when none is passed and caching is
    {!enabled}. *)

val set_enabled : bool -> unit
(** The explicit off switch: [set_enabled false] makes the executor
    skip {!default} entirely (an explicitly passed cache is still
    honoured).  On by default. *)

val enabled : unit -> bool
