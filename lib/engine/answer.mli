(** Provenance-tagged query results.

    Every backend returns the same shape: one {!point} per domain
    point, plus the provenance trio — which backend ran, how many
    elementary evaluations it performed, and the wall-clock time.
    "Elementary evaluation" is backend-specific: closed-form calls for
    [Analytic], survival-function steps for [Kernel], matrix builds +
    solves for [Dtmc], and simulation trials for [Mc] — comparable
    within a backend, indicative across them. *)

type value =
  | Scalar of float
      (** Deterministic routes: the value, to full float precision. *)
  | Interval of { mean : float; ci_lo : float; ci_hi : float }
      (** Monte-Carlo routes: point estimate with a 95% confidence
          interval. *)

type point = { n : int; r : float; value : value }

type t = {
  backend : string;   (** {!Backend.S.name} of the route that ran. *)
  evals : int;        (** Elementary evaluations performed.  Batched
                          executions attribute shared work to the plan
                          whose point triggered it, so evals summed
                          over a batch equal the work actually done. *)
  wall_ns : int64;    (** Wall-clock nanoseconds spent in [eval]; for
                          an answer computed inside a batch, the wall
                          time of the whole batch. *)
  cached : bool;      (** [true] when this answer was served from the
                          {!Cache} instead of a backend run; every
                          other field (including [evals] and
                          [wall_ns]) describes the original run, so
                          values are byte-identical either way. *)
  points : point array;  (** One per domain point, in sweep order. *)
}

val scalar : point -> float
(** The point estimate: the scalar itself, or the interval's mean. *)

val ci : point -> (float * float) option
(** The confidence interval, when the value carries one. *)

val pp_value : Format.formatter -> value -> unit
val pp : Format.formatter -> t -> unit
