type value =
  | Scalar of float
  | Interval of { mean : float; ci_lo : float; ci_hi : float }

type point = { n : int; r : float; value : value }

type t = {
  backend : string;
  evals : int;
  wall_ns : int64;
  cached : bool;
  points : point array;
}

let scalar pt =
  match pt.value with Scalar x -> x | Interval { mean; _ } -> mean

let ci pt =
  match pt.value with
  | Scalar _ -> None
  | Interval { ci_lo; ci_hi; _ } -> Some (ci_lo, ci_hi)

let pp_value ppf = function
  | Scalar x -> Format.fprintf ppf "%.17g" x
  | Interval { mean; ci_lo; ci_hi } ->
      Format.fprintf ppf "%.6g [%.6g, %.6g]" mean ci_lo ci_hi

let pp ppf t =
  Format.fprintf ppf "%s: %d point%s, %d evals, %.3f ms" t.backend
    (Array.length t.points)
    (if Array.length t.points = 1 then "" else "s")
    t.evals
    (Int64.to_float t.wall_ns /. 1e6);
  if Array.length t.points = 1 then
    Format.fprintf ppf " -> %a" pp_value t.points.(0).value
