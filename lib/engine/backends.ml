let time_ns f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  let t1 = Unix.gettimeofday () in
  (x, Int64.of_float (Float.max 0. ((t1 -. t0) *. 1e9)))

let answer ~backend ~evals ~wall_ns points =
  { Answer.backend; evals; wall_ns; cached = false; points }

let scalar_points pts values =
  Array.map2 (fun (n, r) v -> { Answer.n; r; value = Answer.Scalar v }) pts values

let not_sampled (q : Query.t) =
  match q.accuracy with Query.Sampled _ -> false | _ -> true

let check_batch ~name ~route ~supports (plans : Plan.t array) =
  Array.iter
    (fun (pl : Plan.t) ->
      if pl.route <> route then
        invalid_arg
          (Printf.sprintf "Backends.%s: plan routed to %s" name
             (Plan.route_name pl.route));
      if not (supports pl.query) then
        invalid_arg (Printf.sprintf "Backends.%s: unsupported query" name))
    plans

(* Index every output point of every plan by a grouping key; groups keep
   first-appearance order so batch execution is deterministic. *)
let group_points ~key (plans : Plan.t array) =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  Array.iteri
    (fun pi (pl : Plan.t) ->
      (* consecutive points of a plan usually share a key (an n-sweep
         is one column), so remember the last group and skip the table *)
      let last = ref None in
      Array.iteri
        (fun qi (n, r) ->
          let k = key pl n r in
          let g =
            match !last with
            | Some (lk, g) when lk = k -> g
            | _ ->
                let g =
                  match Hashtbl.find_opt tbl k with
                  | Some g -> g
                  | None ->
                      let g = ref [] in
                      Hashtbl.add tbl k g;
                      order := (pl, n, r, g) :: !order;
                      g
                in
                last := Some (k, g);
                g
          in
          g := (pi, qi, n) :: !g)
        pl.points)
    plans;
  Array.of_list
    (List.rev_map
       (fun (pl, n, r, g) -> (pl, n, r, Array.of_list (List.rev !g)))
       !order)

module Analytic = struct
  let name = "analytic"

  let supports (q : Query.t) =
    not_sampled q
    &&
    match q.quantity with
    | Query.Mean_cost | Query.Error_probability | Query.Log10_error
    | Query.Latency_mean ->
        true
    | Query.Cost_variance -> false

  let eval1 (q : Query.t) n r =
    let p = q.scenario in
    match q.quantity with
    | Query.Mean_cost -> Zeroconf.Cost.mean p ~n ~r
    | Query.Error_probability -> Zeroconf.Reliability.error_probability p ~n ~r
    | Query.Log10_error -> Zeroconf.Reliability.log10_error_probability p ~n ~r
    | Query.Latency_mean ->
        Zeroconf.Latency.mean (Zeroconf.Latency.periods p ~n ~r)
    | Query.Cost_variance ->
        invalid_arg "Backends.Analytic: cost variance is DRM-only"

  let eval_batch ?pool (plans : Plan.t array) =
    check_batch ~name:"Analytic" ~route:Plan.Analytic ~supports plans;
    let groups =
      Array.map
        (fun (pl : Plan.t) -> Array.map (fun (n, r) -> (pl.query, n, r)) pl.points)
        plans
    in
    let values, wall_ns =
      time_ns (fun () ->
          Exec.Parallel.map_groups ?pool (fun (q, n, r) -> eval1 q n r) groups)
    in
    Array.mapi
      (fun pi (pl : Plan.t) ->
        answer ~backend:name ~evals:(Array.length pl.points) ~wall_ns
          (scalar_points pl.points values.(pi)))
      plans

  let eval ?pool (q : Query.t) =
    if not (supports q) then invalid_arg "Backends.Analytic: unsupported query";
    (eval_batch ?pool [| Plan.make ~route:Plan.Analytic q |]).(0)
end

module Kernel = struct
  let name = "kernel"

  let supports (q : Query.t) =
    not_sampled q
    &&
    match q.quantity with
    | Query.Mean_cost | Query.Error_probability | Query.Log10_error -> true
    | Query.Cost_variance | Query.Latency_mean -> false

  let read (q : Query.t) k =
    match q.quantity with
    | Query.Mean_cost -> Zeroconf.Kernel.cost k
    | Query.Error_probability -> Zeroconf.Kernel.error_probability k
    | Query.Log10_error -> Zeroconf.Kernel.log10_error k
    | _ -> invalid_arg "Backends.Kernel: unsupported quantity"

  (* A column's stops live in parallel unboxed arrays (ns/pis/qis), not
     per-stop tuples: the batch path is only a win if its bookkeeping
     allocates less than the cursor work it saves, and 50k boxed stops
     cost more than the scan itself on point-dense batches. *)
  type column = {
    pl0 : Plan.t;          (* first plan of the column: scenario + r *)
    r : float;
    mutable fill : int;    (* next free stop slot during the fill pass *)
    ns : int array;
    pis : int array;
    qis : int array;
  }

  (* One streaming cursor per (scenario, r) column, amortized across
     every plan in the batch.  The cursor state at n does not depend on
     where reads happen, so merging plans' stops onto a shared scan is
     bitwise identical to running each plan alone; columns fan out over
     the pool.  Advances between consecutive stops are attributed to
     the plan owning the later stop, so per-plan evals sum to the scan
     work actually done. *)
  let eval_batch ?pool (plans : Plan.t array) =
    check_batch ~name:"Kernel" ~route:Plan.Kernel ~supports plans;
    (* pass 1: assign column indices in first-appearance order, count
       stops per column, and remember each stop's column in a flat
       array so pass 2 never re-hashes *)
    let tbl = Hashtbl.create 32 in
    let reps = ref [] in
    let ncols = ref 0 in
    let counts = ref (Array.make 16 0) in
    let total =
      Array.fold_left
        (fun acc (pl : Plan.t) -> acc + Array.length pl.points)
        0 plans
    in
    let stop_col = Array.make total 0 in
    let slot = ref 0 in
    Array.iter
      (fun (pl : Plan.t) ->
        (* consecutive points of a plan usually share a column (an
           n-sweep is one), so skip the table when the bits repeat *)
        let last_bits = ref 0L and last_c = ref (-1) in
        Array.iter
          (fun (_n, r) ->
            let bits = Int64.bits_of_float r in
            let c =
              if !last_c >= 0 && Int64.equal bits !last_bits then !last_c
              else begin
                let c =
                  let key = (pl.scenario_id, bits) in
                  match Hashtbl.find_opt tbl key with
                  | Some c -> c
                  | None ->
                      let c = !ncols in
                      incr ncols;
                      Hashtbl.add tbl key c;
                      reps := (pl, r) :: !reps;
                      if c >= Array.length !counts then begin
                        let bigger = Array.make (2 * c) 0 in
                        Array.blit !counts 0 bigger 0 (Array.length !counts);
                        counts := bigger
                      end;
                      c
                in
                last_bits := bits;
                last_c := c;
                c
              end
            in
            !counts.(c) <- !counts.(c) + 1;
            stop_col.(!slot) <- c;
            incr slot)
          pl.points)
      plans;
    let reps = Array.of_list (List.rev !reps) in
    let cols =
      Array.init !ncols (fun c ->
          let size = !counts.(c) in
          let pl0, r = reps.(c) in
          { pl0; r; fill = 0; ns = Array.make size 0;
            pis = Array.make size 0; qis = Array.make size 0 })
    in
    (* pass 2: fill; flat slot order is ascending (pi, qi), so each
       column's stop arrays come out sorted by batch position *)
    let slot = ref 0 in
    Array.iteri
      (fun pi (pl : Plan.t) ->
        Array.iteri
          (fun qi (n, _r) ->
            let col = cols.(stop_col.(!slot)) in
            incr slot;
            let j = col.fill in
            col.fill <- j + 1;
            col.ns.(j) <- n;
            col.pis.(j) <- pi;
            col.qis.(j) <- qi)
          pl.points)
      plans;
    let run_column (col : column) =
      let size = Array.length col.ns in
      (* scan permutation: ascending n, ties by fill order — i.e. by
         (n, pi, qi), purely so the scan is deterministic; tied stops
         read the same cursor state.  r-sweep batches fill each column
         already ascending; merged n-sweep columns are a few ascending
         runs, where a stable counting sort by n beats comparison
         sorting the interleave.  (Comparison sort stays as the
         fallback for columns whose n range dwarfs their stop count.) *)
      let ns = col.ns in
      let sorted = ref true in
      for j = 1 to size - 1 do
        if ns.(j) < ns.(j - 1) then sorted := false
      done;
      let idx =
        if !sorted then Array.init size Fun.id
        else
          let max_n = Array.fold_left Int.max 0 ns in
          if max_n > (16 * size) + 1024 then begin
            let idx = Array.init size Fun.id in
            Array.sort
              (fun a b ->
                let c = Int.compare ns.(a) ns.(b) in
                if c <> 0 then c else Int.compare a b)
              idx;
            idx
          end
          else begin
            let buckets = Array.make (max_n + 1) 0 in
            Array.iter (fun n -> buckets.(n) <- buckets.(n) + 1) ns;
            let acc = ref 0 in
            for n = 0 to max_n do
              let c = buckets.(n) in
              buckets.(n) <- !acc;
              acc := !acc + c
            done;
            let idx = Array.make size 0 in
            Array.iteri
              (fun j n ->
                idx.(buckets.(n)) <- j;
                buckets.(n) <- buckets.(n) + 1)
              ns;
            idx
          end
      in
      let k = Zeroconf.Kernel.create col.pl0.query.Query.scenario ~r:col.r in
      let at = ref 0 in
      let vals = Array.make size 0. in
      let works = Array.make size 0 in
      Array.iter
        (fun i ->
          let n = ns.(i) in
          Zeroconf.Kernel.advance_to k ~n;
          vals.(i) <- read plans.(col.pis.(i)).Plan.query k;
          works.(i) <- max 0 (n - !at);
          at := max !at n)
        idx;
      (vals, works)
    in
    let results, wall_ns =
      time_ns (fun () -> Exec.Parallel.map ?pool run_column cols)
    in
    let values =
      Array.map (fun (pl : Plan.t) -> Array.make (Array.length pl.points) 0.) plans
    in
    let evals = Array.make (Array.length plans) 0 in
    Array.iteri
      (fun c (vals, works) ->
        let col = cols.(c) in
        for j = 0 to Array.length col.ns - 1 do
          values.(col.pis.(j)).(col.qis.(j)) <- vals.(j);
          evals.(col.pis.(j)) <- evals.(col.pis.(j)) + works.(j)
        done)
      results;
    Array.mapi
      (fun pi (pl : Plan.t) ->
        answer ~backend:name ~evals:evals.(pi) ~wall_ns
          (scalar_points pl.points values.(pi)))
      plans

  let eval ?pool (q : Query.t) =
    if not (supports q) then invalid_arg "Backends.Kernel: unsupported query";
    (eval_batch ?pool [| Plan.make ~route:Plan.Kernel q |]).(0)
end

module Dtmc = struct
  let name = "dtmc"

  (* the (I - Q)^-1 solve is cubic in the state count n + 3 *)
  let max_n = 512

  let supports (q : Query.t) =
    not_sampled q
    && (match q.quantity with
       | Query.Mean_cost | Query.Error_probability | Query.Log10_error
       | Query.Cost_variance ->
           true
       | Query.Latency_mean -> false)
    && Array.for_all (fun (n, _) -> n <= max_n) (Query.points q)

  let value_of drm = function
    | Query.Mean_cost -> Zeroconf.Drm.mean_cost drm
    | Query.Error_probability -> Zeroconf.Drm.error_probability drm
    | Query.Log10_error -> Float.log10 (Zeroconf.Drm.error_probability drm)
    | Query.Cost_variance -> Zeroconf.Drm.cost_variance drm
    | Query.Latency_mean -> invalid_arg "Backends.Dtmc: no latency route"

  (* One matrix build per distinct (scenario, n, r) in the whole batch;
     every requesting point reads its own quantity from the shared
     solve.  The build is attributed to the point that requested it
     first; later readers of the same matrix cost nothing. *)
  let eval_batch ?pool (plans : Plan.t array) =
    check_batch ~name:"Dtmc" ~route:Plan.Dtmc ~supports plans;
    let builds =
      group_points plans ~key:(fun (pl : Plan.t) n r ->
          (pl.scenario_id, n, Int64.bits_of_float r))
    in
    let run_build ((pl0 : Plan.t), n, r, readers) =
      let drm = Zeroconf.Drm.build pl0.query.Query.scenario ~n ~r in
      Array.mapi
        (fun i (pi, qi, _n) ->
          ( pi,
            qi,
            value_of drm plans.(pi).Plan.query.Query.quantity,
            if i = 0 then 1 else 0 ))
        readers
    in
    let results, wall_ns =
      time_ns (fun () -> Exec.Parallel.map ?pool run_build builds)
    in
    let values =
      Array.map (fun (pl : Plan.t) -> Array.make (Array.length pl.points) 0.) plans
    in
    let evals = Array.make (Array.length plans) 0 in
    Array.iter
      (Array.iter (fun (pi, qi, v, work) ->
           values.(pi).(qi) <- v;
           evals.(pi) <- evals.(pi) + work))
      results;
    Array.mapi
      (fun pi (pl : Plan.t) ->
        answer ~backend:name ~evals:evals.(pi) ~wall_ns
          (scalar_points pl.points values.(pi)))
      plans

  let eval ?pool (q : Query.t) =
    if not (supports q) then invalid_arg "Backends.Dtmc: unsupported query";
    (eval_batch ?pool [| Plan.make ~route:Plan.Dtmc q |]).(0)
end

module Mc = struct
  let name = "mc"

  let supports (q : Query.t) =
    (match q.accuracy with Query.Sampled _ -> true | _ -> false)
    &&
    match q.quantity with
    | Query.Mean_cost | Query.Error_probability | Query.Latency_mean -> true
    | Query.Log10_error | Query.Cost_variance -> false

  let occupied_of (p : Zeroconf.Params.t) =
    let size = Zeroconf.Params.address_space_size in
    let m = int_of_float (Float.round (p.q *. float_of_int size)) in
    max 0 (min (size - 1) m)

  let eval1 (q : Query.t) ~trials ~seed index n r =
    let p = q.scenario in
    (* independent deterministic stream per sweep point, so sweeps can
       fan out over the pool without sharing an rng *)
    let rng = Numerics.Rng.create (seed + (7919 * index)) in
    let config =
      Netsim.Newcomer.drm_config ~n ~r ~probe_cost:p.probe_cost
        ~error_cost:p.error_cost
    in
    let outcomes =
      Netsim.Scenario.run_aggregate ~delay:p.delay ~occupied:(occupied_of p)
        ~config ~trials ~rng ()
    in
    match q.quantity with
    | Query.Mean_cost ->
        let agg = Netsim.Metrics.aggregate outcomes in
        let ci_lo, ci_hi = agg.Netsim.Metrics.cost_ci in
        Answer.Interval
          { mean = agg.Netsim.Metrics.cost.Numerics.Stats.mean; ci_lo; ci_hi }
    | Query.Error_probability ->
        let agg = Netsim.Metrics.aggregate outcomes in
        let ci_lo, ci_hi = agg.Netsim.Metrics.collision_ci in
        Answer.Interval { mean = agg.Netsim.Metrics.collision_rate; ci_lo; ci_hi }
    | Query.Latency_mean ->
        let times =
          Array.map
            (fun (o : Netsim.Metrics.outcome) -> o.Netsim.Metrics.config_time)
            outcomes
        in
        let mean = (Numerics.Stats.summarize times).Numerics.Stats.mean in
        let ci_lo, ci_hi = Numerics.Stats.mean_ci times in
        Answer.Interval { mean; ci_lo; ci_hi }
    | _ -> invalid_arg "Backends.Mc: unsupported quantity"

  let accuracy_of (pl : Plan.t) =
    match pl.query.Query.accuracy with
    | Query.Sampled { trials; seed } -> (trials, seed)
    | _ -> assert false (* supports demands Sampled *)

  (* Statistical plans keep their own seed streams: batching groups the
     trial work for the scheduler but never mixes rngs, so a batch is
     bitwise the same as evaluating each plan alone. *)
  let eval_batch ?pool (plans : Plan.t array) =
    check_batch ~name:"Mc" ~route:Plan.Mc ~supports plans;
    let groups =
      Array.map
        (fun (pl : Plan.t) ->
          let trials, seed = accuracy_of pl in
          Array.mapi (fun i (n, r) -> (pl.query, trials, seed, i, n, r)) pl.points)
        plans
    in
    let values, wall_ns =
      time_ns (fun () ->
          Exec.Parallel.map_groups ?pool
            (fun (q, trials, seed, i, n, r) -> eval1 q ~trials ~seed i n r)
            groups)
    in
    Array.mapi
      (fun pi (pl : Plan.t) ->
        let trials, _ = accuracy_of pl in
        let points =
          Array.map2
            (fun (n, r) value -> { Answer.n; r; value })
            pl.points values.(pi)
        in
        answer ~backend:name
          ~evals:(trials * Array.length pl.points)
          ~wall_ns points)
      plans

  let eval ?pool (q : Query.t) =
    if not (supports q) then invalid_arg "Backends.Mc: unsupported query";
    (eval_batch ?pool [| Plan.make ~route:Plan.Mc q |]).(0)
end
