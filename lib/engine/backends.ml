let time_ns f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  let t1 = Unix.gettimeofday () in
  (x, Int64.of_float (Float.max 0. ((t1 -. t0) *. 1e9)))

let answer ~backend ~evals ~wall_ns points =
  { Answer.backend; evals; wall_ns; points }

let scalar_points q values =
  Array.map2
    (fun (n, r) v -> { Answer.n; r; value = Answer.Scalar v })
    (Query.points q) values

let not_sampled (q : Query.t) =
  match q.accuracy with Query.Sampled _ -> false | _ -> true

module Analytic = struct
  let name = "analytic"

  let supports (q : Query.t) =
    not_sampled q
    &&
    match q.quantity with
    | Query.Mean_cost | Query.Error_probability | Query.Log10_error
    | Query.Latency_mean ->
        true
    | Query.Cost_variance -> false

  let eval1 (q : Query.t) n r =
    let p = q.scenario in
    match q.quantity with
    | Query.Mean_cost -> Zeroconf.Cost.mean p ~n ~r
    | Query.Error_probability -> Zeroconf.Reliability.error_probability p ~n ~r
    | Query.Log10_error -> Zeroconf.Reliability.log10_error_probability p ~n ~r
    | Query.Latency_mean ->
        Zeroconf.Latency.mean (Zeroconf.Latency.periods p ~n ~r)
    | Query.Cost_variance ->
        invalid_arg "Backends.Analytic: cost variance is DRM-only"

  let eval ?pool (q : Query.t) =
    if not (supports q) then invalid_arg "Backends.Analytic: unsupported query";
    Query.validate q;
    let pts = Query.points q in
    let values, wall_ns =
      time_ns (fun () -> Exec.Parallel.map ?pool (fun (n, r) -> eval1 q n r) pts)
    in
    answer ~backend:name ~evals:(Array.length pts) ~wall_ns
      (scalar_points q values)
end

module Kernel = struct
  let name = "kernel"

  let supports (q : Query.t) =
    not_sampled q
    &&
    match q.quantity with
    | Query.Mean_cost | Query.Error_probability | Query.Log10_error -> true
    | Query.Cost_variance | Query.Latency_mean -> false

  let one_shot (q : Query.t) ~n ~r =
    let p = q.scenario in
    match q.quantity with
    | Query.Mean_cost -> Zeroconf.Kernel.cost_at p ~n ~r
    | Query.Error_probability -> Zeroconf.Kernel.error_probability_at p ~n ~r
    | Query.Log10_error -> Zeroconf.Kernel.log10_error_at p ~n ~r
    | _ -> invalid_arg "Backends.Kernel: unsupported quantity"

  let read (q : Query.t) k =
    match q.quantity with
    | Query.Mean_cost -> Zeroconf.Kernel.cost k
    | Query.Error_probability -> Zeroconf.Kernel.error_probability k
    | Query.Log10_error -> Zeroconf.Kernel.log10_error k
    | _ -> invalid_arg "Backends.Kernel: unsupported quantity"

  let eval ?pool (q : Query.t) =
    if not (supports q) then invalid_arg "Backends.Kernel: unsupported query";
    Query.validate q;
    match q.domain with
    | Query.Point { n; r } ->
        let v, wall_ns = time_ns (fun () -> one_shot q ~n ~r) in
        answer ~backend:name ~evals:n ~wall_ns
          [| { Answer.n; r; value = Answer.Scalar v } |]
    | Query.R_sweep { n; rs } ->
        (* the figure builders' historical sweep, verbatim: one one-shot
           cursor per grid point, fanned out over the pool *)
        let pairs, wall_ns =
          time_ns (fun () ->
              Exec.Parallel.map_sweep ?pool (fun r -> one_shot q ~n ~r) rs)
        in
        let points =
          Array.map
            (fun (r, v) -> { Answer.n; r; value = Answer.Scalar v })
            pairs
        in
        answer ~backend:name ~evals:(n * Array.length rs) ~wall_ns points
    | Query.N_sweep { ns; r } ->
        (* one forward cursor serves the whole sweep: visit the probe
           counts in ascending order, scatter back to sweep order *)
        let count = Array.length ns in
        let order = Array.init count Fun.id in
        Array.sort (fun i j -> compare ns.(i) ns.(j)) order;
        let values = Array.make count 0. in
        let (), wall_ns =
          time_ns (fun () ->
              let k = Zeroconf.Kernel.create q.scenario ~r in
              Array.iter
                (fun i ->
                  Zeroconf.Kernel.advance_to k ~n:ns.(i);
                  values.(i) <- read q k)
                order)
        in
        let points =
          Array.mapi
            (fun i n -> { Answer.n; r; value = Answer.Scalar values.(i) })
            ns
        in
        answer ~backend:name ~evals:(Array.fold_left max 0 ns) ~wall_ns points
end

module Dtmc = struct
  let name = "dtmc"

  (* the (I - Q)^-1 solve is cubic in the state count n + 3 *)
  let max_n = 512

  let supports (q : Query.t) =
    not_sampled q
    && (match q.quantity with
       | Query.Mean_cost | Query.Error_probability | Query.Log10_error
       | Query.Cost_variance ->
           true
       | Query.Latency_mean -> false)
    && Array.for_all (fun (n, _) -> n <= max_n) (Query.points q)

  let eval1 (q : Query.t) n r =
    let drm = Zeroconf.Drm.build q.scenario ~n ~r in
    match q.quantity with
    | Query.Mean_cost -> Zeroconf.Drm.mean_cost drm
    | Query.Error_probability -> Zeroconf.Drm.error_probability drm
    | Query.Log10_error -> Float.log10 (Zeroconf.Drm.error_probability drm)
    | Query.Cost_variance -> Zeroconf.Drm.cost_variance drm
    | Query.Latency_mean -> invalid_arg "Backends.Dtmc: no latency route"

  let eval ?pool (q : Query.t) =
    if not (supports q) then invalid_arg "Backends.Dtmc: unsupported query";
    Query.validate q;
    let pts = Query.points q in
    let values, wall_ns =
      time_ns (fun () -> Exec.Parallel.map ?pool (fun (n, r) -> eval1 q n r) pts)
    in
    answer ~backend:name ~evals:(Array.length pts) ~wall_ns
      (scalar_points q values)
end

module Mc = struct
  let name = "mc"

  let supports (q : Query.t) =
    (match q.accuracy with Query.Sampled _ -> true | _ -> false)
    &&
    match q.quantity with
    | Query.Mean_cost | Query.Error_probability | Query.Latency_mean -> true
    | Query.Log10_error | Query.Cost_variance -> false

  let occupied_of (p : Zeroconf.Params.t) =
    let size = Zeroconf.Params.address_space_size in
    let m = int_of_float (Float.round (p.q *. float_of_int size)) in
    max 0 (min (size - 1) m)

  let eval1 (q : Query.t) ~trials ~seed index n r =
    let p = q.scenario in
    (* independent deterministic stream per sweep point, so sweeps can
       fan out over the pool without sharing an rng *)
    let rng = Numerics.Rng.create (seed + (7919 * index)) in
    let config =
      Netsim.Newcomer.drm_config ~n ~r ~probe_cost:p.probe_cost
        ~error_cost:p.error_cost
    in
    let outcomes =
      Netsim.Scenario.run_aggregate ~delay:p.delay ~occupied:(occupied_of p)
        ~config ~trials ~rng ()
    in
    match q.quantity with
    | Query.Mean_cost ->
        let agg = Netsim.Metrics.aggregate outcomes in
        let ci_lo, ci_hi = agg.Netsim.Metrics.cost_ci in
        Answer.Interval
          { mean = agg.Netsim.Metrics.cost.Numerics.Stats.mean; ci_lo; ci_hi }
    | Query.Error_probability ->
        let agg = Netsim.Metrics.aggregate outcomes in
        let ci_lo, ci_hi = agg.Netsim.Metrics.collision_ci in
        Answer.Interval { mean = agg.Netsim.Metrics.collision_rate; ci_lo; ci_hi }
    | Query.Latency_mean ->
        let times =
          Array.map
            (fun (o : Netsim.Metrics.outcome) -> o.Netsim.Metrics.config_time)
            outcomes
        in
        let mean = (Numerics.Stats.summarize times).Numerics.Stats.mean in
        let ci_lo, ci_hi = Numerics.Stats.mean_ci times in
        Answer.Interval { mean; ci_lo; ci_hi }
    | _ -> invalid_arg "Backends.Mc: unsupported quantity"

  let eval ?pool (q : Query.t) =
    if not (supports q) then invalid_arg "Backends.Mc: unsupported query";
    Query.validate q;
    let trials, seed =
      match q.accuracy with
      | Query.Sampled { trials; seed } -> (trials, seed)
      | _ -> assert false
    in
    let pts = Query.points q in
    let values, wall_ns =
      time_ns (fun () ->
          Exec.Parallel.init ?pool (Array.length pts) (fun i ->
              let n, r = pts.(i) in
              eval1 q ~trials ~seed i n r))
    in
    let points = Array.map2 (fun (n, r) value -> { Answer.n; r; value }) pts values in
    answer ~backend:name ~evals:(trials * Array.length pts) ~wall_ns points
end
