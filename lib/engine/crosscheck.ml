type report = {
  query : Query.t;
  answers : Answer.t list;
  max_rel_divergence : float;
  mc_covered : bool option;
}

let default_trials = 20_000
let default_seed = 42

let rel_divergence a b =
  if a = b then 0.
  else if not (Float.is_finite a && Float.is_finite b) then infinity
  else
    let denom = Float.max (Float.abs a) (Float.abs b) in
    if denom = 0. then 0. else Float.abs (a -. b) /. denom

let run ?pool ?(trials = default_trials) ?(seed = default_seed) (q : Query.t) =
  Query.validate q;
  let exact_q = { q with accuracy = Query.Exact } in
  (* each route forced by name through the executor: plan keys include
     the route, so the answer cache keeps the three exact runs apart
     while still serving repeat crosschecks out of the table *)
  let exact_answers =
    List.filter_map
      (fun (module B : Backend.S) ->
        if B.supports exact_q then
          Some (Executor.eval ?pool ~backend:B.name exact_q)
        else None)
      [ (module Backends.Analytic); (module Backends.Kernel);
        (module Backends.Dtmc) ]
  in
  let mc_q = { q with accuracy = Query.Sampled { trials; seed } } in
  let mc_answer =
    if Backends.Mc.supports mc_q then
      Some (Executor.eval ?pool ~backend:Backends.Mc.name mc_q)
    else None
  in
  let size = Query.size q in
  let max_rel = ref 0. in
  List.iteri
    (fun i (a : Answer.t) ->
      List.iteri
        (fun j (b : Answer.t) ->
          if j > i then
            for k = 0 to size - 1 do
              max_rel :=
                Float.max !max_rel
                  (rel_divergence
                     (Answer.scalar a.points.(k))
                     (Answer.scalar b.points.(k)))
            done)
        exact_answers)
    exact_answers;
  let mc_covered =
    match (mc_answer, exact_answers) with
    | Some mc, reference :: _ ->
        let ok = ref true in
        for k = 0 to size - 1 do
          let x = Answer.scalar reference.points.(k) in
          match Answer.ci mc.points.(k) with
          | Some (lo, hi) ->
              (* the Wilson lower bound at 0 successes is ~0 up to fp
                 noise; a hair of slack keeps exact-zero references in *)
              let slack =
                1e-12 *. Float.max 1. (Float.max (Float.abs lo) (Float.abs hi))
              in
              if not (x >= lo -. slack && x <= hi +. slack) then ok := false
          | None -> ok := false
        done;
        Some !ok
    | _ -> None
  in
  { query = q;
    answers = exact_answers @ Option.to_list mc_answer;
    max_rel_divergence = !max_rel;
    mc_covered }
