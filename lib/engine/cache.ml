type entry = { answer : Answer.t; stored_at : float }

type t = {
  table : (string, entry) Hashtbl.t;
  capacity : int;
  mutable hits : int;
  mutable misses : int;
}

type stats = {
  hits : int;
  misses : int;
  entries : int;
  stored_since : float option;
}

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  { table = Hashtbl.create 64; capacity; hits = 0; misses = 0 }

let lookup t (plan : Plan.t) =
  match Hashtbl.find_opt t.table (Plan.key plan) with
  | Some e ->
      t.hits <- t.hits + 1;
      (* the stored answer keeps the original run's provenance; only
         the cached flag distinguishes a hit, so values round-trip
         byte-identically *)
      Some { e.answer with Answer.cached = true }
  | None ->
      t.misses <- t.misses + 1;
      None

let store t (plan : Plan.t) (answer : Answer.t) =
  (* capacity backstop: a wholesale reset is deterministic and keeps
     the table bounded without an eviction order to maintain; workloads
     here are sweeps that either fit or don't *)
  if
    Hashtbl.length t.table >= t.capacity
    && not (Hashtbl.mem t.table (Plan.key plan))
  then Hashtbl.reset t.table;
  Hashtbl.replace t.table (Plan.key plan)
    { answer = { answer with Answer.cached = false };
      stored_at = Unix.gettimeofday () }

let stats t =
  let stored_since =
    Hashtbl.fold
      (fun _ e acc ->
        match acc with
        | None -> Some e.stored_at
        | Some s -> Some (Float.min s e.stored_at))
      t.table None
  in
  { hits = t.hits;
    misses = t.misses;
    entries = Hashtbl.length t.table;
    stored_since }

let clear t =
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.misses <- 0

let pp_stats ppf s =
  let total = s.hits + s.misses in
  Format.fprintf ppf "%d hit%s / %d lookup%s (%d entr%s)" s.hits
    (if s.hits = 1 then "" else "s")
    total
    (if total = 1 then "" else "s")
    s.entries
    (if s.entries = 1 then "y" else "ies")

(* the process-wide default, gated by an explicit off switch *)

let default = create ()
let enabled_flag = ref true
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag
