type quantity =
  | Mean_cost
  | Error_probability
  | Log10_error
  | Cost_variance
  | Latency_mean

type domain =
  | Point of { n : int; r : float }
  | N_sweep of { ns : int array; r : float }
  | R_sweep of { n : int; rs : float array }

type accuracy = Exact | Within of float | Sampled of { trials : int; seed : int }

type t = {
  quantity : quantity;
  scenario : Zeroconf.Params.t;
  domain : domain;
  accuracy : accuracy;
}

let check_n n =
  if n < 1 then invalid_arg (Printf.sprintf "Query: n = %d < 1" n)

let check_r r =
  (* r = 0 is the paper's boundary case C_n(0) = n c + q E (pi_i = 1 for
     every i); every deterministic route below accepts it *)
  if not (Float.is_finite r && r >= 0.) then
    invalid_arg (Printf.sprintf "Query: r = %g not non-negative and finite" r)

let validate t =
  (match t.domain with
  | Point { n; r } ->
      check_n n;
      check_r r
  | N_sweep { ns; r } ->
      if Array.length ns = 0 then invalid_arg "Query: empty n sweep";
      Array.iter check_n ns;
      check_r r
  | R_sweep { n; rs } ->
      check_n n;
      if Array.length rs = 0 then invalid_arg "Query: empty r sweep";
      Array.iter check_r rs);
  match t.accuracy with
  | Sampled { trials; _ } when trials < 1 ->
      invalid_arg (Printf.sprintf "Query: trials = %d < 1" trials)
  | Within tol when not (Float.is_finite tol && tol > 0.) ->
      invalid_arg (Printf.sprintf "Query: tolerance = %g not positive" tol)
  | _ -> ()

let make quantity scenario domain accuracy =
  let t = { quantity; scenario; domain; accuracy } in
  validate t;
  t

let point ?(accuracy = Exact) quantity scenario ~n ~r =
  make quantity scenario (Point { n; r }) accuracy

let n_sweep ?(accuracy = Exact) quantity scenario ~ns ~r =
  make quantity scenario (N_sweep { ns; r }) accuracy

let r_sweep ?(accuracy = Exact) quantity scenario ~n ~rs =
  make quantity scenario (R_sweep { n; rs }) accuracy

let size t =
  match t.domain with
  | Point _ -> 1
  | N_sweep { ns; _ } -> Array.length ns
  | R_sweep { rs; _ } -> Array.length rs

let points t =
  match t.domain with
  | Point { n; r } -> [| (n, r) |]
  | N_sweep { ns; r } -> Array.map (fun n -> (n, r)) ns
  | R_sweep { n; rs } -> Array.map (fun r -> (n, r)) rs

let quantity_name = function
  | Mean_cost -> "mean-cost"
  | Error_probability -> "error-probability"
  | Log10_error -> "log10-error"
  | Cost_variance -> "cost-variance"
  | Latency_mean -> "latency-mean"

let quantity_of_name = function
  | "mean-cost" | "cost" -> Some Mean_cost
  | "error-probability" | "error" -> Some Error_probability
  | "log10-error" -> Some Log10_error
  | "cost-variance" | "variance" -> Some Cost_variance
  | "latency-mean" | "latency" -> Some Latency_mean
  | _ -> None

let pp ppf t =
  let domain ppf = function
    | Point { n; r } -> Format.fprintf ppf "(n = %d, r = %g)" n r
    | N_sweep { ns; r } ->
        Format.fprintf ppf "(n in %d..%d, r = %g)"
          (Array.fold_left min max_int ns)
          (Array.fold_left max min_int ns)
          r
    | R_sweep { n; rs } ->
        Format.fprintf ppf "(n = %d, r in [%g, %g], %d points)" n rs.(0)
          rs.(Array.length rs - 1) (Array.length rs)
  in
  let accuracy ppf = function
    | Exact -> Format.pp_print_string ppf "exact"
    | Within tol -> Format.fprintf ppf "within %g" tol
    | Sampled { trials; seed } ->
        Format.fprintf ppf "sampled (%d trials, seed %d)" trials seed
  in
  Format.fprintf ppf "%s of %s at %a, %a" (quantity_name t.quantity)
    t.scenario.Zeroconf.Params.name domain t.domain accuracy t.accuracy
