open Zeroconf

type series = { label : string; points : (float * float) array }

type figure = {
  id : string;
  title : string;
  x_label : string;
  y_label : string;
  log_y : bool;
  y_min : float option;
  y_max : float option;
  series : series list;
}

let default_scenario () = Params.figure2
let r_grid ~points ~lo ~hi = Numerics.Grid.linspace lo hi points

(* Every figure below is a sweep of independent per-point evaluations.
   The cost/error series route through the query engine as ONE batch
   per figure — the executor hands the kernel backend all per-n
   r-sweeps together, so it streams a single cursor per r-column
   serving every n at once; outputs stay bit-identical at any job
   count, cache on or off.  The optimizer sweeps (figures 3, 4 and the
   fig. 6 envelope) stay on Optimize's kernel-backed n-scans, which
   run under the same pool. *)
let sweep f grid = Exec.Parallel.map_sweep f grid

let series_points (a : Answer.t) =
  Array.map (fun (pt : Answer.point) -> (pt.r, Answer.scalar pt)) a.points

let series_batch quantity p ~label grid ns =
  let queries =
    Array.map (fun n -> Query.r_sweep quantity p ~n ~rs:grid) (Array.of_list ns)
  in
  let answers = Executor.eval_batch queries in
  List.mapi
    (fun i n -> { label = label n; points = series_points answers.(i) })
    ns

let figure2 ?scenario ?(points = 400) () =
  let p = Option.value ~default:(default_scenario ()) scenario in
  let grid = r_grid ~points ~lo:0.01 ~hi:4. in
  { id = "fig2";
    title = "Cost functions C_1 ... C_8";
    x_label = "r (s)";
    y_label = "mean total cost C_n(r)";
    log_y = false;
    y_min = Some 0.;
    (* the paper's frame cuts off the astronomical n = 1, 2 curves *)
    y_max = Some 100.;
    series =
      series_batch Query.Mean_cost p
        ~label:(Printf.sprintf "C_%d")
        grid
        (List.init 8 (fun i -> i + 1)) }

let figure3 ?scenario ?(points = 600) () =
  let p = Option.value ~default:(default_scenario ()) scenario in
  let grid = r_grid ~points ~lo:0.02 ~hi:6. in
  { id = "fig3";
    title = "N(r): optimal number of probes for given r";
    x_label = "r (s)";
    y_label = "N(r)";
    log_y = false;
    y_min = Some 0.;
    y_max = None;
    series =
      [ { label = "N(r)";
          points =
            Array.map
              (fun (r, (n, _)) -> (r, float_of_int n))
              (Optimize.optimal_n_sweep p grid) } ] }

let figure4 ?scenario ?(points = 600) () =
  let p = Option.value ~default:(default_scenario ()) scenario in
  let grid = r_grid ~points ~lo:0.02 ~hi:6. in
  { id = "fig4";
    title = "Minimal-cost function C_min(r)";
    x_label = "r (s)";
    y_label = "C_min(r)";
    log_y = false;
    y_min = Some 0.;
    y_max = Some 100.;
    series = [ { label = "C_min"; points = Optimize.lower_envelope p grid } ] }

let figure5 ?scenario ?(points = 400) () =
  let p = Option.value ~default:(default_scenario ()) scenario in
  let grid = r_grid ~points ~lo:0.02 ~hi:6. in
  { id = "fig5";
    title = "Probability to reach state error";
    x_label = "r (s)";
    y_label = "log10 E(n, r)";
    log_y = false (* ordinate is already log10 *);
    y_min = Some (-60.);
    y_max = Some 0.;
    series =
      series_batch Query.Log10_error p
        ~label:(Printf.sprintf "E(%d, r)")
        grid
        (List.init 8 (fun i -> i + 1)) }

let figure6 ?scenario ?(points = 400) () =
  let p = Option.value ~default:(default_scenario ()) scenario in
  let base = figure5 ?scenario ~points () in
  let grid = r_grid ~points ~lo:0.02 ~hi:6. in
  let envelope =
    { label = "E(N(r), r)";
      points = sweep (fun r -> Optimize.log10_error_under_optimal_n p ~r) grid }
  in
  { base with
    id = "fig6";
    title = "Error probability under cost-optimal n";
    series = base.series @ [ envelope ] }

let all_figures () =
  [ figure2 (); figure3 (); figure4 (); figure5 (); figure6 () ]

type landscape = {
  ns : int array;
  rs : float array;
  log10_cost : float array array;
}

let cost_landscape ?scenario ?(n_max = 10) ?(r_points = 24) ?(r_lo = 0.25)
    ?(r_hi = 6.) () =
  if n_max < 1 then invalid_arg "Experiments.cost_landscape: n_max < 1";
  let p = Option.value ~default:(default_scenario ()) scenario in
  let ns = Array.init n_max (fun i -> i + 1) in
  let rs = r_grid ~points:r_points ~lo:r_lo ~hi:r_hi in
  (* one n-sweep query per column, all submitted as one batch: the
     kernel backend streams a single cursor over each column's n-range
     (n_max survival evaluations instead of O(n_max^2)), columns fan
     out across the pool, and the answers transpose into n-major rows *)
  let answers =
    Executor.eval_batch
      (Array.map (fun r -> Query.n_sweep Query.Mean_cost p ~ns ~r) rs)
  in
  let columns =
    Array.map
      (fun a -> Array.map (fun pt -> log10 (Answer.scalar pt)) a.Answer.points)
      answers
  in
  { ns;
    rs;
    log10_cost = Array.init n_max (fun i -> Array.map (fun col -> col.(i)) columns) }

let latency_figure ?scenario () =
  let p = Option.value ~default:(default_scenario ()) scenario in
  let opt = Optimize.global_optimum p in
  let r8 = (Optimize.optimal_r p ~n:8).Numerics.Minimize.x in
  let designs =
    [ (4, 2., "draft (4, 2)");
      (opt.Optimize.n, opt.Optimize.r,
       Printf.sprintf "optimal (%d, %.2f)" opt.Optimize.n opt.Optimize.r);
      (8, r8, Printf.sprintf "fast (8, %.2f)" r8) ]
  in
  let grid = Numerics.Grid.linspace 0. 15. 301 in
  let series =
    List.map
      (fun (n, r, label) ->
        let dist = Latency.periods p ~n ~r in
        { label; points = Array.map (fun t -> (t, Latency.cdf dist t)) grid })
      designs
  in
  { id = "ext-latency";
    title = "Configuration-time CDFs";
    x_label = "seconds";
    y_label = "P(configured by t)";
    log_y = false;
    y_min = Some 0.;
    y_max = Some 1.02;
    series }

let pareto_figure ?scenario () =
  let p = Option.value ~default:(default_scenario ()) scenario in
  let front = Tradeoff.front ~n_max:10 ~r_points:150 ~r_max:6. p in
  let points =
    Array.of_list
      (List.map (fun (d : Tradeoff.design) -> (d.Tradeoff.cost, d.Tradeoff.log10_error)) front)
  in
  { id = "ext-pareto";
    title = "Cost/reliability Pareto front";
    x_label = "mean total cost";
    y_label = "log10 error probability";
    log_y = false;
    y_min = None;
    y_max = None;
    series = [ { label = "front"; points } ] }

let extension_figures () = [ latency_figure (); pareto_figure () ]

let section_44_nu () = Optimize.min_useful_probes (default_scenario ())

type calibration_row = {
  label : string;
  target_n : int;
  target_r : float;
  paper_error_cost : float;
  paper_probe_cost : float;
  derived : Calibrate.result;
}

let section_45 () =
  let wireless =
    (* Sec. 4.5 network assumptions for r = 2, costs to be derived *)
    Params.v ~name:"sec45-wireless"
      ~delay:(Dist.Families.shifted_exponential ~mass:(1. -. 1e-5) ~rate:10. ~delay:1. ())
      ~q:(Params.q_of_hosts 1000) ~probe_cost:0. ~error_cost:0.
  in
  let wired =
    Params.v ~name:"sec45-wired"
      ~delay:(Dist.Families.shifted_exponential ~mass:(1. -. 1e-10) ~rate:100. ~delay:0.1 ())
      ~q:(Params.q_of_hosts 1000) ~probe_cost:0. ~error_cost:0.
  in
  [ { label = "r = 2 (unreliable/wireless)";
      target_n = 4;
      target_r = 2.;
      paper_error_cost = 5e20;
      paper_probe_cost = 3.5;
      derived = Calibrate.run wireless ~n:4 ~r:2. };
    { label = "r = 0.2 (reliable/wired)";
      target_n = 4;
      target_r = 0.2;
      paper_error_cost = 1e35;
      paper_probe_cost = 0.5;
      derived = Calibrate.run wired ~n:4 ~r:0.2 } ]

let section_6 () = Assessment.run Params.realistic_ethernet

type validation_row = {
  n : int;
  r : float;
  analytic_cost : float;
  matrix_cost : float;
  simulated_cost : Dtmc.Simulate.estimate;
  analytic_error : float;
  matrix_error : float;
  simulated_error : Dtmc.Simulate.estimate;
}

let validation ?(trials = 20_000) ?(seed = 42) () =
  (* Monte-Carlo-friendly scenario: frequent collisions, lossy probes,
     moderate error cost, so simulation resolves both outputs. *)
  let p =
    Params.v ~name:"validation"
      ~delay:(Dist.Families.shifted_exponential ~mass:0.9 ~rate:2. ~delay:0.5 ())
      ~q:0.3 ~probe_cost:1. ~error_cost:100.
  in
  let rng = Numerics.Rng.create seed in
  let row (n, r) =
    let drm = Drm.build p ~n ~r in
    { n;
      r;
      analytic_cost = Cost.mean p ~n ~r;
      matrix_cost = Drm.mean_cost drm;
      simulated_cost = Drm.simulate_cost ~trials ~rng drm;
      analytic_error = Reliability.error_probability p ~n ~r;
      matrix_error = Drm.error_probability drm;
      simulated_error = Drm.simulate_error ~trials ~rng drm }
  in
  List.map row [ (1, 0.8); (2, 0.8); (3, 0.6); (3, 1.5); (4, 1.) ]
