type design = { n : int; r : float; cost : float; log10_error : float }

let enumerate ?(n_max = 12) ?(r_points = 200) ?(r_max = 8.)
    (p : Zeroconf.Params.t) =
  if n_max < 1 then invalid_arg "Tradeoff.enumerate: n_max < 1";
  let grid = Numerics.Grid.linspace (r_max /. float_of_int r_points) r_max r_points in
  let ns = Array.init n_max (fun i -> i + 1) in
  (* one pair of n-sweep queries per r-column, all submitted as a
     single batch: the kernel backend merges each column's cost and
     error sweeps onto ONE forward cursor (cursor state is independent
     of where reads happen), so the columns match the historical
     single-cursor enumeration bit for bit, in the same n-major
     layout *)
  let cost_qs = Array.map (fun r -> Query.n_sweep Query.Mean_cost p ~ns ~r) grid in
  let err_qs =
    Array.map (fun r -> Query.n_sweep Query.Log10_error p ~ns ~r) grid
  in
  let answers = Executor.eval_batch (Array.append cost_qs err_qs) in
  let columns =
    Array.mapi
      (fun j _r ->
        let costs = answers.(j) and errors = answers.(j + Array.length grid) in
        Array.init n_max (fun i ->
            ( Answer.scalar costs.Answer.points.(i),
              Answer.scalar errors.Answer.points.(i) )))
      grid
  in
  List.concat_map
    (fun n ->
      Array.to_list
        (Array.mapi
           (fun j r ->
             let cost, log10_error = columns.(j).(n - 1) in
             { n; r; cost; log10_error })
           grid))
    (List.init n_max (fun i -> i + 1))

let pareto_front designs =
  (* sort by cost, then sweep keeping the running-best error: a design
     is on the front iff nothing cheaper has error at least as low *)
  let sorted =
    List.sort
      (fun a b ->
        match Float.compare a.cost b.cost with
        | 0 -> Float.compare a.log10_error b.log10_error
        | c -> c)
      designs
  in
  let front = ref [] in
  let best_error = ref infinity in
  List.iter
    (fun d ->
      if d.log10_error < !best_error then begin
        front := d :: !front;
        best_error := d.log10_error
      end)
    sorted;
  List.rev !front

let front ?n_max ?r_points ?r_max p =
  pareto_front (enumerate ?n_max ?r_points ?r_max p)

let knee = function
  | [] | [ _ ] | [ _; _ ] -> None
  | designs ->
      let arr = Array.of_list designs in
      let first = arr.(0) and last = arr.(Array.length arr - 1) in
      let cost_span = Float.max 1e-300 (last.cost -. first.cost) in
      let err_span = Float.max 1e-300 (first.log10_error -. last.log10_error) in
      let norm d =
        ( (d.cost -. first.cost) /. cost_span,
          (d.log10_error -. last.log10_error) /. err_span )
      in
      let x1, y1 = norm first and x2, y2 = norm last in
      let seg_len = Float.hypot (x2 -. x1) (y2 -. y1) in
      let distance d =
        let x0, y0 = norm d in
        Float.abs
          (((y2 -. y1) *. x0) -. ((x2 -. x1) *. y0) +. (x2 *. y1) -. (y2 *. x1))
        /. seg_len
      in
      let best = ref arr.(1) and best_d = ref (distance arr.(1)) in
      Array.iter
        (fun d ->
          let dist = distance d in
          if dist > !best_d then begin
            best := d;
            best_d := dist
          end)
        arr;
      Some !best
