(** First-class evaluation requests.

    A query names {e what} to compute (a paper quantity), {e where}
    (a scenario and a point or sweep over the protocol parameters
    [(n, r)]) and {e how well} (an accuracy demand) — but not {e how}:
    picking the evaluation route (closed form, streaming kernel, DTMC
    matrix solve, or Monte Carlo) is the {!Planner}'s job.  This is the
    single interface all four routes sit behind, so cross-route
    agreement checks ({!Crosscheck}) and future caching/sharding layers
    see one request type instead of four hand-wired call graphs. *)

type quantity =
  | Mean_cost          (** Eq. 3's [C(n, r)]. *)
  | Error_probability  (** Eq. 4's [E(n, r)]. *)
  | Log10_error        (** [log10 E(n, r)], stable far below float
                           underflow of [E] itself. *)
  | Cost_variance      (** Variance of the accumulated cost — DRM-only
                           (the paper's closed forms give the mean). *)
  | Latency_mean       (** Mean configuration time in seconds. *)

type domain =
  | Point of { n : int; r : float }
  | N_sweep of { ns : int array; r : float }
      (** One value per probe count at a fixed listening period. *)
  | R_sweep of { n : int; rs : float array }
      (** One value per listening period at a fixed probe count. *)

type accuracy =
  | Exact
      (** Full float precision: only the deterministic routes qualify. *)
  | Within of float
      (** Relative error at most this bound; the deterministic routes
          meet any bound, so this mainly documents intent and lets the
          planner keep cheap routes first. *)
  | Sampled of { trials : int; seed : int }
      (** Statistical estimate with a confidence interval — routes the
          query to Monte Carlo. *)

type t = {
  quantity : quantity;
  scenario : Zeroconf.Params.t;
  domain : domain;
  accuracy : accuracy;
}

val point : ?accuracy:accuracy -> quantity -> Zeroconf.Params.t -> n:int -> r:float -> t
(** Point query; [accuracy] defaults to {!Exact}. *)

val n_sweep :
  ?accuracy:accuracy -> quantity -> Zeroconf.Params.t -> ns:int array -> r:float -> t

val r_sweep :
  ?accuracy:accuracy -> quantity -> Zeroconf.Params.t -> n:int -> rs:float array -> t

val validate : t -> unit
(** Raises [Invalid_argument] unless every probe count is at least 1,
    every listening period is non-negative and finite ([r = 0] is the
    paper's boundary case, where [C_n(0) = n c + q E]), sweeps are
    non-empty, and [Sampled] demands at least one trial.  The smart
    constructors above call this. *)

val size : t -> int
(** Number of evaluation points in the domain. *)

val points : t -> (int * float) array
(** The domain flattened to [(n, r)] pairs, in sweep order. *)

val quantity_name : quantity -> string
(** Stable lower-case identifier ([mean-cost], [error-probability],
    [log10-error], [cost-variance], [latency-mean]). *)

val quantity_of_name : string -> quantity option

val pp : Format.formatter -> t -> unit
