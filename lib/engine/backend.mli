(** The contract every evaluation route implements. *)

module type S = sig
  val name : string
  (** Stable identifier: ["analytic"], ["kernel"], ["dtmc"] or ["mc"].
      Matches {!Plan.route_name} of the route this module serves. *)

  val supports : Query.t -> bool
  (** Whether this route can answer the query — quantity, domain and
      accuracy demand all considered.  [eval] on an unsupported query
      raises [Invalid_argument]. *)

  val eval : ?pool:Exec.Pool.t -> Query.t -> Answer.t
  (** Answer the query.  Sweeps fan out over [pool] (default:
      {!Exec.Pool.get}) where the route parallelizes; results are
      bit-identical at every job count.  Exactly the singleton case of
      {!eval_batch}. *)

  val eval_batch : ?pool:Exec.Pool.t -> Plan.t array -> Answer.t array
  (** Answer a batch of plans, all routed to this backend, amortizing
      shared work across them: the kernel streams one cursor per
      [(scenario, r)] column, the DTMC route builds each distinct
      matrix once, Monte Carlo keeps every plan on its own seed
      stream.  Answers come back in plan order, and every point is
      bitwise identical to evaluating the plans one by one — batching
      changes cost, never values.  Each answer's [evals] counts the
      work its plan triggered, so evals summed over the batch equal
      the work actually done; [wall_ns] is the whole batch's wall
      time.  Raises [Invalid_argument] on a plan routed elsewhere or
      not supported. *)
end
