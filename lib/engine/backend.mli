(** The contract every evaluation route implements. *)

module type S = sig
  val name : string
  (** Stable identifier: ["analytic"], ["kernel"], ["dtmc"] or ["mc"]. *)

  val supports : Query.t -> bool
  (** Whether this route can answer the query — quantity, domain and
      accuracy demand all considered.  [eval] on an unsupported query
      raises [Invalid_argument]. *)

  val eval : ?pool:Exec.Pool.t -> Query.t -> Answer.t
  (** Answer the query.  Sweeps fan out over [pool] (default:
      {!Exec.Pool.get}) where the route parallelizes; results are
      bit-identical at every job count. *)
end
