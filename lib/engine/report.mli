(** One-call executive summary of a scenario: everything a protocol
    designer needs on one page, as Markdown.

    Pulls together the whole analysis surface — optimum vs draft
    (Sec. 6's comparison), the minimal useful probe count (Sec. 4.4),
    configuration-time quantiles, the reliability at both operating
    points, the Pareto knee, and the dominant sensitivities — for any
    scenario. *)

open Zeroconf

val markdown : ?draft_n:int -> ?draft_r:float -> Params.t -> string
(** The report.  [draft_n], [draft_r] default to the Internet-draft's
    [4] and [2.]. *)

val print : ?draft_n:int -> ?draft_r:float -> Params.t -> unit
(** [markdown] to stdout. *)
