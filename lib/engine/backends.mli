(** The four evaluation routes, each behind the {!Backend.S} contract.

    {ul
    {- {!Analytic} — the paper's closed forms: [Cost.mean] (Eq. 3),
       [Reliability] (Eq. 4 and its log10), [Latency] (mean
       configuration time).  Exact; no variance route.}
    {- {!Kernel} — streaming n-scan cursors ({!Zeroconf.Kernel}): the
       same three quantities bit-identical to the closed forms, O(1)
       amortized per probe count, survival memo shared per domain.
       The cheapest route for points and sweeps.}
    {- {!Dtmc} — builds the Sec. 4.1 DRM ({!Zeroconf.Drm}) and solves
       [(I - Q)^-1] per point: the independent linear-algebra route,
       and the only one for the cost variance.  Refuses probe counts
       beyond an internal cap (the solve is cubic in [n]).}
    {- {!Mc} — the Netsim Monte-Carlo route: samples reply delays from
       the scenario's [F_X] under the DRM's period-boundary semantics
       and reports 95% confidence intervals.  Only answers [Sampled]
       queries; occupancy is [round (q * 65024)] hosts so [q] matches
       {!Zeroconf.Params.q_of_hosts}.}}

    Every route implements [eval_batch]: the kernel amortizes one
    streaming cursor per [(scenario, r)] column across the batch, the
    DTMC route builds each distinct matrix once, the analytic and
    Monte-Carlo routes flatten the batch into one balanced fan-out
    (Monte Carlo keeping each plan's seed stream intact).  Batched
    values are bitwise identical to scalar evaluation. *)

module Analytic : Backend.S
module Kernel : Backend.S
module Dtmc : Backend.S
module Mc : Backend.S
