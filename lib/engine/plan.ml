(* The compiled form of a query: validated, normalized, routed, keyed.

   Planning is separated from execution so that the executor and the
   answer cache see one canonical object per request.  The key is
   structural — two queries asking for the same quantity, on the same
   scenario, over the same points, at the same accuracy, through the
   same route, compile to the same key even when built independently —
   which is what makes the cache deterministic and shardable. *)

type route = Kernel | Analytic | Dtmc | Mc

let route_name = function
  | Kernel -> "kernel"
  | Analytic -> "analytic"
  | Dtmc -> "dtmc"
  | Mc -> "mc"

let route_of_name name =
  match String.lowercase_ascii name with
  | "kernel" -> Some Kernel
  | "analytic" -> Some Analytic
  | "dtmc" -> Some Dtmc
  | "mc" -> Some Mc
  | _ -> None

type t = {
  query : Query.t;
  route : route;
  scenario_id : int;
  points : (int * float) array;
  key : string Lazy.t;
}

(* -- scenario interning --------------------------------------------- *)

(* Scenarios are records holding closures (the delay distribution), so
   no structural equality exists.  Interning assigns each physically
   distinct Params.t a small id and a structural fingerprint computed
   once: the scalar fields plus the survival function probed at fixed
   abscissae, printed as hex floats.  Two scenarios that agree on the
   fingerprint are numerically indistinguishable to every backend read
   at those probes; physically equal scenarios always share an entry,
   so the common case (preset reuse) costs one list walk.

   The table is only ever touched from the domain that compiles plans
   (the executor compiles before fanning out over the pool), so it
   needs no lock and stays out of the R3 concurrency rule. *)

let probe_abscissae = [| 0.; 0.25; 0.5; 1.; 2.; 4. |]

let fingerprint (p : Zeroconf.Params.t) =
  let b = Buffer.create 256 in
  Buffer.add_string b p.name;
  Printf.bprintf b "|q=%h|c=%h|E=%h|F=%s|l=%h" p.q p.probe_cost p.error_cost
    p.delay.Dist.Distribution.name p.delay.Dist.Distribution.mass;
  Array.iter
    (fun t -> Printf.bprintf b "|s%h=%h" t (p.delay.Dist.Distribution.survival t))
    probe_abscissae;
  Buffer.contents b

type intern_entry = {
  params : Zeroconf.Params.t;
  id : int;
  fp : string;
}

let interned : intern_entry list ref = ref []

let intern (p : Zeroconf.Params.t) =
  match List.find_opt (fun e -> e.params == p) !interned with
  | Some e -> e
  | None ->
      let fp = fingerprint p in
      (* distinct records with identical fingerprints share the id, so
         the key (and the cache) treat them as the same scenario *)
      let e =
        match List.find_opt (fun e -> String.equal e.fp fp) !interned with
        | Some twin -> { twin with params = p }
        | None -> { params = p; id = List.length !interned; fp }
      in
      interned := e :: !interned;
      e

let scenario_id p = (intern p).id

(* -- the structural key --------------------------------------------- *)

let add_domain b (d : Query.domain) =
  match d with
  | Query.Point { n; r } -> Printf.bprintf b "P:%d:%h" n r
  | Query.N_sweep { ns; r } ->
      Printf.bprintf b "N:%h:" r;
      Array.iter (fun n -> Printf.bprintf b "%d," n) ns
  | Query.R_sweep { n; rs } ->
      Printf.bprintf b "R:%d:" n;
      Array.iter (fun r -> Printf.bprintf b "%h," r) rs

let add_accuracy b (a : Query.accuracy) =
  match a with
  | Query.Exact -> Buffer.add_string b "exact"
  | Query.Within tol -> Printf.bprintf b "within:%h" tol
  | Query.Sampled { trials; seed } -> Printf.bprintf b "sampled:%d:%d" trials seed

let key_of ~route ~fp (q : Query.t) =
  let b = Buffer.create 512 in
  Buffer.add_string b (Query.quantity_name q.quantity);
  Buffer.add_char b '|';
  Buffer.add_string b (route_name route);
  Buffer.add_char b '|';
  Buffer.add_string b fp;
  Buffer.add_char b '|';
  add_domain b q.domain;
  Buffer.add_char b '|';
  add_accuracy b q.accuracy;
  Buffer.contents b

let make ~route (q : Query.t) =
  Query.validate q;
  let entry = intern q.scenario in
  { query = q;
    route;
    scenario_id = entry.id;
    points = Query.points q;
    (* computed on demand: the key is only read when a cache is in
       play, and rendering a long domain in %h hex is a measurable
       share of compile time on cache-off batch sweeps.  Forced only
       from the caller's domain (executor partition, cache), never
       from pool workers. *)
    key = lazy (key_of ~route ~fp:entry.fp q) }

let key t = Lazy.force t.key
let size t = Array.length t.points

let pp ppf t =
  Format.fprintf ppf "%a via %s [scenario #%d, %d point%s]" Query.pp t.query
    (route_name t.route) t.scenario_id (size t)
    (if size t = 1 then "" else "s")
