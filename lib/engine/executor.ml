let resolve_cache = function
  | Some _ as c -> c
  | None -> if Cache.enabled () then Some Cache.default else None

(* every route, in dispatch order; misses are grouped so each backend
   sees one eval_batch call per run_batch *)
let routes = [ Plan.Kernel; Plan.Analytic; Plan.Dtmc; Plan.Mc ]

let run_batch ?pool ?cache (plans : Plan.t array) =
  let cache = resolve_cache cache in
  let out = Array.make (Array.length plans) None in
  let misses = ref [] in
  let followers = ref [] in
  (* key-duplicates within one batch: with a cache active only the
     first occurrence is evaluated; the rest replay its stored answer
     below, counted as hits.  Without a cache the backends still
     amortize duplicates (shared cursor stops cost zero extra work). *)
  let seen = Hashtbl.create 64 in
  Array.iteri
    (fun i pl ->
      match cache with
      | Some c ->
          let key = Plan.key pl in
          if Hashtbl.mem seen key then followers := (i, key) :: !followers
          else (
            match Cache.lookup c pl with
            | Some a -> out.(i) <- Some a
            | None ->
                Hashtbl.add seen key i;
                misses := i :: !misses)
      | None -> misses := i :: !misses)
    plans;
  let misses = List.rev !misses in
  List.iter
    (fun route ->
      match
        List.filter (fun i -> plans.(i).Plan.route = route) misses
        |> Array.of_list
      with
      | [||] -> ()
      | idxs ->
          let (module B : Backend.S) = Planner.backend_of_route route in
          let answers =
            B.eval_batch ?pool (Array.map (fun i -> plans.(i)) idxs)
          in
          Array.iteri
            (fun j i ->
              let a = answers.(j) in
              (match cache with
              | Some c -> Cache.store c plans.(i) a
              | None -> ());
              out.(i) <- Some a)
            idxs)
    routes;
  List.iter
    (fun (i, key) ->
      match cache with
      | None -> assert false
      | Some c -> (
          match Cache.lookup c plans.(i) with
          | Some a -> out.(i) <- Some a
          | None -> (
              (* capacity reset evicted the representative mid-batch:
                 replay its in-flight answer directly *)
              match out.(Hashtbl.find seen key) with
              | Some a -> out.(i) <- Some { a with Answer.cached = true }
              | None -> assert false)))
    (List.rev !followers);
  Array.map (function Some a -> a | None -> assert false) out

let run ?pool ?cache plan = (run_batch ?pool ?cache [| plan |]).(0)

let eval_batch ?pool ?cache ?backend queries =
  run_batch ?pool ?cache (Array.map (Planner.plan ?backend) queries)

let eval ?pool ?cache ?backend query =
  run ?pool ?cache (Planner.plan ?backend query)
