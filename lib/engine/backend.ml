module type S = sig
  val name : string
  val supports : Query.t -> bool
  val eval : ?pool:Exec.Pool.t -> Query.t -> Answer.t
  val eval_batch : ?pool:Exec.Pool.t -> Plan.t array -> Answer.t array
end
