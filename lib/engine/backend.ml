module type S = sig
  val name : string
  val supports : Query.t -> bool
  val eval : ?pool:Exec.Pool.t -> Query.t -> Answer.t
end
