(** The compile stage: query in, plan out.

    Route selection picks the cheapest backend that meets the accuracy
    demand.  Deterministic demands ([Exact] / [Within]) try, in order,
    {!Backends.Kernel} (O(1) amortized per point, survival memo), then
    {!Backends.Analytic} (covers latency), then {!Backends.Dtmc}
    (covers the cost variance).  [Sampled] demands route to
    {!Backends.Mc}.  The first backend whose [supports] accepts the
    query wins.

    Planning is pure: it validates, routes, and keys — no backend
    runs.  Execution belongs to the {!Executor}. *)

exception Unsupported of string
(** No backend (or the named backend) can answer the query. *)

val backends : (string * (module Backend.S)) list
(** All routes by name: [kernel], [analytic], [dtmc], [mc]. *)

val backend_of_name : string -> (module Backend.S) option
(** Case-insensitive lookup in {!backends}. *)

val plan : ?backend:string -> Query.t -> Plan.t
(** Compile the query: validate, resolve the accuracy demand to a
    concrete route (or force the named [backend]), intern the
    scenario, and key the result.  Raises {!Unsupported} when no
    backend qualifies — or when the forced one cannot answer — and
    [Invalid_argument] on a malformed query. *)

val backend_of_route : Plan.route -> (module Backend.S)
(** The backend module serving a resolved route. *)
