(** Backend selection: the cheapest route that meets the accuracy
    demand.

    Deterministic demands ([Exact] / [Within]) try, in order,
    {!Backends.Kernel} (O(1) amortized per point, survival memo), then
    {!Backends.Analytic} (covers latency), then {!Backends.Dtmc}
    (covers the cost variance).  [Sampled] demands route to
    {!Backends.Mc}.  The first backend whose [supports] accepts the
    query wins. *)

exception Unsupported of string
(** No backend (or the named backend) can answer the query. *)

val backends : (string * (module Backend.S)) list
(** All routes by name: [kernel], [analytic], [dtmc], [mc]. *)

val backend_of_name : string -> (module Backend.S) option
(** Case-insensitive lookup in {!backends}. *)

val plan : Query.t -> (module Backend.S)
(** The backend {!eval} would use.  Raises {!Unsupported} (or
    [Invalid_argument] on a malformed query). *)

val eval : ?pool:Exec.Pool.t -> ?backend:string -> Query.t -> Answer.t
(** Plan and run.  [backend] forces a specific route by name instead
    of planning; raises {!Unsupported} if it is unknown or cannot
    answer the query. *)
