type t = {
  size : int;
  mutex : Mutex.t;
  nonempty : Condition.t;        (* signalled when a task is queued *)
  settled : Condition.t;         (* signalled when a batch's last task ends *)
  queue : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t list;  (* spawned domains, <= size - 1 *)
  mutable closing : bool;        (* tells idle workers to exit *)
}

let create size =
  if size < 1 then invalid_arg "Pool.create: size < 1";
  { size;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    settled = Condition.create ();
    queue = Queue.create ();
    workers = [];
    closing = false }

let size t = t.size

(* Workers loop forever: sleep until a task is queued (or the pool is
   closing), run it outside the lock, repeat.  Tasks are pre-wrapped by
   [run] and never raise. *)
let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closing do
    Condition.wait t.nonempty t.mutex
  done;
  if Queue.is_empty t.queue then (Mutex.unlock t.mutex (* closing *))
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    task ();
    worker_loop t
  end

let at_exit_registered = ref false
let live_pools = ref []

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  t.closing <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join workers;
  Mutex.lock t.mutex;
  t.closing <- false;
  Mutex.unlock t.mutex

(* Called with t.mutex held. *)
let ensure_workers t =
  let missing = t.size - 1 - List.length t.workers in
  if missing > 0 then begin
    for _ = 1 to missing do
      t.workers <- Domain.spawn (fun () -> worker_loop t) :: t.workers
    done;
    if not !at_exit_registered then begin
      at_exit_registered := true;
      Stdlib.at_exit (fun () -> List.iter shutdown !live_pools)
    end;
    if not (List.memq t !live_pools) then live_pools := t :: !live_pools
  end

let run t tasks =
  let count = Array.length tasks in
  if count = 0 then ()
  else if t.size = 1 || count = 1 then Array.iter (fun task -> task ()) tasks
  else begin
    let pending = ref count in
    let failure = ref None in
    let wrap task () =
      (try task ()
       with exn ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock t.mutex;
         if !failure = None then failure := Some (exn, bt);
         Mutex.unlock t.mutex);
      Mutex.lock t.mutex;
      decr pending;
      if !pending = 0 then Condition.broadcast t.settled;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    ensure_workers t;
    Array.iter (fun task -> Queue.push (wrap task) t.queue) tasks;
    Condition.broadcast t.nonempty;
    (* the caller drains the queue too, then waits for in-flight tasks *)
    while not (Queue.is_empty t.queue) do
      let task = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      task ();
      Mutex.lock t.mutex
    done;
    while !pending > 0 do
      Condition.wait t.settled t.mutex
    done;
    Mutex.unlock t.mutex;
    match !failure with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Process-wide default pool                                           *)

let requested_jobs = ref None
let the_pool = ref None

let env_jobs () =
  match Sys.getenv_opt "ZEROCONF_JOBS" with
  | None -> None
  | Some text -> (
      match int_of_string_opt (String.trim text) with
      | Some jobs when jobs >= 1 -> Some jobs
      | Some _ | None -> None)

let default_jobs () =
  match !requested_jobs with
  | Some jobs -> jobs
  | None -> (
      match env_jobs () with
      | Some jobs -> jobs
      | None -> Domain.recommended_domain_count ())

let set_jobs jobs =
  if jobs < 1 then invalid_arg "Pool.set_jobs: jobs < 1";
  requested_jobs := Some jobs

let get () =
  let jobs = default_jobs () in
  match !the_pool with
  | Some pool when pool.size = jobs -> pool
  | other ->
      Option.iter
        (fun old ->
          shutdown old;
          live_pools := List.filter (fun p -> p != old) !live_pools)
        other;
      let pool = create jobs in
      the_pool := Some pool;
      pool
