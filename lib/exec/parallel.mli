(** Deterministic data-parallel maps over the {!Pool} domains.

    Results are written into their output slot by index, so the output
    ordering is that of the input regardless of which domain computed
    which chunk — for a pure function the result is bit-identical to
    the serial [Array.map]/[Array.init] at every job count.  Inputs are
    split into contiguous chunks (about four per worker, via
    {!Numerics.Grid.chunks}) so uneven per-point costs still balance.

    All functions take the process-wide default pool ({!Pool.get})
    unless [?pool] is given, and fall back to the plain serial loop
    when the pool size is [1] or the input has fewer than two
    elements. *)

val init : ?pool:Pool.t -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init].  Raises [Invalid_argument] on a negative
    length.  If [f] raises, the first exception observed is re-raised
    in the caller after the batch settles. *)

val map : ?pool:Pool.t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]. *)

val map_sweep : ?pool:Pool.t -> (float -> 'a) -> float array -> (float * 'a) array
(** Parallel variant of {!Numerics.Grid.map_sweep}: evaluate [f] over a
    grid, pairing each abscissa with its value. *)

val map_groups : ?pool:Pool.t -> ('a -> 'b) -> 'a array array -> 'b array array
(** Batch scheduler: map [f] over every element of every group,
    preserving the group structure.  Groups are flattened into one
    index space before chunking, so a batch of many small sweeps
    load-balances as well as one large sweep; each result is written
    back to its own slot, so the output is bit-identical to the serial
    nested map at every job count. *)

val iter_chunks : ?pool:Pool.t -> ('a array -> unit) -> 'a array -> unit
(** Run [f] on each contiguous chunk of the input, in parallel.  For
    side-effecting consumers (accumulation into per-chunk state);
    chunk boundaries follow {!Numerics.Grid.chunks}. *)
