let resolve = function Some pool -> pool | None -> Pool.get ()

(* About four chunks per worker: coarse enough to amortize queueing,
   fine enough to balance sweeps whose per-point cost varies (e.g.
   Optimize.optimal_n is much dearer at small r). *)
let chunk_count pool n = min n (4 * Pool.size pool)

let init ?pool n f =
  if n < 0 then invalid_arg "Parallel.init: negative length";
  let pool = resolve pool in
  if Pool.size pool = 1 || n < 2 then Array.init n f
  else begin
    let results = Array.make n None in
    let indices = Array.init n Fun.id in
    let tasks =
      Array.map
        (fun chunk () -> Array.iter (fun i -> results.(i) <- Some (f i)) chunk)
        (Numerics.Grid.chunks (chunk_count pool n) indices)
    in
    Pool.run pool tasks;
    Array.map
      (function Some value -> value | None -> assert false (* all slots filled *))
      results
  end

let map ?pool f xs = init ?pool (Array.length xs) (fun i -> f xs.(i))

let map_sweep ?pool f xs =
  init ?pool (Array.length xs) (fun i ->
      let x = xs.(i) in
      (x, f x))

let map_groups ?pool f groups =
  (* flatten into one index space so chunking balances across groups of
     uneven size, then scatter back; results land by index, so output
     is bit-identical to the serial nested map at every job count *)
  let total = Array.fold_left (fun acc g -> acc + Array.length g) 0 groups in
  let flat_in = Array.make total None in
  let slot = ref 0 in
  Array.iter
    (Array.iter (fun x ->
         flat_in.(!slot) <- Some x;
         incr slot))
    groups;
  let flat_out =
    init ?pool total (fun i ->
        match flat_in.(i) with Some x -> f x | None -> assert false)
  in
  let slot = ref 0 in
  Array.map
    (fun g ->
      Array.init (Array.length g) (fun _ ->
          let y = flat_out.(!slot) in
          incr slot;
          y))
    groups

let iter_chunks ?pool f xs =
  let pool = resolve pool in
  let n = Array.length xs in
  if n = 0 then ()
  else if Pool.size pool = 1 || n = 1 then f xs
  else
    Pool.run pool
      (Array.map
         (fun chunk () -> f chunk)
         (Numerics.Grid.chunks (chunk_count pool n) xs))
