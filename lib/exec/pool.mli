(** A reusable fixed-size pool of OCaml 5 domains.

    Every parameter sweep in this repository (the figure grids, the
    optimization scans, the Monte-Carlo replications) is embarrassingly
    parallel; this pool is the one place that owns worker domains for
    all of them.  Workers are spawned lazily on the first parallel
    batch and reused until {!shutdown} (registered automatically with
    [at_exit]), so the spawn cost is paid once per process.

    A pool of size [1] never spawns a domain: {!run} degrades to a
    plain sequential loop, which keeps single-job runs byte-identical
    to the pre-parallel code path and free of any synchronization. *)

type t
(** A fixed-size pool.  Thread-safe: concurrent {!run} batches from
    different domains interleave correctly (tasks must not themselves
    call {!run} on the same pool — no nested parallelism). *)

val create : int -> t
(** [create jobs] makes a pool of total parallelism [jobs] (the caller
    counts as one worker, so [jobs - 1] domains are spawned, lazily).
    Raises [Invalid_argument] if [jobs < 1]. *)

val size : t -> int
(** Total parallelism, including the calling domain. *)

val run : t -> (unit -> unit) array -> unit
(** [run t tasks] executes every task and returns when all are done.
    The caller participates, draining the shared queue alongside the
    workers.  If any task raises, the first exception (in completion
    order) is re-raised in the caller with its backtrace after the
    whole batch has settled. *)

val shutdown : t -> unit
(** Join all worker domains.  The pool remains usable afterwards
    (workers respawn lazily); called automatically at exit for pools
    with live workers. *)

(** {2 The process-wide default pool}

    Resolution order for the default job count: {!set_jobs} if called,
    else the [ZEROCONF_JOBS] environment variable, else
    [Domain.recommended_domain_count ()]. *)

val default_jobs : unit -> int
(** The job count the next {!get} will use. *)

val set_jobs : int -> unit
(** Pin the default job count (the [--jobs] CLI flag lands here).
    Raises [Invalid_argument] if [jobs < 1].  An existing default pool
    of a different size is shut down and replaced lazily. *)

val get : unit -> t
(** The process-wide pool at the current {!default_jobs} size,
    (re)created on demand. *)
