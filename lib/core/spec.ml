let probe_num = 4
let probe_wait = 1.
let probe_min = 1.
let probe_max = 2.
let announce_num = 2
let announce_interval = 2.
let max_conflicts = 10
let rate_limit_interval = 60.
let defend_interval = 10.

let model_parameters () = (probe_num, 0.5 *. (probe_min +. probe_max))

let simulator_config (p : Params.t) =
  { Netsim.Newcomer.probes = probe_num;
    listen = 0.5 *. (probe_min +. probe_max);
    listen_jitter = Some (probe_min, probe_max);
    probe_cost = p.probe_cost;
    error_cost = p.error_cost;
    immediate_abort = true;
    rate_limit = Some (max_conflicts, rate_limit_interval);
    avoid_failed = true;
    announce = Some (announce_num, announce_interval) }
