module SF = Numerics.Safe_float

let check name n r =
  if n < 1 then invalid_arg (name ^ ": n must be >= 1");
  if r < 0. then invalid_arg (name ^ ": negative listening period")

let error_probability (p : Params.t) ~n ~r =
  check "Reliability.error_probability" n r;
  let pi_n = Probes.pi p ~n ~r in
  SF.clamp_probability
    (SF.div (p.q *. pi_n) (1. -. (p.q *. (1. -. pi_n))))

let log10_error_probability (p : Params.t) ~n ~r =
  check "Reliability.log10_error_probability" n r;
  let log_pi = Probes.log_pi p ~n ~r in
  (* denominator 1 - q(1 - pi_n): pi_n may underflow but the denominator
     stays near 1 - q, so evaluate it with the clamped pi_n *)
  let pi_n = SF.exp log_pi in
  let denom = 1. -. (p.q *. (1. -. pi_n)) in
  SF.div (SF.log p.q +. log_pi -. SF.log denom) (SF.log 10.)

let reliability p ~n ~r = 1. -. error_probability p ~n ~r

let error_bound (p : Params.t) ~n =
  if n < 1 then invalid_arg "Reliability.error_bound: n must be >= 1";
  let floor_pi = Probes.pi_limit p ~n in
  SF.div (p.q *. floor_pi) (1. -. (p.q *. (1. -. floor_pi)))
