module SF = Numerics.Safe_float

let check_args name i r =
  if i < 0 then invalid_arg (name ^ ": negative probe index");
  if r < 0. then invalid_arg (name ^ ": negative listening period")

(* Eq. 1 telescopes to a single survival ratio: each factor is
   S(jr)/S((j-1)r), so the product over j = 1..i collapses to
   S(ir)/S(0). *)
let no_answer (p : Params.t) ~i ~r =
  check_args "Probes.no_answer" i r;
  if i = 0 then 1.
  else
    let s = p.delay.survival in
    let s0 = s 0. in
    if s0 <= 0. then 0. else SF.div (s (float_of_int i *. r)) s0

let no_answer_literal (p : Params.t) ~i ~r =
  check_args "Probes.no_answer_literal" i r;
  let f = p.delay.cdf in
  let acc = ref 1. in
  for j = 1 to i do
    let fj = f (float_of_int j *. r) and fj1 = f (float_of_int (j - 1) *. r) in
    let denom = 1. -. fj1 in
    let factor = if denom <= 0. then 0. else 1. -. SF.div (fj -. fj1) denom in
    acc := !acc *. SF.clamp_probability factor
  done;
  !acc

(* The loops below inline [no_answer] with the survival closure and
   [s 0.] hoisted: both are loop-invariant, and [s 0.] in particular
   re-evaluates the distribution's CDF at every call. *)
let pi_all (p : Params.t) ~n ~r =
  check_args "Probes.pi_all" n r;
  let s = p.delay.survival in
  let s0 = s 0. in
  let out = Array.make (n + 1) 1. in
  for i = 1 to n do
    let ratio = if s0 <= 0. then 0. else SF.div (s (float_of_int i *. r)) s0 in
    out.(i) <- out.(i - 1) *. ratio
  done;
  out

let pi (p : Params.t) ~n ~r =
  check_args "Probes.pi" n r;
  let s = p.delay.survival in
  let s0 = s 0. in
  let acc = ref 1. in
  for i = 1 to n do
    let ratio = if s0 <= 0. then 0. else SF.div (s (float_of_int i *. r)) s0 in
    acc := !acc *. ratio
  done;
  !acc

let log_pi (p : Params.t) ~n ~r =
  check_args "Probes.log_pi" n r;
  let s = p.delay.survival in
  let s0 = s 0. in
  let acc = ref 0. in
  for i = 1 to n do
    (* log p_i = log S(ir) - log S(0); S(0) = 1 for delay >= 0 *)
    let si = SF.div (s (float_of_int i *. r)) s0 in
    acc := !acc +. (if si <= 0. then neg_infinity else SF.log si)
  done;
  !acc

let pi_limit (p : Params.t) ~n =
  if n < 0 then invalid_arg "Probes.pi_limit: negative n";
  SF.pow (Dist.Distribution.loss_probability p.delay) (float_of_int n)
