(* Streaming evaluation kernel for the n-sweeps behind Figs. 3-6.

   Every quantity the optimizers scan over n — Eq. 3's mean cost and
   Eq. 4's error probability — depends on n only through the telescoped
   no-answer products pi_n = prod_{i<=n} S(ir)/S(0), their prefix sum
   sum_{i<n} pi_i, and the log-space twin of pi_n.  All three obey O(1)
   recurrences in n, so a scan to n_max needs one survival evaluation
   per step instead of the O(n) rebuild that calling [Cost.mean] /
   [Reliability.error_probability] point-by-point performs.

   Bit-identity contract: the recurrences below replicate, operation by
   operation, the loops in [Probes.pi_all] / [Probes.pi] /
   [Probes.log_pi] and the element order of [Numerics.Safe_float.sum],
   and the readers replicate the closed-form expressions in [Cost.mean]
   and [Reliability].  A kernel-swept value is therefore the same float,
   bit for bit, as the direct call — the golden CLI and figure outputs
   cannot move.  [test/test_kernel.ml] and the bench smoke target hold
   this contract. *)

(* Per-domain survival memo.  Dense r-grids revisit the same abscissae
   i*r (lattices r = k*d in particular), and [s 0.] is re-evaluated by
   every cursor; caching survival values turns those repeats into table
   hits.  The table lives in domain-local storage so cursors running on
   the [Exec.Pool] domains never share state — no locks, no
   cross-domain traffic, and identical values whatever the job count
   (the memo can only change speed, never results, because survival
   closures are pure).  Keys: the distribution record by physical
   identity, then the float abscissa.  Capacity is a backstop, not an
   eviction policy: overflow drops the table wholesale. *)
module SF = Numerics.Safe_float

module Memo = struct
  (* monomorphic float keys: skips the polymorphic-compare dispatch on
     the [find] hot path *)
  module Tbl = Hashtbl.Make (struct
    type t = float

    let equal (a : float) b = a = b
    let hash (x : float) = Hashtbl.hash x
  end)

  type entry = { dist : Dist.Distribution.t; table : float Tbl.t }

  let max_dists = 8
  let max_points = 1 lsl 20

  let key : entry list ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [])

  let survival (dist : Dist.Distribution.t) =
    let entries = Domain.DLS.get key in
    let entry =
      match List.find_opt (fun e -> e.dist == dist) !entries with
      | Some e -> e
      | None ->
          let e = { dist; table = Tbl.create 1024 } in
          if List.length !entries >= max_dists then entries := [ e ]
          else entries := e :: !entries;
          e
    in
    let s = dist.survival in
    fun t ->
      try Tbl.find entry.table t
      with Not_found ->
        let v = s t in
        if Tbl.length entry.table >= max_points then Tbl.reset entry.table;
        Tbl.add entry.table t v;
        v
end

type t = {
  params : Params.t;
  r : float;
  survival : float -> float;
  s0 : float;
  mutable n : int;
  mutable ratio : float;
  mutable pi : float;
  mutable log_pi : float;
  (* Neumaier running state for sum_{i < n} pi_i; reading the sum as
     [sum +. comp] matches [Safe_float.sum] on the prefix array. *)
  mutable sum : float;
  mutable comp : float;
}

let create ?(memo = true) (p : Params.t) ~r =
  if r < 0. then invalid_arg "Kernel.create: negative listening period";
  let survival = if memo then Memo.survival p.delay else p.delay.survival in
  let s0 = survival 0. in
  { params = p;
    r;
    survival;
    s0;
    n = 0;
    ratio = 1.;
    pi = 1.;
    log_pi = 0.;
    sum = 0.;
    comp = 0. }

let n k = k.n
let r k = k.r
let params k = k.params
let ratio k = k.ratio
let pi k = k.pi
let log_pi k = k.log_pi
let sum_pi k = k.sum +. k.comp

let advance k =
  (* pi_n joins the prefix sum before the step to n + 1 *)
  let x = k.pi in
  let t = k.sum +. x in
  if Float.abs k.sum >= Float.abs x then k.comp <- k.comp +. ((k.sum -. t) +. x)
  else k.comp <- k.comp +. ((x -. t) +. k.sum);
  k.sum <- t;
  let i = k.n + 1 in
  let s_ir = k.survival (float_of_int i *. k.r) in
  (* [si] divides unguarded exactly as [Probes.log_pi] does; the ratio
     carries the [Probes.pi_all] guard (identical quotient when the
     guard does not fire) *)
  let si = SF.div s_ir k.s0 in
  k.ratio <- (if k.s0 <= 0. then 0. else si);
  k.pi <- k.pi *. k.ratio;
  (* [si = 1.] skips the transcendental on the pre-round-trip plateau;
     IEEE guarantees [log 1. = +0.], so the sum is unchanged bit for
     bit *)
  k.log_pi <-
    (k.log_pi
    +. (if si <= 0. then neg_infinity else if si = 1. then 0. else SF.log si));
  k.n <- i

let advance_to k ~n =
  if n < k.n then invalid_arg "Kernel.advance_to: cursor already past n";
  while k.n < n do
    advance k
  done

let require_step name k =
  if k.n < 1 then invalid_arg (name ^ ": n must be >= 1 (advance first)")

(* Eq. 3, exactly as [Cost.mean] assembles it *)
let cost k =
  require_step "Kernel.cost" k;
  let p = k.params in
  let sum_pi = k.sum +. k.comp in
  let pi_n = k.pi in
  let numerator =
    ((k.r +. p.probe_cost)
     *. ((float_of_int k.n *. (1. -. p.q)) +. (p.q *. sum_pi)))
    +. (p.q *. p.error_cost *. pi_n)
  in
  SF.div numerator (1. -. (p.q *. (1. -. pi_n)))

(* Eq. 4, exactly as [Reliability.error_probability] *)
let error_probability k =
  require_step "Kernel.error_probability" k;
  let p = k.params in
  let pi_n = k.pi in
  SF.clamp_probability
    (SF.div (p.q *. pi_n) (1. -. (p.q *. (1. -. pi_n))))

(* deep-tail twin, exactly as [Reliability.log10_error_probability] *)
let log10_error k =
  require_step "Kernel.log10_error" k;
  let p = k.params in
  let log_pi = k.log_pi in
  let pi_n = SF.exp log_pi in
  let denom = 1. -. (p.q *. (1. -. pi_n)) in
  SF.div (SF.log p.q +. log_pi -. SF.log denom) (SF.log 10.)

let one_shot name ?memo read (p : Params.t) ~n ~r =
  if n < 1 then invalid_arg (name ^ ": n must be >= 1");
  if r < 0. then invalid_arg (name ^ ": negative listening period");
  let k = create ?memo p ~r in
  advance_to k ~n;
  read k

let cost_at ?memo p ~n ~r = one_shot "Kernel.cost_at" ?memo cost p ~n ~r

let error_probability_at ?memo p ~n ~r =
  one_shot "Kernel.error_probability_at" ?memo error_probability p ~n ~r

let log10_error_at ?memo p ~n ~r =
  one_shot "Kernel.log10_error_at" ?memo log10_error p ~n ~r
