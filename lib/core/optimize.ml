module SF = Numerics.Safe_float

type point = { n : int; r : float; cost : float; error_prob : float }

let min_useful_probes (p : Params.t) =
  let loss = Params.loss_probability p in
  if loss <= 0. || p.error_cost <= 1. then 1
  else
    let nu = Float.ceil (SF.div (-.SF.log p.error_cost) (SF.log loss)) in
    max 1 (int_of_float nu)

(* Initial search scale for r: past the round-trip bulk of the delay
   distribution the polynomial term is already decaying, so a high
   quantile of the conditional delay is a sound starting point. *)
let default_r_hi (p : Params.t) ~n =
  let bulk =
    match p.delay.mean with
    | Some m -> 4. *. m
    | None -> (
        try Dist.Distribution.quantile p.delay (0.99 *. p.delay.mass)
        with Invalid_argument _ -> 1.)
  in
  Float.max 1. (bulk *. Float.max 1. (SF.div 8. (float_of_int n)))

let optimal_r ?r_hi ?(samples = 512) (p : Params.t) ~n =
  if n < 1 then invalid_arg "Optimize.optimal_r: n must be >= 1";
  let f r = Kernel.cost_at p ~n ~r in
  let rec search hi attempts =
    let result = Numerics.Minimize.grid_then_brent ~samples ~f 0. hi in
    if result.x >= 0.95 *. hi && attempts < 60 then search (hi *. 2.) (attempts + 1)
    else result
  in
  let hi = match r_hi with Some h -> h | None -> default_r_hi p ~n in
  search hi 0

type n_scan = { n : int; cost : float; error_prob : float; log10_error : float }

let optimal_n_scan ?(n_max = 4096) ?(patience = 24) (p : Params.t) ~r =
  if r < 0. then invalid_arg "Optimize.optimal_n: negative r";
  (* One streaming kernel cursor serves the whole scan: the first-useful
     probe search, every cost evaluation, and the error probability of
     the winner all read off the same O(1)-per-step recurrences, so the
     scan costs one survival evaluation per candidate n instead of the
     former O(n) rebuild per candidate. *)
  let k = Kernel.create p ~r in
  Kernel.advance k;
  let best_n = ref 1 and best_cost = ref (Kernel.cost k) in
  let best_pi = ref (Kernel.pi k) and best_log_pi = ref (Kernel.log_pi k) in
  (* While i*r is below the round-trip delay, p_i(r) = 1 and the cost
     rises linearly in n on a plateau at height ~ qE; the first n whose
     horizon can see a reply is where the descent can start.  Below that
     point n = 1 is the (bad) optimum of the plateau.  [ratio] is
     exactly [Probes.no_answer ~i:n], so the cursor walks the old
     first-useful search; at r = 0 no horizon ever sees a reply and the
     scan starts at n_max, as before. *)
  if r = 0. then
    while Kernel.n k < n_max do
      Kernel.advance k
    done
  else
    while (not (Kernel.ratio k < 1.)) && Kernel.n k < n_max do
      Kernel.advance k
    done;
  let misses = ref 0 in
  let at_end = ref false in
  while (not !at_end) && !misses < patience && Kernel.n k <= n_max do
    let c = Kernel.cost k in
    if c < !best_cost then begin
      best_n := Kernel.n k;
      best_cost := c;
      best_pi := Kernel.pi k;
      best_log_pi := Kernel.log_pi k;
      misses := 0
    end else incr misses;
    if Kernel.n k < n_max then Kernel.advance k else at_end := true
  done;
  (* Eq. 4 readings for the winner, from the pi / log-pi snapshots taken
     at its step — the same expressions as [Reliability], bit for bit. *)
  let error_prob =
    SF.clamp_probability
      (SF.div (p.q *. !best_pi) (1. -. (p.q *. (1. -. !best_pi))))
  in
  let log10_error =
    let pi_n = SF.exp !best_log_pi in
    let denom = 1. -. (p.q *. (1. -. pi_n)) in
    SF.div (SF.log p.q +. !best_log_pi -. SF.log denom) (SF.log 10.)
  in
  { n = !best_n; cost = !best_cost; error_prob; log10_error }

let optimal_n ?n_max ?patience (p : Params.t) ~r =
  let scan = optimal_n_scan ?n_max ?patience p ~r in
  (scan.n, scan.cost)

let min_cost ?n_max ?patience p ~r = snd (optimal_n ?n_max ?patience p ~r)

(* Grid sweeps of the step function and its envelope: every point is an
   independent scan over n, so they fan out across the Exec domains.
   Slot-indexed writes keep the output bit-identical at any job count. *)
let optimal_n_sweep ?pool ?n_max ?patience (p : Params.t) grid =
  Exec.Parallel.map_sweep ?pool (fun r -> optimal_n ?n_max ?patience p ~r) grid

let lower_envelope ?pool ?n_max ?patience (p : Params.t) grid =
  Array.map
    (fun (r, (_, cost)) -> (r, cost))
    (optimal_n_sweep ?pool ?n_max ?patience p grid)

let error_under_optimal_n ?n_max (p : Params.t) ~r =
  (optimal_n_scan ?n_max p ~r).error_prob

let log10_error_under_optimal_n ?n_max (p : Params.t) ~r =
  (optimal_n_scan ?n_max p ~r).log10_error

let global_optimum ?(n_max = 4096) ?(patience = 8) (p : Params.t) =
  let evaluate n =
    let { Numerics.Minimize.x = r; fx = cost; _ } = optimal_r p ~n in
    { n; r; cost; error_prob = Kernel.error_probability_at p ~n ~r }
  in
  let best = ref (evaluate 1) in
  let misses = ref 0 in
  let n = ref 2 in
  (* skip straight to nu when it prunes a long useless prefix *)
  let nu = min_useful_probes p in
  if nu > 8 then begin
    let at_nu = evaluate nu in
    if at_nu.cost < !best.cost then best := at_nu;
    n := nu + 1
  end;
  while !misses < patience && !n <= n_max do
    let candidate = evaluate !n in
    if candidate.cost < !best.cost then begin
      best := candidate;
      misses := 0
    end else incr misses;
    incr n
  done;
  !best

let constrained_optimum ?(n_max = 32) ~budget (p : Params.t) =
  if budget <= 0. then invalid_arg "Optimize.constrained_optimum: budget <= 0";
  let evaluate n =
    let r_cap = SF.div budget (float_of_int n) in
    let unconstrained = optimal_r ~r_hi:r_cap p ~n in
    let r = Float.min unconstrained.Numerics.Minimize.x r_cap in
    let k = Kernel.create p ~r in
    Kernel.advance_to k ~n;
    { n; r; cost = Kernel.cost k; error_prob = Kernel.error_probability k }
  in
  let best = ref (evaluate 1) in
  for n = 2 to n_max do
    let candidate = evaluate n in
    if candidate.cost < !best.cost then best := candidate
  done;
  !best

let probes_for_error_target ?(n_max = 256) (p : Params.t) ~r ~target =
  if not (SF.is_probability target) then
    invalid_arg "Optimize.probes_for_error_target: target outside [0, 1]";
  if r < 0. then
    invalid_arg "Optimize.probes_for_error_target: negative listening period";
  (* one cursor instead of an O(n) rebuild per tested n *)
  let k = Kernel.create p ~r in
  let rec search () =
    if Kernel.n k >= n_max then None
    else begin
      Kernel.advance k;
      if Kernel.error_probability k <= target then Some (Kernel.n k)
      else search ()
    end
  in
  search ()
