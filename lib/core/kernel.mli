(** Streaming n-sweep evaluation kernel.

    For a fixed scenario and listening period [(p, r)], a cursor of
    type {!t} maintains the recurrences

    {[ pi_n     = pi_(n-1) * S(n r) / S(0)
       sum_n    = sum_(n-1) + pi_(n-1)        (compensated)
       log pi_n = log pi_(n-1) + log (S(n r) / S(0)) ]}

    so that after [n] calls to {!advance} it can emit Eq. 3's mean cost,
    Eq. 4's error probability, and the log10 error in O(1) — one
    survival evaluation per step, against the O(n) rebuild that the
    point-wise [Cost.mean] / [Reliability] calls pay.  The optimizers'
    n-scans ({!Optimize.optimal_n}, the Fig. 4 envelope,
    {!Optimize.global_optimum}) and the figure builders run on cursors.

    {b Bit-identity.}  The recurrences replicate the exact operation
    sequences of [Probes.pi_all]/[pi]/[log_pi] and
    [Numerics.Safe_float.sum], and the readers replicate [Cost.mean]
    and [Reliability] verbatim, so every emitted float equals the
    direct computation bit for bit — golden outputs cannot move.

    {b Survival memo.}  Cursors share a per-domain memo of survival
    evaluations keyed on the distribution (physical identity) and the
    abscissa [i * r], so dense r-grids that revisit the same points
    (e.g. lattices [r = k d]) hit the cache.  The table lives in
    [Domain.DLS]: domains of an [Exec.Pool] never share it, which keeps
    the kernel lock-free and its results independent of the job count.
    Pass [~memo:false] to bypass the table (identical values either
    way). *)

type t
(** A streaming cursor: scenario, listening period, and the recurrence
    state at the current probe count [n]. *)

val create : ?memo:bool -> Params.t -> r:float -> t
(** Cursor at [n = 0] ([pi_0 = 1], empty prefix sum).  [memo] (default
    [true]) routes survival evaluations through the per-domain memo
    table.  Raises [Invalid_argument] on a negative [r]. *)

val advance : t -> unit
(** Step [n] to [n + 1]: folds [pi_n] into the prefix sum and performs
    the single survival evaluation at [(n + 1) r]. *)

val advance_to : t -> n:int -> unit
(** {!advance} until the cursor sits at [n].  Raises
    [Invalid_argument] if the cursor is already past [n] (cursors only
    move forward). *)

val n : t -> int
(** Current probe count. *)

val r : t -> float
(** The fixed listening period. *)

val params : t -> Params.t
(** The fixed scenario. *)

val ratio : t -> float
(** [p_n(r) = S(n r)/S(0)] from the latest step (Eq. 1 telescoped),
    [1.] at [n = 0]; equals [Probes.no_answer ~i:n]. *)

val pi : t -> float
(** [pi_n(r)]; equals [Probes.pi ~n] bit for bit. *)

val log_pi : t -> float
(** [log pi_n(r)]; equals [Probes.log_pi ~n] bit for bit. *)

val sum_pi : t -> float
(** [pi_0 + ... + pi_(n-1)], compensated; equals
    [Safe_float.sum_prefix (Probes.pi_all ~n) n] bit for bit. *)

val cost : t -> float
(** Eq. 3 at the cursor; equals [Cost.mean ~n] bit for bit.  Raises
    [Invalid_argument] at [n = 0]. *)

val error_probability : t -> float
(** Eq. 4 at the cursor; equals [Reliability.error_probability ~n] bit
    for bit.  Raises [Invalid_argument] at [n = 0]. *)

val log10_error : t -> float
(** Equals [Reliability.log10_error_probability ~n] bit for bit.
    Raises [Invalid_argument] at [n = 0]. *)

(** {1 One-shot reads}

    Convenience wrappers building a cursor, advancing to [n] and
    reading once — drop-in replacements for the direct calls that still
    benefit from the survival memo across calls. *)

val cost_at : ?memo:bool -> Params.t -> n:int -> r:float -> float
val error_probability_at : ?memo:bool -> Params.t -> n:int -> r:float -> float
val log10_error_at : ?memo:bool -> Params.t -> n:int -> r:float -> float
