module SF = Numerics.Safe_float

let check name n r =
  if n < 1 then invalid_arg (name ^ ": n must be >= 1");
  if r < 0. then invalid_arg (name ^ ": negative listening period")

let mean (p : Params.t) ~n ~r =
  check "Cost.mean" n r;
  let pis = Probes.pi_all p ~n ~r in
  let sum_pi =
    SF.sum_prefix pis n (* pi_0 .. pi_{n-1}, no copy *)
  in
  let pi_n = pis.(n) in
  let numerator =
    ((r +. p.probe_cost)
     *. ((float_of_int n *. (1. -. p.q)) +. (p.q *. sum_pi)))
    +. (p.q *. p.error_cost *. pi_n)
  in
  SF.div numerator (1. -. (p.q *. (1. -. pi_n)))

let mean_log (p : Params.t) ~n ~r =
  check "Cost.mean_log" n r;
  let module L = Numerics.Logspace in
  let q = L.of_float p.q in
  let one_minus_q = L.of_float (1. -. p.q) in
  (* pi_i in log space, using the same telescoped survival ratios; the
     survival closure and S(0) are loop-invariant, and the prefix sum
     accumulates in place in the fold order of [L.sum] *)
  let s = p.delay.survival in
  let s0 = s 0. in
  let log_pi = ref 0. in
  let sum_acc = ref L.zero in
  for i = 1 to n do
    sum_acc := L.add !sum_acc (L.of_log !log_pi);
    let ratio = SF.div (s (float_of_int i *. r)) s0 in
    log_pi := !log_pi +. (if ratio <= 0. then neg_infinity else SF.log ratio)
  done;
  let pi_n = L.of_log !log_pi in
  let sum_pi = !sum_acc in
  let r_plus_c = L.of_float (r +. p.probe_cost) in
  let n_term = L.mul (L.of_float (float_of_int n)) one_minus_q in
  let numerator =
    L.add
      (L.mul r_plus_c (L.add n_term (L.mul q sum_pi)))
      (L.mul (L.mul q (L.of_float p.error_cost)) pi_n)
  in
  let denominator = L.sub L.one (L.mul q (L.sub L.one pi_n)) in
  L.div numerator denominator

let asymptote (p : Params.t) ~n ~r =
  check "Cost.asymptote" n r;
  let l = p.delay.mass in
  let loss = 1. -. l in
  (* (1 - (1-l)^n) / l, continuous at l = 1 *)
  let geometric =
    if loss = 0. then float_of_int n
    else SF.div (1. -. SF.pow loss (float_of_int n)) l
  in
  SF.div
    ((r +. p.probe_cost)
    *. ((float_of_int n *. (1. -. p.q)) +. (p.q *. geometric)))
    (1. -. p.q)

let at_zero (p : Params.t) = p.q *. p.error_cost

let derivative p ~n ~r =
  check "Cost.derivative" n r;
  Numerics.Derivative.richardson ~f:(fun r -> mean p ~n ~r) r
