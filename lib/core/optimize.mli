(** Optimal protocol parameters — Sec. 4.2 and 4.4 of the paper.

    Three optimization views:
    - [r_opt(n)]: best listening period for a fixed probe count
      ({!optimal_r});
    - [N(r)]: best probe count for a fixed listening period
      ({!optimal_n}), yielding the envelope [C_min(r) = C(N(r), r)]
      ({!min_cost});
    - the global optimum over both ({!global_optimum}). *)

type point = {
  n : int;
  r : float;
  cost : float;
  error_prob : float;
}

val min_useful_probes : Params.t -> int
(** The paper's [nu = ceil (-log E / log (1 - l))] (Sec. 4.4): below
    this probe count, [q E pi_n(r)] can never become small and the cost
    stays enormous for every [r].  At least [1]; equals [1] when the
    delay distribution is non-defective. *)

val optimal_r :
  ?r_hi:float -> ?samples:int -> Params.t -> n:int -> Numerics.Minimize.result
(** [r_opt^(n)]: minimizes [C_n] over [r >= 0].  The search interval
    grows automatically until the minimum is interior; [r_hi] overrides
    the initial upper bound. *)

type n_scan = {
  n : int;  (** [N(r)] *)
  cost : float;  (** [C_min(r) = C(N(r), r)] *)
  error_prob : float;  (** [E(N(r), r)] *)
  log10_error : float;  (** [log10 E(N(r), r)], finite deep in the tail *)
}
(** Everything a single streaming scan over [n] knows about its
    winner. *)

val optimal_n_scan : ?n_max:int -> ?patience:int -> Params.t -> r:float -> n_scan
(** One pass of the {!Kernel} cursor over [n = 1, 2, ...] with early
    stopping: [N(r)], its cost, and its error probabilities, at one
    survival evaluation per candidate [n].  The projections below are
    bit-identical to the historical per-point computations. *)

val optimal_n : ?n_max:int -> ?patience:int -> Params.t -> r:float -> int * float
(** [N(r)] and [C_min(r)]: scans [n = 1, 2, ...] until the cost has
    been non-improving for [patience] (default [24]) consecutive probe
    counts or [n_max] (default [4096]) is reached.  Ties break toward
    the smaller [n], matching the paper's definition of [N]. *)

val min_cost : ?n_max:int -> ?patience:int -> Params.t -> r:float -> float
(** [C_min(r) = C(N(r), r)]. *)

val optimal_n_sweep :
  ?pool:Exec.Pool.t -> ?n_max:int -> ?patience:int -> Params.t ->
  float array -> (float * (int * float)) array
(** {!optimal_n} at every grid point — the step function [N(r)] paired
    with [C_min(r)] — evaluated in parallel on the [Exec] domain pool
    (the default pool unless [pool] is given).  Bit-identical to the
    pointwise serial calls at any job count. *)

val lower_envelope :
  ?pool:Exec.Pool.t -> ?n_max:int -> ?patience:int -> Params.t ->
  float array -> (float * float) array
(** The Figure-4 envelope [C_min(r)] over a grid, via
    {!optimal_n_sweep}. *)

val error_under_optimal_n : ?n_max:int -> Params.t -> r:float -> float
(** [E(N(r), r)]: the sawtoothed error probability of Figure 6. *)

val log10_error_under_optimal_n : ?n_max:int -> Params.t -> r:float -> float
(** [log10 E(N(r), r)], from the same single scan — stays finite where
    [E(N(r), r)] underflows. *)

val global_optimum : ?n_max:int -> ?patience:int -> Params.t -> point
(** Minimizes [C(n, r)] over both parameters: computes [r_opt(n)] for
    [n = 1, 2, ...] with early stopping, returns the best pair together
    with its cost and error probability.  This is the computation
    behind the paper's Sec. 6 claim that realistic networks want
    [n = 2, r ~= 1.75]. *)

val constrained_optimum :
  ?n_max:int -> budget:float -> Params.t -> point
(** Cheapest design whose configuration time [n * r] stays within
    [budget] seconds — the impatient-user question from the paper's
    introduction ("a configuration time of 8 seconds may seem barely
    acceptable").  Scans [n = 1 .. n_max] (default [32]) with [r]
    capped at [budget / n].  Raises [Invalid_argument] on a
    non-positive budget. *)

val probes_for_error_target :
  ?n_max:int -> Params.t -> r:float -> target:float -> int option
(** Smallest [n] with [E(n, r) <= target] ("how many probes buy six
    nines at this listening period?"); [None] if even [n_max] (default
    [256]) probes cannot reach it — e.g. when permanent loss floors the
    error above the target. *)
